#pragma once

// Shared plumbing for the figure-regeneration binaries: run a scheme,
// compute its cancellation spectrum, and print paper-style series.
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute::bench {

struct SchemeRun {
  sim::SystemResult result;
  eval::CancellationSpectrum spectrum;  // 1/3-octave smoothed
};

/// Run one scheme on one workload with optional config tweaks.
inline SchemeRun run_scheme(
    sim::Scheme scheme, sim::NoiseKind noise_kind, std::uint64_t seed,
    double duration_s = 10.0,
    const std::function<void(sim::SystemConfig&)>& tweak = {}) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = sim::make_scheme_config(scheme, scene, seed);
  cfg.duration_s = duration_s;
  if (tweak) tweak(cfg);
  auto noise = sim::make_noise(noise_kind, cfg.scene.sample_rate, seed + 1000);
  SchemeRun out{sim::run_anc_simulation(*noise, cfg), {}};
  out.spectrum = eval::cancellation_spectrum(out.result.disturbance,
                                             out.result.residual,
                                             out.result.sample_rate,
                                             duration_s / 2.0)
                     .smoothed(3.0);
  return out;
}

/// Print a set of named cancellation curves as a table of frequency rows
/// (the paper's figure as numbers) plus an ASCII chart.
inline void print_cancellation_curves(
    const std::string& title,
    const std::vector<std::pair<std::string, const eval::CancellationSpectrum*>>&
        curves,
    double f_max = 4000.0, std::size_t points = 16) {
  std::printf("\n== %s ==\n\n", title.c_str());
  std::vector<std::string> headers = {"freq_Hz"};
  for (const auto& [name, spec] : curves) {
    headers.push_back(name);
    (void)spec;
  }
  eval::Table table(headers);

  // Shared decimated frequency grid from the first curve.
  const auto& ref = *curves.front().second;
  std::vector<double> f_dense, dummy;
  for (std::size_t i = 0; i < ref.freq_hz.size(); ++i) {
    if (ref.freq_hz[i] <= f_max) f_dense.push_back(ref.freq_hz[i]);
  }
  std::vector<double> grid;
  for (std::size_t p = 0; p < points; ++p) {
    grid.push_back(f_max * static_cast<double>(p + 1) /
                   static_cast<double>(points));
  }
  std::vector<eval::Series> series;
  for (const auto& [name, spec] : curves) {
    eval::Series s;
    s.name = name;
    std::vector<std::string> row_stub;
    for (double f : grid) s.y.push_back(spec->at(f));
    series.push_back(std::move(s));
    (void)row_stub;
  }
  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<std::string> row = {eval::fmt(grid[p], 0)};
    for (const auto& s : series) row.push_back(eval::fmt(s.y[p], 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf("\ncancellation (dB, negative = quieter)\n");
  eval::print_ascii_chart(std::cout, grid, series, "frequency (Hz)", "dB");
}

}  // namespace mute::bench
