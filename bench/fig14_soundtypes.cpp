// Figure 14: MUTE_Hollow vs Bose_Overall for four real-world noise types
// (male voice, female voice, construction sound, music).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/parallel_sweep.hpp"

int main() {
  using namespace mute;
  using bench::run_scheme;

  std::printf("Figure 14 reproduction: four ambient sound types.\n");
  std::printf("Paper expectation: MUTE_Hollow lands within ~0.9 dB of\n"
              "Bose_Overall (ANC + passive shell) on every sound type.\n");

  const double kDur = 12.0;
  const sim::NoiseKind kinds[] = {
      sim::NoiseKind::kMaleVoice, sim::NoiseKind::kFemaleVoice,
      sim::NoiseKind::kConstruction, sim::NoiseKind::kMusic};

  // All eight (sound type, scheme) runs are independent; sweep them in
  // parallel and print the panels from the ordered results.
  constexpr std::size_t kKinds = sizeof(kinds) / sizeof(kinds[0]);
  const auto runs = sim::parallel_sweep(2 * kKinds, [&](std::size_t i) {
    return run_scheme(i < kKinds ? sim::Scheme::kMuteHollow
                                 : sim::Scheme::kBoseOverall,
                      kinds[i % kKinds], 42, kDur);
  });

  for (std::size_t k = 0; k < kKinds; ++k) {
    const auto kind = kinds[k];
    const auto& mute_run = runs[k];
    const auto& bose_run = runs[kKinds + k];
    bench::print_cancellation_curves(
        std::string("Figure 14 panel: ") + sim::noise_name(kind),
        {{"MUTE_Hollow", &mute_run.spectrum},
         {"Bose_Overall", &bose_run.spectrum}});
    // Tonal/sparse sources (music, voice) leave most Welch bins at the
    // noise floor where the per-bin dB ratio is ~0; the figure-level
    // summary therefore uses total band-power cancellation, which is what
    // a listener's ear integrates.
    const double mute_pw = eval::band_cancellation_db(
        mute_run.result.disturbance, mute_run.result.residual,
        mute_run.result.sample_rate, 30, 4000, kDur / 2.0);
    const double bose_pw = eval::band_cancellation_db(
        bose_run.result.disturbance, bose_run.result.residual,
        bose_run.result.sample_rate, 30, 4000, kDur / 2.0);
    std::printf("\nbroadband power cancellation: MUTE_Hollow %.1f dB, "
                "Bose_Overall %.1f dB (MUTE - Bose = %.1f dB; paper: +0.9)\n",
                mute_pw, bose_pw, mute_pw - bose_pw);
  }
  return 0;
}
