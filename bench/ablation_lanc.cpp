// Ablations of LANC's design choices (DESIGN.md section 5):
//   1. non-causal tap count N (the core lookahead claim),
//   2. NLMS normalization vs plain LMS,
//   3. secondary-path estimate quality,
//   4. warm start vs cold start convergence.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace mute;
  using bench::run_scheme;

  std::printf("LANC design ablations.\n");
  const double kDur = 10.0;

  // ---- 1. Non-causal taps ------------------------------------------------
  {
    eval::Table table({"N_taps", "broadband_dB", "0-1k_dB", "1-4k_dB"});
    for (std::size_t cap : {0u, 8u, 16u, 32u, 64u, 128u, 192u}) {
      const auto run = run_scheme(
          sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, kDur,
          [&](sim::SystemConfig& cfg) {
            cfg.max_noncausal_taps = cap;
            cfg.use_rf_link = false;  // isolate the algorithmic effect
          });
      const double row[] = {run.spectrum.average_db(30, 4000),
                            run.spectrum.average_db(30, 1000),
                            run.spectrum.average_db(1000, 4000)};
      table.add_row(std::to_string(run.result.noncausal_taps), row, 1);
    }
    std::printf("\n-- ablation 1: non-causal taps N "
                "(more lookahead -> deeper cancellation) --\n");
    table.print(std::cout);
  }

  // ---- 2. Step-size / normalization ---------------------------------------
  {
    eval::Table table({"mu", "broadband_dB"});
    for (double mu : {0.02, 0.05, 0.15, 0.3}) {
      const auto run = run_scheme(
          sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, kDur,
          [&](sim::SystemConfig& cfg) {
            cfg.mu = mu;
            cfg.use_rf_link = false;
          });
      const double row[] = {run.spectrum.average_db(30, 4000)};
      table.add_row(eval::fmt(mu, 2), row, 1);
    }
    std::printf("\n-- ablation 2: NLMS step size (too small = slow "
                "convergence within the run, too large = misadjustment) --\n");
    table.print(std::cout);
  }

  // ---- 3. Secondary-path estimate quality ---------------------------------
  {
    eval::Table table({"cal_seconds", "sec_taps", "cal_err_dB",
                       "broadband_dB"});
    struct Case {
      double cal_s;
      std::size_t taps;
    };
    for (const auto& c : {Case{0.2, 32}, Case{0.5, 96}, Case{2.0, 256}}) {
      const auto run = run_scheme(
          sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, kDur,
          [&](sim::SystemConfig& cfg) {
            cfg.calibration_s = c.cal_s;
            cfg.secondary_taps = c.taps;
            cfg.use_rf_link = false;
          });
      const double row[] = {static_cast<double>(c.taps),
                            run.result.calibration_error_db,
                            run.spectrum.average_db(30, 4000)};
      table.add_row(eval::fmt(c.cal_s, 1), row, 1);
    }
    std::printf("\n-- ablation 3: secondary-path estimate quality --\n");
    table.print(std::cout);
  }

  // ---- 4. Warm start vs cold start ----------------------------------------
  {
    eval::Table table({"start", "broadband_dB", "convergence_s"});
    for (bool warm : {false, true}) {
      const auto run = run_scheme(
          sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, kDur,
          [&](sim::SystemConfig& cfg) {
            cfg.warm_start = warm;
            cfg.use_rf_link = false;
          });
      const double row[] = {
          run.spectrum.average_db(30, 4000),
          eval::convergence_time_s(run.result.residual,
                                   run.result.sample_rate)};
      table.add_row(warm ? "warm (factory fit)" : "cold (LMS from zero)", row,
                    2);
    }
    std::printf("\n-- ablation 4: warm vs cold start --\n");
    table.print(std::cout);
  }
  return 0;
}
