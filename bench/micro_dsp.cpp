// Microbenchmarks (google-benchmark): real-time feasibility of the DSP
// kernels. The paper's TMS320C6713 capped the system at an 8 kHz sample
// rate; these numbers show the per-sample cost of each stage on a modern
// CPU and hence the headroom for higher rates / more taps.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "adaptive/fd_fxlms.hpp"
#include "adaptive/fdaf.hpp"
#include "adaptive/fxlms.hpp"
#include "adaptive/fxlms_multi.hpp"
#include "adaptive/lms.hpp"
#include "audio/generators.hpp"
#include "common/rng.hpp"
#include "core/gcc_phat.hpp"
#include "core/lanc.hpp"
#include "core/shadow_filter.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/kernels.hpp"
#include "dsp/resampler.hpp"
#include "rf/fm.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace mute;

// Machine-speed yardstick for tools/bench_gate.py: a deliberately scalar,
// latency-bound chain (single-accumulator naive dot) whose cost tracks the
// host's plain FP throughput and is immune to the SIMD level the kernels
// dispatch to. The gate compares kernel-time / calibration-time ratios, so
// a uniformly slower CI machine doesn't trip the regression threshold.
void BM_Calibration(benchmark::State& state) {
  std::vector<double> a(1024), b(1024);
  Rng rng(42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.gaussian();
    b[i] = rng.gaussian();
  }
  for (auto _ : state) {
    const double d = dsp::kernels::naive::dot(a.data(), b.data(), a.size());
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Calibration);

void BM_KernelDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  Rng rng(13);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.gaussian();
    b[i] = rng.gaussian();
  }
  for (auto _ : state) {
    const double d = dsp::kernels::dot(a.data(), b.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelDot)->Arg(256)->Arg(1024)->Arg(2048);

void BM_KernelEnergy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  Rng rng(14);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    const double e = dsp::kernels::energy(x.data(), n);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelEnergy)->Arg(1024);

void BM_KernelAxpyLeakyNorm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(n), x(n);
  Rng rng(15);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.gaussian(0.01);
    x[i] = rng.gaussian();
  }
  for (auto _ : state) {
    // keep == 1.0 so w neither decays to denormals nor diverges over the
    // millions of timed iterations; g alternates sign around zero mean.
    const double norm =
        dsp::kernels::axpy_leaky_norm(w.data(), x.data(), 1.0, 1e-12, n);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelAxpyLeakyNorm)->Arg(1024);

void BM_KernelScaledAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> acc(n, 0.0), x(n);
  Rng rng(16);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    dsp::kernels::scaled_accumulate(acc.data(), x.data(), 1e-9, n);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelScaledAccumulate)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  ComplexSignal x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    ComplexSignal copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FirFilterPerSample(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> h(taps);
  for (auto& v : h) v = rng.gaussian();
  dsp::FirFilter f(h);
  Sample x = 0.3f;
  for (auto _ : state) {
    // Clamp the feedback: a random-coefficient FIR has gain >> 1, so raw
    // output->input feedback diverges to Inf within a few hundred samples
    // (caught by MUTE_CHECK_FINITE). The clamp keeps the serial data
    // dependency that makes the per-sample timing honest.
    x = f.process(std::clamp(x, -1.0f, 1.0f));
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirFilterPerSample)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048);

void BM_OverlapSaveBlock(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> h(taps);
  for (auto& v : h) v = rng.gaussian();
  dsp::OverlapSaveConvolver ols(h, 256);
  Signal in(256, 0.1f), out(256);
  for (auto _ : state) {
    ols.process_block(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_OverlapSaveBlock)->Arg(256)->Arg(1024)->Arg(2048);

void BM_LancTick(benchmark::State& state) {
  const auto noncausal = static_cast<std::size_t>(state.range(0));
  std::vector<double> hse(128, 0.0);
  hse[2] = 1.0;
  core::LancOptions opts;
  opts.fxlms.causal_taps = 512;
  opts.fxlms.noncausal_taps = noncausal;
  core::LancController lanc(hse, opts);
  Rng rng(4);
  for (auto _ : state) {
    const Sample y = lanc.tick(static_cast<Sample>(rng.gaussian(0.1)));
    lanc.observe_error(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["audio_fs_headroom_x16k"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 16000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LancTick)->Arg(0)->Arg(64)->Arg(192);

void BM_LancTickWithProfiling(benchmark::State& state) {
  std::vector<double> hse(128, 0.0);
  hse[2] = 1.0;
  core::LancOptions opts;
  opts.fxlms.causal_taps = 512;
  opts.fxlms.noncausal_taps = 128;
  opts.profiling = true;
  core::LancController lanc(hse, opts);
  Rng rng(5);
  for (auto _ : state) {
    const Sample y = lanc.tick(static_cast<Sample>(rng.gaussian(0.1)));
    lanc.observe_error(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LancTickWithProfiling);

void BM_FdafBlock(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  adaptive::BlockFdaf fdaf({.taps = taps});
  Rng rng(9);
  Signal x(taps), d(taps), e(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    x[i] = static_cast<Sample>(rng.gaussian(0.2));
    d[i] = x[i] * 0.5f;
  }
  for (auto _ : state) {
    fdaf.step_block(x, d, e);
    benchmark::DoNotOptimize(e.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(taps));
}
BENCHMARK(BM_FdafBlock)->Arg(256)->Arg(1024);

void BM_MultiLancTick(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  std::vector<double> hse(64, 0.0);
  hse[2] = 1.0;
  adaptive::FxlmsOptions opts;
  opts.causal_taps = 256;
  opts.noncausal_taps = 64;
  adaptive::MultiFxlmsEngine multi(
      hse, std::vector<adaptive::FxlmsOptions>(channels, opts));
  Rng rng(11);
  Signal refs(channels);
  for (auto _ : state) {
    for (auto& v : refs) v = static_cast<Sample>(rng.gaussian(0.1));
    const Sample y = multi.step_output(refs);
    multi.adapt(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiLancTick)->Arg(1)->Arg(2)->Arg(4);

// The full FxLMS per-sample duty cycle (push + compute + adapt) — the
// number the hot-path budget lives or dies on. `taps` is the total filter
// length (noncausal + causal). Reference samples are pregenerated so the
// timing measures the engine, not std::normal_distribution.
void BM_FxlmsCycle(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  std::vector<double> hse(128, 0.0);
  hse[2] = 1.0;
  adaptive::FxlmsOptions opts;
  opts.causal_taps = taps / 2;
  opts.noncausal_taps = taps - taps / 2;
  adaptive::FxlmsEngine engine(hse, opts);
  Rng rng(10);
  std::vector<Sample> xs(4096);
  for (auto& v : xs) v = static_cast<Sample>(rng.gaussian(0.1));
  std::size_t i = 0;
  for (auto _ : state) {
    engine.push_reference(xs[i]);
    i = (i + 1 == xs.size()) ? 0 : i + 1;
    const Sample y = engine.compute_antinoise();
    engine.adapt(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FxlmsCycle)->Arg(256)->Arg(1024)->Arg(2048);

// The partitioned-block FD engine's full duty cycle (process_block +
// adapt_block), reported per SAMPLE via SetItemsProcessed so the number
// is directly comparable with BM_FxlmsCycle at the same tap count — the
// ratio is the block engine's speedup, gated in BENCH_baseline.json.
// `taps` is the total filter length; the block size is the engine's
// auto pick (taps/8 clamped to [64, 512]).
void BM_FdLancBlock(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  std::vector<double> hse(128, 0.0);
  hse[2] = 1.0;
  adaptive::FdFxlmsOptions opts;
  opts.causal_taps = taps / 2;
  opts.noncausal_taps = taps - taps / 2;
  adaptive::FdFxlmsEngine engine(hse, opts);
  const std::size_t block = engine.block_size();
  Rng rng(10);
  std::vector<Sample> xs(8 * block), ys(block), es(block);
  for (auto& v : xs) v = static_cast<Sample>(rng.gaussian(0.1));
  std::size_t off = 0;
  for (auto _ : state) {
    engine.process_block(std::span<const Sample>(xs.data() + off, block), ys);
    for (std::size_t i = 0; i < block; ++i) {
      es[i] = static_cast<Sample>(ys[i] * 0.01f);
    }
    engine.adapt_block(es);
    off = (off + block == xs.size()) ? 0 : off + block;
    benchmark::DoNotOptimize(ys.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block));
}
BENCHMARK(BM_FdLancBlock)->Arg(256)->Arg(1024)->Arg(2048);

// The shadow pre-convergence per-sample budget: every sample pushes the
// standby's reference into the shadow history, every adapt_stride-th pays
// the O(taps) predict+adapt. This rides on top of the active LANC tick, so
// its amortized cost must stay a small fraction of BM_LancTick.
void BM_ShadowObserve(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  adaptive::FxlmsOptions opts;
  opts.causal_taps = taps / 2;
  opts.noncausal_taps = taps - taps / 2;
  core::ShadowFilter shadow(opts, core::ShadowFilterOptions{});
  shadow.assign(/*relay=*/1, opts.noncausal_taps, /*lookahead_s=*/0.004);
  Rng rng(11);
  std::vector<Sample> xs(4096), ys(4096);
  for (auto& v : xs) v = static_cast<Sample>(rng.gaussian(0.1));
  for (auto& v : ys) v = static_cast<Sample>(rng.gaussian(0.1));
  std::size_t i = 0;
  for (auto _ : state) {
    shadow.observe(xs[i], ys[i]);
    i = (i + 1 == xs.size()) ? 0 : i + 1;
    benchmark::DoNotOptimize(shadow.update_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowObserve)->Arg(704);

// LMS predict+update per-sample cycle (system identification hot loop).
void BM_AdaptiveFirStep(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  adaptive::AdaptiveFir fir(taps);
  Rng rng(12);
  std::vector<Sample> xs(4096);
  for (auto& v : xs) v = static_cast<Sample>(rng.gaussian(0.2));
  std::size_t i = 0;
  for (auto _ : state) {
    const Sample x = xs[i];
    i = (i + 1 == xs.size()) ? 0 : i + 1;
    fir.predict(x);
    const Sample e = fir.update(x * 0.5f);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveFirStep)->Arg(256)->Arg(1024);

void BM_FmModDemod(benchmark::State& state) {
  rf::FmModulator mod(60000.0, kDefaultRfSampleRate);
  rf::FmDemodulator demod(60000.0, kDefaultRfSampleRate);
  Rng rng(6);
  for (auto _ : state) {
    const Sample out =
        demod.demodulate(mod.modulate(static_cast<Sample>(rng.gaussian(0.2))));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmModDemod);

void BM_Resample16kTo256k(benchmark::State& state) {
  Rng rng(7);
  Signal in(1600);
  for (auto& v : in) v = static_cast<Sample>(rng.gaussian(0.2));
  dsp::Resampler up(16, 1);
  for (auto _ : state) {
    auto out = up.process(in);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1600);
}
BENCHMARK(BM_Resample16kTo256k);

// Fleet runtime per-block cost (the tentpole edge-service metric): a
// fixed-size tenant fleet sharing one looped steady-state profile on ONE
// worker lane (machine-independent — the gate must not reward core
// count), advanced one scheduling quantum per iteration. Items/s is
// device-samples per second: divide the sample rate into it for the
// per-device real-time factor; bench/fleet has the full devices x RTF
// capacity table. The profile is built once per process (a couple of
// seconds of scene synthesis) and shared across repetitions.
void BM_FleetThroughput(benchmark::State& state) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  static const sim::FleetProfile& profile = *[] {
    sim::DeviceSimConfig cfg;
    cfg.duration_s = 2.0;
    cfg.seed = 7;
    cfg.use_rf_link = false;
    cfg.device.calibration_s = 0.25;
    cfg.device.selection_period_s = 0.5;
    cfg.device.secondary_taps = 96;
    cfg.device.lanc.fxlms.causal_taps = 128;
    audio::WhiteNoiseSource noise(0.1, 1011);
    return new sim::FleetProfile(
        sim::make_fleet_profile(noise, cfg, /*loop_steady_state=*/true));
  }();
  sim::FleetConfig fc;
  fc.workers = 1;
  fc.max_tenants = tenants;
  fc.arena_bytes = std::size_t{8} << 20;
  sim::FleetRuntime fleet(fc);
  const std::size_t pid = fleet.add_profile(profile);
  for (std::size_t i = 0; i < tenants; ++i) fleet.admit(pid, i + 1);
  fleet.run_blocks(80);  // power-up calibration + first selection, untimed
  for (auto _ : state) {
    fleet.run_blocks(1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tenants * fleet.block_samples()));
}
BENCHMARK(BM_FleetThroughput)->Arg(8);

void BM_GccPhat(benchmark::State& state) {
  Rng rng(8);
  Signal a(8000), b(8000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Sample>(rng.gaussian(0.2));
    b[i] = (i >= 40) ? a[i - 40] : 0.0f;
  }
  for (auto _ : state) {
    auto r = core::gcc_phat(a, b, 16000.0);
    benchmark::DoNotOptimize(r.peak_lag_s);
  }
}
BENCHMARK(BM_GccPhat);

}  // namespace

// Custom entry point: `--json out.json` is shorthand for google-benchmark's
// `--benchmark_out=out.json --benchmark_out_format=json` (what
// tools/bench_gate.py and the CI perf-smoke job consume). Everything else
// passes through to the library untouched.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      args.emplace_back(std::string("--benchmark_out=") + argv[++i]);
      args.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      args.emplace_back("--benchmark_out=" + arg.substr(7));
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
