// Microbenchmarks (google-benchmark): real-time feasibility of the DSP
// kernels. The paper's TMS320C6713 capped the system at an 8 kHz sample
// rate; these numbers show the per-sample cost of each stage on a modern
// CPU and hence the headroom for higher rates / more taps.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "adaptive/fdaf.hpp"
#include "adaptive/fxlms.hpp"
#include "adaptive/fxlms_multi.hpp"
#include "audio/generators.hpp"
#include "common/rng.hpp"
#include "core/gcc_phat.hpp"
#include "core/lanc.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/resampler.hpp"
#include "rf/fm.hpp"

namespace {

using namespace mute;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  ComplexSignal x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    ComplexSignal copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FirFilterPerSample(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> h(taps);
  for (auto& v : h) v = rng.gaussian();
  dsp::FirFilter f(h);
  Sample x = 0.3f;
  for (auto _ : state) {
    // Clamp the feedback: a random-coefficient FIR has gain >> 1, so raw
    // output->input feedback diverges to Inf within a few hundred samples
    // (caught by MUTE_CHECK_FINITE). The clamp keeps the serial data
    // dependency that makes the per-sample timing honest.
    x = f.process(std::clamp(x, -1.0f, 1.0f));
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirFilterPerSample)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048);

void BM_OverlapSaveBlock(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> h(taps);
  for (auto& v : h) v = rng.gaussian();
  dsp::OverlapSaveConvolver ols(h, 256);
  Signal in(256, 0.1f), out(256);
  for (auto _ : state) {
    ols.process_block(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_OverlapSaveBlock)->Arg(256)->Arg(1024)->Arg(2048);

void BM_LancTick(benchmark::State& state) {
  const auto noncausal = static_cast<std::size_t>(state.range(0));
  std::vector<double> hse(128, 0.0);
  hse[2] = 1.0;
  core::LancOptions opts;
  opts.fxlms.causal_taps = 512;
  opts.fxlms.noncausal_taps = noncausal;
  core::LancController lanc(hse, opts);
  Rng rng(4);
  for (auto _ : state) {
    const Sample y = lanc.tick(static_cast<Sample>(rng.gaussian(0.1)));
    lanc.observe_error(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["audio_fs_headroom_x16k"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 16000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LancTick)->Arg(0)->Arg(64)->Arg(192);

void BM_LancTickWithProfiling(benchmark::State& state) {
  std::vector<double> hse(128, 0.0);
  hse[2] = 1.0;
  core::LancOptions opts;
  opts.fxlms.causal_taps = 512;
  opts.fxlms.noncausal_taps = 128;
  opts.profiling = true;
  core::LancController lanc(hse, opts);
  Rng rng(5);
  for (auto _ : state) {
    const Sample y = lanc.tick(static_cast<Sample>(rng.gaussian(0.1)));
    lanc.observe_error(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LancTickWithProfiling);

void BM_FdafBlock(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  adaptive::BlockFdaf fdaf({.taps = taps});
  Rng rng(9);
  Signal x(taps), d(taps), e(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    x[i] = static_cast<Sample>(rng.gaussian(0.2));
    d[i] = x[i] * 0.5f;
  }
  for (auto _ : state) {
    fdaf.step_block(x, d, e);
    benchmark::DoNotOptimize(e.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(taps));
}
BENCHMARK(BM_FdafBlock)->Arg(256)->Arg(1024);

void BM_MultiLancTick(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  std::vector<double> hse(64, 0.0);
  hse[2] = 1.0;
  adaptive::FxlmsOptions opts;
  opts.causal_taps = 256;
  opts.noncausal_taps = 64;
  adaptive::MultiFxlmsEngine multi(
      hse, std::vector<adaptive::FxlmsOptions>(channels, opts));
  Rng rng(11);
  Signal refs(channels);
  for (auto _ : state) {
    for (auto& v : refs) v = static_cast<Sample>(rng.gaussian(0.1));
    const Sample y = multi.step_output(refs);
    multi.adapt(y * 0.01f);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiLancTick)->Arg(1)->Arg(2)->Arg(4);

void BM_FmModDemod(benchmark::State& state) {
  rf::FmModulator mod(60000.0, kDefaultRfSampleRate);
  rf::FmDemodulator demod(60000.0, kDefaultRfSampleRate);
  Rng rng(6);
  for (auto _ : state) {
    const Sample out =
        demod.demodulate(mod.modulate(static_cast<Sample>(rng.gaussian(0.2))));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmModDemod);

void BM_Resample16kTo256k(benchmark::State& state) {
  Rng rng(7);
  Signal in(1600);
  for (auto& v : in) v = static_cast<Sample>(rng.gaussian(0.2));
  dsp::Resampler up(16, 1);
  for (auto _ : state) {
    auto out = up.process(in);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1600);
}
BENCHMARK(BM_Resample16kTo256k);

void BM_GccPhat(benchmark::State& state) {
  Rng rng(8);
  Signal a(8000), b(8000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Sample>(rng.gaussian(0.2));
    b[i] = (i >= 40) ? a[i - 40] : 0.0f;
  }
  for (auto _ : state) {
    auto r = core::gcc_phat(a, b, 16000.0);
    benchmark::DoNotOptimize(r.peak_lag_s);
  }
}
BENCHMARK(BM_GccPhat);

}  // namespace

BENCHMARK_MAIN();
