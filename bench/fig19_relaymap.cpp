// Figure 19: automatic relay association. Three relays around the room,
// the MUTE client in the middle; for noise sources at positions all around
// the room the client must pick the relay with the largest positive
// lookahead — and abstain when the source is closest to the client itself.
#include <cstdio>
#include <iostream>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "core/relay_select.hpp"
#include "eval/report.hpp"

int main() {
  using namespace mute;

  std::printf("Figure 19 reproduction: relay-association map.\n\n");

  acoustics::Scene scene = acoustics::Scene::paper_office();
  const double fs = scene.sample_rate;
  // Client (error mic) at the room center; three relays on the walls.
  const acoustics::Point client{3.0, 2.5, 1.2};
  const acoustics::Point relays[] = {
      {0.3, 2.5, 1.5},   // relay 1: west wall
      {5.7, 0.4, 1.5},   // relay 2: south-east corner
      {5.7, 4.6, 1.5},   // relay 3: north-east corner
  };

  struct Case {
    const char* label;
    acoustics::Point source;
    int expected;  // relay index, or -1 for "none"
  };
  const Case cases[] = {
      {"near relay 1 (west)", {0.8, 2.5, 1.4}, 0},
      {"west-south", {0.9, 1.0, 1.4}, 0},
      {"near relay 2 (SE)", {5.2, 0.8, 1.4}, 1},
      {"south wall", {4.0, 0.5, 1.4}, 1},
      {"near relay 3 (NE)", {5.2, 4.2, 1.4}, 2},
      {"north wall", {4.0, 4.5, 1.4}, 2},
      {"next to client", {3.1, 2.6, 1.3}, -1},
      {"client's desk", {2.8, 2.2, 1.2}, -1},
  };

  audio::WhiteNoiseSource noise(0.2, 3);
  const auto n_sig = noise.generate(static_cast<std::size_t>(fs));

  eval::Table table({"noise position", "expected", "selected", "lookahead_ms",
                     "correct"});
  int correct = 0;
  for (const auto& c : cases) {
    acoustics::Scene s = scene;
    s.noise_source = c.source;
    // Synthesize what each relay and the client's error mic hear.
    std::vector<Signal> relay_streams;
    for (const auto& rp : relays) {
      relay_streams.push_back(
          acoustics::build_path(s, c.source, rp, "relay").apply(n_sig));
    }
    const Signal ear =
        acoustics::build_path(s, c.source, client, "ear").apply(n_sig);

    const auto sel = core::select_relay(relay_streams, ear, fs);
    const int chosen =
        sel.chosen ? static_cast<int>(sel.chosen->relay_index) : -1;
    const bool ok = chosen == c.expected;
    if (ok) ++correct;
    table.add_row({c.label,
                   c.expected < 0 ? "none" : "#" + std::to_string(c.expected + 1),
                   chosen < 0 ? "none" : "#" + std::to_string(chosen + 1),
                   sel.chosen ? eval::fmt(sel.chosen->lookahead_s * 1e3, 2)
                              : "-",
                   ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\n%d / %zu positions associated correctly "
              "(paper: every instance).\n",
              correct, std::size(cases));
  return correct == static_cast<int>(std::size(cases)) ? 0 : 1;
}
