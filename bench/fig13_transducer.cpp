// Figure 13: combined frequency response of the cheap anti-noise speaker
// and microphone — the reason MUTE's cancellation dips below ~100 Hz.
#include <cstdio>
#include <iostream>

#include "acoustics/transducer.hpp"
#include "common/types.hpp"
#include "eval/report.hpp"

int main() {
  using namespace mute;
  const double fs = kDefaultSampleRate;
  auto mic = acoustics::Transducer::cheap_microphone(fs, 1);
  auto spk = acoustics::Transducer::cheap_speaker(fs, 2);
  auto mic_premium = acoustics::Transducer::premium_microphone(fs, 3);
  auto spk_premium = acoustics::Transducer::premium_speaker(fs, 4);

  std::printf("Figure 13 reproduction: combined speaker+microphone response.\n");
  std::printf("Paper expectation: weak response below ~100 Hz, usable above.\n\n");

  eval::Table table({"freq_Hz", "cheap_combined", "premium_combined"});
  std::vector<double> freqs, cheap_curve, premium_curve;
  for (double f = 25.0; f <= 4000.0; f *= 1.3) {
    const double cheap = mic.response_magnitude(f, fs) *
                         spk.response_magnitude(f, fs);
    const double premium = mic_premium.response_magnitude(f, fs) *
                           spk_premium.response_magnitude(f, fs);
    freqs.push_back(f);
    cheap_curve.push_back(cheap);
    premium_curve.push_back(premium);
    const double row[] = {cheap, premium};
    table.add_row(eval::fmt(f, 0), row, 3);
  }
  table.print(std::cout);

  std::vector<eval::Series> series = {{"cheap ($9+$19)", cheap_curve},
                                      {"premium (Bose-class)", premium_curve}};
  std::printf("\nlinear response (paper plots 0..0.2 scale; ours normalized to 1)\n");
  eval::print_ascii_chart(std::cout, freqs, series, "frequency (Hz)",
                          "|H|");
  return 0;
}
