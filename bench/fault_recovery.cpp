// Robustness evaluation: what happens to the ear when the wireless
// reference chain fails mid-run? Each scripted RF fault (relay power
// loss, co-channel jammer, deep fade, impulse noise, clock drift) hits a
// converged MUTE system at t = 4.5 s for 0.5 s. With link supervision the
// device must degrade gracefully — freeze adaptation, fade the anti-noise
// out, never play louder than passive — and re-converge after the link
// returns. The unsupervised columns show why the monitor exists: the
// demodulator garbage drives FxLMS straight into the error mic.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <span>
#include <vector>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "eval/report.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace {

using namespace mute;

constexpr double kDuration = 10.0;
constexpr double kFaultStart = 4.5;
constexpr double kFaultLen = 0.5;

/// Broadband cancellation over [t0, t1): residual power re disturbance, dB
/// (negative = quieter than passive).
double window_db(const sim::SystemResult& r, double t0, double t1) {
  const auto i0 = static_cast<std::size_t>(t0 * r.sample_rate);
  const auto i1 = static_cast<std::size_t>(t1 * r.sample_rate);
  double num = 0.0, den = 0.0;
  for (std::size_t i = i0; i < i1 && i < r.residual.size(); ++i) {
    num += static_cast<double>(r.residual[i]) *
           static_cast<double>(r.residual[i]);
    den += static_cast<double>(r.disturbance[i]) *
           static_cast<double>(r.disturbance[i]);
  }
  return power_to_db(num / std::max(den, 1e-20));
}

/// Seconds after link restoration until a sliding 0.25 s window first
/// comes within 3 dB of the pre-fault cancellation (-1 if it never does).
double recovery_s(const sim::SystemResult& r, double pre_db) {
  const double restored = kFaultStart + kFaultLen;
  for (double t = restored; t + 0.25 <= kDuration; t += 0.05) {
    if (window_db(r, t, t + 0.25) <= pre_db + 3.0) return t - restored;
  }
  return -1.0;
}

sim::SystemResult run_one(sim::FaultScenario scenario, bool supervised) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 11);
  cfg.duration_s = kDuration;
  sim::apply_fault_scenario(cfg, scenario, kFaultStart, kFaultLen);
  if (!supervised) {
    cfg.link_supervision = false;
    cfg.weight_norm_limit = 0.0;
  }
  audio::WhiteNoiseSource noise(0.1, 1011);
  return sim::run_anc_simulation(noise, cfg);
}

}  // namespace

int main() {
  std::printf("Fault injection & graceful degradation (0.5 s fault at "
              "t = %.1f s)\n\n", kFaultStart);

  const sim::FaultScenario scenarios[] = {
      sim::FaultScenario::kRelayDropout, sim::FaultScenario::kJammerBurst,
      sim::FaultScenario::kDeepFade, sim::FaultScenario::kImpulseNoise,
      sim::FaultScenario::kClockDrift,
  };

  eval::Table sup({"fault", "pre_dB", "outage_dB", "recover_s", "post_dB",
                   "episodes", "flagged_s", "rollbacks"});
  eval::Table unsup({"fault", "pre_dB", "outage_dB", "post_dB"});
  // Independent (scenario, supervision) simulations — seeds fixed inside
  // run_one — so all 10 sweep in parallel; rows are emitted in index order.
  constexpr std::size_t kScenarios = sizeof(scenarios) / sizeof(scenarios[0]);
  const auto results = sim::parallel_sweep(2 * kScenarios, [&](std::size_t i) {
    return run_one(scenarios[i % kScenarios], /*supervised=*/i < kScenarios);
  });
  for (std::size_t s = 0; s < kScenarios; ++s) {
    const auto scenario = scenarios[s];
    {
      const auto& r = results[s];
      const double pre = window_db(r, 3.0, 4.4);
      const double row[] = {
          pre,
          window_db(r, kFaultStart, kFaultStart + kFaultLen),
          recovery_s(r, pre),
          window_db(r, kDuration - 2.0, kDuration),
          static_cast<double>(r.link_fault_episodes),
          static_cast<double>(r.link_fault_samples) / r.sample_rate,
          static_cast<double>(r.weight_rollbacks),
      };
      sup.add_row(sim::fault_scenario_name(scenario), row, 2);
    }
    {
      const auto& r = results[kScenarios + s];
      const double row[] = {
          window_db(r, 3.0, 4.4),
          window_db(r, kFaultStart, kFaultStart + kFaultLen),
          window_db(r, kDuration - 2.0, kDuration),
      };
      unsup.add_row(sim::fault_scenario_name(scenario), row, 2);
    }
  }

  std::printf("-- link supervision + weight-norm guard armed --\n");
  sup.print(std::cout);
  std::printf("\n-- same faults, supervision disabled --\n");
  unsup.print(std::cout);

  std::printf(
      "\nExpected shape: supervised outage_dB stays at or below 0 (never\n"
      "louder than passive; ~0 means the anti-noise faded out and the ear\n"
      "got the passive disturbance), recover_s well under 2 s, and post_dB\n"
      "back near pre_dB. Unsupervised, the dropout/jammer/fade rows feed\n"
      "demodulator garbage to FxLMS: outage_dB goes positive (louder than\n"
      "no ANC at all) and post_dB shows the lasting damage. Fades below\n"
      "the FM threshold and impulse bursts that decimation absorbs leave\n"
      "the audio clean - those rows degrade little even unsupervised.\n");
  return 0;
}
