// Deterministic chaos soak (tentpole, part 3): randomized fault-episode
// schedules across an N-relay mesh, several seeds in parallel, with the
// survival invariants asserted per run:
//
//   1. never meaningfully louder than passive (any 0.25 s window);
//   2. bounded re-acquisition gap (warm/shadow failover must work);
//   3. allocation-free steady state (only control events may allocate;
//      checked when the operator-new interposition is compiled in).
//
// Prints a verdict table, optionally writes the JSON artifact CI uploads,
// and exits non-zero when any seed violates any invariant — every failure
// reproduces exactly from its printed (seed, relays, duration) triple.
//
// Usage: chaos_soak [--relays N] [--duration S] [--seeds K]
//                   [--json PATH] [--no-supervision]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/parallel_sweep.hpp"
#include "sim/soak.hpp"

int main(int argc, char** argv) {
  std::size_t relays = 4;
  double duration_s = 12.0;
  std::size_t seeds = 4;
  std::string json_path;
  bool supervision = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--relays") {
      relays = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--duration") {
      duration_s = std::strtod(next(), nullptr);
    } else if (arg == "--seeds") {
      seeds = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--no-supervision") {
      supervision = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("chaos soak: %zu relays, %.1f s, %zu seeds, spectrum "
              "supervision %s\n\n",
              relays, duration_s, seeds, supervision ? "on" : "off");

  const auto reports =
      mute::sim::parallel_sweep(seeds, [&](std::size_t i) {
        mute::sim::SoakConfig cfg;
        cfg.relay_count = relays;
        cfg.duration_s = duration_s;
        cfg.seed = 1000 + i;  // index-derived: bit-deterministic sweep
        cfg.spectrum_supervision = supervision;
        return mute::sim::run_chaos_soak(cfg);
      });

  bool all_passed = true;
  for (const auto& r : reports) {
    all_passed = all_passed && r.passed();
    std::printf(
        "seed %-5llu %s  worst_window %+6.2f dB @ %5.2f s | max_gap %.3f s | "
        "alloc %llu/%llu%s | handoffs %zu (shadow %zu) holds %zu hops %zu "
        "tx_steps %zu\n",
        static_cast<unsigned long long>(r.seed),
        r.passed() ? "PASS" : "FAIL", r.worst_window_excess_db,
        r.worst_window_t_s, r.max_reacquisition_gap_s,
        static_cast<unsigned long long>(r.allocating_ticks),
        static_cast<unsigned long long>(r.total_ticks),
        r.allocation_tracked ? "" : " (untracked)", r.handoff_count,
        r.shadow_handoff_count, r.hold_count, r.hop_count, r.tx_step_count);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << mute::sim::soak_reports_json(reports);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\n%s\n", all_passed ? "ALL INVARIANTS HELD"
                                   : "INVARIANT VIOLATION");
  return all_passed ? 0 : 1;
}
