// Failover policy comparison across mesh sizes: an N-relay deployment
// where the active (longest-lookahead) relay's link fails mid-run for 3 s.
// Three policies per fault:
//
//   cold    — enable_handoff off: drop to kListening, wait out a selection
//             period, rebuild the controller from scratch (~1 s gap);
//   warm    — handoff to the ranked standby carrying remapped weights, but
//             pay the full hold timeout + engine-history refill (~0.33 s);
//   shadow  — the tentpole: the standby's filter pre-converged in the
//             background while the primary ran, so the handoff installs a
//             converged filter + primed history after only the fast-handoff
//             confirmation window (~0.03 s gap).
//
// Faults the RF chain absorbs (fade below FM threshold, impulse
// decimation, clock drift) never flag the monitor: all policies idle.
// A second table sweeps relay count (2/4/8) on the dropout fault — the
// shadow gap must not grow with mesh size (only one rival trickle-adapts,
// the budget is O(1) in N).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "eval/report.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace {

using namespace mute;

constexpr double kDuration = 12.0;
constexpr double kFaultStart = 6.0;
constexpr double kFaultLen = 3.0;

enum class Policy { kCold, kWarm, kShadow };
constexpr Policy kPolicies[] = {Policy::kShadow, Policy::kWarm, Policy::kCold};
const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kCold: return "cold";
    case Policy::kWarm: return "warm";
    case Policy::kShadow: return "shadow";
  }
  return "?";
}

/// Broadband cancellation over [t0, t1): residual power re disturbance, dB
/// (negative = quieter than passive).
double window_db(const sim::SystemResult& r, double t0, double t1) {
  const auto i0 = static_cast<std::size_t>(t0 * r.sample_rate);
  const auto i1 = static_cast<std::size_t>(t1 * r.sample_rate);
  double num = 0.0, den = 0.0;
  for (std::size_t i = i0; i < i1 && i < r.residual.size(); ++i) {
    num += static_cast<double>(r.residual[i]) *
           static_cast<double>(r.residual[i]);
    den += static_cast<double>(r.disturbance[i]) *
           static_cast<double>(r.disturbance[i]);
  }
  return power_to_db(num / std::max(den, 1e-20));
}

/// Seconds after fault onset until a sliding 0.25 s window first comes
/// within 3 dB of the pre-fault cancellation (-1 if it never does).
double recovery_s(const sim::SystemResult& r, double pre_db) {
  for (double t = kFaultStart; t + 0.25 <= kDuration; t += 0.05) {
    if (window_db(r, t, t + 0.25) <= pre_db + 3.0) return t - kFaultStart;
  }
  return -1.0;
}

sim::SystemResult run_one(sim::FaultScenario scenario, std::size_t relays,
                          Policy policy) {
  sim::DeviceSimConfig cfg;
  cfg.scene = acoustics::Scene::paper_office();
  // Relays strung between the noise source (x=1.0) and the ear (x=5.0):
  // relay 0 leads by the most (the device's first choice), the rest are
  // confident runner-ups with progressively less lookahead.
  cfg.relay_positions.clear();
  for (std::size_t k = 0; k < relays; ++k) {
    cfg.relay_positions.push_back({2.0 + 0.2 * static_cast<double>(k),
                                   2.5, 1.5});
  }
  cfg.duration_s = kDuration;
  cfg.seed = 11;
  // Fault the active relay only; the others stay healthy standbys.
  cfg.relay_faults = {sim::make_fault_schedule(scenario, kFaultStart,
                                               kFaultLen)};
  cfg.device.calibration_s = 1.0;
  cfg.device.selection_period_s = 0.5;
  cfg.device.hold_timeout_s = 0.3;
  cfg.device.lanc.fxlms.mu = 0.3;
  cfg.device.lanc.fxlms.leakage = 2e-4;
  cfg.device.enable_handoff = policy != Policy::kCold;
  cfg.device.enable_shadow = policy == Policy::kShadow;
  audio::WhiteNoiseSource noise(0.1, 1011);
  return sim::run_device_simulation(noise, cfg);
}

void add_row(eval::Table& table, const std::string& label,
             const sim::SystemResult& r) {
  const double pre = window_db(r, kFaultStart - 1.5, kFaultStart - 0.1);
  const double row[] = {
      pre,
      window_db(r, kFaultStart, kFaultStart + 1.0),
      recovery_s(r, pre),
      window_db(r, kDuration - 2.0, kDuration),
      static_cast<double>(r.handoff_count),
      static_cast<double>(r.shadow_handoff_count),
      static_cast<double>(r.device_hold_count),
      r.max_reacquisition_gap_s,
  };
  table.add_row(label, row, 2);
}

}  // namespace

int main() {
  std::printf("Failover policies (%.0f s fault on the active relay at "
              "t = %.1f s; all other relays are healthy standbys)\n\n",
              kFaultLen, kFaultStart);

  const sim::FaultScenario scenarios[] = {
      sim::FaultScenario::kRelayDropout, sim::FaultScenario::kJammerBurst,
      sim::FaultScenario::kDeepFade, sim::FaultScenario::kImpulseNoise,
      sim::FaultScenario::kClockDrift,
  };
  constexpr std::size_t kScenarios = sizeof(scenarios) / sizeof(scenarios[0]);
  constexpr std::size_t kPolicyCount =
      sizeof(kPolicies) / sizeof(kPolicies[0]);
  const std::size_t relay_counts[] = {2, 4, 8};
  constexpr std::size_t kRelaySteps =
      sizeof(relay_counts) / sizeof(relay_counts[0]);

  const std::vector<std::string> cols = {
      "fault",    "pre_dB",  "outage_dB", "recover_s", "post_dB",
      "handoffs", "shadow",  "holds",     "max_gap_s"};

  // Sweep 1: every (fault, policy) at the canonical 4-relay mesh.
  // Sweep 2: dropout fault across mesh sizes for every policy.
  // All runs are independent (config + RNG seeds derived per index), so
  // they sweep in parallel and the tables fill from index order after.
  const std::size_t n_fault_runs = kScenarios * kPolicyCount;
  const std::size_t n_scale_runs = kRelaySteps * kPolicyCount;
  const auto results =
      sim::parallel_sweep(n_fault_runs + n_scale_runs, [&](std::size_t i) {
        if (i < n_fault_runs) {
          return run_one(scenarios[i % kScenarios], 4,
                         kPolicies[i / kScenarios]);
        }
        const std::size_t j = i - n_fault_runs;
        return run_one(sim::FaultScenario::kRelayDropout,
                       relay_counts[j % kRelaySteps],
                       kPolicies[j / kRelaySteps]);
      });

  for (std::size_t p = 0; p < kPolicyCount; ++p) {
    eval::Table table(cols);
    for (std::size_t s = 0; s < kScenarios; ++s) {
      add_row(table, sim::fault_scenario_name(scenarios[s]),
              results[p * kScenarios + s]);
    }
    std::printf("-- policy: %s (4 relays) --\n", policy_name(kPolicies[p]));
    table.print(std::cout);
    std::printf("\n");
  }

  // Re-acquisition gap vs relay count (dropout fault).
  eval::Table scale({"policy", "gap_2relay_s", "gap_4relay_s",
                     "gap_8relay_s"});
  for (std::size_t p = 0; p < kPolicyCount; ++p) {
    double row[kRelaySteps];
    for (std::size_t c = 0; c < kRelaySteps; ++c) {
      row[c] = results[n_fault_runs + p * kRelaySteps + c]
                   .max_reacquisition_gap_s;
    }
    scale.add_row(policy_name(kPolicies[p]), row, 3);
  }
  std::printf("-- re-acquisition gap vs mesh size (relay dropout) --\n");
  scale.print(std::cout);

  std::printf(
      "\nExpected shape: on faults the monitor flags (dropout, jammer),\n"
      "shadow rows hand off after the fast confirmation window only\n"
      "(max_gap_s ~ 0.03 s, shadow == handoffs), warm rows pay the full\n"
      "hold timeout + history refill (~0.33 s), and cold rows pay a\n"
      "selection period of silence plus cold reconvergence (~1 s). The\n"
      "shadow gap is flat in relay count: exactly one rival trickle-adapts\n"
      "regardless of mesh size. Faults the RF chain absorbs (fade,\n"
      "impulse, drift) leave every policy idle.\n");
  return 0;
}
