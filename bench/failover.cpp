// Warm-standby failover vs drop-and-relisten: a two-relay deployment where
// the active (longer-lookahead) relay's link fails mid-run for 3 s. With
// `enable_handoff` the device re-targets the association to the runner-up
// (State::kHandoff) carrying its converged weights — remapped to the new
// lookahead window — so cancellation resumes within the hold timeout plus
// a history refill. With handoff disabled the device falls back to
// kListening, waits out a full selection period, and rebuilds the
// controller cold on the same standby. Every scripted fault type from
// bench/fault_recovery hits the active relay; rows where the monitor never
// flags the link (the chain absorbs the fault) show both policies idle.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "eval/report.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace {

using namespace mute;

constexpr double kDuration = 12.0;
constexpr double kFaultStart = 6.0;
constexpr double kFaultLen = 3.0;

/// Broadband cancellation over [t0, t1): residual power re disturbance, dB
/// (negative = quieter than passive).
double window_db(const sim::SystemResult& r, double t0, double t1) {
  const auto i0 = static_cast<std::size_t>(t0 * r.sample_rate);
  const auto i1 = static_cast<std::size_t>(t1 * r.sample_rate);
  double num = 0.0, den = 0.0;
  for (std::size_t i = i0; i < i1 && i < r.residual.size(); ++i) {
    num += static_cast<double>(r.residual[i]) *
           static_cast<double>(r.residual[i]);
    den += static_cast<double>(r.disturbance[i]) *
           static_cast<double>(r.disturbance[i]);
  }
  return power_to_db(num / std::max(den, 1e-20));
}

/// Seconds after fault onset until a sliding 0.25 s window first comes
/// within 3 dB of the pre-fault cancellation (-1 if it never does).
double recovery_s(const sim::SystemResult& r, double pre_db) {
  for (double t = kFaultStart; t + 0.25 <= kDuration; t += 0.05) {
    if (window_db(r, t, t + 0.25) <= pre_db + 3.0) return t - kFaultStart;
  }
  return -1.0;
}

sim::SystemResult run_one(sim::FaultScenario scenario, bool handoff) {
  sim::DeviceSimConfig cfg;
  cfg.scene = acoustics::Scene::paper_office();
  // Both relays sit between the noise source and the ear: relay 0 leads by
  // more (the device's first choice), relay 1 is the confident runner-up.
  cfg.relay_positions = {{2.0, 2.5, 1.5}, {2.2, 2.5, 1.5}};
  cfg.duration_s = kDuration;
  cfg.seed = 11;
  // Fault the active relay only; relay 1 stays a healthy standby.
  cfg.relay_faults = {sim::make_fault_schedule(scenario, kFaultStart,
                                               kFaultLen)};
  cfg.device.calibration_s = 1.0;
  cfg.device.selection_period_s = 0.5;
  cfg.device.hold_timeout_s = 0.3;
  cfg.device.lanc.fxlms.mu = 0.3;
  cfg.device.lanc.fxlms.leakage = 2e-4;
  cfg.device.enable_handoff = handoff;
  audio::WhiteNoiseSource noise(0.1, 1011);
  return sim::run_device_simulation(noise, cfg);
}

void add_row(eval::Table& table, sim::FaultScenario scenario,
             const sim::SystemResult& r) {
  const double pre = window_db(r, kFaultStart - 1.5, kFaultStart - 0.1);
  const double row[] = {
      pre,
      window_db(r, kFaultStart, kFaultStart + 1.0),
      recovery_s(r, pre),
      window_db(r, kDuration - 2.0, kDuration),
      static_cast<double>(r.handoff_count),
      static_cast<double>(r.device_hold_count),
      r.reacquisition_gap_s,
      r.relay_active_s.size() > 0 ? r.relay_active_s[0] : 0.0,
      r.relay_active_s.size() > 1 ? r.relay_active_s[1] : 0.0,
  };
  table.add_row(sim::fault_scenario_name(scenario), row, 2);
}

}  // namespace

int main() {
  std::printf("Warm-standby failover (%.0f s fault on the active relay at "
              "t = %.1f s; relay 1 is a healthy standby)\n\n",
              kFaultLen, kFaultStart);

  const sim::FaultScenario scenarios[] = {
      sim::FaultScenario::kRelayDropout, sim::FaultScenario::kJammerBurst,
      sim::FaultScenario::kDeepFade, sim::FaultScenario::kImpulseNoise,
      sim::FaultScenario::kClockDrift,
  };

  const std::vector<std::string> cols = {
      "fault",   "pre_dB", "outage_dB", "recover_s", "post_dB",
      "handoffs", "holds",  "gap_s",     "r0_act_s",  "r1_act_s"};
  eval::Table warm(cols);
  eval::Table cold(cols);
  // Every (scenario, policy) run is independent — config and RNG seeds are
  // derived inside run_one — so the 10 simulations sweep in parallel and
  // the tables are filled from the index-ordered results afterwards.
  constexpr std::size_t kScenarios = sizeof(scenarios) / sizeof(scenarios[0]);
  const auto results = sim::parallel_sweep(2 * kScenarios, [&](std::size_t i) {
    return run_one(scenarios[i % kScenarios], /*handoff=*/i < kScenarios);
  });
  for (std::size_t s = 0; s < kScenarios; ++s) {
    add_row(warm, scenarios[s], results[s]);
    add_row(cold, scenarios[s], results[kScenarios + s]);
  }

  std::printf("-- warm standby handoff (enable_handoff = true) --\n");
  warm.print(std::cout);
  std::printf("\n-- drop and re-listen (enable_handoff = false) --\n");
  cold.print(std::cout);

  std::printf(
      "\nExpected shape: on faults the monitor flags (dropout, jammer),\n"
      "the warm rows hand off to relay 1 (handoffs >= 1) with gap_s around\n"
      "hold_timeout + settle and recover_s well under the cold rows, which\n"
      "pay a full selection period of silence plus cold reconvergence.\n"
      "r1_act_s shows the standby carrying the rest of the run. Faults the\n"
      "RF chain absorbs (fade below FM threshold, impulse decimation,\n"
      "clock drift) leave both tables flat - no hold, no handoff.\n");
  return 0;
}
