// Figure 15: the 5-volunteer listening study, reproduced with the
// perceptual-rating model (A-weighted residual loudness -> 1..5 stars with
// per-listener bias). Substitution documented in DESIGN.md: no human
// subjects are available in simulation, but the ordering result — every
// volunteer rates MUTE+Passive above Bose_Overall for both music and
// voice — is what the figure demonstrates.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "eval/listener.hpp"
#include "sim/parallel_sweep.hpp"

int main() {
  using namespace mute;
  using bench::run_scheme;

  std::printf("Figure 15 reproduction: simulated listener panel (5 subjects).\n\n");

  const double kDur = 12.0;
  eval::ListenerPanel panel(5, kDefaultSampleRate, 2026);

  eval::Table table({"listener", "MUTE+P (music)", "Bose_O (music)",
                     "MUTE+P (voice)", "Bose_O (voice)"});

  // Four independent simulations (fixed seeds per run) — sweep in parallel.
  struct Spec {
    sim::Scheme scheme;
    sim::NoiseKind kind;
    unsigned seed;
  };
  const Spec specs[] = {
      {sim::Scheme::kMutePassive, sim::NoiseKind::kMusic, 42},
      {sim::Scheme::kBoseOverall, sim::NoiseKind::kMusic, 42},
      {sim::Scheme::kMutePassive, sim::NoiseKind::kMaleVoice, 43},
      {sim::Scheme::kBoseOverall, sim::NoiseKind::kMaleVoice, 43}};
  const auto runs = sim::parallel_sweep(4, [&](std::size_t i) {
    return run_scheme(specs[i].scheme, specs[i].kind, specs[i].seed, kDur);
  });
  const auto& mute_music = runs[0];
  const auto& bose_music = runs[1];
  const auto& mute_voice = runs[2];
  const auto& bose_voice = runs[3];

  const auto rate = [&](const bench::SchemeRun& run) {
    return panel.rate(run.result.disturbance, run.result.residual);
  };
  const auto mm = rate(mute_music), bm = rate(bose_music);
  const auto mv = rate(mute_voice), bv = rate(bose_voice);

  int mute_wins = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const double row[] = {mm[i].score, bm[i].score, mv[i].score, bv[i].score};
    table.add_row("#" + std::to_string(i + 1), row, 2);
    if (mm[i].score > bm[i].score) ++mute_wins;
    if (mv[i].score > bv[i].score) ++mute_wins;
  }
  table.print(std::cout);
  std::printf("\nMUTE rated above Bose in %d / 10 comparisons "
              "(paper: every volunteer, both sound types).\n",
              mute_wins);
  return 0;
}
