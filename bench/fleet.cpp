// Fleet capacity bench (edge-service runtime tentpole): devices x RTF
// table for the arena-backed, batch-scheduled FleetRuntime, plus a naive
// one-thread-per-device runtime on the same per-device workload as the
// capacity baseline.
//
// RTF is the per-device real-time factor: simulated seconds per wall
// second with every device advancing in lock-step. A runtime serves a
// fleet size in real time iff RTF >= 1. Capacity is reported two ways:
// the largest measured size that sustained RTF >= 1, and the linear
// estimate devices * RTF from the largest measured row (per-device cost
// is ~flat, so the product is ~constant; the table lets you audit that
// assumption). Warm-up — admission, power-up calibration, the first
// selection round — runs untimed in both modes so the table measures the
// served steady state.
//
// Every number is wall-clock on whatever cores the host grants; on a
// single-core host the fleet's win is scheduling and locality (no
// context-switch storm, profile-major batches walking shared stream
// data), not parallel speedup. DESIGN.md S14 records a measured table.
//
// Usage: fleet [--max-devices N] [--workers W] [--sim-seconds S]
//              [--arena-mb M] [--block SAMPLES] [--skip-naive] [--json PATH]
//
// --block sets the scheduling quantum. Throughput runs want a large one
// (default 2048 here, 128 ms): each tenant switch streams the tenant's
// filter state back through the cache hierarchy, so tiny quanta pay that
// reload 8x more often and lose to one-thread-per-device's long OS time
// slices. Latency-sensitive fleets trade capacity for shorter control
// latency by shrinking it (FleetConfig default is 256).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "audio/generators.hpp"
#include "core/mute_device.hpp"
#include "dsp/fir_filter.hpp"
#include "sim/fleet.hpp"
#include "sim/system.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  const char* mode = "";
  std::size_t devices = 0;
  double wall_s = 0.0;
  double rtf = 0.0;
  std::uint64_t heap_allocs = 0;     // fleet mode: worker-lane heap traffic
  std::size_t arena_high_water = 0;  // fleet mode: max tenant arena usage
};

// The shared steady-state workload: short power-up calibration, modest
// taps, no RF chain, looped loud region (the same profile family the
// fleet tests and BM_FleetThroughput use).
mute::sim::FleetProfile make_profile() {
  mute::sim::DeviceSimConfig cfg;
  cfg.duration_s = 2.0;
  cfg.seed = 7;
  cfg.use_rf_link = false;
  cfg.device.calibration_s = 0.25;
  cfg.device.selection_period_s = 0.5;
  cfg.device.secondary_taps = 96;
  cfg.device.lanc.fxlms.causal_taps = 128;
  mute::audio::WhiteNoiseSource noise(0.1, 1011);
  return mute::sim::make_fleet_profile(noise, cfg,
                                       /*loop_steady_state=*/true);
}

Row measure_fleet(const mute::sim::FleetProfile& profile, std::size_t devices,
                  std::size_t workers, double sim_s, std::size_t arena_mb,
                  std::size_t block_samples) {
  const double fs = profile.streams.sample_rate;
  mute::sim::FleetConfig fc;
  fc.workers = workers;
  fc.max_tenants = devices;
  fc.arena_bytes = arena_mb << 20;
  fc.block_samples = block_samples;
  mute::sim::FleetRuntime fleet(fc);
  const std::size_t pid = fleet.add_profile(profile);
  for (std::size_t i = 0; i < devices; ++i) fleet.admit(pid, i + 1);

  const auto blocks_for = [&](double s) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(s * fs / static_cast<double>(fleet.block_samples()))));
  };
  fleet.run_blocks(blocks_for(1.2));  // calibration + first selection
  const std::uint64_t heap_before = fleet.steady_allocations();

  const std::size_t sim_blocks = blocks_for(sim_s);
  const auto t0 = Clock::now();
  fleet.run_blocks(sim_blocks);
  const double wall = seconds_since(t0);

  Row row;
  row.mode = "fleet";
  row.devices = devices;
  row.wall_s = wall;
  row.rtf = static_cast<double>(sim_blocks * fleet.block_samples()) / fs / wall;
  row.heap_allocs = fleet.steady_allocations() - heap_before;
  for (std::size_t i = 0; i < devices; ++i) {
    row.arena_high_water = std::max(
        row.arena_high_water, fleet.stats(i + 1).arena_high_water);
  }
  return row;
}

// The baseline the fleet replaces: one OS thread per device, each owning
// its own heap-constructed device and streaming loop. Warm-up runs
// untimed per thread; two rendezvous points bracket the timed region so
// the wall clock covers exactly the same simulated span as the fleet.
Row measure_naive(const mute::sim::FleetProfile& profile, std::size_t devices,
                  double sim_s) {
  const mute::sim::DeviceStreams& s = profile.streams;
  const double fs = s.sample_rate;
  const std::size_t len = profile.length();
  const std::size_t warm = std::min(
      len, static_cast<std::size_t>(std::ceil(1.2 * fs)));
  const std::size_t sim_samples =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(sim_s * fs)));

  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> threads;
  threads.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    threads.emplace_back([&, i] {
      mute::core::MuteDeviceConfig cfg = s.device;
      cfg.seed = i + 1;
      mute::core::MuteDevice device(cfg);
      mute::dsp::FirFilter hse(s.hse_eff);
      std::vector<mute::Sample> feed(s.x.size());
      mute::Sample error = 0.0f;
      std::size_t cursor = 0;
      const auto run = [&](std::size_t samples) {
        for (std::size_t t = 0; t < samples; ++t) {
          if (cursor >= len) cursor = profile.loop_start;
          for (std::size_t k = 0; k < feed.size(); ++k) {
            feed[k] = s.x[k][cursor];
          }
          const mute::Sample y = device.tick(feed, error);
          const mute::Sample anti = hse.process(y);
          const auto at_ear = static_cast<mute::Sample>(
              static_cast<double>(s.d[cursor]) + static_cast<double>(anti));
          error = at_ear;
          ++cursor;
        }
      };
      run(warm);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      run(sim_samples);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (ready.load(std::memory_order_acquire) < devices) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  while (done.load(std::memory_order_acquire) < devices) {
    std::this_thread::yield();
  }
  const double wall = seconds_since(t0);
  for (auto& t : threads) t.join();

  Row row;
  row.mode = "naive";
  row.devices = devices;
  row.wall_s = wall;
  row.rtf = static_cast<double>(sim_samples) / fs / wall;
  return row;
}

// Largest measured size with RTF >= 1 (0 when even the smallest size
// missed real time).
std::size_t max_realtime(const std::vector<Row>& rows, const char* mode) {
  std::size_t best = 0;
  for (const Row& r : rows) {
    if (std::strcmp(r.mode, mode) == 0 && r.rtf >= 1.0) {
      best = std::max(best, r.devices);
    }
  }
  return best;
}

// Linear capacity estimate devices * RTF from the largest measured row of
// a mode (per-device cost is ~flat in fleet size).
double capacity_estimate(const std::vector<Row>& rows, const char* mode) {
  double est = 0.0;
  std::size_t at = 0;
  for (const Row& r : rows) {
    if (std::strcmp(r.mode, mode) == 0 && r.devices >= at) {
      at = r.devices;
      est = static_cast<double>(r.devices) * r.rtf;
    }
  }
  return est;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_devices = 512;
  std::size_t workers = 0;  // 0 = default_sweep_workers (hardware)
  double sim_s = 0.5;
  std::size_t arena_mb = 4;
  std::size_t block_samples = 2048;
  bool run_naive = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--max-devices") {
      max_devices = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--sim-seconds") {
      sim_s = std::strtod(next(), nullptr);
    } else if (arg == "--arena-mb") {
      arena_mb = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--block") {
      block_samples =
          static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--skip-naive") {
      run_naive = false;
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const mute::sim::FleetProfile profile = make_profile();
  std::printf(
      "fleet capacity bench: <=%zu devices, %zu workers (0=auto), %.2f s "
      "timed, %zu MiB/tenant arena, %zu-sample blocks, %u hardware "
      "threads\n\n",
      max_devices, workers, sim_s, arena_mb, block_samples,
      std::thread::hardware_concurrency());

  std::vector<Row> rows;
  const auto print = [](const Row& r) {
    std::printf("%-5s %5zu devices  wall %7.3f s  RTF %7.3f%s", r.mode,
                r.devices, r.wall_s, r.rtf, r.rtf >= 1.0 ? "  realtime" : "");
    if (std::strcmp(r.mode, "fleet") == 0) {
      std::printf("  heap_allocs %llu  arena_hw %zu",
                  static_cast<unsigned long long>(r.heap_allocs),
                  r.arena_high_water);
    }
    std::printf("\n");
  };

  // Doubling size sweep per mode, stopping once a mode is clearly past
  // capacity (RTF < 0.5) — the table's purpose is to bracket RTF = 1.
  for (const char* mode : {"fleet", "naive"}) {
    if (std::strcmp(mode, "naive") == 0 && !run_naive) continue;
    for (std::size_t n = 1; n <= max_devices; n *= 2) {
      const Row row =
          std::strcmp(mode, "fleet") == 0
              ? measure_fleet(profile, n, workers, sim_s, arena_mb,
                              block_samples)
              : measure_naive(profile, n, sim_s);
      rows.push_back(row);
      print(row);
      if (row.rtf < 0.5) break;
    }
    std::printf("\n");
  }

  const std::size_t fleet_max = max_realtime(rows, "fleet");
  const std::size_t naive_max = max_realtime(rows, "naive");
  const double fleet_est = capacity_estimate(rows, "fleet");
  const double naive_est = capacity_estimate(rows, "naive");
  std::printf("fleet: max measured realtime size %zu, linear capacity "
              "estimate %.0f devices\n",
              fleet_max, fleet_est);
  if (run_naive) {
    std::printf("naive: max measured realtime size %zu, linear capacity "
                "estimate %.0f devices\n",
                naive_max, naive_est);
    if (naive_est > 0.0) {
      std::printf("capacity ratio (fleet/naive, linear estimate): %.2fx\n",
                  fleet_est / naive_est);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"workers\": " << workers << ",\n  \"sim_seconds\": " << sim_s
        << ",\n  \"hardware_threads\": " << std::thread::hardware_concurrency()
        << ",\n  \"fleet_max_realtime\": " << fleet_max
        << ",\n  \"naive_max_realtime\": " << naive_max
        << ",\n  \"fleet_capacity_estimate\": " << fleet_est
        << ",\n  \"naive_capacity_estimate\": " << naive_est
        << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"mode\": \"" << r.mode << "\", \"devices\": " << r.devices
          << ", \"wall_s\": " << r.wall_s << ", \"rtf\": " << r.rtf
          << ", \"heap_allocs\": " << r.heap_allocs
          << ", \"arena_high_water\": " << r.arena_high_water << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
