// Benchmarks for the Section 6 / 4.4 extension features:
//   1. multiple simultaneous noise sources: single- vs multi-reference,
//   2. head mobility: cancellation vs drift,
//   3. ear-canal mismatch: cancellation at the drum vs at the error mic,
//   4. FDAF vs transversal NLMS identification speed,
//   5. privacy scrambling: legitimate receiver vs eavesdropper.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "acoustics/ear_canal.hpp"
#include "adaptive/fdaf.hpp"
#include "adaptive/fxlms_multi.hpp"
#include "adaptive/lms.hpp"
#include "audio/generators.hpp"
#include "bench_util.hpp"
#include "common/math_utils.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/signal_ops.hpp"
#include "rf/relay.hpp"

namespace {

using namespace mute;

double power_db(std::span<const Sample> resid, std::span<const Sample> dist) {
  const std::size_t skip = resid.size() / 2;
  return amplitude_to_db(
      mute::dsp::rms(resid.subspan(skip)) /
      std::max(mute::dsp::rms(dist.subspan(skip)), 1e-12));
}

}  // namespace

int main() {
  std::printf("Extension ablations (paper Sections 6 / 4.4 future work).\n");

  // ---- 1. Multiple simultaneous sources --------------------------------
  {
    // Synthetic two-source world (different channels per source); compare
    // one reference that hears the mix vs one reference per source.
    Rng ra(1), rb(2);
    const int t_len = 80000;
    std::vector<float> na(t_len + 16), nb(t_len + 16);
    for (auto& v : na) v = static_cast<float>(ra.gaussian(0.1));
    for (auto& v : nb) v = static_cast<float>(rb.gaussian(0.1));
    std::vector<double> hse(4, 0.0);
    hse[1] = 1.0;

    adaptive::FxlmsOptions opts;
    opts.causal_taps = 48;
    opts.noncausal_taps = 8;
    opts.mu = 0.3;

    // Single reference: hears a MIX of both sources (with different gains
    // than the ear does — the fundamental single-reference limitation).
    adaptive::FxlmsEngine single(hse, opts);
    adaptive::MultiFxlmsEngine multi(hse, {opts, opts});
    mute::dsp::FirFilter plant_s(hse), plant_m(hse);
    mute::dsp::FirFilter fda_s({0.0, 0.0, 0.8, 0.2}), fda_m({0.0, 0.0, 0.8, 0.2});
    mute::dsp::FirFilter fdb_s({0.0, 0.0, 0.0, -0.6, 0.3}),
        fdb_m({0.0, 0.0, 0.0, -0.6, 0.3});

    Signal resid_s(t_len), resid_m(t_len), dist(t_len);
    mute::dsp::FirFilter fda_d({0.0, 0.0, 0.8, 0.2}),
        fdb_d({0.0, 0.0, 0.0, -0.6, 0.3});
    for (int t = 0; t < t_len; ++t) {
      dist[t] = fda_d.process(na[t]) + fdb_d.process(nb[t]);
      // single ref = 1.0*na + 0.5*nb as heard at one relay position
      const Sample x_mix = na[t + 8] + 0.5f * nb[t + 8];
      const Sample ys = single.step_output(x_mix);
      const float es = fda_s.process(na[t]) + fdb_s.process(nb[t]) +
                       plant_s.process(ys);
      single.adapt(es);
      resid_s[t] = es;

      const Sample refs[] = {na[t + 8], nb[t + 8]};
      const Sample ym = multi.step_output(refs);
      const float em = fda_m.process(na[t]) + fdb_m.process(nb[t]) +
                       plant_m.process(ym);
      multi.adapt(em);
      resid_m[t] = em;
    }
    std::printf("\n-- two simultaneous sources (Section 6) --\n");
    std::printf("single reference (hears the mix) : %6.1f dB\n",
                power_db(resid_s, dist));
    std::printf("multi-reference (one per source) : %6.1f dB\n",
                power_db(resid_m, dist));
  }

  // ---- 2. Head mobility -------------------------------------------------
  {
    eval::Table table({"drift_m", "cancellation_dB"});
    for (double drift : {0.0, 0.1, 0.3, 0.6}) {
      auto run = bench::run_scheme(
          sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, 8.0,
          [&](sim::SystemConfig& c) {
            c.use_rf_link = false;
            c.head_drift_m = drift;
          });
      const double row[] = {power_db(run.result.residual,
                                     run.result.disturbance)};
      table.add_row(eval::fmt(drift, 1), row, 1);
    }
    std::printf("\n-- head mobility (Section 6): drift over an 8 s run --\n");
    table.print(std::cout);
  }

  // ---- 3. Ear canal: drum vs error mic ----------------------------------
  {
    // The drum-vs-mic discrepancy comes from the ambient wave and the
    // anti-noise entering the canal from different incidence angles: their
    // canal transfer functions differ slightly, so a sum that nulls at the
    // mic does not null exactly at the drum. `mismatch` scales that
    // difference (0 = the paper's working assumption).
    eval::Table table({"canal_mismatch", "at_error_mic_dB", "at_drum_dB"});
    auto run = bench::run_scheme(sim::Scheme::kMuteHollow,
                                 sim::NoiseKind::kWhite, 42, 8.0,
                                 [](sim::SystemConfig& c) {
                                   c.use_rf_link = false;
                                 });
    const double fs = run.result.sample_rate;
    for (double mismatch : {0.0, 0.3, 1.0}) {
      acoustics::EarCanal canal_ambient(0.025, 0.0, fs);
      acoustics::EarCanal canal_anti(0.025, mismatch, fs);
      acoustics::EarCanal canal_dist(0.025, 0.0, fs);
      const auto drum_dist = canal_dist.apply(run.result.ambient_at_ear);
      const auto amb = canal_ambient.apply(run.result.ambient_at_ear);
      const auto anti = canal_anti.apply(run.result.anti_at_ear);
      Signal drum_resid(amb.size());
      for (std::size_t i = 0; i < amb.size(); ++i) {
        drum_resid[i] = static_cast<Sample>(static_cast<double>(amb[i]) +
                                            static_cast<double>(anti[i]));
      }
      const double row[] = {
          power_db(run.result.residual, run.result.disturbance),
          power_db(drum_resid, drum_dist)};
      table.add_row(eval::fmt(mismatch, 1), row, 1);
    }
    std::printf("\n-- cancellation at the ear-drum (Section 6) --\n");
    table.print(std::cout);
    std::printf("(mismatch 0 = the paper's assumption that the drum hears\n"
                " what the error mic hears; larger = anti-noise enters the\n"
                " canal from a different angle than the ambient wave)\n");
  }

  // ---- 4. FDAF vs NLMS ----------------------------------------------------
  {
    Rng rng(9);
    std::vector<double> h(256, 0.0);
    for (auto& v : h) v = rng.gaussian(0.1);
    mute::dsp::Biquad color = mute::dsp::Biquad::lowpass(900.0, 1.5, 16000.0);
    mute::dsp::FirFilter plant(h);
    Signal x(64000), d(64000);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = color.process(static_cast<Sample>(rng.gaussian(0.3)));
      d[i] = plant.process(x[i]);
    }
    eval::Table table({"after_s", "NLMS_misalign_dB", "FDAF_misalign_dB"});
    adaptive::AdaptiveFir nlms(256, {.mu = 0.5});
    adaptive::BlockFdaf fdaf({.taps = 256, .mu = 0.9, .power_alpha = 0.6});
    std::size_t pos = 0;
    for (double seconds : {0.5, 1.0, 2.0, 4.0}) {
      const auto until = static_cast<std::size_t>(seconds * 16000.0);
      for (; pos < until; ++pos) nlms.step(x[pos], d[pos]);
      adaptive::BlockFdaf fresh({.taps = 256, .mu = 0.9, .power_alpha = 0.6});
      fresh.identify(std::span<const Sample>(x.data(), until),
                     std::span<const Sample>(d.data(), until));
      const double row[] = {adaptive::misalignment_db(nlms.weights(), h),
                            adaptive::misalignment_db(fresh.weights(), h)};
      table.add_row(eval::fmt(seconds, 1), row, 1);
    }
    std::printf("\n-- secondary-path identification: FDAF vs NLMS "
                "(colored excitation) --\n");
    table.print(std::cout);
  }

  // ---- 5. Privacy scrambling ---------------------------------------------
  {
    rf::RelayConfig cfg;
    cfg.scramble = true;
    rf::RelayLink link(cfg, 31);
    rf::RelayConfig plain_cfg;
    rf::RelayLink plain(plain_cfg, 31);

    audio::ToneSource tone(1500.0, 0.4, cfg.audio_rate);
    const auto audio = tone.generate(32000);
    const auto legit = link.process(audio);
    const auto eaves = link.eavesdrop(audio);

    // Correlation maximized over lag (the link has ~1 ms of group delay).
    auto correlation = [&](const Signal& heard) {
      double best = 0.0;
      for (int lag = 0; lag <= 64; ++lag) {
        double num = 0.0, xx = 0.0, yy = 0.0;
        for (std::size_t i = 8000; i + lag < heard.size(); ++i) {
          num += static_cast<double>(audio[i]) *
                 static_cast<double>(heard[i + lag]);
          xx += static_cast<double>(audio[i]) * static_cast<double>(audio[i]);
          yy += static_cast<double>(heard[i + lag]) *
                static_cast<double>(heard[i + lag]);
        }
        best = std::max(best,
                        std::abs(num) / std::sqrt(std::max(xx * yy, 1e-30)));
      }
      return best;
    };
    std::printf("\n-- privacy scrambling (Section 4.4) --\n");
    std::printf("legitimate receiver SNDR (scrambled link): %5.1f dB\n",
                link.measure_sndr_db(1500.0));
    std::printf("plain link SNDR (no scrambling)          : %5.1f dB\n",
                plain.measure_sndr_db(1500.0));
    std::printf("eavesdropper correlation with the audio  : %5.3f "
                "(legit: %5.3f)\n",
                correlation(eaves), correlation(legit));
  }
  return 0;
}
