// Section 3.1 analysis: the timing story in numbers. Equation 4 lookahead
// vs relay/ear geometry, Equation 3 latency budgets, and the resulting
// non-causal tap counts at the default sample rate.
#include <cstdio>
#include <iostream>

#include "acoustics/environment.hpp"
#include "core/timing.hpp"
#include "eval/report.hpp"
#include "rf/relay.hpp"

int main() {
  using namespace mute;

  std::printf("Timing-budget analysis (Equations 3 and 4).\n\n");

  // 1. Lookahead vs distance advantage (Eq. 4).
  {
    eval::Table table({"de_minus_dr_m", "lookahead_ms", "taps_at_16kHz"});
    for (double d : {0.25, 0.5, 1.0, 2.0, 3.4, 5.0}) {
      const double la = core::geometric_lookahead_s(0.0, d);
      const double row[] = {
          la * 1e3,
          static_cast<double>(core::lookahead_taps(la, kDefaultSampleRate))};
      table.add_row(eval::fmt(d, 2), row, 1);
    }
    std::printf("-- Equation 4: geometry -> lookahead "
                "(paper: 1 m ~ 3 ms, 100x a headphone) --\n");
    table.print(std::cout);
  }

  // 2. Latency budgets (Eq. 3).
  {
    eval::Table table({"device", "adc_us", "dsp_us", "dac_us", "spk_us",
                       "total_us"});
    const auto hp = core::LatencyBudget::headphone();
    const auto mute_dev = core::LatencyBudget::mute_ear_device();
    const double r1[] = {hp.adc_us, hp.dsp_us, hp.dac_us, hp.speaker_us,
                         hp.total_us()};
    const double r2[] = {mute_dev.adc_us, mute_dev.dsp_us, mute_dev.dac_us,
                         mute_dev.speaker_us, mute_dev.total_us()};
    table.add_row("headphone", r1, 0);
    table.add_row("MUTE ear device", r2, 0);
    std::printf("\n-- Equation 3: processing budgets "
                "(a headphone has ~30 us of acoustic lead to spend) --\n");
    table.print(std::cout);
  }

  // 3. The paper-office deployment end to end.
  {
    const auto scene = acoustics::Scene::paper_office();
    const auto ch = acoustics::build_channels(scene);
    rf::RelayConfig rf_cfg;
    rf::RelayLink link(rf_cfg, 7);
    const double link_s =
        link.measure_latency_samples() / rf_cfg.audio_rate;
    const double usable = core::usable_lookahead_s(
        ch.lookahead_s, core::LatencyBudget::mute_ear_device(), link_s);
    std::printf("\n-- paper-office deployment --\n");
    std::printf("acoustic lookahead (Eq. 4)   : %7.2f ms\n",
                ch.lookahead_s * 1e3);
    std::printf("FM relay link group delay    : %7.2f ms\n", link_s * 1e3);
    std::printf("processing budget (Eq. 3)    : %7.2f ms\n",
                core::LatencyBudget::mute_ear_device().total_s() * 1e3);
    std::printf("usable lookahead             : %7.2f ms  -> N = %zu taps\n",
                usable * 1e3,
                core::lookahead_taps(usable, scene.sample_rate));
    std::printf("\nheadphone comparison: ~30 us lead - ~100 us budget -> "
                "deadline missed by ~70 us (the paper's Figure 5a).\n");
  }
  return 0;
}
