// Figure 16: cancellation as lookahead shrinks toward the Equation-3
// lower bound. Exactly like the paper, the physical scene is untouched;
// a delayed line buffer inside the DSP starves the reference of lead time.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/parallel_sweep.hpp"

int main() {
  using namespace mute;
  using bench::run_scheme;

  std::printf("Figure 16 reproduction: impact of shorter lookahead.\n");
  std::printf("Paper expectation: cancellation improves monotonically from\n"
              "the Lower Bound (≈ no effect) as lookahead grows.\n");

  const double kDur = 12.0;
  // Discover the total usable lookahead of the unmodified deployment.
  const auto baseline =
      run_scheme(sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, 4.0);
  const double total_s = baseline.result.usable_lookahead_s;
  std::printf("\nusable lookahead above the bound: %.2f ms\n", total_s * 1e3);

  struct Variant {
    const char* label;
    double more_ms;
  };
  const Variant variants[] = {{"Lower Bound", 0.0},
                              {"0.38ms More", 0.38},
                              {"0.75ms More", 0.75},
                              {"1.13ms More", 1.13}};

  // The baseline discovery run above is sequential (its lookahead feeds
  // every variant's config); the four variant runs are independent and
  // sweep in parallel.
  constexpr std::size_t kVariants = sizeof(variants) / sizeof(variants[0]);
  std::vector<std::pair<std::string, const eval::CancellationSpectrum*>> curves;
  const auto runs = sim::parallel_sweep(kVariants, [&](std::size_t i) {
    const double extra = std::max(0.0, total_s - variants[i].more_ms * 1e-3);
    return run_scheme(
        sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, kDur,
        [&](sim::SystemConfig& cfg) { cfg.extra_reference_delay_s = extra; });
  });
  for (std::size_t i = 0; i < runs.size(); ++i) {
    curves.emplace_back(variants[i].label, &runs[i].spectrum);
  }
  bench::print_cancellation_curves(
      "Figure 16: cancellation vs frequency per lookahead margin", curves);

  std::printf("\n-- broadband averages --\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-12s : %6.1f dB (N = %3zu taps)\n", variants[i].label,
                runs[i].spectrum.average_db(30, 4000),
                runs[i].result.noncausal_taps);
  }
  return 0;
}
