// Figure 16: cancellation as lookahead shrinks toward the Equation-3
// lower bound. Exactly like the paper, the physical scene is untouched;
// a delayed line buffer inside the DSP starves the reference of lead time.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/lanc.hpp"
#include "sim/parallel_sweep.hpp"

int main() {
  using namespace mute;
  using bench::run_scheme;

  std::printf("Figure 16 reproduction: impact of shorter lookahead.\n");
  std::printf("Paper expectation: cancellation improves monotonically from\n"
              "the Lower Bound (≈ no effect) as lookahead grows.\n");

  const double kDur = 12.0;
  // Discover the total usable lookahead of the unmodified deployment.
  const auto baseline =
      run_scheme(sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, 4.0);
  const double total_s = baseline.result.usable_lookahead_s;
  std::printf("\nusable lookahead above the bound: %.2f ms\n", total_s * 1e3);

  struct Variant {
    const char* label;
    double more_ms;
  };
  const Variant variants[] = {{"Lower Bound", 0.0},
                              {"0.38ms More", 0.38},
                              {"0.75ms More", 0.75},
                              {"1.13ms More", 1.13}};

  // The baseline discovery run above is sequential (its lookahead feeds
  // every variant's config); the four variant runs are independent and
  // sweep in parallel.
  constexpr std::size_t kVariants = sizeof(variants) / sizeof(variants[0]);
  std::vector<std::pair<std::string, const eval::CancellationSpectrum*>> curves;
  const auto runs = sim::parallel_sweep(kVariants, [&](std::size_t i) {
    const double extra = std::max(0.0, total_s - variants[i].more_ms * 1e-3);
    return run_scheme(
        sim::Scheme::kMuteHollow, sim::NoiseKind::kWhite, 42, kDur,
        [&](sim::SystemConfig& cfg) { cfg.extra_reference_delay_s = extra; });
  });
  for (std::size_t i = 0; i < runs.size(); ++i) {
    curves.emplace_back(variants[i].label, &runs[i].spectrum);
  }
  bench::print_cancellation_curves(
      "Figure 16: cancellation vs frequency per lookahead margin", curves);

  std::printf("\n-- broadband averages --\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-12s : %6.1f dB (N = %3zu taps)\n", variants[i].label,
                runs[i].spectrum.average_db(30, 4000),
                runs[i].result.noncausal_taps);
  }

  // -- lookahead-vs-block sweep (DESIGN.md §13) ---------------------------
  // How the kFdBlock engine spends a fixed acoustic lead: every power-of-
  // two block B <= N trades B samples of pipeline fill for an O(log)
  // per-sample engine, leaving N - B future taps. Cancellation must stay
  // flat across the sweep (block latency is free up to the lead) while
  // the per-tick cost drops — the whole point of the block engine.
  std::printf("\n-- lookahead-vs-block sweep (lead fixed at 64 samples) --\n");
  std::printf("%-14s %-10s %-12s %-12s\n", "engine", "block", "residual dB",
              "ns/tick");
  const std::size_t kLead = 64;
  const int kTicks = 48000;
  for (const std::size_t block : {std::size_t{0}, std::size_t{8},
                                  std::size_t{16}, std::size_t{32}}) {
    std::vector<double> hse(4, 0.0);
    hse[1] = 1.0;
    core::LancOptions opts;
    opts.fxlms.causal_taps = 1024;  // long enough that the per-sample
                                    // engine's O(taps) cost shows
    opts.fxlms.noncausal_taps = kLead;
    if (block == 0) {
      opts.engine = core::LancEngineKind::kTimeDomain;
    } else {
      opts.engine = core::LancEngineKind::kFdBlock;
      opts.fd_block = block;
    }
    core::LancController lanc(hse, opts);

    Rng rng(21);
    std::vector<Sample> n_sig(kTicks + kLead);
    for (auto& v : n_sig) v = static_cast<Sample>(rng.gaussian(0.1));
    std::vector<Sample> y(kTicks, 0.0f);
    double err = 0.0;
    int count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < kTicks; ++t) {
      y[t] = lanc.tick(n_sig[t + kLead]);
      const Sample e =
          n_sig[t] + ((t >= 1) ? y[t - 1] : Sample{0});
      lanc.observe_error(e);
      if (t > 3 * kTicks / 4) {
        err += static_cast<double>(e) * static_cast<double>(e);
        ++count;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns_per_tick =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kTicks;
    const double db = 10.0 * std::log10(err / count / 0.01);
    std::printf("%-14s %-10zu %-12.1f %-12.0f\n",
                block == 0 ? "time-domain" : "fd-block", block, db,
                ns_per_tick);
  }
  return 0;
}
