// Figure 18: GCC-PHAT correlation between the wirelessly forwarded sound
// and the error-microphone signal — one case with positive lookahead
// (relay near the source) and one with negative (source near the client).
#include <cstdio>
#include <iostream>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "core/gcc_phat.hpp"
#include "eval/report.hpp"

int main() {
  using namespace mute;

  std::printf("Figure 18 reproduction: GCC-PHAT relay-vs-ear correlation.\n\n");

  auto scene = acoustics::Scene::paper_office();
  const double fs = scene.sample_rate;
  audio::WhiteNoiseSource noise(0.2, 3);
  const auto n_sig = noise.generate(static_cast<std::size_t>(fs));

  // Positive case: the standard deployment (relay by the door).
  const auto ch_pos = acoustics::build_channels(scene);
  const auto x_pos = ch_pos.h_nr.apply(n_sig);
  const auto e_pos = ch_pos.h_ne.apply(n_sig);
  const auto pos = core::gcc_phat(x_pos, e_pos, fs, 0.012);

  // Negative case: the noise source moved next to the listener's desk, so
  // the wall relay hears it *after* the ear device does.
  auto near_scene = scene;
  near_scene.noise_source = {5.2, 2.8, 1.2};
  const auto ch_neg = acoustics::build_channels(near_scene);
  const auto x_neg = ch_neg.h_nr.apply(n_sig);
  const auto e_neg = ch_neg.h_ne.apply(n_sig);
  const auto neg = core::gcc_phat(x_neg, e_neg, fs, 0.012);

  // Decimate both correlation curves onto a common lag grid for printing.
  std::vector<double> lag_ms, pos_curve, neg_curve;
  for (std::size_t i = 0; i < pos.lag_s.size(); i += 8) {
    lag_ms.push_back(pos.lag_s[i] * 1e3);
    pos_curve.push_back(pos.correlation[i]);
    neg_curve.push_back(neg.correlation[i]);
  }
  std::vector<eval::Series> series = {{"positive lookahead", pos_curve},
                                      {"negative lookahead", neg_curve}};
  eval::print_ascii_chart(std::cout, lag_ms, series, "lag (ms)",
                          "generalized correlation");

  std::printf("\npositive case: peak at %+.2f ms (geometry predicts %+.2f ms)\n",
              pos.peak_lag_s * 1e3, ch_pos.lookahead_s * 1e3);
  std::printf("negative case: peak at %+.2f ms (geometry predicts %+.2f ms)\n",
              neg.peak_lag_s * 1e3, ch_neg.lookahead_s * 1e3);
  std::printf("\nMUTE invokes LANC only when the peak lag is positive.\n");
  return 0;
}
