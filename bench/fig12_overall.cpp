// Figure 12: overall cancellation vs frequency for the four schemes
// (Bose_Active, Bose_Overall, MUTE_Hollow, MUTE+Passive) under wide-band
// white noise, plus the headline averages quoted in Section 1/5.2.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/parallel_sweep.hpp"

int main() {
  using namespace mute;
  using bench::run_scheme;

  std::printf("Figure 12 reproduction: wide-band white noise, office scene.\n");
  std::printf("Paper expectations: Bose_Active works only below ~1 kHz;\n"
              "MUTE_Hollow roughly flat and ~0.9 dB short of Bose_Overall;\n"
              "MUTE+Passive ~8.9 dB better than Bose_Overall.\n");

  const double kDur = 12.0;
  // The four scheme runs share nothing (per-run configs, fixed seeds), so
  // they sweep in parallel; results come back in scheme order.
  const sim::Scheme schemes[] = {
      sim::Scheme::kBoseActive, sim::Scheme::kBoseOverall,
      sim::Scheme::kMuteHollow, sim::Scheme::kMutePassive};
  const auto runs = sim::parallel_sweep(4, [&](std::size_t i) {
    return run_scheme(schemes[i], sim::NoiseKind::kWhite, 42, kDur);
  });
  const auto& bose_active = runs[0];
  const auto& bose_overall = runs[1];
  const auto& mute_hollow = runs[2];
  const auto& mute_passive = runs[3];

  bench::print_cancellation_curves(
      "Figure 12: cancellation vs frequency (dB)",
      {{"Bose_Active", &bose_active.spectrum},
       {"Bose_Overall", &bose_overall.spectrum},
       {"MUTE_Hollow", &mute_hollow.spectrum},
       {"MUTE+Passive", &mute_passive.spectrum}});

  const double ba_low = bose_active.spectrum.average_db(30, 1000);
  const double mh_low = mute_hollow.spectrum.average_db(30, 1000);
  const double bo_bb = bose_overall.spectrum.average_db(30, 4000);
  const double mh_bb = mute_hollow.spectrum.average_db(30, 4000);
  const double mp_bb = mute_passive.spectrum.average_db(30, 4000);

  std::printf("\n-- headline numbers (paper -> measured) --\n");
  std::printf("MUTE vs Bose_Active within 1 kHz : 6.7 dB -> %5.1f dB\n",
              ba_low - mh_low);
  std::printf("Bose_Overall broadband avg       : -15 dB -> %5.1f dB\n",
              bo_bb);
  std::printf("MUTE_Hollow vs Bose_Overall      : -0.9 dB -> %5.1f dB\n",
              mh_bb - bo_bb);
  std::printf("MUTE+Passive vs Bose_Overall     : +8.9 dB -> %5.1f dB\n",
              bo_bb - mp_bb);
  std::printf("\n-- timing diagnostics (MUTE_Hollow) --\n");
  std::printf("acoustic lookahead %.2f ms | FM link delay %.2f ms | "
              "usable %.2f ms | N = %zu taps\n",
              mute_hollow.result.acoustic_lookahead_s * 1e3,
              mute_hollow.result.link_delay_s * 1e3,
              mute_hollow.result.usable_lookahead_s * 1e3,
              mute_hollow.result.noncausal_taps);
  return 0;
}
