// Fleet soak harness (edge-service runtime, satellite 3): a seeded
// multi-tenant churn run at fleet scale — mixed input profiles (including
// one with a scripted relay dropout riding the RF chain), continuous
// admit/drain churn, and the PR 2 survival contract held PER TENANT: no
// tenant's ear may end up meaningfully louder than passive in any
// disturbance-audible window, fault episodes included. Also enforces the
// fleet memory contract: zero global-heap allocations from worker lanes
// in steady state (when the operator-new interposition is compiled in).
//
// Prints the worst offenders and an aggregate verdict, optionally writes
// a JSON artifact, and exits non-zero on any violation — every failure
// reproduces exactly from its printed (seed, devices, sim-seconds)
// triple because the whole fleet is deterministic in the admission
// sequence (DESIGN.md S10/S14).
//
// Usage: fleet_soak [--devices N] [--sim-seconds S] [--workers W]
//                   [--churn-blocks B] [--seed K] [--arena-mb M]
//                   [--json PATH]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "audio/generators.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "sim/fleet.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace {

constexpr double kLouderMarginDb = 3.0;  // PR 2 soak margin

// Mixed tenant population: two benign spectra plus a faulty profile whose
// relay feed dies mid-stream (kRelayDropout) — the case the never-louder
// invariant exists for.
std::vector<mute::sim::FleetProfile> make_profiles() {
  const auto base = [] {
    mute::sim::DeviceSimConfig cfg;
    cfg.duration_s = 2.0;
    cfg.seed = 7;
    cfg.use_rf_link = false;
    cfg.device.calibration_s = 0.25;
    cfg.device.selection_period_s = 0.5;
    cfg.device.secondary_taps = 96;
    cfg.device.lanc.fxlms.causal_taps = 128;
    return cfg;
  };

  std::vector<mute::sim::FleetProfile> profiles;
  {
    mute::audio::WhiteNoiseSource noise(0.1, 4044);
    profiles.push_back(
        mute::sim::make_fleet_profile(noise, base(), /*loop=*/true));
  }
  {
    // Temporally distinct from profile 0: speech-pause burst structure
    // (broadband when on). Deliberately broadband — this harness showed
    // that COLORED ambient references (PinkNoiseSource, MachineHumSource)
    // reproducibly diverge the canceller by tens of dB once serving
    // starts, with the compact soak config AND with full device defaults;
    // that is a pre-existing adaptive-layer weakness, tracked in
    // ROADMAP.md (colored-reference hardening), not a fleet property
    // under test here.
    mute::audio::IntermittentSource noise(
        std::make_unique<mute::audio::WhiteNoiseSource>(0.12, 909), 16000.0,
        /*min_on_s=*/0.4, /*max_on_s=*/0.8, /*min_off_s=*/0.1,
        /*max_off_s=*/0.3, /*seed=*/606);
    profiles.push_back(
        mute::sim::make_fleet_profile(noise, base(), /*loop=*/true));
  }
  {
    mute::sim::DeviceSimConfig cfg = base();
    cfg.use_rf_link = true;
    cfg.relay_positions = {{2.0, 2.5, 1.5}, {2.2, 2.5, 1.5}};
    cfg.relay_faults = {mute::sim::make_fault_schedule(
        mute::sim::FaultScenario::kRelayDropout, 1.0, 0.5)};
    cfg.device.hold_timeout_s = 0.3;
    mute::audio::WhiteNoiseSource noise(0.1, 4044);
    profiles.push_back(mute::sim::make_fleet_profile(noise, cfg, /*loop=*/true));
  }
  return profiles;
}

struct Verdict {
  std::uint64_t tenant = 0;
  std::size_t profile = 0;
  double worst_excess_db = 0.0;
  double worst_excess_t_s = 0.0;
  std::uint64_t samples = 0;
  bool passed = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 1024;
  double sim_s = 4.0;
  std::size_t workers = 0;  // 0 = default_sweep_workers
  std::size_t churn_blocks = 64;
  std::uint64_t seed = 1;
  std::size_t arena_mb = 8;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--devices") {
      devices = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--sim-seconds") {
      sim_s = std::strtod(next(), nullptr);
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--churn-blocks") {
      churn_blocks = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--arena-mb") {
      arena_mb = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<mute::sim::FleetProfile> profiles = make_profiles();
  const double fs = profiles.front().streams.sample_rate;

  mute::sim::FleetConfig fc;
  fc.workers = workers;
  fc.max_tenants = devices;
  fc.arena_bytes = arena_mb << 20;
  mute::sim::FleetRuntime fleet(fc);
  std::vector<std::size_t> pids;
  pids.reserve(profiles.size());
  for (const auto& p : profiles) pids.push_back(fleet.add_profile(p));

  std::printf(
      "fleet soak: %zu devices, %.1f s, seed %llu, %zu workers (0=auto), "
      "%zu profiles, churn every %zu blocks\n\n",
      devices, sim_s, static_cast<unsigned long long>(seed), workers,
      profiles.size(), churn_blocks);

  // Deterministic admission sequence: profile choice and device seed both
  // come from one seeded stream, so a failing run reproduces exactly.
  mute::Rng rng(seed);
  std::uint64_t device_seed = 1;
  std::vector<std::uint64_t> live;
  live.reserve(devices);
  const auto admit_one = [&] {
    const auto pid = pids[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(pids.size()) - 1))];
    live.push_back(fleet.admit(pid, device_seed++));
  };
  for (std::size_t i = 0; i < devices; ++i) admit_one();

  // Churn rounds: every `churn_blocks` drain the oldest ~1/16 of the
  // fleet and admit replacements, until the target simulated span is
  // done. Evicted tenants carry their verdict into completed().
  const std::size_t total_blocks = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(sim_s * fs / static_cast<double>(fleet.block_samples()))));
  const std::size_t churn_count = std::max<std::size_t>(1, devices / 16);
  std::size_t blocks_done = 0;
  while (blocks_done < total_blocks) {
    const std::size_t step = std::min(churn_blocks, total_blocks - blocks_done);
    fleet.run_blocks(step);
    blocks_done += step;
    if (blocks_done >= total_blocks) break;
    for (std::size_t i = 0; i < churn_count && !live.empty(); ++i) {
      fleet.drain(live.front());
      live.erase(live.begin());
    }
    // One block completes the 5 ms drain fade; the next block boundary's
    // control pass evicts the drained tenants and frees their slots.
    fleet.run_blocks(2);
    blocks_done += 2;
    for (std::size_t i = 0; i < churn_count; ++i) admit_one();
  }

  // Verdicts: every tenant that saw at least one disturbance-audible
  // window, evicted or still live.
  std::vector<Verdict> verdicts;
  const auto judge = [&](const mute::sim::TenantStats& s) {
    if (s.windows == 0) return;  // drained before any audible window
    Verdict v;
    v.tenant = s.id;
    v.profile = s.profile;
    v.worst_excess_db = s.worst_excess_db;
    v.worst_excess_t_s = s.worst_excess_t_s;
    v.samples = s.samples;
    v.passed = s.worst_excess_db <= kLouderMarginDb;
    verdicts.push_back(v);
  };
  for (const auto& s : fleet.completed()) judge(s);
  for (const std::uint64_t id : live) judge(fleet.stats(id));

  std::size_t failed = 0;
  for (const auto& v : verdicts) failed += v.passed ? 0 : 1;
  std::sort(verdicts.begin(), verdicts.end(), [](const auto& a, const auto& b) {
    return a.worst_excess_db > b.worst_excess_db;
  });
  const std::size_t shown = std::min<std::size_t>(verdicts.size(), 10);
  std::printf("worst %zu of %zu judged tenants (margin %+.1f dB):\n", shown,
              verdicts.size(), kLouderMarginDb);
  for (std::size_t i = 0; i < shown; ++i) {
    const Verdict& v = verdicts[i];
    std::printf("tenant %-6llu %s profile %zu  worst_window %+6.2f dB @ "
                "%5.2f s  (%.2f s served)\n",
                static_cast<unsigned long long>(v.tenant),
                v.passed ? "PASS" : "FAIL", v.profile, v.worst_excess_db,
                v.worst_excess_t_s, static_cast<double>(v.samples) / fs);
  }

  const std::uint64_t heap = fleet.steady_allocations();
  const bool heap_tracked = mute::RtAllocationGuard::interposition_enabled();
  const bool heap_clean = !heap_tracked || heap == 0;
  std::printf("\nworker-lane heap allocations in steady state: %llu%s\n",
              static_cast<unsigned long long>(heap),
              heap_tracked ? "" : " (untracked: interposition compiled out)");

  const bool all_passed = failed == 0 && heap_clean && !verdicts.empty();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"devices\": " << devices << ",\n  \"sim_seconds\": " << sim_s
        << ",\n  \"seed\": " << seed << ",\n  \"judged\": " << verdicts.size()
        << ",\n  \"failed\": " << failed
        << ",\n  \"heap_allocations\": " << heap
        << ",\n  \"heap_tracked\": " << (heap_tracked ? "true" : "false")
        << ",\n  \"passed\": " << (all_passed ? "true" : "false")
        << ",\n  \"worst\": [\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const Verdict& v = verdicts[i];
      out << "    {\"tenant\": " << v.tenant << ", \"profile\": " << v.profile
          << ", \"worst_excess_db\": " << v.worst_excess_db
          << ", \"worst_excess_t_s\": " << v.worst_excess_t_s
          << ", \"passed\": " << (v.passed ? "true" : "false") << "}"
          << (i + 1 < shown ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\n%s (%zu/%zu tenants within margin%s)\n",
              all_passed ? "ALL INVARIANTS HELD" : "INVARIANT VIOLATION",
              verdicts.size() - failed, verdicts.size(),
              heap_clean ? "" : ", heap dirty");
  return all_passed ? 0 : 1;
}
