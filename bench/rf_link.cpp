// Section 4.1 ablation: why frequency modulation? Audio quality of the
// analog relay link under AWGN, carrier frequency offset and amplitude
// distortion — versus a naive AM forwarding baseline.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"
#include "eval/report.hpp"
#include "rf/fm.hpp"
#include "rf/oscillator.hpp"
#include "rf/relay.hpp"
#include "rf/rf_channel.hpp"

namespace {

using namespace mute;

/// Naive AM baseline: amplitude-modulate the carrier and envelope-detect.
/// Compare a tone's SNDR against FM under the same channel impairments.
double am_sndr_db(double snr_db, double am_depth_distortion) {
  const double rf_fs = kDefaultRfSampleRate;
  const double tone_hz = 1000.0;
  const std::size_t n = static_cast<std::size_t>(rf_fs);
  rf::RfChannelParams params;
  params.snr_db = snr_db;
  params.cfo_hz = 0.0;
  params.phase_noise_rad = 0.0;
  rf::RfChannel channel(params, rf_fs, 9);
  Rng am_noise(17);

  Signal demod(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double m =
        0.5 * std::sin(kTwoPi * tone_hz * static_cast<double>(i) / rf_fs);
    // AM: envelope carries the audio; amplitude distortion hits directly.
    double envelope = (1.0 + m) / 2.0;
    envelope *= 1.0 + am_depth_distortion * am_noise.gaussian();
    const Complex tx(envelope, 0.0);
    const Complex rx = channel.process(tx);
    demod[i] = static_cast<Sample>(2.0 * std::abs(rx) - 1.0);
  }
  mute::dsp::remove_dc(demod);
  const auto psd = mute::dsp::welch_psd(
      std::span<const Sample>(demod.data() + n / 4, n / 2), rf_fs, 4096);
  const double bin = psd.freq_hz[1] - psd.freq_hz[0];
  const double sig = psd.band_power(tone_hz - 2 * bin, tone_hz + 2 * bin);
  const double total = psd.band_power(30.0, 8000.0);
  return power_to_db(sig / std::max(total - sig, 1e-20));
}

double fm_sndr_db(double snr_db, double cfo_hz, double pa_backoff_db) {
  rf::RelayConfig cfg;
  cfg.channel.snr_db = snr_db;
  cfg.channel.cfo_hz = cfo_hz;
  cfg.pa_backoff_db = pa_backoff_db;
  rf::RelayLink link(cfg, 21);
  return link.measure_sndr_db(1000.0);
}

}  // namespace

int main() {
  std::printf("RF-link ablation (Section 4.1): why FM?\n\n");

  // 1. SNDR vs channel SNR.
  {
    eval::Table table({"channel_SNR_dB", "FM_SNDR_dB", "AM_SNDR_dB"});
    for (double snr : {10.0, 20.0, 30.0, 40.0}) {
      const double row[] = {fm_sndr_db(snr, 200.0, 3.0), am_sndr_db(snr, 0.0)};
      table.add_row(eval::fmt(snr, 0), row, 1);
    }
    std::printf("-- audio quality vs channel SNR (1 kHz tone) --\n");
    table.print(std::cout);
  }

  // 2. Carrier frequency offset tolerance (FM: CFO -> DC, blocked).
  {
    eval::Table table({"CFO_Hz", "FM_SNDR_dB"});
    for (double cfo : {0.0, 100.0, 500.0, 2000.0, 5000.0}) {
      const double row[] = {fm_sndr_db(35.0, cfo, 3.0)};
      table.add_row(eval::fmt(cfo, 0), row, 1);
    }
    std::printf("\n-- FM tolerance to carrier frequency offset --\n");
    table.print(std::cout);
  }

  // 3. Amplitude distortion: drive the PA hard (low backoff) for FM vs
  //    envelope distortion for AM.
  {
    eval::Table table({"distortion", "FM_SNDR_dB", "AM_SNDR_dB"});
    struct Case {
      const char* label;
      double fm_backoff_db;
      double am_distortion;
    };
    for (const auto& c : {Case{"mild", 6.0, 0.02}, Case{"moderate", 1.0, 0.1},
                          Case{"severe", 0.0, 0.3}}) {
      const double row[] = {fm_sndr_db(35.0, 200.0, c.fm_backoff_db),
                            am_sndr_db(35.0, c.am_distortion)};
      table.add_row(c.label, row, 1);
    }
    std::printf("\n-- robustness to amplitude distortion --\n");
    table.print(std::cout);
  }

  std::printf("\nExpected shape: FM holds its SNDR under CFO and PA\n"
              "saturation; AM collapses with envelope distortion — the\n"
              "paper's three reasons for picking FM.\n");
  return 0;
}
