// Figure 17: additional cancellation from predictive sound profiling.
//
// The paper's setup: wide-band background noise from one ambient speaker,
// intermittent "mixed human voice" from another, and the explicit
// operating assumption that "there is one dominant sound source at any
// given time" (Section 3.2). We reproduce that regime with two
// deterministically alternating sources at different positions — voice-
// band bursts (speech-shaped noise) versus wide-band background — so the
// sound profile genuinely alternates and each profile's optimal filter
// differs (different room channels AND different spectra).
//
// Substitution note (DESIGN.md): recorded voice is replaced by voice-band
// noise bursts. Synthetic speech with syllable-level gaps flaps any
// energy-signature classifier the paper's description allows; the burst
// workload keeps the profile structure the experiment is actually about.
#include <cstdio>
#include <memory>

#include "audio/generators.hpp"
#include "bench_util.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"

namespace {

using namespace mute;

audio::SourcePtr voice_bursts(double fs, std::uint64_t seed) {
  dsp::BiquadCascade shape;
  shape.push_section(dsp::Biquad::bandpass(800.0, 0.6, fs));
  auto white = std::make_unique<audio::WhiteNoiseSource>(1.0, seed);
  auto shaped = std::make_unique<audio::FilteredSource>(
      std::move(white), std::move(shape), "voice_band");
  // 4 s period: voice on the first half.
  return std::make_unique<audio::GatedSource>(std::move(shaped), fs, 4.0, 0.5,
                                              0.0);
}

audio::SourcePtr background_bursts(double fs, std::uint64_t seed) {
  auto white = std::make_unique<audio::WhiteNoiseSource>(0.3, seed);
  // Anti-phase: background dominates the second half of each period.
  return std::make_unique<audio::GatedSource>(std::move(white), fs, 4.0, 0.5,
                                              2.0);
}

}  // namespace

int main() {
  std::printf("Figure 17 reproduction: profiling + filter switching for\n"
              "alternating dominant sources.\n");
  std::printf("Paper expectation: ~3 dB additional cancellation on average.\n");

  const auto scene = acoustics::Scene::paper_office();
  const double kDur = 48.0;

  auto run_with = [&](bool profiling) {
    auto cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
    cfg.duration_s = kDur;
    cfg.profiling = profiling;
    cfg.warm_start = false;   // the experiment IS the adaptation dynamics
    cfg.mu = 0.1;  // strongly non-stationary workload: gentler step
    cfg.mu_settle = 0.0;      // keep the step constant: re-convergence is
                              // exactly what profiling is meant to avoid
    cfg.second_source_position = acoustics::Point{1.4, 4.3, 1.5};
    auto voice = voice_bursts(cfg.scene.sample_rate, 7);
    auto background = background_bursts(cfg.scene.sample_rate, 5);
    bench::SchemeRun out{
        sim::run_anc_simulation(*voice, cfg, background.get()), {}};
    out.spectrum = eval::cancellation_spectrum(out.result.disturbance,
                                               out.result.residual,
                                               out.result.sample_rate, kDur / 2.0)
                       .smoothed(3.0);
    return out;
  };

  const auto off = run_with(false);
  const auto on = run_with(true);

  bench::print_cancellation_curves("Figure 17 input curves",
                                   {{"profiling OFF", &off.spectrum},
                                    {"profiling ON", &on.spectrum}});

  // The figure itself plots the *additional* gain of switching.
  eval::CancellationSpectrum additional;
  additional.freq_hz = on.spectrum.freq_hz;
  additional.cancellation_db.resize(on.spectrum.cancellation_db.size());
  for (std::size_t i = 0; i < additional.freq_hz.size(); ++i) {
    additional.cancellation_db[i] =
        on.spectrum.cancellation_db[i] - off.spectrum.cancellation_db[i];
  }
  bench::print_cancellation_curves(
      "Figure 17: additional cancellation from profile switching (dB)",
      {{"additional", &additional}});

  // Segment-level means over the mature steady state (the caches improve
  // for the first handful of visits): the benefit lives right after each
  // transition, where the cached filter starts out converged.
  const double fs = on.result.sample_rate;
  auto segment_db = [&](const bench::SchemeRun& run, double phase_s,
                        double skip_in_seg_s) {
    double num = 0.0, den = 0.0;
    const auto period = static_cast<std::size_t>(4.0 * fs);
    const auto head = static_cast<std::size_t>(skip_in_seg_s * fs);
    const auto seg = static_cast<std::size_t>(2.0 * fs) - head;
    const auto start = static_cast<std::size_t>(phase_s * fs) + head;
    for (std::size_t base = static_cast<std::size_t>(28.0 * fs) + start;
         base + seg <= run.result.residual.size(); base += period) {
      const std::span<const Sample> r(run.result.residual.data() + base, seg);
      const std::span<const Sample> d(run.result.disturbance.data() + base,
                                      seg);
      num += mute::dsp::rms(r);
      den += mute::dsp::rms(d);
    }
    return mute::amplitude_to_db(num / den);
  };
  std::printf("\n-- per-regime residual (dB rel. disturbance) --\n");
  std::printf("including the ~100 ms detection transient both arms share:\n");
  std::printf("  voice segments     : OFF %6.1f  ON %6.1f\n",
              segment_db(off, 0.0, 0.0), segment_db(on, 0.0, 0.0));
  std::printf("  background segments: OFF %6.1f  ON %6.1f\n",
              segment_db(off, 2.0, 0.0), segment_db(on, 2.0, 0.0));
  std::printf("established-profile region (first 0.6 s of each segment\n"
              "excluded; the cached filter is already converged there while\n"
              "the single filter is still re-converging):\n");
  std::printf("  voice segments     : OFF %6.1f  ON %6.1f\n",
              segment_db(off, 0.0, 0.6), segment_db(on, 0.0, 0.6));
  std::printf("  background segments: OFF %6.1f  ON %6.1f\n",
              segment_db(off, 2.0, 0.6), segment_db(on, 2.0, 0.6));
  std::printf("\nprofiles discovered: %zu, switches executed: %zu "
              "(20 transitions in the run)\n",
              on.result.profiles_seen, on.result.profile_switches);
  std::printf("average additional cancellation 0-4 kHz: %.1f dB "
              "(paper: ~3 dB)\n",
              additional.average_db(30, 4000));
  return 0;
}
