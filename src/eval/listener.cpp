#include "eval/listener.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/biquad.hpp"
#include "dsp/fir_design.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/signal_ops.hpp"

namespace mute::eval {

ListenerPanel::ListenerPanel(std::size_t count, double sample_rate,
                             std::uint64_t seed)
    : fs_(sample_rate) {
  ensure(count >= 1, "need at least one listener");
  Rng rng(seed);
  biases_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    biases_.push_back({rng.gaussian(1.5), rng.gaussian(0.25)});
  }
}

double ListenerPanel::a_weighted_level_db(std::span<const Sample> x) const {
  // IEC 61672 A-weighting realized as a linear-phase FIR fitted to the
  // standard table (the filter's group delay is irrelevant for a level
  // measurement). A biquad approximation is tempting but over-discounts
  // the 250-800 Hz region where ANC earns most of its keep.
  static const std::vector<double> kFreq = {31.5, 63.0,  125.0,  250.0,
                                            500.0, 1000.0, 2000.0, 4000.0,
                                            7500.0};
  static const std::vector<double> kGainDb = {-39.4, -26.2, -16.1, -8.6,
                                              -3.2,  0.0,   1.2,   1.0,
                                              -1.1};
  std::vector<double> mag(kGainDb.size());
  for (std::size_t i = 0; i < mag.size(); ++i) {
    mag[i] = db_to_amplitude(kGainDb[i]);
  }
  mute::dsp::FirFilter weighting(
      mute::dsp::design_from_magnitude(kFreq, mag, fs_, 255));
  double acc = 0.0;
  for (Sample v : x) {
    const Sample w = weighting.process(v);
    acc += static_cast<double>(w) * static_cast<double>(w);
  }
  const double rms =
      std::sqrt(acc / static_cast<double>(std::max<std::size_t>(x.size(), 1)));
  return amplitude_to_db(rms);
}

std::vector<ListenerRating> ListenerPanel::rate(
    std::span<const Sample> disturbance,
    std::span<const Sample> residual) const {
  ensure(!disturbance.empty() && !residual.empty(), "empty records");
  const double anchor_db = a_weighted_level_db(disturbance);
  const double level_db = a_weighted_level_db(residual);

  std::vector<ListenerRating> out;
  out.reserve(biases_.size());
  for (std::size_t i = 0; i < biases_.size(); ++i) {
    // Perceived improvement relative to the raw disturbance.
    const double relief_db =
        anchor_db - (level_db + biases_[i].sensitivity_db);
    // 0 dB relief -> 1 star; >= 24 dB relief -> 5 stars, linear between.
    const double raw = 1.0 + 4.0 * relief_db / 24.0 + biases_[i].offset_stars;
    out.push_back({static_cast<int>(i + 1), std::clamp(raw, 1.0, 5.0)});
  }
  return out;
}

}  // namespace mute::eval
