#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/spectral.hpp"

namespace mute::eval {

double CancellationSpectrum::average_db(double lo_hz, double hi_hz) const {
  ensure(lo_hz < hi_hz, "band must satisfy lo < hi");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < freq_hz.size(); ++i) {
    if (freq_hz[i] >= lo_hz && freq_hz[i] < hi_hz) {
      sum += cancellation_db[i];
      ++count;
    }
  }
  ensure(count > 0, "no bins inside the requested band");
  return sum / static_cast<double>(count);
}

double CancellationSpectrum::at(double freq) const {
  ensure(!freq_hz.empty(), "empty spectrum");
  std::size_t best = 0;
  double best_d = std::abs(freq_hz[0] - freq);
  for (std::size_t i = 1; i < freq_hz.size(); ++i) {
    const double d = std::abs(freq_hz[i] - freq);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return cancellation_db[best];
}

CancellationSpectrum CancellationSpectrum::smoothed(
    double octave_fraction) const {
  ensure(octave_fraction >= 1.0, "octave fraction must be >= 1");
  CancellationSpectrum out;
  out.freq_hz = freq_hz;
  out.cancellation_db.resize(cancellation_db.size());
  const double half_width = std::pow(2.0, 0.5 / octave_fraction);
  for (std::size_t i = 0; i < freq_hz.size(); ++i) {
    const double f = std::max(freq_hz[i], 1.0);
    const double lo = f / half_width;
    const double hi = f * half_width;
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t j = 0; j < freq_hz.size(); ++j) {
      if (freq_hz[j] >= lo && freq_hz[j] <= hi) {
        sum += cancellation_db[j];
        ++count;
      }
    }
    out.cancellation_db[i] =
        count > 0 ? sum / static_cast<double>(count) : cancellation_db[i];
  }
  return out;
}

namespace {

std::span<const Sample> skip_head(std::span<const Sample> x,
                                  double sample_rate, double skip_s) {
  const auto skip = static_cast<std::size_t>(skip_s * sample_rate);
  ensure(skip < x.size(), "skip exceeds record length");
  return x.subspan(skip);
}

}  // namespace

CancellationSpectrum cancellation_spectrum(std::span<const Sample> disturbance,
                                           std::span<const Sample> residual,
                                           double sample_rate, double skip_s,
                                           std::size_t segment) {
  ensure(disturbance.size() == residual.size(), "records must be aligned");
  const auto d = skip_head(disturbance, sample_rate, skip_s);
  const auto r = skip_head(residual, sample_rate, skip_s);
  const auto psd_d = mute::dsp::welch_psd(d, sample_rate, segment);
  const auto psd_r = mute::dsp::welch_psd(r, sample_rate, segment);

  CancellationSpectrum out;
  out.freq_hz = psd_d.freq_hz;
  out.cancellation_db.resize(psd_d.power.size());
  for (std::size_t k = 0; k < psd_d.power.size(); ++k) {
    out.cancellation_db[k] =
        power_to_db(std::max(psd_r.power[k], 1e-24) /
                    std::max(psd_d.power[k], 1e-24));
  }
  return out;
}

double band_cancellation_db(std::span<const Sample> disturbance,
                            std::span<const Sample> residual,
                            double sample_rate, double lo_hz, double hi_hz,
                            double skip_s) {
  ensure(disturbance.size() == residual.size(), "records must be aligned");
  const auto d = skip_head(disturbance, sample_rate, skip_s);
  const auto r = skip_head(residual, sample_rate, skip_s);
  const auto psd_d = mute::dsp::welch_psd(d, sample_rate);
  const auto psd_r = mute::dsp::welch_psd(r, sample_rate);
  return power_to_db(std::max(psd_r.band_power(lo_hz, hi_hz), 1e-24) /
                     std::max(psd_d.band_power(lo_hz, hi_hz), 1e-24));
}

std::vector<double> moving_rms(std::span<const Sample> x, std::size_t window) {
  ensure(window >= 1, "window must be >= 1");
  std::vector<double> out(x.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = static_cast<double>(x[i]);
    acc += v * v;
    if (i >= window) {
      const double old = static_cast<double>(x[i - window]);
      acc -= old * old;
    }
    const auto denom = static_cast<double>(std::min(i + 1, window));
    out[i] = std::sqrt(std::max(acc, 0.0) / denom);
  }
  return out;
}

double convergence_time_s(std::span<const Sample> residual,
                          double sample_rate, double window_s,
                          double margin_db) {
  ensure(!residual.empty(), "empty residual");
  const auto window =
      std::max<std::size_t>(16, static_cast<std::size_t>(window_s * sample_rate));
  const auto env = moving_rms(residual, window);
  // Final level: median-ish of the last 10%.
  const std::size_t tail_start = env.size() - env.size() / 10 - 1;
  double final_level = 0.0;
  for (std::size_t i = tail_start; i < env.size(); ++i) final_level += env[i];
  final_level /= static_cast<double>(env.size() - tail_start);
  const double threshold = final_level * db_to_amplitude(margin_db);

  // Last index where the envelope exceeded the threshold.
  std::size_t last_bad = 0;
  for (std::size_t i = window; i < env.size(); ++i) {
    if (env[i] > threshold) last_bad = i;
  }
  return static_cast<double>(last_bad) / sample_rate;
}

}  // namespace mute::eval
