#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mute::eval {

/// Computational stand-in for the paper's 5-volunteer study (Figure 15).
///
/// The paper could bring humans into the room; we cannot, so each
/// "listener" is a perceptual rating model: the residual noise is
/// A-weighted (human loudness sensitivity), its level is mapped through a
/// monotonic loudness-to-opinion curve onto the 1..5 star scale, and each
/// simulated volunteer carries a small random sensitivity offset and
/// rating bias, seeded per listener. The model preserves exactly what the
/// figure demonstrates: orderings (quieter residual -> higher stars) with
/// believable inter-subject spread.
struct ListenerRating {
  int listener_id = 0;
  double score = 0.0;  // 1..5 stars
};

class ListenerPanel {
 public:
  /// `count` listeners with deterministic per-listener biases.
  ListenerPanel(std::size_t count, double sample_rate, std::uint64_t seed);

  /// Rate the experience of hearing `residual` where `reference_level`
  /// sets the "unbearable" anchor (the un-canceled disturbance).
  std::vector<ListenerRating> rate(std::span<const Sample> disturbance,
                                   std::span<const Sample> residual) const;

  /// A-weighted RMS level in dB of a record (the model's loudness core).
  double a_weighted_level_db(std::span<const Sample> x) const;

  std::size_t size() const { return biases_.size(); }

 private:
  double fs_;
  struct Bias {
    double sensitivity_db;  // shifts perceived loudness
    double offset_stars;    // fixed rating bias
  };
  std::vector<Bias> biases_;
};

}  // namespace mute::eval
