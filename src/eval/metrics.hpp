#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::eval {

/// Per-frequency cancellation: 10*log10(PSD_residual / PSD_disturbance).
/// Negative values mean the ANC removed energy (the paper's Figure 12/14
/// y-axis); 0 means no effect.
struct CancellationSpectrum {
  std::vector<double> freq_hz;
  std::vector<double> cancellation_db;

  /// Mean cancellation (dB averaged across bins) within [lo, hi) Hz.
  double average_db(double lo_hz, double hi_hz) const;

  /// Cancellation of the bin nearest `freq_hz`.
  double at(double freq_hz) const;

  /// Fractional-octave smoothed copy (standard acoustic-measurement
  /// practice; the paper's plotted curves are similarly smooth). Each
  /// bin is averaged over [f/2^(1/2k), f*2^(1/2k)] for 1/k-octave width.
  CancellationSpectrum smoothed(double octave_fraction = 6.0) const;
};

/// Compute the cancellation spectrum from aligned disturbance/residual
/// records, skipping the first `skip_s` seconds (convergence transient).
CancellationSpectrum cancellation_spectrum(std::span<const Sample> disturbance,
                                           std::span<const Sample> residual,
                                           double sample_rate,
                                           double skip_s = 2.0,
                                           std::size_t segment = 1024);

/// Wide-band cancellation in dB over [lo, hi): total band power ratio.
double band_cancellation_db(std::span<const Sample> disturbance,
                            std::span<const Sample> residual,
                            double sample_rate, double lo_hz, double hi_hz,
                            double skip_s = 2.0);

/// Time for the residual to converge: first instant after which the moving
/// RMS (window `window_s`) stays within `margin_db` of the final tail RMS.
/// Returns the full duration if it never converges.
double convergence_time_s(std::span<const Sample> residual,
                          double sample_rate, double window_s = 0.25,
                          double margin_db = 3.0);

/// Moving RMS envelope (window in samples), same length as input.
std::vector<double> moving_rms(std::span<const Sample> x,
                               std::size_t window);

}  // namespace mute::eval
