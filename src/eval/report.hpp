#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace mute::eval {

/// Fixed-width text table for benchmark output (the repo's figures are
/// regenerated as printed series, one bench binary per paper figure).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows (fixed precision).
  void add_row(const std::string& label, std::span<const double> values,
               int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double value, int precision = 2);

/// Print an ASCII line chart of one or more named series sharing an
/// x-axis. Used to eyeball the figure shapes straight from the terminal.
struct Series {
  std::string name;
  std::vector<double> y;
};

void print_ascii_chart(std::ostream& os, std::span<const double> x,
                       std::span<const Series> series,
                       const std::string& x_label,
                       const std::string& y_label, int width = 72,
                       int height = 18);

/// Reduce a dense (freq, value) curve onto a coarse grid of `points`
/// centers by averaging — keeps the printed figures readable.
void decimate_curve(std::span<const double> x, std::span<const double> y,
                    std::size_t points, std::vector<double>& x_out,
                    std::vector<double>& y_out);

}  // namespace mute::eval
