#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mute::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ensure(!headers_.empty(), "table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  ensure(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, std::span<const double> values,
                    int precision) {
  ensure(values.size() + 1 == headers_.size(), "row width mismatch");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

void print_ascii_chart(std::ostream& os, std::span<const double> x,
                       std::span<const Series> series,
                       const std::string& x_label,
                       const std::string& y_label, int width, int height) {
  ensure(!x.empty() && !series.empty(), "chart needs data");
  for (const auto& s : series) {
    ensure(s.y.size() == x.size(), "series length mismatch");
  }
  double y_min = 1e300, y_max = -1e300;
  for (const auto& s : series) {
    for (double v : s.y) {
      y_min = std::min(y_min, v);
      y_max = std::max(y_max, v);
    }
  }
  if (y_max - y_min < 1e-9) {
    y_max = y_min + 1.0;
  }
  const double pad = 0.05 * (y_max - y_min);
  y_min -= pad;
  y_max += pad;

  static const char kMarks[] = {'*', 'o', '+', 'x', '#', '@'};
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = kMarks[s % sizeof(kMarks)];
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double fx = (x[i] - x.front()) /
                        std::max(x.back() - x.front(), 1e-12);
      const double fy = (series[s].y[i] - y_min) / (y_max - y_min);
      const int cx = std::clamp(static_cast<int>(fx * (width - 1)), 0,
                                width - 1);
      const int cy = std::clamp(static_cast<int>((1.0 - fy) * (height - 1)),
                                0, height - 1);
      canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = mark;
    }
  }

  os << "  " << y_label << "\n";
  for (int r = 0; r < height; ++r) {
    const double yv = y_max - (y_max - y_min) * r / (height - 1);
    os << std::setw(8) << fmt(yv, 1) << " |" << canvas[static_cast<std::size_t>(r)]
       << "\n";
  }
  os << std::string(10, ' ') << std::string(static_cast<std::size_t>(width), '-')
     << "\n";
  os << std::setw(10) << fmt(x.front(), 0)
     << std::string(static_cast<std::size_t>(width) - 12, ' ')
     << fmt(x.back(), 0) << "  (" << x_label << ")\n";
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << "    " << kMarks[s % sizeof(kMarks)] << " = " << series[s].name
       << "\n";
  }
}

void decimate_curve(std::span<const double> x, std::span<const double> y,
                    std::size_t points, std::vector<double>& x_out,
                    std::vector<double>& y_out) {
  ensure(x.size() == y.size() && !x.empty(), "curve size mismatch");
  ensure(points >= 2, "need >= 2 output points");
  x_out.clear();
  y_out.clear();
  const std::size_t chunk = std::max<std::size_t>(1, x.size() / points);
  for (std::size_t start = 0; start < x.size(); start += chunk) {
    const std::size_t end = std::min(start + chunk, x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      sx += x[i];
      sy += y[i];
    }
    const auto cnt = static_cast<double>(end - start);
    x_out.push_back(sx / cnt);
    y_out.push_back(sy / cnt);
  }
}

}  // namespace mute::eval
