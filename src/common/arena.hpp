#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rt_annotations.hpp"

/// Per-tenant arena allocation for the fleet runtime (DESIGN.md §14).
///
/// The edge-service fleet shards thousands of `MuteDevice` instances across
/// a fixed worker pool. Device construction, the amortized control events
/// inside `tick()` (calibration fit, selection rounds, handoffs), and
/// teardown all allocate — and in a fleet those calls run on *worker
/// threads*, where contending on the global heap serializes every core on
/// the allocator lock and leaves the steady state hostage to malloc's
/// worst case. The fix is ownership-aligned memory: each tenant gets a
/// private monotonic arena, and while a worker is acting for that tenant a
/// `ScopedArenaAlloc` routes the thread's operator new into it.
///
///   MonotonicArena   bump allocator over a fixed byte range; individual
///                    frees are no-ops, reset() reclaims everything at
///                    once (exactly the lifetime a tenant has: admit ->
///                    serve -> evict). Exhaustion is a loud MUTE_ASSERT
///                    abort naming the arena — never UB, never a silent
///                    fallback that would hide an undersized capacity.
///   ArenaPool        one slab, `tenant_count` equal arenas. The slab's
///                    address range is registered so the program-wide
///                    operator delete (contracts.cpp) recognizes arena
///                    pointers and skips free() — arena-backed objects can
///                    be destroyed anywhere, scope installed or not.
///   ScopedArenaAlloc RAII routing switch: while in scope, this thread's
///                    operator new draws from the given arena. Nesting
///                    restores the previous target. When the interposition
///                    is compiled out (MUTE_RT_GUARD=OFF) routing is inert
///                    and everything falls back to the global heap —
///                    functionally identical, just not isolated.
///
/// Thread-safety contract: a MonotonicArena is single-owner — at most one
/// thread allocates from it at a time, and handing an arena between
/// threads requires a happens-before edge (the fleet's block barrier
/// provides it). The region registry consulted by operator delete is
/// lock-free and safe from any thread at any time.

namespace mute {

class MonotonicArena {
 public:
  MonotonicArena() = default;

  /// View over [base, base + capacity). The arena does not own the bytes;
  /// ArenaPool (or a test) does.
  MonotonicArena(std::byte* base, std::size_t capacity, const char* name);

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&&) = delete;
  MonotonicArena& operator=(MonotonicArena&&) = delete;

  /// Bump-allocate `size` bytes at `align`. Aborts via MUTE_ASSERT when the
  /// arena is exhausted (deterministic, names the arena) — size capacities
  /// from the soak high-water mark, don't catch this.
  MUTE_RT_SAFE void* allocate(std::size_t size, std::size_t align) noexcept;

  /// Like allocate(), but returns nullptr on exhaustion instead of
  /// aborting. This is the path operator new(nothrow) uses, preserving its
  /// standard "check the pointer" contract under arena routing.
  MUTE_RT_SAFE void* try_allocate(std::size_t size,
                                  std::size_t align) noexcept;

  /// Reclaim everything allocated so far (no destructors run — callers
  /// destroy tenant objects first; their deletes are no-ops by design).
  /// Also clears the accounting counters: an arena is recycled per tenant,
  /// so used()/high_water()/allocation_count() always describe the current
  /// occupant only.
  void reset() noexcept {
    used_ = 0;
    high_water_ = 0;
    allocation_count_ = 0;
  }

  bool contains(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + capacity_;
  }

  std::size_t used() const noexcept { return used_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t allocation_count() const noexcept { return allocation_count_; }
  /// Largest `used()` observed since construction or the last reset() —
  /// the capacity-sizing signal surfaced by the fleet soak report.
  std::size_t high_water() const noexcept { return high_water_; }
  const char* name() const noexcept { return name_; }

 private:
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t allocation_count_ = 0;
  const char* name_ = "arena";
};

/// One malloc'd slab cut into `tenant_count` arenas of `tenant_bytes`
/// each (rounded up to alignof(std::max_align_t) so every tenant base
/// keeps malloc's fundamental alignment; tenant_bytes() reports the
/// rounded stride), registered with the operator-delete interposition for
/// its whole lifetime. Arena indices map 1:1 to fleet tenant slots.
class ArenaPool {
 public:
  ArenaPool(std::size_t tenant_bytes, std::size_t tenant_count);
  ~ArenaPool();

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  MonotonicArena& arena(std::size_t index);
  const MonotonicArena& arena(std::size_t index) const;
  std::size_t tenant_count() const noexcept { return count_; }
  std::size_t tenant_bytes() const noexcept { return bytes_; }

 private:
  std::byte* slab_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t count_ = 0;
  // Arenas are stored out-of-line (not std::vector<MonotonicArena> — the
  // type is intentionally pinned/non-movable).
  MonotonicArena* arenas_ = nullptr;
};

/// While alive, operator new on THIS thread allocates from `arena`.
///
/// Exhaustion semantics while a scope is installed: the throwing operator
/// new forms inherit the arena's fail-loud contract (MUTE_ASSERT abort
/// naming the arena); operator new(std::nothrow) keeps its standard
/// contract and returns nullptr instead — it never falls back to the
/// global heap, which would silently break per-tenant isolation.
class ScopedArenaAlloc {
 public:
  explicit ScopedArenaAlloc(MonotonicArena& arena) noexcept;
  ~ScopedArenaAlloc();

  ScopedArenaAlloc(const ScopedArenaAlloc&) = delete;
  ScopedArenaAlloc& operator=(const ScopedArenaAlloc&) = delete;

  /// Whether installing a scope actually reroutes operator new (false when
  /// the interposition is compiled out; tests gate on this like they do on
  /// RtAllocationGuard::interposition_enabled()).
  static bool routing_enabled() noexcept;

 private:
  MonotonicArena* prev_;
};

namespace detail {

/// Allocation hook for the interposed operator new: returns nullptr when no
/// arena is installed on this thread (caller falls through to malloc).
MUTE_RT_SAFE void* arena_try_alloc(std::size_t size,
                                   std::size_t align) noexcept;

/// Hook for operator new(nothrow): false when no arena is installed (caller
/// falls through to the heap); true when routed, with *out either the arena
/// block or nullptr on exhaustion (no abort — see ScopedArenaAlloc docs).
MUTE_RT_SAFE bool arena_try_alloc_nothrow(std::size_t size, std::size_t align,
                                          void** out) noexcept;

/// Deallocation hook for the interposed operator delete: true when `p`
/// points into any registered arena slab (the delete is then a no-op).
MUTE_RT_SAFE bool arena_owns(const void* p) noexcept;

// The registry stores an address range and never reads the (deliberately
// uninitialized) bytes behind it; the access attribute records that so
// -Wmaybe-uninitialized doesn't flag registering a fresh malloc'd slab.
#if defined(__GNUC__) && !defined(__clang__)
#define MUTE_ARENA_ADDR_ONLY __attribute__((access(none, 1)))
#else
#define MUTE_ARENA_ADDR_ONLY
#endif

/// Slab registry (bounded, lock-free reads). register_ aborts when the
/// fixed slot table is full — more concurrent pools than slots is a
/// design error, not a runtime condition.
MUTE_ARENA_ADDR_ONLY void register_arena_region(const void* base,
                                                std::size_t size);
MUTE_ARENA_ADDR_ONLY void unregister_arena_region(const void* base);

}  // namespace detail

}  // namespace mute
