#pragma once

/// Static real-time-safety annotations for the per-sample audio path.
///
/// The runtime contract layer (contracts.hpp: RtAllocationGuard,
/// MUTE_RT_SCOPE) can only prove the RT property on the paths the tests
/// happen to exercise. These annotations make the same contract a *static*,
/// whole-call-graph property: `tools/rt_lint.py` walks every function
/// reachable from the annotated roots and fails CI when anything on that
/// surface can allocate, lock, throw, block on I/O, or call a banned API
/// (operator new, malloc, std::mutex, iostream, std::rotate, push_back /
/// resize on hot containers — the full deny-list lives in the linter).
///
/// Vocabulary (DESIGN.md §11):
///
///   MUTE_RT_SAFE
///     Declares a function part of the per-sample real-time surface. It is
///     a *root* for the linter's call-graph walk: its body and everything
///     it (transitively) calls must be free of banned constructs. Apply it
///     to the per-sample entry points — ticks, pushes, process()/step()
///     sample ops — not to every leaf they reach (reachability covers the
///     leaves automatically).
///
///   MUTE_RT_UNSAFE
///     Declares a function explicitly NOT real-time-safe (control-plane:
///     it may allocate, lock, or throw by design). Calling it from any
///     function on the RT surface is always a violation, even if its body
///     happens to look clean today. Use it to fence off control-plane APIs
///     that live next to hot ones in the same class (reset(), retarget(),
///     assign()).
///
///   MUTE_RT_ESCAPE(reason)
///     Escape hatch: the function is reachable from the RT surface but is
///     deliberately exempt from the walk. The mandatory reason string is
///     surfaced in the linter's report. Legitimate uses are (a) failure
///     paths that only run when the process is already aborting
///     (contract_failure), (b) amortized control-plane work the design
///     knowingly runs on the audio thread (profiling hops, periodic
///     selection rounds), each of which must say so. An escape without a
///     convincing reason is a review failure, not a linter pass.
///
/// Under clang the macros expand to [[clang::annotate]] attributes so the
/// libclang mode of rt_lint.py sees them in the AST; under GCC (which has
/// no annotate attribute) they expand to nothing and the linter's
/// regex/fallback mode recognizes the macro tokens directly in the source
/// text. Both spellings are therefore load-bearing: do not alias or
/// wrap these macros (the fallback scanner matches the literal names).
///
/// Placement: attribute position, before the declaration's return type —
///
///   MUTE_RT_SAFE Sample process(Sample x);
///   MUTE_RT_ESCAPE("profiling hop; amortized control plane")
///   void run_profiler(Sample x);
///
/// Annotate the declaration in the header; the linter unifies it with the
/// out-of-line definition by qualified name.

#if defined(__clang__)
#define MUTE_RT_SAFE [[clang::annotate("mute::rt_safe")]]
#define MUTE_RT_UNSAFE [[clang::annotate("mute::rt_unsafe")]]
#define MUTE_RT_ESCAPE(reason) [[clang::annotate("mute::rt_escape:" reason)]]
#else
#define MUTE_RT_SAFE
#define MUTE_RT_UNSAFE
#define MUTE_RT_ESCAPE(reason)
#endif
