#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>

#include "common/error.hpp"

namespace mute {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Smallest power of two >= n (n must be >= 1).
inline std::size_t next_pow2(std::size_t n) {
  ensure(n >= 1, "next_pow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

inline bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Convert a linear amplitude ratio to decibels (20*log10).
inline double amplitude_to_db(double ratio) {
  return 20.0 * std::log10(std::max(ratio, 1e-12));
}

/// Convert a linear power ratio to decibels (10*log10).
inline double power_to_db(double ratio) {
  return 10.0 * std::log10(std::max(ratio, 1e-24));
}

/// Convert decibels to a linear amplitude ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Convert decibels to a linear power ratio.
inline double db_to_power(double db) { return std::pow(10.0, db / 10.0); }

/// Normalized sinc: sin(pi x)/(pi x), sinc(0) = 1.
inline double sinc(double x) {
  if (std::abs(x) < 1e-9) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

/// Wrap a phase angle into (-pi, pi].
inline double wrap_phase(double phi) {
  phi = std::fmod(phi + kPi, kTwoPi);
  if (phi < 0) phi += kTwoPi;
  return phi - kPi;
}

/// Seconds -> whole samples (round to nearest). Signed: callers subtract
/// sample counts to form lookahead/lag offsets, so the natural domain is
/// std::ptrdiff_t rather than long (identical on LP64, wider on LLP64).
inline std::ptrdiff_t seconds_to_samples(double seconds, double sample_rate) {
  return static_cast<std::ptrdiff_t>(std::lround(seconds * sample_rate));
}

/// Samples -> seconds.
inline double samples_to_seconds(std::ptrdiff_t samples, double sample_rate) {
  ensure(sample_rate > 0, "sample_rate must be positive");
  return static_cast<double>(samples) / sample_rate;
}

}  // namespace mute
