#pragma once

#include <cstdint>
#include <random>

namespace mute {

/// Deterministic random source used across the library. Every generator,
/// channel impairment and synthesizer takes an explicit seed so that tests
/// and benchmark figures are exactly reproducible run to run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard normal (mean 0, unit variance) draw.
  double gaussian() { return normal_(engine_); }

  /// Gaussian with explicit standard deviation.
  double gaussian(double stddev) { return stddev * normal_(engine_); }

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child stream (for per-component seeding).
  Rng fork() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace mute
