#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

/// Fundamental sample types and physical constants shared by every module.
namespace mute {

/// Audio samples are single-precision; filter accumulation uses double.
using Sample = float;
using Accum = double;

/// A contiguous block of audio samples in the time domain.
using Signal = std::vector<Sample>;

/// Complex baseband samples for the RF path.
using Complex = std::complex<double>;
using ComplexSignal = std::vector<Complex>;

/// Speed of sound in air at ~20 C, meters per second (paper uses 340 m/s).
inline constexpr double kSpeedOfSound = 340.0;

/// Speed of light, meters per second; RF propagation is effectively
/// instantaneous at room scale (~3 ns for 1 m).
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Default audio sampling rate. The paper's TMS320C6713 sampled at 8 kHz
/// (0-4 kHz cancellation band); we default to 16 kHz so that the headphone
/// baseline's sub-130 microsecond timing budget is representable with
/// reasonable resolution, and evaluate the same 0-4 kHz band.
inline constexpr double kDefaultSampleRate = 16'000.0;

/// Default complex-baseband rate for the FM relay simulation.
inline constexpr double kDefaultRfSampleRate = 256'000.0;

/// Upper edge of the cancellation band reported in the paper.
inline constexpr double kEvalBandHz = 4'000.0;

}  // namespace mute
