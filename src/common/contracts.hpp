#pragma once

#include <cmath>
#include <cstddef>

#include "common/rt_annotations.hpp"

/// Runtime contracts for the audio hot path.
///
/// MUTE's pipeline has a hard per-tick deadline: the LANC controller must
/// emit an anti-noise sample within one audio tick of the forwarded
/// reference, so the most dangerous bug classes here are silent ones —
/// NaN/Inf propagating through adaptive weights, out-of-range indices, and
/// hidden heap allocations inside per-sample code. This header provides the
/// machine-checked contract vocabulary used across `src/`:
///
///   MUTE_ASSERT(cond, msg)        always-on invariant; prints and aborts.
///   MUTE_DCHECK(cond, msg)        debug-only invariant (free in release).
///   MUTE_CHECK_FINITE(value, msg) always-on NaN/Inf rejection, used at the
///                                 entry of every per-sample API.
///   MUTE_RT_SCOPE(name)           debug-only no-allocation scope: any heap
///                                 allocation inside it aborts.
///
/// Contract failures abort (they do not throw): a violated contract means
/// the process state is already wrong, aborting keeps the failure local to
/// the offending tick, and it is what sanitizer CI and gtest death tests
/// expect. Use `mute::ensure` (common/error.hpp) for recoverable
/// caller-facing precondition errors instead.
///
/// `MUTE_DCHECKS_ENABLED` follows NDEBUG by default and can be forced from
/// the build system.

#if !defined(MUTE_DCHECKS_ENABLED)
#if defined(NDEBUG)
#define MUTE_DCHECKS_ENABLED 0
#else
#define MUTE_DCHECKS_ENABLED 1
#endif
#endif

namespace mute {

namespace detail {

/// Prints `[kind] file:line: expr: msg` to stderr and aborts.
MUTE_RT_ESCAPE(
    "contract-abort path: fprintf+abort runs only when the process is "
    "already dying on a failed MUTE_ASSERT/MUTE_CHECK_FINITE")
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* msg, const char* file,
                                   int line) noexcept;

}  // namespace detail

/// Counts (and optionally forbids) heap allocations on the current thread
/// while in scope. Backed by global operator new/delete interposition
/// compiled into mute_common; nesting is allowed, the innermost guard's
/// mode wins.
///
///   {
///     RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "tick");
///     y = lanc.tick(x);
///     MUTE_ASSERT(guard.allocations_since_entry() == 0, "tick allocated");
///   }
///
/// In kAbort mode the offending allocation itself aborts with the section
/// name, which pinpoints the call site under a debugger or sanitizer.
/// When the interposition is compiled out (MUTE_RT_GUARD=OFF), guards are
/// inert: counts stay zero and nothing aborts — check interposition_enabled()
/// in tests that rely on detection.
class RtAllocationGuard {
 public:
  enum class Mode { kAbort, kCount };

  explicit RtAllocationGuard(Mode mode = Mode::kAbort,
                             const char* section = "rt-section") noexcept;
  ~RtAllocationGuard();

  RtAllocationGuard(const RtAllocationGuard&) = delete;
  RtAllocationGuard& operator=(const RtAllocationGuard&) = delete;

  /// Heap allocations on this thread since the guard was entered.
  std::size_t allocations_since_entry() const noexcept;

  /// Total allocations observed on this thread since it started.
  static std::size_t thread_allocation_count() noexcept;

  /// Whether the operator new/delete interposition is compiled in.
  static bool interposition_enabled() noexcept;

 private:
  std::size_t entry_count_;
  Mode prev_mode_;
  const char* prev_section_;
};

}  // namespace mute

#define MUTE_ASSERT(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::mute::detail::contract_failure("MUTE_ASSERT", #cond, (msg),     \
                                       __FILE__, __LINE__);             \
    }                                                                   \
  } while (false)

/// NaN/Inf rejection at per-sample API entry points. Always on: one
/// std::isfinite per sample is noise next to the tap loop it protects, and
/// a NaN that reaches the adaptive weights poisons every future output.
#define MUTE_CHECK_FINITE(value, msg)                                   \
  do {                                                                  \
    if (!std::isfinite(static_cast<double>(value))) [[unlikely]] {      \
      ::mute::detail::contract_failure("MUTE_CHECK_FINITE",             \
                                       #value " is not finite", (msg),  \
                                       __FILE__, __LINE__);             \
    }                                                                   \
  } while (false)

#if MUTE_DCHECKS_ENABLED
#define MUTE_DCHECK(cond, msg) MUTE_ASSERT(cond, msg)
#define MUTE_RT_SCOPE(name)                                  \
  ::mute::RtAllocationGuard mute_rt_scope_guard_ {           \
    ::mute::RtAllocationGuard::Mode::kAbort, (name)          \
  }
#else
#define MUTE_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#define MUTE_RT_SCOPE(name) \
  do {                      \
  } while (false)
#endif
