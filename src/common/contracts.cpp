#include "common/contracts.hpp"

#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/arena.hpp"

namespace mute {
namespace detail {

namespace {

// Thread-local allocation bookkeeping. Plain integral/pointer types only:
// zero-initialized thread_locals need no dynamic init, so they are safe to
// touch from operator new during static initialization of other TUs.
thread_local std::size_t t_alloc_count = 0;
thread_local int t_guard_depth = 0;
thread_local bool t_abort_on_alloc = false;
thread_local const char* t_section = nullptr;

}  // namespace

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* msg, const char* file,
                                   int line) noexcept {
  std::fprintf(stderr, "[%s] %s:%d: %s: %s\n", kind, file, line, expr, msg);
  std::fflush(stderr);
  std::abort();
}

#if defined(MUTE_RT_GUARD_ENABLED)

namespace {

void note_allocation() noexcept {
  ++t_alloc_count;
  if (t_guard_depth > 0 && t_abort_on_alloc) [[unlikely]] {
    // No allocation is permitted here: format with a fixed stack buffer.
    std::fprintf(stderr,
                 "[RtAllocationGuard] heap allocation inside real-time "
                 "section '%s'\n",
                 t_section != nullptr ? t_section : "rt-section");
    std::fflush(stderr);
    std::abort();
  }
}

void* checked_alloc(std::size_t size) {
  note_allocation();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned_alloc(std::size_t size, std::size_t alignment) {
  note_allocation();
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

#endif  // MUTE_RT_GUARD_ENABLED

}  // namespace detail

RtAllocationGuard::RtAllocationGuard(Mode mode, const char* section) noexcept
    : entry_count_(detail::t_alloc_count),
      prev_mode_(detail::t_abort_on_alloc ? Mode::kAbort : Mode::kCount),
      prev_section_(detail::t_section) {
  ++detail::t_guard_depth;
  detail::t_abort_on_alloc = (mode == Mode::kAbort);
  detail::t_section = section;
}

RtAllocationGuard::~RtAllocationGuard() {
  --detail::t_guard_depth;
  detail::t_abort_on_alloc = (prev_mode_ == Mode::kAbort) &&
                             detail::t_guard_depth > 0;
  detail::t_section = prev_section_;
}

std::size_t RtAllocationGuard::allocations_since_entry() const noexcept {
  return detail::t_alloc_count - entry_count_;
}

std::size_t RtAllocationGuard::thread_allocation_count() noexcept {
  return detail::t_alloc_count;
}

bool RtAllocationGuard::interposition_enabled() noexcept {
#if defined(MUTE_RT_GUARD_ENABLED)
  return true;
#else
  return false;
#endif
}

}  // namespace mute

#if defined(MUTE_RT_GUARD_ENABLED)

// Program-wide operator new/delete replacement (one definition per binary,
// provided by mute_common). Two front doors, checked in order:
//
//   1. Arena routing (common/arena.hpp): when a ScopedArenaAlloc is
//      installed on this thread, the allocation is a wait-free bump in the
//      tenant's arena — no malloc, no guard bookkeeping (arena allocs are
//      not heap traffic; steady-state cleanliness is about the global
//      heap). Deletes of arena pointers are no-ops: monotonic arenas are
//      reclaimed wholesale by reset().
//   2. Plain malloc/free, so sanitizers keep full visibility; the only
//      addition is the thread-local counter consulted by RtAllocationGuard.

void* operator new(std::size_t size) {
  if (void* p = mute::detail::arena_try_alloc(size, alignof(std::max_align_t)))
    return p;
  return mute::detail::checked_alloc(size);
}

void* operator new[](std::size_t size) {
  if (void* p = mute::detail::arena_try_alloc(size, alignof(std::max_align_t)))
    return p;
  return mute::detail::checked_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* p = mute::detail::arena_try_alloc(
          size, static_cast<std::size_t>(alignment)))
    return p;
  return mute::detail::checked_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* p = mute::detail::arena_try_alloc(
          size, static_cast<std::size_t>(alignment)))
    return p;
  return mute::detail::checked_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}

// The nothrow forms keep their standard contract under arena routing: on
// arena exhaustion they return nullptr (no abort, no silent heap fallback
// that would break per-tenant isolation).

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = nullptr;
  if (mute::detail::arena_try_alloc_nothrow(size, alignof(std::max_align_t),
                                            &p))
    return p;
  try {
    return mute::detail::checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = nullptr;
  if (mute::detail::arena_try_alloc_nothrow(size, alignof(std::max_align_t),
                                            &p))
    return p;
  try {
    return mute::detail::checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

namespace {
inline void mute_release(void* p) noexcept {
  if (mute::detail::arena_owns(p)) return;  // monotonic: reclaimed by reset()
  std::free(p);
}
}  // namespace

void operator delete(void* p) noexcept { mute_release(p); }
void operator delete[](void* p) noexcept { mute_release(p); }
void operator delete(void* p, std::size_t) noexcept { mute_release(p); }
void operator delete[](void* p, std::size_t) noexcept { mute_release(p); }
void operator delete(void* p, std::align_val_t) noexcept { mute_release(p); }
void operator delete[](void* p, std::align_val_t) noexcept { mute_release(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  mute_release(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  mute_release(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  mute_release(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  mute_release(p);
}

#endif  // MUTE_RT_GUARD_ENABLED
