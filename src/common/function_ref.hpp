#pragma once

#include <type_traits>
#include <utility>

namespace mute {

/// Non-owning, non-allocating callable reference — the `std::function`
/// replacement for call-scope APIs (sim::parallel_for_index, the fleet
/// worker pool). Two words: an object pointer and a call thunk. Unlike
/// std::function there is no heap fallback for large captures, no virtual
/// dispatch machinery, and copying is trivial, so a FunctionRef can be
/// stored in scheduler state shared with worker threads without any
/// allocation on the dispatch path.
///
/// Lifetime: the referenced callable must outlive every invocation — bind
/// lambdas whose scope encloses the call (the parallel-for idiom). Like
/// string_view, it is a parameter/dispatch type, not a storage type.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — callers pass lambdas directly.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return static_cast<R>((*static_cast<std::remove_reference_t<F>*>(
              obj))(std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace mute
