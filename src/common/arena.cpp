#include "common/arena.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/rt_annotations.hpp"

namespace mute {

namespace detail {

namespace {

// Thread-local routing target. Plain pointer (zero-init, no dynamic init)
// so it is safe to consult from operator new at any point in the program's
// lifetime, including static initialization of other TUs.
thread_local MonotonicArena* t_active_arena = nullptr;

// Registered slab ranges, scanned by operator delete. Writes are rare
// (pool construction/destruction); reads happen on every delete, so the
// table is a fixed array of atomics — no locks, no allocation. Slot
// ownership is a separate `claimed` flag: a registrar may only touch
// `base`/`size` after winning the claim, so concurrent registrations can
// never clobber an already-published region's extent. `base` is published
// with release ordering after `size` so a reader that sees the base also
// sees the matching size.
constexpr std::size_t kMaxRegions = 16;

struct Region {
  std::atomic<bool> claimed{false};
  std::atomic<const std::byte*> base{nullptr};
  std::atomic<std::size_t> size{0};
};

Region g_regions[kMaxRegions];

}  // namespace

void* arena_try_alloc(std::size_t size, std::size_t align) noexcept {
  MonotonicArena* arena = t_active_arena;
  if (arena == nullptr) return nullptr;
  return arena->allocate(size, align);
}

bool arena_try_alloc_nothrow(std::size_t size, std::size_t align,
                             void** out) noexcept {
  MonotonicArena* arena = t_active_arena;
  if (arena == nullptr) return false;
  // Nothrow new keeps its standard contract under arena routing: on
  // exhaustion the caller gets nullptr (checkable), not the abort the
  // throwing paths use.
  *out = arena->try_allocate(size, align);
  return true;
}

bool arena_owns(const void* p) noexcept {
  if (p == nullptr) return false;
  const auto* b = static_cast<const std::byte*>(p);
  for (const Region& r : g_regions) {
    const std::byte* base = r.base.load(std::memory_order_acquire);
    if (base == nullptr) continue;
    if (b >= base && b < base + r.size.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void register_arena_region(const void* base, std::size_t size) {
  ensure(base != nullptr && size > 0, "arena region must be non-empty");
  const auto* bytes = static_cast<const std::byte*>(base);
  for (Region& r : g_regions) {
    // Win the slot first; only the winner may write size/base, so a
    // registration probing past occupied slots cannot corrupt them.
    if (r.claimed.exchange(true, std::memory_order_acquire)) continue;
    r.size.store(size, std::memory_order_relaxed);
    r.base.store(bytes, std::memory_order_release);
    return;
  }
  MUTE_ASSERT(false, "arena region table full (more than kMaxRegions "
                     "concurrent ArenaPools)");
}

void unregister_arena_region(const void* base) {
  for (Region& r : g_regions) {
    if (r.base.load(std::memory_order_acquire) == base) {
      // Retire base/size before releasing the claim: the release store on
      // `claimed` orders them, so the next winner starts from a clean slot.
      r.base.store(nullptr, std::memory_order_relaxed);
      r.size.store(0, std::memory_order_relaxed);
      r.claimed.store(false, std::memory_order_release);
      return;
    }
  }
}

}  // namespace detail

MonotonicArena::MonotonicArena(std::byte* base, std::size_t capacity,
                               const char* name)
    : base_(base), capacity_(capacity), name_(name) {}

namespace {

MUTE_RT_ESCAPE("arena exhaustion failure path; the process is aborting")
[[noreturn]] void arena_exhausted(const char* name, std::size_t size,
                                  std::size_t offset, std::size_t capacity) {
  std::fprintf(stderr,
               "[MonotonicArena] '%s' exhausted: need %zu B at offset %zu, "
               "capacity %zu B\n",
               name, size, offset, capacity);
  std::fflush(stderr);
  MUTE_ASSERT(false, "monotonic arena exhausted (raise the per-tenant "
                     "capacity; see high_water())");
  std::abort();  // unreachable: MUTE_ASSERT(false) does not return
}

}  // namespace

void* MonotonicArena::try_allocate(std::size_t size,
                                   std::size_t align) noexcept {
  // Bump with alignment; wait-free, single-owner. Alignment is applied to
  // the ABSOLUTE address, not the offset from base_: a slab cut at a
  // non-multiple-of-align stride (or an over-aligned operator new) still
  // gets correctly aligned pointers as long as capacity allows.
  const auto addr = reinterpret_cast<std::uintptr_t>(base_) + used_;
  const std::uintptr_t mask = static_cast<std::uintptr_t>(align) - 1u;
  const std::size_t aligned =
      used_ + static_cast<std::size_t>(((addr + mask) & ~mask) - addr);
  if (aligned + size > capacity_ || aligned + size < aligned ||
      aligned < used_) [[unlikely]] {
    return nullptr;
  }
  used_ = aligned + size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocation_count_;
  return base_ + aligned;
}

void* MonotonicArena::allocate(std::size_t size, std::size_t align) noexcept {
  // The exhaustion abort is the contract: a tenant whose arena is
  // undersized must fail loudly and deterministically at the offending
  // allocation, not corrupt a neighbor.
  void* p = try_allocate(size, align);
  if (p == nullptr) [[unlikely]] {
    arena_exhausted(name_, size, used_, capacity_);
  }
  return p;
}

namespace {

// Tenant stride rounded up so every arena base (slab_ + i * bytes_) keeps
// malloc's fundamental alignment; requests over-aligned beyond this are
// still served correctly by the absolute-address fixup in try_allocate.
constexpr std::size_t round_up_to_max_align(std::size_t bytes) noexcept {
  constexpr std::size_t a = alignof(std::max_align_t);
  return (bytes + a - 1) & ~(a - 1);
}

}  // namespace

ArenaPool::ArenaPool(std::size_t tenant_bytes, std::size_t tenant_count)
    : bytes_(round_up_to_max_align(tenant_bytes)), count_(tenant_count) {
  ensure(tenant_bytes > 0 && tenant_count > 0,
         "ArenaPool needs positive tenant size and count");
  // The slab comes from malloc, NOT operator new: it must bypass both the
  // allocation guard bookkeeping and any arena routing active on the
  // constructing thread.
  slab_ = static_cast<std::byte*>(std::malloc(bytes_ * count_));
  ensure(slab_ != nullptr, "ArenaPool slab allocation failed");
  arenas_ = static_cast<MonotonicArena*>(
      std::malloc(sizeof(MonotonicArena) * count_));
  ensure(arenas_ != nullptr, "ArenaPool arena table allocation failed");
  for (std::size_t i = 0; i < count_; ++i) {
    new (arenas_ + i) MonotonicArena(slab_ + i * bytes_, bytes_, "tenant");
  }
  detail::register_arena_region(slab_, bytes_ * count_);
}

ArenaPool::~ArenaPool() {
  detail::unregister_arena_region(slab_);
  for (std::size_t i = 0; i < count_; ++i) arenas_[i].~MonotonicArena();
  std::free(arenas_);
  std::free(slab_);
}

MonotonicArena& ArenaPool::arena(std::size_t index) {
  ensure(index < count_, "arena index out of range");
  return arenas_[index];
}

const MonotonicArena& ArenaPool::arena(std::size_t index) const {
  ensure(index < count_, "arena index out of range");
  return arenas_[index];
}

ScopedArenaAlloc::ScopedArenaAlloc(MonotonicArena& arena) noexcept
    : prev_(detail::t_active_arena) {
  detail::t_active_arena = &arena;
}

ScopedArenaAlloc::~ScopedArenaAlloc() { detail::t_active_arena = prev_; }

bool ScopedArenaAlloc::routing_enabled() noexcept {
  return RtAllocationGuard::interposition_enabled();
}

}  // namespace mute
