#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

#include "common/rt_annotations.hpp"

namespace mute {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Validate a documented precondition; throws PreconditionError on failure.
/// Takes `what` as a C string on purpose: several per-sample entry points
/// (MuteDevice::tick, LancController::tick) ensure() their preconditions
/// every audio tick, and a `const std::string&` parameter would build a
/// heap-allocated temporary per call even on the success path. The message
/// is only materialized when the check actually fails.
MUTE_RT_ESCAPE(
    "precondition failure path: the throw (and its string build) only runs "
    "when the caller already violated a documented contract and the tick is "
    "lost either way; the success path is branch-only")
inline void ensure(bool condition, const char* what,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    throw PreconditionError(std::string(loc.function_name()) + ": " + what);
  }
}

/// Validate an internal invariant; throws InvariantError on failure.
MUTE_RT_ESCAPE(
    "invariant failure path: throws only on a library bug; the success path "
    "is branch-only")
inline void invariant(bool condition, const char* what,
                      std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    throw InvariantError(std::string(loc.function_name()) + ": " + what);
  }
}

}  // namespace mute
