#include "audio/generators.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::audio {

// ---------------------------------------------------------------- white

WhiteNoiseSource::WhiteNoiseSource(double rms_amplitude, std::uint64_t seed)
    : rms_(rms_amplitude), seed_(seed), rng_(seed) {
  ensure(rms_amplitude >= 0, "RMS amplitude must be non-negative");
}

void WhiteNoiseSource::render(std::span<Sample> out) {
  for (Sample& s : out) s = static_cast<Sample>(rng_.gaussian(rms_));
}

void WhiteNoiseSource::reset() { rng_ = Rng(seed_); }

// ----------------------------------------------------------------- pink

PinkNoiseSource::PinkNoiseSource(double rms_amplitude, std::uint64_t seed,
                                 std::size_t rows)
    : rms_(rms_amplitude), seed_(seed), rows_(rows), rng_(seed) {
  ensure(rows >= 1 && rows <= 32, "rows must be in [1, 32]");
  reseed();
}

void PinkNoiseSource::reseed() {
  rng_ = Rng(seed_);
  row_values_.assign(rows_, 0.0);
  running_sum_ = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    row_values_[i] = rng_.gaussian();
    running_sum_ += row_values_[i];
  }
  counter_ = 0;
}

void PinkNoiseSource::render(std::span<Sample> out) {
  // Voss-McCartney: on each tick, update the row selected by the number of
  // trailing zeros of the counter; the output is the sum of all rows.
  const double norm = rms_ / std::sqrt(static_cast<double>(rows_) + 1.0);
  for (Sample& s : out) {
    ++counter_;
    const auto tz = static_cast<std::size_t>(std::countr_zero(counter_));
    const std::size_t row = std::min(tz, rows_ - 1);
    running_sum_ -= row_values_[row];
    row_values_[row] = rng_.gaussian();
    running_sum_ += row_values_[row];
    const double white = rng_.gaussian();  // add a white row for HF content
    s = static_cast<Sample>(norm * (running_sum_ + white));
  }
}

void PinkNoiseSource::reset() { reseed(); }

// ----------------------------------------------------------------- tone

ToneSource::ToneSource(double freq_hz, double amplitude, double sample_rate,
                       double phase)
    : freq_(freq_hz), amp_(amplitude), fs_(sample_rate), phase0_(phase),
      phase_(phase) {
  ensure(sample_rate > 0, "sample rate must be positive");
  ensure(freq_hz >= 0 && freq_hz < sample_rate / 2, "freq must be in [0, fs/2)");
}

void ToneSource::render(std::span<Sample> out) {
  const double dphi = kTwoPi * freq_ / fs_;
  for (Sample& s : out) {
    s = static_cast<Sample>(amp_ * std::sin(phase_));
    phase_ = wrap_phase(phase_ + dphi);
  }
}

void ToneSource::reset() { phase_ = phase0_; }

// ------------------------------------------------------------------ hum

MachineHumSource::MachineHumSource(double fundamental_hz, double amplitude,
                                   double sample_rate, std::uint64_t seed,
                                   std::size_t harmonics)
    : f0_(fundamental_hz), amp_(amplitude), fs_(sample_rate), seed_(seed),
      harmonics_(harmonics), rng_(seed) {
  ensure(harmonics >= 1, "need at least one harmonic");
  ensure(fundamental_hz * static_cast<double>(harmonics) < sample_rate / 2,
         "highest harmonic must stay below Nyquist");
}

void MachineHumSource::render(std::span<Sample> out) {
  for (Sample& s : out) {
    // Slow AR(1) wobble in amplitude, ~1 Hz bandwidth.
    wobble_state_ = 0.9995 * wobble_state_ + 0.0005 * rng_.gaussian(8.0);
    const double wobble = 1.0 + 0.15 * std::tanh(wobble_state_);
    double v = 0.0;
    for (std::size_t h = 1; h <= harmonics_; ++h) {
      const double hv = static_cast<double>(h);
      v += std::sin(kTwoPi * f0_ * hv * t_) / hv;
    }
    s = static_cast<Sample>(amp_ * wobble * v / 1.5);
    t_ += 1.0 / fs_;
  }
}

void MachineHumSource::reset() {
  t_ = 0.0;
  wobble_state_ = 0.0;
  rng_ = Rng(seed_);
}

// ---------------------------------------------------------------- chirp

ChirpSource::ChirpSource(double f0_hz, double f1_hz, double duration_s,
                         double amplitude, double sample_rate)
    : f0_(f0_hz), f1_(f1_hz), dur_(duration_s), amp_(amplitude),
      fs_(sample_rate) {
  ensure(duration_s > 0, "duration must be positive");
  ensure(f0_hz >= 0 && f1_hz < sample_rate / 2, "sweep must stay below Nyquist");
}

void ChirpSource::render(std::span<Sample> out) {
  for (Sample& s : out) {
    const double frac = t_ / dur_;
    const double f = f0_ + (f1_ - f0_) * frac;
    phase_ = wrap_phase(phase_ + kTwoPi * f / fs_);
    s = static_cast<Sample>(amp_ * std::sin(phase_));
    t_ += 1.0 / fs_;
    if (t_ >= dur_) t_ = 0.0;  // repeat sweep
  }
}

void ChirpSource::reset() {
  t_ = 0.0;
  phase_ = 0.0;
}

// ----------------------------------------------------------- intermittent

IntermittentSource::IntermittentSource(SourcePtr inner, double sample_rate,
                                       double min_on_s, double max_on_s,
                                       double min_off_s, double max_off_s,
                                       std::uint64_t seed, double ramp_s)
    : inner_(std::move(inner)), fs_(sample_rate), min_on_(min_on_s),
      max_on_(max_on_s), min_off_(min_off_s), max_off_(max_off_s),
      ramp_(ramp_s), seed_(seed), rng_(seed) {
  ensure(inner_ != nullptr, "inner source required");
  ensure(min_on_s > 0 && max_on_s >= min_on_s, "invalid on-durations");
  ensure(min_off_s >= 0 && max_off_s >= min_off_s, "invalid off-durations");
  ramp_samples_ = static_cast<std::size_t>(ramp_s * sample_rate);
  on_ = false;  // start silent so convergence-from-quiet is exercised
  draw_segment();
}

void IntermittentSource::draw_segment() {
  on_ = !on_;
  const double dur = on_ ? rng_.uniform(min_on_, max_on_)
                         : rng_.uniform(min_off_, max_off_);
  segment_len_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(dur * fs_));
  segment_pos_ = 0;
}

void IntermittentSource::render(std::span<Sample> out) {
  std::size_t i = 0;
  Signal scratch;
  while (i < out.size()) {
    const std::size_t run =
        std::min(out.size() - i, segment_len_ - segment_pos_);
    if (on_) {
      scratch.resize(run);
      inner_->render(scratch);
      for (std::size_t j = 0; j < run; ++j) {
        // Cosine ramp at burst boundaries.
        double g = 1.0;
        const std::size_t pos = segment_pos_ + j;
        if (ramp_samples_ > 0) {
          if (pos < ramp_samples_) {
            g = 0.5 - 0.5 * std::cos(kPi * static_cast<double>(pos) /
                                     static_cast<double>(ramp_samples_));
          } else if (segment_len_ - pos <= ramp_samples_) {
            g = 0.5 - 0.5 * std::cos(kPi * static_cast<double>(segment_len_ - pos) /
                                     static_cast<double>(ramp_samples_));
          }
        }
        out[i + j] = static_cast<Sample>(static_cast<double>(scratch[j]) * g);
      }
    } else {
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(i),
                out.begin() + static_cast<std::ptrdiff_t>(i + run), 0.0f);
    }
    i += run;
    segment_pos_ += run;
    if (segment_pos_ >= segment_len_) draw_segment();
  }
}

void IntermittentSource::reset() {
  inner_->reset();
  rng_ = Rng(seed_);
  on_ = false;
  draw_segment();
}

std::string IntermittentSource::name() const {
  return "intermittent(" + inner_->name() + ")";
}

// ---------------------------------------------------------------- gated

GatedSource::GatedSource(SourcePtr inner, double sample_rate, double period_s,
                         double on_fraction, double phase_s, double ramp_s)
    : inner_(std::move(inner)),
      period_(static_cast<std::size_t>(period_s * sample_rate)),
      on_len_(static_cast<std::size_t>(period_s * on_fraction * sample_rate)),
      ramp_(static_cast<std::size_t>(ramp_s * sample_rate)),
      phase_(static_cast<std::size_t>(phase_s * sample_rate)) {
  ensure(inner_ != nullptr, "inner source required");
  ensure(period_ >= 2, "period too short");
  ensure(on_fraction > 0 && on_fraction <= 1.0, "on fraction in (0, 1]");
  ensure(ramp_ * 2 <= on_len_, "ramp longer than the on-segment");
}

double GatedSource::gate_gain(std::size_t pos_in_period) const {
  if (pos_in_period >= on_len_) return 0.0;
  if (ramp_ == 0) return 1.0;
  if (pos_in_period < ramp_) {
    return 0.5 - 0.5 * std::cos(kPi * static_cast<double>(pos_in_period) /
                                static_cast<double>(ramp_));
  }
  const std::size_t from_end = on_len_ - pos_in_period;
  if (from_end <= ramp_) {
    return 0.5 - 0.5 * std::cos(kPi * static_cast<double>(from_end) /
                                static_cast<double>(ramp_));
  }
  return 1.0;
}

void GatedSource::render(std::span<Sample> out) {
  inner_->render(out);
  for (Sample& s : out) {
    const std::size_t pos = (t_ + phase_) % period_;
    s = static_cast<Sample>(static_cast<double>(s) * gate_gain(pos));
    ++t_;
  }
}

void GatedSource::reset() {
  inner_->reset();
  t_ = 0;
}

std::string GatedSource::name() const {
  return "gated(" + inner_->name() + ")";
}

bool GatedSource::active() const {
  return (t_ + phase_) % period_ < on_len_;
}

// --------------------------------------------------------------- buffer

BufferSource::BufferSource(Signal samples, std::string label)
    : samples_(std::move(samples)), label_(std::move(label)) {
  ensure(!samples_.empty(), "buffer source needs samples");
}

void BufferSource::render(std::span<Sample> out) {
  for (Sample& s : out) {
    s = samples_[pos_];
    pos_ = (pos_ + 1) % samples_.size();
  }
}

void BufferSource::reset() { pos_ = 0; }

// ------------------------------------------------------------- filtered

FilteredSource::FilteredSource(SourcePtr inner,
                               mute::dsp::BiquadCascade shape,
                               std::string label)
    : inner_(std::move(inner)), shape_(std::move(shape)),
      label_(std::move(label)) {
  ensure(inner_ != nullptr, "inner source required");
}

void FilteredSource::render(std::span<Sample> out) {
  inner_->render(out);
  for (Sample& s : out) s = shape_.process(s);
}

void FilteredSource::reset() {
  inner_->reset();
  shape_.reset();
}

// ------------------------------------------------------------------ mix

MixSource::MixSource(std::vector<SourcePtr> parts) : parts_(std::move(parts)) {
  ensure(!parts_.empty(), "mix needs at least one source");
  for (const auto& p : parts_) ensure(p != nullptr, "null source in mix");
}

void MixSource::render(std::span<Sample> out) {
  std::fill(out.begin(), out.end(), 0.0f);
  scratch_.resize(out.size());
  for (auto& p : parts_) {
    p->render(scratch_);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<Sample>(static_cast<double>(out[i]) +
                                   static_cast<double>(scratch_[i]));
    }
  }
}

void MixSource::reset() {
  for (auto& p : parts_) p->reset();
}

}  // namespace mute::audio
