#pragma once

#include <cstdint>
#include <string>

#include "audio/source.hpp"
#include "common/rng.hpp"
#include "dsp/biquad.hpp"

namespace mute::audio {

/// Construction-site noise: quasi-periodic impact transients (hammering /
/// pile driving) over a continuous diesel-engine bed. Matches the paper's
/// "construction sound" workload — impulsive wide-band bursts plus a
/// low-frequency rumble.
struct ConstructionParams {
  double impact_rate_hz = 3.0;     // average impacts per second
  double impact_amplitude = 0.6;
  double engine_amplitude = 0.05;
  double engine_hz = 35.0;         // engine firing fundamental
  double amplitude = 1.0;          // master scale
};

class ConstructionSource final : public SoundSource {
 public:
  ConstructionSource(ConstructionParams params, double sample_rate,
                     std::uint64_t seed);

  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "construction"; }

 private:
  void schedule_next_impact();

  ConstructionParams params_;
  double fs_;
  std::uint64_t seed_;
  Rng rng_;
  mute::dsp::Biquad impact_body_;    // resonant body of the struck object
  mute::dsp::Biquad engine_lp_;      // shapes the engine rumble
  std::size_t until_impact_ = 0;
  double impact_env_ = 0.0;
  double impact_decay_ = 0.999;
  double engine_phase_ = 0.0;
};

}  // namespace mute::audio
