#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audio/source.hpp"
#include "common/rng.hpp"

namespace mute::audio {

/// Parameters for the additive music synthesizer: a monophonic-with-chords
/// note sequencer over a pentatonic scale, each note rendered as a stack of
/// decaying harmonics with an ADSR envelope. Approximates the "music"
/// workload of the paper's Figure 14/15 experiments: tonal, wide-band,
/// with note-rate amplitude dynamics.
struct MusicParams {
  double tempo_bpm = 96.0;
  double root_hz = 220.0;          // A3
  std::size_t harmonics = 8;
  double amplitude = 0.25;
  double chord_probability = 0.3;  // chance a step plays a triad
  double rest_probability = 0.1;   // chance a step is silent
};

class MusicSource final : public SoundSource {
 public:
  MusicSource(MusicParams params, double sample_rate, std::uint64_t seed);

  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "music"; }

 private:
  struct Voice {
    double freq = 0.0;
    double phase = 0.0;
  };

  void next_step();
  double envelope(double t_in_note) const;

  MusicParams params_;
  double fs_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<Voice> voices_;
  std::size_t step_len_ = 1;
  std::size_t step_pos_ = 0;
  int scale_degree_ = 0;
};

}  // namespace mute::audio
