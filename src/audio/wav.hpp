#pragma once

#include <string>

#include "common/types.hpp"

namespace mute::audio {

/// A mono waveform with its sampling rate, as read from / written to disk.
struct WavData {
  Signal samples;
  double sample_rate = kDefaultSampleRate;
};

/// Write a mono 16-bit PCM WAV file. Samples are clipped to [-1, 1].
/// Throws std::runtime_error on I/O failure.
void write_wav(const std::string& path, const WavData& data);

/// Read a WAV file (PCM 16-bit or IEEE float 32-bit, mono or first channel
/// of multi-channel). Throws std::runtime_error on parse/I/O failure.
WavData read_wav(const std::string& path);

}  // namespace mute::audio
