#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "audio/source.hpp"
#include "common/rng.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/biquad.hpp"

namespace mute::audio {

/// Gaussian white noise with configurable RMS amplitude.
class WhiteNoiseSource final : public SoundSource {
 public:
  WhiteNoiseSource(double rms_amplitude, std::uint64_t seed);
  /// Allocation-free: the MuteDevice calibration tick renders one sample
  /// per audio tick through this on the RT surface.
  MUTE_RT_SAFE void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "white_noise"; }

 private:
  double rms_;
  std::uint64_t seed_;
  Rng rng_;
};

/// Pink (1/f) noise via the Voss-McCartney row algorithm.
class PinkNoiseSource final : public SoundSource {
 public:
  PinkNoiseSource(double rms_amplitude, std::uint64_t seed,
                  std::size_t rows = 12);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "pink_noise"; }

 private:
  void reseed();
  double rms_;
  std::uint64_t seed_;
  std::size_t rows_;
  Rng rng_;
  std::vector<double> row_values_;
  std::uint64_t counter_ = 0;
  double running_sum_ = 0.0;
};

/// Pure sine tone.
class ToneSource final : public SoundSource {
 public:
  ToneSource(double freq_hz, double amplitude, double sample_rate,
             double phase = 0.0);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "tone"; }

 private:
  double freq_, amp_, fs_, phase0_, phase_;
};

/// Harmonic stack approximating rotating-machine hum: a fundamental plus
/// decaying harmonics and slight amplitude wobble.
class MachineHumSource final : public SoundSource {
 public:
  MachineHumSource(double fundamental_hz, double amplitude, double sample_rate,
                   std::uint64_t seed, std::size_t harmonics = 6);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "machine_hum"; }

 private:
  double f0_, amp_, fs_;
  std::uint64_t seed_;
  std::size_t harmonics_;
  Rng rng_;
  double t_ = 0.0;
  double wobble_state_ = 0.0;
};

/// Linear sweep from f0 to f1 over `duration_s`, then repeats.
class ChirpSource final : public SoundSource {
 public:
  ChirpSource(double f0_hz, double f1_hz, double duration_s, double amplitude,
              double sample_rate);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "chirp"; }

 private:
  double f0_, f1_, dur_, amp_, fs_;
  double t_ = 0.0, phase_ = 0.0;
};

/// Wraps another source with on/off bursts (speech-pause structure):
/// on for duration drawn U[min_on,max_on], off for U[min_off,max_off].
/// Transitions use a short cosine ramp to avoid clicks.
class IntermittentSource final : public SoundSource {
 public:
  IntermittentSource(SourcePtr inner, double sample_rate, double min_on_s,
                     double max_on_s, double min_off_s, double max_off_s,
                     std::uint64_t seed, double ramp_s = 0.01);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override;

  /// True if the source is currently inside an "on" burst.
  bool active() const { return on_; }

 private:
  void draw_segment();
  SourcePtr inner_;
  double fs_, min_on_, max_on_, min_off_, max_off_, ramp_;
  std::uint64_t seed_;
  Rng rng_;
  bool on_ = false;
  std::size_t remaining_ = 0;
  std::size_t ramp_samples_ = 0;
  std::size_t segment_len_ = 0;
  std::size_t segment_pos_ = 0;
};

/// Deterministic periodic gate around another source: ON for
/// `on_fraction` of each `period_s`, starting at `phase_s`. Lets two
/// sources at different positions alternate with exact anti-phase — the
/// "one dominant source at any given time" regime of the paper's
/// profiling experiment (Section 3.2 / Figure 17).
class GatedSource final : public SoundSource {
 public:
  GatedSource(SourcePtr inner, double sample_rate, double period_s,
              double on_fraction, double phase_s = 0.0, double ramp_s = 0.02);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override;

  bool active() const;

 private:
  double gate_gain(std::size_t pos_in_period) const;
  SourcePtr inner_;
  std::size_t period_;
  std::size_t on_len_;
  std::size_t ramp_;
  std::size_t phase_;
  std::size_t t_ = 0;
};

/// A source that plays a fixed buffer (looping).
class BufferSource final : public SoundSource {
 public:
  BufferSource(Signal samples, std::string label = "buffer");
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return label_; }

 private:
  Signal samples_;
  std::string label_;
  std::size_t pos_ = 0;
};

/// Spectrally shapes another source through a biquad cascade (e.g.
/// voice-band noise = white noise through a band-pass). Profiling
/// experiments rely on sources with distinct spectral signatures.
class FilteredSource final : public SoundSource {
 public:
  FilteredSource(SourcePtr inner, mute::dsp::BiquadCascade shape,
                 std::string label = "filtered");
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return label_; }

 private:
  SourcePtr inner_;
  mute::dsp::BiquadCascade shape_;
  std::string label_;
};

/// Mixes several sources sample-by-sample.
class MixSource final : public SoundSource {
 public:
  explicit MixSource(std::vector<SourcePtr> parts);
  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override { return "mix"; }

 private:
  std::vector<SourcePtr> parts_;
  Signal scratch_;
};

}  // namespace mute::audio
