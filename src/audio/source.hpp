#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/types.hpp"

namespace mute::audio {

/// A mono sound source that can render any number of samples on demand.
/// Sources are deterministic given their seed, so experiments replay
/// identically.
class SoundSource {
 public:
  virtual ~SoundSource() = default;

  /// Render the next `out.size()` samples, advancing internal time.
  virtual void render(std::span<Sample> out) = 0;

  /// Restart from t = 0 (same seed -> identical samples again).
  virtual void reset() = 0;

  /// Short human-readable identification for reports.
  virtual std::string name() const = 0;

  /// Convenience: render `n` samples into a fresh buffer.
  Signal generate(std::size_t n) {
    Signal out(n);
    render(out);
    return out;
  }
};

using SourcePtr = std::unique_ptr<SoundSource>;

}  // namespace mute::audio
