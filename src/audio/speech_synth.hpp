#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "audio/source.hpp"
#include "common/rng.hpp"
#include "dsp/biquad.hpp"

namespace mute::audio {

/// Parameters of a formant speech synthesizer. The synthesizer is a
/// source-filter model: a glottal pulse train (voiced) or noise (unvoiced)
/// excitation drives three formant resonators whose center frequencies
/// wander through a vowel inventory; syllable and sentence envelopes add
/// the temporal structure of real speech (the paper's "male voice" /
/// "female voice" workloads).
struct SpeechParams {
  double pitch_hz = 110.0;        // fundamental (male ~110, female ~210)
  double pitch_jitter = 0.03;     // relative random pitch modulation
  double syllable_rate_hz = 4.0;  // syllables per second
  double voiced_fraction = 0.8;   // fraction of syllables voiced
  double sentence_s = 2.5;        // mean sentence length
  double pause_s = 0.8;           // mean inter-sentence pause
  double amplitude = 0.25;        // overall RMS-ish scale
  bool continuous = false;        // true = no sentence pauses

  static SpeechParams male();
  static SpeechParams female();
};

class SpeechSource final : public SoundSource {
 public:
  SpeechSource(SpeechParams params, double sample_rate, std::uint64_t seed);

  void render(std::span<Sample> out) override;
  void reset() override;
  std::string name() const override;

  /// True while inside a sentence (not a pause).
  bool speaking() const { return in_sentence_; }

 private:
  void rebuild();
  void next_syllable();
  void next_sentence_state();
  double excitation_sample();

  SpeechParams params_;
  double fs_;
  std::uint64_t seed_;
  Rng rng_;

  // Formant resonators (3 bandpass sections).
  std::array<mute::dsp::Biquad, 3> formants_;
  std::array<double, 3> current_formants_{};
  std::array<double, 3> target_formants_{};

  // Excitation state.
  double glottal_phase_ = 0.0;
  double pitch_now_ = 110.0;
  bool syllable_voiced_ = true;

  // Temporal structure.
  bool in_sentence_ = false;
  std::size_t state_remaining_ = 0;     // samples left in sentence/pause
  std::size_t syllable_remaining_ = 0;  // samples left in syllable
  std::size_t syllable_len_ = 1;
  double syllable_pos_ = 0.0;
};

}  // namespace mute::audio
