#include "audio/wav.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace mute::audio {

namespace {

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xFF));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  b.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  b.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xFF));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_tag(std::vector<std::uint8_t>& b, const char* tag) {
  b.insert(b.end(), tag, tag + 4);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

}  // namespace

void write_wav(const std::string& path, const WavData& data) {
  const std::uint32_t n = static_cast<std::uint32_t>(data.samples.size());
  const std::uint32_t byte_rate = static_cast<std::uint32_t>(data.sample_rate) * 2;
  const std::uint32_t data_bytes = n * 2;

  std::vector<std::uint8_t> buf;
  buf.reserve(44 + data_bytes);
  put_tag(buf, "RIFF");
  put_u32(buf, 36 + data_bytes);
  put_tag(buf, "WAVE");
  put_tag(buf, "fmt ");
  put_u32(buf, 16);                 // PCM fmt chunk size
  put_u16(buf, 1);                  // PCM
  put_u16(buf, 1);                  // mono
  put_u32(buf, static_cast<std::uint32_t>(data.sample_rate));
  put_u32(buf, byte_rate);
  put_u16(buf, 2);                  // block align
  put_u16(buf, 16);                 // bits per sample
  put_tag(buf, "data");
  put_u32(buf, data_bytes);
  for (Sample s : data.samples) {
    const double clamped = std::clamp(static_cast<double>(s), -1.0, 1.0);
    const auto v = static_cast<std::int16_t>(std::lround(clamped * 32767.0));
    put_u16(buf, static_cast<std::uint16_t>(v));
  }

  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

WavData read_wav(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  if (buf.size() < 44 || std::memcmp(buf.data(), "RIFF", 4) != 0 ||
      std::memcmp(buf.data() + 8, "WAVE", 4) != 0) {
    throw std::runtime_error("not a RIFF/WAVE file: " + path);
  }

  // Walk chunks to find fmt and data.
  std::size_t pos = 12;
  std::uint16_t format = 0, channels = 0, bits = 0;
  std::uint32_t rate = 0;
  const std::uint8_t* data_ptr = nullptr;
  std::uint32_t data_len = 0;
  while (pos + 8 <= buf.size()) {
    const std::uint32_t chunk_len = get_u32(buf.data() + pos + 4);
    const std::uint8_t* body = buf.data() + pos + 8;
    if (pos + 8 + chunk_len > buf.size()) break;
    if (std::memcmp(buf.data() + pos, "fmt ", 4) == 0 && chunk_len >= 16) {
      format = get_u16(body);
      channels = get_u16(body + 2);
      rate = get_u32(body + 4);
      bits = get_u16(body + 14);
    } else if (std::memcmp(buf.data() + pos, "data", 4) == 0) {
      data_ptr = body;
      data_len = chunk_len;
    }
    pos += 8 + chunk_len + (chunk_len & 1);  // chunks are 2-byte aligned
  }
  if (data_ptr == nullptr || channels == 0 || rate == 0) {
    throw std::runtime_error("missing fmt/data chunk: " + path);
  }

  WavData out;
  out.sample_rate = static_cast<double>(rate);
  if (format == 1 && bits == 16) {
    const std::size_t frames = data_len / (2u * channels);
    out.samples.resize(frames);
    for (std::size_t i = 0; i < frames; ++i) {
      const auto v = static_cast<std::int16_t>(
          get_u16(data_ptr + i * 2u * channels));
      out.samples[i] = static_cast<Sample>(v / 32768.0);
    }
  } else if (format == 3 && bits == 32) {
    const std::size_t frames = data_len / (4u * channels);
    out.samples.resize(frames);
    for (std::size_t i = 0; i < frames; ++i) {
      float v;
      std::memcpy(&v, data_ptr + i * 4u * channels, 4);
      out.samples[i] = v;
    }
  } else {
    throw std::runtime_error("unsupported WAV encoding (want PCM16 or float32)");
  }
  return out;
}

}  // namespace mute::audio
