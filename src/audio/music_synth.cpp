#include "audio/music_synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::audio {

namespace {

// Minor-pentatonic scale degrees in semitones.
constexpr int kScale[] = {0, 3, 5, 7, 10, 12, 15, 17};

double semitones_to_ratio(int s) { return std::pow(2.0, s / 12.0); }

}  // namespace

MusicSource::MusicSource(MusicParams params, double sample_rate,
                         std::uint64_t seed)
    : params_(params), fs_(sample_rate), seed_(seed), rng_(seed) {
  ensure(sample_rate > 0, "sample rate must be positive");
  ensure(params.tempo_bpm > 20 && params.tempo_bpm < 300, "unreasonable tempo");
  ensure(params.harmonics >= 1, "need >= 1 harmonic");
  next_step();
}

void MusicSource::next_step() {
  // Eighth-note steps.
  step_len_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(fs_ * 30.0 / params_.tempo_bpm));
  step_pos_ = 0;
  voices_.clear();
  if (rng_.bernoulli(params_.rest_probability)) return;  // rest

  // Random walk on the scale.
  scale_degree_ += static_cast<int>(rng_.uniform_int(-2, 2));
  scale_degree_ = std::clamp(scale_degree_, 0, 7);
  const double base =
      params_.root_hz * semitones_to_ratio(kScale[scale_degree_]);
  voices_.push_back({base, rng_.uniform(0.0, kTwoPi)});
  if (rng_.bernoulli(params_.chord_probability)) {
    voices_.push_back({base * semitones_to_ratio(3), rng_.uniform(0.0, kTwoPi)});
    voices_.push_back({base * semitones_to_ratio(7), rng_.uniform(0.0, kTwoPi)});
  }
}

double MusicSource::envelope(double t_in_note) const {
  // Pluck-style ADSR: 5 ms attack, exponential decay.
  const double attack = 0.005;
  if (t_in_note < attack) return t_in_note / attack;
  return std::exp(-(t_in_note - attack) * 4.0);
}

void MusicSource::render(std::span<Sample> out) {
  for (Sample& s : out) {
    if (step_pos_ >= step_len_) next_step();
    double v = 0.0;
    const double t = static_cast<double>(step_pos_) / fs_;
    const double env = envelope(t);
    for (auto& voice : voices_) {
      for (std::size_t h = 1; h <= params_.harmonics; ++h) {
        const double hf = voice.freq * static_cast<double>(h);
        if (hf >= 0.45 * fs_) break;
        // Harmonic rolloff 1/h^1.5 plus faster decay of high partials.
        const double gain =
            std::pow(static_cast<double>(h), -1.5) *
            std::exp(-t * 2.0 * static_cast<double>(h - 1));
        v += gain * std::sin(kTwoPi * hf * t + voice.phase);
      }
    }
    const double norm = voices_.empty() ? 1.0 : 1.0 / std::sqrt(static_cast<double>(voices_.size()));
    s = static_cast<Sample>(params_.amplitude * env * v * norm);
    ++step_pos_;
  }
}

void MusicSource::reset() {
  rng_ = Rng(seed_);
  scale_degree_ = 0;
  next_step();
}

}  // namespace mute::audio
