#include "audio/speech_synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::audio {

namespace {

// A small vowel inventory: {F1, F2, F3} in Hz (rough adult male values;
// scaled up ~15% for the female preset via pitch-linked scaling below).
constexpr std::array<std::array<double, 3>, 5> kVowels = {{
    {730.0, 1090.0, 2440.0},  // /a/
    {530.0, 1840.0, 2480.0},  // /e/
    {270.0, 2290.0, 3010.0},  // /i/
    {570.0, 840.0, 2410.0},   // /o/
    {300.0, 870.0, 2240.0},   // /u/
}};

}  // namespace

SpeechParams SpeechParams::male() {
  SpeechParams p;
  p.pitch_hz = 110.0;
  return p;
}

SpeechParams SpeechParams::female() {
  SpeechParams p;
  p.pitch_hz = 210.0;
  p.syllable_rate_hz = 4.5;
  return p;
}

SpeechSource::SpeechSource(SpeechParams params, double sample_rate,
                           std::uint64_t seed)
    : params_(params), fs_(sample_rate), seed_(seed), rng_(seed),
      formants_{mute::dsp::Biquad::bandpass(700, 6.0, sample_rate),
                mute::dsp::Biquad::bandpass(1100, 8.0, sample_rate),
                mute::dsp::Biquad::bandpass(2400, 10.0, sample_rate)} {
  ensure(sample_rate >= 8000.0, "speech synthesis needs fs >= 8 kHz");
  ensure(params.pitch_hz > 50 && params.pitch_hz < 400, "unreasonable pitch");
  rebuild();
}

void SpeechSource::rebuild() {
  rng_ = Rng(seed_);
  pitch_now_ = params_.pitch_hz;
  glottal_phase_ = 0.0;
  in_sentence_ = false;
  state_remaining_ = 0;
  syllable_remaining_ = 0;
  next_sentence_state();
  next_syllable();
}

void SpeechSource::next_sentence_state() {
  in_sentence_ = !in_sentence_;
  if (params_.continuous) in_sentence_ = true;
  const double mean = in_sentence_ ? params_.sentence_s : params_.pause_s;
  // Exponential-ish duration with a floor, capped at 4x mean.
  const double dur =
      std::min(4.0 * mean, std::max(0.3 * mean, -mean * std::log(rng_.uniform(0.05, 1.0))));
  state_remaining_ =
      std::max<std::size_t>(1, static_cast<std::size_t>(dur * fs_));
}

void SpeechSource::next_syllable() {
  const double rate = params_.syllable_rate_hz * rng_.uniform(0.7, 1.4);
  syllable_len_ =
      std::max<std::size_t>(1, static_cast<std::size_t>(fs_ / rate));
  syllable_remaining_ = syllable_len_;
  syllable_pos_ = 0.0;
  syllable_voiced_ = rng_.bernoulli(params_.voiced_fraction);
  // Pick a vowel; scale formants with pitch (higher-pitched voices have
  // proportionally higher vocal-tract resonances, ~15% female shift).
  const auto& v = kVowels[static_cast<std::size_t>(rng_.uniform_int(0, 4))];
  const double scale = 1.0 + 0.15 * (params_.pitch_hz - 110.0) / 100.0;
  for (std::size_t i = 0; i < 3; ++i) {
    target_formants_[i] = std::min(v[i] * scale, 0.45 * fs_);
  }
  // Small random pitch drift per syllable (prosody).
  pitch_now_ = params_.pitch_hz * rng_.uniform(0.9, 1.15);
}

double SpeechSource::excitation_sample() {
  if (!syllable_voiced_) {
    return 0.35 * rng_.gaussian();  // fricative-like noise
  }
  // Rosenberg-flavored glottal pulse: asymmetric raised-cosine per period
  // plus a little aspiration noise.
  const double jitter = 1.0 + params_.pitch_jitter * rng_.gaussian();
  glottal_phase_ += pitch_now_ * jitter / fs_;
  if (glottal_phase_ >= 1.0) glottal_phase_ -= 1.0;
  const double open = 0.6;  // open-quotient of the glottal cycle
  double g = 0.0;
  if (glottal_phase_ < open) {
    g = 0.5 * (1.0 - std::cos(kPi * glottal_phase_ / open)) *
        std::sin(kPi * glottal_phase_ / open);
  }
  return g + 0.05 * rng_.gaussian();
}

void SpeechSource::render(std::span<Sample> out) {
  for (Sample& s : out) {
    if (state_remaining_ == 0) next_sentence_state();
    --state_remaining_;

    if (!in_sentence_) {
      s = 0.0f;
      continue;
    }
    if (syllable_remaining_ == 0) next_syllable();
    --syllable_remaining_;
    syllable_pos_ += 1.0;

    // Glide formants toward the syllable target (coarticulation).
    for (std::size_t i = 0; i < 3; ++i) {
      current_formants_[i] += 0.002 * (target_formants_[i] - current_formants_[i]);
      if (current_formants_[i] < 100.0) current_formants_[i] = target_formants_[i];
    }
    formants_[0] = mute::dsp::Biquad::bandpass(current_formants_[0], 6.0, fs_);
    formants_[1] = mute::dsp::Biquad::bandpass(current_formants_[1], 8.0, fs_);
    formants_[2] = mute::dsp::Biquad::bandpass(current_formants_[2], 10.0, fs_);

    const double exc = excitation_sample();
    double v = 0.0;
    v += 1.0 * static_cast<double>(formants_[0].process(static_cast<Sample>(exc)));
    v += 0.6 * static_cast<double>(formants_[1].process(static_cast<Sample>(exc)));
    v += 0.3 * static_cast<double>(formants_[2].process(static_cast<Sample>(exc)));

    // Syllable amplitude envelope (rise-fall) with a floor: natural
    // speech never drops to silence between syllables within a sentence
    // (coarticulation), and a zero floor makes the synthetic workload
    // pathologically non-stationary.
    const double frac = syllable_pos_ / static_cast<double>(syllable_len_);
    const double env =
        0.35 + 0.65 * std::sin(kPi * std::clamp(frac, 0.0, 1.0));
    s = static_cast<Sample>(params_.amplitude * env * v * 4.0);
  }
}

void SpeechSource::reset() { rebuild(); }

std::string SpeechSource::name() const {
  return params_.pitch_hz >= 180.0 ? "female_voice" : "male_voice";
}

}  // namespace mute::audio
