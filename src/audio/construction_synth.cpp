#include "audio/construction_synth.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::audio {

ConstructionSource::ConstructionSource(ConstructionParams params,
                                       double sample_rate, std::uint64_t seed)
    : params_(params), fs_(sample_rate), seed_(seed), rng_(seed),
      impact_body_(mute::dsp::Biquad::bandpass(900.0, 2.0, sample_rate)),
      engine_lp_(mute::dsp::Biquad::lowpass(180.0, 0.8, sample_rate)) {
  ensure(sample_rate > 0, "sample rate must be positive");
  ensure(params.impact_rate_hz > 0, "impact rate must be positive");
  // ~80 ms ring-down for each impact.
  impact_decay_ = std::exp(-1.0 / (0.08 * sample_rate));
  schedule_next_impact();
}

void ConstructionSource::schedule_next_impact() {
  // Quasi-periodic: period jittered +-35%.
  const double period = (1.0 / params_.impact_rate_hz) * rng_.uniform(0.65, 1.35);
  until_impact_ = std::max<std::size_t>(1, static_cast<std::size_t>(period * fs_));
}

void ConstructionSource::render(std::span<Sample> out) {
  for (Sample& s : out) {
    if (until_impact_ == 0) {
      impact_env_ = params_.impact_amplitude * rng_.uniform(0.6, 1.2);
      schedule_next_impact();
    } else {
      --until_impact_;
    }
    // Impact: decaying noise burst through a resonant body filter.
    double impact = 0.0;
    if (impact_env_ > 1e-4) {
      impact = static_cast<double>(impact_body_.process(
          static_cast<Sample>(impact_env_ * rng_.gaussian())));
      impact_env_ *= impact_decay_;
    }
    // Engine bed: low-frequency harmonic buzz + filtered noise.
    engine_phase_ = wrap_phase(engine_phase_ + kTwoPi * params_.engine_hz / fs_);
    const double buzz = std::sin(engine_phase_) + 0.5 * std::sin(2.0 * engine_phase_) +
                        0.8 * rng_.gaussian();
    const double engine = params_.engine_amplitude *
                          static_cast<double>(engine_lp_.process(static_cast<Sample>(buzz)));
    s = static_cast<Sample>(params_.amplitude * (impact + engine));
  }
}

void ConstructionSource::reset() {
  rng_ = Rng(seed_);
  impact_body_.reset();
  engine_lp_.reset();
  impact_env_ = 0.0;
  engine_phase_ = 0.0;
  schedule_next_impact();
}

}  // namespace mute::audio
