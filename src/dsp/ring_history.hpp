#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rt_annotations.hpp"

namespace mute::dsp {

/// Doubled-buffer sliding history with an O(1) push and a *contiguous*
/// window — the storage scheme behind every per-sample tap loop
/// (DESIGN.md §10).
///
/// The classic alternatives both lose: shifting a vector per sample
/// (std::rotate) is O(length), and a plain circular buffer keeps O(1) push
/// but splits the window in two, putting a modulo in the inner loop of
/// every dot product. Storing each sample TWICE — at `head` and at
/// `head + length` in a 2*length buffer — keeps the most recent `length`
/// samples contiguous at `&buf[head]` no matter where the head is:
///
///     buf:  [ d c b a | d c b a ]      after pushes a,b,c,d (length 4)
///             ^window() = {d,c,b,a}    newest-first
///
/// push() decrements the head (wrapping from 0 back to length-1) and
/// writes the mirrored pair; window() is then newest-first: window()[0] is
/// the sample just pushed, window()[k] the one pushed k samples ago. This
/// matches the newest-first convention of the adaptive engines
/// (x_hist_[i] = x(t - (i - N))) and of FirFilter coefficients (h[0]
/// multiplies the newest sample).
template <typename T>
class RingHistory {
 public:
  explicit RingHistory(std::size_t length) { assign(length, T{}); }

  /// O(1), allocation-free: drop the oldest sample, admit `v` as newest.
  MUTE_RT_SAFE void push(T v) {
    head_ = (head_ == 0) ? len_ - 1 : head_ - 1;
    buf_[head_] = v;
    buf_[head_ + len_] = v;
  }

  /// Contiguous newest-first window of the last size() samples.
  const T* data() const { return buf_.data() + head_; }
  std::span<const T> window() const { return {data(), len_}; }

  T newest() const { return buf_[head_]; }
  T oldest() const { return buf_[head_ + len_ - 1]; }
  std::size_t size() const { return len_; }

  /// Overwrite every history slot (typically fill(0) on reset). Keeps the
  /// current head; allocation-free.
  void fill(T v) { std::fill(buf_.begin(), buf_.end(), v); }

  /// Resize and refill. Control-plane only: allocates.
  MUTE_RT_UNSAFE void assign(std::size_t length, T v) {
    ensure(length >= 1, "ring history length must be >= 1");
    len_ = length;
    head_ = 0;
    buf_.assign(2 * length, v);
  }

 private:
  std::vector<T> buf_;
  std::size_t len_ = 0;
  std::size_t head_ = 0;
};

/// Same doubled-buffer trick with the window in OLDEST-first order:
/// window()[0] is the oldest retained sample, window()[size()-1] the one
/// just pushed. This is the natural layout for frame-oriented consumers
/// (the LANC profiler hands window() straight to the signature extractor).
/// push() writes the mirrored pair then advances the head.
template <typename T>
class FrameHistory {
 public:
  explicit FrameHistory(std::size_t length) { assign(length, T{}); }

  /// O(1), allocation-free: drop the oldest sample, append `v` as newest.
  MUTE_RT_SAFE void push(T v) {
    buf_[head_] = v;
    buf_[head_ + len_] = v;
    head_ = (head_ + 1 == len_) ? 0 : head_ + 1;
  }

  /// Contiguous oldest-first window of the last size() samples.
  const T* data() const { return buf_.data() + head_; }
  std::span<const T> window() const { return {data(), len_}; }

  T newest() const { return buf_[head_ + len_ - 1]; }
  T oldest() const { return buf_[head_]; }
  std::size_t size() const { return len_; }

  void fill(T v) { std::fill(buf_.begin(), buf_.end(), v); }

  /// Resize and refill. Control-plane only: allocates.
  MUTE_RT_UNSAFE void assign(std::size_t length, T v) {
    ensure(length >= 1, "frame history length must be >= 1");
    len_ = length;
    head_ = 0;
    buf_.assign(2 * length, v);
  }

 private:
  std::vector<T> buf_;
  std::size_t len_ = 0;
  std::size_t head_ = 0;
};

}  // namespace mute::dsp
