#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/fir_design.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::dsp {

/// Integer-sample delay line. A delay of 0 is the identity.
/// This is the "delayed line buffer" used by the paper (Section 5.2) to
/// artificially shorten lookahead in the Figure 16 experiment.
class DelayLine {
 public:
  explicit DelayLine(std::size_t delay_samples)
      : buffer_(delay_samples, 0.0f) {}

  MUTE_RT_SAFE Sample process(Sample x) {
    MUTE_CHECK_FINITE(x, "delay line input sample");
    MUTE_RT_SCOPE("DelayLine::process");
    if (buffer_.empty()) return x;
    MUTE_DCHECK(pos_ < buffer_.size(), "delay line cursor out of range");
    const Sample out = buffer_[pos_];
    buffer_[pos_] = x;
    pos_ = (pos_ + 1) % buffer_.size();
    return out;
  }

  void reset() {
    std::fill(buffer_.begin(), buffer_.end(), 0.0f);
    pos_ = 0;
  }

  std::size_t delay() const { return buffer_.size(); }

 private:
  std::vector<Sample> buffer_;
  std::size_t pos_ = 0;
};

/// Fractional-sample delay implemented as an integer delay plus a
/// windowed-sinc interpolation FIR. Models sub-sample acoustic propagation
/// offsets and converter latencies that are not multiples of 1/fs.
class FractionalDelay {
 public:
  /// `delay_samples` >= 0; `interp_taps` controls interpolation quality
  /// (odd, default 31).
  explicit FractionalDelay(double delay_samples, std::size_t interp_taps = 31)
      : integer_part_(split_integer(delay_samples, interp_taps)),
        coarse_(integer_part_),
        fine_(design_fractional_delay(
            delay_samples - static_cast<double>(integer_part_), interp_taps)),
        total_delay_(delay_samples) {
    ensure(delay_samples >= 0.0, "delay must be non-negative");
  }

  MUTE_RT_SAFE Sample process(Sample x) {
    return fine_.process(coarse_.process(x));
  }

  void reset() {
    coarse_.reset();
    fine_.reset();
  }

  double total_delay() const { return total_delay_; }

 private:
  /// Keep the fractional FIR's realized delay near the filter center so the
  /// sinc main lobe is well supported: put as much as possible of the delay
  /// into the integer line, leaving [half, half+1) for the interpolator.
  static std::size_t split_integer(double delay_samples,
                                   std::size_t interp_taps) {
    ensure(interp_taps >= 3, "need >= 3 interpolation taps");
    const double half = static_cast<double>(interp_taps - 1) / 2.0;
    if (delay_samples <= half) return 0;
    return static_cast<std::size_t>(delay_samples - half);
  }

  std::size_t integer_part_;
  DelayLine coarse_;
  FirFilter fine_;
  double total_delay_ = 0.0;
};

}  // namespace mute::dsp
