#include "dsp/window.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::dsp {

double bessel_i0(double x) {
  // Power-series evaluation; converges quickly for the arguments used in
  // Kaiser windows (|x| < ~30).
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-16 * sum) break;
  }
  return sum;
}

std::vector<double> make_window(WindowType type, std::size_t n,
                                double kaiser_beta) {
  ensure(n >= 1, "window length must be >= 1");
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = kTwoPi * static_cast<double>(i) / denom;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
    case WindowType::kKaiser: {
      const double i0_beta = bessel_i0(kaiser_beta);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = 2.0 * static_cast<double>(i) / denom - 1.0;
        w[i] = bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - r * r))) /
               i0_beta;
      }
      break;
    }
  }
  return w;
}

double window_sum(const std::vector<double>& w) {
  double s = 0.0;
  for (double v : w) s += v;
  return s;
}

double window_power(const std::vector<double>& w) {
  double s = 0.0;
  for (double v : w) s += v * v;
  return s;
}

}  // namespace mute::dsp
