#pragma once

#include <cstddef>

#include "common/rt_annotations.hpp"

/// Shared hot-path DSP kernels.
///
/// Every per-sample loop in the adaptive engines and the FIR filter funnels
/// through these four primitives, so they carry the whole real-time budget
/// (DESIGN.md §10). Contracts:
///
///   dot(a, b, n)                 sum_i a[i] * b[i]. `a` and `b` must not
///                                alias (restrict-qualified); use energy()
///                                for a self-product.
///   energy(x, n)                 sum_i x[i]^2.
///   axpy_leaky_norm(w, x, ...)   w[i] = keep * w[i] + g * x[i] for all i,
///                                returns the *new* ||w||^2 — the fused
///                                FxLMS/LMS weight update. `w` and `x` must
///                                not alias.
///   scaled_accumulate(acc, ...)  acc[i] += s * x[i] — the tap-major inner
///                                step of block FIR filtering. No aliasing.
///
/// The frequency-domain block engines (adaptive::BlockFdaf,
/// adaptive::FdFxlmsEngine) and the Welch estimators add a second family
/// operating on interleaved complex data. A `z` argument is an interleaved
/// (re, im) double array — the guaranteed memory layout of
/// std::complex<double> — and `n` counts COMPLEX elements (2n doubles):
///
///   cmul_accumulate(acc, a, b, n)       acc[k] += a[k] * b[k] (complex
///                                       multiply) — the per-partition
///                                       spectral convolution step.
///   cmul_conj_scaled(out, a, b, p, eps, n)
///                                       out[k] = conj(a[k]) * b[k]
///                                                / (p[k] + eps) — the
///                                       per-bin-normalized FDAF gradient
///                                       (p is a real per-bin power array).
///   magsq_accumulate(acc, z, n)         acc[k] += |z[k]|^2 (acc is real) —
///                                       Welch periodogram accumulation and
///                                       exact bin-power re-syncs.
///   magsq_update(acc, z_new, z_old, n)  acc[k] += |z_new[k]|^2
///                                                - |z_old[k]|^2 — the O(F)
///                                       sliding-window bin-power update of
///                                       the partitioned engines.
///   window_into_complex(out, w, x, n)   out[k] = (w[k] * x[k], 0) — the
///                                       windowed real-to-complex load that
///                                       fronts every FFT in the spectral
///                                       estimators (x is float Sample
///                                       data, w the double window).
///
/// Numerical contract: results are deterministic for a fixed build (fixed
/// accumulation order — wide independent partial sums, folded in a fixed
/// sequence) but are NOT bit-identical to the single-accumulator naive::
/// forms; they agree to a relative 1e-12-ish reassociation error, which the
/// equivalence tests in tests/dsp/kernels_test.cpp pin. The naive::
/// implementations exist as the reference semantics and must never be
/// "optimized".
///
/// All kernels are allocation-free and safe inside MUTE_RT_SCOPE sections.
/// n == 0 is valid (returns 0 / does nothing).
namespace mute::dsp::kernels {

MUTE_RT_SAFE double dot(const double* a, const double* b, std::size_t n);
MUTE_RT_SAFE double energy(const double* x, std::size_t n);
MUTE_RT_SAFE double axpy_leaky_norm(double* w, const double* x, double keep,
                                    double g, std::size_t n);
MUTE_RT_SAFE void scaled_accumulate(double* acc, const double* x, double s,
                                    std::size_t n);

// Interleaved-complex kernels (n counts complex elements; no aliasing
// between the output and any input).
MUTE_RT_SAFE void cmul_accumulate(double* acc, const double* a,
                                  const double* b, std::size_t n);
MUTE_RT_SAFE void cmul_conj_scaled(double* out, const double* a,
                                   const double* b, const double* power,
                                   double eps, std::size_t n);
MUTE_RT_SAFE void magsq_accumulate(double* acc, const double* z,
                                   std::size_t n);
MUTE_RT_SAFE void magsq_update(double* acc, const double* z_new,
                               const double* z_old, std::size_t n);
MUTE_RT_SAFE void window_into_complex(double* out, const double* w,
                                      const float* x, std::size_t n);

/// Reference implementations: textbook single-accumulator loops, kept for
/// equivalence testing and as the documentation of record for the kernel
/// semantics.
namespace naive {

double dot(const double* a, const double* b, std::size_t n);
double energy(const double* x, std::size_t n);
double axpy_leaky_norm(double* w, const double* x, double keep, double g,
                       std::size_t n);
void scaled_accumulate(double* acc, const double* x, double s, std::size_t n);
void cmul_accumulate(double* acc, const double* a, const double* b,
                     std::size_t n);
void cmul_conj_scaled(double* out, const double* a, const double* b,
                      const double* power, double eps, std::size_t n);
void magsq_accumulate(double* acc, const double* z, std::size_t n);
void magsq_update(double* acc, const double* z_new, const double* z_old,
                  std::size_t n);
void window_into_complex(double* out, const double* w, const float* x,
                         std::size_t n);

}  // namespace naive

}  // namespace mute::dsp::kernels
