#pragma once

#include <cstddef>

#include "common/rt_annotations.hpp"

/// Shared hot-path DSP kernels.
///
/// Every per-sample loop in the adaptive engines and the FIR filter funnels
/// through these four primitives, so they carry the whole real-time budget
/// (DESIGN.md §10). Contracts:
///
///   dot(a, b, n)                 sum_i a[i] * b[i]. `a` and `b` must not
///                                alias (restrict-qualified); use energy()
///                                for a self-product.
///   energy(x, n)                 sum_i x[i]^2.
///   axpy_leaky_norm(w, x, ...)   w[i] = keep * w[i] + g * x[i] for all i,
///                                returns the *new* ||w||^2 — the fused
///                                FxLMS/LMS weight update. `w` and `x` must
///                                not alias.
///   scaled_accumulate(acc, ...)  acc[i] += s * x[i] — the tap-major inner
///                                step of block FIR filtering. No aliasing.
///
/// Numerical contract: results are deterministic for a fixed build (fixed
/// accumulation order — wide independent partial sums, folded in a fixed
/// sequence) but are NOT bit-identical to the single-accumulator naive::
/// forms; they agree to a relative 1e-12-ish reassociation error, which the
/// equivalence tests in tests/dsp/kernels_test.cpp pin. The naive::
/// implementations exist as the reference semantics and must never be
/// "optimized".
///
/// All kernels are allocation-free and safe inside MUTE_RT_SCOPE sections.
/// n == 0 is valid (returns 0 / does nothing).
namespace mute::dsp::kernels {

MUTE_RT_SAFE double dot(const double* a, const double* b, std::size_t n);
MUTE_RT_SAFE double energy(const double* x, std::size_t n);
MUTE_RT_SAFE double axpy_leaky_norm(double* w, const double* x, double keep,
                                    double g, std::size_t n);
MUTE_RT_SAFE void scaled_accumulate(double* acc, const double* x, double s,
                                    std::size_t n);

/// Reference implementations: textbook single-accumulator loops, kept for
/// equivalence testing and as the documentation of record for the kernel
/// semantics.
namespace naive {

double dot(const double* a, const double* b, std::size_t n);
double energy(const double* x, std::size_t n);
double axpy_leaky_norm(double* w, const double* x, double keep, double g,
                       std::size_t n);
void scaled_accumulate(double* acc, const double* x, double s, std::size_t n);

}  // namespace naive

}  // namespace mute::dsp::kernels
