#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::dsp {

/// In-place iterative radix-2 decimation-in-time FFT.
/// `data.size()` must be a power of two.
void fft_inplace(std::span<Complex> data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(std::span<Complex> data);

/// Out-of-place forward FFT; input is zero-padded to the next power of two
/// if `n` is larger than `input.size()`. `n == 0` means next_pow2(size).
ComplexSignal fft(std::span<const Complex> input, std::size_t n = 0);

/// Forward FFT of a real signal; returns the full complex spectrum of
/// length next_pow2(max(n, input.size())).
ComplexSignal fft_real(std::span<const Sample> input, std::size_t n = 0);

/// Inverse FFT returning only the real parts (caller asserts the spectrum
/// is conjugate-symmetric, e.g. came from fft_real-processed data).
Signal ifft_real(std::span<const Complex> spectrum);

/// Frequency in Hz of FFT bin `k` for a transform of length `n`.
double bin_frequency(std::size_t k, std::size_t n, double sample_rate);

}  // namespace mute::dsp
