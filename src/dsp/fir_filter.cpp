#include "dsp/fir_filter.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace mute::dsp {

FirFilter::FirFilter(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)), history_(coeffs_.size(), 0.0) {
  ensure(!coeffs_.empty(), "FIR filter needs at least one coefficient");
}

Sample FirFilter::process(Sample x) {
  MUTE_CHECK_FINITE(x, "FIR input sample");
  MUTE_RT_SCOPE("FirFilter::process");
  const std::size_t n = coeffs_.size();
  MUTE_DCHECK(pos_ < n, "FIR history cursor out of range");
  history_[pos_] = static_cast<double>(x);
  double acc = 0.0;
  // h[0] multiplies the newest sample, h[n-1] the oldest.
  std::size_t idx = pos_;
  for (std::size_t k = 0; k < n; ++k) {
    acc += coeffs_[k] * history_[idx];
    idx = (idx == 0) ? n - 1 : idx - 1;
  }
  pos_ = (pos_ + 1 == n) ? 0 : pos_ + 1;
  return static_cast<Sample>(acc);
}

void FirFilter::process(std::span<const Sample> in, std::span<Sample> out) {
  ensure(in.size() == out.size(), "in/out block sizes must match");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

Signal FirFilter::filter(std::span<const Sample> in) {
  Signal out(in.size());
  process(in, out);
  return out;
}

void FirFilter::reset() {
  std::fill(history_.begin(), history_.end(), 0.0);
  pos_ = 0;
}

}  // namespace mute::dsp
