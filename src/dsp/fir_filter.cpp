#include "dsp/fir_filter.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "dsp/kernels.hpp"

namespace mute::dsp {

FirFilter::FirFilter(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)),
      history_(std::max<std::size_t>(coeffs_.size(), 1)) {
  ensure(!coeffs_.empty(), "FIR filter needs at least one coefficient");
}

Sample FirFilter::process(Sample x) {
  MUTE_CHECK_FINITE(x, "FIR input sample");
  MUTE_RT_SCOPE("FirFilter::process");
  // h[0] multiplies the newest sample, h[n-1] the oldest — exactly the
  // ring's newest-first window order.
  history_.push(static_cast<double>(x));
  return static_cast<Sample>(
      kernels::dot(coeffs_.data(), history_.data(), coeffs_.size()));
}

void FirFilter::process(std::span<const Sample> in, std::span<Sample> out) {
  ensure(in.size() == out.size(), "in/out block sizes must match");
  const std::size_t n = coeffs_.size();
  const std::size_t b = in.size();
  if (b == 0) return;

  // Assemble [n-1 most recent history samples | the block] in one
  // contiguous double buffer; each tap k then contributes a contiguous
  // slice, turning the O(b*n) filter into n vectorizable
  // scaled_accumulate passes instead of b strided dot products.
  block_x_.resize(n - 1 + b);
  block_y_.assign(b, 0.0);
  const double* hist = history_.data();  // newest-first
  for (std::size_t m = 1; m < n; ++m) block_x_[n - 1 - m] = hist[m - 1];
  for (std::size_t i = 0; i < b; ++i) {
    MUTE_CHECK_FINITE(in[i], "FIR input sample");
    block_x_[n - 1 + i] = static_cast<double>(in[i]);
  }

  // out[i] = sum_k h[k] * x[i - k]; with x linearized above the k-th tap
  // reads block_x_[n-1-k .. n-1-k+b). Tap-major keeps the per-output
  // accumulation order identical to the scalar path (k ascending).
  for (std::size_t k = 0; k < n; ++k) {
    kernels::scaled_accumulate(block_y_.data(), block_x_.data() + (n - 1 - k),
                               coeffs_[k], b);
  }

  // Refill the streaming history with the tail of the block so a scalar
  // process() call after this block sees exactly the samples it would have
  // seen had the block been fed one sample at a time.
  for (std::size_t i = (b >= n ? b - n : 0); i < b; ++i) {
    history_.push(block_x_[n - 1 + i]);
  }
  for (std::size_t i = 0; i < b; ++i) {
    out[i] = static_cast<Sample>(block_y_[i]);
  }
}

Signal FirFilter::filter(std::span<const Sample> in) {
  Signal out(in.size());
  process(in, out);
  return out;
}

void FirFilter::reset() { history_.fill(0.0); }

}  // namespace mute::dsp
