#include "dsp/fir_design.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"

namespace mute::dsp {

namespace {

void apply_window(std::vector<double>& h, WindowType window) {
  const auto w = make_window(window, h.size());
  for (std::size_t i = 0; i < h.size(); ++i) h[i] *= w[i];
}

void validate(double cutoff_hz, double sample_rate, std::size_t taps) {
  ensure(sample_rate > 0, "sample_rate must be positive");
  ensure(cutoff_hz > 0 && cutoff_hz < sample_rate / 2,
         "cutoff must lie in (0, fs/2)");
  ensure(taps >= 3 && taps % 2 == 1, "taps must be odd and >= 3");
}

}  // namespace

std::vector<double> design_lowpass(double cutoff_hz, double sample_rate,
                                   std::size_t taps, WindowType window) {
  validate(cutoff_hz, sample_rate, taps);
  const double fc = cutoff_hz / sample_rate;  // normalized (cycles/sample)
  const auto mid = static_cast<double>(taps - 1) / 2.0;
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t);
  }
  apply_window(h, window);
  // Normalize DC gain to exactly 1.
  double dc = 0.0;
  for (double v : h) dc += v;
  for (double& v : h) v /= dc;
  return h;
}

std::vector<double> design_highpass(double cutoff_hz, double sample_rate,
                                    std::size_t taps, WindowType window) {
  auto h = design_lowpass(cutoff_hz, sample_rate, taps, window);
  // Spectral inversion: delta at center minus lowpass.
  for (double& v : h) v = -v;
  h[(taps - 1) / 2] += 1.0;
  return h;
}

std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate, std::size_t taps,
                                    WindowType window) {
  ensure(low_hz < high_hz, "bandpass requires low < high");
  auto lp_high = design_lowpass(high_hz, sample_rate, taps, window);
  auto lp_low = design_lowpass(low_hz, sample_rate, taps, window);
  for (std::size_t i = 0; i < taps; ++i) lp_high[i] -= lp_low[i];
  return lp_high;
}

std::vector<double> design_from_magnitude(std::span<const double> freq_hz,
                                          std::span<const double> magnitude,
                                          double sample_rate,
                                          std::size_t taps) {
  ensure(freq_hz.size() == magnitude.size() && freq_hz.size() >= 2,
         "need >= 2 matching frequency/magnitude points");
  ensure(taps >= 3 && taps % 2 == 1, "taps must be odd and >= 3");
  for (std::size_t i = 1; i < freq_hz.size(); ++i) {
    ensure(freq_hz[i] > freq_hz[i - 1], "frequencies must be increasing");
  }

  // Sample the desired magnitude on a dense uniform grid [0, fs/2].
  const std::size_t nfft = next_pow2(std::max<std::size_t>(8 * taps, 256));
  const std::size_t half = nfft / 2;
  std::vector<double> grid(half + 1);
  for (std::size_t k = 0; k <= half; ++k) {
    const double f = bin_frequency(k, nfft, sample_rate);
    // Piecewise-linear interpolation, clamped at the ends.
    if (f <= freq_hz.front()) {
      grid[k] = magnitude.front();
    } else if (f >= freq_hz.back()) {
      grid[k] = magnitude.back();
    } else {
      auto it = std::upper_bound(freq_hz.begin(), freq_hz.end(), f);
      const std::size_t j = static_cast<std::size_t>(it - freq_hz.begin());
      const double t = (f - freq_hz[j - 1]) / (freq_hz[j] - freq_hz[j - 1]);
      grid[k] = magnitude[j - 1] + t * (magnitude[j] - magnitude[j - 1]);
    }
  }

  // Build a linear-phase spectrum (group delay = (taps-1)/2) and invert.
  const double mid = static_cast<double>(taps - 1) / 2.0;
  ComplexSignal spectrum(nfft);
  for (std::size_t k = 0; k <= half; ++k) {
    const double phase = -kTwoPi * static_cast<double>(k) * mid /
                         static_cast<double>(nfft);
    spectrum[k] = std::polar(grid[k], phase);
    if (k != 0 && k != half) spectrum[nfft - k] = std::conj(spectrum[k]);
  }
  ComplexSignal time(spectrum);
  ifft_inplace(time);

  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) h[i] = time[i].real();
  // Window to suppress truncation ripple.
  apply_window(h, WindowType::kHamming);
  return h;
}

std::vector<double> design_fractional_delay(double delay_samples,
                                            std::size_t taps,
                                            WindowType window) {
  ensure(taps >= 3, "need >= 3 taps");
  ensure(delay_samples >= 0.0 &&
             delay_samples <= static_cast<double>(taps - 1),
         "delay must lie within [0, taps-1]");
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    h[i] = sinc(static_cast<double>(i) - delay_samples);
  }
  // Window centered on the delay, not the filter midpoint, so short delays
  // keep their main lobe intact.
  const auto w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  const double shift = delay_samples - mid;
  for (std::size_t i = 0; i < taps; ++i) {
    const double pos = static_cast<double>(i) - shift;
    double wv = 0.0;
    if (pos >= 0.0 && pos <= static_cast<double>(taps - 1)) {
      // Linear interpolation of the window at the shifted position.
      const auto i0 = static_cast<std::size_t>(pos);
      const std::size_t i1 = std::min(i0 + 1, taps - 1);
      const double frac = pos - static_cast<double>(i0);
      wv = w[i0] + frac * (w[i1] - w[i0]);
    }
    h[i] *= wv;
  }
  // Normalize DC gain to 1 (pure delay should not change level).
  double dc = 0.0;
  for (double v : h) dc += v;
  ensure(std::abs(dc) > 1e-9, "degenerate fractional-delay design");
  for (double& v : h) v /= dc;
  return h;
}

Complex fir_response(std::span<const double> h, double freq_hz,
                     double sample_rate) {
  ensure(sample_rate > 0, "sample_rate must be positive");
  const double omega = kTwoPi * freq_hz / sample_rate;
  Complex acc(0.0, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) {
    acc += h[i] * std::polar(1.0, -omega * static_cast<double>(i));
  }
  return acc;
}

}  // namespace mute::dsp
