#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace mute::dsp {

/// Windowed-sinc lowpass FIR design.
/// `cutoff_hz` is the -6 dB edge; `taps` must be odd for a symmetric
/// (linear-phase) type-I filter.
std::vector<double> design_lowpass(double cutoff_hz, double sample_rate,
                                   std::size_t taps,
                                   WindowType window = WindowType::kHamming);

/// Windowed-sinc highpass FIR (spectral inversion of the lowpass).
std::vector<double> design_highpass(double cutoff_hz, double sample_rate,
                                    std::size_t taps,
                                    WindowType window = WindowType::kHamming);

/// Windowed-sinc bandpass FIR between `low_hz` and `high_hz`.
std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate, std::size_t taps,
                                    WindowType window = WindowType::kHamming);

/// Frequency-sampling design: build a linear-phase FIR whose magnitude
/// response approximates `magnitude[i]` at frequency `freq_hz[i]`.
/// Magnitudes are linear (not dB) and interpolated onto a uniform grid.
std::vector<double> design_from_magnitude(std::span<const double> freq_hz,
                                          std::span<const double> magnitude,
                                          double sample_rate,
                                          std::size_t taps);

/// Fractional-delay FIR: windowed-sinc interpolator realizing a total delay
/// of exactly `delay_samples` (may be non-integer). Requires
/// 0 <= delay_samples <= taps - 1; accuracy is best when the delay sits
/// near the center of the filter, i.e. taps >= 2*delay_samples for short
/// delays or delay_samples >= (taps-1)/2 surrounded by enough room.
std::vector<double> design_fractional_delay(double delay_samples,
                                            std::size_t taps,
                                            WindowType window = WindowType::kBlackman);

/// Complex frequency response of an FIR filter at `freq_hz`.
Complex fir_response(std::span<const double> h, double freq_hz,
                     double sample_rate);

}  // namespace mute::dsp
