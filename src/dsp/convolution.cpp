#include "dsp/convolution.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"

namespace mute::dsp {

Signal convolve(std::span<const Sample> a, std::span<const double> b) {
  ensure(!a.empty() && !b.empty(), "convolution inputs must be non-empty");
  Signal out(a.size() + b.size() - 1, 0.0f);
  std::vector<double> acc(out.size(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double av = static_cast<double>(a[i]);
    for (std::size_t j = 0; j < b.size(); ++j) {
      acc[i + j] += av * b[j];
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<Sample>(acc[i]);
  }
  return out;
}

Signal fft_convolve(std::span<const Sample> a, std::span<const double> b) {
  ensure(!a.empty() && !b.empty(), "convolution inputs must be non-empty");
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  ComplexSignal fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = static_cast<double>(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  fft_inplace(fa);
  fft_inplace(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft_inplace(fa);
  Signal out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    out[i] = static_cast<Sample>(fa[i].real());
  }
  return out;
}

Signal convolve_same(std::span<const Sample> a, std::span<const double> b) {
  // Use FFT when the work is large enough to pay for it.
  const bool use_fft = a.size() * b.size() > 1u << 18;
  Signal full = use_fft ? fft_convolve(a, b) : convolve(a, b);
  full.resize(a.size());
  return full;
}

OverlapSaveConvolver::OverlapSaveConvolver(
    std::vector<double> impulse_response, std::size_t block_size)
    : taps_(impulse_response.size()),
      block_size_(block_size),
      fft_size_(next_pow2(std::max<std::size_t>(block_size + taps_ - 1, 2))),
      overlap_(taps_ > 0 ? taps_ - 1 : 0, 0.0) {
  ensure(taps_ >= 1, "impulse response must be non-empty");
  ensure(block_size_ >= 1, "block size must be >= 1");
  ComplexSignal h(fft_size_);
  for (std::size_t i = 0; i < taps_; ++i) h[i] = impulse_response[i];
  fft_inplace(h);
  h_spectrum_ = std::move(h);
}

void OverlapSaveConvolver::process_block(std::span<const Sample> in,
                                         std::span<Sample> out) {
  ensure(in.size() == block_size_ && out.size() == block_size_,
         "block must be exactly block_size samples");
  // Assemble [overlap | new block] then zero-pad to fft_size.
  ComplexSignal x(fft_size_);
  const std::size_t ov = overlap_.size();
  for (std::size_t i = 0; i < ov; ++i) x[i] = overlap_[i];
  for (std::size_t i = 0; i < block_size_; ++i) {
    x[ov + i] = static_cast<double>(in[i]);
  }
  fft_inplace(x);
  for (std::size_t i = 0; i < fft_size_; ++i) x[i] *= h_spectrum_[i];
  ifft_inplace(x);
  // Valid samples start at index ov (the first ov outputs are corrupted by
  // circular wraparound in classic overlap-save with zero head padding --
  // here we feed the true history so outputs at [ov, ov+block) are exact).
  for (std::size_t i = 0; i < block_size_; ++i) {
    out[i] = static_cast<Sample>(x[ov + i].real());
  }
  // Save the last taps-1 input samples as history for the next block.
  if (ov > 0) {
    std::vector<double> next(ov);
    for (std::size_t i = 0; i < ov; ++i) {
      const std::ptrdiff_t src =
          static_cast<std::ptrdiff_t>(block_size_) - static_cast<std::ptrdiff_t>(ov) +
          static_cast<std::ptrdiff_t>(i);
      next[i] = (src >= 0) ? static_cast<double>(in[static_cast<std::size_t>(src)])
                           : overlap_[static_cast<std::size_t>(
                                 static_cast<std::ptrdiff_t>(ov) + src)];
    }
    overlap_ = std::move(next);
  }
}

Signal OverlapSaveConvolver::filter(std::span<const Sample> in) {
  Signal out(in.size());
  std::size_t done = 0;
  Signal padded_in(block_size_), padded_out(block_size_);
  while (done < in.size()) {
    const std::size_t chunk = std::min(block_size_, in.size() - done);
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(done),
              in.begin() + static_cast<std::ptrdiff_t>(done + chunk),
              padded_in.begin());
    std::fill(padded_in.begin() + static_cast<std::ptrdiff_t>(chunk),
              padded_in.end(), 0.0f);
    process_block(padded_in, padded_out);
    std::copy(padded_out.begin(),
              padded_out.begin() + static_cast<std::ptrdiff_t>(chunk),
              out.begin() + static_cast<std::ptrdiff_t>(done));
    done += chunk;
  }
  return out;
}

void OverlapSaveConvolver::reset() {
  std::fill(overlap_.begin(), overlap_.end(), 0.0);
}

}  // namespace mute::dsp
