#include "dsp/fft.hpp"

#include <array>
#include <cmath>
#include <mutex>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::dsp {

namespace {

void bit_reverse_permute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

// Forward twiddle table for every stage length up to kMaxTwiddleFft,
// shared by all transforms: tw[len / 2 + k] = exp(-2*pi*i * k / len) for
// k in [0, len/2) (the inverse transform conjugates on the fly). Stage
// slices never overlap — offsets 1, 2, 4, ... partition [1, n). Static
// storage filled once under std::call_once: fft_inplace stays heap-
// allocation-free and safe to call from the RT path; larger (control-
// plane-sized) transforms fall back to the twiddle recurrence.
constexpr std::size_t kMaxTwiddleFft = 8192;
std::array<double, 2 * kMaxTwiddleFft> g_twiddles;
std::once_flag g_twiddles_once;

void build_twiddles() {
  for (std::size_t len = 2; len <= kMaxTwiddleFft; len <<= 1) {
    double* t = g_twiddles.data() + len;  // complex offset len/2
    const double angle = -kTwoPi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      t[2 * k] = std::cos(angle * static_cast<double>(k));
      t[2 * k + 1] = std::sin(angle * static_cast<double>(k));
    }
  }
}

// Manual (re, im) butterflies: std::complex operator* routes through the
// NaN-propagating __muldc3 helper, and the twiddle *recurrence* forms a
// serial dependency chain through every butterfly — together they made
// this the hot-path bottleneck (the block LANC engine is FFT-bound).
void fft_core(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  ensure(is_pow2(n), "FFT length must be a power of two");
  bit_reverse_permute(data);
  auto* d = reinterpret_cast<double*>(data.data());
  const bool use_table = n <= kMaxTwiddleFft;
  if (use_table) std::call_once(g_twiddles_once, build_twiddles);
  const double sign = inverse ? -1.0 : 1.0;  // conjugate table for inverse
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    if (use_table) {
      const double* t = g_twiddles.data() + len;
      for (std::size_t i = 0; i < n; i += len) {
        double* pa = d + 2 * i;
        double* pb = d + 2 * (i + half);
        for (std::size_t k = 0; k < half; ++k) {
          const double wr = t[2 * k];
          const double wi = sign * t[2 * k + 1];
          const double xr = pb[2 * k], xi = pb[2 * k + 1];
          const double vr = xr * wr - xi * wi;
          const double vi = xr * wi + xi * wr;
          const double ur = pa[2 * k], ui = pa[2 * k + 1];
          pa[2 * k] = ur + vr;
          pa[2 * k + 1] = ui + vi;
          pb[2 * k] = ur - vr;
          pb[2 * k + 1] = ui - vi;
        }
      }
    } else {
      const double angle =
          (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
      const double wr0 = std::cos(angle), wi0 = std::sin(angle);
      for (std::size_t i = 0; i < n; i += len) {
        double wr = 1.0, wi = 0.0;
        double* pa = d + 2 * i;
        double* pb = d + 2 * (i + half);
        for (std::size_t k = 0; k < half; ++k) {
          const double xr = pb[2 * k], xi = pb[2 * k + 1];
          const double vr = xr * wr - xi * wi;
          const double vi = xr * wi + xi * wr;
          const double ur = pa[2 * k], ui = pa[2 * k + 1];
          pa[2 * k] = ur + vr;
          pa[2 * k + 1] = ui + vi;
          pb[2 * k] = ur - vr;
          pb[2 * k + 1] = ui - vi;
          const double nwr = wr * wr0 - wi * wi0;
          wi = wr * wi0 + wi * wr0;
          wr = nwr;
        }
      }
    }
  }
}

}  // namespace

void fft_inplace(std::span<Complex> data) { fft_core(data, /*inverse=*/false); }

void ifft_inplace(std::span<Complex> data) {
  fft_core(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& c : data) c *= inv_n;
}

ComplexSignal fft(std::span<const Complex> input, std::size_t n) {
  const std::size_t want = std::max(n, input.size());
  ComplexSignal buf(next_pow2(std::max<std::size_t>(want, 1)));
  std::copy(input.begin(), input.end(), buf.begin());
  fft_inplace(buf);
  return buf;
}

ComplexSignal fft_real(std::span<const Sample> input, std::size_t n) {
  const std::size_t want = std::max(n, input.size());
  ComplexSignal buf(next_pow2(std::max<std::size_t>(want, 1)));
  for (std::size_t i = 0; i < input.size(); ++i) {
    buf[i] = Complex(static_cast<double>(input[i]), 0.0);
  }
  fft_inplace(buf);
  return buf;
}

Signal ifft_real(std::span<const Complex> spectrum) {
  ComplexSignal buf(spectrum.begin(), spectrum.end());
  ifft_inplace(buf);
  Signal out(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    out[i] = static_cast<Sample>(buf[i].real());
  }
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate) {
  ensure(n > 0, "transform length must be positive");
  return static_cast<double>(k) * sample_rate / static_cast<double>(n);
}

}  // namespace mute::dsp
