#include "dsp/fft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::dsp {

namespace {

void bit_reverse_permute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void fft_core(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  ensure(is_pow2(n), "FFT length must be a power of two");
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(std::span<Complex> data) { fft_core(data, /*inverse=*/false); }

void ifft_inplace(std::span<Complex> data) {
  fft_core(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& c : data) c *= inv_n;
}

ComplexSignal fft(std::span<const Complex> input, std::size_t n) {
  const std::size_t want = std::max(n, input.size());
  ComplexSignal buf(next_pow2(std::max<std::size_t>(want, 1)));
  std::copy(input.begin(), input.end(), buf.begin());
  fft_inplace(buf);
  return buf;
}

ComplexSignal fft_real(std::span<const Sample> input, std::size_t n) {
  const std::size_t want = std::max(n, input.size());
  ComplexSignal buf(next_pow2(std::max<std::size_t>(want, 1)));
  for (std::size_t i = 0; i < input.size(); ++i) {
    buf[i] = Complex(static_cast<double>(input[i]), 0.0);
  }
  fft_inplace(buf);
  return buf;
}

Signal ifft_real(std::span<const Complex> spectrum) {
  ComplexSignal buf(spectrum.begin(), spectrum.end());
  ifft_inplace(buf);
  Signal out(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    out[i] = static_cast<Sample>(buf[i].real());
  }
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate) {
  ensure(n > 0, "transform length must be positive");
  return static_cast<double>(k) * sample_rate / static_cast<double>(n);
}

}  // namespace mute::dsp
