#include "dsp/kernels.hpp"

// This translation unit is compiled with elevated optimization flags plus
// -ffp-contract=off (see src/dsp/CMakeLists.txt): the loops below are
// written with EIGHT independent partial accumulators so the
// auto-vectorizer can map them onto full SIMD registers (8 double lanes on
// AVX-512, 2x4 on AVX2, 4x2 on SSE2) without reassociating anything — each
// source-level accumulator chain is preserved exactly, and contraction is
// off, so the result is bit-identical whichever clone the runtime
// dispatches. The lane count also breaks the loop-carried FP-add dependency
// that makes a single-accumulator dot latency-bound.
//
// MUTE_KERNEL_CLONES compiles each kernel three times (baseline x86-64,
// AVX2, AVX-512F) behind a glibc ifunc resolver, so the portable default
// binary still runs the wide path on wide machines. On other
// platforms/compilers it degrades to a single baseline clone.

#if defined(__GNUC__) || defined(__clang__)
#define MUTE_KERNEL_RESTRICT __restrict__
#else
#define MUTE_KERNEL_RESTRICT
#endif

// No clones under ThreadSanitizer: the glibc ifunc resolvers run before
// the tsan runtime initializes and crash at load time. The single default
// clone computes the same bits, so tsan coverage is unaffected.
#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__)
#define MUTE_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define MUTE_KERNEL_CLONES
#endif

namespace mute::dsp::kernels {

MUTE_KERNEL_CLONES
double dot(const double* a_in, const double* b_in, std::size_t n) {
  const double* MUTE_KERNEL_RESTRICT a = a_in;
  const double* MUTE_KERNEL_RESTRICT b = b_in;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
    s4 += a[i + 4] * b[i + 4];
    s5 += a[i + 5] * b[i + 5];
    s6 += a[i + 6] * b[i + 6];
    s7 += a[i + 7] * b[i + 7];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
}

MUTE_KERNEL_CLONES
double energy(const double* x_in, std::size_t n) {
  const double* MUTE_KERNEL_RESTRICT x = x_in;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += x[i] * x[i];
    s1 += x[i + 1] * x[i + 1];
    s2 += x[i + 2] * x[i + 2];
    s3 += x[i + 3] * x[i + 3];
    s4 += x[i + 4] * x[i + 4];
    s5 += x[i + 5] * x[i + 5];
    s6 += x[i + 6] * x[i + 6];
    s7 += x[i + 7] * x[i + 7];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i] * x[i];
  return (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
}

MUTE_KERNEL_CLONES
double axpy_leaky_norm(double* w_in, const double* x_in, double keep, double g,
                       std::size_t n) {
  double* MUTE_KERNEL_RESTRICT w = w_in;
  const double* MUTE_KERNEL_RESTRICT x = x_in;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const double w0 = keep * w[i] + g * x[i];
    const double w1 = keep * w[i + 1] + g * x[i + 1];
    const double w2 = keep * w[i + 2] + g * x[i + 2];
    const double w3 = keep * w[i + 3] + g * x[i + 3];
    const double w4 = keep * w[i + 4] + g * x[i + 4];
    const double w5 = keep * w[i + 5] + g * x[i + 5];
    const double w6 = keep * w[i + 6] + g * x[i + 6];
    const double w7 = keep * w[i + 7] + g * x[i + 7];
    w[i] = w0;
    w[i + 1] = w1;
    w[i + 2] = w2;
    w[i + 3] = w3;
    w[i + 4] = w4;
    w[i + 5] = w5;
    w[i + 6] = w6;
    w[i + 7] = w7;
    s0 += w0 * w0;
    s1 += w1 * w1;
    s2 += w2 * w2;
    s3 += w3 * w3;
    s4 += w4 * w4;
    s5 += w5 * w5;
    s6 += w6 * w6;
    s7 += w7 * w7;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double wi = keep * w[i] + g * x[i];
    w[i] = wi;
    tail += wi * wi;
  }
  return (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
}

MUTE_KERNEL_CLONES
void scaled_accumulate(double* acc_in, const double* x_in, double s,
                       std::size_t n) {
  double* MUTE_KERNEL_RESTRICT acc = acc_in;
  const double* MUTE_KERNEL_RESTRICT x = x_in;
  for (std::size_t i = 0; i < n; ++i) acc[i] += s * x[i];
}

namespace naive {

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double energy(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

double axpy_leaky_norm(double* w, const double* x, double keep, double g,
                       std::size_t n) {
  double norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = keep * w[i] + g * x[i];
    norm2 += w[i] * w[i];
  }
  return norm2;
}

void scaled_accumulate(double* acc, const double* x, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += s * x[i];
}

}  // namespace naive

}  // namespace mute::dsp::kernels
