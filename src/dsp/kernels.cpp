#include "dsp/kernels.hpp"

// This translation unit is compiled with elevated optimization flags plus
// -ffp-contract=off (see src/dsp/CMakeLists.txt): the loops below are
// written with EIGHT independent partial accumulators so the
// auto-vectorizer can map them onto full SIMD registers (8 double lanes on
// AVX-512, 2x4 on AVX2, 4x2 on SSE2) without reassociating anything — each
// source-level accumulator chain is preserved exactly, and contraction is
// off, so the result is bit-identical whichever clone the runtime
// dispatches. The lane count also breaks the loop-carried FP-add dependency
// that makes a single-accumulator dot latency-bound.
//
// MUTE_KERNEL_CLONES compiles each kernel three times (baseline x86-64,
// AVX2, AVX-512F) behind a glibc ifunc resolver, so the portable default
// binary still runs the wide path on wide machines. On other
// platforms/compilers it degrades to a single baseline clone.

#if defined(__GNUC__) || defined(__clang__)
#define MUTE_KERNEL_RESTRICT __restrict__
#else
#define MUTE_KERNEL_RESTRICT
#endif

// No clones under ThreadSanitizer: the glibc ifunc resolvers run before
// the tsan runtime initializes and crash at load time. The single default
// clone computes the same bits, so tsan coverage is unaffected.
#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__)
#define MUTE_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#elif defined(__aarch64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__) && __GNUC__ >= 14
// ARM relay/edge hardware: GCC 14 grew aarch64 function multi-versioning.
// Advanced SIMD (NEON) is the mandatory baseline lane set on aarch64, so
// the "default" clone is already NEON-vectorized by the same eight-lane
// accumulator structure; the extra clones cover SVE-class edge silicon the
// way avx2/avx512f cover wide x86, behind the identical ifunc dispatch.
#define MUTE_KERNEL_CLONES \
  __attribute__((target_clones("default", "sve", "sve2")))
#else
#define MUTE_KERNEL_CLONES
#endif

namespace mute::dsp::kernels {

MUTE_KERNEL_CLONES
double dot(const double* a_in, const double* b_in, std::size_t n) {
  const double* MUTE_KERNEL_RESTRICT a = a_in;
  const double* MUTE_KERNEL_RESTRICT b = b_in;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
    s4 += a[i + 4] * b[i + 4];
    s5 += a[i + 5] * b[i + 5];
    s6 += a[i + 6] * b[i + 6];
    s7 += a[i + 7] * b[i + 7];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
}

MUTE_KERNEL_CLONES
double energy(const double* x_in, std::size_t n) {
  const double* MUTE_KERNEL_RESTRICT x = x_in;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += x[i] * x[i];
    s1 += x[i + 1] * x[i + 1];
    s2 += x[i + 2] * x[i + 2];
    s3 += x[i + 3] * x[i + 3];
    s4 += x[i + 4] * x[i + 4];
    s5 += x[i + 5] * x[i + 5];
    s6 += x[i + 6] * x[i + 6];
    s7 += x[i + 7] * x[i + 7];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i] * x[i];
  return (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
}

MUTE_KERNEL_CLONES
double axpy_leaky_norm(double* w_in, const double* x_in, double keep, double g,
                       std::size_t n) {
  double* MUTE_KERNEL_RESTRICT w = w_in;
  const double* MUTE_KERNEL_RESTRICT x = x_in;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const double w0 = keep * w[i] + g * x[i];
    const double w1 = keep * w[i + 1] + g * x[i + 1];
    const double w2 = keep * w[i + 2] + g * x[i + 2];
    const double w3 = keep * w[i + 3] + g * x[i + 3];
    const double w4 = keep * w[i + 4] + g * x[i + 4];
    const double w5 = keep * w[i + 5] + g * x[i + 5];
    const double w6 = keep * w[i + 6] + g * x[i + 6];
    const double w7 = keep * w[i + 7] + g * x[i + 7];
    w[i] = w0;
    w[i + 1] = w1;
    w[i + 2] = w2;
    w[i + 3] = w3;
    w[i + 4] = w4;
    w[i + 5] = w5;
    w[i + 6] = w6;
    w[i + 7] = w7;
    s0 += w0 * w0;
    s1 += w1 * w1;
    s2 += w2 * w2;
    s3 += w3 * w3;
    s4 += w4 * w4;
    s5 += w5 * w5;
    s6 += w6 * w6;
    s7 += w7 * w7;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double wi = keep * w[i] + g * x[i];
    w[i] = wi;
    tail += wi * wi;
  }
  return (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
}

MUTE_KERNEL_CLONES
void scaled_accumulate(double* acc_in, const double* x_in, double s,
                       std::size_t n) {
  double* MUTE_KERNEL_RESTRICT acc = acc_in;
  const double* MUTE_KERNEL_RESTRICT x = x_in;
  for (std::size_t i = 0; i < n; ++i) acc[i] += s * x[i];
}

// The interleaved-complex family below has no reduction, so no lane
// splitting is needed: each complex element is an independent 4-flop (or
// 6-flop) update the vectorizer can pack directly from the interleaved
// layout. `n` counts complex elements; the pointers address 2n doubles.

MUTE_KERNEL_CLONES
void cmul_accumulate(double* acc_in, const double* a_in, const double* b_in,
                     std::size_t n) {
  double* MUTE_KERNEL_RESTRICT acc = acc_in;
  const double* MUTE_KERNEL_RESTRICT a = a_in;
  const double* MUTE_KERNEL_RESTRICT b = b_in;
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    acc[2 * k] += ar * br - ai * bi;
    acc[2 * k + 1] += ar * bi + ai * br;
  }
}

MUTE_KERNEL_CLONES
void cmul_conj_scaled(double* out_in, const double* a_in, const double* b_in,
                      const double* power_in, double eps, std::size_t n) {
  double* MUTE_KERNEL_RESTRICT out = out_in;
  const double* MUTE_KERNEL_RESTRICT a = a_in;
  const double* MUTE_KERNEL_RESTRICT b = b_in;
  const double* MUTE_KERNEL_RESTRICT power = power_in;
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    const double s = 1.0 / (power[k] + eps);
    out[2 * k] = (ar * br + ai * bi) * s;
    out[2 * k + 1] = (ar * bi - ai * br) * s;
  }
}

MUTE_KERNEL_CLONES
void magsq_accumulate(double* acc_in, const double* z_in, std::size_t n) {
  double* MUTE_KERNEL_RESTRICT acc = acc_in;
  const double* MUTE_KERNEL_RESTRICT z = z_in;
  for (std::size_t k = 0; k < n; ++k) {
    acc[k] += z[2 * k] * z[2 * k] + z[2 * k + 1] * z[2 * k + 1];
  }
}

MUTE_KERNEL_CLONES
void magsq_update(double* acc_in, const double* z_new_in,
                  const double* z_old_in, std::size_t n) {
  double* MUTE_KERNEL_RESTRICT acc = acc_in;
  const double* MUTE_KERNEL_RESTRICT zn = z_new_in;
  const double* MUTE_KERNEL_RESTRICT zo = z_old_in;
  for (std::size_t k = 0; k < n; ++k) {
    acc[k] += zn[2 * k] * zn[2 * k] + zn[2 * k + 1] * zn[2 * k + 1] -
              zo[2 * k] * zo[2 * k] - zo[2 * k + 1] * zo[2 * k + 1];
  }
}

MUTE_KERNEL_CLONES
void window_into_complex(double* out_in, const double* w_in, const float* x_in,
                         std::size_t n) {
  double* MUTE_KERNEL_RESTRICT out = out_in;
  const double* MUTE_KERNEL_RESTRICT w = w_in;
  const float* MUTE_KERNEL_RESTRICT x = x_in;
  for (std::size_t k = 0; k < n; ++k) {
    out[2 * k] = w[k] * static_cast<double>(x[k]);
    out[2 * k + 1] = 0.0;
  }
}

namespace naive {

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double energy(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

double axpy_leaky_norm(double* w, const double* x, double keep, double g,
                       std::size_t n) {
  double norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = keep * w[i] + g * x[i];
    norm2 += w[i] * w[i];
  }
  return norm2;
}

void scaled_accumulate(double* acc, const double* x, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += s * x[i];
}

void cmul_accumulate(double* acc, const double* a, const double* b,
                     std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    acc[2 * k] += ar * br - ai * bi;
    acc[2 * k + 1] += ar * bi + ai * br;
  }
}

void cmul_conj_scaled(double* out, const double* a, const double* b,
                      const double* power, double eps, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    const double s = 1.0 / (power[k] + eps);
    out[2 * k] = (ar * br + ai * bi) * s;
    out[2 * k + 1] = (ar * bi - ai * br) * s;
  }
}

void magsq_accumulate(double* acc, const double* z, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    acc[k] += z[2 * k] * z[2 * k] + z[2 * k + 1] * z[2 * k + 1];
  }
}

void magsq_update(double* acc, const double* z_new, const double* z_old,
                  std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    acc[k] += z_new[2 * k] * z_new[2 * k] +
              z_new[2 * k + 1] * z_new[2 * k + 1] -
              z_old[2 * k] * z_old[2 * k] - z_old[2 * k + 1] * z_old[2 * k + 1];
  }
}

void window_into_complex(double* out, const double* w, const float* x,
                         std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    out[2 * k] = w[k] * static_cast<double>(x[k]);
    out[2 * k + 1] = 0.0;
  }
}

}  // namespace naive

}  // namespace mute::dsp::kernels
