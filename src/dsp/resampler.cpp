#include "dsp/resampler.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fir_design.hpp"

namespace mute::dsp {

Resampler::Resampler(std::size_t interpolation, std::size_t decimation,
                     std::size_t taps_per_phase)
    : l_(interpolation), m_(decimation) {
  ensure(l_ >= 1 && m_ >= 1, "rates must be >= 1");
  ensure(taps_per_phase >= 4, "need >= 4 taps per phase");
  const std::size_t g = std::gcd(l_, m_);
  l_ /= g;
  m_ /= g;
  if (l_ == 1 && m_ == 1) return;  // identity; no filter needed
  // Prototype lowpass at the upsampled rate fs*L, cutoff at
  // min(fs/2, fs*L/(2M)) scaled into the upsampled domain.
  std::size_t taps = taps_per_phase * l_;
  if (taps % 2 == 0) ++taps;
  const double up_rate = static_cast<double>(l_);        // normalized fs = 1
  const double cutoff = 0.5 / static_cast<double>(std::max(l_, m_));
  prototype_ = design_lowpass(cutoff * up_rate, up_rate,
                              taps, WindowType::kKaiser);
  // Upsampling inserts zeros; compensate the L-fold amplitude loss.
  for (double& c : prototype_) c *= static_cast<double>(l_);
}

Signal Resampler::process(std::span<const Sample> in) {
  if (l_ == 1 && m_ == 1) return Signal(in.begin(), in.end());
  // Conceptual pipeline: zero-stuff by L, FIR, take every M-th sample.
  // Implemented polyphase: output j draws from input with phase
  // (j*M) mod L using prototype coefficients of that phase only.
  const std::size_t out_len = (in.size() * l_) / m_;
  Signal out(out_len, 0.0f);
  for (std::size_t j = 0; j < out_len; ++j) {
    const std::size_t up_index = j * m_;          // index in upsampled stream
    const std::size_t phase = up_index % l_;
    const std::size_t base = up_index / l_;       // newest input sample index
    double acc = 0.0;
    // Coefficient k of this phase multiplies input sample (base - k).
    for (std::size_t k = 0;; ++k) {
      const std::size_t coeff_index = phase + k * l_;
      if (coeff_index >= prototype_.size()) break;
      if (k > base) break;
      acc += prototype_[coeff_index] * static_cast<double>(in[base - k]);
    }
    out[j] = static_cast<Sample>(acc);
  }
  return out;
}

double Resampler::latency_input_samples() const {
  if (prototype_.empty()) return 0.0;
  return static_cast<double>(prototype_.size() - 1) / 2.0 /
         static_cast<double>(l_);
}

Signal resample(std::span<const Sample> in, double from_rate, double to_rate) {
  ensure(from_rate > 0 && to_rate > 0, "rates must be positive");
  // Find a small rational approximation of to/from.
  const double ratio = to_rate / from_rate;
  std::size_t best_l = 1, best_m = 1;
  double best_err = std::abs(ratio - 1.0);
  for (std::size_t m = 1; m <= 512; ++m) {
    const double l_real = ratio * static_cast<double>(m);
    const auto l = static_cast<std::size_t>(std::lround(l_real));
    if (l == 0) continue;
    const double err =
        std::abs(ratio - static_cast<double>(l) / static_cast<double>(m));
    if (err < best_err - 1e-15) {
      best_err = err;
      best_l = l;
      best_m = m;
      if (err < 1e-12) break;
    }
  }
  Resampler rs(best_l, best_m);
  return rs.process(in);
}

}  // namespace mute::dsp
