#include "dsp/resampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fir_design.hpp"

namespace mute::dsp {

Resampler::Resampler(std::size_t interpolation, std::size_t decimation,
                     std::size_t taps_per_phase)
    : l_(interpolation), m_(decimation) {
  ensure(l_ >= 1 && m_ >= 1, "rates must be >= 1");
  ensure(taps_per_phase >= 4, "need >= 4 taps per phase");
  const std::size_t g = std::gcd(l_, m_);
  l_ /= g;
  m_ /= g;
  if (l_ == 1 && m_ == 1) return;  // identity; no filter needed
  // Prototype lowpass at the upsampled rate fs*L, cutoff at
  // min(fs/2, fs*L/(2M)) scaled into the upsampled domain.
  std::size_t taps = taps_per_phase * l_;
  if (taps % 2 == 0) ++taps;
  const double up_rate = static_cast<double>(l_);        // normalized fs = 1
  const double cutoff = 0.5 / static_cast<double>(std::max(l_, m_));
  prototype_ = design_lowpass(cutoff * up_rate, up_rate,
                              taps, WindowType::kKaiser);
  // Upsampling inserts zeros; compensate the L-fold amplitude loss.
  for (double& c : prototype_) c *= static_cast<double>(l_);
}

Signal Resampler::process(std::span<const Sample> in) {
  if (l_ == 1 && m_ == 1) return Signal(in.begin(), in.end());
  // Conceptual pipeline: zero-stuff by L, FIR, take every M-th sample.
  // Implemented polyphase: output j draws from input with phase
  // (j*M) mod L using prototype coefficients of that phase only.
  const std::size_t out_len = (in.size() * l_) / m_;
  Signal out(out_len, 0.0f);
  for (std::size_t j = 0; j < out_len; ++j) {
    const std::size_t up_index = j * m_;          // index in upsampled stream
    const std::size_t phase = up_index % l_;
    const std::size_t base = up_index / l_;       // newest input sample index
    double acc = 0.0;
    // Coefficient k of this phase multiplies input sample (base - k).
    for (std::size_t k = 0;; ++k) {
      const std::size_t coeff_index = phase + k * l_;
      if (coeff_index >= prototype_.size()) break;
      if (k > base) break;
      acc += prototype_[coeff_index] * static_cast<double>(in[base - k]);
    }
    out[j] = static_cast<Sample>(acc);
  }
  return out;
}

double Resampler::latency_input_samples() const {
  if (prototype_.empty()) return 0.0;
  return static_cast<double>(prototype_.size() - 1) / 2.0 /
         static_cast<double>(l_);
}

std::pair<std::size_t, std::size_t> rational_resample_ratio(double from_rate,
                                                            double to_rate) {
  ensure(from_rate > 0 && to_rate > 0, "rates must be positive");
  const double ratio = to_rate / from_rate;
  std::size_t best_l = 1, best_m = 1;
  double best_err = std::abs(ratio - 1.0);
  for (std::size_t m = 1; m <= 512; ++m) {
    const double l_real = ratio * static_cast<double>(m);
    const auto l = static_cast<std::size_t>(std::lround(l_real));
    if (l == 0) continue;
    const double err =
        std::abs(ratio - static_cast<double>(l) / static_cast<double>(m));
    if (err < best_err - 1e-15) {
      best_err = err;
      best_l = l;
      best_m = m;
      if (err < 1e-12) break;
    }
  }
  return {best_l, best_m};
}

Signal resample(std::span<const Sample> in, double from_rate, double to_rate) {
  const auto [l, m] = rational_resample_ratio(from_rate, to_rate);
  Resampler rs(l, m);
  return rs.process(in);
}

StreamingResampler::StreamingResampler(std::size_t interpolation,
                                       std::size_t decimation,
                                       std::size_t taps_per_phase)
    : l_(interpolation), m_(decimation) {
  // Reuse the batch constructor's validation and prototype design so the
  // two paths can never drift apart.
  Resampler batch(interpolation, decimation, taps_per_phase);
  l_ = batch.interpolation();
  m_ = batch.decimation();
  if (l_ == 1 && m_ == 1) return;
  // Rebuild the identical prototype (Resampler keeps it private).
  std::size_t taps = taps_per_phase * l_;
  if (taps % 2 == 0) ++taps;
  const double up_rate = static_cast<double>(l_);
  const double cutoff = 0.5 / static_cast<double>(std::max(l_, m_));
  prototype_ = design_lowpass(cutoff * up_rate, up_rate,
                              taps, WindowType::kKaiser);
  for (double& c : prototype_) c *= static_cast<double>(l_);
  // Worst-case reach-back of the first output of a block: the output index
  // floor can land up to M-1 inputs before the block boundary, and each
  // output looks back ceil(prototype/L) further.
  const std::size_t span = m_ + prototype_.size() / l_ + 2;
  tail_.assign(span, 0.0f);
  tail_len_ = 0;
}

StreamingResampler::StreamingResampler(double from_rate, double to_rate)
    : StreamingResampler(rational_resample_ratio(from_rate, to_rate).first,
                         rational_resample_ratio(from_rate, to_rate).second) {}

Signal StreamingResampler::process(std::span<const Sample> in) {
  if (l_ == 1 && m_ == 1) {
    in_count_ += in.size();
    out_count_ += in.size();
    return Signal(in.begin(), in.end());
  }
  const std::uint64_t total_in = in_count_ + in.size();
  const std::uint64_t total_out = (total_in * l_) / m_;
  Signal out(static_cast<std::size_t>(total_out - out_count_), 0.0f);
  // Linearize [carried tail | new block]; work_[0] holds the input with
  // global index base0.
  work_.resize(tail_len_ + in.size());
  std::copy(tail_.begin(),
            tail_.begin() + static_cast<std::ptrdiff_t>(tail_len_),
            work_.begin());
  std::copy(in.begin(), in.end(),
            work_.begin() + static_cast<std::ptrdiff_t>(tail_len_));
  const std::uint64_t base0 = in_count_ - tail_len_;
  for (std::uint64_t j = out_count_; j < total_out; ++j) {
    const std::uint64_t up_index = j * m_;
    const auto phase = static_cast<std::size_t>(up_index % l_);
    const std::uint64_t base = up_index / l_;  // newest global input index
    double acc = 0.0;
    // Identical loop structure (and accumulation order) to the batch path:
    // coefficient k of this phase multiplies global input (base - k).
    for (std::uint64_t k = 0;; ++k) {
      const std::size_t coeff_index =
          phase + static_cast<std::size_t>(k) * l_;
      if (coeff_index >= prototype_.size()) break;
      if (k > base) break;
      acc += prototype_[coeff_index] *
             static_cast<double>(
                 work_[static_cast<std::size_t>(base - k - base0)]);
    }
    out[static_cast<std::size_t>(j - out_count_)] = static_cast<Sample>(acc);
  }
  in_count_ = total_in;
  out_count_ = total_out;
  const std::size_t keep = std::min(work_.size(), tail_.size());
  std::copy(work_.end() - static_cast<std::ptrdiff_t>(keep), work_.end(),
            tail_.begin());
  tail_len_ = keep;
  return out;
}

void StreamingResampler::reset() {
  std::fill(tail_.begin(), tail_.end(), 0.0f);
  tail_len_ = 0;
  in_count_ = 0;
  out_count_ = 0;
  work_.clear();
}

}  // namespace mute::dsp
