#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace mute::dsp {

enum class WindowType { kRectangular, kHann, kHamming, kBlackman, kKaiser };

/// Generate an N-point window. `kaiser_beta` applies to Kaiser only.
std::vector<double> make_window(WindowType type, std::size_t n,
                                double kaiser_beta = 8.6);

/// Zeroth-order modified Bessel function of the first kind (for Kaiser).
double bessel_i0(double x);

/// Sum of window coefficients (for amplitude correction).
double window_sum(const std::vector<double>& w);

/// Sum of squared coefficients (for PSD normalization).
double window_power(const std::vector<double>& w);

}  // namespace mute::dsp
