#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/ring_history.hpp"

namespace mute::dsp {

/// Streaming direct-form FIR filter over a doubled-buffer ring history:
/// O(1) sample admission and a contiguous newest-first window, so the tap
/// loop is a single kernels::dot. Coefficients are double precision;
/// samples are Sample (float) with a double accumulator, per the library
/// convention.
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> coefficients);

  /// Process one sample.
  MUTE_RT_SAFE Sample process(Sample x);

  /// Process a block (in == out sizes). Runs tap-major over the kernel
  /// layer (kernels::scaled_accumulate on contiguous slices) rather than
  /// looping process(); per-sample accumulation order matches the scalar
  /// path's naive order, so results agree to reassociation error (the
  /// equivalence test pins 1e-12). `in` and `out` may be the same span.
  /// May allocate scratch on first use / block growth — call once with the
  /// largest block from a control-plane context if the caller needs the
  /// steady state allocation-free.
  void process(std::span<const Sample> in, std::span<Sample> out);

  /// Convenience: filter a whole signal, same length as input.
  MUTE_RT_UNSAFE Signal filter(std::span<const Sample> in);

  /// Clear internal history (coefficients retained).
  void reset();

  std::size_t tap_count() const { return coeffs_.size(); }
  const std::vector<double>& coefficients() const { return coeffs_; }

 private:
  std::vector<double> coeffs_;
  RingHistory<double> history_;
  std::vector<double> block_x_;  // [n-1 history | block] scratch
  std::vector<double> block_y_;  // double accumulators for one block
};

}  // namespace mute::dsp
