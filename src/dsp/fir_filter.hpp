#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::dsp {

/// Streaming direct-form FIR filter with a circular history buffer.
/// Coefficients are double precision; samples are Sample (float) with a
/// double accumulator, per the library convention.
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> coefficients);

  /// Process one sample.
  Sample process(Sample x);

  /// Process a block (in == out sizes).
  void process(std::span<const Sample> in, std::span<Sample> out);

  /// Convenience: filter a whole signal, same length as input.
  Signal filter(std::span<const Sample> in);

  /// Clear internal history (coefficients retained).
  void reset();

  std::size_t tap_count() const { return coeffs_.size(); }
  const std::vector<double>& coefficients() const { return coeffs_; }

 private:
  std::vector<double> coeffs_;
  std::vector<double> history_;  // circular
  std::size_t pos_ = 0;
};

}  // namespace mute::dsp
