#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::dsp {

/// Full linear convolution, length a.size() + b.size() - 1. Direct O(N*M).
Signal convolve(std::span<const Sample> a, std::span<const double> b);

/// Full linear convolution via FFT (overlap of a single big transform).
/// Identical result to convolve() up to floating-point error; O(N log N).
Signal fft_convolve(std::span<const Sample> a, std::span<const double> b);

/// "Same" convolution: output length == a.size(), filter applied causally
/// (y[n] = sum_k b[k] a[n-k]); the convolution tail is discarded.
Signal convolve_same(std::span<const Sample> a, std::span<const double> b);

/// Streaming overlap-save convolver: processes arbitrary-size blocks
/// against a fixed FIR at FFT speed while preserving exact streaming
/// semantics (same output as a direct streaming FIR filter).
class OverlapSaveConvolver {
 public:
  /// `block_size` is the nominal streaming block; the FFT size is chosen
  /// as next_pow2(block_size + taps - 1).
  OverlapSaveConvolver(std::vector<double> impulse_response,
                       std::size_t block_size);

  /// Process exactly `block_size()` samples.
  void process_block(std::span<const Sample> in, std::span<Sample> out);

  /// Convenience: filter an arbitrary-length signal (internally chunked,
  /// final partial block zero-padded then trimmed). Output length matches
  /// input length (causal "same" semantics).
  Signal filter(std::span<const Sample> in);

  void reset();

  std::size_t block_size() const { return block_size_; }
  std::size_t fft_size() const { return fft_size_; }
  std::size_t tap_count() const { return taps_; }

 private:
  std::size_t taps_;
  std::size_t block_size_;
  std::size_t fft_size_;
  ComplexSignal h_spectrum_;
  std::vector<double> overlap_;  // last taps-1 input samples
};

}  // namespace mute::dsp
