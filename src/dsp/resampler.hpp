#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::dsp {

/// Rational-ratio polyphase resampler (upsample by L, anti-alias filter,
/// downsample by M). Used to move audio between the 16 kHz acoustic domain
/// and the 256 kHz RF baseband domain of the relay simulation.
class Resampler {
 public:
  /// `taps_per_phase` controls the prototype lowpass quality.
  Resampler(std::size_t interpolation, std::size_t decimation,
            std::size_t taps_per_phase = 24);

  /// Resample a whole signal. Output length ~= in.size() * L / M.
  Signal process(std::span<const Sample> in);

  std::size_t interpolation() const { return l_; }
  std::size_t decimation() const { return m_; }

  /// Group delay of the anti-alias prototype, in *input* samples.
  double latency_input_samples() const;

 private:
  std::size_t l_, m_;
  std::vector<double> prototype_;  // lowpass at rate fs*L
};

/// Convenience: resample `in` from `from_rate` to `to_rate` using the
/// smallest rational approximation of the ratio.
Signal resample(std::span<const Sample> in, double from_rate, double to_rate);

}  // namespace mute::dsp
