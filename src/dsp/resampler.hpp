#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace mute::dsp {

/// Rational-ratio polyphase resampler (upsample by L, anti-alias filter,
/// downsample by M). Used to move audio between the 16 kHz acoustic domain
/// and the 256 kHz RF baseband domain of the relay simulation.
class Resampler {
 public:
  /// `taps_per_phase` controls the prototype lowpass quality.
  Resampler(std::size_t interpolation, std::size_t decimation,
            std::size_t taps_per_phase = 24);

  /// Resample a whole signal. Output length ~= in.size() * L / M.
  Signal process(std::span<const Sample> in);

  std::size_t interpolation() const { return l_; }
  std::size_t decimation() const { return m_; }

  /// Group delay of the anti-alias prototype, in *input* samples.
  double latency_input_samples() const;

 private:
  std::size_t l_, m_;
  std::vector<double> prototype_;  // lowpass at rate fs*L
};

/// Convenience: resample `in` from `from_rate` to `to_rate` using the
/// smallest rational approximation of the ratio.
Signal resample(std::span<const Sample> in, double from_rate, double to_rate);

/// Smallest rational L/M approximating `to_rate / from_rate` (the search
/// the free resample() runs; exposed so streaming callers can build a
/// matching StreamingResampler once instead of per block).
std::pair<std::size_t, std::size_t> rational_resample_ratio(double from_rate,
                                                            double to_rate);

/// Block-streaming wrapper around the polyphase resampler. The batch
/// Resampler is stateless-causal — output j depends only on inputs at or
/// before base = j*M/L, reaching back at most the prototype span — so
/// carrying that input tail across calls makes block processing
/// BIT-IDENTICAL to one whole-record batch call, regardless of how the
/// stream is partitioned. That equivalence is what lets the mesh simulator
/// stream RF per control block (and retune channels mid-run) while staying
/// sample-exact with the whole-record pipeline.
class StreamingResampler {
 public:
  StreamingResampler(std::size_t interpolation, std::size_t decimation,
                     std::size_t taps_per_phase = 24);
  /// Rate-pair convenience (same rational approximation as resample()).
  StreamingResampler(double from_rate, double to_rate);

  /// Consume a block; returns every output sample whose input dependencies
  /// are now available. Total output length after consuming T inputs is
  /// (T*L)/M — identical to the batch formula.
  Signal process(std::span<const Sample> in);

  /// Rewind to stream time zero (drops the carried input tail).
  void reset();

  std::size_t interpolation() const { return l_; }
  std::size_t decimation() const { return m_; }

 private:
  std::size_t l_, m_;
  std::vector<double> prototype_;
  // Carried input context: the last `tail_.size()` inputs (M-1 of base
  // reach-back plus the prototype span), oldest-first.
  std::vector<Sample> tail_;
  std::size_t tail_len_ = 0;
  std::vector<Sample> work_;     // [tail | block] linearization scratch
  std::uint64_t in_count_ = 0;   // total inputs consumed
  std::uint64_t out_count_ = 0;  // total outputs produced
};

}  // namespace mute::dsp
