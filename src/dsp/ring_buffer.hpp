#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rt_annotations.hpp"

namespace mute::dsp {

/// Fixed-capacity single-threaded FIFO ring buffer.
/// Used for streaming sample transport between pipeline stages (e.g. the
/// lookahead buffer between the RF receiver and the LANC engine).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity + 1) {
    ensure(capacity >= 1, "ring buffer capacity must be >= 1");
  }

  std::size_t capacity() const { return storage_.size() - 1; }

  std::size_t size() const {
    return (write_ + storage_.size() - read_) % storage_.size();
  }

  bool empty() const { return read_ == write_; }
  bool full() const { return size() == capacity(); }

  /// Push one element; returns false (drops) when full.
  MUTE_RT_SAFE bool push(const T& value) {
    if (full()) return false;
    storage_[write_] = value;
    write_ = (write_ + 1) % storage_.size();
    return true;
  }

  /// Push a block; returns the number actually pushed.
  std::size_t push(std::span<const T> values) {
    std::size_t n = 0;
    for (const T& v : values) {
      if (!push(v)) break;
      ++n;
    }
    return n;
  }

  /// Pop one element; precondition: !empty().
  MUTE_RT_SAFE T pop() {
    ensure(!empty(), "pop from empty ring buffer");
    T v = storage_[read_];
    read_ = (read_ + 1) % storage_.size();
    return v;
  }

  /// Peek at the element `offset` positions from the read head
  /// (0 == oldest). Precondition: offset < size().
  MUTE_RT_SAFE const T& peek(std::size_t offset = 0) const {
    ensure(offset < size(), "peek beyond buffered data");
    return storage_[(read_ + offset) % storage_.size()];
  }

  void clear() { read_ = write_ = 0; }

 private:
  std::vector<T> storage_;
  std::size_t read_ = 0;
  std::size_t write_ = 0;
};

}  // namespace mute::dsp
