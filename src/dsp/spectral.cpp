#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"
#include "dsp/kernels.hpp"

namespace mute::dsp {

namespace {

struct Segmenter {
  std::size_t segment;
  std::size_t hop;
  std::size_t count;  // number of segments
};

Segmenter make_segmenter(std::size_t n, std::size_t segment) {
  ensure(is_pow2(segment), "segment must be a power of two");
  ensure(n >= segment, "signal shorter than one segment");
  const std::size_t hop = segment / 2;
  return {segment, hop, (n - segment) / hop + 1};
}

}  // namespace

double Psd::band_power(double low_hz, double high_hz) const {
  ensure(low_hz <= high_hz, "band must satisfy low <= high");
  // Bands are half-open [low, high) except at the top of the one-sided
  // grid: the Nyquist bin belongs to a band whose upper edge reaches it
  // (SignatureExtractor convention — the last band closes at Nyquist).
  // Plain [low, high) would silently drop the Nyquist bin for a band
  // ending exactly at fs/2, and no later band can ever reclaim it.
  double total = 0.0;
  for (std::size_t i = 0; i < freq_hz.size(); ++i) {
    const bool top_bin = (i + 1 == freq_hz.size());
    if (freq_hz[i] >= low_hz &&
        (freq_hz[i] < high_hz || (top_bin && freq_hz[i] <= high_hz))) {
      total += power[i];
    }
  }
  return total;
}

double Psd::power_at(double freq) const {
  ensure(!freq_hz.empty(), "empty PSD");
  std::size_t best = 0;
  double best_d = std::abs(freq_hz[0] - freq);
  for (std::size_t i = 1; i < freq_hz.size(); ++i) {
    const double d = std::abs(freq_hz[i] - freq);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return power[best];
}

Psd welch_psd(std::span<const Sample> x, double sample_rate,
              std::size_t segment, WindowType window) {
  const auto seg = make_segmenter(x.size(), segment);
  const auto w = make_window(window, segment);
  const double wpow = window_power(w);
  const std::size_t half = segment / 2;

  Psd out;
  out.sample_rate = sample_rate;
  out.freq_hz.resize(half + 1);
  out.power.assign(half + 1, 0.0);
  for (std::size_t k = 0; k <= half; ++k) {
    out.freq_hz[k] = bin_frequency(k, segment, sample_rate);
  }

  ComplexSignal buf(segment);
  for (std::size_t s = 0; s < seg.count; ++s) {
    const std::size_t off = s * seg.hop;
    kernels::window_into_complex(reinterpret_cast<double*>(buf.data()),
                                 w.data(), x.data() + off, segment);
    fft_inplace(buf);
    kernels::magsq_accumulate(out.power.data(),
                              reinterpret_cast<const double*>(buf.data()),
                              half + 1);
  }
  // One-sided doubling of interior bins folded into the final scaling pass
  // (mathematically identical to doubling per segment).
  const double norm =
      1.0 / (static_cast<double>(seg.count) * wpow * sample_rate);
  for (std::size_t k = 0; k <= half; ++k) {
    out.power[k] *= (k == 0 || k == half) ? norm : 2.0 * norm;
  }
  return out;
}

CrossSpectrum cross_spectrum(std::span<const Sample> x,
                             std::span<const Sample> y, double sample_rate,
                             std::size_t segment, WindowType window) {
  ensure(x.size() == y.size(), "signals must have equal length");
  const auto seg = make_segmenter(x.size(), segment);
  const auto w = make_window(window, segment);
  const std::size_t half = segment / 2;

  CrossSpectrum out;
  out.sample_rate = sample_rate;
  out.freq_hz.resize(half + 1);
  out.cross.assign(half + 1, Complex(0.0, 0.0));
  out.sxx.assign(half + 1, 0.0);
  out.syy.assign(half + 1, 0.0);
  for (std::size_t k = 0; k <= half; ++k) {
    out.freq_hz[k] = bin_frequency(k, segment, sample_rate);
  }

  ComplexSignal bx(segment), by(segment);
  for (std::size_t s = 0; s < seg.count; ++s) {
    const std::size_t off = s * seg.hop;
    kernels::window_into_complex(reinterpret_cast<double*>(bx.data()),
                                 w.data(), x.data() + off, segment);
    kernels::window_into_complex(reinterpret_cast<double*>(by.data()),
                                 w.data(), y.data() + off, segment);
    fft_inplace(bx);
    fft_inplace(by);
    for (std::size_t k = 0; k <= half; ++k) {
      out.cross[k] += std::conj(bx[k]) * by[k];
    }
    kernels::magsq_accumulate(out.sxx.data(),
                              reinterpret_cast<const double*>(bx.data()),
                              half + 1);
    kernels::magsq_accumulate(out.syy.data(),
                              reinterpret_cast<const double*>(by.data()),
                              half + 1);
  }
  const double inv = 1.0 / static_cast<double>(seg.count);
  for (std::size_t k = 0; k <= half; ++k) {
    out.cross[k] *= inv;
    out.sxx[k] *= inv;
    out.syy[k] *= inv;
  }
  return out;
}

ComplexSignal transfer_estimate(const CrossSpectrum& cs) {
  ComplexSignal h(cs.cross.size());
  for (std::size_t k = 0; k < h.size(); ++k) {
    h[k] = cs.cross[k] / std::max(cs.sxx[k], 1e-20);
  }
  return h;
}

std::vector<double> coherence(const CrossSpectrum& cs) {
  std::vector<double> c(cs.cross.size());
  for (std::size_t k = 0; k < c.size(); ++k) {
    const double denom = std::max(cs.sxx[k] * cs.syy[k], 1e-30);
    c[k] = std::clamp(std::norm(cs.cross[k]) / denom, 0.0, 1.0);
  }
  return c;
}

std::vector<std::vector<double>> stft_magnitude(std::span<const Sample> x,
                                                std::size_t frame,
                                                std::size_t hop,
                                                WindowType window) {
  ensure(is_pow2(frame), "frame must be a power of two");
  ensure(hop >= 1, "hop must be >= 1");
  std::vector<std::vector<double>> frames;
  if (x.size() < frame) return frames;
  const auto w = make_window(window, frame);
  const std::size_t half = frame / 2;
  ComplexSignal buf(frame);
  for (std::size_t off = 0; off + frame <= x.size(); off += hop) {
    kernels::window_into_complex(reinterpret_cast<double*>(buf.data()),
                                 w.data(), x.data() + off, frame);
    fft_inplace(buf);
    std::vector<double> mag(half + 1);
    for (std::size_t k = 0; k <= half; ++k) mag[k] = std::abs(buf[k]);
    frames.push_back(std::move(mag));
  }
  return frames;
}

std::vector<double> band_energies(
    std::span<const double> magnitude_frame, double sample_rate,
    std::size_t fft_size, std::span<const std::pair<double, double>> bands) {
  std::vector<double> out(bands.size(), 0.0);
  for (std::size_t k = 0; k < magnitude_frame.size(); ++k) {
    const double f = bin_frequency(k, fft_size, sample_rate);
    // Half-open [lo, hi) bands, except the Nyquist bin joins a band whose
    // upper edge reaches it (same top-of-grid closure as Psd::band_power).
    const bool top_bin = (k + 1 == magnitude_frame.size());
    for (std::size_t b = 0; b < bands.size(); ++b) {
      if (f >= bands[b].first &&
          (f < bands[b].second || (top_bin && f <= bands[b].second))) {
        out[b] += magnitude_frame[k] * magnitude_frame[k];
      }
    }
  }
  return out;
}

}  // namespace mute::dsp
