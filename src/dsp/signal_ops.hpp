#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace mute::dsp {

/// Root-mean-square level of a signal (0 for empty input).
double rms(std::span<const Sample> x);

/// RMS level expressed in dBFS-like decibels (20*log10(rms)).
double rms_db(std::span<const Sample> x);

/// Largest absolute sample value.
double peak(std::span<const Sample> x);

/// Scale the signal so its RMS equals `target_rms` (no-op on silence).
void normalize_rms(std::span<Sample> x, double target_rms);

/// Scale the signal so its peak equals `target_peak` (no-op on silence).
void normalize_peak(std::span<Sample> x, double target_peak);

/// out[i] = a[i] + gain*b[i]; b may be shorter (treated as zero-padded).
Signal mix(std::span<const Sample> a, std::span<const Sample> b,
           double gain = 1.0);

/// Element-wise difference a - b (sizes must match).
Signal subtract(std::span<const Sample> a, std::span<const Sample> b);

/// Prepend `n` zeros (an integer bulk delay applied offline).
Signal delay_signal(std::span<const Sample> x, std::size_t n);

/// Mean of the signal.
double mean(std::span<const Sample> x);

/// Remove the DC component in place.
void remove_dc(std::span<Sample> x);

/// Apply a linear fade-in/out of `ramp` samples at both ends (click guard).
void apply_fade(std::span<Sample> x, std::size_t ramp);

}  // namespace mute::dsp
