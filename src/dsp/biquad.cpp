#include "dsp/biquad.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::dsp {

namespace {

struct RbjParams {
  double w0, cw, sw, alpha;
};

RbjParams rbj(double freq_hz, double q, double sample_rate) {
  ensure(sample_rate > 0, "sample_rate must be positive");
  ensure(freq_hz > 0 && freq_hz < sample_rate / 2, "freq must be in (0, fs/2)");
  ensure(q > 0, "Q must be positive");
  const double w0 = kTwoPi * freq_hz / sample_rate;
  return {w0, std::cos(w0), std::sin(w0), std::sin(w0) / (2.0 * q)};
}

}  // namespace

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::lowpass(double freq_hz, double q, double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double a0 = 1.0 + p.alpha;
  return {(1.0 - p.cw) / 2.0 / a0, (1.0 - p.cw) / a0, (1.0 - p.cw) / 2.0 / a0,
          -2.0 * p.cw / a0, (1.0 - p.alpha) / a0};
}

Biquad Biquad::highpass(double freq_hz, double q, double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double a0 = 1.0 + p.alpha;
  return {(1.0 + p.cw) / 2.0 / a0, -(1.0 + p.cw) / a0, (1.0 + p.cw) / 2.0 / a0,
          -2.0 * p.cw / a0, (1.0 - p.alpha) / a0};
}

Biquad Biquad::bandpass(double freq_hz, double q, double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double a0 = 1.0 + p.alpha;
  return {p.alpha / a0, 0.0, -p.alpha / a0, -2.0 * p.cw / a0,
          (1.0 - p.alpha) / a0};
}

Biquad Biquad::notch(double freq_hz, double q, double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double a0 = 1.0 + p.alpha;
  return {1.0 / a0, -2.0 * p.cw / a0, 1.0 / a0, -2.0 * p.cw / a0,
          (1.0 - p.alpha) / a0};
}

Biquad Biquad::peaking(double freq_hz, double q, double gain_db,
                       double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double big_a = std::pow(10.0, gain_db / 40.0);
  const double a0 = 1.0 + p.alpha / big_a;
  return {(1.0 + p.alpha * big_a) / a0, -2.0 * p.cw / a0,
          (1.0 - p.alpha * big_a) / a0, -2.0 * p.cw / a0,
          (1.0 - p.alpha / big_a) / a0};
}

Biquad Biquad::low_shelf(double freq_hz, double q, double gain_db,
                         double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double big_a = std::pow(10.0, gain_db / 40.0);
  const double sq = 2.0 * std::sqrt(big_a) * p.alpha;
  const double ap1 = big_a + 1.0, am1 = big_a - 1.0;
  const double a0 = ap1 + am1 * p.cw + sq;
  return {big_a * (ap1 - am1 * p.cw + sq) / a0,
          2.0 * big_a * (am1 - ap1 * p.cw) / a0,
          big_a * (ap1 - am1 * p.cw - sq) / a0,
          -2.0 * (am1 + ap1 * p.cw) / a0,
          (ap1 + am1 * p.cw - sq) / a0};
}

Biquad Biquad::high_shelf(double freq_hz, double q, double gain_db,
                          double sample_rate) {
  const auto p = rbj(freq_hz, q, sample_rate);
  const double big_a = std::pow(10.0, gain_db / 40.0);
  const double sq = 2.0 * std::sqrt(big_a) * p.alpha;
  const double ap1 = big_a + 1.0, am1 = big_a - 1.0;
  const double a0 = ap1 - am1 * p.cw + sq;
  return {big_a * (ap1 + am1 * p.cw + sq) / a0,
          -2.0 * big_a * (am1 + ap1 * p.cw) / a0,
          big_a * (ap1 + am1 * p.cw - sq) / a0,
          2.0 * (am1 - ap1 * p.cw) / a0,
          (ap1 - am1 * p.cw - sq) / a0};
}

Sample Biquad::process(Sample x) {
  MUTE_CHECK_FINITE(x, "biquad input sample");
  MUTE_RT_SCOPE("Biquad::process");
  const double xd = static_cast<double>(x);
  const double y = b0_ * xd + z1_;
  z1_ = b1_ * xd - a1_ * y + z2_;
  z2_ = b2_ * xd - a2_ * y;
  return static_cast<Sample>(y);
}

void Biquad::process(std::span<const Sample> in, std::span<Sample> out) {
  ensure(in.size() == out.size(), "in/out block sizes must match");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void Biquad::reset() { z1_ = z2_ = 0.0; }

Complex Biquad::response(double freq_hz, double sample_rate) const {
  const double w = kTwoPi * freq_hz / sample_rate;
  const Complex z1 = std::polar(1.0, -w);
  const Complex z2 = z1 * z1;
  return (b0_ + b1_ * z1 + b2_ * z2) / (1.0 + a1_ * z1 + a2_ * z2);
}

BiquadCascade::BiquadCascade(std::vector<Biquad> sections)
    : sections_(std::move(sections)) {}

void BiquadCascade::push_section(Biquad section) {
  sections_.push_back(section);
}

Sample BiquadCascade::process(Sample x) {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

void BiquadCascade::process(std::span<const Sample> in, std::span<Sample> out) {
  ensure(in.size() == out.size(), "in/out block sizes must match");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

Signal BiquadCascade::filter(std::span<const Sample> in) {
  Signal out(in.size());
  process(in, out);
  return out;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

Complex BiquadCascade::response(double freq_hz, double sample_rate) const {
  Complex r(1.0, 0.0);
  for (const auto& s : sections_) r *= s.response(freq_hz, sample_rate);
  return r;
}

}  // namespace mute::dsp
