#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"

namespace mute::dsp {

/// Second-order IIR section, transposed direct form II.
/// Normalized so a0 == 1: y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2.
class Biquad {
 public:
  Biquad(double b0, double b1, double b2, double a1, double a2);

  /// RBJ audio-EQ-cookbook designs.
  static Biquad lowpass(double freq_hz, double q, double sample_rate);
  static Biquad highpass(double freq_hz, double q, double sample_rate);
  static Biquad bandpass(double freq_hz, double q, double sample_rate);
  static Biquad notch(double freq_hz, double q, double sample_rate);
  static Biquad peaking(double freq_hz, double q, double gain_db,
                        double sample_rate);
  static Biquad low_shelf(double freq_hz, double q, double gain_db,
                          double sample_rate);
  static Biquad high_shelf(double freq_hz, double q, double gain_db,
                           double sample_rate);

  MUTE_RT_SAFE Sample process(Sample x);
  void process(std::span<const Sample> in, std::span<Sample> out);
  void reset();

  /// Complex response at `freq_hz`.
  Complex response(double freq_hz, double sample_rate) const;

  std::array<double, 5> coefficients() const { return {b0_, b1_, b2_, a1_, a2_}; }

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

/// A cascade of biquad sections applied in series.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections);

  MUTE_RT_UNSAFE void push_section(Biquad section);

  MUTE_RT_SAFE Sample process(Sample x);
  void process(std::span<const Sample> in, std::span<Sample> out);
  MUTE_RT_UNSAFE Signal filter(std::span<const Sample> in);
  void reset();

  Complex response(double freq_hz, double sample_rate) const;
  std::size_t section_count() const { return sections_.size(); }

 private:
  std::vector<Biquad> sections_;
};

}  // namespace mute::dsp
