#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace mute::dsp {

/// One-sided power spectral density estimate.
struct Psd {
  std::vector<double> freq_hz;   // bin centers, 0 .. fs/2
  std::vector<double> power;     // linear power per bin (V^2/Hz scale-free)
  double sample_rate = 0.0;

  /// Total power within [low_hz, high_hz): half-open, except the Nyquist
  /// bin is included when high_hz >= fs/2 (so a band ending exactly at
  /// Nyquist counts it — the SignatureExtractor last-band convention).
  double band_power(double low_hz, double high_hz) const;

  /// Power of the bin nearest to `freq` (for tonal checks).
  double power_at(double freq) const;
};

/// Welch-averaged periodogram. `segment` must be a power of two;
/// 50% overlap, Hann window by default.
Psd welch_psd(std::span<const Sample> x, double sample_rate,
              std::size_t segment = 1024,
              WindowType window = WindowType::kHann);

/// Averaged cross-spectral density between x and y (same segmentation as
/// welch_psd). Returned as complex values on the one-sided grid.
struct CrossSpectrum {
  std::vector<double> freq_hz;
  ComplexSignal cross;       // S_xy
  std::vector<double> sxx;   // auto-spectrum of x
  std::vector<double> syy;   // auto-spectrum of y
  double sample_rate = 0.0;
};

CrossSpectrum cross_spectrum(std::span<const Sample> x,
                             std::span<const Sample> y, double sample_rate,
                             std::size_t segment = 1024,
                             WindowType window = WindowType::kHann);

/// H1 transfer-function estimate S_xy / S_xx per bin.
ComplexSignal transfer_estimate(const CrossSpectrum& cs);

/// Magnitude-squared coherence per bin, in [0, 1].
std::vector<double> coherence(const CrossSpectrum& cs);

/// Short-time Fourier transform frames (for profiling / spectrograms).
/// Returns per-frame one-sided magnitude spectra.
std::vector<std::vector<double>> stft_magnitude(
    std::span<const Sample> x, std::size_t frame, std::size_t hop,
    WindowType window = WindowType::kHann);

/// Energy in `bands` (pairs of [lo, hi) Hz — half-open, except the
/// Nyquist bin joins a band whose upper edge reaches fs/2) of a single
/// magnitude frame produced by stft_magnitude with the given frame size
/// and sample rate.
std::vector<double> band_energies(std::span<const double> magnitude_frame,
                                  double sample_rate, std::size_t fft_size,
                                  std::span<const std::pair<double, double>> bands);

}  // namespace mute::dsp
