#include "dsp/signal_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::dsp {

double rms(std::span<const Sample> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (Sample v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc / static_cast<double>(x.size()));
}

double rms_db(std::span<const Sample> x) { return amplitude_to_db(rms(x)); }

double peak(std::span<const Sample> x) {
  double p = 0.0;
  for (Sample v : x) p = std::max(p, std::abs(static_cast<double>(v)));
  return p;
}

void normalize_rms(std::span<Sample> x, double target_rms) {
  ensure(target_rms >= 0, "target RMS must be non-negative");
  const double current = rms(x);
  if (current < 1e-12) return;
  const double g = target_rms / current;
  for (Sample& v : x) v = static_cast<Sample>(static_cast<double>(v) * g);
}

void normalize_peak(std::span<Sample> x, double target_peak) {
  ensure(target_peak >= 0, "target peak must be non-negative");
  const double current = peak(x);
  if (current < 1e-12) return;
  const double g = target_peak / current;
  for (Sample& v : x) v = static_cast<Sample>(static_cast<double>(v) * g);
}

Signal mix(std::span<const Sample> a, std::span<const Sample> b, double gain) {
  Signal out(std::max(a.size(), b.size()), 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) {
    out[i] = static_cast<Sample>(static_cast<double>(out[i]) +
                                 gain * static_cast<double>(b[i]));
  }
  return out;
}

Signal subtract(std::span<const Sample> a, std::span<const Sample> b) {
  ensure(a.size() == b.size(), "subtract requires equal lengths");
  Signal out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<Sample>(static_cast<double>(a[i]) -
                                 static_cast<double>(b[i]));
  }
  return out;
}

Signal delay_signal(std::span<const Sample> x, std::size_t n) {
  Signal out(x.size() + n, 0.0f);
  std::copy(x.begin(), x.end(), out.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

double mean(std::span<const Sample> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (Sample v : x) acc += static_cast<double>(v);
  return acc / static_cast<double>(x.size());
}

void remove_dc(std::span<Sample> x) {
  const double m = mean(x);
  for (Sample& v : x) v = static_cast<Sample>(static_cast<double>(v) - m);
}

void apply_fade(std::span<Sample> x, std::size_t ramp) {
  const std::size_t r = std::min(ramp, x.size() / 2);
  for (std::size_t i = 0; i < r; ++i) {
    const double g = static_cast<double>(i) / static_cast<double>(r);
    x[i] = static_cast<Sample>(static_cast<double>(x[i]) * g);
    x[x.size() - 1 - i] =
        static_cast<Sample>(static_cast<double>(x[x.size() - 1 - i]) * g);
  }
}

}  // namespace mute::dsp
