#include "sim/variants.hpp"

#include "common/error.hpp"

namespace mute::sim {

SystemConfig make_tabletop_config(const acoustics::Scene& scene,
                                  std::uint64_t seed,
                                  double rf_round_trip_ms) {
  ensure(rf_round_trip_ms >= 0, "round trip must be non-negative");
  SystemConfig cfg = make_scheme_config(Scheme::kMuteHollow, scene, seed);
  // Reference is wired into the tabletop DSP: no uplink on x.
  cfg.use_rf_link = false;
  // Anti-noise downlink: half the round trip lands in the playout budget.
  cfg.latency.dsp_us += rf_round_trip_ms * 1000.0 / 2.0;
  // Error feedback uplink: the other half delays adaptation.
  cfg.error_feedback_delay_samples = static_cast<std::size_t>(
      rf_round_trip_ms * 1e-3 / 2.0 * cfg.scene.sample_rate);
  // Delayed-update stability margin: the feedback delay sits inside the
  // calibrated plant, but it still lengthens the loop.
  cfg.mu = 0.05;
  return cfg;
}

SystemConfig make_smart_noise_config(const acoustics::Scene& scene,
                                     std::uint64_t seed) {
  SystemConfig cfg = make_scheme_config(Scheme::kMuteHollow, scene, seed);
  // Relay mounted on the noise source itself: 10 cm from the source.
  cfg.scene.relay_mic = cfg.scene.noise_source;
  cfg.scene.relay_mic.x += 0.1;
  // With the reference captured dry at the source, the controller must
  // model the FULL noise->ear room response (not the shorter h_ne/h_nr
  // ratio a mid-room relay needs), so it earns its maximal lookahead only
  // with a longer filter.
  cfg.causal_taps = 1024;
  return cfg;
}

EdgeServiceResult run_edge_service(audio::SoundSource& noise,
                                   const acoustics::Scene& base_scene,
                                   const std::vector<EdgeUser>& users,
                                   std::uint64_t seed,
                                   double server_extra_latency_ms,
                                   double duration_s) {
  ensure(!users.empty(), "edge service needs at least one user");
  EdgeServiceResult out;
  out.per_user.reserve(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    SystemConfig cfg =
        make_scheme_config(Scheme::kMuteHollow, base_scene, seed + 97 * u);
    cfg.duration_s = duration_s;
    cfg.scene.error_mic = users[u].ear;
    cfg.scene.anti_speaker = users[u].speaker;
    // Server-side DSP: backhaul + scheduling latency on the anti-noise
    // path, and delayed error feedback from each user's device.
    cfg.latency.dsp_us += server_extra_latency_ms * 1000.0;
    cfg.error_feedback_delay_samples = static_cast<std::size_t>(
        server_extra_latency_ms * 1e-3 * cfg.scene.sample_rate);
    cfg.mu = 0.05;
    out.per_user.push_back(run_anc_simulation(noise, cfg));
  }
  return out;
}

}  // namespace mute::sim
