#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "audio/source.hpp"
#include "sim/system.hpp"

namespace mute::sim {

/// The four comparison schemes of the paper's evaluation (Section 5.1).
enum class Scheme {
  kMuteHollow,    // open-ear MUTE: wireless reference, no passive shell
  kBoseActive,    // headphone ANC alone: on-ear ref mic, no shell
  kBoseOverall,   // headphone ANC + passive shell
  kMutePassive,   // MUTE's LANC + the passive shell (MUTE+Passive)
};

const char* scheme_name(Scheme scheme);

/// Build the SystemConfig for a scheme in a given scene. The Bose variants
/// move the reference microphone onto the headphone (1.5 cm outward from
/// the error mic toward the noise), use premium transducers, a headphone
/// latency budget, and no wireless link.
SystemConfig make_scheme_config(Scheme scheme,
                                const acoustics::Scene& scene,
                                std::uint64_t seed);

/// The noise workloads of Figures 12/14/15.
enum class NoiseKind {
  kWhite,          // wide-band white noise (Fig. 12)
  kMaleVoice,      // Fig. 14
  kFemaleVoice,    // Fig. 14
  kConstruction,   // Fig. 14
  kMusic,          // Fig. 14 / 15
  kMachineHum,     // the "persistent machine noise" convergence case
};

const char* noise_name(NoiseKind kind);

/// Instantiate a workload generator.
audio::SourcePtr make_noise(NoiseKind kind, double sample_rate,
                            std::uint64_t seed);

/// Canned RF-fault scenarios for robustness experiments (bench/tests).
enum class FaultScenario {
  kNone,
  kRelayDropout,   // relay power loss: carrier off for the whole window
  kJammerBurst,    // strong co-channel tone inside the window
  kDeepFade,       // 48 dB flat fade (below FM threshold), smooth edges
  kImpulseNoise,   // impulsive wideband interference
  kClockDrift,     // 80 ppm relay clock error across the window
};

const char* fault_scenario_name(FaultScenario scenario);

/// Build the scripted fault schedule for `scenario` over
/// [start_s, start_s + duration_s). kNone yields an empty schedule. The
/// single source of the canned fault parameters — used by
/// apply_fault_scenario for the single-link sim and by DeviceSimConfig
/// callers (bench/failover, integration tests) to fault one relay of a
/// multi-relay deployment.
/// `jammer_channel` only affects kJammerBurst: >= 0 pins the interferer to
/// that ISM channel (so spectrum-planner hops can dodge it); the -1
/// default keeps the legacy co-channel follow-the-victim jammer.
rf::FaultSchedule make_fault_schedule(FaultScenario scenario, double start_s,
                                      double duration_s,
                                      int jammer_channel = -1);

/// Install `scenario` into `cfg`: forces the RF link on, scripts the fault
/// over [start_s, start_s + duration_s), and arms the degradation stack
/// (link supervision + FxLMS weight-norm guard). kNone leaves `cfg`
/// untouched.
void apply_fault_scenario(SystemConfig& cfg, FaultScenario scenario,
                          double start_s = 4.5, double duration_s = 0.5);

}  // namespace mute::sim
