#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/function_ref.hpp"

namespace mute::sim {

/// The one scheduler implementation (DESIGN.md §14): a fixed pool of
/// parked worker threads with an atomic-counter work-stealing dispatch.
/// `parallel_for_index` spins up a transient pool per sweep (preserving
/// its historical semantics); the fleet runtime keeps one alive for its
/// whole life and dispatches a job per audio block.
///
/// Dispatch contract (same as parallel_for_index always had):
///   - run(count, body) invokes body(0)..body(count-1) exactly once each;
///     the calling thread participates, so a 1-worker pool runs inline
///     with no cross-thread traffic at all.
///   - Indices are claimed from a shared atomic counter: work stealing,
///     because item runtimes vary wildly (scenario sweeps) or moderately
///     (fleet tenant batches) and static chunking would idle fast workers.
///   - The first exception thrown by any body is captured and re-thrown on
///     the calling thread after the job drains; remaining un-started
///     indices are abandoned at the next claim.
///   - No allocation on the dispatch path: the body is a FunctionRef (two
///     words, copied by value into the job slot) and all job state lives
///     in the pool.
///
/// Synchronization: job hand-off and completion go through one mutex +
/// two condition variables; every body(i) therefore happens-after run()'s
/// publication of the job and happens-before run()'s return (the
/// happens-before edge the fleet's per-block tenant hand-off relies on,
/// and the tsan preset verifies).
class WorkerPool {
 public:
  /// A pool of `workers` total lanes: `workers - 1` parked threads plus
  /// the caller of run(). workers == 0 means default_sweep_workers().
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t worker_count() const { return workers_; }

  /// Run body(0) .. body(count-1) across the pool; blocks until every
  /// started index completed. Not reentrant (one job at a time).
  void run(std::size_t count, FunctionRef<void(std::size_t)> body);

 private:
  void worker_loop();
  void drain(const FunctionRef<void(std::size_t)>& body);

  std::size_t workers_;
  std::vector<std::thread> threads_;

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;      // bumped per job; workers latch it
  std::size_t busy_ = 0;         // helper threads still in the current job
  bool stop_ = false;
  std::optional<FunctionRef<void(std::size_t)>> body_;
  std::size_t count_ = 0;

  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_m_;
  std::exception_ptr first_error_;
};

}  // namespace mute::sim
