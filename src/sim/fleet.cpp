#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace mute::sim {

namespace {

FleetConfig validate(FleetConfig config) {
  ensure(config.max_tenants > 0, "fleet needs at least one tenant slot");
  ensure(config.block_samples > 0, "fleet block must be non-empty");
  ensure(config.batch_tenants > 0, "fleet batch must be non-empty");
  ensure(config.arena_bytes > 0, "fleet arenas must be non-empty");
  ensure(config.ramp_s >= 0.0, "fleet ramp must be non-negative");
  ensure(config.window_s > 0.0, "fleet invariant window must be positive");
  return config;
}

}  // namespace

namespace {

// Splice the loop seam: when the cursor wraps from the stream tail to
// `loop_start`, a raw jump is a step discontinuity in every reference
// and in the disturbance. White-noise tenants shrug it off, but a filter
// adapted to a COLORED reference has unconstrained gain where the
// spectrum carries no energy, and the broadband step excites exactly
// that region — measured +77 dB post-wrap blowups on pink-noise
// profiles. Standard audio loop splicing fixes it at the source: pick
// the loop point `seam` samples into the loud region and crossfade the
// stream tail into the `seam` samples that precede it, so the wrap
// lands mid-crossfade with sample-continuous references. Applied to
// x[k] and d with the same window, so they stay coherent.
void splice_loop_seam(DeviceStreams& streams, std::size_t loop_start,
                      std::size_t seam) {
  const std::size_t len = streams.d.size();
  const auto blend = [&](Signal& s) {
    for (std::size_t i = 0; i < seam; ++i) {
      const double a = 0.5 - 0.5 * std::cos(M_PI * static_cast<double>(i + 1) /
                                            static_cast<double>(seam + 1));
      const std::size_t tail = len - seam + i;
      s[tail] = static_cast<Sample>((1.0 - a) * static_cast<double>(s[tail]) +
                                    a * static_cast<double>(
                                            s[loop_start - seam + i]));
    }
  };
  for (Signal& xr : streams.x) blend(xr);
  blend(streams.d);
}

}  // namespace

FleetProfile make_fleet_profile(audio::SoundSource& noise,
                                const DeviceSimConfig& config,
                                bool loop_steady_state) {
  FleetProfile profile;
  profile.streams = prepare_device_streams(noise, config);
  if (loop_steady_state) {
    const std::size_t quiet = profile.streams.quiet_samples;
    ensure(quiet < profile.length(),
           "fleet profile has no loud region to loop");
    // ~16 ms seam; degrade gracefully for very short loud regions.
    const std::size_t loud = profile.length() - quiet;
    const std::size_t seam = std::min<std::size_t>(
        static_cast<std::size_t>(profile.streams.sample_rate * 0.016),
        loud / 4);
    profile.loop_start = quiet + seam;
    if (seam > 0) {
      splice_loop_seam(profile.streams, profile.loop_start, seam);
    }
  }
  return profile;
}

FleetRuntime::FleetRuntime(FleetConfig config)
    : config_(validate(config)),
      arenas_(config_.arena_bytes, config_.max_tenants),
      pool_(config_.workers),
      tenants_(config_.max_tenants) {
  free_slots_.reserve(config_.max_tenants);
  // Reverse order so pop_back hands out slot 0 first (stable, readable
  // slot assignment in tests and soak logs).
  for (std::size_t s = config_.max_tenants; s-- > 0;) free_slots_.push_back(s);
}

FleetRuntime::~FleetRuntime() = default;

std::size_t FleetRuntime::add_profile(FleetProfile profile) {
  ensure(profile.length() > 0, "fleet profile has no samples");
  ensure(profile.streams.sample_rate > 0, "fleet profile has no sample rate");
  ensure(profile.loop_start == FleetProfile::kNoLoop ||
             profile.loop_start < profile.length(),
         "fleet profile loop point out of range");
  profiles_.push_back(std::move(profile));
  return profiles_.size() - 1;
}

const FleetProfile& FleetRuntime::profile(std::size_t id) const {
  ensure(id < profiles_.size(), "unknown fleet profile");
  return profiles_[id];
}

std::uint64_t FleetRuntime::admit(std::size_t profile_id, std::uint64_t seed,
                                  bool capture_residual) {
  ensure(profile_id < profiles_.size(), "admit on unknown fleet profile");
  ensure(!free_slots_.empty(), "fleet at capacity");
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();

  const FleetProfile& p = profiles_[profile_id];
  const double fs = p.streams.sample_rate;
  const std::uint64_t id = next_id_++;

  Tenant& t = tenants_[slot];
  t = Tenant{};
  t.id = id;
  t.profile = profile_id;
  const auto ramp = static_cast<std::size_t>(config_.ramp_s * fs);
  if (ramp > 0) {
    t.state = TenantState::kRampIn;
    t.gain = 0.0;
    t.gain_step = 1.0 / static_cast<double>(ramp);
  } else {
    t.state = TenantState::kRunning;
    t.gain = 1.0;
  }
  t.win_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.window_s * fs));
  t.win_skip_until =
      static_cast<std::size_t>(config_.invariant_grace_s * fs);
  t.capture = capture_residual;
  if (capture_residual) t.captured.assign(p.length(), 0.0f);

  live_.emplace(id, slot);
  pending_admits_.push_back({slot, seed});
  return id;
}

void FleetRuntime::drain(std::uint64_t tenant_id) {
  const auto it = live_.find(tenant_id);
  ensure(it != live_.end(), "drain of unknown fleet tenant");
  const std::size_t slot = it->second;
  Tenant& t = tenants_[slot];
  if (t.state == TenantState::kDraining || t.state == TenantState::kDrained) {
    return;
  }
  if (t.device == nullptr) {
    // Admitted but never constructed (no block boundary in between):
    // cancel the pending admit and evict straight away.
    pending_admits_.erase(
        std::remove_if(pending_admits_.begin(), pending_admits_.end(),
                       [slot](const PendingAdmit& pa) {
                         return pa.slot == slot;
                       }),
        pending_admits_.end());
    t.state = TenantState::kDrained;
    evict(slot);
    schedule_dirty_ = true;
    return;
  }
  const double fs = profiles_[t.profile].streams.sample_rate;
  const auto ramp = static_cast<std::size_t>(config_.ramp_s * fs);
  if (ramp == 0 || t.gain <= 0.0) {
    t.gain = 0.0;
    t.state = TenantState::kDrained;
  } else {
    t.gain_step = 1.0 / static_cast<double>(ramp);
    t.state = TenantState::kDraining;
  }
}

void FleetRuntime::run_blocks(std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    apply_control();
    if (!order_.empty()) {
      const std::size_t items =
          (order_.size() + config_.batch_tenants - 1) / config_.batch_tenants;
      pool_.run(items, [this](std::size_t item) { process_item(item); });
    }
    ++blocks_processed_;
  }
}

void FleetRuntime::apply_control() {
  // 1. Evict tenants that finished draining in the previous block. Their
  //    arena-backed objects are destroyed here on the control thread (the
  //    deletes are registry no-ops), then the arena is reclaimed wholesale.
  for (std::size_t slot = 0; slot < tenants_.size(); ++slot) {
    if (tenants_[slot].state == TenantState::kDrained) {
      evict(slot);
      schedule_dirty_ = true;
    }
  }

  // 2. Construct pending admits — in parallel, each inside its tenant's
  //    arena, so mass admission scales across lanes and never contends on
  //    the global heap.
  if (!pending_admits_.empty()) {
    std::vector<PendingAdmit> batch;
    batch.swap(pending_admits_);
    const auto construct = [&](std::size_t i) {
      const PendingAdmit& pa = batch[i];
      Tenant& t = tenants_[pa.slot];
      ScopedArenaAlloc scope(arenas_.arena(pa.slot));
      const FleetProfile& p = profiles_[t.profile];
      core::MuteDeviceConfig cfg = p.streams.device;
      cfg.seed = pa.seed;
      t.device = std::make_unique<core::MuteDevice>(cfg);
      t.hse = std::make_unique<dsp::FirFilter>(p.streams.hse_eff);
      t.feed.assign(p.streams.x.size(), 0.0f);
    };
    pool_.run(batch.size(), construct);
    schedule_dirty_ = true;
  }

  if (schedule_dirty_) {
    rebuild_schedule();
    schedule_dirty_ = false;
  }
}

void FleetRuntime::evict(std::size_t slot) {
  Tenant& t = tenants_[slot];
  completed_.push_back(snapshot(t, slot));
  if (t.capture) completed_residuals_[t.id] = std::move(t.captured);
  live_.erase(t.id);
  // Destroy arena-backed objects BEFORE the arena reclaims their bytes;
  // their operator delete is a no-op via the region registry (or a real
  // free when routing is compiled out — either way this order is correct).
  t.device.reset();
  t.hse.reset();
  t = Tenant{};
  arenas_.arena(slot).reset();
  free_slots_.push_back(slot);
}

void FleetRuntime::rebuild_schedule() {
  order_.clear();
  order_.reserve(live_.size());
  for (const auto& [id, slot] : live_) order_.push_back(slot);
  // Profile-major, slot-minor: tenants sharing a profile sit contiguously
  // in the schedule, so one work item's devices walk the same stream data.
  std::sort(order_.begin(), order_.end(),
            [this](std::size_t a, std::size_t b) {
              const std::size_t pa = tenants_[a].profile;
              const std::size_t pb = tenants_[b].profile;
              return pa != pb ? pa < pb : a < b;
            });
}

void FleetRuntime::process_item(std::size_t item) {
  const std::size_t begin = item * config_.batch_tenants;
  const std::size_t end =
      std::min(order_.size(), begin + config_.batch_tenants);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t slot = order_[i];
    Tenant& t = tenants_[slot];
    if (t.state == TenantState::kDrained) continue;  // drained mid-run
    // Every allocation the tenant makes during its block — selection
    // rounds, handoffs, any amortized control event inside tick() — lands
    // in its arena; the guard counts whatever still escapes to the global
    // heap and steady_allocations() reports it (expected: zero).
    ScopedArenaAlloc scope(arenas_.arena(slot));
    RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "fleet/block");
    process_tenant_block(t);
    steady_allocs_.fetch_add(guard.allocations_since_entry(),
                             std::memory_order_relaxed);
  }
}

void FleetRuntime::process_tenant_block(Tenant& t) {
  const FleetProfile& p = profiles_[t.profile];
  const std::size_t len = p.length();
  const double fs = p.streams.sample_rate;
  const std::size_t relay_count = t.feed.size();
  core::MuteDevice& device = *t.device;
  dsp::FirFilter& hse = *t.hse;

  for (std::size_t s = 0; s < config_.block_samples; ++s) {
    if (t.cursor >= len) [[unlikely]] {
      if (p.loop_start == FleetProfile::kNoLoop) {
        // End of a finite session: the tenant auto-drains and is evicted
        // at the next block boundary.
        t.gain = 0.0;
        t.state = TenantState::kDrained;
        break;
      }
      t.cursor = p.loop_start;
    }

    for (std::size_t k = 0; k < relay_count; ++k) {
      t.feed[k] = p.streams.x[k][t.cursor];
    }
    const Sample y = device.tick(t.feed, t.error);
    const Sample anti = hse.process(y);
    const double d = static_cast<double>(p.streams.d[t.cursor]);
    // gain == 1.0 multiplies exactly, so a running tenant computes the
    // bit-identical at_ear of run_device_simulation's streaming loop.
    const Sample at_ear =
        static_cast<Sample>(d + t.gain * static_cast<double>(anti));
    t.error = at_ear;
    if (t.capture) t.captured[t.cursor] = at_ear;

    // Windowed never-louder invariant (PR 2 semantics): compare residual
    // vs disturbance energy per window; skip windows where the ambient is
    // essentially silent (power-up lead-in, calibration).
    t.win_res += static_cast<double>(at_ear) * static_cast<double>(at_ear);
    t.win_dist += d * d;
    ++t.win_pos;
    ++t.cursor;
    ++t.samples;
    if (t.win_pos >= t.win_len) {
      const double mean_dist =
          t.win_dist / static_cast<double>(t.win_len);
      if (mean_dist > 1e-12 && t.samples >= t.win_skip_until) {
        const double excess_db =
            10.0 * std::log10((t.win_res + 1e-300) / t.win_dist);
        ++t.windows;
        if (excess_db > t.worst_excess_db) {
          t.worst_excess_db = excess_db;
          t.worst_excess_t_s = static_cast<double>(t.samples) / fs;
        }
      }
      t.win_pos = 0;
      t.win_res = 0.0;
      t.win_dist = 0.0;
    }

    if (t.state == TenantState::kRampIn) {
      t.gain += t.gain_step;
      if (t.gain >= 1.0) {
        t.gain = 1.0;
        t.state = TenantState::kRunning;
      }
    } else if (t.state == TenantState::kDraining) {
      t.gain -= t.gain_step;
      if (t.gain <= 0.0) {
        t.gain = 0.0;
        t.state = TenantState::kDrained;
        break;
      }
    }
  }
}

TenantStats FleetRuntime::snapshot(const Tenant& t, std::size_t slot) const {
  TenantStats s;
  s.id = t.id;
  s.state = t.state;
  s.profile = t.profile;
  s.samples = t.samples;
  s.worst_excess_db = t.worst_excess_db;
  s.worst_excess_t_s = t.worst_excess_t_s;
  s.windows = t.windows;
  if (t.device != nullptr) {
    s.handoff_count = t.device->handoff_count();
    s.hold_count = t.device->hold_count();
  }
  const MonotonicArena& arena = arenas_.arena(slot);
  s.arena_used = arena.used();
  s.arena_high_water = arena.high_water();
  s.arena_allocations = arena.allocation_count();
  return s;
}

TenantStats FleetRuntime::stats(std::uint64_t tenant_id) const {
  const auto it = live_.find(tenant_id);
  if (it != live_.end()) return snapshot(tenants_[it->second], it->second);
  for (auto rit = completed_.rbegin(); rit != completed_.rend(); ++rit) {
    if (rit->id == tenant_id) return *rit;
  }
  throw PreconditionError("stats for unknown fleet tenant");
}

const Signal& FleetRuntime::captured_residual(std::uint64_t tenant_id) const {
  const auto it = live_.find(tenant_id);
  if (it != live_.end()) {
    const Tenant& t = tenants_[it->second];
    ensure(t.capture, "tenant was not admitted with capture_residual");
    return t.captured;
  }
  const auto cit = completed_residuals_.find(tenant_id);
  ensure(cit != completed_residuals_.end(),
         "no captured residual for fleet tenant");
  return cit->second;
}

}  // namespace mute::sim
