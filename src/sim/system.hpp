#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "acoustics/environment.hpp"
#include "audio/source.hpp"
#include "core/lanc.hpp"
#include "core/link_monitor.hpp"
#include "core/mute_device.hpp"
#include "core/timing.hpp"
#include "rf/relay.hpp"
#include "sim/passive.hpp"

namespace mute::sim {

/// Which transducer quality the simulated device carries.
enum class HardwareGrade {
  kCheap,    // MUTE: $9 MEMS mic + $19 speaker (weak < 100 Hz, noisier)
  kPremium,  // Bose-class: flat response, very low self-noise
  kIdeal,    // algorithm-only studies: identity, noiseless
};

/// Full configuration of one end-to-end ANC run. The defaults describe
/// MUTE_Hollow in the paper's office scene; the scenario builders in
/// scenarios.hpp derive the Bose baselines and MUTE+Passive from it.
struct SystemConfig {
  acoustics::Scene scene = acoustics::Scene::paper_office();
  double duration_s = 8.0;
  std::uint64_t seed = 1;

  // Reference acquisition.
  bool wireless_reference = true;     // false = headphone-mounted ref mic
  bool use_rf_link = true;            // push reference through the FM chain
  rf::RelayConfig rf{};               // rf.faults scripts link faults
  double extra_reference_delay_s = 0.0;  // Figure 16 delayed-line injection

  // Link supervision & graceful degradation (opt-in; pairs with
  // rf.faults): a LinkMonitor watches the received reference and, while it
  // is flagged, the LANC freezes adaptation and fades the anti-noise out so
  // the ear is never louder than passive. Off by default so benign-channel
  // experiments are bit-identical with and without this subsystem.
  bool link_supervision = false;
  core::LinkMonitorOptions link_monitor{};
  // FxLMS divergence guard (FxlmsOptions::weight_norm_limit); 0 = off.
  double weight_norm_limit = 0.0;

  // Processing-latency budget (Equation 3).
  core::LatencyBudget latency = core::LatencyBudget::mute_ear_device();

  // Adaptive filter. The office RIR rings for hundreds of taps, and the
  // optimal controller (h_ne * h_nr^-1 * h_se^-1) is longer still, so the
  // causal section must be generous. Leakage bleeds energy out of weight
  // directions the error can never fix (bands where the cheap speaker/mic
  // have no response) — without it those weights random-walk to infinity.
  std::size_t causal_taps = 512;
  std::size_t max_noncausal_taps = 192;  // cap N even if lookahead is larger
  std::size_t secondary_taps = 256;      // length of the h_se estimate
  // Step size: cheap transducers put sharp phase rotation near their
  // resonance/rolloff edges (the truncated h_se estimate mismatches
  // there), and real-world workloads — speech, music, impacts — are
  // non-stationary enough to push NLMS to its delayed-update stability
  // edge. 0.05 is stable across every workload in the test suite; white
  // noise tolerates ~0.15 and converges a little faster.
  double mu = 0.05;
  // Step-size scheduling: when mu_settle > 0, the step decays
  // exponentially from `mu` toward `mu_settle` with time constant
  // `mu_settle_tau_s`. NLMS misadjustment scales with mu and is painful
  // on amplitude-modulated sources (speech costs ~5 dB at mu = 0.05);
  // scheduling buys fast convergence AND a quiet steady state.
  double mu_settle = 0.01;
  double mu_settle_tau_s = 2.0;
  double leakage = 2e-4;
  bool profiling = false;
  // Profiler switch hysteresis in frames (~8 ms each): speech needs a
  // longer window than machine noise so syllable gaps don't flap the
  // classifier between "voice" and "background".
  std::size_t profile_hysteresis = 8;

  // Warm start: initialize the adaptive filter from a Wiener solution
  // computed on a short tuning record (reference + open-ear disturbance),
  // exactly like the factory tuning every commercial ANC headset ships
  // with; LMS keeps refining online. Cold start (false) shows raw
  // convergence behaviour instead.
  bool warm_start = false;
  double warm_start_tuning_s = 4.0;

  // Control bandwidth (0 = full band). A conventional headphone cannot
  // realize the fractional-sample *advance* its geometry demands; an
  // unconstrained MSE-optimal causal filter would smear that error evenly
  // across the band (mediocre everywhere). Commercial ANC instead
  // restricts the control effort to low frequencies, where the missed
  // deadline costs almost no phase — which is exactly why the paper's
  // Bose_Active curve dies above ~1 kHz. The limit lives in the tuning
  // objective (band-limited adaptation error + out-of-band effort
  // penalty), not as a physical output filter, which would add group
  // delay the headphone cannot afford.
  double control_bandwidth_hz = 0.0;

  // Weight of the out-of-band output-effort penalty in the warm-start
  // controller fit (higher = less high-frequency spill, shallower
  // in-band depth; the Bode-integral trade every feedforward ANC makes).
  double control_effort_weight = 2.0;

  // Hardware.
  HardwareGrade grade = HardwareGrade::kCheap;
  // Model the ambient playback loudspeaker the evaluation noises physically
  // come out of (the paper's setup plays all noises through a consumer
  // speaker with a ~90 Hz corner).
  bool ambient_speaker = true;
  bool passive_shell = false;

  // Calibration of the secondary path before the run.
  double calibration_s = 2.0;

  // Architectural variants (Section 4.3): when the DSP lives in the relay
  // (tabletop / edge service), the error microphone's feedback returns
  // over RF and reaches the adaptive filter late. Delayed-update LMS stays
  // stable for moderate delays if mu is reduced (the variant builders do).
  std::size_t error_feedback_delay_samples = 0;

  // Level: disturbance RMS at the (open) ear before any device.
  double disturbance_rms = 0.1;

  // Head mobility (Section 6 limitation): the error microphone drifts
  // this many meters (+y) over the run, so the noise->ear channel is
  // time-varying and the adaptive filter must track it. The device-local
  // secondary path moves rigidly with the head and stays fixed.
  double head_drift_m = 0.0;

  // Optional second ambient source (the paper's Figure 17 setup plays
  // continuous background noise from one speaker and intermittent voice
  // from another). Each source gets its own room channels, so the optimal
  // controller genuinely changes when the mixture changes — the situation
  // predictive profile switching exists for.
  std::optional<acoustics::Point> second_source_position;
};

/// Everything a run produces. Signals are aligned sample-for-sample.
struct SystemResult {
  Signal disturbance;       // what the ear hears with no ANC (after shell)
  Signal residual;          // what the ear hears with ANC running
  Signal reference;         // the reference stream the DSP consumed
  // Raw acoustic components of the residual (before the measurement
  // microphone): residual ~= ambient_at_ear + anti_at_ear + mic noise.
  // Needed by experiments where the two components take different onward
  // paths (e.g. into the ear canal from different incidence angles).
  Signal ambient_at_ear;
  Signal anti_at_ear;
  double sample_rate = 0.0;

  // Timing diagnostics.
  double acoustic_lookahead_s = 0.0;  // Equation 4 geometry
  double link_delay_s = 0.0;          // measured RF-link group delay
  double usable_lookahead_s = 0.0;    // after budget subtraction
  std::size_t noncausal_taps = 0;     // N actually configured

  // Secondary-path calibration quality (residual dB; more negative=better).
  double calibration_error_db = 0.0;

  // Profiling diagnostics.
  std::size_t profile_switches = 0;
  std::size_t profiles_seen = 0;

  // Fault/recovery diagnostics (populated when link_supervision is on).
  std::size_t link_fault_samples = 0;   // reference samples flagged bad
  std::size_t link_fault_episodes = 0;  // distinct flagged intervals
  double first_fault_s = -1.0;          // onset of the first flag (-1: none)
  double last_recovery_s = -1.0;        // end of the last flag (-1: none)
  unsigned link_fault_flags = 0;        // LinkFlags bitmask union
  std::size_t weight_rollbacks = 0;     // divergence-guard firings

  // Failover diagnostics (populated by run_device_simulation; the
  // single-link run_anc_simulation has no device state machine).
  std::size_t handoff_count = 0;        // kHandoff re-targets
  std::size_t shadow_handoff_count = 0; // handoffs installed from the shadow
  std::size_t device_hold_count = 0;    // kHolding entries
  double reacquisition_gap_s = 0.0;     // last out-of-kRunning gap
  double max_reacquisition_gap_s = 0.0; // longest such gap over the run
  std::vector<double> relay_active_s;   // kRunning seconds per relay
};

/// Run a complete ANC simulation: synthesize room channels, calibrate the
/// secondary path, stream the noise through relay/link/LANC/speaker, and
/// record disturbance + residual at the error microphone.
/// `second_noise` plays from `config.second_source_position` when both are
/// provided (ignored otherwise).
SystemResult run_anc_simulation(audio::SoundSource& noise,
                                const SystemConfig& config,
                                audio::SoundSource* second_noise = nullptr);

/// Configuration of a multi-relay *device-level* simulation: unlike
/// run_anc_simulation (which streams one prepared reference into a bare
/// LancController), this drives the full MuteDevice state machine —
/// power-up calibration, GCC-PHAT association, link supervision, warm
/// standby failover — with one acoustic path and one (optional) RF chain
/// per relay. Built for failover experiments: fault the active relay and
/// observe the handoff.
struct DeviceSimConfig {
  acoustics::Scene scene = acoustics::Scene::paper_office();
  /// One reference-microphone position per relay; empty means the scene's
  /// single `relay_mic`. `device.relay_count` is overridden to match.
  std::vector<acoustics::Point> relay_positions;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  /// Disturbance RMS at the ear once the ambient starts. The ambient is
  /// muted through the device's power-up calibration (plus 0.1 s of
  /// margin), like the quiet-room calibration of the offline sim.
  double disturbance_rms = 0.1;

  /// Push every relay's reference through its own FM chain. Required for
  /// the scripted fault scenarios (faults live in the RF layer).
  bool use_rf_link = true;
  rf::RelayConfig rf{};
  /// Per-relay scripted faults; index k applies to relay k (missing
  /// entries mean a benign link). See sim::make_fault_schedule.
  std::vector<rf::FaultSchedule> relay_faults;

  /// Device configuration. `sample_rate` and `relay_count` are overridden
  /// from the scene and `relay_positions`.
  core::MuteDeviceConfig device{};
};

/// The shared-input half of the device-level simulation: everything
/// upstream of the MuteDevice itself. Holds the synthesized noise record
/// (with the quiet power-up lead-in), the normalized disturbance at the
/// ear, one reference stream per relay (gain-staged and pushed through its
/// RF chain), and the effective secondary-path IR with the latency budget
/// inside. `device` is the caller's MuteDeviceConfig with `sample_rate`
/// and `relay_count` resolved.
///
/// Factored out of run_device_simulation so the fleet runtime
/// (sim/fleet.hpp) builds its tenant profiles through the *same* code
/// path — one implementation is what makes a single-tenant fleet
/// bit-identical to run_device_simulation.
struct DeviceStreams {
  std::vector<Signal> x;        // per-relay reference, post RF chain
  Signal d;                     // disturbance at the ear (lead-in muted)
  std::vector<double> hse_eff;  // effective secondary-path IR
  std::size_t quiet_samples = 0;  // power-up lead-in (ambient muted)
  core::MuteDeviceConfig device;  // sample_rate / relay_count resolved
  double sample_rate = 0.0;
};

/// Synthesize the inputs of a device-level run (steps 1-4 of
/// run_device_simulation): noise record with quiet lead-in, acoustic
/// paths, loud-region level normalization, per-relay RF chains, effective
/// secondary path. Deterministic in (noise, config).
DeviceStreams prepare_device_streams(audio::SoundSource& noise,
                                     const DeviceSimConfig& config);

/// Run the device-level simulation. In the result, `disturbance` and
/// `residual` are the ear field without/with the device (the residual
/// includes the calibration tone and every state transition — it is the
/// honest account of what the ear hears across the device lifecycle);
/// `reference` is left empty (each relay has its own stream). Failover
/// diagnostics (handoff_count, reacquisition_gap_s, relay_active_s,
/// device_hold_count) and the per-relay link-fault tallies are populated.
SystemResult run_device_simulation(audio::SoundSource& noise,
                                   const DeviceSimConfig& config);

namespace detail {
/// The physically effective secondary path: the acoustic h_se cascaded
/// with the processing-latency budget realized as a fractional delay.
/// Shared by the offline, device, and mesh simulations so they model the
/// identical plant.
std::vector<double> effective_secondary_ir(const std::vector<double>& h_se,
                                           double budget_samples);
}  // namespace detail

}  // namespace mute::sim
