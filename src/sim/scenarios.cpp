#include "sim/scenarios.hpp"

#include "audio/construction_synth.hpp"
#include "audio/generators.hpp"
#include "audio/music_synth.hpp"
#include "audio/speech_synth.hpp"
#include "common/error.hpp"

namespace mute::sim {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kMuteHollow: return "MUTE_Hollow";
    case Scheme::kBoseActive: return "Bose_Active";
    case Scheme::kBoseOverall: return "Bose_Overall";
    case Scheme::kMutePassive: return "MUTE+Passive";
  }
  return "?";
}

SystemConfig make_scheme_config(Scheme scheme,
                                const acoustics::Scene& scene,
                                std::uint64_t seed) {
  SystemConfig cfg;
  cfg.scene = scene;
  cfg.seed = seed;

  const bool is_bose =
      scheme == Scheme::kBoseActive || scheme == Scheme::kBoseOverall;
  if (is_bose) {
    // Reference microphone sits on the headphone shell, ~1.5 cm outward
    // from the error microphone toward the noise — the <1 cm..2 cm gap the
    // paper's Section 3.1 timeline analysis assumes.
    acoustics::Point toward = cfg.scene.noise_source - cfg.scene.error_mic;
    const double d = acoustics::distance(cfg.scene.noise_source,
                                         cfg.scene.error_mic);
    const double s = 0.015 / d;
    cfg.scene.relay_mic = {cfg.scene.error_mic.x + toward.x * s,
                           cfg.scene.error_mic.y + toward.y * s,
                           cfg.scene.error_mic.z + toward.z * s};
    cfg.wireless_reference = false;
    cfg.use_rf_link = false;
    // A commercial ANC headset ships premium low-noise transducers but
    // pays the full converter/processing budget with only ~30 us of
    // acoustic lead (Figure 5a).
    cfg.grade = HardwareGrade::kPremium;
    // "ADC, DSP processing, DAC and speaker delay can easily be 3x" the
    // 30 us acoustic window (Section 3.1) — ~100 us total.
    cfg.latency = core::LatencyBudget{25.0, 20.0, 35.0, 20.0};
    cfg.max_noncausal_taps = 0;
    // A commercial headset ships factory-tuned filters and only mildly
    // adapts online; blind LMS from zero is not how a QC35 behaves.
    cfg.warm_start = true;
    cfg.mu = 0.01;
    // Feedforward control restricted to the band where the missed timing
    // deadline is affordable — the reason Bose only cancels below ~1 kHz.
    cfg.control_bandwidth_hz = 700.0;
  } else {
    cfg.wireless_reference = true;
    cfg.use_rf_link = true;
    cfg.grade = HardwareGrade::kCheap;
    cfg.latency = core::LatencyBudget::mute_ear_device();
    // The paper evaluates converged, steady-state behaviour; warm start
    // (a tuning pass) plus a settled step size reproduces that without
    // burning half of every run on initial convergence. Cold-start
    // dynamics remain available (warm_start = false) and are exercised
    // by the convergence/profiling experiments.
    cfg.warm_start = true;
  }
  cfg.passive_shell =
      scheme == Scheme::kBoseOverall || scheme == Scheme::kMutePassive;
  return cfg;
}

const char* noise_name(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kWhite: return "white_noise";
    case NoiseKind::kMaleVoice: return "male_voice";
    case NoiseKind::kFemaleVoice: return "female_voice";
    case NoiseKind::kConstruction: return "construction";
    case NoiseKind::kMusic: return "music";
    case NoiseKind::kMachineHum: return "machine_hum";
  }
  return "?";
}

audio::SourcePtr make_noise(NoiseKind kind, double sample_rate,
                            std::uint64_t seed) {
  using namespace mute::audio;
  switch (kind) {
    case NoiseKind::kWhite:
      return std::make_unique<WhiteNoiseSource>(0.1, seed);
    case NoiseKind::kMaleVoice: {
      auto p = SpeechParams::male();
      p.continuous = true;  // Fig. 14 plays sustained voice recordings
      return std::make_unique<SpeechSource>(p, sample_rate, seed);
    }
    case NoiseKind::kFemaleVoice: {
      auto p = SpeechParams::female();
      p.continuous = true;
      return std::make_unique<SpeechSource>(p, sample_rate, seed);
    }
    case NoiseKind::kConstruction:
      return std::make_unique<ConstructionSource>(ConstructionParams{},
                                                  sample_rate, seed);
    case NoiseKind::kMusic:
      return std::make_unique<MusicSource>(MusicParams{}, sample_rate, seed);
    case NoiseKind::kMachineHum:
      return std::make_unique<MachineHumSource>(120.0, 0.2, sample_rate,
                                                seed);
  }
  throw PreconditionError("unknown noise kind");
}

const char* fault_scenario_name(FaultScenario scenario) {
  switch (scenario) {
    case FaultScenario::kNone: return "none";
    case FaultScenario::kRelayDropout: return "relay_dropout";
    case FaultScenario::kJammerBurst: return "jammer_burst";
    case FaultScenario::kDeepFade: return "deep_fade";
    case FaultScenario::kImpulseNoise: return "impulse_noise";
    case FaultScenario::kClockDrift: return "clock_drift";
  }
  return "?";
}

rf::FaultSchedule make_fault_schedule(FaultScenario scenario, double start_s,
                                      double duration_s, int jammer_channel) {
  rf::FaultSchedule faults;
  switch (scenario) {
    case FaultScenario::kNone:
      break;
    case FaultScenario::kRelayDropout:
      faults.relay_off(start_s, duration_s);
      break;
    case FaultScenario::kJammerBurst:
      // A co-channel emitter well above our post-backoff envelope, offset
      // into the channel-select passband.
      faults.jammer(start_s, duration_s, /*offset_hz=*/40e3,
                    /*power_db=*/6.0, jammer_channel);
      break;
    case FaultScenario::kDeepFade:
      // Deep enough to push the FM demodulator below its capture
      // threshold: a 35 dB fade still demodulates cleanly (measured), a
      // 48 dB fade collapses into discriminator noise the monitor flags.
      faults.deep_fade(start_s, duration_s, /*depth_db=*/48.0);
      break;
    case FaultScenario::kImpulseNoise:
      faults.impulse_noise(start_s, duration_s, /*rate_hz=*/400.0,
                           /*amplitude=*/12.0);
      break;
    case FaultScenario::kClockDrift:
      faults.clock_drift(start_s, duration_s, /*ppm=*/80.0);
      break;
  }
  return faults;
}

void apply_fault_scenario(SystemConfig& cfg, FaultScenario scenario,
                          double start_s, double duration_s) {
  if (scenario == FaultScenario::kNone) return;
  // Faults only exist on the wireless chain; force it on so a Bose-style
  // config passed here fails loudly in the link instead of silently
  // running fault-free.
  cfg.wireless_reference = true;
  cfg.use_rf_link = true;
  cfg.link_supervision = true;
  if (cfg.weight_norm_limit <= 0.0) cfg.weight_norm_limit = 50.0;
  cfg.rf.faults = make_fault_schedule(scenario, start_s, duration_s);
}

}  // namespace mute::sim
