#pragma once

#include <span>

#include "common/types.hpp"
#include "dsp/biquad.hpp"

namespace mute::sim {

/// Passive acoustic attenuation of a circumaural headphone shell
/// (Bose QC35's "sound-absorbing material"): a few dB of leakage-limited
/// loss at low frequency rising to ~35 dB by 4 kHz — the textbook shape
/// the paper leans on ("passive material is effective at higher
/// frequencies").
///
/// Implemented as a cascade of shelving biquads (near-minimum-phase), so
/// the shell adds essentially no group delay: a physical shell does not
/// delay the sound that leaks through it, and modeling it with a
/// linear-phase FIR would smuggle milliseconds of artificial lookahead
/// into the Bose_Overall / MUTE+Passive comparisons.
class PassiveShell {
 public:
  explicit PassiveShell(double sample_rate);

  /// Attenuate outside noise on its way to the ear (offline).
  Signal apply(std::span<const Sample> outside);

  /// Streaming form.
  Sample process(Sample x);
  void reset();

  /// Insertion loss at `freq_hz` in dB (positive = attenuation).
  double insertion_loss_db(double freq_hz) const;

  double sample_rate() const { return fs_; }

 private:
  double fs_;
  double broadband_gain_;  // low-frequency leakage floor
  mute::dsp::BiquadCascade shelves_;
};

}  // namespace mute::sim
