#include "sim/soak.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "audio/generators.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"

namespace mute::sim {

namespace {

constexpr double kCalibrationS = 1.0;
// Leave the device time to calibrate, associate and converge before the
// chaos starts, and time to recover after the last episode ends.
constexpr double kChaosLeadS = 3.5;
constexpr double kChaosTailS = 1.5;

const FaultScenario kSoakKinds[] = {
    FaultScenario::kRelayDropout, FaultScenario::kJammerBurst,
    FaultScenario::kDeepFade, FaultScenario::kImpulseNoise,
    FaultScenario::kClockDrift,
};

/// Relays a candidate episode would leave simultaneously faulted.
std::size_t faulted_at_overlap(const std::vector<SoakEpisode>& episodes,
                               const SoakEpisode& cand,
                               std::size_t relay_count) {
  std::vector<bool> faulted(relay_count, false);
  faulted[cand.relay] = true;
  for (const auto& e : episodes) {
    const bool overlaps = e.start_s < cand.start_s + cand.duration_s &&
                          cand.start_s < e.start_s + e.duration_s;
    if (overlaps) faulted[e.relay] = true;
  }
  return static_cast<std::size_t>(
      std::count(faulted.begin(), faulted.end(), true));
}

}  // namespace

std::vector<SoakEpisode> make_soak_episodes(const SoakConfig& config) {
  ensure(config.relay_count >= 2, "soak needs a mesh (>= 2 relays)");
  ensure(config.duration_s > kChaosLeadS + kChaosTailS + 1.0,
         "soak too short for a chaos window");
  Rng rng(config.seed * 0x9E3779B97F4A7C15ull + 1);
  const double lo = kChaosLeadS;
  const double hi = config.duration_s - kChaosTailS;
  std::vector<SoakEpisode> episodes;
  episodes.reserve(config.episode_count);
  for (std::size_t i = 0; i < config.episode_count; ++i) {
    // Redraw until at least one relay stays healthy for the whole episode
    // (a fully-faulted mesh has no standby to hand off to, so "bounded
    // re-acquisition" would be unfalsifiable). Bounded retries keep the
    // generator total; a candidate that cannot be placed is dropped.
    for (int attempt = 0; attempt < 16; ++attempt) {
      SoakEpisode e;
      e.relay = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(config.relay_count) - 1));
      e.kind = kSoakKinds[rng.uniform_int(0, 4)];
      e.duration_s = rng.uniform(0.4, 1.2);
      e.start_s = rng.uniform(lo, std::max(lo + 0.1, hi - e.duration_s));
      if (e.kind == FaultScenario::kJammerBurst) {
        // Pin the jammer to the victim's home channel (the planner's
        // frequency-division assignment is relay k -> channel k), so a
        // supervised mesh can dodge by hopping.
        e.jammer_channel = static_cast<int>(e.relay);
      }
      if (faulted_at_overlap(episodes, e, config.relay_count) <
          config.relay_count) {
        episodes.push_back(e);
        break;
      }
    }
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const SoakEpisode& a, const SoakEpisode& b) {
              return a.start_s < b.start_s;
            });
  return episodes;
}

SoakReport run_chaos_soak(const SoakConfig& config) {
  ensure(config.relay_count >= 2 && config.relay_count <= 8,
         "soak supports 2..8 relays");
  const auto episodes = make_soak_episodes(config);

  MeshSimConfig mesh;
  DeviceSimConfig& dc = mesh.device_sim;
  dc.scene = acoustics::Scene::paper_office();
  // Relays strung between the noise source (x=1.0) and the ear (x=5.0):
  // every one leads the wavefront, nearer relays lead more.
  dc.relay_positions.clear();
  for (std::size_t k = 0; k < config.relay_count; ++k) {
    dc.relay_positions.push_back(
        {2.0 + 0.2 * static_cast<double>(k), 2.5, 1.5});
  }
  dc.duration_s = config.duration_s;
  dc.seed = config.seed;
  dc.relay_faults.assign(config.relay_count, rf::FaultSchedule{});
  for (const auto& e : episodes) {
    dc.relay_faults[e.relay].merge(make_fault_schedule(
        e.kind, e.start_s, e.duration_s, e.jammer_channel));
  }
  dc.device.calibration_s = kCalibrationS;
  dc.device.selection_period_s = 0.5;
  dc.device.hold_timeout_s = 0.3;
  dc.device.lanc.fxlms.mu = 0.3;
  dc.device.lanc.fxlms.leakage = 2e-4;
  mesh.spectrum_supervision = config.spectrum_supervision;
  mesh.count_allocations = config.count_allocations;

  audio::WhiteNoiseSource noise(0.1, config.seed * 31 + 7);
  const MeshSimResult r = run_mesh_simulation(noise, mesh);

  SoakReport report;
  report.seed = config.seed;
  report.relay_count = config.relay_count;
  report.duration_s = config.duration_s;
  report.episodes = episodes;

  // Invariant 1: never meaningfully louder than passive, in any window
  // after the quiet power-up lead-in. Uses window energy (not samples):
  // the bound is about audible loudness, not instantaneous overshoot.
  const auto& res = r.system.residual;
  const auto& dist = r.system.disturbance;
  const double fs = r.system.sample_rate;
  const auto win = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.window_s * fs));
  const auto first = static_cast<std::size_t>((kCalibrationS + 0.2) * fs);
  for (std::size_t i0 = first; i0 + win <= res.size(); i0 += win / 2) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = i0; i < i0 + win; ++i) {
      num += static_cast<double>(res[i]) * static_cast<double>(res[i]);
      den += static_cast<double>(dist[i]) * static_cast<double>(dist[i]);
    }
    const double excess_db = power_to_db(num / std::max(den, 1e-20));
    if (excess_db > report.worst_window_excess_db) {
      report.worst_window_excess_db = excess_db;
      report.worst_window_t_s = static_cast<double>(i0) / fs;
    }
  }
  report.never_louder =
      report.worst_window_excess_db <= config.louder_margin_db;

  // Invariant 2: bounded re-acquisition.
  report.max_reacquisition_gap_s = r.system.max_reacquisition_gap_s;
  report.gap_bounded = r.system.max_reacquisition_gap_s <= config.max_gap_bound_s;

  // Invariant 3: allocation-free steady state (vacuous without the
  // operator-new interposition — reported as such, never silently green).
  report.allocation_tracked = r.allocation_tracking;
  report.allocating_ticks = r.allocating_ticks;
  report.total_ticks = r.total_ticks;
  if (r.allocation_tracking && r.total_ticks > 0) {
    report.allocation_clean =
        static_cast<double>(r.allocating_ticks) <=
        config.alloc_tick_fraction * static_cast<double>(r.total_ticks);
  }

  report.handoff_count = r.system.handoff_count;
  report.shadow_handoff_count = r.system.shadow_handoff_count;
  report.hold_count = r.system.device_hold_count;
  report.hop_count = r.hop_count;
  report.tx_step_count = r.tx_step_count;
  report.link_fault_episodes = r.system.link_fault_episodes;
  return report;
}

std::string soak_reports_json(const std::vector<SoakReport>& reports) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SoakReport& r = reports[i];
    os << "  {\"seed\": " << r.seed << ", \"relays\": " << r.relay_count
       << ", \"duration_s\": " << r.duration_s
       << ", \"passed\": " << (r.passed() ? "true" : "false")
       << ",\n   \"never_louder\": " << (r.never_louder ? "true" : "false")
       << ", \"worst_window_excess_db\": " << r.worst_window_excess_db
       << ", \"worst_window_t_s\": " << r.worst_window_t_s
       << ",\n   \"gap_bounded\": " << (r.gap_bounded ? "true" : "false")
       << ", \"max_reacquisition_gap_s\": " << r.max_reacquisition_gap_s
       << ",\n   \"allocation_clean\": "
       << (r.allocation_clean ? "true" : "false")
       << ", \"allocation_tracked\": "
       << (r.allocation_tracked ? "true" : "false")
       << ", \"allocating_ticks\": " << r.allocating_ticks
       << ", \"total_ticks\": " << r.total_ticks
       << ",\n   \"handoffs\": " << r.handoff_count
       << ", \"shadow_handoffs\": " << r.shadow_handoff_count
       << ", \"holds\": " << r.hold_count << ", \"hops\": " << r.hop_count
       << ", \"tx_steps\": " << r.tx_step_count
       << ", \"fault_episodes\": " << r.link_fault_episodes
       << ",\n   \"schedule\": [";
    for (std::size_t j = 0; j < r.episodes.size(); ++j) {
      const SoakEpisode& e = r.episodes[j];
      os << (j ? ", " : "") << "{\"relay\": " << e.relay << ", \"kind\": \""
         << fault_scenario_name(e.kind) << "\", \"start_s\": " << e.start_s
         << ", \"duration_s\": " << e.duration_s
         << ", \"jammer_channel\": " << e.jammer_channel << "}";
    }
    os << "]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

}  // namespace mute::sim
