#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/function_ref.hpp"

namespace mute::sim {

/// Worker count used when a sweep asks for `workers == 0`: the
/// MUTE_SWEEP_THREADS environment variable when set (>= 1), otherwise
/// std::thread::hardware_concurrency() (>= 1).
std::size_t default_sweep_workers();

/// Run body(0) .. body(count-1) across a temporary pool of `workers`
/// threads (0 = default_sweep_workers(); the calling thread participates,
/// so workers == 1 runs inline with no thread machinery). The body is a
/// non-allocating FunctionRef — nothing is copied onto the heap to
/// dispatch a sweep.
///
/// Determinism contract (DESIGN.md §10): the bodies of one sweep must be
/// independent — each index derives everything it needs (RNG seeds
/// included) from its own arguments and writes only to its own slot. Under
/// that contract the sweep is bit-deterministic: results depend only on the
/// index, never on thread count or interleaving. The contract is what the
/// simulation library already guarantees (seeded per-scenario RNGs, no
/// mutable globals) and the tsan preset verifies.
///
/// Scheduling (work stealing, first-exception rethrow, abandonment of
/// un-started indices after a failure) is WorkerPool's dispatch contract —
/// this function is a thin transient-pool wrapper over the same scheduler
/// the fleet runtime keeps alive (sim/worker_pool.hpp); there is exactly
/// one claiming/draining implementation in the tree.
void parallel_for_index(std::size_t count, std::size_t workers,
                        FunctionRef<void(std::size_t)> body);

/// Map fn over [0, count) concurrently and return the results IN INDEX
/// ORDER — the parallel replacement for the figure benches' serial
/// scenario loops. `fn` must satisfy the determinism contract of
/// parallel_for_index and be safe to invoke concurrently from several
/// threads (a lambda capturing only const/immutable state qualifies).
///
/// Results are constructed in place in their final slot: each body
/// move-assigns (default-constructible R) or placement-constructs
/// (otherwise) directly into out[i] — no vector<optional<R>> staging
/// buffer, no second pass of copies.
template <typename Fn>
auto parallel_sweep(std::size_t count, Fn&& fn, std::size_t workers = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  if constexpr (std::is_default_constructible_v<R> &&
                std::is_move_assignable_v<R>) {
    std::vector<R> out(count);
    parallel_for_index(count, workers,
                       [&](std::size_t i) { out[i] = fn(i); });
    return out;
  } else {
    // Non-default-constructible R: placement-construct each result into a
    // raw slot, then move the slots into the vector. Slots that were never
    // constructed (a sweep abandoned after an exception) are tracked so
    // only live ones are destroyed; the exception re-thrown by
    // parallel_for_index unwinds through here.
    struct Slots {
      std::unique_ptr<std::byte[]> raw;
      std::unique_ptr<unsigned char[]> live;
      std::size_t n;
      R* at(std::size_t i) {
        return std::launder(reinterpret_cast<R*>(raw.get() + i * sizeof(R)));
      }
      ~Slots() {
        for (std::size_t i = 0; i < n; ++i) {
          if (live[i] != 0) at(i)->~R();
        }
      }
    };
    Slots slots{std::make_unique<std::byte[]>(count * sizeof(R)),
                std::make_unique<unsigned char[]>(count), count};
    static_assert(alignof(R) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "over-aligned sweep results are not supported");
    parallel_for_index(count, workers, [&](std::size_t i) {
      ::new (static_cast<void*>(slots.raw.get() + i * sizeof(R))) R(fn(i));
      slots.live[i] = 1;
    });
    std::vector<R> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(std::move(*slots.at(i)));
    return out;
  }
}

}  // namespace mute::sim
