#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace mute::sim {

/// Worker count used when a sweep asks for `workers == 0`: the
/// MUTE_SWEEP_THREADS environment variable when set (>= 1), otherwise
/// std::thread::hardware_concurrency() (>= 1).
std::size_t default_sweep_workers();

/// Run body(0) .. body(count-1) across a temporary thread pool of
/// `workers` threads (0 = default_sweep_workers(); the calling thread
/// participates, so workers == 1 runs inline with no thread machinery).
///
/// Determinism contract (DESIGN.md §10): the bodies of one sweep must be
/// independent — each index derives everything it needs (RNG seeds
/// included) from its own arguments and writes only to its own slot. Under
/// that contract the sweep is bit-deterministic: results depend only on the
/// index, never on thread count or interleaving. The contract is what the
/// simulation library already guarantees (seeded per-scenario RNGs, no
/// mutable globals) and the tsan preset verifies.
///
/// Indices are claimed from a shared atomic counter (work stealing —
/// scenario runtimes vary wildly, static chunking would idle the fast
/// workers). The first exception thrown by any body is re-thrown on the
/// calling thread after the pool drains; remaining un-started indices are
/// abandoned at the next claim.
void parallel_for_index(std::size_t count, std::size_t workers,
                        const std::function<void(std::size_t)>& body);

/// Map fn over [0, count) concurrently and return the results IN INDEX
/// ORDER — the parallel replacement for the figure benches' serial
/// scenario loops. `fn` must satisfy the determinism contract of
/// parallel_for_index and be safe to invoke concurrently from several
/// threads (a lambda capturing only const/immutable state qualifies).
template <typename Fn>
auto parallel_sweep(std::size_t count, Fn&& fn, std::size_t workers = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<std::optional<R>> slots(count);
  parallel_for_index(count, workers,
                     [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(count);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace mute::sim
