#pragma once

#include <cstdint>
#include <vector>

#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute::sim {

/// Architectural variants of Section 4.3. Each builder derives a
/// SystemConfig (or a set of them) from the basic MUTE deployment.

/// (a) Personal tabletop: the DSP moves into the relay; the reference mic
/// is wired to the DSP (no uplink), but the *anti-noise* travels to the
/// ear over RF (downlink latency eats budget) and the error microphone's
/// feedback returns over RF (delayed adaptation, mu reduced for the
/// delayed-update stability margin).
SystemConfig make_tabletop_config(const acoustics::Scene& scene,
                                  std::uint64_t seed,
                                  double rf_round_trip_ms = 2.0);

/// (c) Smart noise: the relay is attached to the noise source itself,
/// maximizing lookahead (d_r -> 0 in Equation 4).
SystemConfig make_smart_noise_config(const acoustics::Scene& scene,
                                     std::uint64_t seed);

/// (b) Public edge service: one DSP server and IoT relays on the ceiling
/// serve several users at once. Each user has their own ear position and
/// error feedback path; the server computes per-user anti-noise.
struct EdgeUser {
  acoustics::Point ear;
  acoustics::Point speaker;  // each user's ear-device speaker
};

struct EdgeServiceResult {
  std::vector<SystemResult> per_user;
};

/// Run the edge service for all users against a common noise source and a
/// single ceiling relay. `server_extra_latency_ms` models the backhaul +
/// shared-DSP scheduling cost added to every user's budget.
EdgeServiceResult run_edge_service(audio::SoundSource& noise,
                                   const acoustics::Scene& base_scene,
                                   const std::vector<EdgeUser>& users,
                                   std::uint64_t seed,
                                   double server_extra_latency_ms = 0.5,
                                   double duration_s = 8.0);

}  // namespace mute::sim
