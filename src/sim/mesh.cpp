#include "sim/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::sim {

MeshSimResult run_mesh_simulation(audio::SoundSource& noise,
                                  const MeshSimConfig& config) {
  const DeviceSimConfig& dc = config.device_sim;
  const double fs = dc.scene.sample_rate;
  ensure(fs > 0, "scene sample rate must be positive");
  const auto n = static_cast<std::size_t>(dc.duration_s * fs);
  ensure(n > 4096, "run too short");
  ensure(config.control_block_s > 0, "control block must be positive");
  if (config.spectrum_supervision) {
    ensure(dc.use_rf_link, "spectrum supervision needs an RF link to retune");
    ensure(dc.device.link_supervision,
           "spectrum supervision needs link monitors for adverse evidence");
  }

  std::vector<acoustics::Point> relays = dc.relay_positions;
  if (relays.empty()) relays.push_back(dc.scene.relay_mic);
  const std::size_t relay_count = relays.size();

  // --- 1. Noise record with a quiet power-up lead-in (identical to
  //        run_device_simulation so the supervision-off mesh run is
  //        bit-identical to the whole-record device sim) ---------------
  noise.reset();
  Signal n_sig = noise.generate(n);
  const auto quiet = std::min<std::size_t>(
      n, static_cast<std::size_t>((dc.device.calibration_s + 0.1) * fs));
  std::fill(n_sig.begin(),
            n_sig.begin() + static_cast<std::ptrdiff_t>(quiet), 0.0f);

  // --- 2. Acoustic paths: ear + one per relay --------------------------
  const auto h_ne = acoustics::build_path(dc.scene, dc.scene.noise_source,
                                          dc.scene.error_mic, "h_ne");
  const auto h_se = acoustics::build_path(dc.scene, dc.scene.anti_speaker,
                                          dc.scene.error_mic, "h_se");
  Signal d_ac = h_ne.apply(n_sig);
  std::vector<Signal> x(relay_count);
  for (std::size_t k = 0; k < relay_count; ++k) {
    const auto h_nr = acoustics::build_path(dc.scene, dc.scene.noise_source,
                                            relays[k], "h_nr_k");
    x[k] = h_nr.apply(n_sig);
  }

  const auto loud_rms = [&](const Signal& s) {
    double acc = 0.0;
    for (std::size_t i = quiet; i < n; ++i) {
      acc += static_cast<double>(s[i]) * static_cast<double>(s[i]);
    }
    return n > quiet ? std::sqrt(acc / static_cast<double>(n - quiet)) : 0.0;
  };
  const auto scale_to = [&](Signal& s, double target_rms) {
    const double g = target_rms / std::max(loud_rms(s), 1e-9);
    for (auto& v : s) v = static_cast<Sample>(static_cast<double>(v) * g);
  };
  scale_to(d_ac, dc.disturbance_rms);
  for (auto& xs : x) scale_to(xs, 0.1);

  // --- 3. Persistent per-relay RF chains -------------------------------
  // Unlike run_device_simulation (which RF-processes the whole record up
  // front), the links live for the whole run and stream per control block:
  // every stage is streaming-stateful, so block boundaries are invisible,
  // and the planner can retune a link BETWEEN blocks.
  std::vector<std::unique_ptr<rf::RelayLink>> links;
  if (dc.use_rf_link) {
    links.reserve(relay_count);
    for (std::size_t k = 0; k < relay_count; ++k) {
      rf::RelayConfig rf_cfg = dc.rf;
      rf_cfg.audio_rate = fs;
      if (k < dc.relay_faults.size()) rf_cfg.faults = dc.relay_faults[k];
      links.push_back(
          std::make_unique<rf::RelayLink>(rf_cfg, dc.seed + 100 + k));
    }
  }

  // --- 4. Spectrum planner ---------------------------------------------
  std::optional<rf::SpectrumPlanner> planner;
  if (config.spectrum_supervision) {
    rf::SpectrumPlannerOptions popt = config.planner;
    popt.channel_count = std::max(popt.channel_count, relay_count);
    planner.emplace(relay_count, popt);
    // Mirror the planner's frequency-division assignment into the links so
    // channel-pinned jammers couple against the channel the relay is
    // actually on. The channel index is a coupling label only (see
    // RelayLink::retune), so this does not perturb the benign signal path.
    for (std::size_t k = 0; k < links.size(); ++k) {
      links[k]->retune(planner->channel_of(k));
    }
  }

  // --- 5. Device + anti-noise plant ------------------------------------
  core::MuteDeviceConfig dev_cfg = dc.device;
  dev_cfg.sample_rate = fs;
  dev_cfg.relay_count = relay_count;
  core::MuteDevice device(dev_cfg);
  const auto hse_eff = detail::effective_secondary_ir(
      h_se.impulse_response(), dev_cfg.latency.total_s() * fs);
  mute::dsp::FirFilter hse_stream(hse_eff);

  // --- 6. Block-streamed loop ------------------------------------------
  MeshSimResult out;
  SystemResult& result = out.system;
  result.sample_rate = fs;
  result.disturbance = d_ac;
  result.residual.resize(n);
  result.anti_at_ear.resize(n);
  const auto block = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.control_block_s * fs));
  Signal feed(relay_count, 0.0f);
  std::vector<Signal> xb(relay_count);  // RF-processed current block
  Sample error = 0.0f;  // device consumes the PREVIOUS tick's ear field
  const bool tally_alloc =
      config.count_allocations && RtAllocationGuard::interposition_enabled();
  out.allocation_tracking = tally_alloc;

  for (std::size_t start = 0; start < n; start += block) {
    const std::size_t len = std::min(block, n - start);

    // RF-process this block through the persistent links.
    for (std::size_t k = 0; k < relay_count; ++k) {
      const std::span<const Sample> slice(x[k].data() + start, len);
      if (dc.use_rf_link) {
        xb[k] = links[k]->process(slice);
      } else {
        xb[k].assign(slice.begin(), slice.end());
      }
    }

    for (std::size_t t = 0; t < len; ++t) {
      for (std::size_t k = 0; k < relay_count; ++k) feed[k] = xb[k][t];
      Sample y;
      if (tally_alloc) {
        RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "mesh-tick");
        y = device.tick(feed, error);
        if (guard.allocations_since_entry() > 0) ++out.allocating_ticks;
      } else {
        y = device.tick(feed, error);
      }
      ++out.total_ticks;
      const Sample anti = hse_stream.process(y);
      const Sample at_ear = static_cast<Sample>(
          static_cast<double>(d_ac[start + t]) + static_cast<double>(anti));
      error = at_ear;
      result.residual[start + t] = at_ear;
      result.anti_at_ear[start + t] = anti;
    }

    // Consult the spectrum planner between blocks: link-monitor evidence
    // in, channel hops / TX steps out. Only once the device has gone live
    // (kRunning and beyond): during calibration and listening the noise
    // record's quiet lead-in makes every monitor report silence, and a
    // planner fed that evidence would hop relays off perfectly clean
    // channels before the first selection round.
    const bool live = device.state() >= core::MuteDevice::State::kRunning;
    if (planner.has_value() && live) {
      const double now_s = static_cast<double>(start + len) / fs;
      for (std::size_t k = 0; k < relay_count; ++k) {
        const auto* monitor = device.link_monitor(k);
        if (monitor == nullptr) continue;
        if (monitor->healthy()) {
          planner->note_clean(k, now_s);
        } else {
          planner->note_adverse(k, now_s);
        }
        const auto action = planner->plan(k, now_s);
        switch (action.kind) {
          case rf::PlannerActionKind::kHop:
            links[k]->retune(action.channel);
            ++out.hop_count;
            break;
          case rf::PlannerActionKind::kTxStep:
            links[k]->set_tx_gain_db(action.tx_gain_db);
            ++out.tx_step_count;
            break;
          case rf::PlannerActionKind::kNone:
            break;
        }
      }
    }
  }
  result.ambient_at_ear = std::move(d_ac);

  // --- 7. Diagnostics (mirrors run_device_simulation) -------------------
  result.noncausal_taps = device.noncausal_taps();
  result.calibration_error_db = device.calibration().final_error_db;
  result.handoff_count = device.handoff_count();
  result.shadow_handoff_count = device.shadow_handoff_count();
  result.device_hold_count = device.hold_count();
  result.reacquisition_gap_s = device.last_reacquisition_gap_s();
  result.max_reacquisition_gap_s = device.max_reacquisition_gap_s();
  result.relay_active_s.resize(relay_count);
  for (std::size_t k = 0; k < relay_count; ++k) {
    result.relay_active_s[k] = device.relay_active_s(k);
    if (const auto* monitor = device.link_monitor(k)) {
      result.link_fault_samples += monitor->unhealthy_samples();
      result.link_fault_episodes += monitor->fault_episodes();
      if (monitor->unhealthy_samples() > 0) {
        result.link_fault_flags |= monitor->flags();
      }
    }
  }
  if (device.measured_lookahead_s() > 0.0) {
    result.usable_lookahead_s = core::usable_lookahead_s(
        device.measured_lookahead_s(), dev_cfg.latency);
  }
  out.final_channels.resize(relay_count, 0);
  out.final_tx_gain_db.resize(relay_count, 0.0);
  for (std::size_t k = 0; k < links.size(); ++k) {
    out.final_channels[k] = links[k]->channel();
    out.final_tx_gain_db[k] = links[k]->tx_gain_db();
  }
  return out;
}

}  // namespace mute::sim
