#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "core/mute_device.hpp"
#include "dsp/fir_filter.hpp"
#include "sim/system.hpp"
#include "sim/worker_pool.hpp"

namespace mute::sim {

/// One immutable tenant input profile: the prepared device-simulation
/// streams (sim::prepare_device_streams — the same code path
/// run_device_simulation uses, which is what makes a single-tenant fleet
/// bit-identical to it) plus a loop point. Any number of tenants may share
/// one profile; the fleet groups tenants of a profile contiguously per
/// work item so their reads walk the same hot stream data.
struct FleetProfile {
  static constexpr std::size_t kNoLoop =
      std::numeric_limits<std::size_t>::max();

  DeviceStreams streams;
  /// Sample index the stream wraps to when a tenant's cursor reaches the
  /// end. kNoLoop = no wrap: the tenant auto-drains at end of stream
  /// (finite-session semantics, run_device_simulation-equivalent). For
  /// steady-state benches set this to `streams.quiet_samples` so the loud
  /// region repeats forever.
  std::size_t loop_start = kNoLoop;

  std::size_t length() const { return streams.d.size(); }
};

/// Build a profile through the shared prep path. `loop_steady_state`
/// points the loop at the start of the loud region (power-up lead-in and
/// calibration play once, then the disturbance repeats indefinitely).
FleetProfile make_fleet_profile(audio::SoundSource& noise,
                                const DeviceSimConfig& config,
                                bool loop_steady_state = false);

struct FleetConfig {
  /// Worker lanes (threads - 1 plus the caller). 0 = default_sweep_workers.
  std::size_t workers = 0;
  /// Tenant slots; one arena each, preallocated at construction.
  std::size_t max_tenants = 64;
  /// Per-tenant arena capacity. Exhaustion aborts loudly (MUTE_ASSERT);
  /// size from TenantStats::arena_high_water.
  std::size_t arena_bytes = std::size_t{4} << 20;
  /// Scheduling quantum: each live tenant advances this many samples per
  /// block, then the pool barrier hands tenants back to the control plane.
  std::size_t block_samples = 256;
  /// Tenants per work item. Batching amortizes the claim/dispatch cost and
  /// keeps same-profile tenants on one lane (schedule order is
  /// profile-major).
  std::size_t batch_tenants = 8;
  /// Admission ramp-in / drain fade, seconds (0 = hard cut). Applied to
  /// the anti-noise injection at the ear, Muter/Drainer-style, so admits
  /// and evictions never click.
  double ramp_s = 0.005;
  /// Never-louder invariant window (PR 2 semantics): residual vs
  /// disturbance energy compared per window of this many seconds.
  double window_s = 0.25;
  /// Invariant grace period after admission: windows ending inside the
  /// first `invariant_grace_s` of a tenant's life are not scored. A
  /// cold-started NLMS transiently overshoots while it converges (a few
  /// dB for a fraction of a second right after calibration + first
  /// selection); the never-louder contract is about the served steady
  /// state and fault handling, not the power-up transient every adaptive
  /// canceller has.
  double invariant_grace_s = 1.5;
};

/// Tenant lifecycle: admit -> ramp-in -> running -> drain -> (evicted).
/// kDrained tenants are evicted (stats snapshotted, arena reset, slot
/// freed) at the next block boundary.
enum class TenantState : std::uint8_t {
  kEmpty,
  kRampIn,
  kRunning,
  kDraining,
  kDrained,
};

struct TenantStats {
  std::uint64_t id = 0;
  TenantState state = TenantState::kEmpty;
  std::size_t profile = 0;
  std::uint64_t samples = 0;  // audio samples processed

  // Windowed never-louder invariant (worst window over the tenant's life;
  // windows where the disturbance is essentially silent — power-up
  // lead-in — are skipped, matching the soak harness semantics).
  double worst_excess_db = -std::numeric_limits<double>::infinity();
  double worst_excess_t_s = -1.0;
  std::size_t windows = 0;

  // Device diagnostics at snapshot time.
  std::size_t handoff_count = 0;
  std::size_t hold_count = 0;

  // Arena accounting (capacity-sizing signal).
  std::size_t arena_used = 0;
  std::size_t arena_high_water = 0;
  std::size_t arena_allocations = 0;
};

/// Long-lived fleet runtime: shards up to `max_tenants` MuteDevice
/// instances across a fixed WorkerPool in `block_samples` quanta.
///
/// Memory: every allocation a tenant makes on a worker lane — device
/// construction, the amortized control events inside tick() (selection
/// rounds, handoffs), teardown — lands in that tenant's private
/// MonotonicArena via ScopedArenaAlloc; the steady state never touches
/// the global heap from worker threads (RtAllocationGuard-clean, counted
/// per block and surfaced by steady_allocations()).
///
/// Scheduling: the live-tenant schedule is profile-major (tenants sharing
/// a profile are contiguous), cut into `batch_tenants` work items, and
/// dispatched through WorkerPool::run once per block — work stealing over
/// items, a barrier at the block boundary. The barrier's happens-before
/// edge is what lets a tenant migrate between lanes across blocks without
/// fences in the audio path.
///
/// Control plane (admit / drain / evict) runs on the caller's thread at
/// block boundaries only, so the whole fleet is deterministic in
/// (profiles, admission sequence, seeds) — bit-identical across worker
/// counts (DESIGN.md §10 contract, §14 architecture).
///
/// Threading contract: all public methods are control-plane — call them
/// from one thread (the one that calls run_blocks).
class FleetRuntime {
 public:
  explicit FleetRuntime(FleetConfig config = {});
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  /// Register an input profile; returns its id. Profiles are immutable
  /// once registered (worker lanes read them concurrently).
  std::size_t add_profile(FleetProfile profile);
  const FleetProfile& profile(std::size_t id) const;
  std::size_t profile_count() const { return profiles_.size(); }

  /// Admit a tenant on `profile_id` with its own device seed; returns the
  /// tenant id. The slot is claimed immediately (throws when the fleet is
  /// at capacity); device construction runs inside the tenant's arena on
  /// the worker pool at the next block boundary. `capture_residual`
  /// records the at-ear residual (first pass of the stream) for
  /// equivalence checks — control-plane memory, not arena.
  std::uint64_t admit(std::size_t profile_id, std::uint64_t seed,
                      bool capture_residual = false);

  /// Begin draining a tenant: anti-noise fades out over ramp_s, then the
  /// tenant is evicted at the following block boundary.
  void drain(std::uint64_t tenant_id);

  /// Advance every live tenant by `blocks` scheduling quanta.
  void run_blocks(std::size_t blocks);

  std::size_t live_tenants() const { return live_.size(); }
  std::size_t capacity() const { return config_.max_tenants; }
  std::size_t block_samples() const { return config_.block_samples; }
  std::size_t worker_count() const { return pool_.worker_count(); }
  std::uint64_t blocks_processed() const { return blocks_processed_; }

  bool is_live(std::uint64_t tenant_id) const {
    return live_.count(tenant_id) != 0;
  }

  /// Stats for a live or evicted tenant (evicted: the eviction snapshot).
  TenantStats stats(std::uint64_t tenant_id) const;

  /// Residual captured for a tenant admitted with capture_residual (valid
  /// while live and after eviction).
  const Signal& captured_residual(std::uint64_t tenant_id) const;

  /// Eviction snapshots, in eviction order.
  const std::vector<TenantStats>& completed() const { return completed_; }

  /// Global-heap allocations observed inside tenant audio blocks on
  /// worker lanes since construction (RtAllocationGuard kCount deltas;
  /// always 0 when arena routing is enabled — admit/evict control-plane
  /// work is deliberately excluded). 0 when the interposition is compiled
  /// out (the guard is inert).
  std::uint64_t steady_allocations() const {
    return steady_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct Tenant {
    std::uint64_t id = 0;
    std::size_t profile = 0;
    TenantState state = TenantState::kEmpty;

    // Arena-backed (constructed on a worker lane inside the tenant's
    // ScopedArenaAlloc; destroyed before arena reset at eviction).
    std::unique_ptr<core::MuteDevice> device;
    std::unique_ptr<dsp::FirFilter> hse;
    Signal feed;

    Sample error = 0.0f;  // device consumes the PREVIOUS tick's ear field
    std::size_t cursor = 0;
    std::uint64_t samples = 0;

    double gain = 1.0;       // admission/drain fade on the anti injection
    double gain_step = 0.0;  // per-sample ramp increment

    std::size_t win_len = 0;
    std::size_t win_skip_until = 0;  // invariant grace, in samples
    std::size_t win_pos = 0;
    double win_res = 0.0;
    double win_dist = 0.0;
    double worst_excess_db = -std::numeric_limits<double>::infinity();
    double worst_excess_t_s = -1.0;
    std::size_t windows = 0;

    bool capture = false;
    Signal captured;  // control-plane memory (preallocated at admit)
  };

  struct PendingAdmit {
    std::size_t slot = 0;
    std::uint64_t seed = 0;
  };

  /// Block boundary control plane: apply drains, evict kDrained tenants,
  /// construct pending admits (in parallel, inside their arenas), rebuild
  /// the profile-major schedule when membership changed.
  void apply_control();
  void evict(std::size_t slot);
  void rebuild_schedule();
  TenantStats snapshot(const Tenant& tenant, std::size_t slot) const;

  /// One tenant, one block: the fleet's RT audio root (rt-lint enforced).
  /// Runs on a worker lane with the tenant's arena scope installed.
  MUTE_RT_SAFE void process_tenant_block(Tenant& tenant);

  /// One work item: a contiguous run of `batch_tenants` schedule entries.
  void process_item(std::size_t item);

  FleetConfig config_;
  std::vector<FleetProfile> profiles_;
  ArenaPool arenas_;
  WorkerPool pool_;

  std::vector<Tenant> tenants_;  // fixed size: max_tenants slots
  std::vector<std::size_t> free_slots_;
  std::unordered_map<std::uint64_t, std::size_t> live_;  // id -> slot
  std::vector<PendingAdmit> pending_admits_;
  std::vector<std::size_t> order_;  // live slots, profile-major
  bool schedule_dirty_ = false;

  std::uint64_t next_id_ = 1;
  std::uint64_t blocks_processed_ = 0;
  std::atomic<std::uint64_t> steady_allocs_{0};

  std::vector<TenantStats> completed_;
  std::unordered_map<std::uint64_t, Signal> completed_residuals_;
};

}  // namespace mute::sim
