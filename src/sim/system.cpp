#include "sim/system.hpp"

#include <algorithm>
#include <cmath>

#include "acoustics/transducer.hpp"
#include "adaptive/sysid.hpp"
#include "adaptive/causal_wiener.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fir_design.hpp"
#include "dsp/delay_line.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/signal_ops.hpp"

namespace mute::sim {

namespace {

using acoustics::Transducer;

Transducer make_mic(HardwareGrade grade, double fs, std::uint64_t seed) {
  switch (grade) {
    case HardwareGrade::kCheap:
      return Transducer::cheap_microphone(fs, seed);
    case HardwareGrade::kPremium:
      return Transducer::premium_microphone(fs, seed);
    case HardwareGrade::kIdeal:
      return Transducer::ideal(seed);
  }
  throw InvariantError("unknown hardware grade");
}

Transducer make_speaker(HardwareGrade grade, double fs, std::uint64_t seed) {
  switch (grade) {
    case HardwareGrade::kCheap:
      return Transducer::cheap_speaker(fs, seed);
    case HardwareGrade::kPremium:
      return Transducer::premium_speaker(fs, seed);
    case HardwareGrade::kIdeal:
      return Transducer::ideal(seed);
  }
  throw InvariantError("unknown hardware grade");
}

}  // namespace

namespace detail {

/// The physically effective secondary path: the acoustic h_se cascaded
/// with the processing-latency budget (ADC + DSP + DAC + speaker rise
/// time) realized as a fractional delay. Keeping the budget inside the
/// plant means a conventional headphone's missed deadline shows up exactly
/// as the paper describes: the anti-noise lags the wavefront.
std::vector<double> effective_secondary_ir(
    const std::vector<double>& h_se, double budget_samples) {
  if (budget_samples <= 1e-9) return h_se;
  const std::size_t frac_taps = 31;
  const auto frac =
      mute::dsp::design_fractional_delay(
          std::min(budget_samples, static_cast<double>(frac_taps - 1)),
          frac_taps);
  // If the budget exceeds the interpolator span, add integer shift.
  std::vector<double> ir = h_se;
  const double over = budget_samples - static_cast<double>(frac_taps - 1);
  if (over > 0) {
    ir = acoustics::shift_ir(ir, static_cast<std::size_t>(std::ceil(over)));
  }
  return acoustics::cascade_ir(ir, frac, ir.size() + frac.size());
}

}  // namespace detail

using detail::effective_secondary_ir;

SystemResult run_anc_simulation(audio::SoundSource& noise,
                                const SystemConfig& config,
                                audio::SoundSource* second_noise) {
  const double fs = config.scene.sample_rate;
  ensure(fs > 0, "scene sample rate must be positive");
  const auto n = static_cast<std::size_t>(config.duration_s * fs);
  ensure(n > 4096, "run too short");

  // --- 1. Room channels ------------------------------------------------
  auto channels = acoustics::build_channels(config.scene);

  // --- 2. Noise record, normalized at the ear --------------------------
  // Every evaluation noise physically enters the room through the ambient
  // playback speaker (Section 5.1's Xtrememac), whose ~90 Hz corner is
  // part of the paper's measured reality.
  noise.reset();
  Signal n_sig = noise.generate(n);
  if (config.ambient_speaker) {
    Transducer ambient = Transducer::ambient_speaker(fs, config.seed + 5);
    n_sig = ambient.apply(n_sig);
  }
  Signal d_ac = channels.h_ne.apply(n_sig);
  Signal x_ac = channels.h_nr.apply(n_sig);

  // Optional second source with its own propagation paths.
  if (second_noise != nullptr && config.second_source_position.has_value()) {
    second_noise->reset();
    Signal n2 = second_noise->generate(n);
    if (config.ambient_speaker) {
      Transducer ambient2 = Transducer::ambient_speaker(fs, config.seed + 7);
      n2 = ambient2.apply(n2);
    }
    const auto h_ne2 =
        acoustics::build_path(config.scene, *config.second_source_position,
                              config.scene.error_mic, "h_ne2");
    const auto h_nr2 =
        acoustics::build_path(config.scene, *config.second_source_position,
                              config.scene.relay_mic, "h_nr2");
    const Signal d2 = h_ne2.apply(n2);
    const Signal x2 = h_nr2.apply(n2);
    for (std::size_t i = 0; i < n; ++i) {
      d_ac[i] = static_cast<Sample>(static_cast<double>(d_ac[i]) +
                                    static_cast<double>(d2[i]));
      x_ac[i] = static_cast<Sample>(static_cast<double>(x_ac[i]) +
                                    static_cast<double>(x2[i]));
    }
  }

  // Head mobility: crossfade the disturbance between the start and end
  // ear positions (a linearly time-varying noise->ear channel).
  if (config.head_drift_m > 0.0) {
    acoustics::Scene moved = config.scene;
    moved.error_mic.y += config.head_drift_m;
    ensure(moved.room.contains(moved.error_mic),
           "head drift leaves the room");
    const auto h_ne_end = acoustics::build_path(
        moved, moved.noise_source, moved.error_mic, "h_ne_end");
    const Signal d_end = h_ne_end.apply(n_sig);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = static_cast<double>(i) / static_cast<double>(n);
      d_ac[i] = static_cast<Sample>((1.0 - a) * static_cast<double>(d_ac[i]) +
                                    a * static_cast<double>(d_end[i]));
    }
  }

  {
    const double current = mute::dsp::rms(d_ac);
    const double g = config.disturbance_rms / std::max(current, 1e-9);
    for (auto& v : d_ac) v = static_cast<Sample>(static_cast<double>(v) * g);
    for (auto& v : x_ac) v = static_cast<Sample>(static_cast<double>(v) * g);
  }

  // --- 3. Reference acquisition: mic -> (FM link) -> injected delay ----
  Transducer ref_mic = make_mic(config.grade, fs, config.seed + 11);
  Signal x_mic = ref_mic.apply(x_ac);

  // Relay input gain staging: the analog front end (and the FM deviation
  // budget) is designed for a nominal microphone level; a relay mounted
  // centimeters from a loud source would otherwise drive the soft-clipper
  // and over-deviate the VCO. Normalizing here models the input trimmer /
  // AGC every real transmitter has. The adaptive filter is scale-
  // invariant in x, so no downstream compensation is needed.
  mute::dsp::normalize_rms(x_mic, 0.1);

  double link_delay_samples = 0.0;
  Signal x_link;
  if (config.wireless_reference && config.use_rf_link) {
    rf::RelayConfig rf_cfg = config.rf;
    rf_cfg.audio_rate = fs;
    rf::RelayLink link(rf_cfg, config.seed + 23);
    link_delay_samples = link.measure_latency_samples();
    x_link = link.process(x_mic);
  } else {
    x_link = std::move(x_mic);
  }

  const auto extra =
      static_cast<std::size_t>(config.extra_reference_delay_s * fs);
  if (extra > 0) {
    Signal delayed = mute::dsp::delay_signal(x_link, extra);
    delayed.resize(n);
    x_link = std::move(delayed);
  }

  // --- 4. Timing budget (Equations 3/4) --------------------------------
  const double advance_samples = channels.direct_ne_samples -
                                 channels.direct_nr_samples -
                                 link_delay_samples -
                                 static_cast<double>(extra);
  const double budget_samples = config.latency.total_s() * fs;
  const std::size_t noncausal = std::min<std::size_t>(
      config.max_noncausal_taps,
      advance_samples > 0 ? static_cast<std::size_t>(advance_samples) : 0);

  // --- 5. Physical anti-noise plant ------------------------------------
  const auto hse_eff =
      effective_secondary_ir(channels.h_se.impulse_response(), budget_samples);
  Transducer speaker = make_speaker(config.grade, fs, config.seed + 31);
  Transducer err_mic = make_mic(config.grade, fs, config.seed + 41);
  mute::dsp::FirFilter hse_stream(hse_eff);

  // Control-bandwidth shaping (see the config comment). The band limit is
  // a property of the *tuning objective*, not a physical output filter: an
  // in-loop low-pass would add hundreds of microseconds of group delay --
  // the very budget the headphone cannot afford. Instead the adaptation
  // error (and the secondary-path estimate feeding the gradient and the
  // warm-start fit) is band-limited, so the controller spends its effort
  // below the cutoff and leakage keeps out-of-band weights near zero.
  auto make_control_lpf = [&]() {
    mute::dsp::BiquadCascade lpf;
    if (config.control_bandwidth_hz > 0) {
      lpf.push_section(mute::dsp::Biquad::lowpass(config.control_bandwidth_hz,
                                                  0.5412, fs));
      lpf.push_section(mute::dsp::Biquad::lowpass(config.control_bandwidth_hz,
                                                  1.3066, fs));
    }
    return lpf;
  };
  // Filtered-error LMS companion: when the control band is limited, the
  // out-of-band disturbance still reaches the error microphone and, fed
  // raw into the LMS, acts as gradient noise several times stronger than
  // the in-band signal — the weights random-walk and can even amplify.
  // Band-limiting the *adaptation* error (and, for gradient consistency,
  // calibrating the secondary-path estimate through the same filter)
  // makes the LMS minimize in-band error only. The recorded physical
  // residual stays unfiltered.
  mute::dsp::BiquadCascade error_lpf = make_control_lpf();

  // --- 6. Secondary-path calibration (quiet room, training noise) ------
  Transducer cal_speaker = make_speaker(config.grade, fs, config.seed + 31);
  Transducer cal_mic = make_mic(config.grade, fs, config.seed + 43);
  mute::dsp::FirFilter cal_hse(hse_eff);
  mute::dsp::BiquadCascade cal_err_lpf = make_control_lpf();
  // When the error returns over RF (tabletop/edge variants), the feedback
  // delay is part of the plant the DSP observes: calibrating through the
  // same delay keeps the filtered-x gradient aligned with the delayed
  // error — without this, the gradient phase error exceeds 90 degrees
  // well inside the audio band and the loop diverges at any step size.
  mute::dsp::DelayLine cal_feedback_delay(config.error_feedback_delay_samples);
  auto plant = [&](std::span<const Sample> stimulus) {
    Signal out(stimulus.size());
    for (std::size_t i = 0; i < stimulus.size(); ++i) {
      const Sample spk = cal_speaker.process(stimulus[i]);
      const Sample at_mic = cal_hse.process(spk);
      out[i] = cal_feedback_delay.process(
          cal_err_lpf.process(cal_mic.process(at_mic)));
    }
    return out;
  };
  const std::size_t sec_taps =
      std::min<std::size_t>(config.secondary_taps, hse_eff.size() + 64);
  auto cal = adaptive::calibrate_path(plant, fs, config.calibration_s,
                                      sec_taps, config.seed + 53);

  // --- 7. LANC controller ----------------------------------------------
  core::LancOptions lanc_opts;
  lanc_opts.fxlms.causal_taps = config.causal_taps;
  lanc_opts.fxlms.noncausal_taps = noncausal;
  lanc_opts.fxlms.mu = config.mu;
  lanc_opts.fxlms.leakage = config.leakage;
  lanc_opts.fxlms.weight_norm_limit = config.weight_norm_limit;
  if (config.link_supervision) {
    // Robust-adaptation companion to the monitor: during the detection
    // latency of a silence/capture fault the reference is nearly dead,
    // and NLMS's normalization would amplify those samples into weight
    // random-walk. Gate updates below ~3e-3 rms per-tap excitation.
    lanc_opts.fxlms.min_excitation = 1e-5;
  }
  lanc_opts.sample_rate = fs;
  lanc_opts.profiling = config.profiling;
  lanc_opts.switch_hysteresis = config.profile_hysteresis;
  core::LancController lanc(cal.impulse_response, lanc_opts);

  // Link supervision: the monitor sits between the received reference and
  // the controller. While it flags the link, the LANC holds (adaptation
  // frozen, output fading to zero) and the engine sees only sanitized
  // samples — demodulator garbage never reaches the adaptive weights.
  std::optional<core::LinkMonitor> link_monitor;
  if (config.link_supervision) {
    link_monitor.emplace(config.link_monitor, fs);
  }
  bool link_ok = true;

  // --- 8. Passive shell on the external-noise path ---------------------
  Signal d_at_ear = d_ac;
  if (config.passive_shell) {
    PassiveShell shell(fs);
    d_at_ear = shell.apply(d_ac);
  }

  // Optional factory-style warm start: record a tuning snippet of the
  // in-band disturbance and the plant-filtered reference (the same u the
  // LMS uses), then solve the exact causal least-squares controller and
  // seed the weights with it. This is the ridge-regularized causal Wiener
  // optimum — what a manufacturer's tuning process produces — and the LMS
  // keeps refining from there.
  if (config.warm_start) {
    const auto tune_len = std::min<std::size_t>(
        static_cast<std::size_t>(config.warm_start_tuning_s * fs), n);
    Transducer tune_mic = make_mic(config.grade, fs, config.seed + 63);
    mute::dsp::BiquadCascade tune_elpf = make_control_lpf();
    Signal d_tune(tune_len);
    for (std::size_t i = 0; i < tune_len; ++i) {
      d_tune[i] = tune_elpf.process(tune_mic.process(d_at_ear[i]));
    }
    mute::dsp::FirFilter u_filter(cal.impulse_response);
    Signal u_tune(tune_len);
    for (std::size_t i = 0; i < tune_len; ++i) {
      u_tune[i] = u_filter.process(x_link[i]);
    }
    // Out-of-band effort penalty: the band-limited objective cannot see
    // controller output above the cutoff, so penalize it explicitly or
    // the fit will park arbitrary gain there and inject noise at the ear.
    Signal effort;
    if (config.control_bandwidth_hz > 0) {
      // Penalty corner sits below the objective cutoff so the two curves
      // overlap: without that overlap the fit injects gain in the valley
      // between objective rolloff and penalty rise.
      const double corner = 0.8 * config.control_bandwidth_hz;
      mute::dsp::BiquadCascade hpf;
      hpf.push_section(mute::dsp::Biquad::highpass(corner, 0.5412, fs));
      hpf.push_section(mute::dsp::Biquad::highpass(corner, 1.3066, fs));
      effort.resize(tune_len);
      for (std::size_t i = 0; i < tune_len; ++i) {
        effort[i] = hpf.process(x_link[i]);
      }
    }
    auto w0 = adaptive::fit_causal_fir(u_tune, d_tune,
                                       noncausal + config.causal_taps,
                                       1e-4, effort,
                                       config.control_effort_weight);
    lanc.engine().set_weights(w0);
  }

  // --- 9. No-ANC disturbance measurement --------------------------------
  // The paper inserts a separate high-quality "measurement microphone" at
  // the ear-drum position of the head model (Section 5.1); disturbance and
  // residual are recorded with it, independent of the device's own
  // (possibly cheap) control microphones. The disturbance baseline is the
  // *open ear* (no device at all), so schemes with a passive shell report
  // shell + ANC combined — the paper's Bose_Overall/MUTE+Passive metric.
  SystemResult result;
  result.sample_rate = fs;
  Transducer meas_mic_resid =
      Transducer::premium_microphone(fs, config.seed + 67);
  {
    Transducer meas_mic = Transducer::premium_microphone(fs, config.seed + 61);
    result.disturbance = meas_mic.apply(d_ac);
  }

  // --- 10. Streaming ANC loop ------------------------------------------
  result.residual.resize(n);
  result.anti_at_ear.resize(n);
  Signal error_queue(config.error_feedback_delay_samples, 0.0f);
  std::size_t eq_pos = 0;
  const bool schedule_mu = config.mu_settle > 0 && config.mu_settle < config.mu;
  for (std::size_t t = 0; t < n; ++t) {
    if (schedule_mu && (t & 0x3F) == 0) {
      const double frac = std::exp(-static_cast<double>(t) /
                                   (config.mu_settle_tau_s * fs));
      lanc.engine().set_mu(config.mu_settle +
                           (config.mu - config.mu_settle) * frac);
    }
    Sample x_t = x_link[t];
    if (link_monitor) {
      x_t = link_monitor->process(x_t);
      const bool ok = link_monitor->healthy();
      if (!ok && link_ok) {
        lanc.hold();
        if (result.first_fault_s < 0) {
          result.first_fault_s = static_cast<double>(t) / fs;
        }
      } else if (ok && !link_ok) {
        lanc.resume();
        result.last_recovery_s = static_cast<double>(t) / fs;
      }
      link_ok = ok;
      if (!ok) result.link_fault_flags |= link_monitor->flags();
    }
    const Sample y = lanc.tick(x_t);
    const Sample spk = speaker.process(y);
    const Sample anti = hse_stream.process(spk);
    const Sample at_ear =
        static_cast<Sample>(static_cast<double>(d_at_ear[t]) +
                            static_cast<double>(anti));
    const Sample e = err_mic.process(at_ear);
    const Sample e_adapt = error_lpf.process(e);
    if (error_queue.empty()) {
      lanc.observe_error(e_adapt);
    } else {
      // Feedback returns over RF with a delay (tabletop/edge variants).
      const Sample delayed = error_queue[eq_pos];
      error_queue[eq_pos] = e_adapt;
      eq_pos = (eq_pos + 1) % error_queue.size();
      lanc.observe_error(delayed);
    }
    result.residual[t] = meas_mic_resid.process(at_ear);
    result.anti_at_ear[t] = anti;
  }
  result.ambient_at_ear = std::move(d_at_ear);

  result.reference = std::move(x_link);
  result.acoustic_lookahead_s = channels.lookahead_s;
  result.link_delay_s = link_delay_samples / fs;
  result.usable_lookahead_s =
      (advance_samples - budget_samples) / fs;
  result.noncausal_taps = noncausal;
  result.calibration_error_db = cal.final_error_db;
  result.profile_switches = lanc.profile_switch_count();
  result.profiles_seen = lanc.profile_count();
  if (link_monitor) {
    result.link_fault_samples = link_monitor->unhealthy_samples();
    result.link_fault_episodes = link_monitor->fault_episodes();
  }
  result.weight_rollbacks = lanc.engine().rollback_count();
  return result;
}

DeviceStreams prepare_device_streams(audio::SoundSource& noise,
                                     const DeviceSimConfig& config) {
  const double fs = config.scene.sample_rate;
  ensure(fs > 0, "scene sample rate must be positive");
  const auto n = static_cast<std::size_t>(config.duration_s * fs);
  ensure(n > 4096, "run too short");

  std::vector<acoustics::Point> relays = config.relay_positions;
  if (relays.empty()) relays.push_back(config.scene.relay_mic);
  const std::size_t relay_count = relays.size();

  // --- 1. Noise record with a quiet power-up lead-in -------------------
  // The device calibrates its secondary path right after power-up; mute
  // the ambient until then (plus margin), like the offline sim's
  // quiet-room calibration phase.
  noise.reset();
  Signal n_sig = noise.generate(n);
  const auto quiet = std::min<std::size_t>(
      n, static_cast<std::size_t>((config.device.calibration_s + 0.1) * fs));
  std::fill(n_sig.begin(),
            n_sig.begin() + static_cast<std::ptrdiff_t>(quiet), 0.0f);

  // --- 2. Acoustic paths: ear + one per relay --------------------------
  const auto h_ne =
      acoustics::build_path(config.scene, config.scene.noise_source,
                            config.scene.error_mic, "h_ne");
  const auto h_se =
      acoustics::build_path(config.scene, config.scene.anti_speaker,
                            config.scene.error_mic, "h_se");
  Signal d_ac = h_ne.apply(n_sig);
  std::vector<Signal> x(relay_count);
  for (std::size_t k = 0; k < relay_count; ++k) {
    const auto h_nr = acoustics::build_path(
        config.scene, config.scene.noise_source, relays[k], "h_nr_k");
    x[k] = h_nr.apply(n_sig);
  }

  // Normalize the ambient level at the ear over the LOUD region (the
  // quiet lead-in would bias a whole-record RMS).
  const auto loud_rms = [&](const Signal& s) {
    double acc = 0.0;
    for (std::size_t i = quiet; i < n; ++i) {
      acc += static_cast<double>(s[i]) * static_cast<double>(s[i]);
    }
    return n > quiet ? std::sqrt(acc / static_cast<double>(n - quiet)) : 0.0;
  };
  const auto scale_to = [&](Signal& s, double target_rms) {
    const double g = target_rms / std::max(loud_rms(s), 1e-9);
    for (auto& v : s) v = static_cast<Sample>(static_cast<double>(v) * g);
  };
  scale_to(d_ac, config.disturbance_rms);
  // Relay input gain staging, exactly as in the single-link sim: each
  // transmitter's trimmer/AGC drives the FM chain at its nominal 0.1 rms
  // (the level the LinkMonitor thresholds are tuned against — an
  // unstaged relay parked next to the source would be loud enough to
  // bury the carrier-loss noise signature). GCC-PHAT and NLMS are
  // scale-invariant in x, so no downstream compensation is needed.
  for (auto& xs : x) scale_to(xs, 0.1);

  // --- 3. Per-relay RF chains (each with its own fault script) ---------
  if (config.use_rf_link) {
    for (std::size_t k = 0; k < relay_count; ++k) {
      rf::RelayConfig rf_cfg = config.rf;
      rf_cfg.audio_rate = fs;
      if (k < config.relay_faults.size()) {
        rf_cfg.faults = config.relay_faults[k];
      }
      rf::RelayLink link(rf_cfg, config.seed + 100 + k);
      x[k] = link.process(x[k]);
    }
  }

  // --- 4. Anti-noise plant (latency budget inside, as in the offline
  //        sim) ---------------------------------------------------------
  DeviceStreams streams;
  streams.device = config.device;
  streams.device.sample_rate = fs;
  streams.device.relay_count = relay_count;
  streams.hse_eff = effective_secondary_ir(
      h_se.impulse_response(), streams.device.latency.total_s() * fs);
  streams.x = std::move(x);
  streams.d = std::move(d_ac);
  streams.quiet_samples = quiet;
  streams.sample_rate = fs;
  return streams;
}

SystemResult run_device_simulation(audio::SoundSource& noise,
                                   const DeviceSimConfig& config) {
  DeviceStreams streams = prepare_device_streams(noise, config);
  const double fs = streams.sample_rate;
  const std::size_t n = streams.d.size();
  const std::size_t relay_count = streams.x.size();
  const std::vector<Signal>& x = streams.x;
  Signal d_ac = std::move(streams.d);

  core::MuteDevice device(streams.device);
  mute::dsp::FirFilter hse_stream(streams.hse_eff);

  // --- 5. Streaming loop -----------------------------------------------
  SystemResult result;
  result.sample_rate = fs;
  result.disturbance = d_ac;
  result.residual.resize(n);
  result.anti_at_ear.resize(n);
  Signal feed(relay_count, 0.0f);
  Sample error = 0.0f;  // device consumes the PREVIOUS tick's ear field
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t k = 0; k < relay_count; ++k) feed[k] = x[k][t];
    const Sample y = device.tick(feed, error);
    const Sample anti = hse_stream.process(y);
    const Sample at_ear =
        static_cast<Sample>(static_cast<double>(d_ac[t]) +
                            static_cast<double>(anti));
    error = at_ear;
    result.residual[t] = at_ear;
    result.anti_at_ear[t] = anti;
  }
  result.ambient_at_ear = std::move(d_ac);

  // --- 6. Diagnostics ---------------------------------------------------
  result.noncausal_taps = device.noncausal_taps();
  result.calibration_error_db = device.calibration().final_error_db;
  result.handoff_count = device.handoff_count();
  result.shadow_handoff_count = device.shadow_handoff_count();
  result.device_hold_count = device.hold_count();
  result.reacquisition_gap_s = device.last_reacquisition_gap_s();
  result.max_reacquisition_gap_s = device.max_reacquisition_gap_s();
  result.relay_active_s.resize(relay_count);
  for (std::size_t k = 0; k < relay_count; ++k) {
    result.relay_active_s[k] = device.relay_active_s(k);
    if (const auto* monitor = device.link_monitor(k)) {
      result.link_fault_samples += monitor->unhealthy_samples();
      result.link_fault_episodes += monitor->fault_episodes();
      if (monitor->unhealthy_samples() > 0) {
        result.link_fault_flags |= monitor->flags();
      }
    }
  }
  if (device.measured_lookahead_s() > 0.0) {
    result.usable_lookahead_s = core::usable_lookahead_s(
        device.measured_lookahead_s(), streams.device.latency);
  }
  return result;
}

}  // namespace mute::sim
