#pragma once

#include <cstdint>
#include <vector>

#include "rf/spectrum_plan.hpp"
#include "sim/system.hpp"

namespace mute::sim {

/// Configuration of the N-relay *mesh* simulation: run_device_simulation's
/// physics plus runtime spectrum supervision. The RF chains persist for
/// the whole run and stream per control block (every stage is
/// streaming-stateful, so with supervision off the result is bit-identical
/// to the whole-record device sim — pinned by tests/sim/mesh_test.cpp),
/// which is what lets a SpectrumPlanner retune links MID-RUN in reaction
/// to link-monitor evidence: jammer-dodging channel hops and TX-power
/// escalation, per relay.
struct MeshSimConfig {
  /// The underlying device-level scenario (scene, relays, faults, device).
  DeviceSimConfig device_sim{};

  /// Monitor-driven spectrum supervision (off = plain device sim physics).
  /// Requires device_sim.device.link_supervision (the planner's evidence
  /// source) and device_sim.use_rf_link (something to retune).
  bool spectrum_supervision = true;
  rf::SpectrumPlannerOptions planner{};
  /// Planner consult cadence; also the RF streaming block (16 ms default —
  /// control-plane latency, far below any fault hold timeout).
  double control_block_s = 0.016;

  /// Tally device ticks that heap-allocate (RtAllocationGuard kCount per
  /// tick). The soak harness turns the tally into an invariant: steady
  /// state must be allocation-free, only control events (selection rounds,
  /// handoffs, planner actions) may allocate.
  bool count_allocations = false;
};

/// Mesh-run outcome: the device-sim result plus spectrum diagnostics.
struct MeshSimResult {
  SystemResult system;

  // Spectrum supervision diagnostics.
  std::size_t hop_count = 0;
  std::size_t tx_step_count = 0;
  std::vector<std::size_t> final_channels;   // per relay
  std::vector<double> final_tx_gain_db;      // per relay

  // Allocation accounting (all zero unless count_allocations was set and
  // the operator-new interposition is compiled in).
  std::uint64_t allocating_ticks = 0;
  std::uint64_t total_ticks = 0;
  bool allocation_tracking = false;  // interposition was actually active
};

/// Run the mesh simulation. Faults whose events pin a jammer to a channel
/// (FaultEvent::jammer_channel >= 0) interact with the planner: relay k
/// starts on channel k (the planner's frequency-division assignment,
/// mirrored into each link), and a hop off the jammed channel drops the
/// interference by the receiver's adjacent-channel rejection.
MeshSimResult run_mesh_simulation(audio::SoundSource& noise,
                                  const MeshSimConfig& config);

}  // namespace mute::sim
