#include "sim/parallel_sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace mute::sim {

std::size_t default_sweep_workers() {
  if (const char* env = std::getenv("MUTE_SWEEP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_index(std::size_t count, std::size_t workers,
                        const std::function<void(std::size_t)>& body) {
  ensure(body != nullptr, "parallel_for_index requires a body");
  if (count == 0) return;
  if (workers == 0) workers = default_sweep_workers();
  if (workers > count) workers = count;

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_acquire)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the calling thread is worker 0
  for (auto& t : pool) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace mute::sim
