#include "sim/parallel_sweep.hpp"

#include <cstdlib>
#include <thread>

#include "sim/worker_pool.hpp"

namespace mute::sim {

std::size_t default_sweep_workers() {
  if (const char* env = std::getenv("MUTE_SWEEP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_index(std::size_t count, std::size_t workers,
                        FunctionRef<void(std::size_t)> body) {
  if (count == 0) return;
  if (workers == 0) workers = default_sweep_workers();
  if (workers > count) workers = count;

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  WorkerPool pool(workers);  // transient: workers-1 threads for this sweep
  pool.run(count, body);
}

}  // namespace mute::sim
