#include "sim/passive.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::sim {

using mute::dsp::Biquad;

PassiveShell::PassiveShell(double sample_rate)
    : fs_(sample_rate), broadband_gain_(db_to_amplitude(-4.5)) {
  ensure(sample_rate > 0, "sample rate must be positive");
  // Stacked high-shelf cuts: each adds attenuation above its corner, so
  // the total loss grows from ~4.5 dB at LF to ~22 dB at 4 kHz — tuned so
  // a Bose_Overall (active LF + shell HF) run averages near the paper's
  // -15 dB.
  shelves_.push_section(Biquad::high_shelf(450.0, 0.7, -9.0, sample_rate));
  shelves_.push_section(Biquad::high_shelf(1800.0, 0.7, -9.0, sample_rate));
}

Signal PassiveShell::apply(std::span<const Sample> outside) {
  Signal out(outside.size());
  for (std::size_t i = 0; i < outside.size(); ++i) {
    out[i] = process(outside[i]);
  }
  return out;
}

Sample PassiveShell::process(Sample x) {
  return static_cast<Sample>(broadband_gain_ *
                             static_cast<double>(shelves_.process(x)));
}

void PassiveShell::reset() { shelves_.reset(); }

double PassiveShell::insertion_loss_db(double freq_hz) const {
  const double mag =
      broadband_gain_ * std::abs(shelves_.response(freq_hz, fs_));
  return -amplitude_to_db(mag);
}

}  // namespace mute::sim
