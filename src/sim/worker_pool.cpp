#include "sim/worker_pool.hpp"

#include "common/error.hpp"
#include "sim/parallel_sweep.hpp"

namespace mute::sim {

WorkerPool::WorkerPool(std::size_t workers)
    : workers_(workers == 0 ? default_sweep_workers() : workers) {
  if (workers_ < 1) workers_ = 1;
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::drain(const FunctionRef<void(std::size_t)>& body) {
  for (;;) {
    if (failed_.load(std::memory_order_acquire)) return;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      body(i);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_m_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_release);
      return;
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::optional<FunctionRef<void(std::size_t)>> body;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      body.emplace(*body_);  // two-word copy under the lock, no allocation
    }
    drain(*body);
    {
      const std::lock_guard<std::mutex> lock(m_);
      if (--busy_ == 0) cv_done_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t count,
                     FunctionRef<void(std::size_t)> body) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    // Inline fast path: no fences, no wakeups; used by 1-worker pools and
    // single-item jobs (the calling thread would claim everything anyway).
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(m_);
    ensure(body_ == std::nullopt, "WorkerPool::run is not reentrant");
    body_.emplace(body);
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    busy_ = threads_.size();
    ++epoch_;
  }
  cv_work_.notify_all();
  drain(body);  // the calling thread is a full worker
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return busy_ == 0; });
    body_.reset();
  }
  if (first_error_ != nullptr) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace mute::sim
