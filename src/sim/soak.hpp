#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/mesh.hpp"
#include "sim/scenarios.hpp"

namespace mute::sim {

/// Deterministic chaos-soak harness (tentpole, part 3): drive randomized
/// fault-episode schedules across an N-relay mesh and assert the system's
/// survival invariants. Everything is derived from one seed — a failing
/// soak reproduces exactly from its (seed, config) pair.

/// One randomized fault episode applied to one relay.
struct SoakEpisode {
  std::size_t relay = 0;
  FaultScenario kind = FaultScenario::kNone;
  double start_s = 0.0;
  double duration_s = 0.0;
  int jammer_channel = -1;  // >= 0: channel-pinned jammer (planner can dodge)
};

struct SoakConfig {
  std::size_t relay_count = 4;   // 2..8 supported
  double duration_s = 12.0;
  std::uint64_t seed = 1;
  /// Randomized episodes over the post-calibration window. The generator
  /// always leaves at least one relay un-faulted at any instant, so a
  /// qualified standby exists and "bounded re-acquisition" is a fair ask.
  std::size_t episode_count = 5;
  bool spectrum_supervision = true;
  bool count_allocations = true;

  // --- Invariant bounds -------------------------------------------------
  /// Never louder than passive: every `window_s` residual window must stay
  /// below the matching disturbance window + `louder_margin_db`.
  double window_s = 0.25;
  double louder_margin_db = 3.0;
  /// Longest tolerated out-of-kRunning gap. Generous against the warm
  /// (~0.33 s) path: chaos schedules can fault the standby mid-handoff.
  double max_gap_bound_s = 1.0;
  /// Steady state must be allocation-free: at most this fraction of device
  /// ticks may heap-allocate (control events — selection rounds, handoffs —
  /// are the only legitimate allocators). Checked only when the
  /// operator-new interposition is compiled in.
  double alloc_tick_fraction = 1e-3;
};

/// Outcome of one soak run, with per-invariant verdicts.
struct SoakReport {
  std::uint64_t seed = 0;
  std::size_t relay_count = 0;
  double duration_s = 0.0;
  std::vector<SoakEpisode> episodes;

  // Invariant 1: never meaningfully louder than passive.
  bool never_louder = true;
  double worst_window_excess_db = -1e9;  // max over windows of (res - dist)
  double worst_window_t_s = 0.0;

  // Invariant 2: bounded re-acquisition.
  bool gap_bounded = true;
  double max_reacquisition_gap_s = 0.0;

  // Invariant 3: allocation-free steady state.
  bool allocation_clean = true;
  bool allocation_tracked = false;  // false => invariant vacuously true
  std::uint64_t allocating_ticks = 0;
  std::uint64_t total_ticks = 0;

  // Context for the report artifact.
  std::size_t handoff_count = 0;
  std::size_t shadow_handoff_count = 0;
  std::size_t hold_count = 0;
  std::size_t hop_count = 0;
  std::size_t tx_step_count = 0;
  std::size_t link_fault_episodes = 0;

  bool passed() const { return never_louder && gap_bounded && allocation_clean; }
};

/// Generate the deterministic episode schedule for (config.seed). Exposed
/// for tests: the schedule is a pure function of the config.
std::vector<SoakEpisode> make_soak_episodes(const SoakConfig& config);

/// Run one chaos soak: build the mesh scenario, inject the episode
/// schedule, run the mesh simulation, and evaluate the invariants.
SoakReport run_chaos_soak(const SoakConfig& config);

/// Serialize reports as a JSON array (the CI soak artifact).
std::string soak_reports_json(const std::vector<SoakReport>& reports);

}  // namespace mute::sim
