#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "adaptive/sysid.hpp"
#include "audio/generators.hpp"
#include "core/lanc.hpp"
#include "core/link_monitor.hpp"
#include "core/relay_select.hpp"
#include "core/timing.hpp"

namespace mute::core {

/// Configuration of a streaming MUTE ear device.
struct MuteDeviceConfig {
  double sample_rate = kDefaultSampleRate;
  std::size_t relay_count = 1;

  // Power-up secondary-path calibration (plays training noise).
  double calibration_s = 2.0;
  double training_rms = 0.1;
  std::size_t secondary_taps = 256;

  // Relay selection (Section 4.2): listen this long before choosing, and
  // re-evaluate on the same cadence while running.
  double selection_period_s = 1.0;
  RelaySelectorOptions selection{};

  // LANC configuration. `fxlms.noncausal_taps` is ignored: N is derived
  // from the measured lookahead of the chosen relay minus the latency
  // budget, capped by `max_noncausal_taps`.
  LancOptions lanc{};
  std::size_t max_noncausal_taps = 192;
  LatencyBudget latency = LatencyBudget::mute_ear_device();

  // Link supervision: one LinkMonitor per relay watches the forwarded
  // reference. When the active relay's link is flagged the device enters
  // kHolding (adaptation frozen, anti-noise faded out); if the link stays
  // bad past `hold_timeout_s` the association is dropped and the device
  // re-listens.
  bool link_supervision = true;
  LinkMonitorOptions link_monitor{};
  double hold_timeout_s = 1.5;
  // FxLMS divergence guard installed into the LANC engine (see
  // FxlmsOptions::weight_norm_limit); 0 disables.
  double weight_norm_limit = 100.0;

  std::uint64_t seed = 1;
};

/// The streaming ear device: the online counterpart of the offline
/// `sim::run_anc_simulation`. Drive it one audio tick at a time:
///
///   Sample speaker = device.tick(relay_samples, error_mic_sample);
///
/// where `relay_samples` holds the newest forwarded sample from each
/// relay and `error_mic_sample` is the microphone's reading of the
/// PREVIOUS tick's acoustic field (the natural causal ordering of real
/// hardware). The device handles its own lifecycle:
///
///   kCalibrating  — plays training noise, identifies the secondary path;
///   kListening    — silent; GCC-PHAT-correlates every relay against the
///                   error mic until one offers positive lookahead;
///   kRunning      — LANC on the chosen relay; keeps re-running selection
///                   each period and re-arms if the relay changes or loses
///                   its lookahead (the paper's "nudge the user" case maps
///                   to a return to kListening);
///   kHolding      — the active relay's link is flagged (dropout, garbage,
///                   silence): adaptation frozen, anti-noise faded to zero
///                   (never louder than passive). Resumes kRunning if the
///                   link recovers within `hold_timeout_s`, else drops the
///                   association and returns to kListening to re-acquire.
class MuteDevice {
 public:
  enum class State { kCalibrating, kListening, kRunning, kHolding };

  explicit MuteDevice(MuteDeviceConfig config);

  /// One audio tick; returns the sample for the anti-noise speaker.
  Sample tick(std::span<const Sample> relay_samples, Sample error_sample);

  State state() const { return state_; }
  std::optional<std::size_t> active_relay() const { return active_relay_; }

  /// Measured lookahead of the active relay (seconds; 0 before selection).
  double measured_lookahead_s() const { return lookahead_s_; }

  /// Non-causal taps of the running LANC engine (0 before selection).
  std::size_t noncausal_taps() const;

  /// Secondary-path calibration result (empty before calibration ends).
  const adaptive::SysIdResult& calibration() const { return calibration_; }

  /// Per-relay link monitor (nullptr when link supervision is off).
  const LinkMonitor* link_monitor(std::size_t relay) const {
    return relay < monitors_.size() ? &monitors_[relay] : nullptr;
  }
  /// Times the device entered kHolding.
  std::size_t hold_count() const { return hold_count_; }

  const MuteDeviceConfig& config() const { return config_; }

 private:
  void finish_calibration();
  void handle_selection(const RelaySelection& selection);

  MuteDeviceConfig config_;
  State state_ = State::kCalibrating;

  // Calibration machinery.
  audio::WhiteNoiseSource training_;
  Signal stimulus_log_;
  Signal response_log_;
  Sample last_training_sample_ = 0.0f;
  adaptive::SysIdResult calibration_{};

  // Selection machinery.
  RelaySelector selector_;
  std::optional<std::size_t> active_relay_;
  double lookahead_s_ = 0.0;

  // The running controller (created once a relay is chosen).
  std::optional<LancController> lanc_;

  // Link supervision (empty when disabled). `sanitized_` is the per-tick
  // squelched copy of the relay feed, preallocated so tick() never
  // allocates for it.
  std::vector<LinkMonitor> monitors_;
  Signal sanitized_;
  std::size_t hold_timeout_samples_ = 0;
  std::size_t hold_elapsed_ = 0;
  std::size_t hold_count_ = 0;

  // Re-selection hysteresis: while cancellation is active the error mic is
  // (by design!) quiet, so GCC-PHAT rounds lose confidence or mis-peak.
  // A low-confidence round is treated as evidence that cancellation works;
  // only two consecutive confident adverse rounds change the association.
  std::size_t adverse_rounds_ = 0;
};

}  // namespace mute::core
