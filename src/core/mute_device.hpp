#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "adaptive/sysid.hpp"
#include "audio/generators.hpp"
#include "common/rt_annotations.hpp"
#include "core/lanc.hpp"
#include "core/link_monitor.hpp"
#include "core/relay_select.hpp"
#include "core/shadow_filter.hpp"
#include "core/timing.hpp"

namespace mute::core {

/// Configuration of a streaming MUTE ear device.
struct MuteDeviceConfig {
  double sample_rate = kDefaultSampleRate;
  std::size_t relay_count = 1;

  // Power-up secondary-path calibration (plays training noise).
  double calibration_s = 2.0;
  double training_rms = 0.1;
  std::size_t secondary_taps = 256;

  // Relay selection (Section 4.2): listen this long before choosing, and
  // re-evaluate on the same cadence while running.
  double selection_period_s = 1.0;
  RelaySelectorOptions selection{};

  // LANC configuration. `fxlms.noncausal_taps` is ignored: N is derived
  // from the measured lookahead of the chosen relay minus the latency
  // budget, capped by `max_noncausal_taps`.
  LancOptions lanc{};
  std::size_t max_noncausal_taps = 192;
  LatencyBudget latency = LatencyBudget::mute_ear_device();

  // Link supervision: one LinkMonitor per relay watches the forwarded
  // reference. When the active relay's link is flagged the device enters
  // kHolding (adaptation frozen, anti-noise faded out); if the link stays
  // bad past `hold_timeout_s` the association is handed to a warm standby
  // (see `enable_handoff`) or dropped back to kListening.
  bool link_supervision = true;
  LinkMonitorOptions link_monitor{};
  double hold_timeout_s = 1.5;
  // FxLMS divergence guard installed into the LANC engine (see
  // FxlmsOptions::weight_norm_limit); 0 disables.
  double weight_norm_limit = 100.0;

  // Warm-standby failover: keep every confident positive-lookahead relay
  // from each selection round as a ranked standby list, and on failure
  // re-target the association to the runner-up (State::kHandoff) instead
  // of resetting to kListening. Disable to recover the drop-and-relisten
  // behaviour — bench/failover compares the two policies head to head.
  bool enable_handoff = true;
  // Standby measurements stay eligible this long after the round that
  // produced them. Confident rounds only happen while the ear hears the
  // full ambient field (kListening / kHolding — during cancellation the
  // residual is deliberately quiet), so the list is refreshed rarely and
  // must survive a long active stretch. A generous age only risks a stale
  // *lookahead estimate*: link health is gated in real time by the
  // per-relay monitors, and a handoff to a relay whose geometry changed
  // is corrected by the normal adverse-evidence path afterwards.
  double standby_max_age_s = 10.0;

  // Shadow pre-convergence (tentpole): while kRunning, the best-scored
  // standby relay's stream trickle-adapts a background filter predicting
  // the primary's speaker feed (see core/shadow_filter.hpp), so a handoff
  // to that relay installs a converged filter + primed history instead of
  // paying the ~total_taps history-refill gap.
  bool enable_shadow = true;
  ShadowFilterOptions shadow{};
  // With a converged shadow standing by, a flagged link only gets this
  // long to recover before the association hands over — the full
  // hold_timeout_s wait exists to amortize a COLD re-acquisition, and a
  // shadow handoff is nearly free.
  double shadow_fast_handoff_s = 0.02;

  std::uint64_t seed = 1;
};

/// The streaming ear device: the online counterpart of the offline
/// `sim::run_anc_simulation`. Drive it one audio tick at a time:
///
///   Sample speaker = device.tick(relay_samples, error_mic_sample);
///
/// where `relay_samples` holds the newest forwarded sample from each
/// relay and `error_mic_sample` is the microphone's reading of the
/// PREVIOUS tick's acoustic field (the natural causal ordering of real
/// hardware). The device handles its own lifecycle:
///
///   kCalibrating  — plays training noise, identifies the secondary path;
///   kListening    — silent; GCC-PHAT-correlates every relay against the
///                   error mic until one offers positive lookahead;
///   kRunning      — LANC on the chosen relay; keeps re-running selection
///                   each period and re-arms on sustained adverse evidence
///                   (two confident rounds of the SAME claim);
///   kHolding      — the active relay's link is flagged (dropout, garbage,
///                   silence): adaptation frozen, anti-noise faded to zero
///                   (never louder than passive). Resumes kRunning if the
///                   link recovers within `hold_timeout_s`; on timeout the
///                   association is handed to a warm standby, or dropped
///                   back to kListening when none qualifies;
///   kHandoff      — the association was just re-targeted to a standby
///                   relay: the controller keeps its converged weights
///                   (remapped to the new lookahead window, preloaded from
///                   the per-(relay, profile) cache when available) and
///                   stays held for `total_taps` ticks while the engine
///                   history refills with the new relay's stream, then
///                   fades back in and returns to kRunning.
class MuteDevice {
 public:
  enum class State { kCalibrating, kListening, kRunning, kHolding, kHandoff };

  explicit MuteDevice(MuteDeviceConfig config);

  /// One audio tick; returns the sample for the anti-noise speaker.
  MUTE_RT_SAFE Sample tick(std::span<const Sample> relay_samples,
                           Sample error_sample);

  State state() const { return state_; }
  std::optional<std::size_t> active_relay() const { return active_relay_; }

  /// Measured lookahead of the active relay (seconds; 0 before selection).
  double measured_lookahead_s() const { return lookahead_s_; }

  /// Non-causal taps of the running LANC engine (0 before selection).
  std::size_t noncausal_taps() const;

  /// Secondary-path calibration result (empty before calibration ends).
  const adaptive::SysIdResult& calibration() const { return calibration_; }

  /// Per-relay link monitor (nullptr when link supervision is off).
  const LinkMonitor* link_monitor(std::size_t relay) const {
    return relay < monitors_.size() ? &monitors_[relay] : nullptr;
  }
  /// Times the device entered kHolding.
  std::size_t hold_count() const { return hold_count_; }

  // --- Failover diagnostics -------------------------------------------
  /// Times the association was re-targeted via State::kHandoff.
  std::size_t handoff_count() const { return handoff_count_; }
  /// Duration of the most recent re-acquisition gap: seconds from leaving
  /// kRunning to re-entering it (0.0 until the first such round trip).
  double last_reacquisition_gap_s() const { return last_gap_s_; }
  /// Longest re-acquisition gap seen over the device's lifetime — the
  /// quantity the chaos-soak invariants bound.
  double max_reacquisition_gap_s() const { return max_gap_s_; }
  /// Handoffs that installed a shadow-pre-converged filter (subset of
  /// handoff_count()).
  std::size_t shadow_handoff_count() const { return shadow_handoff_count_; }
  /// The shadow pre-convergence filter (nullptr before the first
  /// association or when disabled).
  const ShadowFilter* shadow() const {
    return shadow_.has_value() ? &*shadow_ : nullptr;
  }
  /// Seconds each relay has spent as the active kRunning association.
  double relay_active_s(std::size_t relay) const;
  /// Current warm-standby ranking (descending lookahead; empty when no
  /// recent round qualified anyone or the list aged out).
  std::span<const RelayMeasurement> standby() const { return standby_; }

  const MuteDeviceConfig& config() const { return config_; }

 private:
  enum class AdverseCause { kNone, kNoChosen, kRivalWon };

  Sample tick_impl(std::span<const Sample> relay_samples,
                   Sample error_sample);
  MUTE_RT_ESCAPE(
      "end of calibration: sysid batch solve + LANC construction, runs "
      "exactly once per power-up, not per sample; DESIGN.md \u00a711")
  void finish_calibration();
  MUTE_RT_ESCAPE(
      "selection-round landing: runs once per selection_period_s (1 s "
      "default), re-ranks relays and may re-associate; DESIGN.md \u00a711")
  void handle_selection(const RelaySelection& selection);
  MUTE_RT_ESCAPE(
      "standby-list refresh inside a selection round (copies the ranked "
      "vector); same once-per-period cadence as handle_selection")
  void update_standby(const RelaySelection& selection);
  std::optional<RelayMeasurement> pick_standby() const;
  bool relay_healthy(std::size_t relay) const;
  MUTE_RT_ESCAPE(
      "association transition (new/retargeted LANC controller); runs on "
      "state changes only, paired with hold/fade on the audio side")
  void associate(const RelayMeasurement& chosen);
  MUTE_RT_ESCAPE(
      "warm-standby handoff transition: cache store/load + weight remap, "
      "runs once per failover, not per sample")
  void begin_handoff(const RelayMeasurement& target);
  MUTE_RT_ESCAPE(
      "association teardown on hold timeout / sustained adverse evidence; "
      "runs on state transitions only, not per sample")
  void drop_association();
  bool note_adverse_round(AdverseCause cause, std::size_t rival);
  void reset_adverse();
  MUTE_RT_ESCAPE(
      "shadow target (re)assignment inside a selection round; allocates "
      "only when the target actually changes, same cadence as "
      "update_standby")
  void refresh_shadow_target();
  MUTE_RT_SAFE void shadow_observe(std::span<const Sample> feed, Sample y);
  MUTE_RT_SAFE void shadow_track(std::span<const Sample> feed);
  /// The standby-list measurement for the shadow's converged target, if it
  /// is still ranked, healthy, and not the active relay.
  std::optional<RelayMeasurement> shadow_handoff_candidate() const;
  std::size_t taps_for_lookahead(double lookahead_s) const;

  MuteDeviceConfig config_;
  State state_ = State::kCalibrating;

  // Calibration machinery. `cal_scratch_` is the one-sample render target
  // for the training source, preallocated so the calibration tick never
  // heap-allocates (it runs on the audio thread like every other state).
  audio::WhiteNoiseSource training_;
  Signal stimulus_log_;
  Signal response_log_;
  Signal cal_scratch_;
  Sample last_training_sample_ = 0.0f;
  adaptive::SysIdResult calibration_{};

  // Selection machinery.
  RelaySelector selector_;
  std::optional<std::size_t> active_relay_;
  double lookahead_s_ = 0.0;
  // Relay lead (seconds) the CURRENT engine weights converged at. Unlike
  // lookahead_s_ it survives drop_association(), because the weights do
  // too — a later warm re-association needs it to compute the remap shift.
  double weights_lookahead_s_ = 0.0;

  // The running controller. Created at the first association and kept for
  // the life of the device afterwards: it owns the per-(relay, profile)
  // filter cache that makes re-association and handoff warm.
  std::optional<LancController> lanc_;

  // Link supervision (empty when disabled). `sanitized_` is the per-tick
  // squelched copy of the relay feed, preallocated so tick() never
  // allocates for it.
  std::vector<LinkMonitor> monitors_;
  Signal sanitized_;
  std::size_t hold_timeout_samples_ = 0;
  std::size_t hold_elapsed_ = 0;
  std::size_t hold_count_ = 0;

  // Warm-standby state (tentpole). The list is the `ranked` output of the
  // last selection round that qualified anyone; it ages out after
  // standby_max_age_samples_ ticks. `handoff_settle_` counts the held
  // ticks remaining before a handoff fades back in.
  std::vector<RelayMeasurement> standby_;
  std::size_t standby_age_ = 0;
  std::size_t standby_max_age_samples_ = 0;
  std::size_t handoff_settle_ = 0;

  // Shadow pre-convergence (tentpole). Created with the first association
  // (it mirrors the LANC engine's FxlmsOptions); lives for the device.
  std::optional<ShadowFilter> shadow_;
  std::size_t shadow_fast_samples_ = 0;
  std::size_t shadow_handoff_count_ = 0;

  // Re-selection hysteresis: while cancellation is active the error mic is
  // (by design!) quiet, so GCC-PHAT rounds lose confidence or mis-peak.
  // A low-confidence round is treated as evidence that cancellation works;
  // only two consecutive confident rounds making the SAME adverse claim
  // (same cause — and for kRivalWon, the same rival) change the
  // association. Pooling different claims in one counter let a "nobody
  // qualified" round plus a "relay B won" round evict a healthy relay.
  AdverseCause adverse_cause_ = AdverseCause::kNone;
  std::size_t adverse_rival_ = 0;
  std::size_t adverse_rounds_ = 0;

  // Diagnostics (maintained by the tick() wrapper, allocation-free).
  std::size_t handoff_count_ = 0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t gap_start_tick_ = 0;
  double last_gap_s_ = 0.0;
  double max_gap_s_ = 0.0;
  std::vector<std::uint64_t> relay_active_ticks_;
};

}  // namespace mute::core
