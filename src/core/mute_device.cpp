#include "core/mute_device.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mute::core {

MuteDevice::MuteDevice(MuteDeviceConfig config)
    : config_(config),
      training_(config.training_rms, config.seed + 17),
      selector_(config.relay_count, config.sample_rate,
                config.selection_period_s, config.selection) {
  ensure(config.sample_rate > 0, "sample rate must be positive");
  ensure(config.relay_count >= 1, "need at least one relay");
  ensure(config.calibration_s > 0, "calibration duration must be positive");
  ensure(config.hold_timeout_s > 0, "hold timeout must be positive");
  ensure(config.standby_max_age_s > 0, "standby max age must be positive");
  const auto cal_samples =
      static_cast<std::size_t>(config.calibration_s * config.sample_rate);
  stimulus_log_.reserve(cal_samples);
  response_log_.reserve(cal_samples);
  cal_scratch_.assign(1, 0.0f);
  if (config.link_supervision) {
    monitors_.reserve(config.relay_count);
    for (std::size_t k = 0; k < config.relay_count; ++k) {
      monitors_.emplace_back(config.link_monitor, config.sample_rate);
    }
    sanitized_.assign(config.relay_count, 0.0f);
  }
  ensure(config.shadow_fast_handoff_s >= 0,
         "shadow fast-handoff wait must be >= 0");
  hold_timeout_samples_ = static_cast<std::size_t>(
      config.hold_timeout_s * config.sample_rate);
  shadow_fast_samples_ = static_cast<std::size_t>(
      config.shadow_fast_handoff_s * config.sample_rate);
  standby_max_age_samples_ = static_cast<std::size_t>(
      config.standby_max_age_s * config.sample_rate);
  standby_.reserve(config.relay_count);
  relay_active_ticks_.assign(config.relay_count, 0);
}

Sample MuteDevice::tick(std::span<const Sample> relay_samples,
                        Sample error_sample) {
  const State before = state_;
  const Sample y = tick_impl(relay_samples, error_sample);

  // Failover diagnostics and standby aging. Bookkeeping only — no
  // allocation (the clear() below releases nothing; capacity is kept).
  ++tick_count_;
  if (state_ == State::kRunning && active_relay_.has_value()) {
    ++relay_active_ticks_[*active_relay_];
  }
  if (before == State::kRunning && state_ != State::kRunning) {
    gap_start_tick_ = tick_count_;
  } else if (before != State::kRunning && state_ == State::kRunning &&
             gap_start_tick_ > 0) {
    last_gap_s_ = static_cast<double>(tick_count_ - gap_start_tick_) /
                  config_.sample_rate;
    max_gap_s_ = std::max(max_gap_s_, last_gap_s_);
  }
  if (!standby_.empty() && ++standby_age_ > standby_max_age_samples_) {
    standby_.clear();  // measurements this old are guesses, not a ranking
  }
  return y;
}

Sample MuteDevice::tick_impl(std::span<const Sample> relay_samples,
                             Sample error_sample) {
  ensure(relay_samples.size() == config_.relay_count,
         "one sample per relay required");

  // Link supervision runs in every state so the monitors' baselines stay
  // warm. Everything downstream (selector, LANC) consumes the sanitized
  // feed: a flagged relay contributes zeros, so demodulator garbage can
  // neither steer GCC-PHAT nor reach the adaptive engine (whose contract
  // macros would abort on NaN).
  std::span<const Sample> feed = relay_samples;
  if (!monitors_.empty()) {
    for (std::size_t k = 0; k < monitors_.size(); ++k) {
      sanitized_[k] = monitors_[k].process(relay_samples[k]);
    }
    feed = sanitized_;
  }

  switch (state_) {
    case State::kCalibrating: {
      // The error mic currently hears the previous training sample through
      // the secondary path: log the (stimulus, response) pair.
      if (!stimulus_log_.empty() || last_training_sample_ != 0.0f) {
        stimulus_log_.push_back(last_training_sample_);
        response_log_.push_back(error_sample);
      }
      const auto cal_samples = static_cast<std::size_t>(
          config_.calibration_s * config_.sample_rate);
      if (stimulus_log_.size() >= cal_samples) {
        finish_calibration();
        return 0.0f;
      }
      training_.render(cal_scratch_);
      last_training_sample_ = cal_scratch_[0];
      return last_training_sample_;
    }

    case State::kListening: {
      if (auto selection = selector_.push(feed, error_sample)) {
        handle_selection(*selection);
      }
      return 0.0f;
    }

    case State::kRunning: {
      // Keep the periodic selection running (source may move).
      if (auto selection = selector_.push(feed, error_sample)) {
        handle_selection(*selection);
        if (state_ == State::kHandoff) {
          // The round just handed the association over: the controller is
          // already re-targeted and held, so tick it on the NEW relay's
          // feed — the fade-out and history refill start this sample.
          return lanc_->tick(feed[*active_relay_]);
        }
        if (state_ != State::kRunning) return 0.0f;
      }
      if (!monitors_.empty() && !monitors_[*active_relay_].healthy()) {
        // The active link just went bad: freeze adaptation and fade the
        // anti-noise out. The association is kept for hold_timeout_s — a
        // brief dropout should not cost a full re-acquisition.
        state_ = State::kHolding;
        hold_elapsed_ = 0;
        ++hold_count_;
        lanc_->hold();
        return lanc_->tick(feed[*active_relay_]);
      }
      // `error_sample` is the microphone's reading of the PREVIOUS
      // tick's field: adapt BEFORE pushing the new reference so the
      // filtered-x history still lines up with it. Adapting after the
      // push misaligns the gradient by one sample — 180 degrees of phase
      // at Nyquist, enough to destabilize the loop.
      lanc_->observe_error(error_sample);
      const Sample y = lanc_->tick(feed[*active_relay_]);
      // Steady running is the only state whose speaker feed is a
      // trainable shadow target (elsewhere it is fading or refilling).
      shadow_observe(feed, y);
      return y;
    }

    case State::kHolding: {
      // Keep the shadow's reference window contiguous with the live
      // stream (no adaptation: the fading output is not a target). An
      // install during this hold must be sample-aligned with the feed.
      shadow_track(feed);
      // Selection keeps buffering on the sanitized feeds (the dead relay
      // reads as silence and cannot win a round). With the anti-noise
      // faded out the ear hears the full ambient field, so rounds that
      // complete DURING the hold are trustworthy: they refresh the
      // standby list, and two confident wins by the same different,
      // healthy relay hand the association over before the hold even
      // times out.
      if (auto selection = selector_.push(feed, error_sample)) {
        update_standby(*selection);
        if (config_.enable_handoff && selection->chosen.has_value()) {
          const auto& rival = *selection->chosen;
          if (rival.relay_index != *active_relay_ &&
              relay_healthy(rival.relay_index) &&
              note_adverse_round(AdverseCause::kRivalWon,
                                 rival.relay_index)) {
            begin_handoff(rival);
            return lanc_->tick(feed[*active_relay_]);
          }
        }
      }
      if (monitors_[*active_relay_].healthy()) {
        // Link is back: unfreeze and fade the anti-noise back in. The
        // frozen weights are the pre-fault filter, so cancellation
        // recovers as fast as the engine's history refills. This tick's
        // error sample reads the PREVIOUS tick's field — exactly what
        // observe_error expects — so feed it to the resumed engine
        // rather than dropping one valid adaptation step per recovery.
        lanc_->resume();
        state_ = State::kRunning;
        reset_adverse();
        lanc_->observe_error(error_sample);
        return lanc_->tick(feed[*active_relay_]);
      }
      ++hold_elapsed_;
      if (config_.enable_handoff && hold_elapsed_ >= shadow_fast_samples_) {
        // Shadow fast path: with a converged filter already standing by
        // for a ranked, healthy standby, waiting out hold_timeout_s buys
        // nothing — that wait amortizes a COLD re-acquisition. Give the
        // link shadow_fast_handoff_s to shake off a micro-dropout, then
        // hand over.
        if (const auto target = shadow_handoff_candidate()) {
          begin_handoff(*target);
          return lanc_->tick(feed[*active_relay_]);
        }
      }
      if (hold_elapsed_ >= hold_timeout_samples_) {
        // The link did not come back. A warm standby (confident positive
        // lookahead, link currently healthy) takes over without a
        // kListening round trip; with none — or handoff disabled — drop
        // the association and re-listen (the paper's "nudge the user"
        // case: another relay may win the next selection round).
        if (config_.enable_handoff) {
          if (const auto standby = pick_standby()) {
            begin_handoff(*standby);
            return lanc_->tick(feed[*active_relay_]);
          }
        }
        drop_association();
        return 0.0f;
      }
      return lanc_->tick(feed[*active_relay_]);  // fading toward zero
    }

    case State::kHandoff: {
      shadow_track(feed);
      // The association is already re-targeted; the held controller's
      // history refills with the new relay's stream (one sample per tick,
      // total_taps ticks). Selection rounds keep the standby list fresh
      // but cannot change the association mid-handoff.
      if (auto selection = selector_.push(feed, error_sample)) {
        update_standby(*selection);
      }
      if (!monitors_.empty() && !monitors_[*active_relay_].healthy()) {
        // The incoming relay died before the handoff settled: chain to
        // the next standby, or re-listen when none is left.
        if (const auto standby = pick_standby()) {
          begin_handoff(*standby);
          return lanc_->tick(feed[*active_relay_]);
        }
        drop_association();
        return 0.0f;
      }
      const Sample y = lanc_->tick(feed[*active_relay_]);
      if (handoff_settle_ > 0) --handoff_settle_;
      if (handoff_settle_ == 0) {
        lanc_->resume();
        state_ = State::kRunning;
      }
      return y;
    }
  }
  throw InvariantError("unreachable device state");
}

void MuteDevice::finish_calibration() {
  calibration_ = adaptive::identify_system(stimulus_log_, response_log_,
                                           config_.secondary_taps);
  stimulus_log_.clear();
  response_log_.clear();
  last_training_sample_ = 0.0f;
  state_ = State::kListening;
}

void MuteDevice::handle_selection(const RelaySelection& selection) {
  update_standby(selection);
  if (selection.chosen.has_value() &&
      !relay_healthy(selection.chosen->relay_index)) {
    // A flagged relay's stream is squelched to zeros before it reaches the
    // selector, so a "win" by it can only come from pre-squelch garbage at
    // the start of the round window. Inconclusive round: no association
    // change, no adverse evidence either way.
    return;
  }
  if (!selection.chosen.has_value()) {
    if (state_ != State::kRunning) return;
    // While we are canceling, the error microphone hears the *residual*:
    // a quiet, decorrelated error is what success looks like, so a
    // low-confidence round must not evict the relay. Only a confident
    // measurement of negative lookahead counts against it — and we demand
    // two in a row (the paper would then nudge the user to reposition).
    bool confident_adverse = false;
    for (const auto& m : selection.all) {
      if (m.confidence >= config_.selection.min_confidence &&
          m.lookahead_s < config_.selection.min_lookahead_s) {
        confident_adverse = true;
      }
    }
    if (!confident_adverse) {
      reset_adverse();
      return;
    }
    if (!note_adverse_round(AdverseCause::kNoChosen, 0)) return;
    // The active relay confidently lost its lookahead. Before giving up
    // on cancellation entirely, try a warm standby — the evidence was
    // against THIS relay's geometry, not against the ranking.
    if (config_.enable_handoff) {
      if (const auto standby = pick_standby()) {
        begin_handoff(*standby);
        return;
      }
    }
    drop_association();
    return;
  }

  const auto& chosen = *selection.chosen;
  const bool relay_changed =
      !active_relay_.has_value() || *active_relay_ != chosen.relay_index;

  if (relay_changed && state_ == State::kRunning) {
    // Switching away from a working relay also needs two confident rounds
    // — of the SAME claim. A "nobody qualified" round followed by a
    // "relay B won" round is two different one-round claims, and two
    // different rivals winning one round each is not a case for either;
    // the cause-and-rival tracking restarts the count on every change.
    if (!note_adverse_round(AdverseCause::kRivalWon, chosen.relay_index)) {
      return;
    }
  }
  reset_adverse();

  if (!relay_changed) {
    // Same relay re-confirmed. While running, the correlation runs against
    // the residual rather than the raw ambient sound, so its lag is not a
    // trustworthy lookahead estimate — keep the association but do not
    // overwrite the measurement taken while listening.
    if (state_ != State::kRunning) lookahead_s_ = chosen.lookahead_s;
    state_ = State::kRunning;
    return;
  }
  associate(chosen);
}

void MuteDevice::update_standby(const RelaySelection& selection) {
  if (!config_.enable_handoff) return;
  // Only overwrite with a round that actually qualified someone. While
  // cancellation is active the residual is quiet, so most kRunning rounds
  // rank nobody — the list from the last loud interval (kListening,
  // kHolding) stands until a better round or the age-out replaces it.
  if (selection.ranked.empty()) return;
  standby_ = selection.ranked;
  standby_age_ = 0;
  refresh_shadow_target();
}

void MuteDevice::refresh_shadow_target() {
  if (!config_.enable_shadow || !shadow_.has_value() ||
      !active_relay_.has_value()) {
    return;
  }
  // Score every ranked rival and give the shadow budget to the best one.
  // Lookahead saturates at the tap cap (leads beyond it buy no taps), so
  // the score credits lead only up to that point — see standby_score().
  const double needed = config_.latency.total_s() +
                        static_cast<double>(config_.max_noncausal_taps) /
                            config_.sample_rate;
  const RelayMeasurement* best = nullptr;
  double best_score = 0.0;
  for (const auto& m : standby_) {
    if (m.relay_index == *active_relay_) continue;
    if (!relay_healthy(m.relay_index)) continue;
    const double score = standby_score(m, needed);
    if (score > best_score) {
      best_score = score;
      best = &m;
    }
  }
  if (best == nullptr) return;  // nobody qualifies; keep the old target
  shadow_->assign(best->relay_index, taps_for_lookahead(best->lookahead_s),
                  best->lookahead_s);
}

void MuteDevice::shadow_observe(std::span<const Sample> feed, Sample y) {
  if (!shadow_.has_value() || !shadow_->has_target()) return;
  const std::size_t target = shadow_->relay();
  if (active_relay_.has_value() && target == *active_relay_) return;
  // A flagged standby's feed is squelched zeros — neither push nor adapt
  // on it (a window of zeros would erase the accumulated convergence).
  if (!relay_healthy(target)) return;
  shadow_->observe(feed[target], y);
}

void MuteDevice::shadow_track(std::span<const Sample> feed) {
  if (!shadow_.has_value() || !shadow_->has_target()) return;
  const std::size_t target = shadow_->relay();
  if (active_relay_.has_value() && target == *active_relay_) return;
  if (!relay_healthy(target)) return;
  shadow_->track(feed[target]);
}

std::optional<RelayMeasurement> MuteDevice::shadow_handoff_candidate()
    const {
  if (!shadow_.has_value() || !shadow_->converged()) return std::nullopt;
  const std::size_t target = shadow_->relay();
  if (active_relay_.has_value() && target == *active_relay_) {
    return std::nullopt;
  }
  if (!relay_healthy(target)) return std::nullopt;
  // Require a live standby-list entry: the list is the only measurement
  // whose age is bounded (standby_max_age_s). A converged shadow whose
  // relay aged out of the ranking keeps its weights, but the handoff
  // waits for the slow path / a fresh round.
  for (const auto& m : standby_) {
    if (m.relay_index == target) return m;
  }
  return std::nullopt;
}

std::size_t MuteDevice::taps_for_lookahead(double lookahead_s) const {
  const double usable = usable_lookahead_s(lookahead_s, config_.latency);
  return std::min<std::size_t>(
      config_.max_noncausal_taps,
      lookahead_taps(usable, config_.sample_rate));
}

std::optional<RelayMeasurement> MuteDevice::pick_standby() const {
  // A converged shadow beats the lookahead ranking: its target hands over
  // with an installed filter and primed history, which is worth more than
  // a slightly longer lead paid for with a total_taps refill gap.
  if (auto candidate = shadow_handoff_candidate()) return candidate;
  for (const auto& m : standby_) {
    if (active_relay_.has_value() && m.relay_index == *active_relay_) {
      continue;
    }
    if (!relay_healthy(m.relay_index)) continue;
    return m;
  }
  return std::nullopt;
}

bool MuteDevice::relay_healthy(std::size_t relay) const {
  return monitors_.empty() || monitors_[relay].healthy();
}

void MuteDevice::associate(const RelayMeasurement& chosen) {
  if (lanc_.has_value() && config_.enable_handoff) {
    // Warm path: every re-association after the first goes through the
    // handoff machinery — remapping the surviving weights and preloading
    // the per-(relay, profile) cache beats a cold gradient descent even
    // when the target is the relay we left (its entry is still cached).
    begin_handoff(chosen);
    return;
  }
  // Cold path: first association ever, or handoff disabled. Build the
  // LANC engine sized to this relay's usable lookahead.
  const double usable =
      usable_lookahead_s(chosen.lookahead_s, config_.latency);
  LancOptions opts = config_.lanc;
  opts.sample_rate = config_.sample_rate;
  if (opts.fxlms.weight_norm_limit <= 0.0) {
    opts.fxlms.weight_norm_limit = config_.weight_norm_limit;
  }
  if (config_.link_supervision && opts.fxlms.min_excitation <= 0.0) {
    // Don't adapt on a nearly-dead reference (see FxlmsOptions): the
    // window between a link fault and its detection must not corrupt
    // the weights the device will resume with.
    opts.fxlms.min_excitation = 1e-5;
  }
  opts.fxlms.noncausal_taps = std::min<std::size_t>(
      config_.max_noncausal_taps,
      lookahead_taps(usable, config_.sample_rate));
  lanc_.emplace(calibration_.impulse_response, opts);
  lanc_->set_relay(chosen.relay_index);
  if (config_.enable_shadow && config_.relay_count > 1 &&
      !shadow_.has_value()) {
    // Mirror the engine's FxlmsOptions so shadow weights are installable
    // into it tap-for-tap (assign() overrides the noncausal window).
    shadow_.emplace(opts.fxlms, config_.shadow);
  }
  active_relay_ = chosen.relay_index;
  lookahead_s_ = chosen.lookahead_s;
  weights_lookahead_s_ = chosen.lookahead_s;
  state_ = State::kRunning;
}

void MuteDevice::begin_handoff(const RelayMeasurement& target) {
  // Shadow warm path: the shadow pre-converged for exactly this relay, and
  // its prediction error says the filter is good. Adopt the tap layout the
  // shadow actually converged at — the target's lookahead estimate jitters
  // by a sample or two between selection rounds, and re-deriving the tap
  // count from the newest estimate would spuriously disqualify the install
  // over a one-tap mismatch.
  const bool shadow_warm = shadow_.has_value() && shadow_->converged() &&
                           shadow_->relay() == target.relay_index;
  const std::size_t new_taps = shadow_warm
                                   ? shadow_->engine().noncausal_taps()
                                   : taps_for_lookahead(target.lookahead_s);
  // The `a_old - a_new` term of the weight remap (see
  // FxlmsEngine::retarget_noncausal for the derivation): the measured
  // change in relay lead, in whole samples. weights_lookahead_s_ — not
  // lookahead_s_ — because it describes the lead the surviving weights
  // actually converged at and it is preserved across drop_association().
  const auto advance_shift = static_cast<std::ptrdiff_t>(std::lround(
      (weights_lookahead_s_ - target.lookahead_s) * config_.sample_rate));
  // Fault-aware caching: tell the controller when the outgoing link is
  // flagged right now, so the departing relay's cache entry is not
  // overwritten from a faulted exit.
  const bool outgoing_flagged =
      active_relay_.has_value() && !relay_healthy(*active_relay_);
  lanc_->retarget(target.relay_index, new_taps, advance_shift,
                  outgoing_flagged);
  // Hold through the history refill: the remapped filter must not drive
  // the speaker from a half-empty delay line. hold()'s snapshot rollback
  // is safe here — retarget made the remapped weights the snapshot.
  lanc_->hold();
  if (shadow_warm) {
    // Install the pre-converged weights plus the reference window they
    // converged against, and settle only through the hold ramp instead of
    // a full total_taps history refill — the ~0.33 s -> ~0.03 s gap win.
    // After hold(): install_converged's weights must survive the hold's
    // snapshot rollback, not be clobbered by it.
    lanc_->install_converged(shadow_->engine().weights(),
                             shadow_->engine().reference_window());
    const auto ramp_samples = static_cast<std::size_t>(
        config_.lanc.hold_ramp_s * config_.sample_rate);
    handoff_settle_ = std::max<std::size_t>(1, ramp_samples);
    ++shadow_handoff_count_;
  } else {
    handoff_settle_ = lanc_->engine().total_taps();
  }
  if (shadow_.has_value() && shadow_->has_target() &&
      shadow_->relay() == target.relay_index) {
    // The target is about to become primary; the next selection round
    // assigns the budget to a new rival.
    shadow_->clear();
  }
  active_relay_ = target.relay_index;
  lookahead_s_ = target.lookahead_s;
  weights_lookahead_s_ = target.lookahead_s;
  hold_elapsed_ = 0;
  reset_adverse();
  ++handoff_count_;
  state_ = State::kHandoff;
}

void MuteDevice::drop_association() {
  // The controller object survives the drop: it owns the per-(relay,
  // profile) filter cache, which is exactly what makes the NEXT
  // association warm. Only the association itself and the evidence
  // counters reset (weights_lookahead_s_ is deliberately kept — it
  // describes the weights still inside the engine).
  active_relay_.reset();
  lookahead_s_ = 0.0;
  reset_adverse();
  // The shadow's target was scored relative to the association we just
  // lost, and its window goes stale while kListening (nothing tracks it
  // there) — a later install from it would be misaligned. Start over.
  if (shadow_.has_value()) shadow_->clear();
  state_ = State::kListening;
}

bool MuteDevice::note_adverse_round(AdverseCause cause, std::size_t rival) {
  const bool same_claim =
      cause == adverse_cause_ &&
      (cause != AdverseCause::kRivalWon || rival == adverse_rival_);
  if (same_claim) {
    ++adverse_rounds_;
  } else {
    adverse_cause_ = cause;
    adverse_rival_ = rival;
    adverse_rounds_ = 1;
  }
  if (adverse_rounds_ < 2) return false;
  reset_adverse();
  return true;
}

void MuteDevice::reset_adverse() {
  adverse_cause_ = AdverseCause::kNone;
  adverse_rival_ = 0;
  adverse_rounds_ = 0;
}

std::size_t MuteDevice::noncausal_taps() const {
  return lanc_.has_value() ? lanc_->lookahead_samples() : 0;
}

double MuteDevice::relay_active_s(std::size_t relay) const {
  ensure(relay < relay_active_ticks_.size(), "relay index out of range");
  return static_cast<double>(relay_active_ticks_[relay]) /
         config_.sample_rate;
}

}  // namespace mute::core
