#include "core/mute_device.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mute::core {

MuteDevice::MuteDevice(MuteDeviceConfig config)
    : config_(config),
      training_(config.training_rms, config.seed + 17),
      selector_(config.relay_count, config.sample_rate,
                config.selection_period_s, config.selection) {
  ensure(config.sample_rate > 0, "sample rate must be positive");
  ensure(config.relay_count >= 1, "need at least one relay");
  ensure(config.calibration_s > 0, "calibration duration must be positive");
  ensure(config.hold_timeout_s > 0, "hold timeout must be positive");
  const auto cal_samples =
      static_cast<std::size_t>(config.calibration_s * config.sample_rate);
  stimulus_log_.reserve(cal_samples);
  response_log_.reserve(cal_samples);
  if (config.link_supervision) {
    monitors_.reserve(config.relay_count);
    for (std::size_t k = 0; k < config.relay_count; ++k) {
      monitors_.emplace_back(config.link_monitor, config.sample_rate);
    }
    sanitized_.assign(config.relay_count, 0.0f);
  }
  hold_timeout_samples_ = static_cast<std::size_t>(
      config.hold_timeout_s * config.sample_rate);
}

Sample MuteDevice::tick(std::span<const Sample> relay_samples,
                        Sample error_sample) {
  ensure(relay_samples.size() == config_.relay_count,
         "one sample per relay required");

  // Link supervision runs in every state so the monitors' baselines stay
  // warm. Everything downstream (selector, LANC) consumes the sanitized
  // feed: a flagged relay contributes zeros, so demodulator garbage can
  // neither steer GCC-PHAT nor reach the adaptive engine (whose contract
  // macros would abort on NaN).
  std::span<const Sample> feed = relay_samples;
  if (!monitors_.empty()) {
    for (std::size_t k = 0; k < monitors_.size(); ++k) {
      sanitized_[k] = monitors_[k].process(relay_samples[k]);
    }
    feed = sanitized_;
  }

  switch (state_) {
    case State::kCalibrating: {
      // The error mic currently hears the previous training sample through
      // the secondary path: log the (stimulus, response) pair.
      if (!stimulus_log_.empty() || last_training_sample_ != 0.0f) {
        stimulus_log_.push_back(last_training_sample_);
        response_log_.push_back(error_sample);
      }
      const auto cal_samples = static_cast<std::size_t>(
          config_.calibration_s * config_.sample_rate);
      if (stimulus_log_.size() >= cal_samples) {
        finish_calibration();
        return 0.0f;
      }
      Signal one(1);
      training_.render(one);
      last_training_sample_ = one[0];
      return last_training_sample_;
    }

    case State::kListening: {
      if (auto selection = selector_.push(feed, error_sample)) {
        handle_selection(*selection);
      }
      return 0.0f;
    }

    case State::kRunning: {
      // Keep the periodic selection running (source may move).
      if (auto selection = selector_.push(feed, error_sample)) {
        handle_selection(*selection);
        if (state_ != State::kRunning) return 0.0f;
      }
      if (!monitors_.empty() && !monitors_[*active_relay_].healthy()) {
        // The active link just went bad: freeze adaptation and fade the
        // anti-noise out. The association is kept for hold_timeout_s — a
        // brief dropout should not cost a full re-acquisition.
        state_ = State::kHolding;
        hold_elapsed_ = 0;
        ++hold_count_;
        lanc_->hold();
        return lanc_->tick(feed[*active_relay_]);
      }
      // `error_sample` is the microphone's reading of the PREVIOUS
      // tick's field: adapt BEFORE pushing the new reference so the
      // filtered-x history still lines up with it. Adapting after the
      // push misaligns the gradient by one sample — 180 degrees of phase
      // at Nyquist, enough to destabilize the loop.
      lanc_->observe_error(error_sample);
      const Sample y = lanc_->tick(feed[*active_relay_]);
      return y;
    }

    case State::kHolding: {
      // Selection keeps buffering (on sanitized feeds, so the dead relay
      // reads as silence and cannot win a round), but association changes
      // wait until the hold resolves one way or the other.
      selector_.push(feed, error_sample);
      if (monitors_[*active_relay_].healthy()) {
        // Link is back: unfreeze and fade the anti-noise back in. The
        // frozen weights are the pre-fault filter, so cancellation
        // recovers as fast as the engine's history refills.
        lanc_->resume();
        state_ = State::kRunning;
        adverse_rounds_ = 0;
        return lanc_->tick(feed[*active_relay_]);
      }
      if (++hold_elapsed_ >= hold_timeout_samples_) {
        // The link did not come back: drop the association and re-listen
        // (the paper's "nudge the user" case — another relay may win the
        // next selection round).
        lanc_.reset();
        active_relay_.reset();
        lookahead_s_ = 0.0;
        adverse_rounds_ = 0;
        state_ = State::kListening;
        return 0.0f;
      }
      return lanc_->tick(feed[*active_relay_]);  // fading toward zero
    }
  }
  throw InvariantError("unreachable device state");
}

void MuteDevice::finish_calibration() {
  calibration_ = adaptive::identify_system(stimulus_log_, response_log_,
                                           config_.secondary_taps);
  stimulus_log_.clear();
  response_log_.clear();
  last_training_sample_ = 0.0f;
  state_ = State::kListening;
}

void MuteDevice::handle_selection(const RelaySelection& selection) {
  if (!selection.chosen.has_value()) {
    if (state_ != State::kRunning) return;
    // While we are canceling, the error microphone hears the *residual*:
    // a quiet, decorrelated error is what success looks like, so a
    // low-confidence round must not evict the relay. Only a confident
    // measurement of negative lookahead counts against it — and we demand
    // two in a row (the paper would then nudge the user to reposition).
    bool confident_adverse = false;
    for (const auto& m : selection.all) {
      if (m.confidence >= config_.selection.min_confidence &&
          m.lookahead_s < config_.selection.min_lookahead_s) {
        confident_adverse = true;
      }
    }
    if (!confident_adverse) {
      adverse_rounds_ = 0;
      return;
    }
    if (++adverse_rounds_ < 2) return;
    lanc_.reset();
    active_relay_.reset();
    lookahead_s_ = 0.0;
    adverse_rounds_ = 0;
    state_ = State::kListening;
    return;
  }

  const auto chosen = selection.chosen->relay_index;
  const double lookahead = selection.chosen->lookahead_s;
  const bool relay_changed = !active_relay_ || *active_relay_ != chosen;

  if (relay_changed && state_ == State::kRunning) {
    // Switching away from a working relay also needs two confident rounds.
    if (++adverse_rounds_ < 2) return;
  }
  adverse_rounds_ = 0;

  if (!relay_changed) {
    // Same relay re-confirmed. While running, the correlation runs against
    // the residual rather than the raw ambient sound, so its lag is not a
    // trustworthy lookahead estimate — keep the association but do not
    // overwrite the measurement taken while listening.
    if (state_ != State::kRunning) lookahead_s_ = lookahead;
    state_ = State::kRunning;
    return;
  }

  if (relay_changed) {
    // (Re)build the LANC engine sized to this relay's usable lookahead.
    const double usable = usable_lookahead_s(lookahead, config_.latency);
    LancOptions opts = config_.lanc;
    opts.sample_rate = config_.sample_rate;
    if (opts.fxlms.weight_norm_limit <= 0.0) {
      opts.fxlms.weight_norm_limit = config_.weight_norm_limit;
    }
    if (config_.link_supervision && opts.fxlms.min_excitation <= 0.0) {
      // Don't adapt on a nearly-dead reference (see FxlmsOptions): the
      // window between a link fault and its detection must not corrupt
      // the weights the device will resume with.
      opts.fxlms.min_excitation = 1e-5;
    }
    opts.fxlms.noncausal_taps = std::min<std::size_t>(
        config_.max_noncausal_taps,
        lookahead_taps(usable, config_.sample_rate));
    lanc_.emplace(calibration_.impulse_response, opts);
    active_relay_ = chosen;
  }
  lookahead_s_ = lookahead;
  state_ = State::kRunning;
}

std::size_t MuteDevice::noncausal_taps() const {
  return lanc_ ? lanc_->lookahead_samples() : 0;
}

}  // namespace mute::core
