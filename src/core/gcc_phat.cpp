#include "core/gcc_phat.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"

namespace mute::core {

GccPhatResult gcc_phat(std::span<const Sample> reference,
                       std::span<const Sample> delayed, double sample_rate,
                       double max_lag_s) {
  ensure(reference.size() == delayed.size(), "records must be equal length");
  ensure(reference.size() >= 64, "records too short for GCC-PHAT");
  ensure(sample_rate > 0, "sample rate must be positive");

  const std::size_t n = reference.size();
  const std::size_t nfft = next_pow2(2 * n);
  ComplexSignal fr(nfft), fd(nfft);
  for (std::size_t i = 0; i < n; ++i) {
    fr[i] = static_cast<double>(reference[i]);
    fd[i] = static_cast<double>(delayed[i]);
  }
  mute::dsp::fft_inplace(fr);
  mute::dsp::fft_inplace(fd);

  // Cross-spectrum with PHAT weighting: keep only phase information so
  // reverberant magnitude structure cannot smear the peak.
  for (std::size_t k = 0; k < nfft; ++k) {
    const Complex cross = fd[k] * std::conj(fr[k]);
    const double mag = std::abs(cross);
    fr[k] = (mag > 1e-15) ? cross / mag : Complex(0.0, 0.0);
  }
  mute::dsp::ifft_inplace(fr);

  const auto max_lag = static_cast<std::ptrdiff_t>(
      std::min<double>(max_lag_s * sample_rate, static_cast<double>(n - 1)));
  GccPhatResult out;
  out.lag_s.reserve(static_cast<std::size_t>(2 * max_lag + 1));
  out.correlation.reserve(out.lag_s.capacity());

  double best_v = -1.0;
  double best_lag = 0.0;
  for (std::ptrdiff_t lag = -max_lag; lag <= max_lag; ++lag) {
    // Positive lag: `delayed` trails `reference` by `lag` samples; that
    // correlation lives at index `lag`, negative lags wrap to nfft + lag.
    const std::size_t idx =
        lag >= 0 ? static_cast<std::size_t>(lag)
                 : nfft - static_cast<std::size_t>(-lag);
    const double v = fr[idx].real();
    const double lag_seconds = static_cast<double>(lag) / sample_rate;
    out.lag_s.push_back(lag_seconds);
    out.correlation.push_back(v);
    if (v > best_v) {
      best_v = v;
      best_lag = lag_seconds;
    }
  }
  out.peak_lag_s = best_lag;
  out.peak_value = best_v;
  return out;
}

}  // namespace mute::core
