#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rt_annotations.hpp"

namespace mute::core {

/// Which adaptive engine a cached weight vector belongs to. The
/// time-domain FxlmsEngine and the partitioned-block FdFxlmsEngine use
/// the same [w_{-N} ... w_{L-1}] layout, but at the same controller
/// lookahead their vectors differ in length and tap meaning (the block
/// engine's non-causal window is shortened by its pipeline block), so an
/// entry converged under one engine must never preload the other.
enum class EngineKind : std::size_t {
  kTimeDomain = 0,
  kFdBlock = 1,
};

/// Cache key for a converged weight vector: which relay the filter was
/// adapted against, which sound profile it cancels, and which engine
/// kind produced it. The relay index matters because the weights are
/// relay-specific twice over — the non-causal window is sized to that
/// relay's usable lookahead, and the causal section compensates that
/// relay's acoustic position. A filter converged against relay 2 loaded
/// for relay 0 would replay the wrong alignment, so the axes form one
/// composite key.
struct FilterCacheKey {
  std::size_t relay = 0;
  std::size_t profile = 0;
  EngineKind engine = EngineKind::kTimeDomain;
  bool operator==(const FilterCacheKey&) const = default;
};

struct FilterCacheKeyHash {
  std::size_t operator()(const FilterCacheKey& k) const noexcept {
    // Boost-style mix: profile counts are tiny, so a plain XOR would
    // collide (relay, profile) with (profile, relay).
    std::size_t h = std::hash<std::size_t>{}(k.relay);
    h ^= std::hash<std::size_t>{}(k.profile) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
    h ^= std::hash<std::size_t>{}(static_cast<std::size_t>(k.engine)) +
         0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

/// Per-(relay, profile) cache of converged adaptive-filter weight vectors
/// (Section 3.2 "Predict and Switch": LANC caches the coefficient vector
/// for each sound profile and reloads it at transitions instead of
/// re-converging by gradient descent). The relay axis extends the same
/// idea to warm-standby failover: handing the association to a standby
/// relay preloads the filter last converged against it, so re-acquisition
/// costs a history refill rather than a gradient descent from cold.
///
/// Lifetime contract for the span returned by `load()`:
///   - it stays valid across `store()` calls for *other* keys, including
///     any rehash those inserts trigger (std::unordered_map never moves
///     node storage on rehash, and the vector's heap buffer moves with
///     its node);
///   - it is invalidated by `store()` on the SAME key (the overwrite may
///     reallocate the vector's buffer) and by `erase_relay()`/`clear()`.
/// Callers that must hold weights across a same-key overwrite must copy.
/// Both hazards are pinned by tests/core/core_test.cpp.
class FilterCache {
 public:
  /// Save (overwrite) the weights for a (relay, profile) pair.
  MUTE_RT_UNSAFE void store(FilterCacheKey key, std::span<const double> weights) {
    cache_[key].assign(weights.begin(), weights.end());
  }

  /// Retrieve the cached weights, if this pair has been seen before. See
  /// the class comment for the returned span's lifetime contract.
  MUTE_RT_SAFE std::optional<std::span<const double>> load(
      FilterCacheKey key) const {
    const auto it = cache_.find(key);
    if (it == cache_.end()) return std::nullopt;
    return std::span<const double>(it->second);
  }

  bool contains(FilterCacheKey key) const { return cache_.count(key) != 0; }

  /// Drop every profile entry learned against one relay (e.g. after its
  /// link proved chronically faulty — entries adapted on a bad link are
  /// not worth preloading).
  MUTE_RT_UNSAFE std::size_t erase_relay(std::size_t relay) {
    std::size_t erased = 0;
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->first.relay == relay) {
        it = cache_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  std::size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  std::unordered_map<FilterCacheKey, std::vector<double>, FilterCacheKeyHash>
      cache_;
};

}  // namespace mute::core
