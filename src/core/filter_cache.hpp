#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace mute::core {

/// Per-profile cache of converged adaptive-filter weight vectors
/// (Section 3.2 "Predict and Switch": LANC caches the coefficient vector
/// for each sound profile and reloads it at transitions instead of
/// re-converging by gradient descent).
class FilterCache {
 public:
  /// Save (overwrite) the weights for a profile.
  void store(std::size_t profile_id, std::span<const double> weights) {
    cache_[profile_id].assign(weights.begin(), weights.end());
  }

  /// Retrieve the cached weights, if this profile has been seen before.
  std::optional<std::span<const double>> load(std::size_t profile_id) const {
    const auto it = cache_.find(profile_id);
    if (it == cache_.end()) return std::nullopt;
    return std::span<const double>(it->second);
  }

  bool contains(std::size_t profile_id) const {
    return cache_.count(profile_id) != 0;
  }

  std::size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  std::unordered_map<std::size_t, std::vector<double>> cache_;
};

}  // namespace mute::core
