#include "core/lanc.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace mute::core {

LancController::LancController(std::vector<double> secondary_path_estimate,
                               LancOptions options)
    : opts_(options),
      engine_(std::move(secondary_path_estimate), options.fxlms),
      extractor_(options.sample_rate,
                 /*fft_size=*/std::min<std::size_t>(options.profile_frame, 512)),
      classifier_(options.classifier),
      frame_buffer_(options.profile_frame) {
  ensure(options.profile_hop >= 1, "profile hop must be >= 1");
  ensure(options.profile_frame >= extractor_.fft_size(),
         "profile frame must cover the signature FFT");
  // Snapshots must reach back past the hysteresis window plus the
  // scheduled-swap countdown (both measured in profiler frames).
  snapshot_depth_ = options.switch_hysteresis +
                    engine_.noncausal_taps() / options.profile_hop + 2;
  ensure(options.hold_ramp_s >= 0, "hold ramp must be >= 0");
  const double ramp_samples = options.hold_ramp_s * options.sample_rate;
  gain_step_ = ramp_samples < 1.0 ? 1.0 : 1.0 / ramp_samples;
}

Sample LancController::tick(Sample x_advanced) {
  MUTE_CHECK_FINITE(x_advanced, "LANC advanced reference sample");
  // Profiling is control-plane work (signature extraction, weight
  // snapshots, cache updates) and is allowed to allocate; the signal path
  // below it is not. See DESIGN.md "Static analysis & real-time safety".
  // It pauses while holding: a squelched (zeroed) reference would be
  // classified as a "silence" profile and trigger a bogus swap.
  if (opts_.profiling && !holding_) run_profiler(x_advanced);
  Sample y;
  {
    MUTE_RT_SCOPE("LancController::tick/signal-path");
    y = engine_.step_output(x_advanced);
    // Slew the output gain toward its target so hold() fades the
    // anti-noise out (never louder than passive on a dead reference) and
    // resume() fades it back in without a click.
    const double target = holding_ ? 0.0 : 1.0;
    if (output_gain_ < target) {
      output_gain_ = std::min(target, output_gain_ + gain_step_);
    } else if (output_gain_ > target) {
      output_gain_ = std::max(target, output_gain_ - gain_step_);
    }
    y = static_cast<Sample>(static_cast<double>(y) * output_gain_);
  }
  MUTE_CHECK_FINITE(y, "LANC anti-noise output sample");
  if (opts_.profiling && !holding_ && switch_countdown_ >= 0) {
    if (switch_countdown_ == 0) apply_pending_switch();
    --switch_countdown_;
  }
  return y;
}

void LancController::observe_error(Sample error) {
  if (holding_) return;  // adaptation frozen while the link is flagged
  engine_.adapt(error);
}

void LancController::hold() {
  holding_ = true;
  // The link monitor needs sustained evidence before flagging, so by the
  // time we get here the engine has spent the detection latency adapting
  // on garbage. Rewind to the last-known-good snapshot (no-op when the
  // weight-norm guard is disabled).
  engine_.restore_snapshot();
}

void LancController::resume() { holding_ = false; }

void LancController::retarget(std::size_t new_relay,
                              std::size_t new_noncausal_taps,
                              std::ptrdiff_t advance_shift_samples,
                              bool outgoing_flagged) {
  // Fault-aware caching: a link that is flagged right now spent its
  // detection latency feeding garbage; even the rolled-back snapshot is at
  // most "last known good", so prefer keeping the relay's previous cache
  // entry (converged in health) over overwriting it from a faulted exit.
  if (!outgoing_flagged) {
    const auto& w = weight_snapshots_.empty() ? engine_.weights()
                                              : weight_snapshots_.front();
    cache_.store({relay_, current_profile_}, w);
  }
  const auto old_taps =
      static_cast<std::ptrdiff_t>(engine_.noncausal_taps());
  const std::ptrdiff_t shift =
      (old_taps - static_cast<std::ptrdiff_t>(new_noncausal_taps)) +
      advance_shift_samples;
  engine_.retarget_noncausal(new_noncausal_taps, shift);
  if (const auto cached = cache_.load({new_relay, current_profile_});
      cached && cached->size() == engine_.total_taps()) {
    engine_.set_weights(*cached);
  }
  // Transition state watched the old relay's stream: snapshots would
  // cache misaligned weights and a pending swap was scheduled against the
  // old lookahead.
  weight_snapshots_.clear();
  recent_ids_.clear();
  switch_countdown_ = -1;
  relay_ = new_relay;
}

void LancController::install_converged(
    std::span<const double> weights, std::span<const double> x_newest_first) {
  ensure(weights.size() == engine_.total_taps(),
         "converged weights must match the engine's tap layout");
  ensure(x_newest_first.size() == engine_.total_taps(),
         "reference window must match the engine's tap layout");
  // set_weights adopts the vector as the rollback snapshot when it sits
  // inside the guard band, so a later hold() keeps the install.
  engine_.set_weights(weights);
  engine_.prime_history(x_newest_first);
  cache_.store({relay_, current_profile_}, weights);
}

void LancController::run_profiler(Sample x_advanced) {
  // Rolling frame of the advanced stream (O(1) push, contiguous window).
  frame_buffer_.push(x_advanced);
  if (frame_fill_ < frame_buffer_.size()) {
    ++frame_fill_;
    return;
  }
  if (++hop_counter_ < opts_.profile_hop) return;
  hop_counter_ = 0;

  weight_snapshots_.push_back(engine_.weights());
  if (weight_snapshots_.size() > snapshot_depth_) {
    weight_snapshots_.pop_front();
  }

  const auto sig = extractor_.extract(frame_buffer_.window());
  const std::size_t id = classifier_.classify(sig);

  recent_ids_.push_back(id);
  if (recent_ids_.size() > opts_.switch_hysteresis) recent_ids_.pop_front();
  if (recent_ids_.size() < opts_.switch_hysteresis ||
      switch_countdown_ >= 0) {
    return;
  }
  // Schedule a switch only when every frame in the window disagrees with
  // the current profile; the target is the window's modal id.
  std::size_t disagree = 0;
  for (std::size_t v : recent_ids_) {
    if (v != current_profile_) ++disagree;
  }
  if (disagree < recent_ids_.size()) return;
  std::size_t best_id = recent_ids_.back();
  std::size_t best_count = 0;
  for (std::size_t v : recent_ids_) {
    std::size_t count = 0;
    for (std::size_t w : recent_ids_) count += (w == v);
    if (count > best_count) {
      best_count = count;
      best_id = v;
    }
  }
  // Demand a confident majority: if the window is a grab-bag of different
  // ids (messy transition, classifier noise), wait rather than jump to a
  // profile that may be wrong — a bad swap costs more than a late one.
  if (best_count * 3 < recent_ids_.size() * 2) return;
  // The transition was observed in the lookahead stream; it will reach
  // the error microphone N samples from now — schedule the swap there.
  pending_profile_ = best_id;
  switch_countdown_ = static_cast<std::ptrdiff_t>(engine_.noncausal_taps());
  recent_ids_.clear();
}

void LancController::apply_pending_switch() {
  if (pending_profile_ == current_profile_) return;
  // Preserve the converged state of the outgoing profile — from BEFORE
  // the transition was even suspected (oldest snapshot), not the current
  // weights, which have been adapting toward the new profile throughout
  // the hysteresis window.
  if (!weight_snapshots_.empty()) {
    cache_.store({relay_, current_profile_}, weight_snapshots_.front());
  } else {
    cache_.store({relay_, current_profile_}, engine_.weights());
  }
  // ...and restore the incoming profile's filter if we have met it before
  // ON THIS RELAY (otherwise keep adapting from the current weights: the
  // first encounter converges by gradient descent, exactly like classic
  // ANC). The length check guards against an entry recorded at a
  // different lookahead sizing of the same relay.
  if (const auto cached = cache_.load({relay_, pending_profile_});
      cached && cached->size() == engine_.total_taps()) {
    engine_.set_weights(*cached);
  }
  // Old-profile snapshots are meaningless for the incoming profile.
  weight_snapshots_.clear();
  current_profile_ = pending_profile_;
  ++switch_count_;
}

void LancController::reset() {
  engine_.reset();
  classifier_.reset();
  cache_.clear();
  weight_snapshots_.clear();
  frame_buffer_.fill(0.0f);
  frame_fill_ = 0;
  hop_counter_ = 0;
  current_profile_ = 0;
  recent_ids_.clear();
  switch_countdown_ = -1;
  pending_profile_ = 0;
  switch_count_ = 0;
  holding_ = false;
  output_gain_ = 1.0;
}

}  // namespace mute::core
