#include "core/lanc.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::core {

LancController::LancController(std::vector<double> secondary_path_estimate,
                               LancOptions options)
    : opts_(options),
      engine_(std::move(secondary_path_estimate), options.fxlms),
      extractor_(options.sample_rate,
                 /*fft_size=*/std::min<std::size_t>(options.profile_frame, 512)),
      classifier_(options.classifier),
      frame_buffer_(options.profile_frame) {
  ensure(options.profile_hop >= 1, "profile hop must be >= 1");
  ensure(options.profile_frame >= extractor_.fft_size(),
         "profile frame must cover the signature FFT");
  // Snapshots must reach back past the hysteresis window plus the
  // scheduled-swap countdown (both measured in profiler frames).
  snapshot_depth_ = options.switch_hysteresis +
                    engine_.noncausal_taps() / options.profile_hop + 2;
  ensure(options.hold_ramp_s >= 0, "hold ramp must be >= 0");
  const double ramp_samples = options.hold_ramp_s * options.sample_rate;
  gain_step_ = ramp_samples < 1.0 ? 1.0 : 1.0 / ramp_samples;

  if (opts_.engine == LancEngineKind::kFdBlock) {
    const std::size_t lookahead = opts_.fxlms.noncausal_taps;
    ensure(lookahead >= 1,
           "kFdBlock needs lookahead: the block pipeline delay is absorbed "
           "by the acoustic lead (use kTimeDomain for causal ANC)");
    if (opts_.fd_block == 0) {
      // Default: half the lead (floored to a power of two) goes to the
      // block pipeline, the rest stays with the filter as future taps —
      // claiming the whole lead for the block would leave the engine no
      // anticipation at all.
      opts_.fd_block = std::bit_floor(
          std::min<std::size_t>(std::max<std::size_t>(lookahead / 2, 1), 256));
    }
    ensure(is_pow2(opts_.fd_block), "fd_block must be a power of two");
    ensure(opts_.fd_block <= lookahead,
           "fd_block must fit inside the lookahead (block latency is only "
           "free up to the acoustic lead)");
    mute::adaptive::FdFxlmsOptions fd;
    fd.causal_taps = opts_.fxlms.causal_taps;
    // The pipeline is one block deep, so the engine sees the advanced
    // stream effectively delayed by fd_block: its future-tap window
    // shrinks by exactly that much and total cancellation span is
    // preserved sample for sample.
    fd.noncausal_taps = lookahead - opts_.fd_block;
    fd.block = opts_.fd_block;
    fd.mu = opts_.fxlms.mu;
    fd.epsilon = opts_.fxlms.epsilon;
    fd.leakage = opts_.fxlms.leakage;
    fd.constraint = opts_.fd_constraint;
    fd_engine_ = std::make_unique<mute::adaptive::FdFxlmsEngine>(
        engine_.secondary_path(), fd);
    fd_in_.assign(opts_.fd_block, Sample{0});
    fd_out_.assign(opts_.fd_block, Sample{0});
    fd_err_.assign(opts_.fd_block, Sample{0});
  }
}

Sample LancController::tick(Sample x_advanced) {
  MUTE_CHECK_FINITE(x_advanced, "LANC advanced reference sample");
  // Profiling is control-plane work (signature extraction, weight
  // snapshots, cache updates) and is allowed to allocate; the signal path
  // below it is not. See DESIGN.md "Static analysis & real-time safety".
  // It pauses while holding: a squelched (zeroed) reference would be
  // classified as a "silence" profile and trigger a bogus swap.
  if (opts_.profiling && !holding_) run_profiler(x_advanced);
  Sample y;
  {
    MUTE_RT_SCOPE("LancController::tick/signal-path");
    y = fd_engine_ ? fd_tick(x_advanced) : engine_.step_output(x_advanced);
    // Slew the output gain toward its target so hold() fades the
    // anti-noise out (never louder than passive on a dead reference) and
    // resume() fades it back in without a click.
    const double target = holding_ ? 0.0 : 1.0;
    if (output_gain_ < target) {
      output_gain_ = std::min(target, output_gain_ + gain_step_);
    } else if (output_gain_ > target) {
      output_gain_ = std::max(target, output_gain_ - gain_step_);
    }
    y = static_cast<Sample>(static_cast<double>(y) * output_gain_);
  }
  MUTE_CHECK_FINITE(y, "LANC anti-noise output sample");
  if (opts_.profiling && !holding_ && switch_countdown_ >= 0) {
    if (switch_countdown_ == 0) apply_pending_switch();
    --switch_countdown_;
  }
  return y;
}

Sample LancController::fd_tick(Sample x_advanced) {
  const std::size_t block = fd_engine_->block_size();
  // Flush a filled input block lazily at the START of the tick: the error
  // window for the previous output block completed in the observe_error
  // call just before this, so adapt_block always saw the spectrum ring
  // its errors were produced by.
  if (fd_in_fill_ == block) {
    fd_engine_->process_block(std::span<const Sample>(fd_in_.data(), block),
                              std::span<Sample>(fd_out_.data(), block));
    fd_in_fill_ = 0;
    fd_out_pos_ = 0;
    fd_out_ready_ = true;
    fd_can_adapt_ = true;
    // Re-align the error window to this block (only moves anything when
    // observe_error ticks were skipped — e.g. around a retarget).
    fd_err_fill_ = 0;
    fd_err_dirty_ = false;
  }
  fd_in_[fd_in_fill_++] = x_advanced;
  // First block of the run has nothing to play yet: silence, exactly the
  // pipeline fill the lookahead budget already paid for.
  return fd_out_ready_ ? fd_out_[fd_out_pos_++] : Sample{0};
}

void LancController::observe_error(Sample error) {
  if (fd_engine_) {
    // Keep the window position moving even while holding so block
    // alignment survives the hold; the contaminated window is discarded.
    if (holding_) fd_err_dirty_ = true;
    fd_err_[fd_err_fill_++] = error;
    if (fd_err_fill_ == fd_engine_->block_size()) {
      if (fd_can_adapt_ && !fd_err_dirty_ && !holding_) {
        fd_engine_->adapt_block(
            std::span<const Sample>(fd_err_.data(), fd_err_.size()));
      }
      fd_can_adapt_ = false;
      fd_err_fill_ = 0;
      fd_err_dirty_ = false;
    }
    return;
  }
  if (holding_) return;  // adaptation frozen while the link is flagged
  engine_.adapt(error);
}

void LancController::hold() {
  holding_ = true;
  // The link monitor needs sustained evidence before flagging, so by the
  // time we get here the engine has spent the detection latency adapting
  // on garbage. Rewind to the last-known-good snapshot (no-op when the
  // weight-norm guard is disabled). The block engine has no snapshot
  // machinery: its error windows are discarded for the whole hold (see
  // observe_error), so at most one in-flight block of updates came from
  // garbage — the window the fault started in.
  if (!fd_engine_) engine_.restore_snapshot();
}

void LancController::resume() { holding_ = false; }

void LancController::retarget(std::size_t new_relay,
                              std::size_t new_noncausal_taps,
                              std::ptrdiff_t advance_shift_samples,
                              bool outgoing_flagged) {
  // Fault-aware caching: a link that is flagged right now spent its
  // detection latency feeding garbage; even the rolled-back snapshot is at
  // most "last known good", so prefer keeping the relay's previous cache
  // entry (converged in health) over overwriting it from a faulted exit.
  if (!outgoing_flagged) {
    const auto w = weight_snapshots_.empty() ? active_weights()
                                             : weight_snapshots_.front();
    cache_.store(cache_key(relay_, current_profile_), w);
  }
  // N is the *controller* lookahead on both engines; for the block engine
  // the source-time shift is identical because the one-block pipeline
  // delay cancels: (N_old - B) - (N_new - B) == N_old - N_new.
  const auto old_taps = static_cast<std::ptrdiff_t>(lookahead_samples());
  const std::ptrdiff_t shift =
      (old_taps - static_cast<std::ptrdiff_t>(new_noncausal_taps)) +
      advance_shift_samples;
  if (fd_engine_) {
    ensure(new_noncausal_taps >= fd_engine_->block_size(),
           "new lookahead must still cover the block pipeline delay");
    fd_engine_->retarget_noncausal(
        new_noncausal_taps - fd_engine_->block_size(), shift);
    reset_fd_pipeline();  // buffered blocks belong to the old relay stream
  } else {
    engine_.retarget_noncausal(new_noncausal_taps, shift);
  }
  if (const auto cached = cache_.load(cache_key(new_relay, current_profile_));
      cached && cached->size() == active_total_taps()) {
    install_weights(*cached);
  }
  // Transition state watched the old relay's stream: snapshots would
  // cache misaligned weights and a pending swap was scheduled against the
  // old lookahead.
  weight_snapshots_.clear();
  recent_ids_.clear();
  switch_countdown_ = -1;
  relay_ = new_relay;
}

void LancController::install_converged(
    std::span<const double> weights, std::span<const double> x_newest_first) {
  // Shadow filters pre-converge on the time-domain engine; their
  // sample-granular history priming has no block-engine equivalent (the
  // spectrum rings refill in P blocks anyway, bounded by the lookahead).
  ensure(!fd_engine_,
         "install_converged requires the time-domain engine "
         "(per-sample history priming)");
  ensure(weights.size() == engine_.total_taps(),
         "converged weights must match the engine's tap layout");
  ensure(x_newest_first.size() == engine_.total_taps(),
         "reference window must match the engine's tap layout");
  // set_weights adopts the vector as the rollback snapshot when it sits
  // inside the guard band, so a later hold() keeps the install.
  engine_.set_weights(weights);
  engine_.prime_history(x_newest_first);
  cache_.store(cache_key(relay_, current_profile_), weights);
}

std::vector<double> LancController::active_weights() const {
  return fd_engine_ ? fd_engine_->weights() : engine_.weights();
}

std::size_t LancController::active_total_taps() const {
  return fd_engine_ ? fd_engine_->total_taps() : engine_.total_taps();
}

void LancController::install_weights(std::span<const double> w) {
  if (fd_engine_) {
    fd_engine_->set_weights(w);
  } else {
    engine_.set_weights(w);
  }
}

void LancController::reset_fd_pipeline() {
  if (!fd_engine_) return;
  std::fill(fd_in_.begin(), fd_in_.end(), Sample{0});
  std::fill(fd_out_.begin(), fd_out_.end(), Sample{0});
  std::fill(fd_err_.begin(), fd_err_.end(), Sample{0});
  fd_in_fill_ = 0;
  fd_out_pos_ = 0;
  fd_err_fill_ = 0;
  fd_out_ready_ = false;
  fd_can_adapt_ = false;
  fd_err_dirty_ = false;
}

void LancController::run_profiler(Sample x_advanced) {
  // Rolling frame of the advanced stream (O(1) push, contiguous window).
  frame_buffer_.push(x_advanced);
  if (frame_fill_ < frame_buffer_.size()) {
    ++frame_fill_;
    return;
  }
  if (++hop_counter_ < opts_.profile_hop) return;
  hop_counter_ = 0;

  weight_snapshots_.push_back(active_weights());
  if (weight_snapshots_.size() > snapshot_depth_) {
    weight_snapshots_.pop_front();
  }

  const auto sig = extractor_.extract(frame_buffer_.window());
  const std::size_t id = classifier_.classify(sig);

  recent_ids_.push_back(id);
  if (recent_ids_.size() > opts_.switch_hysteresis) recent_ids_.pop_front();
  if (recent_ids_.size() < opts_.switch_hysteresis ||
      switch_countdown_ >= 0) {
    return;
  }
  // Schedule a switch only when every frame in the window disagrees with
  // the current profile; the target is the window's modal id.
  std::size_t disagree = 0;
  for (std::size_t v : recent_ids_) {
    if (v != current_profile_) ++disagree;
  }
  if (disagree < recent_ids_.size()) return;
  std::size_t best_id = recent_ids_.back();
  std::size_t best_count = 0;
  for (std::size_t v : recent_ids_) {
    std::size_t count = 0;
    for (std::size_t w : recent_ids_) count += (w == v);
    if (count > best_count) {
      best_count = count;
      best_id = v;
    }
  }
  // Demand a confident majority: if the window is a grab-bag of different
  // ids (messy transition, classifier noise), wait rather than jump to a
  // profile that may be wrong — a bad swap costs more than a late one.
  if (best_count * 3 < recent_ids_.size() * 2) return;
  // The transition was observed in the lookahead stream; it will reach
  // the error microphone N samples from now — schedule the swap there.
  // (N is the controller lookahead: engine pipeline delays don't move
  // the wavefront.)
  pending_profile_ = best_id;
  switch_countdown_ = static_cast<std::ptrdiff_t>(lookahead_samples());
  recent_ids_.clear();
}

void LancController::apply_pending_switch() {
  if (pending_profile_ == current_profile_) return;
  // Preserve the converged state of the outgoing profile — from BEFORE
  // the transition was even suspected (oldest snapshot), not the current
  // weights, which have been adapting toward the new profile throughout
  // the hysteresis window.
  if (!weight_snapshots_.empty()) {
    cache_.store(cache_key(relay_, current_profile_),
                 weight_snapshots_.front());
  } else {
    cache_.store(cache_key(relay_, current_profile_), active_weights());
  }
  // ...and restore the incoming profile's filter if we have met it before
  // ON THIS RELAY (otherwise keep adapting from the current weights: the
  // first encounter converges by gradient descent, exactly like classic
  // ANC). The length check guards against an entry recorded at a
  // different lookahead sizing of the same relay.
  if (const auto cached = cache_.load(cache_key(relay_, pending_profile_));
      cached && cached->size() == active_total_taps()) {
    install_weights(*cached);
  }
  // Old-profile snapshots are meaningless for the incoming profile.
  weight_snapshots_.clear();
  current_profile_ = pending_profile_;
  ++switch_count_;
}

void LancController::reset() {
  engine_.reset();
  if (fd_engine_) {
    fd_engine_->reset();
    reset_fd_pipeline();
  }
  classifier_.reset();
  cache_.clear();
  weight_snapshots_.clear();
  frame_buffer_.fill(0.0f);
  frame_fill_ = 0;
  hop_counter_ = 0;
  current_profile_ = 0;
  recent_ids_.clear();
  switch_countdown_ = -1;
  pending_profile_ = 0;
  switch_count_ = 0;
  holding_ = false;
  output_gain_ = 1.0;
}

}  // namespace mute::core
