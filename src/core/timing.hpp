#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mute::core {

/// The processing-latency budget of an ANC pipeline (Section 3.1): every
/// microsecond spent in converters, DSP and the speaker eats into the
/// acoustic lookahead. Equation 3: cancellation timing is met only when
/// lookahead >= adc + dsp + dac + speaker.
struct LatencyBudget {
  double adc_us = 30.0;
  double dsp_us = 25.0;
  double dac_us = 30.0;
  double speaker_us = 20.0;

  /// A headphone-class budget (paper: the sum can easily be 3x the 30 us
  /// acoustic window of a conventional headphone).
  static LatencyBudget headphone() { return {30.0, 25.0, 30.0, 20.0}; }

  /// MUTE's ear device: same converters, slightly larger DSP slice since
  /// LANC runs more taps.
  static LatencyBudget mute_ear_device() { return {30.0, 40.0, 30.0, 20.0}; }

  double total_us() const { return adc_us + dsp_us + dac_us + speaker_us; }
  double total_s() const { return total_us() * 1e-6; }
};

/// Usable lookahead after subtracting the processing budget and any
/// wireless-link group delay, in seconds. Negative means the system misses
/// the deadline by that much (a conventional headphone's situation).
inline double usable_lookahead_s(double acoustic_lookahead_s,
                                 const LatencyBudget& budget,
                                 double link_delay_s = 0.0) {
  return acoustic_lookahead_s - budget.total_s() - link_delay_s;
}

/// Convert usable lookahead to whole non-causal taps at `sample_rate`
/// (clamped at zero; the fractional remainder becomes phase error the
/// adaptive filter must absorb).
inline std::size_t lookahead_taps(double usable_s, double sample_rate) {
  ensure(sample_rate > 0, "sample rate must be positive");
  if (usable_s <= 0) return 0;
  return static_cast<std::size_t>(std::floor(usable_s * sample_rate));
}

/// The paper's Equation 4 restated: lookahead from geometry.
inline double geometric_lookahead_s(double d_relay_m, double d_ear_m,
                                    double speed_of_sound = kSpeedOfSound) {
  return (d_ear_m - d_relay_m) / speed_of_sound;
}

}  // namespace mute::core
