#include "core/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/window.hpp"

namespace mute::core {

double ProfileSignature::distance(const ProfileSignature& other) const {
  ensure(band_fraction.size() == other.band_fraction.size(),
         "signatures must have equal band counts");
  double l1 = 0.0;
  for (std::size_t i = 0; i < band_fraction.size(); ++i) {
    l1 += std::abs(band_fraction[i] - other.band_fraction[i]);
  }
  const double level_term = std::abs(level_db - other.level_db) / 40.0;
  return l1 + level_term;
}

SignatureExtractor::SignatureExtractor(double sample_rate,
                                       std::size_t fft_size,
                                       std::size_t bands)
    : fs_(sample_rate),
      fft_size_(fft_size),
      window_(mute::dsp::make_window(mute::dsp::WindowType::kHann, fft_size)),
      buf_(fft_size) {
  ensure(sample_rate > 0, "sample rate must be positive");
  ensure(is_pow2(fft_size), "fft size must be a power of two");
  ensure(bands >= 2, "need >= 2 bands");
  // Log-spaced band edges from 100 Hz to Nyquist.
  const double lo = 100.0;
  const double hi = sample_rate / 2.0;
  bands_.reserve(bands);
  for (std::size_t b = 0; b < bands; ++b) {
    const double f0 = lo * std::pow(hi / lo, static_cast<double>(b) /
                                                  static_cast<double>(bands));
    const double f1 = lo * std::pow(hi / lo, static_cast<double>(b + 1) /
                                                  static_cast<double>(bands));
    bands_.emplace_back(f0, f1);
  }
}

ProfileSignature SignatureExtractor::extract(std::span<const Sample> frame) {
  ensure(frame.size() >= fft_size_, "frame shorter than FFT size");
  // Use the most recent fft_size_ samples of the frame. The Hann window
  // and the FFT workspace are built once in the constructor — this runs
  // every profiler frame, and rebuilding both per call burned an
  // allocation plus a transcendental fill on the hot path.
  const std::size_t off = frame.size() - fft_size_;
  for (std::size_t i = 0; i < fft_size_; ++i) {
    buf_[i] = Complex(window_[i] * static_cast<double>(frame[off + i]), 0.0);
  }
  mute::dsp::fft_inplace(buf_);

  ProfileSignature sig;
  sig.band_fraction.assign(bands_.size(), 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k <= fft_size_ / 2; ++k) {
    const double f = mute::dsp::bin_frequency(k, fft_size_, fs_);
    const double p = std::norm(buf_[k]);
    for (std::size_t b = 0; b < bands_.size(); ++b) {
      // Bands are half-open [f0, f1) except the last, which closes at
      // Nyquist: with every edge half-open the fs/2 bin satisfied no
      // band's `f < f1`, so content near Nyquist silently vanished from
      // the fractions and they stopped summing to 1.
      const bool in_band =
          f >= bands_[b].first &&
          (f < bands_[b].second ||
           (b + 1 == bands_.size() && f <= bands_[b].second));
      if (in_band) {
        sig.band_fraction[b] += p;
        break;
      }
    }
    total += p;
  }
  if (total > 1e-20) {
    for (double& v : sig.band_fraction) v /= total;
  }
  sig.level_db = power_to_db(total / static_cast<double>(fft_size_));
  return sig;
}

ProfileClassifier::ProfileClassifier() : ProfileClassifier(Options{}) {}

ProfileClassifier::ProfileClassifier(Options options) : opts_(options) {
  ensure(options.max_profiles >= 2, "need >= 2 profile slots");
  ensure(options.match_threshold > 0, "threshold must be positive");
}

std::size_t ProfileClassifier::classify(const ProfileSignature& signature) {
  // Silence gate first: profile 0.
  if (signature.level_db < opts_.silence_db) {
    if (centroids_.empty()) centroids_.push_back(signature);
    return 0;
  }
  if (centroids_.empty()) {
    // Seed slot 0 (silence) lazily with a quiet placeholder, then slot 1.
    ProfileSignature quiet = signature;
    quiet.level_db = -120.0;
    centroids_.push_back(std::move(quiet));
  }

  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t i = 1; i < centroids_.size(); ++i) {
    const double d = signature.distance(centroids_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  if (centroids_.size() == 1 ||
      (best_d > opts_.match_threshold &&
       centroids_.size() < opts_.max_profiles)) {
    centroids_.push_back(signature);
    return centroids_.size() - 1;
  }
  // Absorb into the nearest centroid (EMA), but only on confident matches
  // so transition frames cannot drag the centroid across clusters.
  if (best_d < opts_.absorb_fraction * opts_.match_threshold) {
    auto& c = centroids_[best];
    for (std::size_t i = 0; i < c.band_fraction.size(); ++i) {
      c.band_fraction[i] += opts_.centroid_alpha *
                            (signature.band_fraction[i] - c.band_fraction[i]);
    }
    c.level_db += opts_.centroid_alpha * (signature.level_db - c.level_db);
  }
  return best;
}

void ProfileClassifier::reset() { centroids_.clear(); }

}  // namespace mute::core
