#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "core/gcc_phat.hpp"

namespace mute::core {

/// Lookahead measurement for one candidate relay.
struct RelayMeasurement {
  std::size_t relay_index = 0;
  double lookahead_s = 0.0;   // positive = relay leads the ear
  double confidence = 0.0;    // GCC-PHAT peak value
};

/// Outcome of a selection round.
struct RelaySelection {
  /// Chosen relay (largest positive lookahead), or nullopt when every
  /// relay lags the ear — the paper's "no relay selected" case, where the
  /// client must fall back to no cancellation and nudge the user.
  std::optional<RelayMeasurement> chosen;
  std::vector<RelayMeasurement> all;
  /// Warm-standby ranking: every confident, positive-lookahead relay in
  /// descending lookahead order (`ranked.front() == *chosen` when any
  /// qualify). The device keeps this list so a failed association can be
  /// handed to the runner-up instead of re-listening for a full period.
  std::vector<RelayMeasurement> ranked;
};

/// Options for the periodic relay-selection correlation (Section 4.2).
struct RelaySelectorOptions {
  double max_lag_s = 0.05;          // correlation search window
  double min_confidence = 0.05;     // reject spurious peaks
  double min_lookahead_s = 100e-6;  // require a usefully positive lead
};

/// Geometry/health-aware standby score: which rival earns the shadow
/// filter's adaptation budget. Confidence weights the measurement's
/// trustworthiness; lookahead is credited only up to `needed_lookahead_s`
/// (the lead at which the device's tap cap saturates — lead beyond it buys
/// no extra non-causal taps, so it must not outrank a more confident
/// measurement). Returns confidence * min(1, lookahead / needed);
/// non-positive lookahead scores 0.
double standby_score(const RelayMeasurement& m, double needed_lookahead_s);

/// Decide which relay (if any) offers positive lookahead by GCC-PHAT
/// correlating each relay's forwarded waveform against the error-mic
/// recording of the same interval.
RelaySelection select_relay(
    std::span<const Signal> relay_streams,
    std::span<const Sample> error_mic_stream, double sample_rate,
    const RelaySelectorOptions& options = {});

/// Streaming wrapper that accumulates synchronized relay/error-mic audio
/// and re-runs selection every `period_s` (the paper correlates
/// periodically to track moving sources).
class RelaySelector {
 public:
  RelaySelector(std::size_t relay_count, double sample_rate,
                double period_s = 0.5, RelaySelectorOptions options = {});

  /// Push one synchronized sample per relay plus the error-mic sample.
  /// Returns a fresh selection when a period completes, nullopt otherwise.
  MUTE_RT_ESCAPE(
      "selection capture: appends into reserve()d period buffers per tick "
      "and runs a full GCC-PHAT selection round once per period_s; the "
      "periodic round is amortized control-plane work the design knowingly "
      "runs on the audio thread (DESIGN.md \u00a711)")
  std::optional<RelaySelection> push(std::span<const Sample> relay_samples,
                                     Sample error_mic_sample);

  /// Most recent completed selection (empty before the first period).
  const std::optional<RelaySelection>& current() const { return latest_; }

  std::size_t relay_count() const { return relays_.size(); }

 private:
  double fs_;
  std::size_t period_samples_;
  RelaySelectorOptions opts_;
  std::vector<Signal> relays_;
  Signal error_;
  std::optional<RelaySelection> latest_;
};

}  // namespace mute::core
