#pragma once

#include <cstddef>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"

namespace mute::core {

/// Reasons the monitor currently (or last) flagged the link, as a bitmask.
struct LinkFlags {
  enum : unsigned {
    kNone = 0,
    kNonFinite = 1u << 0,  // NaN/Inf reached the reference stream
    kNoiseBurst = 1u << 1,  // demod noise surge (carrier loss / jammer)
    kSaturated = 1u << 2,   // sustained clipping at the reference input
    kSilent = 1u << 3,      // reference fell to the noise floor
  };
};

/// Thresholds for the streaming link-health estimator. The defaults are
/// tuned for the repo's FM chain at 16 kHz where healthy received audio
/// sits around 0.1 rms: when the 900 MHz carrier disappears, the FM
/// discriminator emits wideband noise that lands near 0.3 rms after
/// decimation — a sustained ~10 dB power surge, which is the primary
/// dropout signature.
struct LinkMonitorOptions {
  double short_tau_s = 0.002;   // fast power tracker (surge detector)
  double long_tau_s = 0.5;      // slow baseline tracker (frozen when bad)
  // Noise-burst detector: short-term power must exceed BOTH the ratio
  // against the (floored) long-term baseline and an absolute gate. The
  // absolute gate keeps a loud ambient onset after silence from being
  // mistaken for carrier loss.
  double dropout_power_ratio = 6.0;
  double dropout_min_power = 0.08;   // power ≙ 0.28 rms
  double power_floor = 1e-4;         // baseline denominator floor
  double saturation_level = 0.98;    // |x| at/above this counts as clipping
  // Amplitude below which the reference counts as candidate silence. Set
  // above the residue a captured FM discriminator leaves behind: a strong
  // co-channel jammer *captures* the demodulator and collapses its output
  // to ~1.5e-3 rms (measured), so jammer capture is detected as silence.
  double silence_threshold = 4e-3;
  // Silence is judged on its own slower power EMA: a captured
  // discriminator still emits isolated clicks (cycle slips), and against
  // the fast tracker each click would reset the silence evidence. Long
  // enough to dilute clicks, short enough to keep detection inside
  // silence_hold_s-scale latency.
  double silence_tau_s = 0.02;
  // Hysteresis holds, both directions (seconds of sustained evidence).
  double unhealthy_hold_s = 0.008;
  double silence_hold_s = 0.15;
  // Recovery must out-last a capture transition: while a jammer wrestles
  // the discriminator away from the carrier (~70 ms measured), the output
  // power sweeps right through the healthy range and no instantaneous
  // detector can tell it from a real recovery. Only evidence sustained
  // longer than that sweep counts.
  double recover_hold_s = 0.15;
};

/// Streaming per-sample health estimator for the received wireless
/// reference. Call `process()` with every reference sample; it returns the
/// sanitized sample (the input while the link is healthy, 0 while it is
/// not), so downstream per-sample code — which enforces MUTE_CHECK_FINITE —
/// never sees NaN/Inf or demodulator garbage.
///
/// Detectors: fast/slow power trackers (dropout-noise surge), a non-finite
/// sanity check, a saturation counter, and a silence squelch. All flags go
/// through sustained-evidence hysteresis in both directions so a single
/// odd sample neither trips nor clears the monitor. Allocation-free per
/// sample.
class LinkMonitor {
 public:
  LinkMonitor(const LinkMonitorOptions& options, double sample_rate);

  /// Push one received-reference sample; returns the sanitized sample.
  MUTE_RT_SAFE Sample process(Sample x);

  bool healthy() const { return healthy_; }
  /// Flags of the current (or, when healthy, most recent) fault episode.
  unsigned flags() const { return latched_flags_; }

  /// Distinct unhealthy episodes so far (including an ongoing one).
  std::size_t fault_episodes() const { return episodes_; }
  /// Total samples spent unhealthy.
  std::size_t unhealthy_samples() const { return unhealthy_samples_; }

  double short_power() const { return short_power_; }
  double long_power() const { return long_power_; }

  void reset();

 private:
  LinkMonitorOptions opts_;
  double alpha_short_;
  double alpha_long_;
  double alpha_silence_;
  double silence_power_;
  std::size_t unhealthy_hold_samples_;
  std::size_t silence_hold_samples_;
  std::size_t recover_hold_samples_;

  bool healthy_ = true;
  unsigned latched_flags_ = LinkFlags::kNone;
  double short_power_ = 0.0;
  double long_power_ = 0.0;
  double silence_ema_ = 0.0;
  std::size_t bad_streak_ = 0;
  std::size_t silent_streak_ = 0;
  std::size_t good_streak_ = 0;
  std::size_t episodes_ = 0;
  std::size_t unhealthy_samples_ = 0;
};

}  // namespace mute::core
