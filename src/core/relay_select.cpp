#include "core/relay_select.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mute::core {

RelaySelection select_relay(std::span<const Signal> relay_streams,
                            std::span<const Sample> error_mic_stream,
                            double sample_rate,
                            const RelaySelectorOptions& options) {
  ensure(!relay_streams.empty(), "need at least one relay stream");
  RelaySelection out;
  out.all.reserve(relay_streams.size());
  for (std::size_t i = 0; i < relay_streams.size(); ++i) {
    ensure(relay_streams[i].size() == error_mic_stream.size(),
           "relay and error-mic records must be aligned");
    const auto g = gcc_phat(relay_streams[i], error_mic_stream, sample_rate,
                            options.max_lag_s);
    RelayMeasurement m;
    m.relay_index = i;
    m.lookahead_s = g.peak_lag_s;  // positive: ear lags the relay
    m.confidence = g.peak_value;
    out.all.push_back(m);
  }
  // Rank every confident, positive-lookahead candidate (descending
  // lookahead); the winner is the head, the rest are warm standbys.
  for (const auto& m : out.all) {
    if (m.confidence < options.min_confidence) continue;
    if (m.lookahead_s < options.min_lookahead_s) continue;
    out.ranked.push_back(m);
  }
  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const RelayMeasurement& a, const RelayMeasurement& b) {
              if (a.lookahead_s != b.lookahead_s) {
                return a.lookahead_s > b.lookahead_s;
              }
              return a.relay_index < b.relay_index;  // deterministic ties
            });
  if (!out.ranked.empty()) out.chosen = out.ranked.front();
  return out;
}

RelaySelector::RelaySelector(std::size_t relay_count, double sample_rate,
                             double period_s, RelaySelectorOptions options)
    : fs_(sample_rate),
      period_samples_(static_cast<std::size_t>(period_s * sample_rate)),
      opts_(options), relays_(relay_count) {
  ensure(relay_count >= 1, "need at least one relay");
  ensure(period_samples_ >= 256, "selection period too short");
  for (auto& r : relays_) r.reserve(period_samples_);
  error_.reserve(period_samples_);
}

double standby_score(const RelayMeasurement& m, double needed_lookahead_s) {
  ensure(needed_lookahead_s > 0.0, "needed lookahead must be positive");
  if (m.lookahead_s <= 0.0) return 0.0;
  const double usable = std::min(1.0, m.lookahead_s / needed_lookahead_s);
  return m.confidence * usable;
}

std::optional<RelaySelection> RelaySelector::push(
    std::span<const Sample> relay_samples, Sample error_mic_sample) {
  ensure(relay_samples.size() == relays_.size(),
         "one sample per relay required");
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    relays_[i].push_back(relay_samples[i]);
  }
  error_.push_back(error_mic_sample);
  if (error_.size() < period_samples_) return std::nullopt;

  RelaySelection sel =
      select_relay(relays_, error_, fs_, opts_);
  latest_ = sel;
  for (auto& r : relays_) r.clear();
  error_.clear();
  return sel;
}

}  // namespace mute::core
