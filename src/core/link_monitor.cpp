#include "core/link_monitor.hpp"

#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace mute::core {

namespace {

double tau_to_alpha(double tau_s, double sample_rate) {
  if (tau_s <= 0.0) return 1.0;
  return 1.0 - std::exp(-1.0 / (tau_s * sample_rate));
}

std::size_t hold_samples(double hold_s, double sample_rate) {
  const double n = std::ceil(hold_s * sample_rate);
  return n < 1.0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace

LinkMonitor::LinkMonitor(const LinkMonitorOptions& options, double sample_rate)
    : opts_(options),
      alpha_short_(tau_to_alpha(options.short_tau_s, sample_rate)),
      alpha_long_(tau_to_alpha(options.long_tau_s, sample_rate)),
      alpha_silence_(tau_to_alpha(options.silence_tau_s, sample_rate)),
      silence_power_(options.silence_threshold * options.silence_threshold),
      unhealthy_hold_samples_(hold_samples(options.unhealthy_hold_s,
                                           sample_rate)),
      silence_hold_samples_(hold_samples(options.silence_hold_s, sample_rate)),
      recover_hold_samples_(hold_samples(options.recover_hold_s,
                                         sample_rate)) {
  ensure(sample_rate > 0.0, "link monitor sample rate must be positive");
  ensure(options.dropout_power_ratio > 1.0,
         "dropout power ratio must exceed 1");
  ensure(options.power_floor > 0.0, "power floor must be positive");
}

Sample LinkMonitor::process(Sample x) {
  // The monitor is the layer that ABSORBS bad samples, so unlike every
  // other per-sample entry point it must not MUTE_CHECK_FINITE its input;
  // it checks finiteness itself and squelches instead of aborting.
  MUTE_RT_SCOPE("LinkMonitor::process");
  const double xv = static_cast<double>(x);
  const bool finite = std::isfinite(xv);
  bool bad = false;
  bool silent_now = false;
  bool quiet_now = false;
  unsigned flags = LinkFlags::kNone;

  if (!finite) {
    bad = true;
    flags |= LinkFlags::kNonFinite;
  } else {
    const double p = xv * xv;
    short_power_ += alpha_short_ * (p - short_power_);
    const double baseline =
        long_power_ > opts_.power_floor ? long_power_ : opts_.power_floor;
    const bool noise_burst =
        short_power_ > opts_.dropout_min_power &&
        short_power_ > opts_.dropout_power_ratio * baseline;
    const bool saturated = std::abs(xv) >= opts_.saturation_level;
    if (noise_burst) flags |= LinkFlags::kNoiseBurst;
    if (saturated) flags |= LinkFlags::kSaturated;
    bad = noise_burst || saturated;
    // Silence runs on its own slower tracker so the isolated clicks a
    // captured discriminator emits cannot reset the silence evidence.
    silence_ema_ += alpha_silence_ * (p - silence_ema_);
    silent_now = silence_ema_ < silence_power_;
    // Weaker but faster silence evidence: right after a loss the slow EMA
    // is still decaying from the healthy baseline and reports nothing for
    // ~6 time constants. The fast tracker collapses within milliseconds,
    // so EITHER tracker under the threshold vetoes recovery and baseline
    // learning — otherwise the monitor declares the link healthy inside
    // that decay window and feeds dead air to the adaptive filter.
    quiet_now = silent_now || short_power_ < silence_power_;
    // The slow baseline learns only from samples we currently believe in;
    // freezing it during suspected faults (including suspected silence)
    // keeps a long outage from normalizing itself into the baseline.
    if (!bad && !quiet_now && healthy_) {
      long_power_ += alpha_long_ * (short_power_ - long_power_);
    }
  }

  if (bad) {
    ++bad_streak_;
  } else {
    bad_streak_ = 0;
  }
  if (silent_now) {
    ++silent_streak_;
  } else {
    silent_streak_ = 0;
  }

  if (healthy_) {
    // A single NaN/Inf flags instantly (it is unambiguous); statistical
    // evidence must persist for its hold time.
    const bool want_unhealthy = !finite ||
                                bad_streak_ >= unhealthy_hold_samples_ ||
                                silent_streak_ >= silence_hold_samples_;
    if (want_unhealthy) {
      healthy_ = false;
      latched_flags_ = flags | (silent_streak_ >= silence_hold_samples_
                                    ? LinkFlags::kSilent
                                    : LinkFlags::kNone);
      good_streak_ = 0;
      ++episodes_;
    }
  } else {
    if (finite && !bad && !quiet_now) {
      ++good_streak_;
    } else {
      good_streak_ = 0;
      if (flags != LinkFlags::kNone) latched_flags_ |= flags;
      if (silent_streak_ >= silence_hold_samples_) {
        latched_flags_ |= LinkFlags::kSilent;
      }
    }
    if (good_streak_ >= recover_hold_samples_) {
      healthy_ = true;
      bad_streak_ = 0;
      silent_streak_ = 0;
      good_streak_ = 0;
    }
  }

  if (!healthy_) {
    ++unhealthy_samples_;
    return 0.0f;
  }
  return x;
}

void LinkMonitor::reset() {
  healthy_ = true;
  latched_flags_ = LinkFlags::kNone;
  short_power_ = 0.0;
  long_power_ = 0.0;
  silence_ema_ = 0.0;
  bad_streak_ = 0;
  silent_streak_ = 0;
  good_streak_ = 0;
  episodes_ = 0;
  unhealthy_samples_ = 0;
}

}  // namespace mute::core
