#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "adaptive/fxlms.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "core/filter_cache.hpp"
#include "core/profile.hpp"
#include "dsp/ring_history.hpp"

namespace mute::core {

/// Configuration of the LANC controller.
struct LancOptions {
  mute::adaptive::FxlmsOptions fxlms{};  // noncausal_taps = usable lookahead
  double sample_rate = kDefaultSampleRate;

  // Predictive sound profiling (Section 3.2, opportunity 2).
  bool profiling = false;
  std::size_t profile_frame = 256;      // samples per signature frame
  std::size_t profile_hop = 128;        // frames overlap 50%
  // Consecutive agreeing frames before a switch is scheduled. Speech has
  // syllable-scale (tens of ms) energy dips that must NOT trigger a swap;
  // only sentence-scale transitions should (8 frames ~ 64 ms at 16 kHz).
  std::size_t switch_hysteresis = 8;
  ProfileClassifier::Options classifier{};

  // Graceful degradation: seconds over which the anti-noise output ramps
  // to zero after hold() (and back to unity after resume()). Short enough
  // to beat a fault's damage, long enough to avoid an audible click.
  double hold_ramp_s = 0.008;
};

/// Lookahead-Aware Noise Cancellation — the paper's Algorithm 1 plus the
/// predict-and-switch profiling layer.
///
/// The controller consumes the wirelessly forwarded reference stream,
/// which runs `fxlms.noncausal_taps` samples *ahead* of the acoustic
/// wavefront at the error microphone. Per audio tick:
///
///   Sample y = lanc.tick(x_advanced);   // anti-noise to play now
///   ... the simulator/hardware mixes y acoustically ...
///   lanc.observe_error(e);              // error-mic feedback, adapts
///
/// Profiling watches the *advanced* stream, so a profile transition is
/// classified before the corresponding wavefront reaches the ear; the
/// weight swap is scheduled to land exactly when it arrives.
class LancController {
 public:
  LancController(std::vector<double> secondary_path_estimate,
                 LancOptions options);

  /// Push the newest advanced reference sample, run profiling, and return
  /// the anti-noise sample for the current instant.
  MUTE_RT_SAFE Sample tick(Sample x_advanced);

  /// Feed back the error microphone sample for the tick just played.
  /// Ignored while holding (adaptation is frozen, mu -> 0 equivalent).
  MUTE_RT_SAFE void observe_error(Sample error);

  /// Graceful degradation on a flagged reference link: freeze adaptation
  /// and profiling, and ramp the anti-noise output toward zero so the ear
  /// is never louder than passive. tick() must keep being called (with the
  /// sanitized reference) so the ramp and the engine history advance.
  MUTE_RT_SAFE void hold();

  /// Link is healthy again: re-enable adaptation and ramp the output back.
  MUTE_RT_SAFE void resume();

  /// Warm-standby handoff: re-target the controller to a different relay
  /// without discarding the converged filter. In order:
  ///   1. the outgoing relay's pre-transition weights are stored under its
  ///      (relay, profile) cache key — UNLESS `outgoing_flagged` (weights
  ///      touched while the link was faulted must never poison the cache);
  ///   2. the live weights are remapped to the new relay's lookahead
  ///      window (`FxlmsEngine::retarget_noncausal`; see there for the
  ///      shift derivation) and the signal history is cleared;
  ///   3. if the incoming (relay, current profile) pair has a cache entry
  ///      of matching length, it is preloaded over the remap — the filter
  ///      last *converged against that relay* beats any remap.
  /// `advance_shift_samples` is the measured change in relay lead (old
  /// minus new, in whole samples). Profiler transition state is reset (its
  /// window watched the old relay's stream). Control-plane: allocates.
  /// After a retarget the caller must keep tick()ing so the fresh history
  /// refills; pair with hold()/resume() to mute the refill transient.
  MUTE_RT_UNSAFE void retarget(std::size_t new_relay,
                               std::size_t new_noncausal_taps,
                               std::ptrdiff_t advance_shift_samples,
                               bool outgoing_flagged);

  /// Install a shadow-pre-converged filter after a retarget(): weights AND
  /// the reference window they converged against (newest-first, both sized
  /// engine().total_taps()). The history priming is what removes the
  /// re-acquisition gap — weights over a zeroed delay line output nothing
  /// for total_taps ticks. The installed weights are also stored under the
  /// (relay(), current profile) cache key: they are the best converged
  /// state known for this relay. Call AFTER hold() — hold()'s snapshot
  /// rollback would otherwise clobber the install. Control-plane work.
  MUTE_RT_UNSAFE void install_converged(
      std::span<const double> weights,
      std::span<const double> x_newest_first);

  /// The relay index used for filter-cache keying (see retarget()).
  std::size_t relay() const { return relay_; }
  void set_relay(std::size_t relay) { relay_ = relay; }

  bool holding() const { return holding_; }

  /// Number of future taps N (== usable lookahead in samples).
  std::size_t lookahead_samples() const {
    return engine_.noncausal_taps();
  }

  std::size_t current_profile() const { return current_profile_; }
  std::size_t profile_switch_count() const { return switch_count_; }
  std::size_t profile_count() const { return classifier_.profile_count(); }

  const mute::adaptive::FxlmsEngine& engine() const { return engine_; }
  mute::adaptive::FxlmsEngine& engine() { return engine_; }
  const LancOptions& options() const { return opts_; }

  void reset();

 private:
  MUTE_RT_ESCAPE(
      "predictive profiling hop: amortized control-plane work (signature\n"
      "extraction + classification every profile_hop samples) the design\n"
      "knowingly runs on the audio thread; DESIGN.md \u00a711")
  void run_profiler(Sample x_advanced);
  MUTE_RT_ESCAPE(
      "profile-switch landing: cache store/load + weight swap, runs once\n"
      "per confirmed profile transition, not per sample; DESIGN.md \u00a711")
  void apply_pending_switch();

  LancOptions opts_;
  mute::adaptive::FxlmsEngine engine_;
  // Which relay the engine is currently converged against; the first key
  // axis of every cache store/load.
  std::size_t relay_ = 0;

  // Profiling state.
  SignatureExtractor extractor_;
  ProfileClassifier classifier_;
  FilterCache cache_;
  // Pre-transition weight snapshots: a switch is confirmed only after the
  // hysteresis window, by which time the LMS has already drifted toward
  // the incoming profile. Caching the *current* weights would pollute the
  // outgoing profile's entry with that drift, so a short ring of
  // per-frame snapshots preserves the state from before the transition.
  std::deque<std::vector<double>> weight_snapshots_;
  std::size_t snapshot_depth_ = 4;
  // Rolling window of advanced samples, oldest-first, O(1) per tick; the
  // contiguous window feeds the signature extractor directly.
  dsp::FrameHistory<Sample> frame_buffer_;
  std::size_t frame_fill_ = 0;
  std::size_t hop_counter_ = 0;
  std::size_t current_profile_ = 0;
  // Sliding window of recent frame classifications: a switch is scheduled
  // when the whole window disagrees with the current profile, toward the
  // window's modal id. (Counting *consecutive identical* ids instead
  // deadlocks when the classifier flaps between two near-duplicate
  // clusters of the same physical source.)
  std::deque<std::size_t> recent_ids_;
  // Signed so -1 can mean "no swap scheduled"; std::ptrdiff_t (not long)
  // so it is the same width as the std::size_t tap counts it is assigned
  // from on every platform.
  std::ptrdiff_t switch_countdown_ = -1;  // samples until a swap lands
  std::size_t pending_profile_ = 0;
  std::size_t switch_count_ = 0;

  // Degradation state: output gain slews toward 0 (holding) or 1 (running)
  // by gain_step_ per tick.
  bool holding_ = false;
  double output_gain_ = 1.0;
  double gain_step_ = 1.0;
};

}  // namespace mute::core
