#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "adaptive/fd_fxlms.hpp"
#include "adaptive/fxlms.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "core/filter_cache.hpp"
#include "core/profile.hpp"
#include "dsp/ring_history.hpp"

namespace mute::core {

/// Which adaptive engine runs the LANC signal path.
///
/// kTimeDomain is the per-sample FxlmsEngine — the pinned reference whose
/// latency model matches the paper's hardware story. kFdBlock is the
/// partitioned-block frequency-domain engine (adaptive::FdFxlmsEngine):
/// it buffers the advanced reference into blocks of `fd_block` samples
/// and produces anti-noise one block behind, which LANC absorbs in the
/// acoustic lead — the engine runs with `noncausal_taps - fd_block`
/// future taps, so block size ≤ lookahead adds ZERO effective latency
/// while cutting the per-sample cost from O(taps) to O(log taps)
/// (DESIGN.md §13).
enum class LancEngineKind {
  kTimeDomain,
  kFdBlock,
};

/// Configuration of the LANC controller.
struct LancOptions {
  mute::adaptive::FxlmsOptions fxlms{};  // noncausal_taps = usable lookahead
  double sample_rate = kDefaultSampleRate;

  // Engine selection (see LancEngineKind). kFdBlock requires
  // fxlms.noncausal_taps >= fd_block: the block pipeline delay must fit
  // inside the acoustic lead.
  LancEngineKind engine = LancEngineKind::kTimeDomain;
  // Block size for kFdBlock (power of two). 0 picks the largest power of
  // two <= min(max(fxlms.noncausal_taps / 2, 1), 256): half the lead pays
  // the block pipeline, the other half stays with the filter as future
  // taps.
  std::size_t fd_block = 0;
  mute::adaptive::FdConstraint fd_constraint =
      mute::adaptive::FdConstraint::kRoundRobin;

  // Predictive sound profiling (Section 3.2, opportunity 2).
  bool profiling = false;
  std::size_t profile_frame = 256;      // samples per signature frame
  std::size_t profile_hop = 128;        // frames overlap 50%
  // Consecutive agreeing frames before a switch is scheduled. Speech has
  // syllable-scale (tens of ms) energy dips that must NOT trigger a swap;
  // only sentence-scale transitions should (8 frames ~ 64 ms at 16 kHz).
  std::size_t switch_hysteresis = 8;
  ProfileClassifier::Options classifier{};

  // Graceful degradation: seconds over which the anti-noise output ramps
  // to zero after hold() (and back to unity after resume()). Short enough
  // to beat a fault's damage, long enough to avoid an audible click.
  double hold_ramp_s = 0.008;
};

/// Lookahead-Aware Noise Cancellation — the paper's Algorithm 1 plus the
/// predict-and-switch profiling layer.
///
/// The controller consumes the wirelessly forwarded reference stream,
/// which runs `fxlms.noncausal_taps` samples *ahead* of the acoustic
/// wavefront at the error microphone. Per audio tick:
///
///   Sample y = lanc.tick(x_advanced);   // anti-noise to play now
///   ... the simulator/hardware mixes y acoustically ...
///   lanc.observe_error(e);              // error-mic feedback, adapts
///
/// Profiling watches the *advanced* stream, so a profile transition is
/// classified before the corresponding wavefront reaches the ear; the
/// weight swap is scheduled to land exactly when it arrives.
class LancController {
 public:
  LancController(std::vector<double> secondary_path_estimate,
                 LancOptions options);

  /// Push the newest advanced reference sample, run profiling, and return
  /// the anti-noise sample for the current instant.
  MUTE_RT_SAFE Sample tick(Sample x_advanced);

  /// Feed back the error microphone sample for the tick just played.
  /// Ignored while holding (adaptation is frozen, mu -> 0 equivalent).
  MUTE_RT_SAFE void observe_error(Sample error);

  /// Graceful degradation on a flagged reference link: freeze adaptation
  /// and profiling, and ramp the anti-noise output toward zero so the ear
  /// is never louder than passive. tick() must keep being called (with the
  /// sanitized reference) so the ramp and the engine history advance.
  MUTE_RT_SAFE void hold();

  /// Link is healthy again: re-enable adaptation and ramp the output back.
  MUTE_RT_SAFE void resume();

  /// Warm-standby handoff: re-target the controller to a different relay
  /// without discarding the converged filter. In order:
  ///   1. the outgoing relay's pre-transition weights are stored under its
  ///      (relay, profile) cache key — UNLESS `outgoing_flagged` (weights
  ///      touched while the link was faulted must never poison the cache);
  ///   2. the live weights are remapped to the new relay's lookahead
  ///      window (`FxlmsEngine::retarget_noncausal`; see there for the
  ///      shift derivation) and the signal history is cleared;
  ///   3. if the incoming (relay, current profile) pair has a cache entry
  ///      of matching length, it is preloaded over the remap — the filter
  ///      last *converged against that relay* beats any remap.
  /// `advance_shift_samples` is the measured change in relay lead (old
  /// minus new, in whole samples). Profiler transition state is reset (its
  /// window watched the old relay's stream). Control-plane: allocates.
  /// After a retarget the caller must keep tick()ing so the fresh history
  /// refills; pair with hold()/resume() to mute the refill transient.
  MUTE_RT_UNSAFE void retarget(std::size_t new_relay,
                               std::size_t new_noncausal_taps,
                               std::ptrdiff_t advance_shift_samples,
                               bool outgoing_flagged);

  /// Install a shadow-pre-converged filter after a retarget(): weights AND
  /// the reference window they converged against (newest-first, both sized
  /// engine().total_taps()). The history priming is what removes the
  /// re-acquisition gap — weights over a zeroed delay line output nothing
  /// for total_taps ticks. The installed weights are also stored under the
  /// (relay(), current profile) cache key: they are the best converged
  /// state known for this relay. Call AFTER hold() — hold()'s snapshot
  /// rollback would otherwise clobber the install. Control-plane work.
  MUTE_RT_UNSAFE void install_converged(
      std::span<const double> weights,
      std::span<const double> x_newest_first);

  /// The relay index used for filter-cache keying (see retarget()).
  std::size_t relay() const { return relay_; }
  void set_relay(std::size_t relay) { relay_ = relay; }

  bool holding() const { return holding_; }

  /// Number of future taps N (== usable lookahead in samples). For the
  /// block engine this is the *controller's* lookahead — the engine's
  /// future-tap window plus the block pipeline delay it absorbs.
  std::size_t lookahead_samples() const {
    return fd_engine_ ? fd_engine_->noncausal_taps() + fd_engine_->block_size()
                      : engine_.noncausal_taps();
  }

  LancEngineKind engine_kind() const {
    return fd_engine_ ? LancEngineKind::kFdBlock
                      : LancEngineKind::kTimeDomain;
  }

  /// The block engine, or nullptr in time-domain mode.
  const mute::adaptive::FdFxlmsEngine* fd_engine() const {
    return fd_engine_.get();
  }
  mute::adaptive::FdFxlmsEngine* fd_engine() { return fd_engine_.get(); }

  /// Active-engine weight vector / tap count (layout [w_{-N'} ... w_{L-1}]
  /// of whichever engine runs the signal path). Control-plane.
  MUTE_RT_UNSAFE std::vector<double> active_weights() const;
  std::size_t active_total_taps() const;

  std::size_t current_profile() const { return current_profile_; }
  std::size_t profile_switch_count() const { return switch_count_; }
  std::size_t profile_count() const { return classifier_.profile_count(); }

  const mute::adaptive::FxlmsEngine& engine() const { return engine_; }
  mute::adaptive::FxlmsEngine& engine() { return engine_; }
  const LancOptions& options() const { return opts_; }

  void reset();

 private:
  MUTE_RT_ESCAPE(
      "predictive profiling hop: amortized control-plane work (signature\n"
      "extraction + classification every profile_hop samples) the design\n"
      "knowingly runs on the audio thread; DESIGN.md \u00a711")
  void run_profiler(Sample x_advanced);
  MUTE_RT_ESCAPE(
      "profile-switch landing: cache store/load + weight swap, runs once\n"
      "per confirmed profile transition, not per sample; DESIGN.md \u00a711")
  void apply_pending_switch();

  // Block-engine signal path: lazily flush the filled input block at the
  // START of the tick (so the previous block's error window, which
  // completes in the observe_error just before, adapts against an
  // unmoved spectrum ring), then serve y from the output block.
  MUTE_RT_SAFE Sample fd_tick(Sample x_advanced);
  // Install weights on whichever engine is active.
  MUTE_RT_UNSAFE void install_weights(std::span<const double> w);
  // Reset the block pipeline (after retarget / reset: the buffered blocks
  // belong to the old stream).
  void reset_fd_pipeline();
  FilterCacheKey cache_key(std::size_t relay, std::size_t profile) const {
    return {relay, profile,
            fd_engine_ ? EngineKind::kFdBlock : EngineKind::kTimeDomain};
  }

  LancOptions opts_;
  mute::adaptive::FxlmsEngine engine_;
  // Block engine (kFdBlock only); when set, it owns the signal path and
  // engine_ above is idle reference plumbing.
  std::unique_ptr<mute::adaptive::FdFxlmsEngine> fd_engine_;
  // Block pipeline state: input accumulator, playing output block, and
  // the error window for the last played block (all preallocated).
  Signal fd_in_;
  Signal fd_out_;
  Signal fd_err_;
  std::size_t fd_in_fill_ = 0;
  std::size_t fd_out_pos_ = 0;
  std::size_t fd_err_fill_ = 0;
  bool fd_out_ready_ = false;   // first block has been produced
  bool fd_can_adapt_ = false;   // a process_block awaits its error window
  bool fd_err_dirty_ = false;   // hold() contaminated the current window
  // Which relay the engine is currently converged against; the first key
  // axis of every cache store/load.
  std::size_t relay_ = 0;

  // Profiling state.
  SignatureExtractor extractor_;
  ProfileClassifier classifier_;
  FilterCache cache_;
  // Pre-transition weight snapshots: a switch is confirmed only after the
  // hysteresis window, by which time the LMS has already drifted toward
  // the incoming profile. Caching the *current* weights would pollute the
  // outgoing profile's entry with that drift, so a short ring of
  // per-frame snapshots preserves the state from before the transition.
  std::deque<std::vector<double>> weight_snapshots_;
  std::size_t snapshot_depth_ = 4;
  // Rolling window of advanced samples, oldest-first, O(1) per tick; the
  // contiguous window feeds the signature extractor directly.
  dsp::FrameHistory<Sample> frame_buffer_;
  std::size_t frame_fill_ = 0;
  std::size_t hop_counter_ = 0;
  std::size_t current_profile_ = 0;
  // Sliding window of recent frame classifications: a switch is scheduled
  // when the whole window disagrees with the current profile, toward the
  // window's modal id. (Counting *consecutive identical* ids instead
  // deadlocks when the classifier flaps between two near-duplicate
  // clusters of the same physical source.)
  std::deque<std::size_t> recent_ids_;
  // Signed so -1 can mean "no swap scheduled"; std::ptrdiff_t (not long)
  // so it is the same width as the std::size_t tap counts it is assigned
  // from on every platform.
  std::ptrdiff_t switch_countdown_ = -1;  // samples until a swap lands
  std::size_t pending_profile_ = 0;
  std::size_t switch_count_ = 0;

  // Degradation state: output gain slews toward 0 (holding) or 1 (running)
  // by gain_step_ per tick.
  bool holding_ = false;
  double output_gain_ = 1.0;
  double gain_step_ = 1.0;
};

}  // namespace mute::core
