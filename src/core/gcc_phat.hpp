#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::core {

/// Result of a GCC-PHAT cross-correlation between two recordings.
struct GccPhatResult {
  std::vector<double> lag_s;        // lag axis (seconds), negative..positive
  std::vector<double> correlation;  // PHAT-weighted correlation per lag
  double peak_lag_s = 0.0;          // argmax lag
  double peak_value = 0.0;          // correlation at the peak
};

/// Generalized cross-correlation with phase transform (Brandstein &
/// Silverman), the paper's Section 4.2 tool for deciding whether the
/// wirelessly forwarded signal leads the acoustic arrival.
///
/// Convention: a *positive* peak lag means `delayed` is a delayed copy of
/// `reference` — i.e. the relay (pass it as `reference`) heard the sound
/// `peak_lag_s` seconds before the ear (pass its mic as `delayed`), so the
/// lookahead is positive and the relay is usable.
GccPhatResult gcc_phat(std::span<const Sample> reference,
                       std::span<const Sample> delayed, double sample_rate,
                       double max_lag_s = 0.05);

}  // namespace mute::core
