#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::core {

/// A sound profile: the paper's "statistical signature for the sound
/// source — a simple example is the average energy distribution across
/// frequencies". We use log-band energies normalized to unit sum plus the
/// absolute level, so the classifier distinguishes both spectral shape
/// (speech vs wideband) and presence (speech vs pause).
struct ProfileSignature {
  std::vector<double> band_fraction;  // normalized per-band energy
  double level_db = -120.0;           // overall frame level

  /// Distance between two signatures (symmetric, >= 0): L1 on band
  /// fractions plus a scaled level term.
  double distance(const ProfileSignature& other) const;
};

/// Computes signatures from raw frames of the lookahead buffer.
class SignatureExtractor {
 public:
  /// `bands` log-spaced bands between 100 Hz and fs/2 (default 8).
  SignatureExtractor(double sample_rate, std::size_t fft_size = 256,
                     std::size_t bands = 8);

  /// Non-const: reuses the preallocated window/FFT workspace (extraction
  /// runs once per profiler frame; rebuilding them per call was measurable
  /// on the hot path).
  ProfileSignature extract(std::span<const Sample> frame);

  std::size_t fft_size() const { return fft_size_; }

 private:
  double fs_;
  std::size_t fft_size_;
  std::vector<double> window_;  // Hann, built once
  ComplexSignal buf_;           // FFT workspace, reused every frame
  std::vector<std::pair<double, double>> bands_;
};

/// Online profile classifier: nearest-signature matching with a creation
/// threshold — an unsupervised, tiny k-means-like clustering that assigns
/// every frame to a profile id (0-based). Bounded at `max_profiles`; when
/// full, the closest existing profile absorbs the frame.
class ProfileClassifier {
 public:
  struct Options {
    double match_threshold = 0.6;  // distance above which a new profile forms
    std::size_t max_profiles = 6;
    double centroid_alpha = 0.05;  // EMA update toward new members
    // Centroids absorb (EMA-drift toward) a frame only when the match is
    // confident — within this fraction of the threshold. Without the
    // margin, borderline frames during source transitions drag a centroid
    // across the feature space until one cluster swallows everything.
    double absorb_fraction = 0.5;
    double silence_db = -55.0;     // below this level -> dedicated profile 0
  };

  ProfileClassifier();
  explicit ProfileClassifier(Options options);

  /// Classify a signature; profile 0 is reserved for silence/background
  /// below the silence threshold.
  std::size_t classify(const ProfileSignature& signature);

  std::size_t profile_count() const { return centroids_.size(); }
  const Options& options() const { return opts_; }
  void reset();

 private:
  Options opts_;
  std::vector<ProfileSignature> centroids_;  // index 0 = silence
};

}  // namespace mute::core
