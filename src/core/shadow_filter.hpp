#pragma once

#include <cstddef>
#include <span>

#include "adaptive/fxlms.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"

namespace mute::core {

/// Budget and convergence policy for the shadow pre-convergence filter.
struct ShadowFilterOptions {
  /// Adapt once every `adapt_stride` observed samples. The reference push
  /// is O(1) and runs every sample (the history must stay sample-exact);
  /// the O(taps) prediction + gradient step runs on this stride, so the
  /// shadow's steady-state cost is ~1/stride of the primary engine's.
  std::size_t adapt_stride = 4;
  /// EMA smoothing for the prediction-error and target-power trackers
  /// (per adaptation step; 0.005 ~ a few hundred updates of memory).
  double ema_alpha = 0.005;
  /// Minimum adaptation steps before the shadow may report converged —
  /// the EMAs are meaningless until the filter has seen real data.
  std::size_t min_updates = 512;
  /// Converged when the prediction-error EMA falls below this fraction of
  /// the target-power EMA (0.25 = the shadow reproduces the primary's
  /// speaker feed to within -6 dB).
  double converged_ratio = 0.25;
  /// Hysteresis: once latched converged, the shadow stays converged until
  /// the error ratio rises ABOVE this (then re-latches at converged_ratio
  /// again). The moment a fault hits the primary, its speaker feed decays
  /// toward sanitized silence during the monitor's detection lag; the
  /// shadow keeps adapting against it, err ~ pred, and the ratio creeps up
  /// PAST converged_ratio in milliseconds (measured 0.23 -> 0.38 in 13 ms)
  /// — exactly when the handoff needs converged() to hold. The creep is
  /// bounded by the detection lag (the device stops observe() once the
  /// monitor flags), so a latch with ~2x headroom rides it out, while a
  /// genuinely diverged shadow (ratio ~1) still unlatches.
  double diverged_ratio = 0.5;
  /// Gross-error gate: once warmed up, an adaptation step whose
  /// instantaneous |error|^2 exceeds this multiple of the target-power EMA
  /// is rejected (no weight update, no EMA update). The primary's link
  /// monitor flags a dead link only after a short detection lag, and the
  /// speaker feed in that lag is garbage — without the gate those few
  /// milliseconds of outliers corrupt the converged weights and spike the
  /// error EMA past converged_ratio at exactly the moment the handoff
  /// needs it (measured: ratio 0.23 -> 0.61 in 13 ms on a relay dropout).
  /// A *persistent* regime change (the target legitimately got much
  /// louder) un-wedges itself: after min_updates consecutive rejections
  /// the statistics restart and adaptation resumes.
  double outlier_gate = 8.0;
};

/// Shadow pre-convergence for warm-standby failover (tentpole): while the
/// primary relay drives the LANC engine, the best standby's forwarded
/// stream trickle-adapts this background filter so a handoff can start
/// from a converged filter instead of a remap.
///
/// The trick is the training target. Adapting a second LANC against the
/// live error microphone cannot work — the primary is already cancelling,
/// so the residual is (by design) quiet and decorrelated, and a filter
/// trained on it converges to zero. Instead the shadow learns to *predict
/// the primary's speaker feed* from the standby's reference:
///
///     y_hat(t) = w_s^T x_standby   ->   minimize |y_hat - y_primary|^2
///
/// Both the primary's weights and the shadow's are speaker-feed filters in
/// the same [noncausal | causal] newest-first layout, so once the
/// prediction error is small, w_s IS the filter the LANC engine needs when
/// it re-targets to the standby — installable directly (with the shadow's
/// reference window priming the engine history), no gradient descent and
/// no history-refill gap. Implemented as an FxlmsEngine with an identity
/// secondary path, which degenerates FxLMS into plain prediction NLMS and
/// reuses the engine's divergence guard and excitation gate for free.
///
/// observe() is RT-safe and allocation-free; (re)assigning a target
/// allocates and belongs on the control plane.
class ShadowFilter {
 public:
  /// `engine_options` should mirror the primary LANC engine's FxlmsOptions
  /// (causal taps, mu, leakage, guard) so the learned weights are
  /// drop-in compatible; noncausal_taps is overridden per target.
  ShadowFilter(adaptive::FxlmsOptions engine_options,
               ShadowFilterOptions options);

  /// Start (or re-start) pre-converging for standby `relay`, whose usable
  /// lookahead maps to `noncausal_taps` future taps. Re-assigning the same
  /// (relay, taps) pair is a no-op — refreshed standby rankings must not
  /// discard accumulated convergence. Control-plane: allocates.
  MUTE_RT_UNSAFE void assign(std::size_t relay, std::size_t noncausal_taps,
                             double lookahead_s);

  /// Forget the current target (e.g. it was promoted to primary or its
  /// link died). Weights and convergence state reset on the next assign().
  void clear() { has_target_ = false; }

  /// One audio tick: the standby's newest (advanced) reference sample and
  /// the primary's speaker-feed sample for the same instant.
  MUTE_RT_SAFE void observe(Sample x_standby, Sample y_primary);

  /// Advance the reference window WITHOUT adapting — used while the
  /// primary is holding or handing off, when its (fading) speaker feed is
  /// not a trainable target but the window must stay contiguous with the
  /// live stream so an install stays sample-aligned.
  MUTE_RT_SAFE void track(Sample x_standby);

  bool has_target() const { return has_target_; }
  std::size_t relay() const { return relay_; }
  double lookahead_s() const { return lookahead_s_; }
  std::size_t update_count() const { return updates_; }

  /// Smoothed |prediction error|^2 / |target|^2 (1.0 until measurable).
  double error_ratio() const;
  /// True once the shadow predicts the primary well enough to install
  /// (latched with hysteresis — see ShadowFilterOptions::diverged_ratio).
  bool converged() const { return has_target_ && latched_; }

  /// The pre-converged engine: weights() to install, reference_window()
  /// to prime the primary engine's history at handoff.
  const adaptive::FxlmsEngine& engine() const { return engine_; }

 private:
  ShadowFilterOptions opts_;
  adaptive::FxlmsEngine engine_;  // identity secondary path
  bool has_target_ = false;
  std::size_t relay_ = 0;
  double lookahead_s_ = 0.0;
  std::size_t stride_pos_ = 0;
  std::size_t updates_ = 0;
  std::size_t outlier_streak_ = 0;
  bool latched_ = false;
  double err2_ema_ = 0.0;
  double tgt2_ema_ = 0.0;
};

}  // namespace mute::core
