#include "core/shadow_filter.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace mute::core {

namespace {

adaptive::FxlmsOptions shadow_engine_options(adaptive::FxlmsOptions base) {
  // The shadow starts with no lookahead window; assign() sizes it per
  // target via retarget_noncausal.
  base.noncausal_taps = 0;
  return base;
}

}  // namespace

ShadowFilter::ShadowFilter(adaptive::FxlmsOptions engine_options,
                           ShadowFilterOptions options)
    : opts_(options),
      engine_({1.0}, shadow_engine_options(engine_options)) {
  ensure(opts_.adapt_stride >= 1, "adapt stride must be >= 1");
  ensure(opts_.ema_alpha > 0.0 && opts_.ema_alpha <= 1.0,
         "ema alpha in (0, 1]");
  ensure(opts_.converged_ratio > 0.0, "converged ratio must be positive");
  ensure(opts_.diverged_ratio > opts_.converged_ratio,
         "hysteresis needs diverged_ratio > converged_ratio");
  ensure(opts_.outlier_gate > 1.0, "outlier gate must exceed 1");
}

void ShadowFilter::assign(std::size_t relay, std::size_t noncausal_taps,
                          double lookahead_s) {
  if (has_target_ && relay_ == relay &&
      engine_.noncausal_taps() == noncausal_taps) {
    // Same target re-ranked by a fresh selection round: keep the
    // accumulated convergence, just track the refreshed lookahead.
    lookahead_s_ = lookahead_s;
    return;
  }
  // New target (or a lookahead change big enough to resize the window):
  // the old weights predicted a different relay's geometry, so start
  // clean. reset() zeroes weights and history; retarget re-sizes the
  // window (a shift over all-zero weights stays all-zero).
  engine_.reset();
  engine_.retarget_noncausal(noncausal_taps, 0);
  has_target_ = true;
  relay_ = relay;
  lookahead_s_ = lookahead_s;
  stride_pos_ = 0;
  updates_ = 0;
  outlier_streak_ = 0;
  latched_ = false;
  err2_ema_ = 0.0;
  tgt2_ema_ = 0.0;
}

void ShadowFilter::observe(Sample x_standby, Sample y_primary) {
  MUTE_RT_SCOPE("ShadowFilter::observe");
  if (!has_target_) return;
  // The history must advance every sample (a decimated window would teach
  // the filter a decimated room); only the O(taps) work is budgeted.
  engine_.push_reference(x_standby);
  if (++stride_pos_ < opts_.adapt_stride) return;
  stride_pos_ = 0;
  const double pred = static_cast<double>(engine_.compute_antinoise());
  const double err = pred - static_cast<double>(y_primary);
  const double e2 = err * err;
  // Gross-error gate (see ShadowFilterOptions::outlier_gate): a warmed-up
  // shadow rejects steps whose error dwarfs the target power — the
  // signature of the primary's feed going bad before its monitor flags it.
  if (updates_ >= opts_.min_updates &&
      e2 > opts_.outlier_gate * std::max(tgt2_ema_, 1e-12)) {
    if (++outlier_streak_ <= opts_.min_updates) return;
    // Persistent, not a glitch: the target regime genuinely changed.
    // Restart the statistics and fall through to adapt on the new regime.
    updates_ = 0;
    outlier_streak_ = 0;
    latched_ = false;
    err2_ema_ = 0.0;
    tgt2_ema_ = 0.0;
  } else {
    outlier_streak_ = 0;
  }
  // FxlmsEngine::adapt steps w -= mu * e * u; with the identity secondary
  // path u == x, so passing e = (y_hat - y_primary) is exactly the NLMS
  // descent on the prediction error.
  engine_.adapt(static_cast<Sample>(err));
  ++updates_;
  const double a = opts_.ema_alpha;
  err2_ema_ += a * (e2 - err2_ema_);
  const double tgt = static_cast<double>(y_primary);
  tgt2_ema_ += a * (tgt * tgt - tgt2_ema_);
  // Convergence latch with hysteresis (Schmitt trigger): see the options
  // doc — a detection-lag creep must not unlatch a converged shadow.
  const double ratio = error_ratio();
  if (latched_) {
    if (ratio > opts_.diverged_ratio) latched_ = false;
  } else if (ratio < opts_.converged_ratio) {
    latched_ = true;
  }
}

void ShadowFilter::track(Sample x_standby) {
  MUTE_RT_SCOPE("ShadowFilter::track");
  if (!has_target_) return;
  engine_.push_reference(x_standby);
}

double ShadowFilter::error_ratio() const {
  if (updates_ < opts_.min_updates || tgt2_ema_ <= 1e-12) return 1.0;
  return err2_ema_ / tgt2_ema_;
}

}  // namespace mute::core
