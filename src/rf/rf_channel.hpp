#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mute::rf {

/// Complex-baseband wireless channel between the relay and the ear device.
/// Because the FM signal occupies only ~8 kHz inside the 26 MHz ISM band,
/// the channel is frequency-flat (single tap, as the paper argues), so we
/// model: path-loss gain, a static random phase, AWGN at a configured SNR,
/// carrier frequency offset, oscillator phase noise, and slow flat fading
/// (log-normal amplitude wobble). RF propagation delay at room scale is
/// ~3-30 ns << one baseband sample and is therefore zero samples.
struct RfChannelParams {
  double snr_db = 40.0;            // AWGN level relative to unit signal
  double cfo_hz = 200.0;           // TX/RX LO offset
  double phase_noise_rad = 1e-4;   // per-sample random walk std-dev
  double path_gain = 1.0;          // linear amplitude gain
  double fading_rate_hz = 0.5;     // bandwidth of the amplitude wobble
  double fading_depth = 0.0;       // 0 = no fading; 0.3 = +-~30% swings
};

class RfChannel {
 public:
  RfChannel(RfChannelParams params, double sample_rate, std::uint64_t seed);

  Complex process(Complex x);
  ComplexSignal process(std::span<const Complex> x);
  void reset();

  const RfChannelParams& params() const { return params_; }

 private:
  RfChannelParams params_;
  double fs_;
  std::uint64_t seed_;
  Rng rng_;
  double noise_std_ = 0.0;
  double cfo_phase_ = 0.0;
  double pn_phase_ = 0.0;
  double static_phase_ = 0.0;
  double fade_state_ = 0.0;
  double fade_alpha_ = 0.0;
};

}  // namespace mute::rf
