#include "rf/oscillator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::rf {

Nco::Nco(double freq_hz, double sample_rate, double initial_phase)
    : freq_(freq_hz), fs_(sample_rate), phase0_(initial_phase),
      phase_(initial_phase) {
  ensure(sample_rate > 0, "sample rate must be positive");
}

Complex Nco::tick() { return tick_fm(0.0); }

Complex Nco::tick_fm(double deviation_hz) {
  const Complex out = std::polar(1.0, phase_);
  phase_ = wrap_phase(phase_ + kTwoPi * (freq_ + deviation_hz) / fs_);
  return out;
}

void Nco::set_frequency(double freq_hz) { freq_ = freq_hz; }

void Nco::reset(double initial_phase) { phase_ = initial_phase; (void)phase0_; }

Vco::Vco(double center_hz, double gain_hz_per_unit, double sample_rate)
    : center_(center_hz), gain_(gain_hz_per_unit),
      nco_(center_hz, sample_rate) {
  ensure(gain_hz_per_unit > 0, "VCO gain must be positive");
}

Complex Vco::tick(double control_voltage) {
  return nco_.tick_fm(gain_ * control_voltage);
}

void Vco::reset() { nco_.reset(); }

Pll::Pll(Params params, double sample_rate, std::uint64_t seed)
    : params_(params), fs_(sample_rate), seed_(seed), rng_(seed) {
  ensure(sample_rate > 0, "sample rate must be positive");
  ensure(params.phase_noise_rad >= 0, "phase noise must be non-negative");
}

Complex Pll::tick() {
  const Complex out = std::polar(1.0, phase_);
  const double f_err =
      params_.frequency_error_hz + params_.drift_hz_per_s * t_;
  phase_ = wrap_phase(phase_ + kTwoPi * f_err / fs_ +
                      rng_.gaussian(params_.phase_noise_rad));
  t_ += 1.0 / fs_;
  return out;
}

void Pll::reset() {
  phase_ = 0.0;
  t_ = 0.0;
  rng_ = Rng(seed_);
}

}  // namespace mute::rf
