#include "rf/rf_channel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::rf {

RfChannel::RfChannel(RfChannelParams params, double sample_rate,
                     std::uint64_t seed)
    : params_(params), fs_(sample_rate), seed_(seed), rng_(seed) {
  ensure(sample_rate > 0, "sample rate must be positive");
  ensure(params.path_gain > 0, "path gain must be positive");
  ensure(params.fading_depth >= 0 && params.fading_depth < 1,
         "fading depth in [0,1)");
  // Complex AWGN with total power = signal_power / SNR for a unit-power
  // FM signal (|x| = 1): per-quadrature std-dev is sqrt(p/2).
  const double noise_power = db_to_power(-params.snr_db);
  noise_std_ = std::sqrt(noise_power / 2.0);
  static_phase_ = rng_.uniform(0.0, kTwoPi);
  fade_alpha_ = std::exp(-kTwoPi * params.fading_rate_hz / sample_rate);
}

Complex RfChannel::process(Complex x) {
  // CFO rotation.
  cfo_phase_ = wrap_phase(cfo_phase_ + kTwoPi * params_.cfo_hz / fs_);
  // Oscillator phase noise: random walk.
  pn_phase_ = wrap_phase(pn_phase_ + rng_.gaussian(params_.phase_noise_rad));
  // Slow log-normal fading.
  fade_state_ = fade_alpha_ * fade_state_ +
                (1.0 - fade_alpha_) * rng_.gaussian(6.0);
  const double fade =
      std::exp(params_.fading_depth * std::tanh(fade_state_));

  const Complex rotated =
      x * std::polar(params_.path_gain * fade,
                     static_phase_ + cfo_phase_ + pn_phase_);
  const Complex noise(rng_.gaussian(noise_std_), rng_.gaussian(noise_std_));
  return rotated + noise;
}

ComplexSignal RfChannel::process(std::span<const Complex> x) {
  ComplexSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

void RfChannel::reset() {
  rng_ = Rng(seed_);
  cfo_phase_ = pn_phase_ = 0.0;
  fade_state_ = 0.0;
  static_phase_ = rng_.uniform(0.0, kTwoPi);
}

}  // namespace mute::rf
