#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rt_annotations.hpp"

namespace mute::rf {

/// Spectrum planning for co-existing relays (paper Section 6, "RF
/// interference and channel contention"): each relay streams continuously,
/// so coexistence is frequency-division — assign every relay its own FM
/// channel inside the 26 MHz 900 MHz ISM band and count how many fit.

/// Carson's-rule occupied bandwidth of an FM signal: 2 * (deviation + fm).
inline double carson_bandwidth_hz(double deviation_hz, double audio_bw_hz) {
  ensure(deviation_hz > 0 && audio_bw_hz > 0, "positive parameters required");
  return 2.0 * (deviation_hz + audio_bw_hz);
}

/// How many relays fit in `band_hz` with `guard_hz` between channels.
inline std::size_t relay_capacity(double band_hz, double channel_bw_hz,
                                  double guard_hz = 0.0) {
  ensure(band_hz > 0 && channel_bw_hz > 0, "positive parameters required");
  ensure(guard_hz >= 0, "guard must be non-negative");
  return static_cast<std::size_t>(band_hz / (channel_bw_hz + guard_hz));
}

/// Center frequencies (offsets from the band's lower edge) for `count`
/// relays. Throws when the band cannot hold them.
inline std::vector<double> assign_channels(std::size_t count, double band_hz,
                                           double channel_bw_hz,
                                           double guard_hz = 0.0) {
  ensure(count >= 1, "need at least one relay");
  ensure(relay_capacity(band_hz, channel_bw_hz, guard_hz) >= count,
         "band cannot hold this many relays");
  std::vector<double> centers;
  centers.reserve(count);
  const double pitch = channel_bw_hz + guard_hz;
  for (std::size_t i = 0; i < count; ++i) {
    centers.push_back(channel_bw_hz / 2.0 + static_cast<double>(i) * pitch);
  }
  return centers;
}

/// The 900 MHz ISM band the paper's relay uses (paper: 26 MHz wide).
inline constexpr double kIsmBandHz = 26e6;

/// ---------------------------------------------------------------------
/// Monitor-driven spectrum planning. The static helpers above answer "how
/// many relays fit"; the planner below answers "what do we do when the
/// channel a relay sits on goes bad" — the runtime half of coexistence on
/// a shared ISM band. It consumes LinkMonitor-style adverse evidence and
/// emits per-relay actions: hop to the cleanest free channel first, and
/// only when no cleaner channel exists, step TX power (hop -> hop -> TX
/// escalation). Everything is preallocated at construction; the advisory
/// path is RT-safe.

struct SpectrumPlannerOptions {
  /// ISM channels available to the mesh (the 26 MHz band holds 8 channels
  /// of ~3 MHz pitch comfortably; see relay_capacity()).
  std::size_t channel_count = 8;
  /// Exponential decay rate (1/s) of per-channel penalty and per-relay
  /// adverse pressure. ~0.5/s forgets a jammer burst in a few seconds.
  double penalty_decay_per_s = 0.5;
  /// Adverse pressure a relay must accumulate before the planner acts.
  /// Each note_adverse() adds 1; with decay this is "a couple of adverse
  /// rounds in quick succession", filtering one-off blips.
  double hop_threshold = 2.0;
  /// Minimum dwell between actions on one relay. Rate-limits hopping so a
  /// wideband/jammer-everywhere fault cannot trigger a hop storm.
  double min_dwell_s = 0.25;
  /// A candidate channel must beat the current one by this much penalty
  /// before a hop is worth the retune transient.
  double hop_margin = 0.5;
  /// TX power escalation: step size and cap (dB above nominal).
  double tx_step_db = 3.0;
  double tx_max_db = 6.0;
};

enum class PlannerActionKind {
  kNone,    // keep current tuning
  kHop,     // retune to `channel`
  kTxStep,  // raise TX power to `tx_gain_db`
};

struct PlannerAction {
  PlannerActionKind kind = PlannerActionKind::kNone;
  std::size_t relay = 0;
  std::size_t channel = 0;     // valid when kind == kHop
  double tx_gain_db = 0.0;     // valid when kind == kTxStep
};

/// Per-mesh spectrum planner. One instance supervises all relays: channel
/// penalties are global (a jammer seen by relay A warns relay B off that
/// channel), adverse pressure and dwell timers are per relay, and a hop
/// never lands on a channel another relay currently occupies.
///
/// Protocol per control round, per relay:
///   - note_adverse(relay, now_s) whenever the link monitor flags the
///     relay's stream unhealthy; note_clean(relay, now_s) otherwise.
///   - action = plan(relay, now_s); apply kHop via RelayLink::retune()
///     (latency cache intentionally survives — see relay.hpp) or kTxStep
///     via RelayLink::set_tx_gain_db().
class SpectrumPlanner {
 public:
  SpectrumPlanner(std::size_t relay_count, SpectrumPlannerOptions options);

  /// Record monitor evidence for `relay` at stream time `now_s`. Adverse
  /// evidence penalizes the channel the relay is currently tuned to.
  MUTE_RT_SAFE void note_adverse(std::size_t relay, double now_s);
  MUTE_RT_SAFE void note_clean(std::size_t relay, double now_s);

  /// Decide the next action for `relay`. Mutates planner state when the
  /// action is not kNone (occupancy, dwell timer, adverse pressure), so
  /// the caller must apply the returned action.
  MUTE_RT_SAFE PlannerAction plan(std::size_t relay, double now_s);

  std::size_t relay_count() const { return relays_.size(); }
  std::size_t channel_count() const { return penalty_.size(); }
  std::size_t channel_of(std::size_t relay) const;
  double tx_gain_db(std::size_t relay) const;
  double channel_penalty(std::size_t channel) const;
  double adverse_pressure(std::size_t relay) const;

 private:
  MUTE_RT_SAFE void decay_to(double now_s);
  MUTE_RT_SAFE bool occupied_by_peer(std::size_t channel,
                                     std::size_t relay) const;

  struct RelayState {
    std::size_t channel = 0;
    double adverse = 0.0;      // decayed adverse pressure
    double tx_gain_db = 0.0;
    double last_action_s = -1e9;
  };

  SpectrumPlannerOptions opt_;
  std::vector<RelayState> relays_;
  std::vector<double> penalty_;  // per-channel, shared across the mesh
  double last_decay_s_ = 0.0;
};

}  // namespace mute::rf
