#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace mute::rf {

/// Spectrum planning for co-existing relays (paper Section 6, "RF
/// interference and channel contention"): each relay streams continuously,
/// so coexistence is frequency-division — assign every relay its own FM
/// channel inside the 26 MHz 900 MHz ISM band and count how many fit.

/// Carson's-rule occupied bandwidth of an FM signal: 2 * (deviation + fm).
inline double carson_bandwidth_hz(double deviation_hz, double audio_bw_hz) {
  ensure(deviation_hz > 0 && audio_bw_hz > 0, "positive parameters required");
  return 2.0 * (deviation_hz + audio_bw_hz);
}

/// How many relays fit in `band_hz` with `guard_hz` between channels.
inline std::size_t relay_capacity(double band_hz, double channel_bw_hz,
                                  double guard_hz = 0.0) {
  ensure(band_hz > 0 && channel_bw_hz > 0, "positive parameters required");
  ensure(guard_hz >= 0, "guard must be non-negative");
  return static_cast<std::size_t>(band_hz / (channel_bw_hz + guard_hz));
}

/// Center frequencies (offsets from the band's lower edge) for `count`
/// relays. Throws when the band cannot hold them.
inline std::vector<double> assign_channels(std::size_t count, double band_hz,
                                           double channel_bw_hz,
                                           double guard_hz = 0.0) {
  ensure(count >= 1, "need at least one relay");
  ensure(relay_capacity(band_hz, channel_bw_hz, guard_hz) >= count,
         "band cannot hold this many relays");
  std::vector<double> centers;
  centers.reserve(count);
  const double pitch = channel_bw_hz + guard_hz;
  for (std::size_t i = 0; i < count; ++i) {
    centers.push_back(channel_bw_hz / 2.0 + static_cast<double>(i) * pitch);
  }
  return centers;
}

/// The 900 MHz ISM band the paper's relay uses (paper: 26 MHz wide).
inline constexpr double kIsmBandHz = 26e6;

}  // namespace mute::rf
