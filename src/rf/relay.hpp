#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "dsp/resampler.hpp"
#include "rf/fm.hpp"
#include "rf/frontend.hpp"
#include "rf/impairments.hpp"
#include "rf/oscillator.hpp"
#include "rf/rf_channel.hpp"

namespace mute::rf {

/// Configuration of the end-to-end relay link.
struct RelayConfig {
  double audio_rate = kDefaultSampleRate;
  double rf_rate = kDefaultRfSampleRate;
  double audio_cutoff_hz = 7'000.0;   // relay LPF
  double audio_gain = 1.0;
  double clip_level = 4.0;
  double fm_deviation_hz = 60'000.0;  // wideband-FM-style deviation
  double pa_backoff_db = 3.0;
  double rx_bandwidth_hz = 180'000.0; // channel-select bandwidth (Carson)
  // Privacy (Section 4.4 "sound scrambling"): spectrally invert the audio
  // before modulation (multiply by (-1)^n, mapping f -> fs/2 - f). The
  // legitimate ear device inverts it back; an eavesdropper who demodulates
  // the FM signal without the descrambler hears an unintelligible
  // frequency-flipped version.
  bool scramble = false;
  RfChannelParams channel{};
  // Scripted fault events (relay power-off, jammers, fades, impulses,
  // clock drift) injected around the benign channel model. Empty = the
  // benign link. See rf/impairments.hpp.
  FaultSchedule faults{};
};

/// The all-analog IoT relay transmitter (paper Figure 9): microphone audio
/// -> LPF -> amplifier -> VCO/FM -> (PLL up-conversion, modeled as the
/// baseband phasor) -> PA. Audio enters at `audio_rate`; the emitted
/// complex baseband stream is at `rf_rate`. No sample is ever stored.
///
/// Every stage is streaming-stateful (biquads, VCO phase, and the
/// interpolator's carried input tail), so splitting a record into blocks
/// produces the bit-identical stream a single whole-record call would.
class RelayTransmitter {
 public:
  RelayTransmitter(const RelayConfig& config, std::uint64_t seed);

  /// Transmit a block of audio; returns the complex baseband RF signal
  /// (length = audio length * rf_rate / audio_rate).
  ComplexSignal transmit(std::span<const Sample> audio);

  void reset();

 private:
  RelayConfig cfg_;
  AudioFrontEnd front_end_;
  mute::dsp::StreamingResampler upsampler_;
  FmModulator modulator_;
  PowerAmplifier pa_;
};

/// The ear-device receiver: channel-select filter -> FM discriminator ->
/// DC block (CFO removal) -> decimation back to the audio rate. Streaming-
/// stateful end to end (see RelayTransmitter): block boundaries are
/// invisible in the output.
class EarReceiver {
 public:
  EarReceiver(const RelayConfig& config, std::uint64_t seed);

  /// Receive a complex baseband block; returns audio at `audio_rate`.
  Signal receive(std::span<const Complex> rf);

  void reset();

 private:
  RelayConfig cfg_;
  ChannelSelectFilter select_;
  FmDemodulator demodulator_;
  mute::dsp::StreamingResampler downsampler_;
  bool descramble_phase_ = false;
};

/// Offline convenience: the full relay -> channel -> receiver pipeline.
/// Use `measure_latency_samples()` once to learn the link's group delay in
/// audio samples; the ANC timing budget must subtract it from the acoustic
/// lookahead (Equation 3).
class RelayLink {
 public:
  RelayLink(const RelayConfig& config, std::uint64_t seed);

  /// Push audio through TX -> channel -> RX. Output length == input length
  /// (the link's filters introduce group delay *within* the stream, which
  /// is the realistic behaviour the ANC must budget for).
  Signal process(std::span<const Sample> audio);

  /// Estimate the link group delay by cross-correlating a white probe with
  /// its received copy. Deterministic per seed; cached after first call.
  ///
  /// Cache invariant: the measurement depends only on (config, seed) — the
  /// probe always runs through a *fresh, fault-free* copy of the link — so
  /// the cached value stays valid across `reset()` and across streaming.
  /// It does NOT survive anything that changes the link's group delay:
  /// callers that mutate the config or install a fault schedule containing
  /// clock drift (which accumulates a persistent timing shift, see
  /// FaultInjector::accumulated_drift_samples()) must call
  /// `invalidate_latency_cache()` to force a re-measure.
  double measure_latency_samples();

  /// Drop the cached group-delay measurement. Called automatically by
  /// `set_fault_schedule()`; call it manually after mutating anything else
  /// that affects the link's timing.
  void invalidate_latency_cache() { cached_latency_ = -1.0; }

  /// Replace the scripted fault schedule mid-life. The injector's fault
  /// clock restarts at stream time zero; the latency cache is invalidated
  /// because drift events change the link's effective group delay.
  void set_fault_schedule(FaultSchedule schedule);

  /// Retune the link to another ISM channel (spectrum-planner action).
  /// Composition with the latency cache: a retune does NOT invalidate the
  /// cached group delay — the channel index is a narrowband coupling label
  /// for channel-pinned jammers, not a different signal path, so the
  /// link's group delay is unchanged. Only mutations that change timing
  /// (set_fault_schedule with clock drift, config edits) force a
  /// re-measure.
  void retune(std::size_t channel) { channel_.retune(channel); }
  std::size_t channel() const { return channel_.channel(); }

  /// TX power step in dB (planner escalation). Amplitude-only: the FM
  /// information lives in frequency, so the latency cache stays valid.
  void set_tx_gain_db(double gain_db) { channel_.set_tx_gain_db(gain_db); }
  double tx_gain_db() const { return channel_.tx_gain_db(); }

  /// Audio-band SNDR of the link for a sine probe at `tone_hz`, in dB.
  double measure_sndr_db(double tone_hz, double amplitude = 0.5);

  /// What an eavesdropper (standard FM receiver WITHOUT the descrambler)
  /// hears: correlation with the transmitted audio collapses when
  /// scrambling is on. Returns the received audio record.
  Signal eavesdrop(std::span<const Sample> audio);

  const RelayConfig& config() const { return cfg_; }
  const FaultInjector& injector() const { return channel_; }

  /// Rewind the link to stream time zero. Deterministic per (config, seed),
  /// so the latency cache is intentionally kept — see
  /// measure_latency_samples() for the invariant.
  void reset();

 private:
  RelayConfig cfg_;
  std::uint64_t seed_;
  RelayTransmitter tx_;
  FaultInjector channel_;
  EarReceiver rx_;
  double cached_latency_ = -1.0;
};

}  // namespace mute::rf
