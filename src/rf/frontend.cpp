#include "rf/frontend.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::rf {

using mute::dsp::Biquad;

AudioFrontEnd::AudioFrontEnd(double cutoff_hz, double gain, double clip_level,
                             double sample_rate)
    : lpf1_(Biquad::lowpass(cutoff_hz, 0.5412, sample_rate)),
      lpf2_(Biquad::lowpass(cutoff_hz, 1.3066, sample_rate)),
      gain_(gain), clip_(clip_level) {
  ensure(gain > 0, "gain must be positive");
  ensure(clip_level > 0, "clip level must be positive");
}

Sample AudioFrontEnd::process(Sample x) {
  const double filtered =
      static_cast<double>(lpf2_.process(lpf1_.process(x)));
  // Soft clip: linear for small signals, saturates at +-clip_.
  return static_cast<Sample>(clip_ * std::tanh(gain_ * filtered / clip_));
}

Signal AudioFrontEnd::process(std::span<const Sample> x) {
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

void AudioFrontEnd::reset() {
  lpf1_.reset();
  lpf2_.reset();
}

PowerAmplifier::PowerAmplifier(double backoff_db)
    : sat_level_(db_to_amplitude(backoff_db)) {
  ensure(backoff_db >= 0, "backoff must be >= 0 dB");
}

Complex PowerAmplifier::process(Complex x) const {
  const double mag = std::abs(x);
  if (mag < 1e-15) return x;
  const double compressed = sat_level_ * std::tanh(mag / sat_level_);
  return x * (compressed / mag);
}

ComplexSignal PowerAmplifier::process(std::span<const Complex> x) const {
  ComplexSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

ChannelSelectFilter::ChannelSelectFilter(double bandwidth_hz,
                                         double sample_rate)
    : re1_(Biquad::lowpass(bandwidth_hz / 2.0, 0.5412, sample_rate)),
      re2_(Biquad::lowpass(bandwidth_hz / 2.0, 1.3066, sample_rate)),
      im1_(Biquad::lowpass(bandwidth_hz / 2.0, 0.5412, sample_rate)),
      im2_(Biquad::lowpass(bandwidth_hz / 2.0, 1.3066, sample_rate)) {}

Complex ChannelSelectFilter::process(Complex x) {
  const double re = static_cast<double>(
      re2_.process(re1_.process(static_cast<Sample>(x.real()))));
  const double im = static_cast<double>(
      im2_.process(im1_.process(static_cast<Sample>(x.imag()))));
  return {re, im};
}

ComplexSignal ChannelSelectFilter::process(std::span<const Complex> x) {
  ComplexSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

void ChannelSelectFilter::reset() {
  re1_.reset();
  re2_.reset();
  im1_.reset();
  im2_.reset();
}

}  // namespace mute::rf
