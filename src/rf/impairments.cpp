#include "rf/impairments.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::rf {

namespace {

// Drift delay ring length (power of two). At the 256 kHz baseband rate this
// is 16 ms of headroom — far beyond what any realistic ppm schedule
// accumulates (100 ppm for 60 s is ~1.5 k samples).
constexpr std::size_t kDriftRingSize = 4096;

// Amplitude coupling of a channel-pinned jammer into a receiver tuned to
// `rx_channel`. Co-channel couples at unity; one channel away the
// channel-select filter leaves ~ -30 dB (adjacent-channel rejection of the
// 4th-order select filter against a tone one full FM channel pitch out of
// band); two or more away the tone is far outside the passband and only a
// negligible floor remains. A -1 event follows the victim (legacy
// co-channel semantics), so it always couples at unity.
double jammer_channel_coupling(int jammer_channel, std::size_t rx_channel) {
  if (jammer_channel < 0) return 1.0;
  const auto jc = static_cast<std::ptrdiff_t>(jammer_channel);
  const auto rc = static_cast<std::ptrdiff_t>(rx_channel);
  const std::ptrdiff_t d = jc > rc ? jc - rc : rc - jc;
  if (d == 0) return 1.0;
  if (d == 1) return 0.0316;  // -30 dB adjacent-channel rejection
  return 1e-4;                // -80 dB: out of the selectivity curve
}

// Raised-cosine shape of a fade event: 0 outside, smooth 0->1 over the
// entry ramp, 1 at the bottom, smooth 1->0 over the exit ramp.
double fade_shape(const FaultEvent& event, double t) {
  const double ramp = std::min(event.fade_ramp_s, 0.5 * event.duration_s);
  double p = 1.0;
  if (ramp > 0.0) {
    if (t < event.start_s + ramp) {
      p = (t - event.start_s) / ramp;
    } else if (t > event.end_s() - ramp) {
      p = (event.end_s() - t) / ramp;
    }
  }
  p = std::clamp(p, 0.0, 1.0);
  return 0.5 * (1.0 - std::cos(kPi * p));
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRelayOff: return "relay-off";
    case FaultKind::kJammer: return "jammer";
    case FaultKind::kDeepFade: return "deep-fade";
    case FaultKind::kImpulseNoise: return "impulse-noise";
    case FaultKind::kClockDrift: return "clock-drift";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::add(FaultEvent event) {
  ensure(event.start_s >= 0.0, "fault event start must be >= 0");
  ensure(event.duration_s >= 0.0, "fault event duration must be >= 0");
  events_.push_back(event);
  return *this;
}

FaultSchedule& FaultSchedule::relay_off(double start_s, double duration_s) {
  FaultEvent e;
  e.kind = FaultKind::kRelayOff;
  e.start_s = start_s;
  e.duration_s = duration_s;
  return add(e);
}

FaultSchedule& FaultSchedule::jammer(double start_s, double duration_s,
                                     double offset_hz, double power_db,
                                     int channel) {
  FaultEvent e;
  e.kind = FaultKind::kJammer;
  e.start_s = start_s;
  e.duration_s = duration_s;
  e.jammer_offset_hz = offset_hz;
  e.jammer_power_db = power_db;
  e.jammer_channel = channel;
  return add(e);
}

FaultSchedule& FaultSchedule::deep_fade(double start_s, double duration_s,
                                        double depth_db, double ramp_s) {
  ensure(depth_db >= 0.0, "fade depth is a positive dB dip");
  FaultEvent e;
  e.kind = FaultKind::kDeepFade;
  e.start_s = start_s;
  e.duration_s = duration_s;
  e.fade_depth_db = depth_db;
  e.fade_ramp_s = ramp_s;
  return add(e);
}

FaultSchedule& FaultSchedule::impulse_noise(double start_s, double duration_s,
                                            double rate_hz, double amplitude) {
  ensure(rate_hz >= 0.0, "impulse rate must be >= 0");
  FaultEvent e;
  e.kind = FaultKind::kImpulseNoise;
  e.start_s = start_s;
  e.duration_s = duration_s;
  e.impulse_rate_hz = rate_hz;
  e.impulse_amplitude = amplitude;
  return add(e);
}

FaultSchedule& FaultSchedule::clock_drift(double start_s, double duration_s,
                                          double ppm) {
  FaultEvent e;
  e.kind = FaultKind::kClockDrift;
  e.start_s = start_s;
  e.duration_s = duration_s;
  e.drift_ppm = ppm;
  return add(e);
}

FaultSchedule& FaultSchedule::merge(const FaultSchedule& other) {
  for (const FaultEvent& e : other.events_) add(e);
  return *this;
}

bool FaultSchedule::has(FaultKind kind) const {
  return std::any_of(events_.begin(), events_.end(),
                     [kind](const FaultEvent& e) { return e.kind == kind; });
}

double FaultSchedule::end_s() const {
  double end = 0.0;
  for (const FaultEvent& e : events_) end = std::max(end, e.end_s());
  return end;
}

FaultInjector::FaultInjector(FaultSchedule schedule,
                             RfChannelParams channel_params,
                             double sample_rate, std::uint64_t seed)
    : schedule_(std::move(schedule)),
      channel_(channel_params, sample_rate, seed),
      fs_(sample_rate),
      seed_(seed),
      rng_(seed ^ 0xFA17u) {
  ensure(sample_rate > 0.0, "sample rate must be positive");
  rebuild_fault_state();
}

void FaultInjector::rebuild_fault_state() {
  // Static jammer phases: deterministic per (seed, event index).
  Rng phase_rng(seed_ ^ 0x1A33E4ull);
  jammer_phase_.assign(schedule_.events().size(), 0.0);
  for (std::size_t i = 0; i < jammer_phase_.size(); ++i) {
    jammer_phase_[i] = phase_rng.uniform(0.0, kTwoPi);
  }
  has_drift_ = schedule_.has(FaultKind::kClockDrift);
  drift_ring_.assign(has_drift_ ? kDriftRingSize : 0, Complex{0.0, 0.0});
  drift_write_ = 0;
  drift_delay_ = 0.0;
}

void FaultInjector::reset() {
  channel_.reset();
  rng_ = Rng(seed_ ^ 0xFA17u);
  n_ = 0;
  drift_write_ = 0;
  drift_delay_ = 0.0;
  if (has_drift_) {
    std::fill(drift_ring_.begin(), drift_ring_.end(), Complex{0.0, 0.0});
  }
}

void FaultInjector::set_schedule(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
  rebuild_fault_state();
  reset();
}

Complex FaultInjector::process(Complex x) {
  MUTE_RT_SCOPE("FaultInjector::process");
  const double t = static_cast<double>(n_) / fs_;
  ++n_;

  // --- Signal-path faults (before the channel: they happen at/near TX).
  double gain = 1.0;
  bool carrier_off = false;
  double drift_ppm = 0.0;
  const auto& events = schedule_.events();
  for (const FaultEvent& e : events) {
    if (t < e.start_s || t >= e.end_s()) continue;
    switch (e.kind) {
      case FaultKind::kRelayOff:
        carrier_off = true;
        break;
      case FaultKind::kDeepFade:
        gain *= db_to_amplitude(-e.fade_depth_db * fade_shape(e, t));
        break;
      case FaultKind::kClockDrift:
        drift_ppm += e.drift_ppm;
        break;
      default:
        break;
    }
  }

  Complex s = carrier_off ? Complex{0.0, 0.0} : x * (gain * tx_gain_lin_);

  if (has_drift_) {
    // The relay's cheap crystal runs fast/slow during a drift event; at
    // complex baseband that is a slowly growing fractional group delay.
    // The offset persists after the event (the clock was wrong for a
    // while; the stream stays shifted), which is exactly why drift must
    // invalidate any cached latency measurement.
    drift_ring_[static_cast<std::size_t>(drift_write_ &
                                         (kDriftRingSize - 1))] = s;
    ++drift_write_;
    drift_delay_ += drift_ppm * 1e-6;
    drift_delay_ = std::clamp(
        drift_delay_, 0.0, static_cast<double>(kDriftRingSize - 2));
    double pos = static_cast<double>(drift_write_ - 1) - drift_delay_;
    if (pos < 0.0) pos = 0.0;
    const auto i0 = static_cast<std::uint64_t>(pos);
    const double frac = pos - static_cast<double>(i0);
    const Complex a = drift_ring_[static_cast<std::size_t>(
        i0 & (kDriftRingSize - 1))];
    const Complex b = drift_ring_[static_cast<std::size_t>(
        (i0 + 1) & (kDriftRingSize - 1))];
    s = a * (1.0 - frac) + b * frac;
  }

  Complex y = channel_.process(s);

  // --- Receiver-side interference (added after the channel, like any
  // external emitter the ear's antenna also picks up).
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (t < e.start_s || t >= e.end_s()) continue;
    if (e.kind == FaultKind::kJammer) {
      const double couple =
          jammer_channel_coupling(e.jammer_channel, active_channel_);
      const double amp = std::sqrt(db_to_power(e.jammer_power_db)) * couple;
      const double phi =
          kTwoPi * e.jammer_offset_hz * t + jammer_phase_[i];
      y += Complex{amp * std::cos(phi), amp * std::sin(phi)};
    } else if (e.kind == FaultKind::kImpulseNoise) {
      if (rng_.bernoulli(std::min(1.0, e.impulse_rate_hz / fs_))) {
        const double amp = e.impulse_amplitude * rng_.uniform(0.5, 1.5);
        const double phi = rng_.uniform(0.0, kTwoPi);
        y += Complex{amp * std::cos(phi), amp * std::sin(phi)};
      }
    }
  }
  return y;
}

void FaultInjector::set_tx_gain_db(double gain_db) {
  tx_gain_db_ = gain_db;
  tx_gain_lin_ = db_to_amplitude(gain_db);
}

ComplexSignal FaultInjector::process(std::span<const Complex> x) {
  // Fast path: an empty schedule at nominal TX power is the benign
  // channel, block-processed.
  if (schedule_.empty() && tx_gain_lin_ == 1.0) {
    n_ += x.size();
    return channel_.process(x);
  }
  ComplexSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

}  // namespace mute::rf
