#include "rf/fm.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::rf {

FmModulator::FmModulator(double deviation_hz, double sample_rate)
    : deviation_(deviation_hz), fs_(sample_rate) {
  ensure(deviation_hz > 0, "deviation must be positive");
  ensure(deviation_hz < sample_rate / 2,
         "deviation must fit inside the baseband bandwidth");
}

Complex FmModulator::modulate(Sample m) {
  MUTE_CHECK_FINITE(m, "FM modulator input sample");
  MUTE_RT_SCOPE("FmModulator::modulate");
  phase_ = wrap_phase(phase_ +
                      kTwoPi * deviation_ * static_cast<double>(m) / fs_);
  return std::polar(1.0, phase_);
}

ComplexSignal FmModulator::modulate(std::span<const Sample> m) {
  ComplexSignal out(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) out[i] = modulate(m[i]);
  return out;
}

void FmModulator::reset() { phase_ = 0.0; }

FmDemodulator::FmDemodulator(double deviation_hz, double sample_rate,
                             double dc_block_hz)
    : deviation_(deviation_hz), fs_(sample_rate),
      dc_block_(mute::dsp::Biquad::highpass(dc_block_hz, 0.707, sample_rate)) {
  ensure(deviation_hz > 0, "deviation must be positive");
}

Sample FmDemodulator::demodulate(Complex r) {
  MUTE_CHECK_FINITE(r.real(), "FM demodulator baseband sample (I)");
  MUTE_CHECK_FINITE(r.imag(), "FM demodulator baseband sample (Q)");
  MUTE_RT_SCOPE("FmDemodulator::demodulate");
  // Phase difference between consecutive phasors; magnitude is discarded
  // (hard limiter), which is what grants AM-distortion immunity.
  const Complex d = r * std::conj(prev_);
  prev_ = r;
  const double dphi = std::atan2(d.imag(), d.real());
  last_hz_ = dphi * fs_ / kTwoPi;
  const double m = last_hz_ / deviation_;
  return dc_block_.process(static_cast<Sample>(m));
}

Signal FmDemodulator::demodulate(std::span<const Complex> r) {
  Signal out(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) out[i] = demodulate(r[i]);
  return out;
}

void FmDemodulator::reset() {
  prev_ = Complex(1.0, 0.0);
  last_hz_ = 0.0;
  dc_block_.reset();
}

}  // namespace mute::rf
