#include "rf/relay.hpp"

#include <algorithm>
#include <cmath>

#include "audio/generators.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"
#include "dsp/resampler.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"

namespace mute::rf {

RelayTransmitter::RelayTransmitter(const RelayConfig& config,
                                   std::uint64_t /*seed*/)
    : cfg_(config),
      front_end_(config.audio_cutoff_hz, config.audio_gain, config.clip_level,
                 config.audio_rate),
      upsampler_(config.audio_rate, config.rf_rate),
      modulator_(config.fm_deviation_hz, config.rf_rate),
      pa_(config.pa_backoff_db) {
  ensure(config.rf_rate > 2 * config.fm_deviation_hz,
         "rf_rate must exceed twice the FM deviation");
  ensure(config.rf_rate >= config.audio_rate, "rf_rate >= audio_rate");
}

ComplexSignal RelayTransmitter::transmit(std::span<const Sample> audio) {
  Signal conditioned = front_end_.process(audio);
  if (cfg_.scramble) {
    // Spectral inversion: f -> fs/2 - f at the audio rate.
    for (std::size_t i = 0; i < conditioned.size(); ++i) {
      if (i & 1) conditioned[i] = -conditioned[i];
    }
  }
  // Analog interpolation to the RF processing rate. The streaming
  // resampler carries its input tail across calls, so per-block transmits
  // concatenate to the exact whole-record result.
  Signal upsampled = upsampler_.process(conditioned);
  ComplexSignal modulated = modulator_.modulate(upsampled);
  return pa_.process(modulated);
}

void RelayTransmitter::reset() {
  front_end_.reset();
  upsampler_.reset();
  modulator_.reset();
}

EarReceiver::EarReceiver(const RelayConfig& config, std::uint64_t /*seed*/)
    : cfg_(config),
      select_(config.rx_bandwidth_hz, config.rf_rate),
      demodulator_(config.fm_deviation_hz, config.rf_rate),
      downsampler_(config.rf_rate, config.audio_rate) {}

Signal EarReceiver::receive(std::span<const Complex> rf) {
  ComplexSignal selected = select_.process(rf);
  Signal demodulated = demodulator_.demodulate(selected);
  Signal audio = downsampler_.process(demodulated);
  if (cfg_.scramble) {
    // Undo the spectral inversion (self-inverse up to a harmless global
    // sign that depends on the link delay parity). Parity continuity is
    // kept across blocks via descramble_phase_.
    for (auto& v : audio) {
      if (descramble_phase_) v = -v;
      descramble_phase_ = !descramble_phase_;
    }
  }
  return audio;
}

void EarReceiver::reset() {
  select_.reset();
  demodulator_.reset();
  downsampler_.reset();
  descramble_phase_ = false;
}

RelayLink::RelayLink(const RelayConfig& config, std::uint64_t seed)
    : cfg_(config), seed_(seed), tx_(config, seed),
      channel_(config.faults, config.channel, config.rf_rate, seed + 1),
      rx_(config, seed + 2) {}

Signal RelayLink::process(std::span<const Sample> audio) {
  ComplexSignal rf = tx_.transmit(audio);
  ComplexSignal faded = channel_.process(rf);
  Signal out = rx_.receive(faded);
  out.resize(audio.size(), 0.0f);  // rational-resampling rounding guard
  return out;
}

void RelayLink::set_fault_schedule(FaultSchedule schedule) {
  cfg_.faults = schedule;
  channel_.set_schedule(std::move(schedule));
  invalidate_latency_cache();
}

double RelayLink::measure_latency_samples() {
  if (cached_latency_ >= 0.0) return cached_latency_;
  // Probe with band-limited white noise and find the cross-correlation
  // peak between input and output. The probe link strips the fault
  // schedule: a measurement taken through a scripted outage or jammer
  // burst would be garbage, and what the timing budget needs is the
  // *nominal* group delay of the healthy link.
  const auto n = static_cast<std::size_t>(cfg_.audio_rate / 2);  // 0.5 s
  mute::audio::WhiteNoiseSource probe(0.2, seed_ + 77);
  RelayConfig probe_cfg = cfg_;
  probe_cfg.faults = FaultSchedule{};
  RelayLink fresh(probe_cfg, seed_);  // do not disturb streaming state
  Signal in = probe.generate(n);
  Signal out = fresh.process(in);

  const std::size_t nfft = mute::next_pow2(2 * n);
  ComplexSignal fa(nfft), fb(nfft);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = static_cast<double>(in[i]);
    fb[i] = static_cast<double>(out[i]);
  }
  mute::dsp::fft_inplace(fa);
  mute::dsp::fft_inplace(fb);
  for (std::size_t i = 0; i < nfft; ++i) fa[i] = fb[i] * std::conj(fa[i]);
  mute::dsp::ifft_inplace(fa);
  // Only non-negative lags are physical here.
  std::size_t best = 0;
  double best_v = -1.0;
  for (std::size_t lag = 0; lag < n; ++lag) {
    const double v = std::abs(fa[lag]);
    if (v > best_v) {
      best_v = v;
      best = lag;
    }
  }
  cached_latency_ = static_cast<double>(best);
  return cached_latency_;
}

double RelayLink::measure_sndr_db(double tone_hz, double amplitude) {
  ensure(tone_hz > 0 && tone_hz < cfg_.audio_rate / 2, "tone inside band");
  const auto n = static_cast<std::size_t>(cfg_.audio_rate * 2);
  mute::audio::ToneSource probe(tone_hz, amplitude, cfg_.audio_rate);
  RelayLink fresh(cfg_, seed_);
  Signal in = probe.generate(n);
  Signal out = fresh.process(in);
  // Discard the settling head.
  const std::size_t skip = n / 4;
  const std::span<const Sample> tail(out.data() + skip, n - skip);
  auto psd = mute::dsp::welch_psd(tail, cfg_.audio_rate, 2048);
  // Signal power: +-2 bins around the tone; the rest (above DC block) is
  // noise + distortion.
  const double bin_width = psd.freq_hz[1] - psd.freq_hz[0];
  const double sig = psd.band_power(tone_hz - 2 * bin_width,
                                    tone_hz + 2 * bin_width);
  const double total = psd.band_power(30.0, cfg_.audio_rate / 2);
  const double nd = std::max(total - sig, 1e-20);
  return power_to_db(sig / nd);
}

Signal RelayLink::eavesdrop(std::span<const Sample> audio) {
  // A fresh pipeline whose receiver does NOT know about scrambling.
  RelayConfig eaves_cfg = cfg_;
  RelayConfig tx_cfg = cfg_;
  eaves_cfg.scramble = false;
  RelayTransmitter tx(tx_cfg, seed_);
  RfChannel channel(cfg_.channel, cfg_.rf_rate, seed_ + 1);
  EarReceiver rx(eaves_cfg, seed_ + 2);
  ComplexSignal rf = tx.transmit(audio);
  ComplexSignal faded = channel.process(rf);
  Signal out = rx.receive(faded);
  out.resize(audio.size(), 0.0f);
  return out;
}

void RelayLink::reset() {
  tx_.reset();
  channel_.reset();
  rx_.reset();
  // cached_latency_ is intentionally kept: the link replays the same
  // deterministic stream after a reset, so the measured group delay is
  // still correct. See measure_latency_samples() in relay.hpp.
}

}  // namespace mute::rf
