#include "rf/spectrum_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace mute::rf {

SpectrumPlanner::SpectrumPlanner(std::size_t relay_count,
                                 SpectrumPlannerOptions options)
    : opt_(options) {
  ensure(relay_count >= 1, "planner needs at least one relay");
  ensure(opt_.channel_count >= 1, "planner needs at least one channel");
  ensure(opt_.channel_count >= relay_count,
         "each relay needs its own channel (frequency-division coexistence)");
  ensure(opt_.penalty_decay_per_s >= 0.0, "decay rate must be >= 0");
  ensure(opt_.min_dwell_s >= 0.0, "dwell must be >= 0");
  ensure(opt_.tx_step_db > 0.0 && opt_.tx_max_db >= 0.0,
         "TX escalation must step upward");
  relays_.resize(relay_count);
  // Initial frequency-division assignment: relay k on channel k, matching
  // assign_channels()' evenly pitched layout.
  for (std::size_t k = 0; k < relay_count; ++k) relays_[k].channel = k;
  penalty_.assign(opt_.channel_count, 0.0);
}

void SpectrumPlanner::decay_to(double now_s) {
  MUTE_RT_SCOPE("SpectrumPlanner::decay_to");
  const double dt = now_s - last_decay_s_;
  if (dt <= 0.0) return;
  const double f = std::exp(-opt_.penalty_decay_per_s * dt);
  for (double& p : penalty_) p *= f;
  for (RelayState& r : relays_) r.adverse *= f;
  last_decay_s_ = now_s;
}

void SpectrumPlanner::note_adverse(std::size_t relay, double now_s) {
  MUTE_RT_SCOPE("SpectrumPlanner::note_adverse");
  ensure(relay < relays_.size(), "relay index out of range");
  decay_to(now_s);
  RelayState& r = relays_[relay];
  r.adverse += 1.0;
  // The evidence indicts the channel the relay is on: warn the whole mesh
  // off it, not just this relay.
  penalty_[r.channel] += 1.0;
}

void SpectrumPlanner::note_clean(std::size_t relay, double now_s) {
  MUTE_RT_SCOPE("SpectrumPlanner::note_clean");
  ensure(relay < relays_.size(), "relay index out of range");
  decay_to(now_s);
  // Clean evidence actively pays down pressure beyond passive decay, so a
  // recovered link stops being a hop candidate quickly.
  RelayState& r = relays_[relay];
  r.adverse = std::max(0.0, r.adverse - 0.5);
}

bool SpectrumPlanner::occupied_by_peer(std::size_t channel,
                                       std::size_t relay) const {
  for (std::size_t k = 0; k < relays_.size(); ++k) {
    if (k != relay && relays_[k].channel == channel) return true;
  }
  return false;
}

PlannerAction SpectrumPlanner::plan(std::size_t relay, double now_s) {
  MUTE_RT_SCOPE("SpectrumPlanner::plan");
  ensure(relay < relays_.size(), "relay index out of range");
  decay_to(now_s);
  PlannerAction action;
  action.relay = relay;
  RelayState& r = relays_[relay];
  if (r.adverse < opt_.hop_threshold) return action;
  if (now_s - r.last_action_s < opt_.min_dwell_s) return action;

  // Cleanest channel not occupied by a peer. Ties break toward the lowest
  // index, which makes the planner fully deterministic.
  std::size_t best = r.channel;
  double best_penalty = penalty_[r.channel];
  for (std::size_t c = 0; c < penalty_.size(); ++c) {
    if (c == r.channel || occupied_by_peer(c, relay)) continue;
    if (penalty_[c] < best_penalty - 1e-12) {
      best = c;
      best_penalty = penalty_[c];
    }
  }

  if (best != r.channel &&
      best_penalty + opt_.hop_margin <= penalty_[r.channel]) {
    r.channel = best;
    r.adverse = 0.0;
    r.last_action_s = now_s;
    action.kind = PlannerActionKind::kHop;
    action.channel = best;
    return action;
  }

  // No cleaner channel to hop to (wideband interference, or everything is
  // penalized): escalate TX power toward the cap.
  if (r.tx_gain_db + opt_.tx_step_db <= opt_.tx_max_db + 1e-9) {
    r.tx_gain_db += opt_.tx_step_db;
    r.adverse = 0.0;
    r.last_action_s = now_s;
    action.kind = PlannerActionKind::kTxStep;
    action.tx_gain_db = r.tx_gain_db;
    return action;
  }

  // Fully escalated; halve the pressure so the planner re-evaluates after
  // more evidence instead of spinning every round.
  r.adverse *= 0.5;
  return action;
}

std::size_t SpectrumPlanner::channel_of(std::size_t relay) const {
  ensure(relay < relays_.size(), "relay index out of range");
  return relays_[relay].channel;
}

double SpectrumPlanner::tx_gain_db(std::size_t relay) const {
  ensure(relay < relays_.size(), "relay index out of range");
  return relays_[relay].tx_gain_db;
}

double SpectrumPlanner::channel_penalty(std::size_t channel) const {
  ensure(channel < penalty_.size(), "channel index out of range");
  return penalty_[channel];
}

double SpectrumPlanner::adverse_pressure(std::size_t relay) const {
  ensure(relay < relays_.size(), "relay index out of range");
  return relays_[relay].adverse;
}

}  // namespace mute::rf
