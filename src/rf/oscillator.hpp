#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mute::rf {

/// Numerically-controlled oscillator producing unit-magnitude complex
/// phasors. The deterministic heart of mixers and the FM modulator.
class Nco {
 public:
  Nco(double freq_hz, double sample_rate, double initial_phase = 0.0);

  /// Next phasor e^{j phase}; advances by 2*pi*f/fs.
  Complex tick();

  /// Advance with an extra instantaneous frequency offset (Hz) this sample
  /// — this is the VCO behaviour: frequency proportional to input.
  Complex tick_fm(double deviation_hz);

  void set_frequency(double freq_hz);
  double frequency() const { return freq_; }
  double phase() const { return phase_; }
  void reset(double initial_phase = 0.0);

 private:
  double freq_;
  double fs_;
  double phase0_;
  double phase_;
};

/// Voltage-controlled oscillator: output frequency = center + gain * v.
/// Models the relay's analog VCO (audio voltage directly modulates
/// frequency — the paper's "matching circuit + FM modulator").
class Vco {
 public:
  /// `gain_hz_per_unit` is the tuning sensitivity (Hz per unit input).
  Vco(double center_hz, double gain_hz_per_unit, double sample_rate);

  Complex tick(double control_voltage);
  void reset();

  double center_hz() const { return center_; }
  double gain() const { return gain_; }

 private:
  double center_, gain_;
  Nco nco_;
};

/// Phase-locked-loop reference model: a nominal carrier with slowly
/// drifting frequency error and Wiener-process phase noise. Supplies the
/// up/down-conversion carriers; the *difference* between two Pll instances
/// is what creates the carrier frequency offset (CFO) the FM demodulator
/// must tolerate (paper Section 4.1).
class Pll {
 public:
  struct Params {
    double nominal_hz = 915e6;       // 900 MHz ISM band carrier
    double frequency_error_hz = 0.0; // static CFO contribution
    double phase_noise_rad = 0.0;    // per-sample random-walk std-dev
    double drift_hz_per_s = 0.0;     // linear frequency drift
  };

  Pll(Params params, double sample_rate, std::uint64_t seed);

  /// Carrier phasor at baseband (relative to the nominal frequency): only
  /// the *error* terms rotate, so mixing with the conjugate of another
  /// Pll's output yields the residual CFO + phase noise.
  Complex tick();

  void reset();
  const Params& params() const { return params_; }

 private:
  Params params_;
  double fs_;
  std::uint64_t seed_;
  Rng rng_;
  double phase_ = 0.0;
  double t_ = 0.0;
};

}  // namespace mute::rf
