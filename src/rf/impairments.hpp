#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "rf/rf_channel.hpp"

namespace mute::rf {

/// Kinds of RF-chain faults the injector can script. Each models a failure
/// mode the paper leaves open (Sections 4.4/6): the relay is a cheap
/// battery-powered IoT node on a shared ISM band, so power loss, co-channel
/// interference, fading and clock tolerance are the expected field reality,
/// not corner cases.
enum class FaultKind {
  kRelayOff,      // relay power loss: the carrier disappears entirely
  kJammer,        // narrowband co-channel interferer (another transmitter)
  kDeepFade,      // deep flat-fade episode (blockage / destructive multipath)
  kImpulseNoise,  // impulsive wideband interference (ignition, switching)
  kClockDrift,    // relay sample-clock drift in ppm (cheap crystal)
};

const char* fault_kind_name(FaultKind kind);

/// One timed fault event. Magnitude fields are per-kind; unused ones are
/// ignored. All times are in seconds of *stream time* (sample count /
/// sample rate of the injector), so a schedule is exactly reproducible for
/// a given seed regardless of block sizes.
struct FaultEvent {
  FaultKind kind = FaultKind::kRelayOff;
  double start_s = 0.0;
  double duration_s = 0.0;

  double jammer_offset_hz = 0.0;    // tone offset from our carrier
  double jammer_power_db = -10.0;   // relative to the unit FM envelope
  double fade_depth_db = 30.0;      // amplitude dip at the fade bottom
  double fade_ramp_s = 0.02;        // raised-cosine edges (fades are smooth)
  double impulse_rate_hz = 200.0;   // expected impulses per second
  double impulse_amplitude = 10.0;  // peak amplitude of one impulse
  double drift_ppm = 0.0;           // relay clock error while event active
  // ISM channel the jammer occupies. -1 (legacy default) means co-channel
  // wherever the victim tunes — the jammer follows the link, so hopping
  // cannot dodge it. >= 0 pins the interferer to one channel: it couples
  // at full power only while the link is tuned there, at the receiver's
  // adjacent-channel rejection one channel away, and negligibly beyond —
  // which is exactly what makes monitor-driven channel hopping effective.
  int jammer_channel = -1;

  double end_s() const { return start_s + duration_s; }
};

/// A deterministic script of timed fault events. Build with the fluent
/// helpers, hand it to a FaultInjector (usually via RelayConfig::faults).
class FaultSchedule {
 public:
  FaultSchedule() = default;

  FaultSchedule& relay_off(double start_s, double duration_s);
  /// `channel` >= 0 pins the jammer to that ISM channel (see
  /// FaultEvent::jammer_channel); the -1 default keeps the legacy
  /// co-channel follow-the-victim behaviour for existing call sites.
  FaultSchedule& jammer(double start_s, double duration_s,
                        double offset_hz, double power_db,
                        int channel = -1);
  FaultSchedule& deep_fade(double start_s, double duration_s,
                           double depth_db, double ramp_s = 0.02);
  FaultSchedule& impulse_noise(double start_s, double duration_s,
                               double rate_hz, double amplitude);
  FaultSchedule& clock_drift(double start_s, double duration_s, double ppm);

  /// Append every event of `other` (chaos-soak schedules compose several
  /// canned scenarios onto one relay). Events may overlap; the injector
  /// applies all active events each sample.
  FaultSchedule& merge(const FaultSchedule& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  bool has(FaultKind kind) const;

  /// End of the last scheduled event (0 for an empty schedule).
  double end_s() const;

 private:
  FaultSchedule& add(FaultEvent event);
  std::vector<FaultEvent> events_;
};

/// The impaired wireless channel: a seeded, deterministic fault-injection
/// wrapper around RfChannel. Signal-path faults (relay power-off, deep
/// fades, clock drift) act on the transmitted baseband before the benign
/// channel model; interference faults (jammer tone, impulses) are added at
/// the receiver, after the channel, like any external emitter would be.
///
/// Per-sample processing is allocation-free after construction; all fault
/// state (drift ring, jammer phases) is preallocated.
class FaultInjector {
 public:
  FaultInjector(FaultSchedule schedule, RfChannelParams channel_params,
                double sample_rate, std::uint64_t seed);

  MUTE_RT_SAFE Complex process(Complex x);
  ComplexSignal process(std::span<const Complex> x);

  /// Rewind to stream time zero (also resets the wrapped channel).
  void reset();

  /// Replace the schedule; fault state restarts from stream time zero.
  void set_schedule(FaultSchedule schedule);

  const FaultSchedule& schedule() const { return schedule_; }
  const RfChannelParams& channel_params() const { return channel_.params(); }

  /// Stream time consumed so far, in seconds.
  double elapsed_s() const { return static_cast<double>(n_) / fs_; }

  /// Retune the link to another ISM channel (spectrum planner action).
  /// Takes effect at the next processed sample; the fault clock, channel
  /// model, and schedule are untouched — the channel index only gates how
  /// strongly channel-pinned jammers couple. RT-safe and allocation-free.
  MUTE_RT_SAFE void retune(std::size_t channel) { active_channel_ = channel; }
  std::size_t channel() const { return active_channel_; }

  /// TX power step in dB applied to the transmitted baseband before the
  /// channel (planner escalation). Interference is additive at the
  /// receiver, so a TX step buys SIR directly. Does not resurrect a
  /// powered-off carrier.
  MUTE_RT_SAFE void set_tx_gain_db(double gain_db);
  double tx_gain_db() const { return tx_gain_db_; }

  /// Group-delay shift accumulated by clock-drift events, in (RF) samples.
  /// Non-zero drift invalidates any latency measured before the event —
  /// see RelayLink::invalidate_latency_cache().
  double accumulated_drift_samples() const { return drift_delay_; }

 private:
  void rebuild_fault_state();

  FaultSchedule schedule_;
  RfChannel channel_;
  double fs_;
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t n_ = 0;

  // Spectrum state: which ISM channel the link is tuned to, and the
  // planner-commanded TX power step (linear amplitude).
  std::size_t active_channel_ = 0;
  double tx_gain_db_ = 0.0;
  double tx_gain_lin_ = 1.0;

  // Jammer oscillators: one static phase per event (index-aligned).
  std::vector<double> jammer_phase_;

  // Clock-drift fractional-delay ring (engaged only when the schedule
  // contains drift events). Power-of-two length; the accumulated delay is
  // clamped to the ring so a pathological schedule cannot index stale data.
  bool has_drift_ = false;
  std::vector<Complex> drift_ring_;
  std::uint64_t drift_write_ = 0;
  double drift_delay_ = 0.0;
};

}  // namespace mute::rf
