#pragma once

#include <span>

#include "common/types.hpp"
#include "dsp/biquad.hpp"

namespace mute::rf {

/// Frequency modulator at complex baseband: the instantaneous frequency of
/// the output phasor is `deviation_hz * m(t)` (Equation 9 of the paper with
/// the carrier removed — up-conversion is handled by the channel model).
class FmModulator {
 public:
  FmModulator(double deviation_hz, double sample_rate);

  Complex modulate(Sample m);
  ComplexSignal modulate(std::span<const Sample> m);
  void reset();

  double deviation_hz() const { return deviation_; }

 private:
  double deviation_;
  double fs_;
  double phase_ = 0.0;
};

/// FM discriminator: differentiates the phase of the incoming baseband
/// phasor. A constant carrier frequency offset appears as a constant
/// output offset, which the built-in DC blocker removes — exactly the CFO
/// immunity argument of Section 4.1. Amplitude variations are rejected by
/// the atan2-based phase extraction (limiter behaviour).
class FmDemodulator {
 public:
  /// `dc_block_hz` sets the DC-removal highpass corner (must be below the
  /// lowest audio frequency of interest).
  FmDemodulator(double deviation_hz, double sample_rate,
                double dc_block_hz = 10.0);

  Sample demodulate(Complex r);
  Signal demodulate(std::span<const Complex> r);
  void reset();

  /// The raw (pre-DC-block) discriminator output for the last sample, in
  /// Hz — exposing the measurable CFO for diagnostics.
  double last_instantaneous_hz() const { return last_hz_; }

 private:
  double deviation_;
  double fs_;
  Complex prev_{1.0, 0.0};
  double last_hz_ = 0.0;
  mute::dsp::Biquad dc_block_;
};

}  // namespace mute::rf
