#pragma once

#include <span>

#include "common/types.hpp"
#include "dsp/biquad.hpp"

namespace mute::rf {

/// Analog audio front end of the relay (Figure 9, left half): anti-alias
/// low-pass filter followed by a soft-clipping amplifier. All analog — the
/// relay never digitizes or stores samples (the paper's privacy argument).
class AudioFrontEnd {
 public:
  /// `cutoff_hz` bounds the forwarded audio bandwidth (paper: ~8 kHz
  /// occupied RF bandwidth); `gain` is the preamp gain; `clip_level` the
  /// soft saturation point.
  AudioFrontEnd(double cutoff_hz, double gain, double clip_level,
                double sample_rate);

  Sample process(Sample x);
  Signal process(std::span<const Sample> x);
  void reset();

  double gain() const { return gain_; }

 private:
  mute::dsp::Biquad lpf1_, lpf2_;  // 4th-order Butterworth-ish LPF
  double gain_;
  double clip_;
};

/// RF power amplifier with tanh saturation (third-order-style
/// nonlinearity). For a constant-envelope FM signal this only compresses
/// amplitude — the embedded frequency information survives, which is why
/// the paper picked FM over AM. `backoff_db` sets how far the unit-power
/// signal sits below the saturation point.
class PowerAmplifier {
 public:
  explicit PowerAmplifier(double backoff_db);

  Complex process(Complex x) const;
  ComplexSignal process(std::span<const Complex> x) const;

 private:
  double sat_level_;
};

/// Band-pass (modeled at baseband as low-pass) channel-selection filter of
/// the receiver, limiting noise bandwidth before FM demodulation.
class ChannelSelectFilter {
 public:
  ChannelSelectFilter(double bandwidth_hz, double sample_rate);

  Complex process(Complex x);
  ComplexSignal process(std::span<const Complex> x);
  void reset();

 private:
  mute::dsp::Biquad re1_, re2_, im1_, im2_;
};

}  // namespace mute::rf
