#include "adaptive/wiener.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir_design.hpp"

namespace mute::adaptive {

WienerBound wiener_bound(std::span<const Sample> x, std::span<const Sample> d,
                         std::span<const double> h_se, double sample_rate,
                         std::size_t segment, double regularization) {
  ensure(x.size() == d.size(), "signal lengths must match");
  ensure(regularization >= 0, "regularization must be non-negative");
  const auto cs = mute::dsp::cross_spectrum(x, d, sample_rate, segment);

  WienerBound out;
  out.freq_hz = cs.freq_hz;
  out.w_opt.resize(cs.freq_hz.size());
  out.residual_db.resize(cs.freq_hz.size());
  out.coherence = mute::dsp::coherence(cs);

  // Tikhonov floor relative to the strongest plant response.
  double max_h2 = 0.0;
  std::vector<Complex> hse_resp(cs.freq_hz.size());
  for (std::size_t k = 0; k < cs.freq_hz.size(); ++k) {
    hse_resp[k] = mute::dsp::fir_response(h_se, cs.freq_hz[k], sample_rate);
    max_h2 = std::max(max_h2, std::norm(hse_resp[k]));
  }
  const double floor_h2 = regularization * std::max(max_h2, 1e-30);

  for (std::size_t k = 0; k < cs.freq_hz.size(); ++k) {
    const Complex hse = hse_resp[k];
    const double denom =
        std::max(cs.sxx[k], 1e-20) * (std::norm(hse) + floor_h2);
    out.w_opt[k] = -cs.cross[k] * std::conj(hse) / denom;
    // Residual power ratio = 1 - coherence (bounded below for numerics).
    out.residual_db[k] = power_to_db(std::max(1.0 - out.coherence[k], 1e-12));
  }
  return out;
}

std::vector<double> realize_wiener(const WienerBound& bound,
                                   std::size_t noncausal_taps,
                                   std::size_t causal_taps) {
  ensure(!bound.w_opt.empty(), "empty bound");
  // Rebuild a full conjugate-symmetric spectrum from the one-sided W.
  const std::size_t half = bound.w_opt.size() - 1;
  const std::size_t nfft = half * 2;
  ensure(is_pow2(nfft), "bound must come from a power-of-two segment");
  ComplexSignal spec(nfft);
  for (std::size_t k = 0; k <= half; ++k) {
    spec[k] = bound.w_opt[k];
    if (k != 0 && k != half) spec[nfft - k] = std::conj(bound.w_opt[k]);
  }
  mute::dsp::ifft_inplace(spec);

  // Time index 0 is w_0; negative lags wrap to the end of the buffer.
  ensure(noncausal_taps < nfft / 2 && causal_taps <= nfft / 2,
         "requested taps exceed the transform support");
  std::vector<double> w(noncausal_taps + causal_taps, 0.0);
  for (std::size_t i = 0; i < noncausal_taps; ++i) {
    // w[i] holds w_{k = i - N}, i.e. lag -(N - i).
    w[i] = spec[nfft - (noncausal_taps - i)].real();
  }
  for (std::size_t i = 0; i < causal_taps; ++i) {
    w[noncausal_taps + i] = spec[i].real();
  }
  return w;
}

}  // namespace mute::adaptive
