#include "adaptive/lms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/kernels.hpp"

namespace mute::adaptive {

AdaptiveFir::AdaptiveFir(std::size_t taps, LmsOptions options)
    : opts_(options), w_(taps, 0.0), x_(taps) {
  ensure(taps >= 1, "need at least one tap");
  ensure(options.mu > 0, "mu must be positive");
  ensure(options.epsilon > 0, "epsilon must be positive");
  ensure(options.leakage >= 0 && options.leakage < 1, "leakage in [0,1)");
}

Sample AdaptiveFir::predict(Sample x) {
  // O(1) history slide (newest at window index 0).
  const double x_old = x_.oldest();
  x_.push(static_cast<double>(x));
  if (++pushes_since_power_sync_ >= w_.size()) {
    pushes_since_power_sync_ = 0;
    power_ = dsp::kernels::energy(x_.data(), w_.size());
  } else {
    power_ += static_cast<double>(x) * static_cast<double>(x) - x_old * x_old;
  }
  const double y = dsp::kernels::dot(w_.data(), x_.data(), w_.size());
  last_y_ = y;
  return static_cast<Sample>(y);
}

Sample AdaptiveFir::update(Sample desired) {
  const double e = static_cast<double>(desired) - last_y_;
  const double denom =
      opts_.normalized ? (std::max(power_, 0.0) + opts_.epsilon) : 1.0;
  const double g = opts_.mu * e / denom;
  const double keep = 1.0 - opts_.mu * opts_.leakage;
  dsp::kernels::axpy_leaky_norm(w_.data(), x_.data(), keep, g, w_.size());
  return static_cast<Sample>(e);
}

Sample AdaptiveFir::step(Sample x, Sample desired) {
  predict(x);
  return update(desired);
}

Signal AdaptiveFir::identify(std::span<const Sample> x,
                             std::span<const Sample> d) {
  ensure(x.size() == d.size(), "signal lengths must match");
  Signal err(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) err[i] = step(x[i], d[i]);
  return err;
}

void AdaptiveFir::set_weights(std::span<const double> w) {
  ensure(w.size() == w_.size(), "weight size mismatch");
  std::copy(w.begin(), w.end(), w_.begin());
}

void AdaptiveFir::reset() {
  std::fill(w_.begin(), w_.end(), 0.0);
  x_.fill(0.0);
  power_ = 0.0;
  last_y_ = 0.0;
  pushes_since_power_sync_ = 0;
}

double misalignment_db(std::span<const double> w,
                       std::span<const double> w_true) {
  ensure(w.size() == w_true.size(), "weight size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double d = w[i] - w_true[i];
    num += d * d;
    den += w_true[i] * w_true[i];
  }
  return power_to_db(num / std::max(den, 1e-30));
}

}  // namespace mute::adaptive
