#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::adaptive {

/// Gradient-constraint schedule for the partitioned block engine.
///
/// The overlap-save weight update is only exactly equivalent to the
/// time-domain LMS when each partition's weights are projected back onto
/// a causal block (IFFT, zero the tail half, FFT) — otherwise circular
/// wraparound energy accumulates. Constraining every partition costs 2P
/// extra FFTs per block, which at long filters erases most of the block
/// speedup, so the default constrains one partition per adapt, cycling:
/// wraparound energy in any partition is projected out at most P blocks
/// after it appears, which keeps the unconstrained drift at noise level
/// (tested) at ~2 extra FFTs per block.
enum class FdConstraint {
  kNone,        // never project (fastest; tail drift is unchecked)
  kRoundRobin,  // one partition per adapt, cycling (default)
  kFull,        // every partition, every adapt (exact MDF)
};

/// Configuration of the partitioned-block frequency-domain FxLMS engine.
///
/// `causal_taps` / `noncausal_taps` mirror FxlmsOptions: the weight vector
/// interops with FxlmsEngine's layout [w_{-N} ... w_{L-1}] so converged
/// filters can cross between the engines (filter cache, shadow filters).
/// The engine itself is a causal adaptive filter over the *advanced*
/// reference stream xa(t) = x(t + N) the controller feeds it; the split
/// is bookkeeping for layout and retargeting, not a different algorithm.
struct FdFxlmsOptions {
  std::size_t causal_taps = 256;
  std::size_t noncausal_taps = 0;
  /// Block size B (power of two). 0 picks next_pow2(total/8) clamped to
  /// [64, 512]. The controller must keep B at or under the acoustic lead
  /// it has left after `noncausal_taps` — see LancOptions::fd_block.
  std::size_t block = 0;
  double mu = 0.5;          // per-bin NLMS-normalized step
  double epsilon = 1e-6;    // bin-power regularizer
  double leakage = 0.0;     // leakage per adapt (keep = 1 - mu*leakage,
                            // same semantics as FxlmsOptions::leakage)
  FdConstraint constraint = FdConstraint::kRoundRobin;
};

/// Partitioned-block frequency-domain FxLMS (PBFDAF / multidelay filter):
/// the O(log N)-per-sample engine for long LANC filters (DESIGN.md §13).
///
/// Overlap-save convolution of the filtered-x reference against P = ⌈T/B⌉
/// weight partitions with per-bin normalized adaptation:
///
///   process_block(x, y):  admit B reference samples, produce the next B
///                         anti-noise samples y = Σ_p IFFT(X_{m-p} ∘ W_p),
///                         and advance the X/U spectrum rings (U = ŝ * x
///                         through the secondary-path estimate, as in
///                         time-domain FxLMS).
///   adapt_block(e):       per-bin gradient W_p -= mu · conj(U_{m-p}) ∘ E
///                         / (Σ_q |U_q|² + eps), then the scheduled
///                         gradient constraint. Must be called with the
///                         errors observed for the *most recent*
///                         process_block output, before the next
///                         process_block — the controller's lookahead
///                         buffering guarantees this ordering.
///
/// Latency contract: y for input block m is produced when block m
/// completes and is played during the following B ticks, so the engine
/// adds exactly B samples of pipeline delay. LANC absorbs it in the
/// acoustic lead: a controller with N samples of lookahead runs this
/// engine with noncausal_taps = N - B and loses nothing (paper Eq. 3/4 —
/// block latency is free up to the lead).
///
/// Both block calls are MUTE_RT_SAFE: all FFT scratch, spectrum rings and
/// the secondary-path block filter are preallocated at construction.
class FdFxlmsEngine {
 public:
  FdFxlmsEngine(std::vector<double> secondary_path_estimate,
                FdFxlmsOptions options);

  std::size_t block_size() const { return block_; }
  std::size_t partition_count() const { return parts_; }
  std::size_t total_taps() const { return total_; }
  std::size_t noncausal_taps() const { return opts_.noncausal_taps; }
  const FdFxlmsOptions& options() const { return opts_; }

  /// Produce the next B anti-noise samples from B new reference samples.
  MUTE_RT_SAFE void process_block(std::span<const Sample> x,
                                  std::span<Sample> y);

  /// Adapt from the B errors observed for the last process_block output.
  MUTE_RT_SAFE void adapt_block(std::span<const Sample> e);

  /// Time-domain weights in the FxlmsEngine layout
  /// [w_{-N} ... w_{-1}, w_0 ... w_{L-1}], length total_taps().
  /// Control-plane (allocates).
  MUTE_RT_UNSAFE std::vector<double> weights() const;

  /// Install time-domain weights (same layout/length as weights()).
  MUTE_RT_UNSAFE void set_weights(std::span<const double> w);

  /// Re-size the non-causal window keeping the converged filter — the
  /// same source-time remap as FxlmsEngine::retarget_noncausal:
  /// w_new[i] = w_old[i + weight_shift]. Signal history is cleared (it
  /// belongs to the old stream). Control-plane.
  MUTE_RT_UNSAFE void retarget_noncausal(std::size_t new_noncausal,
                                         std::ptrdiff_t weight_shift);

  /// Total per-bin reference power Σ_k Σ_q |U_q[k]|² (diagnostics).
  double reference_power() const;

  void set_mu(double mu);

  /// Clear signal history (spectrum rings, overlap tails, bin powers) but
  /// keep weights — used at profile switches.
  void reset_history();

  /// Clear everything (weights and history).
  void reset();

 private:
  // Valid time-domain taps held by partition p (the last partition may be
  // partial when total_ is not a multiple of block_).
  std::size_t valid_taps(std::size_t p) const;
  // Project partition p's weights onto its causal tap block.
  MUTE_RT_SAFE void constrain_partition(std::size_t p);
  MUTE_RT_SAFE void resync_bin_power();
  void rebuild_layout();  // (re)size all state for opts_ (control-plane)

  FdFxlmsOptions opts_;
  std::size_t total_ = 0;  // causal + noncausal taps
  std::size_t block_ = 0;  // B
  std::size_t fft_ = 0;    // F = 2B
  std::size_t parts_ = 0;  // P = ceil(total_ / B)

  mute::dsp::FirFilter sec_path_filter_;

  // Flat [P x F] spectrum arrays; partition/ring slot p lives at p * fft_.
  ComplexSignal w_parts_;      // weight partitions W_p
  ComplexSignal x_spec_ring_;  // reference block spectra (newest at head_)
  ComplexSignal u_spec_ring_;  // filtered-reference block spectra
  std::size_t head_ = 0;       // ring slot of the newest block

  std::vector<double> x_prev_;   // previous raw block (overlap-save)
  std::vector<double> u_prev_;   // previous filtered block
  Signal u_block_;               // secondary-path block output scratch
  std::vector<double> power_sum_;  // Σ_q |U_q[k]|² per bin
  ComplexSignal y_acc_;          // output spectrum accumulator
  ComplexSignal e_spec_;         // error block spectrum
  ComplexSignal grad_;           // per-partition gradient scratch
  ComplexSignal evicted_;        // U spectrum leaving the ring (power upd.)

  std::size_t blocks_since_power_sync_ = 0;
  std::size_t constraint_cursor_ = 0;  // round-robin partition index
  bool adapt_armed_ = false;  // process_block ran, adapt not yet consumed
};

}  // namespace mute::adaptive
