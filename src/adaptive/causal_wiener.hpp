#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace mute::adaptive {

/// Exact causal-constrained Wiener controller fit.
///
/// Given a tuning record of the *plant-filtered* reference u(t) (the same
/// filtered-x signal the LMS uses) and the disturbance d(t) it must
/// cancel, solve the ridge-regularized least squares
///
///   min_w  sum_t ( d(t) + sum_{k=0}^{taps-1} w_k u(t-k) )^2 + ridge |w|^2
///
/// via the Toeplitz normal equations (R + ridge I) w = -p. Unlike the
/// truncated unconstrained Wiener solution, this IS the optimum over
/// causal FIRs of this length — the correct "factory tuning" for a
/// conventional ANC headphone whose geometry demands (infeasible)
/// anticausal taps, and a convergence-free warm start for LANC.
///
/// `ridge_rel` scales the ridge relative to r[0] (the reference power).
///
/// `effort` (optional, empty to disable) is a second record v(t) whose
/// filtered power is penalized: the objective gains `effort_weight *
/// sum_t (sum_k w_k v(t-k))^2`. Pass the *out-of-band* component of the
/// reference to keep the controller from spending gain where the error
/// objective cannot see it (band-limited tuning, paper's Bose baseline).
std::vector<double> fit_causal_fir(std::span<const Sample> u,
                                   std::span<const Sample> d,
                                   std::size_t taps,
                                   double ridge_rel = 1e-4,
                                   std::span<const Sample> effort = {},
                                   double effort_weight = 1.0);

/// Solve A x = b for symmetric positive-definite A (Cholesky, in place on
/// a copy). Exposed for testing. Throws if A is not positive definite.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n);

}  // namespace mute::adaptive
