#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "adaptive/fxlms.hpp"
#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/ring_history.hpp"

namespace mute::adaptive {

/// Multi-reference filtered-x LMS — the paper's Section 6 future-work
/// item ("with multiple noise sources ... requiring either multiple
/// microphones, one for each noise channel").
///
/// Each reference channel k carries the forwarded waveform of one relay
/// (with its own lookahead N_k) and owns a weight vector w_k; the single
/// anti-noise output is the sum of the per-channel filter outputs, and
/// one error microphone drives the joint NLMS update:
///
///   y(t)   = sum_k sum_i w_k[i] x_k(t + N_k - i)
///   w_k[i] -= mu * e(t) * u_k(t + N_k - i) / (sum_j ||u_j||^2 + eps)
///
/// With sources that are statistically independent, each channel's weights
/// converge toward the controller for "its" source even though the update
/// is joint — the cross terms average out.
class MultiFxlmsEngine {
 public:
  /// One options entry per reference channel; all channels share the same
  /// secondary-path estimate (there is one speaker and one error mic).
  MultiFxlmsEngine(std::vector<double> secondary_path_estimate,
                   std::vector<FxlmsOptions> per_channel);

  std::size_t channel_count() const { return channels_.size(); }

  /// Feed the newest advanced sample of every reference (size must equal
  /// channel_count()).
  MUTE_RT_SAFE void push_references(std::span<const Sample> x_advanced);

  /// Anti-noise output for the current instant.
  MUTE_RT_SAFE Sample compute_antinoise() const;

  /// Joint NLMS update from the shared error microphone.
  MUTE_RT_SAFE void adapt(Sample error);

  /// push + compute in one call.
  MUTE_RT_SAFE Sample step_output(std::span<const Sample> x_advanced);

  const std::vector<double>& weights(std::size_t channel) const;
  void reset();

 private:
  struct Channel {
    FxlmsOptions opts;
    std::vector<double> w;  // [noncausal | causal], newest-first
    mute::dsp::RingHistory<double> x_hist;
    mute::dsp::RingHistory<double> u_hist;
    mute::dsp::FirFilter sec_filter;
    double u_power = 0.0;
    std::size_t pushes_since_power_sync = 0;
  };

  double mu_;
  double epsilon_;
  double leakage_;
  std::vector<Channel> channels_;
};

}  // namespace mute::adaptive
