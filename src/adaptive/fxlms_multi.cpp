#include "adaptive/fxlms_multi.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dsp/kernels.hpp"

namespace mute::adaptive {

MultiFxlmsEngine::MultiFxlmsEngine(std::vector<double> secondary_path_estimate,
                                   std::vector<FxlmsOptions> per_channel)
    : mu_(per_channel.empty() ? 0.0 : per_channel.front().mu),
      epsilon_(per_channel.empty() ? 1e-6 : per_channel.front().epsilon),
      leakage_(per_channel.empty() ? 0.0 : per_channel.front().leakage) {
  ensure(!secondary_path_estimate.empty(), "secondary path must be non-empty");
  ensure(!per_channel.empty(), "need at least one reference channel");
  channels_.reserve(per_channel.size());
  for (const auto& opts : per_channel) {
    ensure(opts.causal_taps >= 1, "need at least one causal tap");
    const std::size_t taps = opts.noncausal_taps + opts.causal_taps;
    Channel ch{opts,
               std::vector<double>(taps, 0.0),
               mute::dsp::RingHistory<double>(taps),
               mute::dsp::RingHistory<double>(taps),
               mute::dsp::FirFilter(secondary_path_estimate),
               0.0,
               0};
    channels_.push_back(std::move(ch));
  }
  ensure(mu_ > 0, "mu must be positive");
}

void MultiFxlmsEngine::push_references(std::span<const Sample> x_advanced) {
  ensure(x_advanced.size() == channels_.size(),
         "one sample per reference channel required");
  for (std::size_t k = 0; k < channels_.size(); ++k) {
    auto& ch = channels_[k];
    const Sample u_new = ch.sec_filter.process(x_advanced[k]);
    const double u_old = ch.u_hist.oldest();
    ch.x_hist.push(static_cast<double>(x_advanced[k]));
    ch.u_hist.push(static_cast<double>(u_new));
    if (++ch.pushes_since_power_sync >= ch.w.size()) {
      // Exact re-sync of the incremental window power (see FxlmsEngine).
      ch.pushes_since_power_sync = 0;
      ch.u_power = dsp::kernels::energy(ch.u_hist.data(), ch.w.size());
    } else {
      ch.u_power += static_cast<double>(u_new) * static_cast<double>(u_new) -
                    u_old * u_old;
    }
  }
}

Sample MultiFxlmsEngine::compute_antinoise() const {
  double y = 0.0;
  for (const auto& ch : channels_) {
    y += dsp::kernels::dot(ch.w.data(), ch.x_hist.data(), ch.w.size());
  }
  return static_cast<Sample>(y);
}

void MultiFxlmsEngine::adapt(Sample error) {
  double total_power = 0.0;
  for (const auto& ch : channels_) total_power += std::max(ch.u_power, 0.0);
  const double g = mu_ * static_cast<double>(error) / (total_power + epsilon_);
  const double keep = 1.0 - mu_ * leakage_;
  for (auto& ch : channels_) {
    dsp::kernels::axpy_leaky_norm(ch.w.data(), ch.u_hist.data(), keep, -g,
                                  ch.w.size());
  }
}

Sample MultiFxlmsEngine::step_output(std::span<const Sample> x_advanced) {
  push_references(x_advanced);
  return compute_antinoise();
}

const std::vector<double>& MultiFxlmsEngine::weights(
    std::size_t channel) const {
  ensure(channel < channels_.size(), "channel index out of range");
  return channels_[channel].w;
}

void MultiFxlmsEngine::reset() {
  for (auto& ch : channels_) {
    std::fill(ch.w.begin(), ch.w.end(), 0.0);
    ch.x_hist.fill(0.0);
    ch.u_hist.fill(0.0);
    ch.sec_filter.reset();
    ch.u_power = 0.0;
    ch.pushes_since_power_sync = 0;
  }
}

}  // namespace mute::adaptive
