#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "adaptive/lms.hpp"
#include "common/types.hpp"

namespace mute::adaptive {

/// Result of an offline system identification run.
struct SysIdResult {
  std::vector<double> impulse_response;  // estimated taps
  double final_error_db = 0.0;           // residual prediction error vs signal
  std::size_t samples_used = 0;
};

/// Identify an unknown system from a stimulus/response record with NLMS.
/// This is how the ear device calibrates the secondary path h_se: play a
/// known training noise from the anti-noise speaker and fit the error-mic
/// response (the paper: "h_se can be estimated by sending a known preamble
/// from the anti-noise speaker").
SysIdResult identify_system(std::span<const Sample> stimulus,
                            std::span<const Sample> response,
                            std::size_t taps, LmsOptions options = {});

/// Convenience calibration driver: generates `seconds` of white training
/// noise (deterministic from `seed`), pushes it through `plant` and
/// identifies the result. `plant` maps a whole stimulus signal to the
/// observed response (e.g. the physical h_se channel + transducers).
SysIdResult calibrate_path(
    const std::function<Signal(std::span<const Sample>)>& plant,
    double sample_rate, double seconds, std::size_t taps, std::uint64_t seed,
    double stimulus_rms = 0.1);

}  // namespace mute::adaptive
