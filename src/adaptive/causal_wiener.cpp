#include "adaptive/causal_wiener.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mute::adaptive {

std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n) {
  ensure(a.size() == n * n && b.size() == n, "dimension mismatch");
  // Cholesky: A = L L^T, stored in the lower triangle of `a`.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    ensure(diag > 0.0, "matrix not positive definite");
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= a[k * n + i] * b[k];
    b[i] = v / a[i * n + i];
  }
  return b;
}

std::vector<double> fit_causal_fir(std::span<const Sample> u,
                                   std::span<const Sample> d,
                                   std::size_t taps, double ridge_rel,
                                   std::span<const Sample> effort,
                                   double effort_weight) {
  ensure(u.size() == d.size(), "record lengths must match");
  ensure(taps >= 1, "need >= 1 tap");
  ensure(u.size() >= 4 * taps, "tuning record too short for this many taps");
  ensure(ridge_rel >= 0, "ridge must be non-negative");
  ensure(effort.empty() || effort.size() == u.size(),
         "effort record must match the tuning record length");
  ensure(effort_weight >= 0, "effort weight must be non-negative");

  const std::size_t t_len = u.size();
  // Biased autocorrelations and the u<->d cross-correlation. Start the
  // sum at `taps` so every term has full history (avoids edge bias).
  std::vector<double> r(taps, 0.0);
  std::vector<double> rv(taps, 0.0);
  std::vector<double> p(taps, 0.0);
  for (std::size_t t = taps; t < t_len; ++t) {
    const double dt = static_cast<double>(d[t]);
    const double ut = static_cast<double>(u[t]);
    const double vt = effort.empty() ? 0.0 : static_cast<double>(effort[t]);
    for (std::size_t k = 0; k < taps; ++k) {
      const double utk = static_cast<double>(u[t - k]);
      r[k] += ut * utk;
      p[k] += dt * utk;
      if (!effort.empty()) {
        rv[k] += vt * static_cast<double>(effort[t - k]);
      }
    }
  }
  const double norm = 1.0 / static_cast<double>(t_len - taps);
  for (std::size_t k = 0; k < taps; ++k) {
    r[k] = (r[k] + effort_weight * rv[k]) * norm;
    p[k] *= norm;
  }

  // Toeplitz normal matrix with ridge. Narrow-band tuning records (music,
  // tonal noise) leave R rank-deficient; escalate the ridge until the
  // Cholesky factorization succeeds — a stronger ridge only makes the
  // controller more conservative, never unstable.
  double ridge = std::max(ridge_rel, 1e-8) * std::max(r[0], 1e-20);
  for (int attempt = 0; attempt < 12; ++attempt, ridge *= 10.0) {
    std::vector<double> a(taps * taps);
    for (std::size_t i = 0; i < taps; ++i) {
      for (std::size_t j = 0; j < taps; ++j) {
        a[i * taps + j] = r[i >= j ? i - j : j - i];
      }
      a[i * taps + i] += ridge;
    }
    std::vector<double> rhs(taps);
    for (std::size_t k = 0; k < taps; ++k) rhs[k] = -p[k];
    try {
      return solve_spd(std::move(a), std::move(rhs), taps);
    } catch (const PreconditionError&) {
      continue;  // ridge too small for this record; escalate
    }
  }
  throw InvariantError("causal Wiener fit failed even with maximal ridge");
}

}  // namespace mute::adaptive
