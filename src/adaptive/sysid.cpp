#include "adaptive/sysid.hpp"

#include <cmath>

#include "audio/generators.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"

namespace mute::adaptive {

SysIdResult identify_system(std::span<const Sample> stimulus,
                            std::span<const Sample> response,
                            std::size_t taps, LmsOptions options) {
  ensure(stimulus.size() == response.size(), "signal lengths must match");
  ensure(stimulus.size() >= taps * 4,
         "record too short to identify this many taps");
  AdaptiveFir fir(taps, options);
  Signal err = fir.identify(stimulus, response);

  // Report error power over the last quarter (converged region).
  const std::size_t tail = err.size() / 4;
  const std::span<const Sample> err_tail(err.data() + err.size() - tail, tail);
  const std::span<const Sample> resp_tail(
      response.data() + response.size() - tail, tail);
  const double e_rms = mute::dsp::rms(err_tail);
  const double d_rms = mute::dsp::rms(resp_tail);

  SysIdResult out;
  out.impulse_response = fir.weights();
  out.final_error_db = amplitude_to_db(e_rms / std::max(d_rms, 1e-12));
  out.samples_used = stimulus.size();
  return out;
}

SysIdResult calibrate_path(
    const std::function<Signal(std::span<const Sample>)>& plant,
    double sample_rate, double seconds, std::size_t taps, std::uint64_t seed,
    double stimulus_rms) {
  ensure(plant != nullptr, "plant function required");
  ensure(seconds > 0 && sample_rate > 0, "positive duration and rate");
  const auto n = static_cast<std::size_t>(seconds * sample_rate);
  mute::audio::WhiteNoiseSource noise(stimulus_rms, seed);
  Signal stimulus = noise.generate(n);
  Signal response = plant(stimulus);
  ensure(response.size() == stimulus.size(),
         "plant must return one response sample per stimulus sample");
  return identify_system(stimulus, response, taps);
}

}  // namespace mute::adaptive
