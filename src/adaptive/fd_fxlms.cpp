#include "adaptive/fd_fxlms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"
#include "dsp/kernels.hpp"

namespace mute::adaptive {

namespace kernels = mute::dsp::kernels;

namespace {

// std::complex<double> guarantees the interleaved (re, im) double layout
// the kernel family operates on.
double* as_doubles(Complex* z) { return reinterpret_cast<double*>(z); }

std::size_t auto_block(std::size_t total) {
  // total/4 keeps the partition count at ~4: the per-sample FFT cost is
  // B-independent (6 transforms of 2B per B samples ~ log B), so fewer,
  // larger partitions win on the per-partition spectrum passes. Callers
  // with a lookahead budget (LancController) pick the block themselves.
  const std::size_t target = std::clamp<std::size_t>(total / 4, 64, 512);
  return next_pow2(target);
}

}  // namespace

FdFxlmsEngine::FdFxlmsEngine(std::vector<double> secondary_path_estimate,
                             FdFxlmsOptions options)
    : opts_(options), sec_path_filter_(std::move(secondary_path_estimate)) {
  ensure(opts_.mu > 0, "mu must be positive");
  ensure(opts_.epsilon > 0, "epsilon must be positive");
  ensure(opts_.leakage >= 0 && opts_.leakage < 1, "leakage in [0,1)");
  ensure(opts_.causal_taps + opts_.noncausal_taps > 0,
         "engine needs at least one tap");
  if (opts_.block == 0) {
    opts_.block = auto_block(opts_.causal_taps + opts_.noncausal_taps);
  }
  ensure(is_pow2(opts_.block), "block must be a power of two");
  rebuild_layout();
}

void FdFxlmsEngine::rebuild_layout() {
  total_ = opts_.causal_taps + opts_.noncausal_taps;
  block_ = opts_.block;
  fft_ = 2 * block_;
  parts_ = (total_ + block_ - 1) / block_;

  w_parts_.assign(parts_ * fft_, Complex(0.0, 0.0));
  x_spec_ring_.assign(parts_ * fft_, Complex(0.0, 0.0));
  u_spec_ring_.assign(parts_ * fft_, Complex(0.0, 0.0));
  x_prev_.assign(block_, 0.0);
  u_prev_.assign(block_, 0.0);
  u_block_.assign(block_, Sample{0});
  power_sum_.assign(fft_, 0.0);
  y_acc_.assign(fft_, Complex(0.0, 0.0));
  e_spec_.assign(fft_, Complex(0.0, 0.0));
  grad_.assign(fft_, Complex(0.0, 0.0));
  evicted_.assign(fft_, Complex(0.0, 0.0));

  head_ = 0;
  blocks_since_power_sync_ = 0;
  constraint_cursor_ = 0;
  adapt_armed_ = false;

  // Prime the secondary-path filter's block scratch at construction time
  // so the first real process_block is already allocation-free.
  sec_path_filter_.reset();
  sec_path_filter_.process(u_block_, u_block_);
  sec_path_filter_.reset();
  std::fill(u_block_.begin(), u_block_.end(), Sample{0});
}

std::size_t FdFxlmsEngine::valid_taps(std::size_t p) const {
  const std::size_t start = p * block_;
  return std::min(block_, total_ - start);
}

void FdFxlmsEngine::process_block(std::span<const Sample> x,
                                  std::span<Sample> y) {
  ensure(x.size() == block_ && y.size() == block_,
         "blocks must be exactly block_size() samples");

  // Filtered reference u = s_hat * x (block FIR over the kernel layer).
  sec_path_filter_.process(x, u_block_);

  // Admit the block into the newest ring slot: overlap-save assembly
  // [previous block | current block], then transform in place.
  head_ = (head_ + 1) % parts_;
  Complex* xs = x_spec_ring_.data() + head_ * fft_;
  Complex* us = u_spec_ring_.data() + head_ * fft_;
  std::copy(us, us + fft_, evicted_.begin());  // U leaving the power window
  for (std::size_t i = 0; i < block_; ++i) {
    xs[i] = Complex(x_prev_[i], 0.0);
    xs[block_ + i] = Complex(static_cast<double>(x[i]), 0.0);
    x_prev_[i] = static_cast<double>(x[i]);
    us[i] = Complex(u_prev_[i], 0.0);
    us[block_ + i] = Complex(static_cast<double>(u_block_[i]), 0.0);
    u_prev_[i] = static_cast<double>(u_block_[i]);
  }
  mute::dsp::fft_inplace(std::span<Complex>(xs, fft_));
  mute::dsp::fft_inplace(std::span<Complex>(us, fft_));

  // Per-bin power over the P-block window: O(F) sliding update, with an
  // exact recompute every P blocks so add/subtract rounding error cannot
  // accumulate (same re-sync policy as FxlmsEngine's ||u||^2).
  if (++blocks_since_power_sync_ >= parts_) {
    resync_bin_power();
  } else {
    kernels::magsq_update(power_sum_.data(), as_doubles(us),
                          as_doubles(evicted_.data()), fft_);
  }

  // Anti-noise: Y = sum_p X_{m-p} .* W_p, y = last half of IFFT(Y)
  // (overlap-save discard of the circular head).
  std::fill(y_acc_.begin(), y_acc_.end(), Complex(0.0, 0.0));
  for (std::size_t p = 0; p < parts_; ++p) {
    const std::size_t slot = (head_ + parts_ - p) % parts_;
    kernels::cmul_accumulate(as_doubles(y_acc_.data()),
                             as_doubles(x_spec_ring_.data() + slot * fft_),
                             as_doubles(w_parts_.data() + p * fft_), fft_);
  }
  mute::dsp::ifft_inplace(y_acc_);
  for (std::size_t i = 0; i < block_; ++i) {
    y[i] = static_cast<Sample>(y_acc_[block_ + i].real());
  }
  adapt_armed_ = true;
}

void FdFxlmsEngine::adapt_block(std::span<const Sample> e) {
  ensure(e.size() == block_, "error block must be block_size() samples");
  ensure(adapt_armed_,
         "adapt_block must follow the process_block whose output produced "
         "these errors");
  adapt_armed_ = false;

  // Error block spectrum, zero-padded head (overlap-save adjoint).
  for (std::size_t i = 0; i < block_; ++i) {
    e_spec_[i] = Complex(0.0, 0.0);
    e_spec_[block_ + i] = Complex(static_cast<double>(e[i]), 0.0);
  }
  mute::dsp::fft_inplace(e_spec_);

  // Per-partition normalized gradient: W_p -= mu * conj(U_{m-p}) .* E
  // / (power + eps) — the same descent direction and error convention as
  // FxlmsEngine::adapt (e = d + s*y, so the gradient is subtracted). The
  // newest ring slot is block m — the block whose output these errors
  // were observed on (adapt_armed_ contract).
  const double keep = 1.0 - opts_.mu * opts_.leakage;
  for (std::size_t p = 0; p < parts_; ++p) {
    const std::size_t slot = (head_ + parts_ - p) % parts_;
    kernels::cmul_conj_scaled(as_doubles(grad_.data()),
                              as_doubles(u_spec_ring_.data() + slot * fft_),
                              as_doubles(e_spec_.data()), power_sum_.data(),
                              opts_.epsilon, fft_);
    double* wp = as_doubles(w_parts_.data() + p * fft_);
    const double* g = as_doubles(grad_.data());
    if (keep == 1.0) {
      kernels::scaled_accumulate(wp, g, -opts_.mu, 2 * fft_);
    } else {
      for (std::size_t j = 0; j < 2 * fft_; ++j) {
        wp[j] = keep * wp[j] - opts_.mu * g[j];
      }
    }
  }

  switch (opts_.constraint) {
    case FdConstraint::kNone:
      break;
    case FdConstraint::kRoundRobin:
      constrain_partition(constraint_cursor_);
      constraint_cursor_ = (constraint_cursor_ + 1) % parts_;
      break;
    case FdConstraint::kFull:
      for (std::size_t p = 0; p < parts_; ++p) constrain_partition(p);
      break;
  }
}

void FdFxlmsEngine::constrain_partition(std::size_t p) {
  // Project W_p onto its causal tap block: IFFT, zero everything past the
  // partition's valid taps (and the numerical imaginary drift on the kept
  // ones, which also restores exact conjugate symmetry), FFT back.
  Complex* wp = w_parts_.data() + p * fft_;
  mute::dsp::ifft_inplace(std::span<Complex>(wp, fft_));
  const std::size_t keep_taps = valid_taps(p);
  for (std::size_t i = 0; i < keep_taps; ++i) {
    wp[i] = Complex(wp[i].real(), 0.0);
  }
  for (std::size_t i = keep_taps; i < fft_; ++i) wp[i] = Complex(0.0, 0.0);
  mute::dsp::fft_inplace(std::span<Complex>(wp, fft_));
}

void FdFxlmsEngine::resync_bin_power() {
  std::fill(power_sum_.begin(), power_sum_.end(), 0.0);
  for (std::size_t q = 0; q < parts_; ++q) {
    kernels::magsq_accumulate(power_sum_.data(),
                              as_doubles(u_spec_ring_.data() + q * fft_),
                              fft_);
  }
  blocks_since_power_sync_ = 0;
}

std::vector<double> FdFxlmsEngine::weights() const {
  std::vector<double> out(total_, 0.0);
  ComplexSignal tmp(fft_);
  for (std::size_t p = 0; p < parts_; ++p) {
    const Complex* wp = w_parts_.data() + p * fft_;
    std::copy(wp, wp + fft_, tmp.begin());
    mute::dsp::ifft_inplace(tmp);
    const std::size_t n = valid_taps(p);
    for (std::size_t i = 0; i < n; ++i) out[p * block_ + i] = tmp[i].real();
  }
  return out;
}

void FdFxlmsEngine::set_weights(std::span<const double> w) {
  ensure(w.size() == total_, "weight vector must have total_taps() entries");
  ComplexSignal tmp(fft_);
  for (std::size_t p = 0; p < parts_; ++p) {
    std::fill(tmp.begin(), tmp.end(), Complex(0.0, 0.0));
    const std::size_t n = valid_taps(p);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = Complex(w[p * block_ + i], 0.0);
    }
    mute::dsp::fft_inplace(tmp);
    std::copy(tmp.begin(), tmp.end(), w_parts_.begin() + p * fft_);
  }
}

void FdFxlmsEngine::retarget_noncausal(std::size_t new_noncausal,
                                       std::ptrdiff_t weight_shift) {
  const std::vector<double> old_w = weights();
  const auto old_total = static_cast<std::ptrdiff_t>(total_);
  opts_.noncausal_taps = new_noncausal;
  rebuild_layout();  // resizes partitions and clears signal history

  std::vector<double> new_w(total_, 0.0);
  for (std::size_t i = 0; i < total_; ++i) {
    const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + weight_shift;
    if (j >= 0 && j < old_total) new_w[i] = old_w[static_cast<std::size_t>(j)];
  }
  set_weights(new_w);
}

double FdFxlmsEngine::reference_power() const {
  double total = 0.0;
  for (double p : power_sum_) total += p;
  return total;
}

void FdFxlmsEngine::set_mu(double mu) {
  ensure(mu > 0, "mu must be positive");
  opts_.mu = mu;
}

void FdFxlmsEngine::reset_history() {
  std::fill(x_spec_ring_.begin(), x_spec_ring_.end(), Complex(0.0, 0.0));
  std::fill(u_spec_ring_.begin(), u_spec_ring_.end(), Complex(0.0, 0.0));
  std::fill(x_prev_.begin(), x_prev_.end(), 0.0);
  std::fill(u_prev_.begin(), u_prev_.end(), 0.0);
  std::fill(u_block_.begin(), u_block_.end(), Sample{0});
  std::fill(power_sum_.begin(), power_sum_.end(), 0.0);
  head_ = 0;
  blocks_since_power_sync_ = 0;
  adapt_armed_ = false;
  sec_path_filter_.reset();
}

void FdFxlmsEngine::reset() {
  reset_history();
  std::fill(w_parts_.begin(), w_parts_.end(), Complex(0.0, 0.0));
  constraint_cursor_ = 0;
}

}  // namespace mute::adaptive
