#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/ring_history.hpp"

namespace mute::adaptive {

/// Step-size policy for the LMS family.
struct LmsOptions {
  double mu = 0.05;          // adaptation rate
  bool normalized = true;    // NLMS: divide by reference power
  double epsilon = 1e-6;     // NLMS regularizer
  double leakage = 0.0;      // coefficient leakage (0 = none)
};

/// Classic transversal adaptive FIR (LMS / NLMS).
///
/// Usage pattern (system identification): feed the input sample, get the
/// prediction, then call `update` with the desired value. The filter
/// estimates w such that w * x ≈ d.
class AdaptiveFir {
 public:
  AdaptiveFir(std::size_t taps, LmsOptions options = {});

  /// Push the newest input sample and return the current prediction
  /// y(t) = w · [x(t), x(t-1), ...].
  MUTE_RT_SAFE Sample predict(Sample x);

  /// Adapt toward desired d(t) for the most recent prediction; returns the
  /// a-priori error d - y.
  MUTE_RT_SAFE Sample update(Sample desired);

  /// Convenience: predict + update in one call.
  MUTE_RT_SAFE Sample step(Sample x, Sample desired);

  /// Identify a whole record: runs step() over the pair of signals and
  /// returns the error sequence.
  MUTE_RT_UNSAFE Signal identify(std::span<const Sample> x,
                                 std::span<const Sample> d);

  const std::vector<double>& weights() const { return w_; }
  MUTE_RT_UNSAFE void set_weights(std::span<const double> w);
  void reset();

  std::size_t tap_count() const { return w_.size(); }
  const LmsOptions& options() const { return opts_; }

  /// Current input-vector power estimate (NLMS denominator). Maintained
  /// incrementally and re-synced exactly every tap_count() pushes.
  double input_power() const { return power_; }

 private:
  LmsOptions opts_;
  std::vector<double> w_;
  dsp::RingHistory<double> x_;  // newest-first window aligned with w_
  double power_ = 0.0;
  double last_y_ = 0.0;
  std::size_t pushes_since_power_sync_ = 0;
};

/// Misalignment ||w - w_true||^2 / ||w_true||^2 in dB (system-id quality).
double misalignment_db(std::span<const double> w,
                       std::span<const double> w_true);

}  // namespace mute::adaptive
