#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/ring_history.hpp"

namespace mute::adaptive {

/// Configuration of the filtered-x LMS engine.
///
/// `noncausal_taps` (the paper's N in Equation 8) is the number of filter
/// coefficients that multiply *future* reference samples. A conventional
/// headphone has N == 0 (no lookahead); MUTE's LANC runs with N equal to
/// the usable lookahead in samples. `causal_taps` is L in the paper.
struct FxlmsOptions {
  std::size_t causal_taps = 256;
  std::size_t noncausal_taps = 0;
  double mu = 0.5;          // NLMS-normalized step size
  double epsilon = 1e-6;    // normalization regularizer
  double leakage = 0.0;     // coefficient leakage per update
  // Divergence guard: when the weight L2 norm exceeds this after an
  // update, the weights roll back to the last-known-good snapshot instead
  // of running away (a bad secondary-path estimate or a garbage reference
  // can turn the gradient into ascent). 0 disables the guard.
  double weight_norm_limit = 0.0;
  // Updates between known-good snapshots; a snapshot is only taken while
  // the norm is comfortably inside the limit (<= 80%).
  std::size_t snapshot_interval = 256;
  // Excitation gate: skip the update when the mean per-tap filtered
  // reference power falls below this. NLMS divides by that power, so a
  // near-dead reference (squelched link, jammer-captured demodulator)
  // turns tiny updates into huge ones — a weight random-walk that can
  // leave the filter worse than passive. 0 disables the gate (plain
  // leakage behaviour is preserved for callers that rely on it).
  double min_excitation = 0.0;
};

/// Filtered-x LMS with optional non-causal taps — the algorithmic heart of
/// both the conventional-ANC baseline and MUTE's LANC (Algorithm 1).
///
/// Per audio tick the caller must:
///   1. push_reference(x(t+N))   — newest reference sample (N ahead of the
///                                 wavefront at the error mic; N == 0 for a
///                                 conventional headphone),
///   2. y = compute_antinoise()  — the sample to play now, Eq. 8:
///                                 y(t) = sum_{k=-N}^{L-1} w_k x(t-k),
///   3. adapt(e(t))              — after the acoustic mix is observed, the
///                                 Eq. 7 update w_k -= mu * e(t) * u(t-k)
///                                 where u = h_se_estimate * x.
class FxlmsEngine {
 public:
  FxlmsEngine(std::vector<double> secondary_path_estimate,
              FxlmsOptions options);

  /// Feed the newest (possibly future) reference sample x(t+N).
  MUTE_RT_SAFE void push_reference(Sample x_advanced);

  /// Anti-noise output for the current instant t.
  MUTE_RT_SAFE Sample compute_antinoise() const;

  /// NLMS-normalized gradient step from the observed error e(t).
  MUTE_RT_SAFE void adapt(Sample error);

  /// push + compute in one call (adapt still separate — the error for time
  /// t only exists after the simulator mixes the anti-noise acoustically).
  MUTE_RT_SAFE Sample step_output(Sample x_advanced);

  std::size_t total_taps() const { return w_.size(); }
  std::size_t noncausal_taps() const { return opts_.noncausal_taps; }
  const FxlmsOptions& options() const { return opts_; }

  /// Weight vector ordered [w_{-N} ... w_{-1}, w_0, ..., w_{L-1}].
  const std::vector<double>& weights() const { return w_; }
  MUTE_RT_UNSAFE void set_weights(std::span<const double> w);

  /// The reference window the weights currently see, newest-first (window
  /// index i holds x(t - (i - N))), length total_taps(). Lets a shadow
  /// filter hand its signal context to the engine it pre-converged for.
  std::span<const double> reference_window() const {
    return {x_hist_.data(), w_.size()};
  }

  /// Replay a newest-first reference window through push_reference() so
  /// the x/u histories, the secondary-path filter state, and the NLMS
  /// power term all match what they would be had this engine streamed the
  /// samples itself. Pair with set_weights() to install a shadow filter's
  /// converged state: weights without their history would multiply stale
  /// zeros for total_taps() ticks — exactly the re-acquisition gap the
  /// shadow exists to remove. Control-plane only.
  MUTE_RT_UNSAFE void prime_history(std::span<const double> x_newest_first);

  /// Current weight L2 norm (maintained incrementally by adapt()).
  double weight_norm() const;
  /// Filtered-reference window power ||u||^2 — the NLMS denominator.
  /// Maintained incrementally per push and re-synced exactly (kernel
  /// recompute) every total_taps() pushes so add/subtract rounding error
  /// cannot accumulate over long runs.
  double reference_power() const { return u_power_; }
  /// Times the divergence guard rolled the weights back.
  std::size_t rollback_count() const { return rollback_count_; }

  /// Restore the last-known-good snapshot (no-op when the guard is off).
  /// Called on entry to a link-fault hold: any updates made from the
  /// not-yet-detected garbage reference are discarded, so the filter the
  /// device resumes with is at most `snapshot_interval` updates stale.
  void restore_snapshot();

  /// Re-size the non-causal window to `new_noncausal` taps while keeping
  /// the converged filter, for a relay handoff (the standby relay offers a
  /// different usable lookahead). The surviving weights are shifted so
  /// they stay aligned in *source time*: w_new[i] = w_old[i + weight_shift]
  /// (out-of-range taps are zero). For a handoff from a relay leading the
  /// ear by a_old samples (N_old future taps) to one leading by a_new
  /// (N_new future taps), the aligning shift is
  ///
  ///   weight_shift = (N_old - N_new) + (a_old - a_new)
  ///
  /// — the N term re-anchors the array index (index i means w_{i-N}) and
  /// the a term re-times the reference stream itself. Exact when the two
  /// relays differ by a pure delay; a warm start the LMS refines when
  /// their room paths also differ. The remapped weights become the
  /// rollback snapshot (a shift only drops taps, so the norm cannot grow)
  /// and the signal history is cleared — it belongs to the old relay's
  /// stream. Control-plane: allocates; never call from per-sample code.
  MUTE_RT_UNSAFE void retarget_noncausal(std::size_t new_noncausal,
                                         std::ptrdiff_t weight_shift);

  /// Adjust the step size at run time (step-size scheduling: converge
  /// fast, then settle to a low-misadjustment step).
  void set_mu(double mu);

  /// Replace the secondary-path estimate (e.g. after recalibration).
  MUTE_RT_UNSAFE void set_secondary_path(std::vector<double> secondary_path_estimate);
  const std::vector<double>& secondary_path() const;

  /// Clear signal history but keep weights (used at profile switches).
  void reset_history();

  /// Clear everything (weights and history).
  void reset();

 private:
  FxlmsOptions opts_;
  std::vector<double> w_;  // [noncausal | causal], newest-first order
  // Doubled-buffer rings, newest-first windows aligned with w_:
  // x_hist_.data()[i] = x(t - (i - N)), u_hist_ is the filtered reference.
  mute::dsp::RingHistory<double> x_hist_;
  mute::dsp::RingHistory<double> u_hist_;
  mute::dsp::FirFilter sec_path_filter_;
  std::vector<double> sec_path_;
  double u_power_ = 0.0;
  std::size_t pushes_since_power_sync_ = 0;

  // Divergence guard state (preallocated; adapt() stays allocation-free).
  std::vector<double> good_w_;   // last-known-good snapshot
  double w_norm2_ = 0.0;         // ||w||^2 after the latest update
  double good_norm2_ = 0.0;
  std::size_t since_snapshot_ = 0;
  std::size_t rollback_count_ = 0;
};

}  // namespace mute::adaptive
