#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dsp/spectral.hpp"

namespace mute::adaptive {

/// Frequency-domain Wiener bound for an ANC configuration.
///
/// Given a record of the reference signal x, the disturbance d it must
/// cancel at the error microphone, and the secondary path h_se, the
/// unconstrained (non-causal, infinite-lookahead) optimum per frequency bin
/// is  W(f) = -S_xd(f) / (S_xx(f) * H_se(f)).
/// The residual-power bound is governed by the x<->d coherence:
///   |E_min(f)|^2 = S_dd(f) * (1 - C_xd(f)).
/// LANC with generous lookahead should approach this bound; a causal
/// truncation cannot. Used by property tests and the lookahead ablation.
struct WienerBound {
  std::vector<double> freq_hz;
  ComplexSignal w_opt;               // optimal non-causal filter per bin
  std::vector<double> residual_db;   // best possible cancellation per bin
  std::vector<double> coherence;     // x<->d magnitude-squared coherence
};

/// `regularization` guards the division by H_se at frequencies where the
/// plant has no authority (band-limited control, speaker rolloff): bins
/// with |H_se|^2 below `regularization * max|H_se|^2` contribute ~zero
/// filter gain instead of exploding.
WienerBound wiener_bound(std::span<const Sample> x, std::span<const Sample> d,
                         std::span<const double> h_se, double sample_rate,
                         std::size_t segment = 1024,
                         double regularization = 1e-3);

/// Time-domain (truncated, shifted) realization of the Wiener filter:
/// inverse-FFT of W(f) rotated so `noncausal_taps` anticausal coefficients
/// are kept. Returns taps ordered [w_{-N} ... w_{L-1}] compatible with
/// FxlmsEngine::set_weights.
std::vector<double> realize_wiener(const WienerBound& bound,
                                   std::size_t noncausal_taps,
                                   std::size_t causal_taps);

}  // namespace mute::adaptive
