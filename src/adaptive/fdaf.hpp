#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rt_annotations.hpp"
#include "common/types.hpp"

namespace mute::adaptive {

/// Block frequency-domain adaptive filter (overlap-save FDAF with the
/// gradient constraint), the standard fast alternative to transversal
/// NLMS for long filters.
///
/// Why it exists here: the paper's TMS320C6713 capped the whole system at
/// an 8 kHz sample rate because the per-sample O(taps) update dominated
/// its budget ("a faster DSP will ease the problem", Section 5.2). FDAF
/// computes the same NLMS-family update in O(log N) per sample with
/// *per-bin* normalization, which also equalizes convergence across the
/// deep notches of reverberant spectra. Used for fast secondary-path
/// identification and exposed for experimentation; the runtime LANC loop
/// keeps the transversal engine, whose per-sample latency model matches
/// the hardware story.
class BlockFdaf {
 public:
  struct Options {
    std::size_t taps = 512;   // filter length (rounded up to a power of 2)
    double mu = 0.5;          // per-bin NLMS step
    double epsilon = 1e-8;    // bin-power regularizer
    double power_alpha = 0.9; // EMA for the per-bin power estimate; seeded
                              // from the first block's own power so the
                              // first update never normalizes by epsilon
                              // alone (cold-start divergence)
    bool constrained = true;  // gradient constraint (zero the tail)
  };

  explicit BlockFdaf(Options options);

  std::size_t block_size() const { return block_; }
  std::size_t tap_count() const { return block_; }

  /// Process one block of exactly block_size() samples: returns the
  /// prediction y for the block and adapts toward `desired`.
  /// (System-identification usage: x = input, desired = plant output.)
  /// Allocation-free: all FFT scratch is preallocated at construction.
  MUTE_RT_SAFE void step_block(std::span<const Sample> x,
                               std::span<const Sample> desired,
                               std::span<Sample> error_out);

  /// Convenience: run over whole records (length truncated to a multiple
  /// of the block size); returns the error signal.
  Signal identify(std::span<const Sample> x, std::span<const Sample> desired);

  /// Current time-domain weights (length tap_count()).
  std::vector<double> weights() const;

  /// Full 2B-tap circular response (diagnostics): taps [0, block) are the
  /// causal filter weights() returns; taps [block, 2B) are the wraparound
  /// half the gradient constraint exists to suppress. A constrained
  /// filter keeps that half identically zero (the constrained gradient
  /// never writes it); unconstrained adaptation leaks transient and
  /// gradient-noise energy there.
  std::vector<double> weights_full() const;

  void reset();

 private:
  Options opts_;
  std::size_t block_;      // == power-of-two taps
  std::size_t fft_;        // 2 * block_
  ComplexSignal w_;        // frequency-domain weights
  std::vector<double> x_prev_;  // previous input block (overlap-save)
  std::vector<double> bin_power_;
  bool power_primed_ = false;  // bin_power_ seeded from a real block yet?
  // Preallocated FFT scratch (step_block is RT-safe / allocation-free).
  ComplexSignal xf_;
  ComplexSignal yf_;
  ComplexSignal ef_;
  ComplexSignal grad_;
};

}  // namespace mute::adaptive
