#include "adaptive/fxlms.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "dsp/kernels.hpp"

namespace mute::adaptive {

FxlmsEngine::FxlmsEngine(std::vector<double> secondary_path_estimate,
                         FxlmsOptions options)
    : opts_(options),
      w_(options.noncausal_taps + options.causal_taps, 0.0),
      x_hist_(w_.size()),
      u_hist_(w_.size()),
      sec_path_filter_(secondary_path_estimate),
      sec_path_(std::move(secondary_path_estimate)),
      good_w_(w_.size(), 0.0) {
  ensure(opts_.causal_taps >= 1, "need at least one causal tap");
  ensure(opts_.mu > 0, "mu must be positive");
  ensure(opts_.epsilon > 0, "epsilon must be positive");
  ensure(opts_.leakage >= 0 && opts_.leakage < 1, "leakage in [0,1)");
  ensure(opts_.weight_norm_limit >= 0, "weight norm limit must be >= 0");
  ensure(opts_.min_excitation >= 0, "min excitation must be >= 0");
  ensure(opts_.snapshot_interval >= 1, "snapshot interval must be >= 1");
  ensure(!sec_path_.empty(), "secondary path estimate must be non-empty");
}

void FxlmsEngine::push_reference(Sample x_advanced) {
  MUTE_CHECK_FINITE(x_advanced, "FxLMS reference sample");
  MUTE_RT_SCOPE("FxlmsEngine::push_reference");
  // Filtered reference u(t+N) = (h_se_est * x)(t+N), computed on arrival.
  const Sample u_new = sec_path_filter_.process(x_advanced);

  const double u_old = u_hist_.oldest();
  x_hist_.push(static_cast<double>(x_advanced));
  u_hist_.push(static_cast<double>(u_new));
  if (++pushes_since_power_sync_ >= w_.size()) {
    // Exact re-sync: the incremental add/subtract below leaves a rounding
    // residue each push, and over ~1e6 pushes that residue can dwarf the
    // true window power once the reference gets quiet. One O(taps)
    // recompute per taps pushes keeps the amortized cost O(1).
    pushes_since_power_sync_ = 0;
    u_power_ = dsp::kernels::energy(u_hist_.data(), w_.size());
  } else {
    u_power_ += static_cast<double>(u_new) * static_cast<double>(u_new) -
                u_old * u_old;
  }
}

Sample FxlmsEngine::compute_antinoise() const {
  // Window index i holds x(t - (i - N)); weight w_[i] is w_{k = i - N}.
  return static_cast<Sample>(
      dsp::kernels::dot(w_.data(), x_hist_.data(), w_.size()));
}

void FxlmsEngine::adapt(Sample error) {
  MUTE_CHECK_FINITE(error, "FxLMS error-microphone sample");
  MUTE_RT_SCOPE("FxlmsEngine::adapt");
  if (opts_.min_excitation > 0.0 &&
      u_power_ < opts_.min_excitation * static_cast<double>(w_.size())) {
    return;  // reference too weak to identify anything; updating is noise
  }
  const double denom = std::max(u_power_, 0.0) + opts_.epsilon;
  const double g = opts_.mu * static_cast<double>(error) / denom;
  const double keep = 1.0 - opts_.mu * opts_.leakage;
  const double norm2 = dsp::kernels::axpy_leaky_norm(
      w_.data(), u_hist_.data(), keep, -g, w_.size());
  w_norm2_ = norm2;
  if (opts_.weight_norm_limit <= 0.0) return;

  const double limit2 = opts_.weight_norm_limit * opts_.weight_norm_limit;
  if (norm2 > limit2) [[unlikely]] {
    // Divergence: restore the last-known-good filter rather than letting
    // a runaway update poison every future output. The signal histories
    // are kept — if the reference is still garbage the guard simply fires
    // again, which keeps the norm bounded either way.
    std::copy(good_w_.begin(), good_w_.end(), w_.begin());
    w_norm2_ = good_norm2_;
    since_snapshot_ = 0;
    ++rollback_count_;
  } else if (++since_snapshot_ >= opts_.snapshot_interval) {
    since_snapshot_ = 0;
    // Snapshot only a comfortably-converged filter: weights hovering near
    // the limit are themselves suspect rollback targets. The stability
    // ladder (norm grew at most ~50% over the last known-good snapshot)
    // matters when a garbage reference correlates with the error and
    // inflates the weights exponentially — that growth must never refresh
    // the snapshot, or restore_snapshot() would restore the corruption.
    // The additive bootstrap exists ONLY to admit the very first snapshot
    // of a cold-started filter; once a target exists the ladder is purely
    // multiplicative, or the bootstrap would swamp a small converged norm
    // and whitelist multi-x corruption.
    const double bootstrap = good_norm2_ > 0.0 ? 0.0 : 0.25;
    if (norm2 <= 0.64 * limit2 && norm2 <= 2.25 * good_norm2_ + bootstrap) {
      std::copy(w_.begin(), w_.end(), good_w_.begin());
      good_norm2_ = norm2;
    }
  }
}

Sample FxlmsEngine::step_output(Sample x_advanced) {
  push_reference(x_advanced);
  return compute_antinoise();
}

void FxlmsEngine::set_weights(std::span<const double> w) {
  ensure(w.size() == w_.size(), "weight size mismatch");
  std::copy(w.begin(), w.end(), w_.begin());
  const double norm2 = dsp::kernels::energy(w_.data(), w_.size());
  w_norm2_ = norm2;
  // Externally-installed weights (warm start, profile cache) are trusted:
  // adopt them as the rollback target when they are inside the guard band.
  const double limit2 =
      opts_.weight_norm_limit * opts_.weight_norm_limit;
  if (opts_.weight_norm_limit <= 0.0 || norm2 <= 0.64 * limit2) {
    std::copy(w_.begin(), w_.end(), good_w_.begin());
    good_norm2_ = norm2;
    since_snapshot_ = 0;
  }
}

void FxlmsEngine::prime_history(std::span<const double> x_newest_first) {
  reset_history();  // the secondary-path filter must start from zero state
  // push_reference wants oldest-first arrival order; the span is
  // newest-first. Replaying through the real push keeps every derived
  // quantity (u history, u_power_, sync counter) consistent by
  // construction instead of duplicating the bookkeeping here.
  for (std::size_t i = x_newest_first.size(); i-- > 0;) {
    push_reference(static_cast<Sample>(x_newest_first[i]));
  }
}

double FxlmsEngine::weight_norm() const { return std::sqrt(w_norm2_); }

void FxlmsEngine::restore_snapshot() {
  if (opts_.weight_norm_limit <= 0.0) return;  // guard off: no snapshots
  std::copy(good_w_.begin(), good_w_.end(), w_.begin());
  w_norm2_ = good_norm2_;
  since_snapshot_ = 0;
}

void FxlmsEngine::retarget_noncausal(std::size_t new_noncausal,
                                     std::ptrdiff_t weight_shift) {
  const std::size_t new_total = new_noncausal + opts_.causal_taps;
  std::vector<double> w_new(new_total, 0.0);
  double norm2 = 0.0;
  const auto old_total = static_cast<std::ptrdiff_t>(w_.size());
  for (std::size_t i = 0; i < new_total; ++i) {
    const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(i) + weight_shift;
    if (src >= 0 && src < old_total) {
      w_new[i] = w_[static_cast<std::size_t>(src)];
      norm2 += w_new[i] * w_new[i];
    }
  }
  w_ = std::move(w_new);
  opts_.noncausal_taps = new_noncausal;
  x_hist_.assign(new_total, 0.0);
  u_hist_.assign(new_total, 0.0);
  sec_path_filter_.reset();
  u_power_ = 0.0;
  pushes_since_power_sync_ = 0;
  w_norm2_ = norm2;
  // The remap is a subset of the live weights, so its norm is bounded by
  // theirs — adopt it unconditionally as the rollback target (the guard
  // band check in set_weights() exists for untrusted external vectors).
  good_w_ = w_;
  good_norm2_ = norm2;
  since_snapshot_ = 0;
}

void FxlmsEngine::set_mu(double mu) {
  ensure(mu > 0, "mu must be positive");
  opts_.mu = mu;
}

void FxlmsEngine::set_secondary_path(
    std::vector<double> secondary_path_estimate) {
  ensure(!secondary_path_estimate.empty(), "secondary path must be non-empty");
  sec_path_ = std::move(secondary_path_estimate);
  sec_path_filter_ = mute::dsp::FirFilter(sec_path_);
}

const std::vector<double>& FxlmsEngine::secondary_path() const {
  return sec_path_;
}

void FxlmsEngine::reset_history() {
  x_hist_.fill(0.0);
  u_hist_.fill(0.0);
  sec_path_filter_.reset();
  u_power_ = 0.0;
  pushes_since_power_sync_ = 0;
}

void FxlmsEngine::reset() {
  reset_history();
  std::fill(w_.begin(), w_.end(), 0.0);
  std::fill(good_w_.begin(), good_w_.end(), 0.0);
  w_norm2_ = 0.0;
  good_norm2_ = 0.0;
  since_snapshot_ = 0;
  rollback_count_ = 0;
}

}  // namespace mute::adaptive
