#include "adaptive/fxlms.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace mute::adaptive {

FxlmsEngine::FxlmsEngine(std::vector<double> secondary_path_estimate,
                         FxlmsOptions options)
    : opts_(options),
      w_(options.noncausal_taps + options.causal_taps, 0.0),
      x_hist_(w_.size(), 0.0),
      u_hist_(w_.size(), 0.0),
      sec_path_filter_(secondary_path_estimate),
      sec_path_(std::move(secondary_path_estimate)) {
  ensure(opts_.causal_taps >= 1, "need at least one causal tap");
  ensure(opts_.mu > 0, "mu must be positive");
  ensure(opts_.epsilon > 0, "epsilon must be positive");
  ensure(opts_.leakage >= 0 && opts_.leakage < 1, "leakage in [0,1)");
  ensure(!sec_path_.empty(), "secondary path estimate must be non-empty");
}

void FxlmsEngine::push_reference(Sample x_advanced) {
  MUTE_CHECK_FINITE(x_advanced, "FxLMS reference sample");
  MUTE_RT_SCOPE("FxlmsEngine::push_reference");
  // Filtered reference u(t+N) = (h_se_est * x)(t+N), computed on arrival.
  const Sample u_new = sec_path_filter_.process(x_advanced);

  u_power_ += static_cast<double>(u_new) * static_cast<double>(u_new) -
              u_hist_.back() * u_hist_.back();
  std::rotate(x_hist_.rbegin(), x_hist_.rbegin() + 1, x_hist_.rend());
  std::rotate(u_hist_.rbegin(), u_hist_.rbegin() + 1, u_hist_.rend());
  x_hist_[0] = static_cast<double>(x_advanced);
  u_hist_[0] = static_cast<double>(u_new);
}

Sample FxlmsEngine::compute_antinoise() const {
  // Index i holds x(t - (i - N)); weight w_[i] is w_{k = i - N}.
  double y = 0.0;
  for (std::size_t i = 0; i < w_.size(); ++i) y += w_[i] * x_hist_[i];
  return static_cast<Sample>(y);
}

void FxlmsEngine::adapt(Sample error) {
  MUTE_CHECK_FINITE(error, "FxLMS error-microphone sample");
  MUTE_RT_SCOPE("FxlmsEngine::adapt");
  const double denom = std::max(u_power_, 0.0) + opts_.epsilon;
  const double g = opts_.mu * static_cast<double>(error) / denom;
  const double keep = 1.0 - opts_.mu * opts_.leakage;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_[i] = keep * w_[i] - g * u_hist_[i];
  }
}

Sample FxlmsEngine::step_output(Sample x_advanced) {
  push_reference(x_advanced);
  return compute_antinoise();
}

void FxlmsEngine::set_weights(std::span<const double> w) {
  ensure(w.size() == w_.size(), "weight size mismatch");
  std::copy(w.begin(), w.end(), w_.begin());
}

void FxlmsEngine::set_mu(double mu) {
  ensure(mu > 0, "mu must be positive");
  opts_.mu = mu;
}

void FxlmsEngine::set_secondary_path(
    std::vector<double> secondary_path_estimate) {
  ensure(!secondary_path_estimate.empty(), "secondary path must be non-empty");
  sec_path_ = std::move(secondary_path_estimate);
  sec_path_filter_ = mute::dsp::FirFilter(sec_path_);
}

const std::vector<double>& FxlmsEngine::secondary_path() const {
  return sec_path_;
}

void FxlmsEngine::reset_history() {
  std::fill(x_hist_.begin(), x_hist_.end(), 0.0);
  std::fill(u_hist_.begin(), u_hist_.end(), 0.0);
  sec_path_filter_.reset();
  u_power_ = 0.0;
}

void FxlmsEngine::reset() {
  reset_history();
  std::fill(w_.begin(), w_.end(), 0.0);
}

}  // namespace mute::adaptive
