#include "adaptive/fdaf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"
#include "dsp/kernels.hpp"

namespace mute::adaptive {

namespace kernels = mute::dsp::kernels;

namespace {
// std::complex<double> guarantees the interleaved (re, im) double layout
// the kernel family operates on.
double* as_doubles(ComplexSignal& z) {
  return reinterpret_cast<double*>(z.data());
}
}  // namespace

BlockFdaf::BlockFdaf(Options options)
    : opts_(options), block_(next_pow2(std::max<std::size_t>(options.taps, 2))),
      fft_(2 * block_), w_(fft_, Complex(0.0, 0.0)),
      x_prev_(block_, 0.0), bin_power_(fft_, 0.0),
      xf_(fft_), yf_(fft_), ef_(fft_), grad_(fft_) {
  ensure(options.mu > 0, "mu must be positive");
  ensure(options.epsilon > 0, "epsilon must be positive");
  ensure(options.power_alpha > 0 && options.power_alpha < 1,
         "power_alpha in (0,1)");
}

void BlockFdaf::step_block(std::span<const Sample> x,
                           std::span<const Sample> desired,
                           std::span<Sample> error_out) {
  ensure(x.size() == block_ && desired.size() == block_ &&
             error_out.size() == block_,
         "blocks must be exactly block_size() samples");

  // Assemble [previous block | current block] and transform. All scratch
  // spectra are preallocated members: this path is allocation-free.
  for (std::size_t i = 0; i < block_; ++i) {
    xf_[i] = Complex(x_prev_[i], 0.0);
    xf_[block_ + i] = Complex(static_cast<double>(x[i]), 0.0);
    x_prev_[i] = static_cast<double>(x[i]);
  }
  mute::dsp::fft_inplace(xf_);

  // Per-bin power estimate (the FDAF equivalent of NLMS normalization;
  // this is what equalizes convergence across spectral notches). The EMA
  // is seeded from the first real block: starting it at zero left the
  // first updates normalized by epsilon alone, so a loud first block
  // produced an exploding initial weight step (cold-start divergence).
  if (!power_primed_) {
    kernels::magsq_accumulate(bin_power_.data(), as_doubles(xf_), fft_);
    power_primed_ = true;
  } else {
    for (std::size_t k = 0; k < fft_; ++k) {
      bin_power_[k] = opts_.power_alpha * bin_power_[k] +
                      (1.0 - opts_.power_alpha) * std::norm(xf_[k]);
    }
  }

  // Filter: y = last block of IFFT(X .* W) (overlap-save).
  std::fill(yf_.begin(), yf_.end(), Complex(0.0, 0.0));
  kernels::cmul_accumulate(as_doubles(yf_), as_doubles(xf_), as_doubles(w_),
                           fft_);
  mute::dsp::ifft_inplace(yf_);

  // Error (time domain), zero-padded head for the gradient transform.
  for (std::size_t i = 0; i < block_; ++i) {
    const double e = static_cast<double>(desired[i]) -
                     yf_[block_ + i].real();
    error_out[i] = static_cast<Sample>(e);
    ef_[i] = Complex(0.0, 0.0);
    ef_[block_ + i] = Complex(e, 0.0);
  }
  mute::dsp::fft_inplace(ef_);

  // Gradient: conj(X) .* E, normalized per bin.
  kernels::cmul_conj_scaled(as_doubles(grad_), as_doubles(xf_),
                            as_doubles(ef_), bin_power_.data(), opts_.epsilon,
                            fft_);
  if (opts_.constrained) {
    // Constrain the gradient to a causal filter of length block_: go to
    // time domain, zero the second half, come back.
    mute::dsp::ifft_inplace(grad_);
    for (std::size_t i = block_; i < fft_; ++i) grad_[i] = Complex(0.0, 0.0);
    mute::dsp::fft_inplace(grad_);
  }
  for (std::size_t k = 0; k < fft_; ++k) {
    w_[k] += opts_.mu * grad_[k];
  }
}

Signal BlockFdaf::identify(std::span<const Sample> x,
                           std::span<const Sample> desired) {
  ensure(x.size() == desired.size(), "record lengths must match");
  const std::size_t blocks = x.size() / block_;
  Signal err(blocks * block_);
  for (std::size_t b = 0; b < blocks; ++b) {
    step_block(x.subspan(b * block_, block_),
               desired.subspan(b * block_, block_),
               std::span<Sample>(err.data() + b * block_, block_));
  }
  return err;
}

std::vector<double> BlockFdaf::weights() const {
  ComplexSignal w = w_;
  mute::dsp::ifft_inplace(w);
  std::vector<double> out(block_);
  for (std::size_t i = 0; i < block_; ++i) out[i] = w[i].real();
  return out;
}

std::vector<double> BlockFdaf::weights_full() const {
  ComplexSignal w = w_;
  mute::dsp::ifft_inplace(w);
  std::vector<double> out(fft_);
  for (std::size_t i = 0; i < fft_; ++i) out[i] = w[i].real();
  return out;
}

void BlockFdaf::reset() {
  std::fill(w_.begin(), w_.end(), Complex(0.0, 0.0));
  std::fill(x_prev_.begin(), x_prev_.end(), 0.0);
  std::fill(bin_power_.begin(), bin_power_.end(), 0.0);
  power_primed_ = false;
}

}  // namespace mute::adaptive
