#pragma once

#include <cstddef>
#include <vector>

#include "acoustics/propagation.hpp"
#include "common/types.hpp"

namespace mute::acoustics {

/// A rectangular ("shoebox") room for image-source impulse-response
/// synthesis. Walls have a per-pair reflection coefficient; reflections up
/// to `max_order` images are summed. This replaces the paper's physical
/// office: it produces the long, non-minimum-phase multipath channels
/// (h_nr, h_ne, h_se) whose non-causal inverses motivate lookahead.
struct Room {
  double lx = 6.0, ly = 5.0, lz = 3.0;   // dimensions, meters
  // Furnished-office reflectivity (carpet, desks, ceiling tiles): RT60 in
  // the low hundreds of ms, matching the paper's natural indoor setting.
  double reflection_x = 0.55;            // walls perpendicular to x
  double reflection_y = 0.55;            // walls perpendicular to y
  double reflection_z = 0.5;             // floor/ceiling
  int max_order = 3;                     // image-source reflection order
  double speed_of_sound = kSpeedOfSound;

  /// A typical small office (the paper's Figure 2 setting).
  static Room office();

  /// A larger, more reverberant space (airport-hall-like).
  static Room hall();

  /// An almost anechoic room (direct path dominates).
  static Room anechoic();

  /// True if p lies strictly inside the room.
  bool contains(Point p) const;
};

/// Options for RIR synthesis.
struct RirOptions {
  double sample_rate = kDefaultSampleRate;
  std::size_t length = 2048;        // taps
  std::size_t interp_taps = 23;     // windowed-sinc spread per image
  bool include_spreading = true;    // 1/r amplitude loss
};

/// Synthesize the room impulse response from `source` to `receiver` with
/// the image-source method. Fractional delays are band-limited (windowed
/// sinc) so sub-sample geometry differences are preserved.
std::vector<double> image_source_rir(const Room& room, Point source,
                                     Point receiver, const RirOptions& opts);

/// Direct-path-only impulse response (free field), same options.
std::vector<double> free_field_ir(Point source, Point receiver,
                                  const RirOptions& opts,
                                  double speed_of_sound = kSpeedOfSound);

/// Time of the direct-path arrival in samples (fractional).
double direct_delay_samples(const Room& room, Point source, Point receiver,
                            double sample_rate);

/// Estimate RT60 from an impulse response via Schroeder backward
/// integration (returns seconds; 0 if the energy never decays 60 dB within
/// the response, in which case the decay is extrapolated from T20).
double estimate_rt60(const std::vector<double>& rir, double sample_rate);

}  // namespace mute::acoustics
