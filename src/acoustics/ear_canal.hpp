#pragma once

#include <span>

#include "common/types.hpp"
#include "dsp/biquad.hpp"
#include "dsp/delay_line.hpp"

namespace mute::acoustics {

/// Ear-canal acoustics between the error-microphone position (outside the
/// canal) and the ear-drum — the paper's Section 6 "Cancellation at the
/// Human Ear" limitation: MUTE optimizes at the error mic and *assumes*
/// the drum is close enough, while Bose designs against KEMAR-style ear
/// models.
///
/// Model: an open-ended tube ~2.5 cm long: a propagation delay plus the
/// quarter-wave resonance (~3 kHz, the well-known ear-canal gain of
/// roughly +15 dB) and a mild second resonance. Anti-noise and ambient
/// noise pass through the SAME canal, so cancellation that is perfect at
/// the canal entrance stays perfect at the drum — the discrepancy the
/// paper worries about comes from the residual's spatial variation, which
/// we model as a small leakage path with canal-length-dependent delay.
class EarCanal {
 public:
  /// `canal_length_m` typical 0.025 m; `mismatch` in [0,1] scales the
  /// leakage path that makes drum pressure differ from mic pressure
  /// (0 = the paper's assumption that the mic hears what the drum hears).
  EarCanal(double canal_length_m, double mismatch, double sample_rate);

  /// Pressure at the drum given the pressure at the error-mic position.
  Sample process(Sample at_mic);
  Signal apply(std::span<const Sample> at_mic);

  /// Resonance gain at `freq_hz` (diagnostic).
  double response_magnitude(double freq_hz) const;

  void reset();

 private:
  double fs_;
  double mismatch_;
  mute::dsp::FractionalDelay delay_;
  mute::dsp::Biquad resonance1_;
  mute::dsp::Biquad resonance2_;
  mute::dsp::FractionalDelay leak_delay_;
};

}  // namespace mute::acoustics
