#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsp/biquad.hpp"

namespace mute::acoustics {

/// Electro-acoustic transducer model: a linear frequency-response filter
/// plus additive self-noise. Models both microphones and loudspeakers.
///
/// The paper's hardware comparison hinges on this: MUTE uses a $9 MEMS mic
/// and a $19 computer speaker with weak response below 100 Hz (their
/// Figure 13), while Bose ships specialized low-noise transducers. The
/// `cheap_*` presets reproduce the former, `premium_*` the latter.
class Transducer {
 public:
  Transducer(mute::dsp::BiquadCascade response, double self_noise_rms,
             std::string label, std::uint64_t noise_seed);

  /// SparkFun ADMP401-like MEMS microphone: 2nd-order highpass near 120 Hz,
  /// gentle top-octave droop, audible self-noise.
  static Transducer cheap_microphone(double sample_rate, std::uint64_t seed);

  /// AmazonBasics-like mini speaker: steep low-frequency loss below
  /// ~150 Hz, resonance bump near 250 Hz, rolloff past 3.5 kHz.
  static Transducer cheap_speaker(double sample_rate, std::uint64_t seed);

  /// Premium (Bose-like) microphone: flat from 30 Hz, very low noise.
  static Transducer premium_microphone(double sample_rate, std::uint64_t seed);

  /// Premium (Bose-like) driver: flat from 30 Hz.
  static Transducer premium_speaker(double sample_rate, std::uint64_t seed);

  /// Ideal transducer (identity, noiseless) for algorithm-only studies.
  static Transducer ideal(std::uint64_t seed);

  /// The ambient playback speaker (the paper's Xtrememac IPU-TRX-11): all
  /// evaluation noises physically enter the room through it, so nothing
  /// below its ~90 Hz corner exists in the air to begin with.
  static Transducer ambient_speaker(double sample_rate, std::uint64_t seed);

  /// Filter + add self-noise, streaming.
  Sample process(Sample x);

  /// Whole-signal convenience.
  Signal apply(std::span<const Sample> in);

  /// Magnitude response at `freq_hz` (no noise term).
  double response_magnitude(double freq_hz, double sample_rate) const;

  void reset();

  double self_noise_rms() const { return noise_rms_; }
  const std::string& label() const { return label_; }

 private:
  mute::dsp::BiquadCascade response_;
  double noise_rms_;
  std::string label_;
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace mute::acoustics
