#include "acoustics/environment.hpp"

#include "common/error.hpp"

namespace mute::acoustics {

Scene Scene::paper_office() {
  Scene s;
  s.room = Room::office();
  // Noise enters near the door at one end; relay is taped to the wall by
  // the door; the desk with the ear device sits ~3.5 m away.
  s.noise_source = {0.8, 2.5, 1.5};
  s.relay_mic = {1.5, 2.5, 1.8};
  s.error_mic = {4.8, 2.6, 1.2};
  s.anti_speaker = {4.8, 2.57, 1.2};
  return s;
}

ChannelSet build_channels(const Scene& scene) {
  RirOptions opts;
  opts.sample_rate = scene.sample_rate;
  opts.length = scene.rir_length;

  auto nr = image_source_rir(scene.room, scene.noise_source, scene.relay_mic,
                             opts);
  auto ne = image_source_rir(scene.room, scene.noise_source, scene.error_mic,
                             opts);
  // The speaker->error-mic path is centimeters long; a shorter RIR
  // suffices but keep the same length for uniform processing.
  auto se = image_source_rir(scene.room, scene.anti_speaker, scene.error_mic,
                             opts);

  ChannelSet cs{AcousticChannel(std::move(nr), "h_nr"),
                AcousticChannel(std::move(ne), "h_ne"),
                AcousticChannel(std::move(se), "h_se")};
  const double d_r = distance(scene.noise_source, scene.relay_mic);
  const double d_e = distance(scene.noise_source, scene.error_mic);
  cs.lookahead_s = lookahead_s(d_r, d_e, scene.room.speed_of_sound);
  cs.direct_nr_samples =
      direct_delay_samples(scene.room, scene.noise_source, scene.relay_mic,
                           scene.sample_rate);
  cs.direct_ne_samples =
      direct_delay_samples(scene.room, scene.noise_source, scene.error_mic,
                           scene.sample_rate);
  cs.direct_se_samples =
      direct_delay_samples(scene.room, scene.anti_speaker, scene.error_mic,
                           scene.sample_rate);
  return cs;
}

AcousticChannel build_path(const Scene& scene, Point source, Point receiver,
                           const char* label) {
  RirOptions opts;
  opts.sample_rate = scene.sample_rate;
  opts.length = scene.rir_length;
  return AcousticChannel(
      image_source_rir(scene.room, source, receiver, opts), label);
}

}  // namespace mute::acoustics
