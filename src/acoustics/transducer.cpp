#include "acoustics/transducer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mute::acoustics {

using mute::dsp::Biquad;
using mute::dsp::BiquadCascade;

Transducer::Transducer(BiquadCascade response, double self_noise_rms,
                       std::string label, std::uint64_t noise_seed)
    : response_(std::move(response)), noise_rms_(self_noise_rms),
      label_(std::move(label)), seed_(noise_seed), rng_(noise_seed) {
  ensure(self_noise_rms >= 0, "self-noise must be non-negative");
}

Transducer Transducer::cheap_microphone(double sample_rate,
                                        std::uint64_t seed) {
  BiquadCascade c;
  c.push_section(Biquad::highpass(120.0, 0.707, sample_rate));
  c.push_section(Biquad::high_shelf(3200.0, 0.8, -4.0, sample_rate));
  return Transducer(std::move(c), 3.0e-4, "cheap_mic", seed);
}

Transducer Transducer::cheap_speaker(double sample_rate, std::uint64_t seed) {
  BiquadCascade c;
  c.push_section(Biquad::highpass(150.0, 0.9, sample_rate));
  c.push_section(Biquad::peaking(260.0, 2.0, 3.0, sample_rate));
  c.push_section(Biquad::high_shelf(3500.0, 0.8, -6.0, sample_rate));
  return Transducer(std::move(c), 3.0e-5, "cheap_speaker", seed);
}

Transducer Transducer::premium_microphone(double sample_rate,
                                          std::uint64_t seed) {
  BiquadCascade c;
  c.push_section(Biquad::highpass(30.0, 0.707, sample_rate));
  return Transducer(std::move(c), 5.0e-5, "premium_mic", seed);
}

Transducer Transducer::premium_speaker(double sample_rate,
                                       std::uint64_t seed) {
  BiquadCascade c;
  c.push_section(Biquad::highpass(30.0, 0.707, sample_rate));
  return Transducer(std::move(c), 2.0e-5, "premium_speaker", seed);
}

Transducer Transducer::ideal(std::uint64_t seed) {
  return Transducer(BiquadCascade{}, 0.0, "ideal", seed);
}

Transducer Transducer::ambient_speaker(double sample_rate,
                                       std::uint64_t seed) {
  BiquadCascade c;
  c.push_section(Biquad::highpass(90.0, 0.8, sample_rate));
  return Transducer(std::move(c), 1.0e-5, "ambient_speaker", seed);
}

Sample Transducer::process(Sample x) {
  const double filtered = static_cast<double>(response_.process(x));
  return static_cast<Sample>(filtered + rng_.gaussian(noise_rms_));
}

Signal Transducer::apply(std::span<const Sample> in) {
  Signal out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
  return out;
}

double Transducer::response_magnitude(double freq_hz,
                                      double sample_rate) const {
  if (response_.section_count() == 0) return 1.0;
  return std::abs(response_.response(freq_hz, sample_rate));
}

void Transducer::reset() {
  response_.reset();
  rng_ = Rng(seed_);
}

}  // namespace mute::acoustics
