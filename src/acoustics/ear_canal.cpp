#include "acoustics/ear_canal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::acoustics {

namespace {

double quarter_wave_hz(double length_m) {
  return kSpeedOfSound / (4.0 * length_m);
}

}  // namespace

EarCanal::EarCanal(double canal_length_m, double mismatch, double sample_rate)
    : fs_(sample_rate), mismatch_(mismatch),
      delay_(canal_length_m / kSpeedOfSound * sample_rate, 21),
      resonance1_(mute::dsp::Biquad::peaking(
          std::min(quarter_wave_hz(canal_length_m), 0.45 * sample_rate), 2.0,
          15.0, sample_rate)),
      resonance2_(mute::dsp::Biquad::peaking(
          std::min(3.0 * quarter_wave_hz(canal_length_m), 0.45 * sample_rate),
          3.0, 5.0, sample_rate)),
      leak_delay_(canal_length_m / kSpeedOfSound * sample_rate * 2.0 + 1.0,
                  21) {
  ensure(canal_length_m > 0.005 && canal_length_m < 0.05,
         "canal length outside anatomical range");
  ensure(mismatch >= 0.0 && mismatch <= 1.0, "mismatch in [0,1]");
  ensure(sample_rate > 0, "sample rate must be positive");
}

Sample EarCanal::process(Sample at_mic) {
  const Sample delayed = delay_.process(at_mic);
  const Sample resonant = resonance2_.process(resonance1_.process(delayed));
  // Leakage: a second, longer path (reflection from the drum) that makes
  // the drum pressure differ from a pure filtered copy of the mic signal.
  const Sample leak = leak_delay_.process(at_mic);
  return static_cast<Sample>((1.0 - 0.3 * mismatch_) *
                                 static_cast<double>(resonant) +
                             0.3 * mismatch_ * static_cast<double>(leak));
}

Signal EarCanal::apply(std::span<const Sample> at_mic) {
  Signal out(at_mic.size());
  for (std::size_t i = 0; i < at_mic.size(); ++i) out[i] = process(at_mic[i]);
  return out;
}

double EarCanal::response_magnitude(double freq_hz) const {
  return std::abs(resonance1_.response(freq_hz, fs_) *
                  resonance2_.response(freq_hz, fs_));
}

void EarCanal::reset() {
  delay_.reset();
  resonance1_.reset();
  resonance2_.reset();
  leak_delay_.reset();
}

}  // namespace mute::acoustics
