#pragma once

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mute::acoustics {

/// A point in 3D room coordinates (meters).
struct Point {
  double x = 0.0, y = 0.0, z = 0.0;

  friend Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
};

inline double distance(Point a, Point b) {
  const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

/// Acoustic propagation delay between two points, seconds.
inline double acoustic_delay_s(Point a, Point b,
                               double speed = kSpeedOfSound) {
  ensure(speed > 0, "speed must be positive");
  return distance(a, b) / speed;
}

/// RF propagation delay between two points, seconds (≈ nanoseconds at room
/// scale; the simulator treats it as zero audio samples but the value is
/// exposed for the timing-budget analysis of Eq. 3/4).
inline double rf_delay_s(Point a, Point b) {
  return distance(a, b) / kSpeedOfLight;
}

/// The paper's Equation 4: lookahead gained when the noise travels d_r to
/// the relay and d_e to the ear device (positive iff the relay is closer).
inline double lookahead_s(double d_relay_m, double d_ear_m,
                          double speed = kSpeedOfSound) {
  ensure(speed > 0, "speed must be positive");
  return (d_ear_m - d_relay_m) / speed;
}

/// Spherical spreading loss relative to 1 m (amplitude 1/r, floored at
/// 10 cm to avoid the singularity for co-located points).
inline double spreading_gain(double distance_m) {
  return 1.0 / std::max(distance_m, 0.1);
}

}  // namespace mute::acoustics
