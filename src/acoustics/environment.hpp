#pragma once

#include <cstddef>
#include <vector>

#include "acoustics/channel.hpp"
#include "acoustics/room.hpp"
#include "common/types.hpp"

namespace mute::acoustics {

/// Physical placement of one MUTE deployment inside a room: the noise
/// source, the IoT relay's reference microphone, and the ear device
/// (error microphone + anti-noise speaker a few centimeters apart).
struct Scene {
  Room room = Room::office();
  Point noise_source{1.0, 2.5, 1.5};
  Point relay_mic{2.0, 2.5, 1.5};       // closer to the source than the ear
  Point error_mic{5.0, 2.5, 1.2};       // at the (virtual) ear
  Point anti_speaker{5.0, 2.47, 1.2};   // 3 cm from the error mic
  double sample_rate = kDefaultSampleRate;
  std::size_t rir_length = 2048;

  /// The paper's Figure 2 layout: relay on the wall near the door (noise
  /// outside/near the door), ear device on the table across the office.
  static Scene paper_office();
};

/// The three channels every ANC formulation needs, synthesized from a
/// Scene with the image-source model.
struct ChannelSet {
  AcousticChannel h_nr;  // noise source -> reference (relay) mic
  AcousticChannel h_ne;  // noise source -> error mic
  AcousticChannel h_se;  // anti-noise speaker -> error mic
  double lookahead_s = 0.0;        // acoustic lead of the relay (Eq. 4)
  double direct_nr_samples = 0.0;  // direct-path delays, fractional samples
  double direct_ne_samples = 0.0;
  double direct_se_samples = 0.0;
};

/// Build the channel set for a scene.
ChannelSet build_channels(const Scene& scene);

/// Build only the noise->mic channel for an arbitrary receiver position
/// (used by multi-relay experiments).
AcousticChannel build_path(const Scene& scene, Point source, Point receiver,
                           const char* label);

}  // namespace mute::acoustics
