#include "acoustics/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mute::acoustics {

AcousticChannel::AcousticChannel(std::vector<double> impulse_response,
                                 std::string label)
    : ir_(std::move(impulse_response)), label_(std::move(label)),
      history_(ir_.size(), 0.0) {
  ensure(!ir_.empty(), "impulse response must be non-empty");
}

Signal AcousticChannel::apply(std::span<const Sample> in) const {
  return mute::dsp::convolve_same(in, ir_);
}

Sample AcousticChannel::process(Sample x) {
  const std::size_t n = ir_.size();
  history_[pos_] = static_cast<double>(x);
  double acc = 0.0;
  std::size_t idx = pos_;
  for (std::size_t k = 0; k < n; ++k) {
    acc += ir_[k] * history_[idx];
    idx = (idx == 0) ? n - 1 : idx - 1;
  }
  pos_ = (pos_ + 1 == n) ? 0 : pos_ + 1;
  return static_cast<Sample>(acc);
}

void AcousticChannel::reset_streaming() {
  std::fill(history_.begin(), history_.end(), 0.0);
  pos_ = 0;
}

std::size_t AcousticChannel::direct_path_index() const {
  std::size_t best = 0;
  double best_v = 0.0;
  for (std::size_t i = 0; i < ir_.size(); ++i) {
    const double v = std::abs(ir_[i]);
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

double AcousticChannel::energy() const {
  double e = 0.0;
  for (double v : ir_) e += v * v;
  return e;
}

void scale_ir(std::vector<double>& ir, double gain) {
  for (double& v : ir) v *= gain;
}

std::vector<double> shift_ir(const std::vector<double>& ir,
                             std::size_t samples) {
  std::vector<double> out(ir.size(), 0.0);
  for (std::size_t i = 0; i + samples < ir.size(); ++i) {
    out[i + samples] = ir[i];
  }
  return out;
}

std::vector<double> cascade_ir(const std::vector<double>& a,
                               const std::vector<double>& b,
                               std::size_t max_len) {
  ensure(!a.empty() && !b.empty(), "cascade inputs must be non-empty");
  const std::size_t full = a.size() + b.size() - 1;
  const std::size_t len = std::min(full, max_len);
  std::vector<double> out(len, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    const std::size_t jmax = std::min(b.size(), len - std::min(i, len));
    for (std::size_t j = 0; j < jmax; ++j) {
      if (i + j < len) out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

}  // namespace mute::acoustics
