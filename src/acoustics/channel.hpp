#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dsp/convolution.hpp"

namespace mute::acoustics {

/// An acoustic channel: a fixed FIR impulse response applied either to a
/// whole signal (offline, FFT-accelerated) or streamed sample-by-sample.
/// Instances represent the paper's h_nr (noise -> reference mic),
/// h_ne (noise -> error mic) and h_se (anti-noise speaker -> error mic).
class AcousticChannel {
 public:
  AcousticChannel(std::vector<double> impulse_response, std::string label);

  /// Offline: convolve a whole signal; output length == input length
  /// (causal "same" semantics so pipelines stay aligned).
  Signal apply(std::span<const Sample> in) const;

  /// Streaming one-sample path.
  Sample process(Sample x);
  void reset_streaming();

  const std::vector<double>& impulse_response() const { return ir_; }
  const std::string& label() const { return label_; }

  /// Index of the strongest tap (≈ direct-path delay in samples).
  std::size_t direct_path_index() const;

  /// Total energy of the impulse response.
  double energy() const;

 private:
  std::vector<double> ir_;
  std::string label_;
  // Streaming state (direct-form FIR).
  std::vector<double> history_;
  std::size_t pos_ = 0;
};

/// Scale an impulse response in place (e.g. source gain adjustments).
void scale_ir(std::vector<double>& ir, double gain);

/// Delay an impulse response by an integer number of samples, keeping
/// length (tail truncated). Used to model converter latencies lumped into
/// a path.
std::vector<double> shift_ir(const std::vector<double>& ir,
                             std::size_t samples);

/// Cascade (convolve) two impulse responses, truncated to `max_len`.
std::vector<double> cascade_ir(const std::vector<double>& a,
                               const std::vector<double>& b,
                               std::size_t max_len);

}  // namespace mute::acoustics
