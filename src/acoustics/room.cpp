#include "acoustics/room.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::acoustics {

Room Room::office() { return Room{}; }

Room Room::hall() {
  Room r;
  r.lx = 20.0;
  r.ly = 15.0;
  r.lz = 6.0;
  r.reflection_x = r.reflection_y = 0.85;
  r.reflection_z = 0.8;
  r.max_order = 5;
  return r;
}

Room Room::anechoic() {
  Room r;
  r.reflection_x = r.reflection_y = r.reflection_z = 0.02;
  r.max_order = 1;
  return r;
}

bool Room::contains(Point p) const {
  return p.x > 0 && p.x < lx && p.y > 0 && p.y < ly && p.z > 0 && p.z < lz;
}

namespace {

/// Add one band-limited impulse of amplitude `amp` at fractional sample
/// position `delay` into `rir` using a Hann-windowed sinc of `taps` points.
void add_bandlimited_impulse(std::vector<double>& rir, double delay,
                             double amp, std::size_t taps) {
  const auto half = static_cast<std::ptrdiff_t>(taps / 2);
  const auto center = static_cast<std::ptrdiff_t>(std::floor(delay));
  for (std::ptrdiff_t i = center - half; i <= center + half; ++i) {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(rir.size())) continue;
    const double t = static_cast<double>(i) - delay;
    const double w =
        0.5 + 0.5 * std::cos(kPi * t / (static_cast<double>(half) + 1.0));
    rir[static_cast<std::size_t>(i)] += amp * sinc(t) * std::max(w, 0.0);
  }
}

/// 1D image-source coordinate for walls at 0 and L: even image indices
/// translate the source (n*L + x), odd indices reflect it (n*L + L - x).
/// |n| equals the number of wall reflections along this axis.
double image_coordinate(double x, double l, int n) {
  const double base = static_cast<double>(n) * l;
  return (n % 2 == 0) ? base + x : base + (l - x);
}

}  // namespace

std::vector<double> image_source_rir(const Room& room, Point source,
                                     Point receiver, const RirOptions& opts) {
  ensure(room.contains(source), "source must be inside the room");
  ensure(room.contains(receiver), "receiver must be inside the room");
  ensure(opts.sample_rate > 0, "sample rate must be positive");
  ensure(opts.length >= 16, "RIR length too short");

  std::vector<double> rir(opts.length, 0.0);
  const int order = room.max_order;
  for (int nx = -order; nx <= order; ++nx) {
    for (int ny = -order; ny <= order; ++ny) {
      for (int nz = -order; nz <= order; ++nz) {
        if (std::abs(nx) + std::abs(ny) + std::abs(nz) > order) continue;
        const double img_x = image_coordinate(source.x, room.lx, nx);
        const double img_y = image_coordinate(source.y, room.ly, ny);
        const double img_z = image_coordinate(source.z, room.lz, nz);

        const Point img{img_x, img_y, img_z};
        const double d = distance(img, receiver);
        const double delay =
            d / room.speed_of_sound * opts.sample_rate;
        if (delay >= static_cast<double>(opts.length)) continue;

        const double refl =
            std::pow(room.reflection_x, std::abs(nx)) *
            std::pow(room.reflection_y, std::abs(ny)) *
            std::pow(room.reflection_z, std::abs(nz));
        const double amp =
            refl * (opts.include_spreading ? spreading_gain(d) : 1.0);
        add_bandlimited_impulse(rir, delay, amp, opts.interp_taps);
      }
    }
  }
  return rir;
}

std::vector<double> free_field_ir(Point source, Point receiver,
                                  const RirOptions& opts,
                                  double speed_of_sound) {
  ensure(opts.sample_rate > 0, "sample rate must be positive");
  std::vector<double> ir(opts.length, 0.0);
  const double d = distance(source, receiver);
  const double delay = d / speed_of_sound * opts.sample_rate;
  ensure(delay < static_cast<double>(opts.length),
         "free-field delay exceeds requested IR length");
  const double amp = opts.include_spreading ? spreading_gain(d) : 1.0;
  add_bandlimited_impulse(ir, delay, amp, opts.interp_taps);
  return ir;
}

double direct_delay_samples(const Room& room, Point source, Point receiver,
                            double sample_rate) {
  return distance(source, receiver) / room.speed_of_sound * sample_rate;
}

double estimate_rt60(const std::vector<double>& rir, double sample_rate) {
  ensure(sample_rate > 0, "sample rate must be positive");
  if (rir.empty()) return 0.0;
  // Schroeder backward-integrated energy decay curve, in dB.
  std::vector<double> edc(rir.size());
  double acc = 0.0;
  for (std::size_t i = rir.size(); i-- > 0;) {
    acc += rir[i] * rir[i];
    edc[i] = acc;
  }
  const double total = std::max(edc.front(), 1e-30);
  // Find times where the EDC crosses -5 dB and -25 dB; extrapolate T20->T60.
  double t5 = -1.0, t25 = -1.0;
  for (std::size_t i = 0; i < edc.size(); ++i) {
    const double db = 10.0 * std::log10(std::max(edc[i] / total, 1e-30));
    if (t5 < 0 && db <= -5.0) t5 = static_cast<double>(i) / sample_rate;
    if (t25 < 0 && db <= -25.0) {
      t25 = static_cast<double>(i) / sample_rate;
      break;
    }
  }
  if (t5 < 0 || t25 < 0 || t25 <= t5) return 0.0;
  return 3.0 * (t25 - t5);  // -20 dB span scaled to -60 dB
}

}  // namespace mute::acoustics
