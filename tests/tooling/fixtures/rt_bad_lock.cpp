// rt-lint fixture: mutex acquisition inside an MUTE_RT_SAFE function.
// The gate must FAIL this TU (construct: lock).
#include <mutex>

#include "common/rt_annotations.hpp"

namespace fixture {

class LockingFilter {
 public:
  MUTE_RT_SAFE double process(double x) {
    std::lock_guard<std::mutex> guard(mu_);
    state_ += x;
    return state_;
  }

 private:
  std::mutex mu_;
  double state_ = 0.0;
};

}  // namespace fixture
