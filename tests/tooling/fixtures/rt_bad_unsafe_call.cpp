// rt-lint fixture: an MUTE_RT_SAFE function calls a function annotated
// MUTE_RT_UNSAFE. Even though the unsafe body looks harmless today, the
// annotation declares it control-plane, so the call must FAIL the gate
// (construct: rt-unsafe-call).
#include <cstddef>

#include "common/rt_annotations.hpp"

namespace fixture {

class FencedFilter {
 public:
  MUTE_RT_SAFE double process(double x) {
    refresh_coefficients(1);   // violation: RT surface -> control plane
    return x;
  }

  MUTE_RT_UNSAFE void refresh_coefficients(std::size_t taps) { taps_ = taps; }

 private:
  std::size_t taps_ = 0;
};

}  // namespace fixture
