// rt-lint fixture: heap allocation inside an MUTE_RT_SAFE function.
// The gate must FAIL this TU (construct: operator-new, container-growth).
#include <vector>

#include "common/rt_annotations.hpp"

namespace fixture {

class AllocatingFilter {
 public:
  MUTE_RT_SAFE double process(double x) {
    auto* boxed = new double(x);          // direct operator new
    history_.push_back(*boxed);           // vector growth on the hot path
    delete boxed;
    return history_.back();
  }

 private:
  std::vector<double> history_;
};

}  // namespace fixture
