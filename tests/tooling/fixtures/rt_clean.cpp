// rt-lint fixture: a well-behaved RT surface. The gate must PASS this TU.
//
// Fixtures are analyzed by tools/rt_lint.py, not compiled into the build;
// they still use the real annotation header so the clang mode (when
// libclang is present) sees the same [[clang::annotate]] attributes the
// production tree carries.
#include <cstddef>

#include "common/rt_annotations.hpp"

namespace fixture {

double helper_accumulate(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

class CleanFilter {
 public:
  MUTE_RT_SAFE double process(double x) {
    state_ = 0.5 * state_ + x;
    return helper_accumulate(&state_, 1);
  }

  // Control-plane by design: fenced off, never called from process().
  MUTE_RT_UNSAFE void reconfigure(std::size_t taps);

 private:
  double state_ = 0.0;
};

}  // namespace fixture
