// rt-lint fixture: std::rotate inside an MUTE_RT_SAFE function — the
// O(length)-per-sample history shift the doubled-buffer RingHistory exists
// to forbid (DESIGN.md §10). The gate must FAIL this TU (construct:
// std-rotate).
#include <algorithm>
#include <array>

#include "common/rt_annotations.hpp"

namespace fixture {

class RotatingFilter {
 public:
  MUTE_RT_SAFE double process(double x) {
    std::rotate(taps_.begin(), taps_.begin() + 1, taps_.end());
    taps_.back() = x;
    return taps_.front();
  }

 private:
  std::array<double, 8> taps_{};
};

}  // namespace fixture
