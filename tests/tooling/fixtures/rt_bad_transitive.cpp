// rt-lint fixture: the MUTE_RT_SAFE root is clean, but a plain helper it
// calls throws — proving the gate walks the call graph instead of only
// scanning annotated bodies. The gate must FAIL this TU (construct: throw,
// inside validate_gain reached via process).
#include <stdexcept>

#include "common/rt_annotations.hpp"

namespace fixture {

inline double validate_gain(double g) {
  if (g < 0.0) throw std::invalid_argument("negative gain");
  return g;
}

class TransitivelyBadFilter {
 public:
  MUTE_RT_SAFE double process(double x) { return validate_gain(gain_) * x; }

 private:
  double gain_ = 1.0;
};

}  // namespace fixture
