#!/usr/bin/env python3
"""Regression tests for the rt-lint gate itself (ISSUE 6 satellite).

Each fixture TU under fixtures/ declares an MUTE_RT_SAFE surface; the bad
ones hide exactly one class of banned construct on it. The gate must fail
every bad fixture (exit 1) and pass the clean one (exit 0), in regex mode
always and in clang mode when libclang is available — a gate that cannot
see a seeded violation is worse than no gate.

Also pins the allow-list policy: a justified entry silences exactly its
(function, construct) pair, and an entry without a justification fails the
run on its own.

Run via ctest (rt_lint_fixtures) or directly; exits non-zero on any
failure.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
RT_LINT = os.path.join(REPO, "tools", "rt_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def run(fixture, mode, allow="", extra=None):
    cmd = [sys.executable, RT_LINT, "--mode", mode, "--no-require-roots",
           "--allow", allow, "--src", EMPTY_DIR,
           "--file", os.path.join(FIXTURES, fixture)]
    if extra:
        cmd += extra
    return subprocess.run(cmd, capture_output=True, text=True)


def check(name, proc, want_exit, want_in_output=()):
    ok = proc.returncode == want_exit and all(
        s in proc.stdout for s in want_in_output)
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name} (exit {proc.returncode}, want {want_exit})")
    if not ok:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        failures.append(name)


def clang_mode_available():
    probe = run("rt_clean.cpp", "clang")
    return probe.returncode != 2


BAD = {
    "rt_bad_alloc.cpp": ("operator-new", "container-growth"),
    "rt_bad_lock.cpp": ("lock",),
    "rt_bad_rotate.cpp": ("std-rotate",),
    "rt_bad_transitive.cpp": ("throw",),
    "rt_bad_unsafe_call.cpp": ("rt-unsafe-call",),
}

with tempfile.TemporaryDirectory() as tmp:
    EMPTY_DIR = os.path.join(tmp, "empty")
    os.makedirs(EMPTY_DIR)

    modes = ["regex"]
    if clang_mode_available():
        modes.append("clang")
    else:
        print("clang mode unavailable (no libclang); testing regex mode only")

    for mode in modes:
        check(f"{mode}: clean fixture passes",
              run("rt_clean.cpp", mode), 0)
        for fixture, constructs in BAD.items():
            check(f"{mode}: {fixture} fails with {'/'.join(constructs)}",
                  run(fixture, mode), 1, constructs)

    # The JSON report names the violating function and construct.
    report = os.path.join(tmp, "report.json")
    run("rt_bad_alloc.cpp", "regex", extra=["--report", report])
    with open(report) as fh:
        data = json.load(fh)
    got = {(v["function"], v["construct"]) for v in data["violations"]}
    want = ("fixture::AllocatingFilter::process", "container-growth")
    ok = want in got and data["roots"]
    print(f"[{'ok' if ok else 'FAIL'}] report lists roots and violations")
    if not ok:
        print(json.dumps(data, indent=2))
        failures.append("report contents")

    # Justified allow-list entries silence exactly the listed pairs.
    allow_ok = os.path.join(tmp, "allow_ok.txt")
    with open(allow_ok, "w") as fh:
        fh.write("fixture::AllocatingFilter::process | operator-new | "
                 "fixture exercising the allow-list path\n")
        fh.write("fixture::AllocatingFilter::process | container-growth | "
                 "fixture exercising the allow-list path\n")
    check("allow-list with justifications silences the fixture",
          run("rt_bad_alloc.cpp", "regex", allow=allow_ok), 0)

    # A justified entry for ONE construct must not silence the other.
    allow_partial = os.path.join(tmp, "allow_partial.txt")
    with open(allow_partial, "w") as fh:
        fh.write("fixture::AllocatingFilter::process | operator-new | "
                 "only the new expression is exempt\n")
    check("partial allow-list still fails on the unlisted construct",
          run("rt_bad_alloc.cpp", "regex", allow=allow_partial), 1,
          ("container-growth",))

    # An entry without a justification is itself a gate failure.
    allow_bad = os.path.join(tmp, "allow_bad.txt")
    with open(allow_bad, "w") as fh:
        fh.write("fixture::AllocatingFilter::process | operator-new |\n")
    check("allow-list entry without justification fails",
          run("rt_bad_alloc.cpp", "regex", allow=allow_bad), 1,
          ("ALLOW-LIST ERROR",))

    # Unused entries fail under --strict-allow (rot protection).
    allow_unused = os.path.join(tmp, "allow_unused.txt")
    with open(allow_unused, "w") as fh:
        fh.write("fixture::NoSuchFilter::process | operator-new | "
                 "stale entry that matches nothing\n")
    check("unused allow-list entry fails under --strict-allow",
          run("rt_clean.cpp", "regex", allow=allow_unused,
              extra=["--strict-allow"]), 1)

    # The real tree must hold the contract (same invocation as CI).
    check("production src/ passes the gate",
          subprocess.run([sys.executable, RT_LINT, "--mode", "auto"],
                         capture_output=True, text=True), 0)

if failures:
    print(f"{len(failures)} rt-lint self-test(s) failed: {failures}")
    sys.exit(1)
print("all rt-lint self-tests passed")
