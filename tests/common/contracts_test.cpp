#include "common/contracts.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "adaptive/fxlms.hpp"
#include "core/lanc.hpp"
#include "dsp/biquad.hpp"
#include "dsp/delay_line.hpp"
#include "dsp/fir_filter.hpp"
#include "rf/fm.hpp"

namespace {

using mute::RtAllocationGuard;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(Contracts, AssertPassesOnTrueCondition) {
  MUTE_ASSERT(1 + 1 == 2, "arithmetic still works");
}

TEST(ContractsDeathTest, AssertAbortsWithMessage) {
  EXPECT_DEATH(MUTE_ASSERT(false, "intentional failure"),
               "MUTE_ASSERT.*intentional failure");
}

TEST(ContractsDeathTest, CheckFiniteAbortsOnNan) {
  const float x = kNan;
  EXPECT_DEATH(MUTE_CHECK_FINITE(x, "nan must be rejected"),
               "MUTE_CHECK_FINITE.*nan must be rejected");
}

TEST(Contracts, CheckFinitePassesOnNormalValues) {
  MUTE_CHECK_FINITE(0.0f, "zero is finite");
  MUTE_CHECK_FINITE(-1e30, "large but finite");
}

TEST(ContractsDeathTest, FxlmsRejectsNanReference) {
  mute::adaptive::FxlmsEngine engine({1.0}, {.causal_taps = 8});
  EXPECT_DEATH(engine.step_output(kNan), "MUTE_CHECK_FINITE");
}

TEST(ContractsDeathTest, FxlmsRejectsInfErrorSample) {
  mute::adaptive::FxlmsEngine engine({1.0}, {.causal_taps = 8});
  engine.step_output(0.5f);
  EXPECT_DEATH(engine.adapt(kInf), "MUTE_CHECK_FINITE");
}

TEST(ContractsDeathTest, FirFilterRejectsNanInput) {
  mute::dsp::FirFilter fir({0.5, 0.25});
  EXPECT_DEATH(fir.process(kNan), "MUTE_CHECK_FINITE");
}

TEST(ContractsDeathTest, BiquadRejectsNanInput) {
  auto bq = mute::dsp::Biquad::lowpass(1000.0, 0.707, 16000.0);
  EXPECT_DEATH(bq.process(kNan), "MUTE_CHECK_FINITE");
}

TEST(ContractsDeathTest, DelayLineRejectsInfInput) {
  mute::dsp::DelayLine line(4);
  EXPECT_DEATH(line.process(kInf), "MUTE_CHECK_FINITE");
}

TEST(ContractsDeathTest, FmModulatorRejectsNanInput) {
  mute::rf::FmModulator mod(4000.0, 256000.0);
  EXPECT_DEATH(mod.modulate(kNan), "MUTE_CHECK_FINITE");
}

TEST(ContractsDeathTest, LancRejectsNanReference) {
  mute::core::LancController lanc({1.0, 0.2}, {});
  EXPECT_DEATH(lanc.tick(kNan), "MUTE_CHECK_FINITE");
}

TEST(RtAllocationGuardTest, CountsHeapAllocations) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "built with MUTE_RT_GUARD=OFF";
  }
  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "count-test");
  EXPECT_EQ(guard.allocations_since_entry(), 0u);
  auto* v = new std::vector<double>(1024);
  EXPECT_GE(guard.allocations_since_entry(), 1u);
  delete v;
}

TEST(RtAllocationGuardTest, LancTickIsAllocationFreeAfterWarmup) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "built with MUTE_RT_GUARD=OFF";
  }
  mute::core::LancOptions opts;
  opts.fxlms.causal_taps = 128;
  opts.fxlms.noncausal_taps = 64;
  mute::core::LancController lanc({1.0, 0.4, 0.1}, opts);

  // Warm-up: fill histories and let any lazy setup happen.
  for (int i = 0; i < 2048; ++i) {
    const auto y = lanc.tick(0.01f * static_cast<float>(i % 7));
    lanc.observe_error(0.5f * y);
  }

  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "lanc-tick");
  for (int i = 0; i < 4096; ++i) {
    const auto y = lanc.tick(0.01f * static_cast<float>(i % 11));
    lanc.observe_error(0.5f * y);
  }
  EXPECT_EQ(guard.allocations_since_entry(), 0u)
      << "per-sample LANC path must not touch the heap";
}

TEST(RtAllocationGuardDeathTest, AbortsOnAllocationInRtSection) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "built with MUTE_RT_GUARD=OFF";
  }
  EXPECT_DEATH(
      {
        RtAllocationGuard guard(RtAllocationGuard::Mode::kAbort,
                                "introduced-allocation");
        std::vector<double> oops(256);  // the bug the guard exists to catch
      },
      "RtAllocationGuard.*introduced-allocation");
}

TEST(RtAllocationGuardTest, NestedGuardRestoresOuterMode) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "built with MUTE_RT_GUARD=OFF";
  }
  RtAllocationGuard outer(RtAllocationGuard::Mode::kCount, "outer");
  {
    RtAllocationGuard inner(RtAllocationGuard::Mode::kCount, "inner");
    std::vector<int> v(16);
    EXPECT_GE(inner.allocations_since_entry(), 1u);
  }
  // Allocating after the inner guard unwinds must still only count, not
  // abort: the outer kCount mode is back in force.
  std::vector<int> again(16);
  EXPECT_GE(outer.allocations_since_entry(), 2u);
}

}  // namespace
