#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace mute {
namespace {

TEST(MonotonicArena, BumpsWithAlignmentAndAccounts) {
  alignas(64) std::byte storage[1024];
  MonotonicArena arena(storage, sizeof(storage), "test");

  void* a = arena.allocate(10, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);

  void* b = arena.allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_GT(b, a);

  EXPECT_EQ(arena.allocation_count(), 2u);
  EXPECT_GE(arena.used(), 10u + 1u);
  EXPECT_EQ(arena.high_water(), arena.used());
  EXPECT_FALSE(arena.contains(storage + sizeof(storage)));
}

TEST(MonotonicArena, ResetReclaimsEverythingAndClearsCounters) {
  std::byte storage[256];
  MonotonicArena arena(storage, sizeof(storage), "test");
  void* first = arena.allocate(64, 8);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), 0u);
  EXPECT_EQ(arena.allocation_count(), 0u);
  // The next tenant of this arena starts at the base again.
  EXPECT_EQ(arena.allocate(64, 8), first);
}

TEST(MonotonicArenaDeathTest, ExhaustionAbortsLoudly) {
  // The contract for an undersized tenant arena: a deterministic MUTE_ASSERT
  // abort naming the arena — never UB, never a silent global-heap fallback.
  std::byte storage[128];
  MonotonicArena arena(storage, sizeof(storage), "tiny");
  EXPECT_DEATH(arena.allocate(4096, 8), "monotonic arena exhausted");
}

TEST(ArenaPool, CutsTheSlabIntoIsolatedTenantArenas) {
  ArenaPool pool(4096, 3);
  EXPECT_EQ(pool.tenant_count(), 3u);
  EXPECT_EQ(pool.tenant_bytes(), 4096u);
  void* a0 = pool.arena(0).allocate(128, 8);
  void* a2 = pool.arena(2).allocate(128, 8);
  // Per-tenant isolation: each arena only ever hands out its own range.
  EXPECT_TRUE(pool.arena(0).contains(a0));
  EXPECT_FALSE(pool.arena(0).contains(a2));
  EXPECT_TRUE(pool.arena(2).contains(a2));
  EXPECT_EQ(pool.arena(1).used(), 0u);
}

TEST(ScopedArenaAlloc, RoutesOperatorNewIntoTheActiveArena) {
  if (!ScopedArenaAlloc::routing_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  ArenaPool pool(1 << 16, 2);
  std::vector<double>* v = nullptr;
  {
    ScopedArenaAlloc scope(pool.arena(0));
    v = new std::vector<double>(100, 1.0);
  }
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(pool.arena(0).contains(v));
  EXPECT_GT(pool.arena(0).used(), 100 * sizeof(double));
  EXPECT_EQ(pool.arena(1).used(), 0u);  // isolation through the TLS route
  // Destroying an arena-backed object OUTSIDE any scope must be a no-op
  // free (the delete interposition recognizes the slab range); under
  // ASan/UBSan this would explode if it reached the global allocator.
  delete v;
  pool.arena(0).reset();
}

TEST(ScopedArenaAlloc, NestsAndRestoresThePreviousTarget) {
  if (!ScopedArenaAlloc::routing_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  ArenaPool pool(1 << 16, 2);
  ScopedArenaAlloc outer(pool.arena(0));
  {
    ScopedArenaAlloc inner(pool.arena(1));
    int* p = new int(7);
    EXPECT_TRUE(pool.arena(1).contains(p));
    delete p;
  }
  int* q = new int(9);
  EXPECT_TRUE(pool.arena(0).contains(q));
  delete q;
}

TEST(ScopedArenaAlloc, ArenaAllocationsDoNotCountAsHeapTraffic) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  // Arena-routed news bypass the RtAllocationGuard bookkeeping entirely:
  // they are the designed steady-state mechanism, not heap traffic — this
  // is what lets the fleet's per-block guard prove a clean steady state.
  ArenaPool pool(1 << 16, 1);
  ScopedArenaAlloc scope(pool.arena(0));
  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "arena-route");
  auto* v = new std::vector<float>(64, 0.0f);
  EXPECT_EQ(guard.allocations_since_entry(), 0u);
  delete v;
}

}  // namespace
}  // namespace mute
