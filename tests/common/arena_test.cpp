#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <vector>

#include "common/contracts.hpp"

namespace mute {
namespace {

TEST(MonotonicArena, BumpsWithAlignmentAndAccounts) {
  alignas(64) std::byte storage[1024];
  MonotonicArena arena(storage, sizeof(storage), "test");

  void* a = arena.allocate(10, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);

  void* b = arena.allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_GT(b, a);

  EXPECT_EQ(arena.allocation_count(), 2u);
  EXPECT_GE(arena.used(), 10u + 1u);
  EXPECT_EQ(arena.high_water(), arena.used());
  EXPECT_FALSE(arena.contains(storage + sizeof(storage)));
}

TEST(MonotonicArena, ResetReclaimsEverythingAndClearsCounters) {
  std::byte storage[256];
  MonotonicArena arena(storage, sizeof(storage), "test");
  void* first = arena.allocate(64, 8);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), 0u);
  EXPECT_EQ(arena.allocation_count(), 0u);
  // The next tenant of this arena starts at the base again.
  EXPECT_EQ(arena.allocate(64, 8), first);
}

TEST(MonotonicArena, AlignsTheAbsoluteAddressNotTheOffset) {
  // An arena whose base is deliberately misaligned must still hand out
  // pointers aligned in absolute terms (offset-relative alignment would
  // return base + k*align, which is misaligned here).
  alignas(64) std::byte storage[256];
  MonotonicArena arena(storage + 1, sizeof(storage) - 1, "skewed");
  void* p = arena.allocate(8, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_TRUE(arena.contains(p));
}

TEST(MonotonicArena, TryAllocateReturnsNullOnExhaustion) {
  std::byte storage[128];
  MonotonicArena arena(storage, sizeof(storage), "tiny");
  EXPECT_EQ(arena.try_allocate(4096, 8), nullptr);
  EXPECT_EQ(arena.used(), 0u);  // a failed try leaves the arena untouched
  EXPECT_NE(arena.try_allocate(64, 8), nullptr);
}

TEST(MonotonicArenaDeathTest, ExhaustionAbortsLoudly) {
  // The contract for an undersized tenant arena: a deterministic MUTE_ASSERT
  // abort naming the arena — never UB, never a silent global-heap fallback.
  std::byte storage[128];
  MonotonicArena arena(storage, sizeof(storage), "tiny");
  EXPECT_DEATH(arena.allocate(4096, 8), "monotonic arena exhausted");
}

TEST(ArenaPool, CutsTheSlabIntoIsolatedTenantArenas) {
  ArenaPool pool(4096, 3);
  EXPECT_EQ(pool.tenant_count(), 3u);
  EXPECT_EQ(pool.tenant_bytes(), 4096u);
  void* a0 = pool.arena(0).allocate(128, 8);
  void* a2 = pool.arena(2).allocate(128, 8);
  // Per-tenant isolation: each arena only ever hands out its own range.
  EXPECT_TRUE(pool.arena(0).contains(a0));
  EXPECT_FALSE(pool.arena(0).contains(a2));
  EXPECT_TRUE(pool.arena(2).contains(a2));
  EXPECT_EQ(pool.arena(1).used(), 0u);
}

TEST(ArenaPool, RoundsTenantStrideToFundamentalAlignment) {
  // A ragged tenant_bytes must not skew later tenants' bases: the stride
  // is rounded up to alignof(std::max_align_t).
  ArenaPool pool(1000, 3);
  EXPECT_EQ(pool.tenant_bytes() % alignof(std::max_align_t), 0u);
  EXPECT_GE(pool.tenant_bytes(), 1000u);
  for (std::size_t i = 0; i < pool.tenant_count(); ++i) {
    void* p = pool.arena(i).allocate(8, alignof(std::max_align_t));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
  }
}

TEST(ArenaPool, RegisteringASecondPoolPreservesTheFirstRegionsExtent) {
  // Regression: register_arena_region used to write the new region's size
  // into every probed slot before the claim CAS failed, so creating pool B
  // inflated pool A's registered extent — operator delete then treated
  // heap pointers adjacent to A's slab as arena-owned (leak) or freed
  // arena pointers beyond the clobbered size (heap corruption).
  ArenaPool a(1024, 1);
  void* inside_a = a.arena(0).allocate(16, 8);
  ArenaPool b(1 << 20, 1);  // second registration probes past A's slot
  EXPECT_TRUE(detail::arena_owns(inside_a));
  EXPECT_TRUE(detail::arena_owns(b.arena(0).allocate(16, 8)));
  // A pointer just past A's slab must NOT read as owned by A: its
  // registered size has to still be A's own, not B's. (Guard against the
  // freak case where malloc placed B's slab exactly there.)
  const auto* past_a = static_cast<const std::byte*>(inside_a) +
                       a.tenant_bytes() * a.tenant_count();
  if (!b.arena(0).contains(past_a)) {
    EXPECT_FALSE(detail::arena_owns(past_a));
  }
}

TEST(ScopedArenaAlloc, NothrowNewReturnsNullOnArenaExhaustion) {
  if (!ScopedArenaAlloc::routing_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  // operator new(nothrow) keeps its standard contract under arena routing:
  // exhaustion yields nullptr (checkable by the caller), not the abort the
  // throwing forms use, and never a silent global-heap fallback.
  ArenaPool pool(256, 1);
  ScopedArenaAlloc scope(pool.arena(0));
  void* big = ::operator new(1 << 20, std::nothrow);
  EXPECT_EQ(big, nullptr);
  void* small = ::operator new(32, std::nothrow);
  ASSERT_NE(small, nullptr);
  EXPECT_TRUE(pool.arena(0).contains(small));
  ::operator delete(small, std::nothrow);
}

TEST(ScopedArenaAlloc, RoutesOperatorNewIntoTheActiveArena) {
  if (!ScopedArenaAlloc::routing_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  ArenaPool pool(1 << 16, 2);
  std::vector<double>* v = nullptr;
  {
    ScopedArenaAlloc scope(pool.arena(0));
    v = new std::vector<double>(100, 1.0);
  }
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(pool.arena(0).contains(v));
  EXPECT_GT(pool.arena(0).used(), 100 * sizeof(double));
  EXPECT_EQ(pool.arena(1).used(), 0u);  // isolation through the TLS route
  // Destroying an arena-backed object OUTSIDE any scope must be a no-op
  // free (the delete interposition recognizes the slab range); under
  // ASan/UBSan this would explode if it reached the global allocator.
  delete v;
  pool.arena(0).reset();
}

TEST(ScopedArenaAlloc, NestsAndRestoresThePreviousTarget) {
  if (!ScopedArenaAlloc::routing_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  ArenaPool pool(1 << 16, 2);
  ScopedArenaAlloc outer(pool.arena(0));
  {
    ScopedArenaAlloc inner(pool.arena(1));
    int* p = new int(7);
    EXPECT_TRUE(pool.arena(1).contains(p));
    delete p;
  }
  int* q = new int(9);
  EXPECT_TRUE(pool.arena(0).contains(q));
  delete q;
}

TEST(ScopedArenaAlloc, ArenaAllocationsDoNotCountAsHeapTraffic) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  // Arena-routed news bypass the RtAllocationGuard bookkeeping entirely:
  // they are the designed steady-state mechanism, not heap traffic — this
  // is what lets the fleet's per-block guard prove a clean steady state.
  ArenaPool pool(1 << 16, 1);
  ScopedArenaAlloc scope(pool.arena(0));
  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "arena-route");
  auto* v = new std::vector<float>(64, 0.0f);
  EXPECT_EQ(guard.allocations_since_entry(), 0u);
  delete v;
}

}  // namespace
}  // namespace mute
