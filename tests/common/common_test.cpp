#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace mute {
namespace {

TEST(MathUtils, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_THROW(next_pow2(0), PreconditionError);
}

TEST(MathUtils, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(63));
}

TEST(MathUtils, DbConversionsRoundTrip) {
  EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(power_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_amplitude(amplitude_to_db(0.37)), 0.37, 1e-12);
  EXPECT_NEAR(db_to_power(power_to_db(5.5)), 5.5, 1e-12);
}

TEST(MathUtils, DbOfZeroIsFloored) {
  EXPECT_GT(amplitude_to_db(0.0), -300.0);
  EXPECT_GT(power_to_db(0.0), -300.0);
}

TEST(MathUtils, SincValues) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / kPi, 1e-12);
}

TEST(MathUtils, WrapPhaseStaysInRange) {
  for (double phi : {-100.0, -3.2, 0.0, 3.2, 50.0, 1e4}) {
    const double w = wrap_phase(phi);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same angle modulo 2*pi.
    EXPECT_NEAR(std::remainder(w - phi, kTwoPi), 0.0, 1e-9);
  }
}

TEST(MathUtils, SampleSecondConversions) {
  EXPECT_EQ(seconds_to_samples(1.0, 16000.0), 16000);
  EXPECT_EQ(seconds_to_samples(0.5e-3, 16000.0), 8);
  EXPECT_NEAR(samples_to_seconds(8000, 16000.0), 0.5, 1e-12);
  EXPECT_THROW(samples_to_seconds(1, 0.0), PreconditionError);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.gaussian() != b.gaussian()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child stream differs from a fresh Rng(42).
  Rng fresh(42);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child.gaussian() != fresh.gaussian()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Error, EnsureThrowsWithMessage) {
  try {
    ensure(false, "my condition failed");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("my condition failed"),
              std::string::npos);
  }
}

TEST(Error, EnsurePassesOnTrue) {
  EXPECT_NO_THROW(ensure(true, "never"));
  EXPECT_NO_THROW(invariant(true, "never"));
}

TEST(Error, InvariantThrowsLogicError) {
  EXPECT_THROW(invariant(false, "bug"), InvariantError);
}

TEST(Types, PhysicalConstantsSane) {
  EXPECT_NEAR(kSpeedOfSound, 340.0, 1.0);
  EXPECT_GT(kSpeedOfLight / kSpeedOfSound, 800000.0);
  EXPECT_EQ(kDefaultSampleRate, 16000.0);
}

}  // namespace
}  // namespace mute
