// LancController's kFdBlock engine mode (DESIGN.md §13): the partitioned
// block engine must cancel like the pinned time-domain mode on the same
// tick/observe sequence, absorb its block pipeline inside the acoustic
// lead, survive retargets and profile switches, and tick allocation-free.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/lanc.hpp"

namespace mute::core {
namespace {

constexpr double kFs = kDefaultSampleRate;

LancOptions fd_options(std::size_t causal, std::size_t lead) {
  LancOptions opts;
  opts.fxlms.causal_taps = causal;
  opts.fxlms.noncausal_taps = lead;
  opts.fxlms.mu = 0.5;
  opts.engine = LancEngineKind::kFdBlock;
  return opts;
}

// Mini acoustic loop shared by the scenarios below: hse = delay-1 delta,
// d(t) = n(t), a(t) = y(t-1); returns last-quarter residual in dB rel.
// the 0.01 noise power (same convention as Lanc.TickObserveLoopCancels*).
double run_residual_db(LancController& lanc, std::size_t lead, int t_len,
                       unsigned seed) {
  Rng rng(seed);
  std::vector<float> n_sig(t_len), y(t_len, 0.0f);
  for (auto& v : n_sig) v = static_cast<float>(rng.gaussian(0.1));
  double err = 0.0;
  int count = 0;
  for (int t = 0; t < t_len; ++t) {
    const float x_adv =
        (t + static_cast<int>(lead) < t_len) ? n_sig[t + lead] : 0.0f;
    y[t] = lanc.tick(x_adv);
    const float d = n_sig[t];
    const float a = (t >= 1) ? y[t - 1] : 0.0f;
    const float e = d + a;
    lanc.observe_error(e);
    if (t > 3 * t_len / 4) {
      err += static_cast<double>(e) * static_cast<double>(e);
      ++count;
    }
  }
  return 10.0 * std::log10(err / count / 0.01);
}

TEST(LancFd, TickObserveLoopCancelsSimplePlant) {
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;
  LancController lanc(hse, fd_options(32, 8));
  ASSERT_NE(lanc.fd_engine(), nullptr);
  EXPECT_EQ(lanc.engine_kind(), LancEngineKind::kFdBlock);
  EXPECT_LT(run_residual_db(lanc, 8, 40000, 13), -30.0);
}

TEST(LancFd, ResidualWithinTimeDomainTolerance) {
  // The §13 equivalence bound at controller level: FD residual within
  // +3 dB of the time-domain mode on the identical scenario (one-sided —
  // the per-bin normalization often converges deeper).
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;

  LancOptions td = fd_options(32, 8);
  td.engine = LancEngineKind::kTimeDomain;
  LancController td_lanc(hse, td);
  LancController fd_lanc(hse, fd_options(32, 8));

  const double db_td = run_residual_db(td_lanc, 8, 40000, 13);
  const double db_fd = run_residual_db(fd_lanc, 8, 40000, 13);
  EXPECT_LT(db_td, -30.0);
  // Clamp at -60 dB: below that both residuals are float rounding noise
  // and their ratio is meaningless jitter.
  EXPECT_LT(std::max(db_fd, -60.0), std::max(db_td, -60.0) + 3.0);
}

TEST(LancFd, LookaheadSamplesCountsBlockPlusFutureTaps) {
  // The block pipeline consumes part of the lead; future taps keep the
  // rest. lookahead_samples() must report their sum — the full acoustic
  // lead the controller needs — not just the engine's tap window.
  LancOptions opts = fd_options(8, 13);
  LancController lanc({1.0}, opts);
  ASSERT_NE(lanc.fd_engine(), nullptr);
  EXPECT_EQ(lanc.fd_engine()->block_size() +
                lanc.fd_engine()->noncausal_taps(),
            13u);
  EXPECT_EQ(lanc.lookahead_samples(), 13u);
}

TEST(LancFd, RetargetToShorterLeadKeepsCancelling) {
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;
  LancOptions opts = fd_options(32, 8);
  opts.fd_block = 4;
  LancController lanc(hse, opts);

  const int phase_len = 40000;
  EXPECT_LT(run_residual_db(lanc, 8, phase_len, 13), -30.0);

  // Hand off to a relay leading by 6 instead of 8 (shift = old - new).
  lanc.retarget(1, 6, 2, /*outgoing_flagged=*/false);
  EXPECT_EQ(lanc.lookahead_samples(), 6u);
  EXPECT_LT(run_residual_db(lanc, 6, phase_len, 14), -30.0);
}

TEST(LancFd, ProfilingSwitchesWithFdEngine) {
  // The profiling layer (snapshots, cache store/preload, pending-switch
  // apply) must run against the block engine's weight accessors without
  // tripping engine-kind asserts, and still detect the alternation.
  LancOptions opts = fd_options(16, 8);
  opts.profiling = true;
  opts.profile_frame = 256;
  opts.profile_hop = 128;
  LancController lanc({1.0}, opts);

  audio::ToneSource low(300.0, 0.4, kFs);
  audio::ToneSource high(3000.0, 0.4, kFs);
  const auto seg = static_cast<std::size_t>(kFs / 2);
  for (int rounds = 0; rounds < 6; ++rounds) {
    auto& src = (rounds % 2 == 0) ? low : high;
    const auto block = src.generate(seg);
    for (Sample v : block) {
      lanc.tick(v);
      lanc.observe_error(0.0f);
    }
  }
  EXPECT_GE(lanc.profile_count(), 2u);
  EXPECT_GE(lanc.profile_switch_count(), 2u);
}

TEST(LancFd, SteadyStateTickIsAllocationFree) {
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;
  LancOptions opts = fd_options(256, 64);
  LancController lanc(hse, opts);

  Rng rng(99);
  // Warm up past the first blocks (primes every lazy path).
  for (int t = 0; t < 1024; ++t) {
    lanc.tick(static_cast<Sample>(rng.gaussian(0.1)));
    lanc.observe_error(static_cast<Sample>(rng.gaussian(0.05)));
  }
  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "lanc-fd-tick");
  for (int t = 0; t < 1024; ++t) {
    lanc.tick(static_cast<Sample>(rng.gaussian(0.1)));
    lanc.observe_error(static_cast<Sample>(rng.gaussian(0.05)));
  }
  if (RtAllocationGuard::interposition_enabled()) {
    EXPECT_EQ(guard.allocations_since_entry(), 0u);
  }
}

}  // namespace
}  // namespace mute::core
