// LinkMonitor: the streaming health estimator for the received wireless
// reference. Detector levels mirror the measured FM chain: healthy demod
// audio ~0.09 rms, carrier-off discriminator noise ~0.33 rms, jammer
// capture ~0.0015 rms residue.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/link_monitor.hpp"

namespace mute::core {
namespace {

constexpr double kFs = 16000.0;

/// Feed `seconds` of white noise at `rms` into the monitor; returns the
/// fraction of samples it reported healthy.
double feed_noise(LinkMonitor& mon, Rng& rng, double rms, double seconds) {
  const auto n = static_cast<std::size_t>(seconds * kFs);
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    (void)mon.process(static_cast<Sample>(rms * rng.gaussian()));
    if (mon.healthy()) ++healthy;
  }
  return static_cast<double>(healthy) / static_cast<double>(n);
}

TEST(LinkMonitor, HealthyReferencePassesThrough) {
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(1);
  EXPECT_GT(feed_noise(mon, rng, 0.09, 2.0), 0.999);
  EXPECT_EQ(mon.fault_episodes(), 0u);
  // Pass-through: a healthy sample comes back unchanged.
  const Sample x = 0.05f;
  EXPECT_EQ(mon.process(x), x);
}

TEST(LinkMonitor, FlagsDropoutNoiseSurgeAndRecovers) {
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(2);
  feed_noise(mon, rng, 0.09, 2.0);  // establish the healthy baseline
  // Carrier loss: the discriminator emits ~0.33 rms wideband noise. The
  // monitor must flag within tens of milliseconds, squelch to zero, and
  // stay flagged for the whole outage.
  const double healthy_frac = feed_noise(mon, rng, 0.33, 0.5);
  EXPECT_LT(healthy_frac, 0.05);  // flagged after < 25 ms of the 500 ms
  EXPECT_FALSE(mon.healthy());
  EXPECT_TRUE(mon.flags() & LinkFlags::kNoiseBurst);
  EXPECT_EQ(mon.process(0.3f), 0.0f);  // squelched while unhealthy
  EXPECT_EQ(mon.fault_episodes(), 1u);
  // Link returns: recovery after the hysteresis hold, not instantly.
  const double back = feed_noise(mon, rng, 0.09, 1.0);
  EXPECT_GT(back, 0.8);
  EXPECT_LT(back, 0.999);  // the recover hold keeps it flagged briefly
  EXPECT_TRUE(mon.healthy());
}

TEST(LinkMonitor, NonFiniteFlagsInstantlyAndSanitizes) {
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(3);
  feed_noise(mon, rng, 0.09, 1.0);
  const Sample bad = std::numeric_limits<Sample>::quiet_NaN();
  const Sample out = mon.process(bad);
  EXPECT_EQ(out, 0.0f);  // never forwards NaN downstream
  EXPECT_FALSE(mon.healthy());  // no hysteresis for poison
  EXPECT_TRUE(mon.flags() & LinkFlags::kNonFinite);
  const Sample inf = std::numeric_limits<Sample>::infinity();
  EXPECT_EQ(mon.process(inf), 0.0f);
}

TEST(LinkMonitor, SilenceFlagsAfterHold) {
  // Jammer capture collapses the demod output to ~1.5e-3 rms — below the
  // silence threshold, but only sustained silence counts.
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(4);
  feed_noise(mon, rng, 0.09, 1.0);
  const double frac_short = feed_noise(mon, rng, 0.0015, 0.05);
  EXPECT_GT(frac_short, 0.99);  // 50 ms of quiet: not yet a fault
  feed_noise(mon, rng, 0.0015, 0.3);
  EXPECT_FALSE(mon.healthy());  // 350 ms total: silence hold expired
  EXPECT_TRUE(mon.flags() & LinkFlags::kSilent);
}

TEST(LinkMonitor, LoudOnsetAfterQuietIsNotADropout) {
  // The absolute min-power gate: jumping from near-silence to a loud but
  // sane ambient level must not read as carrier loss.
  LinkMonitorOptions opts;
  LinkMonitor mon(opts, kFs);
  Rng rng(5);
  feed_noise(mon, rng, 0.02, 2.0);  // quiet room
  const double frac = feed_noise(mon, rng, 0.12, 1.0);  // loud onset
  EXPECT_GT(frac, 0.999) << "loud-but-sane onset must stay healthy";
  EXPECT_EQ(mon.fault_episodes(), 0u);
}

TEST(LinkMonitor, SaturationIsFlagged) {
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(6);
  feed_noise(mon, rng, 0.09, 1.0);
  for (int i = 0; i < 400; ++i) (void)mon.process(1.0f);
  EXPECT_FALSE(mon.healthy());
  EXPECT_TRUE(mon.flags() & LinkFlags::kSaturated);
}

TEST(LinkMonitor, ResetClearsEverything) {
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(7);
  feed_noise(mon, rng, 0.09, 0.5);
  feed_noise(mon, rng, 0.33, 0.2);
  EXPECT_FALSE(mon.healthy());
  mon.reset();
  EXPECT_TRUE(mon.healthy());
  EXPECT_EQ(mon.fault_episodes(), 0u);
  EXPECT_EQ(mon.unhealthy_samples(), 0u);
  EXPECT_EQ(mon.flags(), LinkFlags::kNone);
}

TEST(LinkMonitor, ProcessIsAllocationFree) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "allocation interposition not enabled in this build";
  }
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(8);
  feed_noise(mon, rng, 0.09, 0.1);  // warm up
  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "link-monitor");
  for (int i = 0; i < 4096; ++i) {
    (void)mon.process(static_cast<Sample>(0.09 * rng.gaussian()));
  }
  EXPECT_EQ(guard.allocations_since_entry(), 0u);
}

TEST(LinkMonitor, CountsUnhealthySamplesAndEpisodes) {
  LinkMonitor mon(LinkMonitorOptions{}, kFs);
  Rng rng(9);
  feed_noise(mon, rng, 0.09, 1.0);
  feed_noise(mon, rng, 0.33, 0.3);  // episode 1
  feed_noise(mon, rng, 0.09, 1.0);
  feed_noise(mon, rng, 0.33, 0.3);  // episode 2
  feed_noise(mon, rng, 0.09, 1.0);
  EXPECT_EQ(mon.fault_episodes(), 2u);
  // Each 300 ms burst was flagged nearly end-to-end (minus detect, plus
  // the 150 ms recovery hold).
  const auto flagged_s =
      static_cast<double>(mon.unhealthy_samples()) / kFs;
  EXPECT_GT(flagged_s, 0.7);
  EXPECT_LT(flagged_s, 1.1);
}

}  // namespace
}  // namespace mute::core
