// Unit tests for the shadow pre-convergence filter: prediction-NLMS
// convergence on a synthetic linear mapping, the assign() keep/reset
// semantics, the convergence latch (Schmitt hysteresis) that rides out
// detection-lag creep, and the gross-error gate that shields converged
// weights from the garbage a faulting primary emits before its monitor
// flags it.
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/shadow_filter.hpp"

namespace mute::core {
namespace {

constexpr std::size_t kNoncausal = 4;
constexpr std::size_t kCausal = 16;
// The mapping the shadow must learn: y(t) = kGain * x(t - kLag) where the
// lag is counted in pushes — window index kLag (newest-first) in the
// shadow engine's reference window, comfortably inside [0, N + L).
constexpr std::size_t kLag = 6;
constexpr double kGain = 0.8;

adaptive::FxlmsOptions engine_options() {
  adaptive::FxlmsOptions opts;
  opts.causal_taps = kCausal;
  opts.noncausal_taps = 0;  // assign() sizes the window per target
  opts.mu = 0.5;
  return opts;
}

ShadowFilterOptions quick_options() {
  ShadowFilterOptions opts;
  opts.adapt_stride = 1;  // every sample adapts: unit tests want speed
  opts.ema_alpha = 0.02;
  opts.min_updates = 64;
  return opts;
}

/// Drives a ShadowFilter against scripted target streams derived from one
/// shared reference history.
struct Driver {
  explicit Driver(ShadowFilter& shadow, std::uint64_t seed = 7)
      : shadow_(&shadow), rng_(seed) {}

  double next_x() {
    const double x = rng_.gaussian();
    history_.push_back(x);
    return x;
  }

  double delayed(std::size_t lag) const {
    return history_.size() > lag
               ? history_[history_.size() - 1 - lag]
               : 0.0;
  }

  /// `steps` observations of the clean mapping y = kGain * x(t - kLag).
  void run_clean(int steps) {
    for (int i = 0; i < steps; ++i) {
      const double x = next_x();
      shadow_->observe(static_cast<Sample>(x),
                       static_cast<Sample>(kGain * delayed(kLag)));
    }
  }

  ShadowFilter* shadow_;
  Rng rng_;
  std::vector<double> history_;
};

TEST(ShadowFilter, ConvergesOnALinearMappingAndLearnsItsWeights) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(1, kNoncausal, 0.004);
  EXPECT_FALSE(shadow.converged());
  EXPECT_DOUBLE_EQ(shadow.error_ratio(), 1.0);  // no data yet

  Driver drive(shadow);
  drive.run_clean(4000);

  EXPECT_TRUE(shadow.converged());
  EXPECT_LT(shadow.error_ratio(), 0.25);
  EXPECT_EQ(shadow.relay(), 1u);
  // The engine's weights ARE the mapping, in the same newest-first layout
  // the LANC engine uses — that is what makes them installable.
  const auto& w = shadow.engine().weights();
  ASSERT_EQ(w.size(), kNoncausal + kCausal);
  EXPECT_NEAR(w[kLag], kGain, 0.1);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != kLag) {
      EXPECT_LT(std::abs(w[i]), 0.15) << "tap " << i;
    }
  }
}

TEST(ShadowFilter, ReassigningTheSameTargetKeepsConvergence) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(2, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());
  const std::size_t updates = shadow.update_count();

  // A refreshed selection round re-ranks the same relay with a slightly
  // different lookahead estimate: convergence must survive.
  shadow.assign(2, kNoncausal, 0.0045);
  EXPECT_TRUE(shadow.converged());
  EXPECT_EQ(shadow.update_count(), updates);
  EXPECT_DOUBLE_EQ(shadow.lookahead_s(), 0.0045);
}

TEST(ShadowFilter, AssigningANewRelayResets) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(2, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());

  shadow.assign(3, kNoncausal, 0.004);  // different relay: start clean
  EXPECT_FALSE(shadow.converged());
  EXPECT_EQ(shadow.update_count(), 0u);
  for (const double w : shadow.engine().weights()) {
    EXPECT_DOUBLE_EQ(w, 0.0);
  }

  // So does a window resize on the same relay (the old weights predicted
  // a different alignment).
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());
  shadow.assign(3, kNoncausal + 2, 0.006);
  EXPECT_FALSE(shadow.converged());
  EXPECT_EQ(shadow.update_count(), 0u);
}

TEST(ShadowFilter, LatchRidesOutModerateCreepButNotGenuineDivergence) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(1, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());

  // Dead-band regime: an unpredictable component pushes the error ratio
  // past converged_ratio (0.25) but below diverged_ratio (0.5) — with the
  // NLMS misadjustment from chasing the noise, err^2 ~ 1.6 * 0.16 and
  // tgt^2 ~ 0.64 + 0.16, so ratio lands near 0.3. The latch must hold.
  Rng noise(99);
  for (int i = 0; i < 4000; ++i) {
    const double x = drive.next_x();
    const double y = kGain * drive.delayed(kLag) + 0.4 * noise.gaussian();
    shadow.observe(static_cast<Sample>(x), static_cast<Sample>(y));
  }
  EXPECT_GT(shadow.error_ratio(), 0.25);
  EXPECT_LT(shadow.error_ratio(), 0.5);
  EXPECT_TRUE(shadow.converged()) << "ratio in the hysteresis dead band "
                                  << shadow.error_ratio()
                                  << " must not unlatch";

  // Genuine divergence: the target becomes an unrelated stream of similar
  // power. The ratio climbs past diverged_ratio and the latch opens.
  for (int i = 0; i < 4000; ++i) {
    const double x = drive.next_x();
    shadow.observe(static_cast<Sample>(x),
                   static_cast<Sample>(kGain * noise.gaussian()));
  }
  EXPECT_GT(shadow.error_ratio(), 0.5);
  EXPECT_FALSE(shadow.converged());
}

TEST(ShadowFilter, FreshFilterInTheDeadBandNeverLatches) {
  // The asymmetry that makes the latch a Schmitt trigger: an error ratio
  // inside the hysteresis band keeps an already-converged shadow latched
  // (previous test) but must not latch a fresh one. A widened band keeps
  // the steady ~0.32 ratio clear of the latch threshold so the property
  // is not at the mercy of EMA fluctuation.
  ShadowFilterOptions opts = quick_options();
  opts.converged_ratio = 0.1;
  opts.diverged_ratio = 0.5;
  ShadowFilter shadow(engine_options(), opts);
  shadow.assign(1, kNoncausal, 0.004);
  Driver drive(shadow);
  Rng noise(99);
  for (int i = 0; i < 8000; ++i) {
    const double x = drive.next_x();
    const double y = kGain * drive.delayed(kLag) + 0.4 * noise.gaussian();
    shadow.observe(static_cast<Sample>(x), static_cast<Sample>(y));
  }
  EXPECT_GT(shadow.error_ratio(), 0.1);
  EXPECT_LT(shadow.error_ratio(), 0.5);
  EXPECT_FALSE(shadow.converged());
}

TEST(ShadowFilter, OutlierGateShieldsConvergenceFromLoudGarbage) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(1, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());
  const std::size_t updates = shadow.update_count();
  const double ratio = shadow.error_ratio();

  // A short burst of loud garbage (the primary's feed during detection
  // lag, e.g. demod noise under a jammer): every step is rejected — no
  // weight update, no EMA update — as long as it stays shorter than
  // min_updates. Constant ±10 magnitude keeps every error decisively
  // above the gate (gaussian garbage would slip its small-|g| samples
  // through a per-sample gate — that leak is the dead-band latch's job).
  for (std::size_t i = 0; i < quick_options().min_updates; ++i) {
    const double x = drive.next_x();
    shadow.observe(static_cast<Sample>(x),
                   static_cast<Sample>(i % 2 == 0 ? 10.0 : -10.0));
  }
  EXPECT_TRUE(shadow.converged());
  EXPECT_EQ(shadow.update_count(), updates) << "gated steps must not count";
  EXPECT_DOUBLE_EQ(shadow.error_ratio(), ratio);

  // Back to the clean mapping: the shadow is still the filter it was.
  drive.run_clean(512);
  EXPECT_TRUE(shadow.converged());
  EXPECT_LT(shadow.error_ratio(), 0.25);
}

TEST(ShadowFilter, PersistentRegimeChangeRestartsTheStatistics) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(1, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());

  // The loud regime persists past min_updates consecutive rejections: this
  // is not a glitch but a real change, so the gate un-wedges itself — the
  // statistics restart (update_count back to zero) and adaptation resumes
  // on the new regime.
  for (int i = 0; i < 1000; ++i) {
    const double x = drive.next_x();
    shadow.observe(static_cast<Sample>(x),
                   static_cast<Sample>(i % 2 == 0 ? 10.0 : -10.0));
  }
  EXPECT_FALSE(shadow.converged());
  EXPECT_LT(shadow.update_count(), 1000u) << "statistics never restarted";
  EXPECT_GT(shadow.update_count(), 0u) << "adaptation never resumed";
}

TEST(ShadowFilter, TrackAdvancesTheWindowWithoutAdapting) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(1, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());
  const std::size_t updates = shadow.update_count();
  const double ratio = shadow.error_ratio();

  // A hold/handoff interval: the primary's fading feed is no target, but
  // the window must stay contiguous with the live stream.
  for (int i = 0; i < 200; ++i) {
    shadow.track(static_cast<Sample>(drive.next_x()));
  }
  EXPECT_EQ(shadow.update_count(), updates);
  EXPECT_DOUBLE_EQ(shadow.error_ratio(), ratio);
  EXPECT_TRUE(shadow.converged());

  // Resuming observation stays converged: track() kept the reference
  // window sample-aligned with the stream.
  drive.run_clean(512);
  EXPECT_TRUE(shadow.converged());
  EXPECT_LT(shadow.error_ratio(), 0.25);
}

TEST(ShadowFilter, ClearForgetsTheTarget) {
  ShadowFilter shadow(engine_options(), quick_options());
  shadow.assign(1, kNoncausal, 0.004);
  Driver drive(shadow);
  drive.run_clean(4000);
  ASSERT_TRUE(shadow.converged());

  shadow.clear();
  EXPECT_FALSE(shadow.has_target());
  EXPECT_FALSE(shadow.converged());
  // Observations without a target are no-ops.
  const std::size_t updates = shadow.update_count();
  drive.run_clean(100);
  EXPECT_EQ(shadow.update_count(), updates);
}

TEST(ShadowFilter, RejectsBrokenOptions) {
  ShadowFilterOptions bad = quick_options();
  bad.diverged_ratio = bad.converged_ratio;  // no hysteresis band
  EXPECT_THROW(ShadowFilter(engine_options(), bad), PreconditionError);
  bad = quick_options();
  bad.outlier_gate = 1.0;
  EXPECT_THROW(ShadowFilter(engine_options(), bad), PreconditionError);
  bad = quick_options();
  bad.adapt_stride = 0;
  EXPECT_THROW(ShadowFilter(engine_options(), bad), PreconditionError);
}

}  // namespace
}  // namespace mute::core
