#include <cmath>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "acoustics/environment.hpp"
#include "core/filter_cache.hpp"
#include "core/gcc_phat.hpp"
#include "core/lanc.hpp"
#include "core/profile.hpp"
#include "core/relay_select.hpp"
#include "core/timing.hpp"
#include "dsp/delay_line.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::core {
namespace {

constexpr double kFs = 16000.0;

// ------------------------------------------------------------- timing

TEST(Timing, BudgetSumsComponents) {
  LatencyBudget b{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(b.total_us(), 100.0);
  EXPECT_DOUBLE_EQ(b.total_s(), 100e-6);
}

TEST(Timing, UsableLookaheadSubtractsEverything) {
  LatencyBudget b{25.0, 25.0, 25.0, 25.0};  // 100 us
  EXPECT_NEAR(usable_lookahead_s(3e-3, b, 0.5e-3), 2.4e-3, 1e-12);
  EXPECT_LT(usable_lookahead_s(30e-6, b), 0.0);  // headphone misses deadline
}

TEST(Timing, LookaheadTapsFloorsAndClamps) {
  EXPECT_EQ(lookahead_taps(-1.0, kFs), 0u);
  EXPECT_EQ(lookahead_taps(1e-3, kFs), 16u);
  EXPECT_EQ(lookahead_taps(0.99e-3, kFs), 15u);
}

TEST(Timing, Equation4OneMeterIsThreeMs) {
  EXPECT_NEAR(geometric_lookahead_s(1.0, 2.0), 2.94e-3, 0.05e-3);
}

// ----------------------------------------------------------- gcc-phat

TEST(GccPhat, FindsKnownIntegerLag) {
  Rng rng(1);
  const std::size_t n = 8000;
  Signal ref(n), delayed(n, 0.0f);
  for (auto& v : ref) v = static_cast<Sample>(rng.gaussian(0.3));
  const std::size_t lag = 57;
  for (std::size_t i = lag; i < n; ++i) delayed[i] = ref[i - lag];
  const auto r = gcc_phat(ref, delayed, kFs);
  EXPECT_NEAR(r.peak_lag_s, static_cast<double>(lag) / kFs, 1.0 / kFs);
  EXPECT_GT(r.peak_value, 0.3);
}

TEST(GccPhat, NegativeLagDetected) {
  Rng rng(2);
  const std::size_t n = 8000;
  Signal a(n), b(n, 0.0f);
  for (auto& v : a) v = static_cast<Sample>(rng.gaussian(0.3));
  // b LEADS a: a is the delayed copy.
  const std::size_t lag = 33;
  for (std::size_t i = lag; i < n; ++i) b[i - lag] = a[i];
  const auto r = gcc_phat(a, b, kFs);
  EXPECT_NEAR(r.peak_lag_s, -static_cast<double>(lag) / kFs, 1.0 / kFs);
}

TEST(GccPhat, RobustToReverb) {
  // The PHAT weighting should keep the direct-path peak dominant even when
  // the delayed copy passes through a multipath-ish FIR.
  Rng rng(3);
  const std::size_t n = 16000;
  Signal ref(n);
  for (auto& v : ref) v = static_cast<Sample>(rng.gaussian(0.3));
  std::vector<double> multipath(300, 0.0);
  multipath[40] = 1.0;
  multipath[90] = 0.4;
  multipath[200] = 0.2;
  mute::dsp::FirFilter f(multipath);
  Signal delayed(n);
  for (std::size_t i = 0; i < n; ++i) delayed[i] = f.process(ref[i]);
  const auto r = gcc_phat(ref, delayed, kFs);
  EXPECT_NEAR(r.peak_lag_s, 40.0 / kFs, 2.0 / kFs);
}

TEST(GccPhat, LagWindowRespected) {
  Rng rng(4);
  Signal a(4000), b(4000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Sample>(rng.gaussian());
    b[i] = static_cast<Sample>(rng.gaussian());
  }
  const auto r = gcc_phat(a, b, kFs, 0.002);
  for (double lag : r.lag_s) {
    EXPECT_LE(std::abs(lag), 0.002 + 1e-9);
  }
}

TEST(GccPhat, RejectsMismatchedLengths) {
  Signal a(1000), b(999);
  EXPECT_THROW(gcc_phat(a, b, kFs), PreconditionError);
}

// ----------------------------------------------------------- profiles

TEST(Profile, SignatureDistanceIsSymmetricAndZeroOnSelf) {
  ProfileSignature a{{0.5, 0.3, 0.2}, -20.0};
  ProfileSignature b{{0.2, 0.3, 0.5}, -30.0};
  EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
  EXPECT_DOUBLE_EQ(a.distance(b), b.distance(a));
  EXPECT_GT(a.distance(b), 0.0);
}

TEST(Profile, ExtractorSeparatesToneBands) {
  SignatureExtractor ex(kFs, 256, 8);
  audio::ToneSource low(300.0, 0.5, kFs), high(3500.0, 0.5, kFs);
  const auto sig_low = ex.extract(low.generate(256));
  const auto sig_high = ex.extract(high.generate(256));
  EXPECT_GT(sig_low.distance(sig_high), 0.5);
}

TEST(Profile, NyquistEnergyCountsTowardTheLastBand) {
  // Regression: band edges are half-open [f0, f1), so the exact-Nyquist
  // bin (f == fs/2 == the last band's upper edge) satisfied no band's
  // `f < f1` and its power silently vanished from the fractions — which
  // are normalized by TOTAL bin power, so a near-Nyquist source summed
  // to far below 1. The last band closes at Nyquist now.
  SignatureExtractor ex(kFs, 256, 8);
  Signal frame(256);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = (i % 2 == 0) ? 0.5f : -0.5f;  // cos(pi*n): the Nyquist tone
  }
  const auto sig = ex.extract(frame);
  double sum = 0.0;
  for (const double v : sig.band_fraction) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(sig.band_fraction.back(), 0.9);
}

TEST(Profile, ExtractorWorkspaceReuseIsStateless) {
  // The window/FFT workspace is built once and reused every call; a
  // frame's signature must not depend on what was extracted before it.
  SignatureExtractor ex(kFs, 256, 8);
  audio::ToneSource low(300.0, 0.5, kFs), high(3500.0, 0.5, kFs);
  const auto lo_frame = low.generate(256);
  const auto first = ex.extract(lo_frame);
  ex.extract(high.generate(256));
  const auto again = ex.extract(lo_frame);
  ASSERT_EQ(first.band_fraction.size(), again.band_fraction.size());
  for (std::size_t b = 0; b < first.band_fraction.size(); ++b) {
    EXPECT_DOUBLE_EQ(first.band_fraction[b], again.band_fraction[b]);
  }
  EXPECT_DOUBLE_EQ(first.level_db, again.level_db);
}

TEST(Profile, ClassifierAssignsSilenceToProfileZero) {
  ProfileClassifier pc;
  ProfileSignature quiet{{0.1, 0.9}, -80.0};
  EXPECT_EQ(pc.classify(quiet), 0u);
}

TEST(Profile, ClassifierSeparatesDistinctSounds) {
  ProfileClassifier pc;
  ProfileSignature speechish{{0.7, 0.2, 0.1, 0.0}, -20.0};
  ProfileSignature hissish{{0.0, 0.1, 0.2, 0.7}, -20.0};
  const auto id1 = pc.classify(speechish);
  const auto id2 = pc.classify(hissish);
  EXPECT_NE(id1, id2);
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, 0u);
  // Stable on re-presentation.
  EXPECT_EQ(pc.classify(speechish), id1);
  EXPECT_EQ(pc.classify(hissish), id2);
}

TEST(Profile, ClassifierBoundedBySlotLimit) {
  ProfileClassifier::Options opts;
  opts.max_profiles = 3;
  ProfileClassifier pc(opts);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> bands(4, 0.0);
    bands[i % 4] = 1.0;
    pc.classify(ProfileSignature{bands, -10.0 - i});
  }
  EXPECT_LE(pc.profile_count(), 3u);
}

TEST(FilterCache, StoreLoadRoundTrip) {
  FilterCache cache;
  const std::vector<double> w = {1.0, 2.0, 3.0};
  cache.store({0, 5}, w);
  ASSERT_TRUE(cache.contains({0, 5}));
  const auto loaded = cache.load({0, 5});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ((*loaded)[2], 3.0);
  EXPECT_FALSE(cache.load({0, 6}).has_value());
}

TEST(FilterCache, OverwriteReplaces) {
  FilterCache cache;
  cache.store({2, 1}, std::vector<double>{1.0});
  cache.store({2, 1}, std::vector<double>{9.0, 9.0});
  EXPECT_EQ(cache.load({2, 1})->size(), 2u);
}

TEST(FilterCache, RelayAxisKeepsEntriesSeparate) {
  // The same profile id converged against two different relays must hit
  // two different entries — loading relay 0's filter for relay 2 would
  // replay the wrong alignment (the whole point of the composite key).
  FilterCache cache;
  cache.store({0, 3}, std::vector<double>{1.0, 0.0});
  cache.store({2, 3}, std::vector<double>{0.0, 1.0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ((*cache.load({0, 3}))[0], 1.0);
  EXPECT_EQ((*cache.load({2, 3}))[1], 1.0);
  // And the axes must not commute: (relay=3, profile=0) is not (0, 3).
  EXPECT_FALSE(cache.contains({3, 0}));
}

TEST(FilterCache, EraseRelayDropsAllItsProfiles) {
  FilterCache cache;
  cache.store({1, 0}, std::vector<double>{1.0});
  cache.store({1, 4}, std::vector<double>{2.0});
  cache.store({2, 0}, std::vector<double>{3.0});
  EXPECT_EQ(cache.erase_relay(1), 2u);
  EXPECT_FALSE(cache.contains({1, 0}));
  EXPECT_FALSE(cache.contains({1, 4}));
  ASSERT_TRUE(cache.contains({2, 0}));
  EXPECT_EQ((*cache.load({2, 0}))[0], 3.0);
}

TEST(FilterCache, LoadedSpanSurvivesOtherKeyInserts) {
  // Lifetime contract (see FilterCache): a loaded span must stay valid
  // across store() calls for OTHER keys, even across the rehash that the
  // inserts force — unordered_map nodes never move, and the vector's heap
  // buffer moves with its node.
  FilterCache cache;
  const std::vector<double> w = {4.0, 5.0, 6.0};
  cache.store({0, 0}, w);
  const auto span = cache.load({0, 0});
  ASSERT_TRUE(span.has_value());
  const double* data_before = span->data();
  for (std::size_t k = 1; k < 200; ++k) {
    cache.store({k, k}, w);  // enough inserts to rehash several times
  }
  EXPECT_EQ(span->data(), data_before);
  EXPECT_EQ((*span)[0], 4.0);
  EXPECT_EQ((*span)[2], 6.0);
}

TEST(FilterCache, SameKeyOverwriteIsTheInvalidationHazard) {
  // The flip side of the contract: a same-key store() may grow the mapped
  // vector's buffer, so the old span is dead. Callers must reload — pin
  // the documented behaviour by checking the reloaded span sees the new
  // payload (dereferencing the stale span would be UB, so we don't).
  FilterCache cache;
  cache.store({0, 0}, std::vector<double>{1.0});
  ASSERT_TRUE(cache.load({0, 0}).has_value());
  cache.store({0, 0}, std::vector<double>{7.0, 8.0, 9.0, 10.0});
  const auto reloaded = cache.load({0, 0});
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_EQ(reloaded->size(), 4u);
  EXPECT_EQ((*reloaded)[3], 10.0);
}

// ----------------------------------------------------------- selection

TEST(RelaySelect, PicksLargestPositiveLookahead) {
  Rng rng(7);
  const std::size_t n = 8000;
  Signal source(n);
  for (auto& v : source) v = static_cast<Sample>(rng.gaussian(0.3));
  // Relay 0 leads ear by 80 samples, relay 1 by 20, relay 2 lags by 30.
  auto delayed_by = [&](int lag) {
    Signal out(n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - lag;
      if (j >= 0 && j < static_cast<std::ptrdiff_t>(n)) {
        out[i] = source[static_cast<std::size_t>(j)];
      }
    }
    return out;
  };
  const Signal ear = delayed_by(100);
  std::vector<Signal> relays = {delayed_by(20), delayed_by(80),
                                delayed_by(130)};
  const auto sel = select_relay(relays, ear, kFs);
  ASSERT_TRUE(sel.chosen.has_value());
  EXPECT_EQ(sel.chosen->relay_index, 0u);
  EXPECT_NEAR(sel.chosen->lookahead_s, 80.0 / kFs, 2.0 / kFs);
  // The lagging relay measured negative lookahead.
  EXPECT_LT(sel.all[2].lookahead_s, 0.0);
}

TEST(RelaySelect, AbstainsWhenAllRelaysLag) {
  Rng rng(9);
  const std::size_t n = 8000;
  Signal source(n);
  for (auto& v : source) v = static_cast<Sample>(rng.gaussian(0.3));
  auto delayed_by = [&](int lag) {
    Signal out(n, 0.0f);
    for (std::size_t i = static_cast<std::size_t>(lag); i < n; ++i) {
      out[i] = source[i - lag];
    }
    return out;
  };
  const Signal ear = delayed_by(0);
  std::vector<Signal> relays = {delayed_by(50), delayed_by(90)};
  const auto sel = select_relay(relays, ear, kFs);
  EXPECT_FALSE(sel.chosen.has_value());
}

TEST(RelaySelect, StreamingWrapperFiresPeriodically) {
  Rng rng(11);
  RelaySelector selector(2, kFs, 0.25);
  const auto period = static_cast<std::size_t>(0.25 * kFs);
  std::size_t fired = 0;
  Signal src(3 * period);
  for (auto& v : src) v = static_cast<Sample>(rng.gaussian(0.3));
  for (std::size_t t = 0; t < src.size(); ++t) {
    const Sample lead = src[t];
    const Sample lag = (t >= 40) ? src[t - 40] : 0.0f;
    const Sample relay_samples[] = {lead, lag};
    if (selector.push(relay_samples, lag)) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  ASSERT_TRUE(selector.current().has_value());
  ASSERT_TRUE(selector.current()->chosen.has_value());
  EXPECT_EQ(selector.current()->chosen->relay_index, 0u);
}

TEST(RelaySelect, StandbyScoreCreditsLookaheadOnlyUpToSaturation) {
  // The shadow budget goes to the best standby_score: confidence weights
  // trust, and lookahead is credited only up to the tap-cap saturation
  // point — a huge lead past it must not outrank a more confident relay.
  const double needed = 0.01;
  EXPECT_DOUBLE_EQ(standby_score({0, 0.005, 0.8}, needed), 0.8 * 0.5);
  EXPECT_DOUBLE_EQ(standby_score({0, 0.01, 0.8}, needed), 0.8);
  EXPECT_DOUBLE_EQ(standby_score({0, 0.05, 0.8}, needed), 0.8)
      << "lead beyond the saturation point buys no score";
  EXPECT_GT(standby_score({0, 0.01, 0.9}, needed),
            standby_score({0, 0.05, 0.8}, needed));
  // Non-positive lookahead is useless regardless of confidence.
  EXPECT_DOUBLE_EQ(standby_score({0, 0.0, 1.0}, needed), 0.0);
  EXPECT_DOUBLE_EQ(standby_score({0, -0.01, 1.0}, needed), 0.0);
  EXPECT_THROW(standby_score({0, 0.01, 0.8}, 0.0), PreconditionError);
}

// --------------------------------------------------------------- LANC

TEST(Lanc, TickObserveLoopCancelsSimplePlant) {
  Rng rng(13);
  LancOptions opts;
  opts.fxlms.causal_taps = 32;
  opts.fxlms.noncausal_taps = 8;
  opts.fxlms.mu = 0.5;
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;
  LancController lanc(hse, opts);
  const int t_len = 40000;
  std::vector<float> n_sig(t_len), y(t_len, 0.0f);
  for (auto& v : n_sig) v = static_cast<float>(rng.gaussian(0.1));
  double err = 0.0;
  int count = 0;
  for (int t = 0; t < t_len; ++t) {
    const float x_adv = (t + 8 < t_len) ? n_sig[t + 8] : 0.0f;
    y[t] = lanc.tick(x_adv);
    const float d = n_sig[t];
    const float a = (t >= 1) ? y[t - 1] : 0.0f;
    const float e = d + a;
    lanc.observe_error(e);
    if (t > t_len / 2) {
      err += static_cast<double>(e) * static_cast<double>(e);
      ++count;
    }
  }
  EXPECT_LT(10.0 * std::log10(err / count / 0.01), -30.0);
}

TEST(Lanc, ProfilingDetectsAlternatingSources) {
  LancOptions opts;
  opts.fxlms.causal_taps = 16;
  opts.fxlms.noncausal_taps = 4;
  opts.profiling = true;
  opts.profile_frame = 256;
  opts.profile_hop = 128;
  LancController lanc({1.0}, opts);

  audio::ToneSource low(300.0, 0.4, kFs);
  audio::ToneSource high(3000.0, 0.4, kFs);
  // Alternate 0.5 s of each source; feed as the advanced reference.
  const auto seg = static_cast<std::size_t>(kFs / 2);
  for (int rounds = 0; rounds < 6; ++rounds) {
    auto& src = (rounds % 2 == 0) ? low : high;
    const auto block = src.generate(seg);
    for (Sample v : block) {
      lanc.tick(v);
      lanc.observe_error(0.0f);
    }
  }
  EXPECT_GE(lanc.profile_count(), 2u);
  EXPECT_GE(lanc.profile_switch_count(), 2u);
}

TEST(Lanc, ResetRestoresInitialState) {
  LancOptions opts;
  opts.fxlms.causal_taps = 8;
  LancController lanc({1.0}, opts);
  lanc.tick(1.0f);
  lanc.observe_error(0.5f);
  lanc.reset();
  EXPECT_EQ(lanc.profile_switch_count(), 0u);
  for (double w : lanc.engine().weights()) EXPECT_EQ(w, 0.0);
}

TEST(Lanc, LookaheadSamplesReportsN) {
  LancOptions opts;
  opts.fxlms.causal_taps = 8;
  opts.fxlms.noncausal_taps = 13;
  LancController lanc({1.0}, opts);
  EXPECT_EQ(lanc.lookahead_samples(), 13u);
}

}  // namespace
}  // namespace mute::core

// -- appended coverage: profile-cache benefit (the Figure 17 mechanism) ---
namespace mute::core {
namespace {

TEST(Lanc, CachedFiltersBeatReconvergenceOnAlternatingSources) {
  // Two exclusive alternating "sources" with different channels and
  // spectra; after the caches mature, the post-transition error with
  // profiling ON must be clearly below the OFF baseline in the segment
  // interiors (the cached filter starts converged).
  const double fs = 16000.0;
  const int period = static_cast<int>(2.0 * fs);
  const int half = period / 2;
  const int t_len = static_cast<int>(20.0 * fs);

  std::vector<double> hd_a(64, 0.0);
  hd_a[16] = 0.9;
  hd_a[30] = 0.3;
  std::vector<double> hd_b(64, 0.0);
  hd_b[16] = -0.7;
  hd_b[40] = 0.4;
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;

  auto run_variant = [&](bool profiling) {
    LancOptions opts;
    opts.fxlms.causal_taps = 64;
    opts.fxlms.noncausal_taps = 16;
    opts.fxlms.mu = 0.1;
    opts.profiling = profiling;
    LancController lanc(hse, opts);
    mute::dsp::FirFilter plant(hse), fda(hd_a), fdb(hd_b);
    mute::dsp::Biquad bp = mute::dsp::Biquad::bandpass(700.0, 0.7, fs);
    Rng ra(7), rb(8);
    // Pre-generate gated sources (x needs 16 samples of lookahead).
    std::vector<float> sa(t_len + 32), sb(t_len + 32);
    for (int t = 0; t < t_len + 32; ++t) {
      const bool a_on = (t % period) < half;
      sa[t] = a_on ? bp.process(static_cast<float>(ra.gaussian(0.3))) : 0.0f;
      sb[t] = a_on ? 0.0f : static_cast<float>(rb.gaussian(0.25));
    }
    double tail_err = 0.0;
    int tail_count = 0;
    for (int t = 0; t < t_len; ++t) {
      const float x_adv = sa[t + 16] + sb[t + 16];
      const float y = lanc.tick(x_adv);
      const float e = fda.process(sa[t]) + fdb.process(sb[t]) +
                      plant.process(y);
      lanc.observe_error(e);
      // Segment interiors of the last 8 s (skip first 0.5 s per segment).
      const int in_seg = t % half;
      if (t > t_len - static_cast<int>(8.0 * fs) &&
          in_seg > static_cast<int>(0.5 * fs)) {
        tail_err += static_cast<double>(e) * static_cast<double>(e);
        ++tail_count;
      }
    }
    return 10.0 * std::log10(tail_err / tail_count);
  };

  const double off_db = run_variant(false);
  const double on_db = run_variant(true);
  EXPECT_LT(on_db, off_db - 2.0)
      << "profiling ON " << on_db << " dB vs OFF " << off_db << " dB";
}

TEST(Lanc, RetargetStoresOutgoingAndPreloadsCachedWeights) {
  // Handoff caching round trip: leaving a healthy relay stores its
  // converged weights under (relay, profile); arriving at a relay whose
  // key is cached preloads those weights over the remapped ones.
  LancOptions opts;
  opts.fxlms.causal_taps = 4;
  opts.fxlms.noncausal_taps = 4;
  opts.profiling = false;  // pin profile id 0 so keys differ by relay only
  LancController lanc({1.0}, opts);

  const std::vector<double> w0 = {1, 2, 3, 4, 5, 6, 7, 8};
  lanc.engine().set_weights(w0);
  lanc.retarget(1, 4, 0, /*outgoing_flagged=*/false);  // stores w0 @ (0,0)
  EXPECT_EQ(lanc.relay(), 1u);
  EXPECT_EQ(lanc.engine().weights(), w0);  // identity remap, no (1,0) entry

  const std::vector<double> w1 = {8, 7, 6, 5, 4, 3, 2, 1};
  lanc.engine().set_weights(w1);
  lanc.retarget(0, 4, 0, /*outgoing_flagged=*/false);  // stores w1 @ (1,0)
  EXPECT_EQ(lanc.relay(), 0u);
  EXPECT_EQ(lanc.engine().weights(), w0)
      << "cached (0,0) weights must beat the remapped carry-over";

  lanc.retarget(1, 4, 0, /*outgoing_flagged=*/false);
  EXPECT_EQ(lanc.engine().weights(), w1);
}

TEST(Lanc, RetargetNeverCachesAFlaggedLink) {
  // Fault-aware caching: weights adapted on a flagged (faulted) link are
  // garbage and must not overwrite the relay's last healthy cache entry.
  LancOptions opts;
  opts.fxlms.causal_taps = 4;
  opts.fxlms.noncausal_taps = 4;
  opts.profiling = false;
  LancController lanc({1.0}, opts);

  const std::vector<double> w0 = {1, 2, 3, 4, 5, 6, 7, 8};
  lanc.engine().set_weights(w0);
  lanc.retarget(1, 4, 0, /*outgoing_flagged=*/false);  // stores w0 @ (0,0)

  const std::vector<double> garbage(8, 100.0);
  lanc.engine().set_weights(garbage);
  lanc.retarget(0, 4, 0, /*outgoing_flagged=*/true);  // must NOT store (1,0)
  EXPECT_EQ(lanc.engine().weights(), w0) << "healthy (0,0) entry preloads";

  // Coming back to relay 1: no cache entry may exist, so the weights ride
  // along unchanged — the garbage never resurfaces from the cache.
  lanc.retarget(1, 4, 0, /*outgoing_flagged=*/false);
  EXPECT_EQ(lanc.engine().weights(), w0);
}

}  // namespace
}  // namespace mute::core

// -- appended coverage: geometry -> lookahead property sweep --------------
namespace mute::core {
namespace {

class GeometryLookaheadTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometryLookaheadTest, CloserRelayMeansMoreLookahead) {
  // Move the relay along the source->ear line: the closer it sits to the
  // source, the larger the Equation-4 lookahead and the non-causal tap
  // budget. Monotone by construction of the geometry, verified through
  // the full channel-builder path.
  const double frac = GetParam();  // 0 = at source, 1 = at ear
  mute::acoustics::Scene scene = mute::acoustics::Scene::paper_office();
  const auto src = scene.noise_source;
  const auto ear = scene.error_mic;
  scene.relay_mic = {src.x + frac * (ear.x - src.x),
                     src.y + frac * (ear.y - src.y),
                     src.z + frac * (ear.z - src.z) + 0.05};
  const auto cs = mute::acoustics::build_channels(scene);
  static double prev_lookahead = 1e9;
  if (frac == 0.1) prev_lookahead = 1e9;
  EXPECT_LT(cs.lookahead_s, prev_lookahead);
  prev_lookahead = cs.lookahead_s;
  if (frac < 0.9) {
    EXPECT_GT(cs.lookahead_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RelayPositions, GeometryLookaheadTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace mute::core
