// End-to-end tests of the streaming MuteDevice: lifecycle state machine,
// calibration quality, relay selection and live cancellation, driven
// against a physically synthesized world (channels from the image-source
// room model).
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "core/mute_device.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/signal_ops.hpp"

namespace mute::core {
namespace {

constexpr double kFs = 16000.0;

/// A miniature physical world for the device: one ambient source, K relay
/// microphones, one error mic, one speaker, all synthetic FIR channels.
struct World {
  explicit World(std::size_t relay_count)
      : noise(0.2, 7), h_se({0.0, 0.9, 0.2}) {
    // Relay k hears the source advance_k samples before the ear does.
    const std::size_t advances[] = {40, 12, 0};
    for (std::size_t k = 0; k < relay_count; ++k) {
      relay_advance.push_back(advances[k % 3]);
    }
  }

  /// Advance the world one tick given the speaker output; returns the
  /// error-mic sample for THIS tick and fills the relay feed.
  /// The ambient source stays quiet for the first 0.6 s — the device is
  /// powered up (and calibrates) before the disturbance starts, like the
  /// sim's quiet-room calibration.
  Sample step(Sample speaker_out, std::span<Sample> relay_feed) {
    Signal one(1);
    noise.render(one);
    if (history.size() < 9600) one[0] = 0.0f;
    history.push_back(one[0]);
    const std::size_t t = history.size() - 1;
    // Ear hears the source with a 60-sample bulk delay.
    const Sample ambient = (t >= 60) ? history[t - 60] : 0.0f;
    const Sample anti = h_se.process(speaker_out);
    for (std::size_t k = 0; k < relay_feed.size(); ++k) {
      const std::size_t lag = 60 - relay_advance[k];
      relay_feed[k] = (t >= lag) ? history[t - lag] : 0.0f;
    }
    return static_cast<Sample>(static_cast<double>(ambient) +
                               static_cast<double>(anti));
  }

  audio::WhiteNoiseSource noise;
  mute::dsp::FirFilter h_se;
  std::vector<std::size_t> relay_advance;
  Signal history;
};

MuteDeviceConfig quick_config(std::size_t relays) {
  MuteDeviceConfig cfg;
  cfg.relay_count = relays;
  cfg.calibration_s = 0.5;
  cfg.secondary_taps = 32;
  cfg.selection_period_s = 0.5;
  cfg.lanc.fxlms.causal_taps = 64;
  cfg.lanc.fxlms.mu = 0.4;
  return cfg;
}

TEST(MuteDevice, LifecycleReachesRunning) {
  World world(1);
  MuteDevice device(quick_config(1));
  EXPECT_EQ(device.state(), MuteDevice::State::kCalibrating);

  Sample speaker = 0.0f;
  Sample error = 0.0f;
  Signal relay_feed(1);
  bool saw_listening = false;
  for (int t = 0; t < 30000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    if (device.state() == MuteDevice::State::kListening) saw_listening = true;
  }
  EXPECT_TRUE(saw_listening);
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_TRUE(device.active_relay().has_value());
  EXPECT_EQ(*device.active_relay(), 0u);
  EXPECT_GT(device.noncausal_taps(), 20u);  // ~40-sample advance minus budget
  EXPECT_LT(device.calibration().final_error_db, -25.0);
}

TEST(MuteDevice, CancelsOnceRunning) {
  World world(1);
  MuteDevice device(quick_config(1));
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(1);
  double early = 0.0, late = 0.0;
  int early_n = 0, late_n = 0;
  for (int t = 0; t < 80000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    if (t > 15000 && t < 25000 &&
        device.state() == MuteDevice::State::kRunning) {
      early += static_cast<double>(error) * static_cast<double>(error);
      ++early_n;
    }
    if (t > 70000) {
      late += static_cast<double>(error) * static_cast<double>(error);
      ++late_n;
    }
  }
  ASSERT_GT(late_n, 0);
  const double late_db = 10.0 * std::log10(late / late_n / 0.04);
  EXPECT_LT(late_db, -20.0);  // deep cancellation relative to ambient 0.2 rms
}

TEST(MuteDevice, PicksTheRelayWithMostLookahead) {
  World world(3);  // advances 40, 12, 0
  MuteDevice device(quick_config(3));
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(3);
  for (int t = 0; t < 40000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
  }
  ASSERT_TRUE(device.active_relay().has_value());
  EXPECT_EQ(*device.active_relay(), 0u);
  EXPECT_NEAR(device.measured_lookahead_s(), 40.0 / kFs, 3.0 / kFs);
}

TEST(MuteDevice, StaysListeningWhenNoRelayLeads) {
  // Single relay with ZERO advance: GCC-PHAT lag ~0 < min_lookahead.
  World world(1);
  world.relay_advance[0] = 0;
  MuteDevice device(quick_config(1));
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(1);
  for (int t = 0; t < 40000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
  }
  EXPECT_EQ(device.state(), MuteDevice::State::kListening);
  EXPECT_FALSE(device.active_relay().has_value());
}

TEST(MuteDevice, ShortRelayLossHoldsThenResumes) {
  World world(1);
  auto cfg = quick_config(1);
  cfg.hold_timeout_s = 1.0;
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(1);
  const int kDrop = 30000;                        // well into kRunning
  const int kRestore = kDrop + 5600;              // 0.35 s outage
  bool saw_holding = false;
  for (int t = 0; t < 60000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    // The relay's battery dies: its feed goes silent (not noisy — the
    // device-side monitor sees whatever the receiver hands it).
    if (t >= kDrop && t < kRestore) relay_feed[0] = 0.0f;
    if (device.state() == MuteDevice::State::kHolding) saw_holding = true;
    if (t == kDrop) {
      ASSERT_EQ(device.state(), MuteDevice::State::kRunning);
    }
  }
  EXPECT_TRUE(saw_holding);
  EXPECT_EQ(device.hold_count(), 1u);
  // Outage (0.35 s) was shorter than hold_timeout_s: the association
  // survived and the device resumed cancelling on the same relay.
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_TRUE(device.active_relay().has_value());
  EXPECT_EQ(*device.active_relay(), 0u);
  ASSERT_NE(device.link_monitor(0), nullptr);
  EXPECT_GE(device.link_monitor(0)->fault_episodes(), 1u);
}

TEST(MuteDevice, LongRelayLossFallsBackToListeningThenReacquires) {
  World world(1);
  auto cfg = quick_config(1);
  cfg.hold_timeout_s = 0.5;
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(1);
  const int kDrop = 30000;
  const int kRestore = kDrop + 19200;  // 1.2 s outage >> hold timeout
  bool saw_listening_again = false;
  for (int t = 0; t < 90000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    if (t >= kDrop && t < kRestore) relay_feed[0] = 0.0f;
    if (t > kDrop && device.state() == MuteDevice::State::kListening) {
      saw_listening_again = true;
      EXPECT_FALSE(device.active_relay().has_value());
    }
  }
  // The hold timed out: association dropped, device went back to
  // kListening, then re-acquired the relay once its feed returned.
  EXPECT_TRUE(saw_listening_again);
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_TRUE(device.active_relay().has_value());
  EXPECT_EQ(*device.active_relay(), 0u);
}

TEST(MuteDevice, SupervisionOffDisablesMonitors) {
  auto cfg = quick_config(1);
  cfg.link_supervision = false;
  MuteDevice device(cfg);
  EXPECT_EQ(device.link_monitor(0), nullptr);
  EXPECT_EQ(device.hold_count(), 0u);
}

TEST(MuteDevice, GarbageReferenceNeverReachesTheEngine) {
  // A noise-burst reference (demod garbage) while running: the sanitized
  // feed squelches it, the device holds, and every output stays finite.
  World world(1);
  auto cfg = quick_config(1);
  cfg.hold_timeout_s = 1.0;
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(1);
  Rng garbage(99);
  const int kDrop = 30000;
  const int kRestore = kDrop + 4800;  // 0.3 s of demod noise
  for (int t = 0; t < 50000; ++t) {
    speaker = device.tick(relay_feed, error);
    ASSERT_TRUE(std::isfinite(static_cast<double>(speaker)));
    error = world.step(speaker, relay_feed);
    if (t >= kDrop && t < kRestore) {
      // Demod noise dwarfs this world's 0.2-rms ambient — the surge the
      // dropout detector keys on is relative to the healthy baseline.
      relay_feed[0] = static_cast<Sample>(0.7 * garbage.gaussian());
    }
  }
  EXPECT_GE(device.hold_count(), 1u);
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
}

TEST(MuteDevice, RejectsWrongRelayCount) {
  MuteDevice device(quick_config(2));
  Signal wrong(1, 0.0f);
  EXPECT_THROW(device.tick(wrong, 0.0f), PreconditionError);
}

TEST(MuteDevice, HandsOffToWarmStandbyOnRelayDeath) {
  // Two relays with positive lookahead (advances 40 and 12). Kill the
  // active relay's feed for good: the device must hold, then hand the
  // association to the standby through kHandoff — never touching
  // kListening — and keep cancelling on relay 1.
  World world(2);
  auto cfg = quick_config(2);
  cfg.hold_timeout_s = 0.3;
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(2);
  const int kDrop = 30000;
  bool saw_handoff = false, listened_after_drop = false;
  for (int t = 0; t < 60000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    if (t >= kDrop) relay_feed[0] = 0.0f;  // relay 0's battery dies
    if (t == kDrop) {
      ASSERT_EQ(device.state(), MuteDevice::State::kRunning);
      ASSERT_EQ(*device.active_relay(), 0u);
    }
    if (t > kDrop) {
      if (device.state() == MuteDevice::State::kHandoff) saw_handoff = true;
      if (device.state() == MuteDevice::State::kListening) {
        listened_after_drop = true;
      }
    }
  }
  EXPECT_TRUE(saw_handoff);
  EXPECT_FALSE(listened_after_drop)
      << "warm standby existed; re-listening defeats the handoff path";
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_TRUE(device.active_relay().has_value());
  EXPECT_EQ(*device.active_relay(), 1u);
  EXPECT_GE(device.handoff_count(), 1u);
  EXPECT_GE(device.hold_count(), 1u);
  // Gap = detection + hold timeout + settle; a kListening round trip
  // would add at least a full selection period on top.
  EXPECT_GT(device.last_reacquisition_gap_s(), 0.0);
  EXPECT_LT(device.last_reacquisition_gap_s(), 0.48);
  EXPECT_GT(device.relay_active_s(0), 1.0);
  EXPECT_GT(device.relay_active_s(1), 0.5);
}

/// World variant whose relay advances may be NEGATIVE (relay hears the
/// source after the ear — confidently useless lookahead). Used to script
/// specific selection-round outcomes for the adverse-evidence tests.
struct AdvWorld {
  explicit AdvWorld(std::vector<int> advances)
      : noise(0.2, 7), h_se({0.0, 0.9, 0.2}), relay_advance(advances) {}

  Sample step(Sample speaker_out, std::span<Sample> relay_feed) {
    Signal one(1);
    noise.render(one);
    if (history.size() < 9600) one[0] = 0.0f;
    history.push_back(one[0]);
    const auto t = static_cast<std::ptrdiff_t>(history.size()) - 1;
    const Sample ambient =
        (t >= 60) ? history[static_cast<std::size_t>(t - 60)] : 0.0f;
    const Sample anti = h_se.process(speaker_out);
    for (std::size_t k = 0; k < relay_feed.size(); ++k) {
      const std::ptrdiff_t lag = 60 - relay_advance[k];
      relay_feed[k] =
          (t >= lag) ? history[static_cast<std::size_t>(t - lag)] : 0.0f;
    }
    return static_cast<Sample>(static_cast<double>(ambient) +
                               static_cast<double>(anti));
  }

  audio::WhiteNoiseSource noise;
  mute::dsp::FirFilter h_se;
  std::vector<int> relay_advance;
  Signal history;
};

TEST(MuteDevice, AdverseEvidenceCausesDoNotPool) {
  // Regression for the pooled adverse counter: one confident "nobody
  // qualified" round followed by one confident "relay 1 won" round are
  // two DIFFERENT one-round claims and must NOT re-associate; two
  // consecutive "relay 1 won" rounds must. The step size is ~zero so
  // cancellation never bites and every selection round stays confident.
  AdvWorld world({40, 12});
  auto cfg = quick_config(2);
  cfg.enable_handoff = false;  // cold path keeps the scenario minimal
  cfg.lanc.fxlms.mu = 1e-9;
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(2);

  // Calibration ends at tick ~8000; selector pushes start the tick after,
  // so selection rounds complete every 8000 ticks from t_listen on.
  int t_listen = -1;
  int t = 0;
  for (; t < 20000 && t_listen < 0; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    if (device.state() != MuteDevice::State::kCalibrating) t_listen = t;
  }
  ASSERT_GT(t_listen, 0);
  const auto run_round = [&](int rounds_end) {
    const int until = t_listen + rounds_end * 8000 + 100;
    for (; t < until; ++t) {
      speaker = device.tick(relay_feed, error);
      error = world.step(speaker, relay_feed);
    }
  };

  // Rounds 1-2: both relays lead; relay 0 wins and is associated.
  run_round(2);
  ASSERT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_EQ(*device.active_relay(), 0u);

  // Round 3: both relays now LAG the ear -> confident "nobody qualified".
  world.relay_advance = {-20, -5};
  run_round(3);
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  EXPECT_EQ(*device.active_relay(), 0u);

  // Round 4: relay 1 leads again and wins the round. Under the pooled
  // counter this was adverse round #2 -> eviction; cause-separated
  // evidence restarts the count instead.
  world.relay_advance = {-20, 12};
  run_round(4);
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  EXPECT_EQ(*device.active_relay(), 0u)
      << "a no-chosen round plus a rival round must not pool to eviction";

  // Round 5: relay 1 wins AGAIN - two consecutive same-claim rounds now;
  // the association moves.
  run_round(5);
  ASSERT_TRUE(device.active_relay().has_value());
  EXPECT_EQ(*device.active_relay(), 1u)
      << "two consecutive rival wins are legitimate eviction evidence";
}

TEST(MuteDevice, TickStaysAllocationLeanInEveryState) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  // Drive one device through its whole lifecycle — calibration,
  // listening, running, a relay death, hold, handoff, running on the
  // standby — and count heap allocations per tick, attributed to the
  // state the tick STARTED in. Signal-path ticks must be allocation-free;
  // the budgeted exceptions are control-plane ticks (calibration fit,
  // selection rounds, the handoff itself) plus the selector's amortized
  // buffer growth, all of which fit in a small per-state fraction.
  World world(2);
  auto cfg = quick_config(2);
  cfg.hold_timeout_s = 0.3;
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(2);
  const int kDrop = 30000;
  std::map<MuteDevice::State, std::pair<std::size_t, std::size_t>> by_state;
  for (int t = 0; t < 60000; ++t) {
    const auto state = device.state();
    std::size_t allocs = 0;
    {
      RtAllocationGuard guard(RtAllocationGuard::Mode::kCount,
                              "device-tick");
      speaker = device.tick(relay_feed, error);
      allocs = guard.allocations_since_entry();
    }
    auto& [ticks, clean] = by_state[state];
    ++ticks;
    if (allocs == 0) ++clean;
    error = world.step(speaker, relay_feed);
    if (t >= kDrop) relay_feed[0] = 0.0f;
  }
  // All five states must have been visited...
  ASSERT_EQ(by_state.size(), 5u);
  // ...and in every one of them, at least 95% of ticks are clean.
  for (const auto& [state, counts] : by_state) {
    const auto& [ticks, clean] = counts;
    EXPECT_GE(static_cast<double>(clean), 0.95 * static_cast<double>(ticks))
        << "state " << static_cast<int>(state) << ": " << (ticks - clean)
        << " of " << ticks << " ticks allocated";
  }
}

TEST(MuteDevice, StandbyListIsRefreshedByQualifiedRoundsAndAgesOutWithoutThem) {
  // Pin the standby_max_age_s contract (satellite S1): a qualified
  // selection round RESETS the list's age — so with confident rounds
  // every period the list outlives max_age indefinitely — while rounds
  // that rank nobody leave the age running until the list expires.
  AdvWorld world({40, 12});
  auto cfg = quick_config(2);
  cfg.lanc.fxlms.mu = 1e-9;        // no cancellation: rounds stay confident
  cfg.standby_max_age_s = 0.9;     // < two selection periods (0.5 s each)
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(2);
  for (int t = 0; t < 30000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
  }
  ASSERT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_EQ(device.standby().size(), 2u);
  // Keep running well past max_age: every round re-qualifies both relays,
  // so each refresh must reset the age and the list must survive.
  for (int t = 0; t < 32000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
  }
  EXPECT_EQ(device.standby().size(), 2u)
      << "a qualified round must reset the standby age";

  // Now starve the selector of correlation: each relay forwards healthy-
  // power noise that is UNRELATED to the ambient, so every round loses
  // confidence and ranks nobody (no refresh, and no adverse evidence
  // either — unconfident rounds are what cancellation success looks
  // like). The stale list must age out within standby_max_age_s.
  // (Long enough that the boundary-straddling selection round — whose
  // buffer is still mostly correlated and may refresh once more — is
  // followed by a fully decorrelated round plus the full expiry age.)
  Rng decorrelated(123);
  for (int t = 0; t < 26000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    for (std::size_t k = 0; k < 2; ++k) {
      relay_feed[k] = static_cast<Sample>(0.1 * decorrelated.gaussian());
    }
  }
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  EXPECT_TRUE(device.standby().empty())
      << "measurements older than standby_max_age_s are guesses, not a "
         "ranking";
}

TEST(MuteDevice, FlaggedRelayIsNeverRanked) {
  // Satellite S1, flagged-relay-never-ranked rule: a relay whose link
  // monitor currently flags it forwards squelched zeros to the selector,
  // so it cannot earn a standby slot — the next qualified round drops it
  // from the ranking while the healthy relays keep theirs.
  AdvWorld world({40, 12});
  auto cfg = quick_config(2);
  cfg.lanc.fxlms.mu = 1e-9;  // keep every selection round confident
  MuteDevice device(cfg);
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(2);
  for (int t = 0; t < 30000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
  }
  ASSERT_EQ(device.state(), MuteDevice::State::kRunning);
  ASSERT_EQ(*device.active_relay(), 0u);
  bool relay1_ranked = false;
  for (const auto& m : device.standby()) {
    if (m.relay_index == 1) relay1_ranked = true;
  }
  ASSERT_TRUE(relay1_ranked) << "healthy relay 1 should hold a standby slot";

  // Relay 1's receiver starts emitting demod garbage: the monitor flags
  // it (noise burst), its sanitized feed goes to zeros, and within two
  // selection rounds the refreshed ranking no longer contains it.
  Rng garbage(77);
  for (int t = 0; t < 20000; ++t) {
    speaker = device.tick(relay_feed, error);
    error = world.step(speaker, relay_feed);
    relay_feed[1] = static_cast<Sample>(0.7 * garbage.gaussian());
  }
  ASSERT_NE(device.link_monitor(1), nullptr);
  EXPECT_FALSE(device.link_monitor(1)->healthy());
  ASSERT_FALSE(device.standby().empty())
      << "relay 0 is healthy and confident; the list must refresh, not die";
  for (const auto& m : device.standby()) {
    EXPECT_NE(m.relay_index, 1u) << "flagged relay must never be ranked";
  }
  // The healthy active association is untouched throughout.
  EXPECT_EQ(device.state(), MuteDevice::State::kRunning);
  EXPECT_EQ(*device.active_relay(), 0u);
}

TEST(MuteDevice, TrainingToneOnlyDuringCalibration) {
  World world(1);
  MuteDevice device(quick_config(1));
  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(1);
  double cal_energy = 0.0;
  for (int t = 0; t < 7000; ++t) {  // < calibration_s * fs = 8000
    speaker = device.tick(relay_feed, error);
    cal_energy += std::abs(static_cast<double>(speaker));
    error = world.step(speaker, relay_feed);
  }
  EXPECT_EQ(device.state(), MuteDevice::State::kCalibrating);
  EXPECT_GT(cal_energy, 100.0);  // the training noise is audible
}

}  // namespace
}  // namespace mute::core
