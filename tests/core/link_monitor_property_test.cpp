// Property-style randomized-schedule test for LinkMonitor hysteresis
// (satellite S3): across seeded random fault schedules, every fault burst
// produces exactly one fault episode (no flap storms, no missed
// detections), detection lands within the documented hold latencies, and
// recovery honors recover_hold_s — the monitor never declares the link
// healthy again until the evidence has been clean for the full hold.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/link_monitor.hpp"

namespace mute::core {
namespace {

constexpr double kFs = 16000.0;

struct Burst {
  double start_s = 0.0;
  double end_s = 0.0;
  bool silent = false;  // silence fault vs. loud demod garbage
};

struct Transition {
  double t_s = 0.0;
  bool to_unhealthy = false;
};

/// One seeded run: healthy 0.1-rms white noise interleaved with randomized
/// fault bursts (loud demod garbage or dead silence). Returns the schedule
/// and the monitor's observed state transitions.
void run_schedule(std::uint64_t seed, std::size_t burst_count,
                  LinkMonitor& monitor, std::vector<Burst>& bursts,
                  std::vector<Transition>& transitions) {
  Rng schedule_rng(seed);
  bursts.clear();
  double t = 1.0;  // healthy warmup so the baseline tracker settles
  for (std::size_t i = 0; i < burst_count; ++i) {
    Burst b;
    b.start_s = t;
    b.silent = schedule_rng.bernoulli(0.5);
    // Loud garbage flags within ~10 ms; silence must first decay the
    // 20 ms silence EMA below threshold (~0.13 s) and then sustain the
    // 150 ms silence hold, so silent bursts need ~0.29 s to be detectable
    // at all — shorter ones are sub-detection by design, not test fodder.
    b.end_s = t + (b.silent ? schedule_rng.uniform(0.33, 0.5)
                            : schedule_rng.uniform(0.25, 0.45));
    bursts.push_back(b);
    // Healthy gap long enough to out-last recover_hold_s (0.15) with room.
    t = b.end_s + schedule_rng.uniform(0.45, 0.8);
  }
  const double duration_s = t + 0.2;

  Rng signal_rng(seed * 77 + 3);
  transitions.clear();
  bool prev_healthy = true;
  const auto n = static_cast<std::size_t>(duration_s * kFs);
  for (std::size_t i = 0; i < n; ++i) {
    const double now = static_cast<double>(i) / kFs;
    const Burst* active = nullptr;
    for (const Burst& b : bursts) {
      if (now >= b.start_s && now < b.end_s) {
        active = &b;
        break;
      }
    }
    double x = 0.1 * signal_rng.gaussian();
    if (active != nullptr) {
      x = active->silent ? 0.0 : 0.7 * signal_rng.gaussian();
    }
    (void)monitor.process(static_cast<Sample>(x));
    if (monitor.healthy() != prev_healthy) {
      transitions.push_back({now, !monitor.healthy()});
      prev_healthy = monitor.healthy();
    }
  }
}

TEST(LinkMonitorProperty, EveryBurstIsExactlyOneEpisode) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    LinkMonitor monitor(LinkMonitorOptions{}, kFs);
    std::vector<Burst> bursts;
    std::vector<Transition> transitions;
    run_schedule(seed, 5, monitor, bursts, transitions);

    // No missed detections, and no flap storms: one down transition and
    // one up transition per burst, nothing else.
    EXPECT_EQ(monitor.fault_episodes(), bursts.size()) << "seed " << seed;
    std::size_t down = 0, up = 0;
    for (const Transition& tr : transitions) {
      tr.to_unhealthy ? ++down : ++up;
    }
    EXPECT_EQ(down, bursts.size()) << "seed " << seed;
    EXPECT_EQ(up, bursts.size()) << "seed " << seed << ": monitor ended "
                                 << "a run stuck unhealthy or flapped";
    EXPECT_TRUE(monitor.healthy()) << "seed " << seed;
  }
}

TEST(LinkMonitorProperty, DetectionAndRecoveryHoldsAreHonored) {
  const LinkMonitorOptions opts;
  for (std::uint64_t seed = 11; seed <= 20; ++seed) {
    LinkMonitor monitor(opts, kFs);
    std::vector<Burst> bursts;
    std::vector<Transition> transitions;
    run_schedule(seed, 4, monitor, bursts, transitions);
    ASSERT_EQ(monitor.fault_episodes(), bursts.size()) << "seed " << seed;
    ASSERT_EQ(transitions.size(), 2 * bursts.size()) << "seed " << seed;

    for (std::size_t i = 0; i < bursts.size(); ++i) {
      const Burst& b = bursts[i];
      const Transition& flag = transitions[2 * i];
      const Transition& recover = transitions[2 * i + 1];
      ASSERT_TRUE(flag.to_unhealthy);
      ASSERT_FALSE(recover.to_unhealthy);

      // Detection lands inside the burst, within the documented holds:
      // unhealthy_hold 8 ms for loud garbage; for dead air the 20 ms
      // silence EMA's ~0.13 s decay below threshold plus the 150 ms
      // silence hold (~0.28 s), plus margin.
      EXPECT_GE(flag.t_s, b.start_s) << "seed " << seed << " burst " << i;
      EXPECT_LE(flag.t_s, b.start_s + (b.silent ? 0.33 : 0.05))
          << "seed " << seed << " burst " << i << " detected too slowly";

      // Recovery must out-wait recover_hold_s of clean evidence AFTER the
      // burst ends — an instantaneous flip here is the capture-transition
      // bug the hold exists to prevent.
      EXPECT_GE(recover.t_s, b.end_s + 0.9 * opts.recover_hold_s)
          << "seed " << seed << " burst " << i << " recovered early";
      EXPECT_LE(recover.t_s, b.end_s + 0.35)
          << "seed " << seed << " burst " << i << " recovery stuck";
    }
  }
}

TEST(LinkMonitorProperty, ScheduleIsDeterministicPerSeed) {
  LinkMonitor m1(LinkMonitorOptions{}, kFs);
  LinkMonitor m2(LinkMonitorOptions{}, kFs);
  std::vector<Burst> b1, b2;
  std::vector<Transition> t1, t2;
  run_schedule(42, 5, m1, b1, t1);
  run_schedule(42, 5, m2, b2, t2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1[i].t_s, t2[i].t_s);
    EXPECT_EQ(t1[i].to_unhealthy, t2[i].to_unhealthy);
  }
  EXPECT_EQ(m1.fault_episodes(), m2.fault_episodes());
}

}  // namespace
}  // namespace mute::core
