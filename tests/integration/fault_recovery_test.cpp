// Acceptance tests for the fault-injection + graceful-degradation stack:
// a scripted 500 ms relay dropout mid-run must never leave the ear louder
// than passive (within 1 dB), and cancellation must recover within 2 s of
// link restoration. Full-system runs through room acoustics, the FM
// chain, link supervision and LANC.
#include <cmath>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "core/link_monitor.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute::sim {
namespace {

constexpr double kFaultStart = 4.5;
constexpr double kFaultLen = 0.5;
constexpr double kDuration = 9.0;

/// Residual power re disturbance power over [t0, t1), in dB.
double window_db(const SystemResult& r, double t0, double t1) {
  const auto i0 = static_cast<std::size_t>(t0 * r.sample_rate);
  const auto i1 = static_cast<std::size_t>(t1 * r.sample_rate);
  double num = 0.0, den = 0.0;
  for (std::size_t i = i0; i < i1 && i < r.residual.size(); ++i) {
    num += static_cast<double>(r.residual[i]) *
           static_cast<double>(r.residual[i]);
    den += static_cast<double>(r.disturbance[i]) *
           static_cast<double>(r.disturbance[i]);
  }
  return power_to_db(num / std::max(den, 1e-20));
}

SystemResult run_with_fault(FaultScenario scenario, std::uint64_t seed) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, seed);
  cfg.duration_s = kDuration;
  apply_fault_scenario(cfg, scenario, kFaultStart, kFaultLen);
  audio::WhiteNoiseSource noise(0.1, seed + 1000);
  return run_anc_simulation(noise, cfg);
}

TEST(FaultRecovery, RelayDropoutDegradesGracefullyAndRecovers) {
  const auto r = run_with_fault(FaultScenario::kRelayDropout, 11);

  // Converged before the fault.
  const double pre_db = window_db(r, 3.0, 4.4);
  EXPECT_LT(pre_db, -6.0) << "system never converged; test is vacuous";

  // THE acceptance bound: during the outage the ear must never be
  // meaningfully louder than passive (no ANC at all). The anti-noise
  // fades out, so the residual approaches the disturbance from below.
  const double outage_db = window_db(r, kFaultStart, kFaultStart + kFaultLen);
  EXPECT_LT(outage_db, 1.0)
      << "residual during the dropout exceeded the passive ear by >1 dB";

  // Recovery: within 2 s of restoration some 0.5 s window is back within
  // 3 dB of the pre-fault cancellation.
  const double restored = kFaultStart + kFaultLen;
  double best_db = 1e9;
  for (double t = restored; t + 0.5 <= restored + 2.0; t += 0.1) {
    best_db = std::min(best_db, window_db(r, t, t + 0.5));
  }
  EXPECT_LE(best_db, pre_db + 3.0)
      << "cancellation did not re-converge within 2 s of link restoration";

  // Diagnostics tell the story: at least one episode covering most of the
  // 0.5 s outage, flagged as a noise burst, starting near t = 4.5.
  EXPECT_GE(r.link_fault_episodes, 1u);
  const double flagged_s =
      static_cast<double>(r.link_fault_samples) / r.sample_rate;
  EXPECT_GT(flagged_s, 0.3);
  EXPECT_LT(flagged_s, 1.5);
  EXPECT_TRUE(r.link_fault_flags & core::LinkFlags::kNoiseBurst);
  EXPECT_NEAR(r.first_fault_s, kFaultStart, 0.1);
  EXPECT_NEAR(r.last_recovery_s, kFaultStart + kFaultLen, 0.2);
}

TEST(FaultRecovery, JammerCaptureIsDetectedAndNotAmplified) {
  // A +6 dB co-channel jammer captures the FM discriminator: the received
  // reference collapses to near-silence. Supervision must flag it (as
  // silence and/or the entry/exit bursts) and keep the ear at or below
  // passive.
  const auto r = run_with_fault(FaultScenario::kJammerBurst, 12);
  EXPECT_GE(r.link_fault_episodes, 1u);
  EXPECT_LT(window_db(r, kFaultStart, kFaultStart + kFaultLen), 1.0);
  EXPECT_LT(window_db(r, kDuration - 1.5, kDuration),
            window_db(r, 3.0, 4.4) + 3.0);
}

TEST(FaultRecovery, SurvivableFaultsKeepCancelling) {
  // Impulse noise at the receiver is absorbed by FM demodulation +
  // decimation; the audio stays clean, so supervision should NOT trip and
  // cancellation should ride straight through the event window.
  const auto r = run_with_fault(FaultScenario::kImpulseNoise, 13);
  const double pre_db = window_db(r, 3.0, 4.4);
  const double during_db = window_db(r, kFaultStart, kFaultStart + kFaultLen);
  EXPECT_LT(pre_db, -6.0);
  EXPECT_LT(during_db, pre_db + 4.0)
      << "an inaudible RF impulse burst should not cost cancellation";
}

TEST(FaultRecovery, UnsupervisedDropoutIsTheMotivation) {
  // The contrast case: same dropout, supervision and guard disabled. The
  // demodulator garbage feeds FxLMS directly. This documents WHY the
  // subsystem exists — the unsupervised ear gets blasted during the
  // outage (louder than passive).
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 11);
  cfg.duration_s = 6.5;
  apply_fault_scenario(cfg, FaultScenario::kRelayDropout, kFaultStart,
                       kFaultLen);
  cfg.link_supervision = false;
  cfg.weight_norm_limit = 0.0;
  audio::WhiteNoiseSource noise(0.1, 1011);
  const auto r = run_anc_simulation(noise, cfg);
  EXPECT_GT(window_db(r, kFaultStart, kFaultStart + kFaultLen), 1.0)
      << "expected the unsupervised outage to be louder than passive";
  EXPECT_EQ(r.link_fault_episodes, 0u);  // nobody was watching
}

TEST(FaultRecovery, DiagnosticsSilentOnHealthyRun) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 11);
  cfg.duration_s = 4.0;
  cfg.link_supervision = true;  // armed, but the channel stays benign
  audio::WhiteNoiseSource noise(0.1, 7);
  const auto r = run_anc_simulation(noise, cfg);
  EXPECT_EQ(r.link_fault_episodes, 0u);
  EXPECT_EQ(r.link_fault_samples, 0u);
  EXPECT_EQ(r.link_fault_flags, 0u);
  EXPECT_DOUBLE_EQ(r.first_fault_s, -1.0);
  EXPECT_DOUBLE_EQ(r.last_recovery_s, -1.0);
}

}  // namespace
}  // namespace mute::sim
