// End-to-end tests of the paper's claims on reduced-size workloads: each
// test exercises the full pipeline (room -> relay -> FM link -> LANC ->
// speaker -> error mic) and asserts the *direction* of the result the
// paper reports; the bench binaries regenerate the full figures.
#include <cmath>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "audio/speech_synth.hpp"
#include "core/gcc_phat.hpp"
#include "core/relay_select.hpp"
#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute {
namespace {

constexpr double kFs = 16000.0;

double broadband_db(const sim::SystemResult& r, double skip_s) {
  return eval::cancellation_spectrum(r.disturbance, r.residual, r.sample_rate,
                                     skip_s)
      .average_db(50.0, 4000.0);
}

TEST(Integration, MuteBeatsBoseActiveBelowOneKilohertz) {
  const auto scene = acoustics::Scene::paper_office();
  auto noise = sim::make_noise(sim::NoiseKind::kWhite, kFs, 7);

  auto mute_cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
  mute_cfg.duration_s = 6.0;
  const auto mute_run = sim::run_anc_simulation(*noise, mute_cfg);

  auto bose_cfg = sim::make_scheme_config(sim::Scheme::kBoseActive, scene, 42);
  bose_cfg.duration_s = 6.0;
  const auto bose_run = sim::run_anc_simulation(*noise, bose_cfg);

  const auto mute_spec = eval::cancellation_spectrum(
      mute_run.disturbance, mute_run.residual, kFs, 3.0);
  const auto bose_spec = eval::cancellation_spectrum(
      bose_run.disturbance, bose_run.residual, kFs, 3.0);
  // Paper: MUTE outperforms Bose by ~6.7 dB within 1 kHz.
  EXPECT_LT(mute_spec.average_db(50, 1000),
            bose_spec.average_db(50, 1000) - 3.0);
  // Paper: Bose_Active is essentially ineffective above 1 kHz.
  EXPECT_GT(bose_spec.average_db(1500, 4000), -3.0);
  // MUTE keeps canceling up there.
  EXPECT_LT(mute_spec.average_db(1500, 4000), -8.0);
}

TEST(Integration, WirelessLookaheadIsWhatEnablesCancellation) {
  // Same MUTE pipeline, but the reference artificially delayed to the
  // timing lower bound: cancellation should mostly collapse (Figure 16).
  const auto scene = acoustics::Scene::paper_office();
  auto noise = sim::make_noise(sim::NoiseKind::kWhite, kFs, 7);

  auto cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
  cfg.duration_s = 6.0;
  cfg.use_rf_link = false;
  const auto with_lookahead = sim::run_anc_simulation(*noise, cfg);

  auto starved = cfg;
  starved.extra_reference_delay_s = with_lookahead.usable_lookahead_s;
  const auto without = sim::run_anc_simulation(*noise, starved);

  EXPECT_LT(broadband_db(with_lookahead, 3.0), broadband_db(without, 3.0) - 6.0);
  EXPECT_LE(without.noncausal_taps, 2u);
}

TEST(Integration, PassiveShellAddsOnTopOfLanc) {
  const auto scene = acoustics::Scene::paper_office();
  auto noise = sim::make_noise(sim::NoiseKind::kWhite, kFs, 7);

  auto hollow = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
  hollow.duration_s = 6.0;
  hollow.use_rf_link = false;
  auto passive = sim::make_scheme_config(sim::Scheme::kMutePassive, scene, 42);
  passive.duration_s = 6.0;
  passive.use_rf_link = false;

  const auto r_hollow = sim::run_anc_simulation(*noise, hollow);
  const auto r_passive = sim::run_anc_simulation(*noise, passive);
  EXPECT_LT(broadband_db(r_passive, 3.0), broadband_db(r_hollow, 3.0) - 5.0);
}

TEST(Integration, ProfilingImprovesIntermittentNoise) {
  // Figure 17 in miniature: intermittent speech over steady background;
  // predictive filter switching should lower the residual.
  const auto scene = acoustics::Scene::paper_office();
  auto make_workload = [&]() {
    std::vector<audio::SourcePtr> parts;
    parts.push_back(std::make_unique<audio::WhiteNoiseSource>(0.04, 5));
    auto speech = std::make_unique<audio::SpeechSource>(
        audio::SpeechParams::male(), kFs, 9);
    parts.push_back(std::move(speech));
    return std::make_unique<audio::MixSource>(std::move(parts));
  };

  auto cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
  cfg.duration_s = 10.0;
  cfg.use_rf_link = false;

  auto off_noise = make_workload();
  cfg.profiling = false;
  const auto off = sim::run_anc_simulation(*off_noise, cfg);

  auto on_noise = make_workload();
  cfg.profiling = true;
  const auto on = sim::run_anc_simulation(*on_noise, cfg);

  EXPECT_GE(on.profiles_seen, 2u);
  EXPECT_GE(on.profile_switches, 1u);
  // Profiling must not hurt, and generally helps by ~3 dB in the paper.
  EXPECT_LE(broadband_db(on, 2.0), broadband_db(off, 2.0) + 1.0);
}

TEST(Integration, RelaySelectionPositiveAndNegativeLookahead) {
  // Figure 18 in miniature: relay closer to the source than the ear gives
  // a positive GCC-PHAT lag; a relay behind the ear gives a negative one.
  auto scene = acoustics::Scene::paper_office();
  const auto channels = acoustics::build_channels(scene);
  audio::WhiteNoiseSource noise(0.2, 3);
  const auto n_sig = noise.generate(16000);
  const auto at_relay = channels.h_nr.apply(n_sig);
  const auto at_ear = channels.h_ne.apply(n_sig);

  const auto forward = core::gcc_phat(at_relay, at_ear, kFs);
  EXPECT_GT(forward.peak_lag_s, 0.0);
  EXPECT_NEAR(forward.peak_lag_s, channels.lookahead_s, 1e-3);

  // Swap roles: the "relay" now sits at the ear side.
  const auto backward = core::gcc_phat(at_ear, at_relay, kFs);
  EXPECT_LT(backward.peak_lag_s, 0.0);
}

TEST(Integration, FmLinkPreservesCancellation) {
  // The analog FM relay chain should cost only a little cancellation
  // relative to a perfect wire.
  const auto scene = acoustics::Scene::paper_office();
  auto noise = sim::make_noise(sim::NoiseKind::kWhite, kFs, 7);

  auto wired = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
  wired.duration_s = 6.0;
  wired.use_rf_link = false;
  const auto r_wired = sim::run_anc_simulation(*noise, wired);

  auto wireless = wired;
  wireless.use_rf_link = true;
  const auto r_wireless = sim::run_anc_simulation(*noise, wireless);

  EXPECT_GT(r_wireless.link_delay_s, 0.0);
  EXPECT_LT(broadband_db(r_wireless, 3.0), -8.0);
  EXPECT_LT(broadband_db(r_wireless, 3.0) - broadband_db(r_wired, 3.0), 6.0);
}

TEST(Integration, WarmStartMatchesConvergedColdStart) {
  const auto scene = acoustics::Scene::paper_office();
  auto noise = sim::make_noise(sim::NoiseKind::kWhite, kFs, 7);

  auto cold = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
  cold.duration_s = 6.0;
  cold.use_rf_link = false;
  const auto r_cold = sim::run_anc_simulation(*noise, cold);

  auto warm = cold;
  warm.warm_start = true;
  const auto r_warm = sim::run_anc_simulation(*noise, warm);

  // After the skip window both should sit near the same steady state.
  EXPECT_NEAR(broadband_db(r_warm, 3.0), broadband_db(r_cold, 3.0), 3.0);
  // But the warm start converges faster (residual envelope settles sooner).
  const double t_warm = eval::convergence_time_s(r_warm.residual, kFs);
  const double t_cold = eval::convergence_time_s(r_cold.residual, kFs);
  EXPECT_LE(t_warm, t_cold + 0.5);
}

}  // namespace
}  // namespace mute
