// Acceptance tests for warm-standby failover: kill the active relay of a
// two-relay deployment while a healthy positive-lookahead standby exists.
// The device must hand the association over through State::kHandoff —
// without a kListening round trip — re-establish cancellation within
// 3 dB of the pre-fault residual in 0.5 s, and never leave the ear
// meaningfully louder than passive at any point of the run. Full-system:
// room acoustics, one FM chain per relay, link supervision, LANC.
#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute::sim {
namespace {

constexpr double kDuration = 10.0;
constexpr double kFaultStart = 6.0;
constexpr double kFaultLen = 3.0;

/// Residual power re disturbance power over [t0, t1), in dB.
double window_db(const SystemResult& r, double t0, double t1) {
  const auto i0 = static_cast<std::size_t>(t0 * r.sample_rate);
  const auto i1 = static_cast<std::size_t>(t1 * r.sample_rate);
  double num = 0.0, den = 0.0;
  for (std::size_t i = i0; i < i1 && i < r.residual.size(); ++i) {
    num += static_cast<double>(r.residual[i]) *
           static_cast<double>(r.residual[i]);
    den += static_cast<double>(r.disturbance[i]) *
           static_cast<double>(r.disturbance[i]);
  }
  return power_to_db(num / std::max(den, 1e-20));
}

/// One shared full-system run (the sim is seconds of wall clock; every
/// test in this file asserts against the same record).
const SystemResult& failover_run() {
  static const SystemResult r = [] {
    DeviceSimConfig cfg;
    cfg.scene = acoustics::Scene::paper_office();
    // Both relays between the noise source and the ear; relay 0 leads by
    // more and is the device's first choice, relay 1 the warm standby.
    cfg.relay_positions = {{2.0, 2.5, 1.5}, {2.2, 2.5, 1.5}};
    cfg.duration_s = kDuration;
    cfg.seed = 11;
    // Kill relay 0's carrier for the rest of the run.
    cfg.relay_faults = {
        make_fault_schedule(FaultScenario::kRelayDropout, kFaultStart,
                            kFaultLen)};
    cfg.device.calibration_s = 1.0;
    cfg.device.selection_period_s = 0.5;
    cfg.device.hold_timeout_s = 0.3;
    cfg.device.lanc.fxlms.mu = 0.3;
    cfg.device.lanc.fxlms.leakage = 2e-4;
    cfg.device.enable_handoff = true;
    audio::WhiteNoiseSource noise(0.1, 1011);
    return run_device_simulation(noise, cfg);
  }();
  return r;
}

TEST(Failover, HandsOffToWarmStandbyWithoutRelisten) {
  const auto& r = failover_run();

  // Converged on relay 0 before the fault.
  const double pre_db = window_db(r, kFaultStart - 1.5, kFaultStart - 0.1);
  EXPECT_LT(pre_db, -3.0) << "system never converged; test is vacuous";
  EXPECT_GT(r.relay_active_s[0], 3.0);

  // The fault must be detected (hold) and resolved by handoff, not by
  // dropping back to kListening. The gap spans from leaving kRunning to
  // re-entering it: detection is near-instant, the hold timeout is 0.3 s
  // and the handoff settle (engine history refill) is tens of ms — while
  // a kListening round trip adds at least a selection period on top
  // (>= 0.8 s total here).
  EXPECT_GE(r.device_hold_count, 1u);
  EXPECT_GE(r.handoff_count, 1u);
  EXPECT_GT(r.reacquisition_gap_s, 0.0);
  EXPECT_LT(r.reacquisition_gap_s, 0.45)
      << "re-acquisition took a kListening round trip, not a warm handoff";

  // The standby carried the rest of the run.
  EXPECT_GT(r.relay_active_s[1], 2.0);
}

TEST(Failover, RecoversWithinHalfASecondOfTheFault) {
  const auto& r = failover_run();
  const double pre_db = window_db(r, kFaultStart - 1.5, kFaultStart - 0.1);

  // Within 0.5 s of the fault ONSET (detection + hold timeout + settle
  // included) some 0.25 s window is back within 3 dB of pre-fault.
  double recover_s = -1.0;
  for (double t = kFaultStart; t + 0.25 <= kDuration; t += 0.05) {
    if (window_db(r, t, t + 0.25) <= pre_db + 3.0) {
      recover_s = t - kFaultStart;
      break;
    }
  }
  ASSERT_GE(recover_s, 0.0) << "cancellation never recovered";
  EXPECT_LE(recover_s, 0.5);

  // And it holds: the run ends cancelling on the standby.
  EXPECT_LT(window_db(r, kDuration - 1.5, kDuration), pre_db + 3.0);
}

/// Four-relay run for the shadow pre-convergence acceptance: same scene
/// and fault, but enough rivals that the standby scorer has a real choice
/// and the runner-up's shadow filter has had seconds to pre-converge.
const SystemResult& shadow_run() {
  static const SystemResult r = [] {
    DeviceSimConfig cfg;
    cfg.scene = acoustics::Scene::paper_office();
    cfg.relay_positions = {{2.0, 2.5, 1.5},
                           {2.2, 2.5, 1.5},
                           {2.4, 2.5, 1.5},
                           {2.6, 2.5, 1.5}};
    cfg.duration_s = 12.0;
    cfg.seed = 11;
    cfg.relay_faults = {make_fault_schedule(FaultScenario::kRelayDropout,
                                            kFaultStart, kFaultLen)};
    cfg.device.calibration_s = 1.0;
    cfg.device.selection_period_s = 0.5;
    cfg.device.hold_timeout_s = 0.3;
    cfg.device.lanc.fxlms.mu = 0.3;
    cfg.device.lanc.fxlms.leakage = 2e-4;
    audio::WhiteNoiseSource noise(0.1, 1011);
    return run_device_simulation(noise, cfg);
  }();
  return r;
}

TEST(Failover, ShadowPreConvergenceCutsTheGapToTensOfMilliseconds) {
  // ISSUE acceptance (tentpole, part 1): with the standby's shadow filter
  // trickle-adapted in the background, the handoff installs an already
  // converged filter and skips the hold timeout — the re-acquisition gap
  // collapses from ~0.33 s (warm standby, cold filter) to tens of ms.
  const auto& r = shadow_run();

  const double pre_db = window_db(r, kFaultStart - 1.5, kFaultStart - 0.1);
  EXPECT_LT(pre_db, -3.0) << "system never converged; test is vacuous";

  EXPECT_GE(r.shadow_handoff_count, 1u)
      << "handoff fell back to the cold-filter path; the shadow either "
         "never converged or was disqualified";
  EXPECT_LE(r.max_reacquisition_gap_s, 0.05)
      << "shadow handoff did not beat the hold timeout";

  // The fast path is not allowed to trade depth for speed: recovery is as
  // deep as the warm path's, and quick.
  double recover_s = -1.0;
  for (double t = kFaultStart; t + 0.25 <= 12.0; t += 0.05) {
    if (window_db(r, t, t + 0.25) <= pre_db + 3.0) {
      recover_s = t - kFaultStart;
      break;
    }
  }
  ASSERT_GE(recover_s, 0.0) << "cancellation never recovered";
  EXPECT_LE(recover_s, 0.25);
  EXPECT_LT(window_db(r, 10.5, 12.0), pre_db + 3.0);

  for (double t = 1.6; t + 0.25 <= 12.0; t += 0.25) {
    EXPECT_LT(window_db(r, t, t + 0.25), 1.0)
        << "ear louder than passive in window starting at t=" << t;
  }
}

TEST(Failover, EarNeverExceedsPassive) {
  const auto& r = failover_run();
  // Every 0.25 s window after the device starts running (calibration 1 s
  // + one selection period) must stay at or below passive (+1 dB margin,
  // as in the fault-recovery acceptance tests) — through convergence, the
  // fault, the hold fade-out, and the handoff refill.
  for (double t = 1.6; t + 0.25 <= kDuration; t += 0.25) {
    EXPECT_LT(window_db(r, t, t + 0.25), 1.0)
        << "ear louder than passive in window starting at t=" << t;
  }
}

}  // namespace
}  // namespace mute::sim
