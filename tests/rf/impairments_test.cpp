// FaultSchedule / FaultInjector: determinism, per-kind signal behaviour,
// and the interaction with RelayLink's latency cache.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"
#include "rf/impairments.hpp"
#include "rf/relay.hpp"

namespace mute::rf {
namespace {

constexpr double kRfFs = 256000.0;

/// A clean channel so fault effects are not masked by AWGN/CFO.
RfChannelParams quiet_channel() {
  RfChannelParams p;
  p.snr_db = 80.0;
  p.cfo_hz = 0.0;
  p.phase_noise_rad = 0.0;
  return p;
}

ComplexSignal unit_carrier(std::size_t n) {
  return ComplexSignal(n, Complex(1.0, 0.0));
}

TEST(FaultSchedule, FluentBuildersRecordEvents) {
  FaultSchedule s;
  s.relay_off(1.0, 0.5)
      .jammer(2.0, 0.25, 40e3, 6.0)
      .deep_fade(3.0, 0.5, 35.0)
      .impulse_noise(4.0, 0.5, 200.0, 10.0)
      .clock_drift(5.0, 1.0, 80.0);
  ASSERT_EQ(s.events().size(), 5u);
  EXPECT_TRUE(s.has(FaultKind::kRelayOff));
  EXPECT_TRUE(s.has(FaultKind::kJammer));
  EXPECT_TRUE(s.has(FaultKind::kClockDrift));
  EXPECT_FALSE(FaultSchedule{}.has(FaultKind::kJammer));
  EXPECT_DOUBLE_EQ(s.end_s(), 6.0);
  EXPECT_DOUBLE_EQ(s.events()[1].jammer_offset_hz, 40e3);
  EXPECT_DOUBLE_EQ(s.events()[1].jammer_power_db, 6.0);
  EXPECT_TRUE(FaultSchedule{}.empty());
}

TEST(FaultInjector, DeterministicForSameSeed) {
  FaultSchedule s;
  s.jammer(0.0, 1.0, 10e3, 0.0).impulse_noise(0.0, 1.0, 500.0, 5.0);
  FaultInjector a(s, quiet_channel(), kRfFs, 33);
  FaultInjector b(s, quiet_channel(), kRfFs, 33);
  FaultInjector c(s, quiet_channel(), kRfFs, 34);
  const auto x = unit_carrier(4096);
  const auto ya = a.process(x);
  const auto yb = b.process(x);
  const auto yc = c.process(x);
  double diff_ab = 0.0, diff_ac = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    diff_ab = std::max(diff_ab, std::abs(ya[i] - yb[i]));
    diff_ac = std::max(diff_ac, std::abs(ya[i] - yc[i]));
  }
  EXPECT_EQ(diff_ab, 0.0);  // same seed: bit-identical
  EXPECT_GT(diff_ac, 1e-6);  // different seed: different noise draws
}

TEST(FaultInjector, RelayOffZeroesTheWindowOnly) {
  FaultSchedule s;
  s.relay_off(0.01, 0.01);  // samples [2560, 5120)
  FaultInjector inj(s, quiet_channel(), kRfFs, 1);
  const auto y = inj.process(unit_carrier(7680));
  // Before and after the window the carrier survives; inside it is gone.
  EXPECT_GT(std::abs(y[1000]), 0.5);
  EXPECT_GT(std::abs(y[6000]), 0.5);
  for (std::size_t i = 2600; i < 5100; ++i) {
    EXPECT_LT(std::abs(y[i]), 1e-2) << "at sample " << i;
  }
}

TEST(FaultInjector, DeepFadeAttenuatesByDepth) {
  FaultSchedule s;
  s.deep_fade(0.02, 0.04, /*depth_db=*/30.0, /*ramp_s=*/0.005);
  FaultInjector inj(s, quiet_channel(), kRfFs, 1);
  const auto y = inj.process(unit_carrier(static_cast<std::size_t>(kRfFs * 0.08)));
  // Fade bottom (well inside the ramps): ~ -30 dB amplitude.
  const double bottom = std::abs(y[static_cast<std::size_t>(kRfFs * 0.04)]);
  EXPECT_NEAR(amplitude_to_db(bottom), -30.0, 1.0);
  // Outside: unity-ish.
  EXPECT_GT(std::abs(y[100]), 0.9);
  EXPECT_GT(std::abs(y.back()), 0.9);
}

TEST(FaultInjector, JammerAddsToneAtRequestedPower) {
  FaultSchedule s;
  s.jammer(0.0, 1.0, /*offset_hz=*/20e3, /*power_db=*/-6.0);
  // Zero input: the output IS the jammer (plus negligible channel noise).
  FaultInjector inj(s, quiet_channel(), kRfFs, 7);
  const auto y = inj.process(ComplexSignal(8192, Complex(0.0, 0.0)));
  double p = 0.0;
  for (const auto& c : y) p += std::norm(c);
  p /= static_cast<double>(y.size());
  EXPECT_NEAR(power_to_db(p), -6.0, 0.5);
}

TEST(FaultInjector, ClockDriftAccumulatesDelay) {
  FaultSchedule s;
  s.clock_drift(0.0, 1.0, /*ppm=*/100.0);
  FaultInjector inj(s, quiet_channel(), kRfFs, 1);
  (void)inj.process(unit_carrier(static_cast<std::size_t>(kRfFs)));
  // 100 ppm over 1 s of stream = 100e-6 * fs samples of accumulated skew.
  EXPECT_NEAR(inj.accumulated_drift_samples(), 100e-6 * kRfFs, 1.0);
  inj.reset();
  EXPECT_DOUBLE_EQ(inj.accumulated_drift_samples(), 0.0);
  EXPECT_DOUBLE_EQ(inj.elapsed_s(), 0.0);
}

TEST(FaultInjector, EmptyScheduleMatchesBareChannel) {
  RfChannel bare(quiet_channel(), kRfFs, 5);
  FaultInjector inj(FaultSchedule{}, quiet_channel(), kRfFs, 5);
  const auto x = unit_carrier(2048);
  const auto ya = bare.process(x);
  const auto yb = inj.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(ya[i], yb[i]) << "at sample " << i;
  }
}

TEST(RelayLink, LatencyProbeIgnoresScheduledFaults) {
  RelayConfig clean_cfg;
  RelayLink clean(clean_cfg, 3);
  const double clean_latency = clean.measure_latency_samples();

  RelayConfig faulty_cfg;
  faulty_cfg.faults.relay_off(0.0, 10.0);  // link dead from t = 0
  RelayLink faulty(faulty_cfg, 3);
  // The probe strips faults: it measures the healthy chain's group delay,
  // not the outage, and the cache survives reset().
  EXPECT_NEAR(faulty.measure_latency_samples(), clean_latency, 1e-9);
  faulty.reset();
  EXPECT_NEAR(faulty.measure_latency_samples(), clean_latency, 1e-9);
}

TEST(RelayLink, SetFaultScheduleInvalidatesLatencyCache) {
  RelayConfig cfg;
  RelayLink link(cfg, 3);
  const double before = link.measure_latency_samples();
  FaultSchedule s;
  s.clock_drift(0.0, 5.0, 200.0);
  link.set_fault_schedule(s);
  // Cache was dropped; re-measuring still works and agrees (the probe is
  // fault-free by construction).
  EXPECT_NEAR(link.measure_latency_samples(), before, 1e-9);
}

TEST(RelayLink, RelayOffSilencesTheForwardedAudio) {
  RelayConfig cfg;
  cfg.faults.relay_off(0.5, 0.4);
  RelayLink link(cfg, 9);
  audio::WhiteNoiseSource noise(0.1, 21);
  const auto audio_in = noise.generate(static_cast<std::size_t>(16000.0 * 1.2));
  const auto out = link.process(audio_in);
  ASSERT_EQ(out.size(), audio_in.size());
  // During the outage the demodulator free-runs on channel noise: the
  // output is *louder* garbage, not silence — exactly what LinkMonitor
  // keys on. Healthy windows track the input level instead.
  const auto rms = [&](double t0, double t1) {
    const auto i0 = static_cast<std::size_t>(t0 * 16000.0);
    const auto i1 = static_cast<std::size_t>(t1 * 16000.0);
    return mute::dsp::rms(std::span<const Sample>(out.data() + i0, i1 - i0));
  };
  EXPECT_GT(rms(0.6, 0.85), 2.0 * rms(0.2, 0.45));
}

}  // namespace
}  // namespace mute::rf
