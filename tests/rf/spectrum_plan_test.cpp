// Unit tests for the monitor-driven SpectrumPlanner (tentpole, part 2):
// the hop -> hop -> TX escalation state machine, min-dwell rate limiting,
// mesh-wide channel-penalty sharing, peer-occupancy avoidance, and the
// composition of planner actions with RelayLink's latency cache (a retune
// is a coupling-label change, not a new signal path).
#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "rf/relay.hpp"
#include "rf/spectrum_plan.hpp"

namespace mute::rf {
namespace {

SpectrumPlannerOptions quick_options() {
  SpectrumPlannerOptions opt;  // defaults: 8 channels, threshold 2, dwell .25
  return opt;
}

TEST(SpectrumPlanner, StartsOnFrequencyDivisionAssignment) {
  SpectrumPlanner planner(4, quick_options());
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(planner.channel_of(k), k);
    EXPECT_DOUBLE_EQ(planner.tx_gain_db(k), 0.0);
  }
  // No evidence, no action.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(planner.plan(k, 0.0).kind, PlannerActionKind::kNone);
  }
}

TEST(SpectrumPlanner, RefusesFewerChannelsThanRelays) {
  SpectrumPlannerOptions opt = quick_options();
  opt.channel_count = 3;
  EXPECT_THROW(SpectrumPlanner(4, opt), PreconditionError);
}

TEST(SpectrumPlanner, OneBlipIsNotEvidence) {
  SpectrumPlanner planner(4, quick_options());
  planner.note_adverse(0, 0.0);  // pressure 1 < hop_threshold 2
  EXPECT_EQ(planner.plan(0, 0.01).kind, PlannerActionKind::kNone);
  EXPECT_EQ(planner.channel_of(0), 0u);
}

TEST(SpectrumPlanner, SustainedAdverseHopsToTheCleanestFreeChannel) {
  SpectrumPlanner planner(4, quick_options());
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.01 * i);
  const PlannerAction a = planner.plan(0, 0.05);
  ASSERT_EQ(a.kind, PlannerActionKind::kHop);
  EXPECT_EQ(a.relay, 0u);
  // Channels 1-3 are peer-occupied; 4 is the lowest-index clean channel.
  EXPECT_EQ(a.channel, 4u);
  EXPECT_EQ(planner.channel_of(0), 4u);
  // The hop consumed the pressure; the indicted channel keeps its penalty
  // as a warning to the rest of the mesh.
  EXPECT_DOUBLE_EQ(planner.adverse_pressure(0), 0.0);
  EXPECT_GT(planner.channel_penalty(0), 2.0);
}

TEST(SpectrumPlanner, ChannelPenaltiesWarnPeersOffTheBadChannel) {
  SpectrumPlanner planner(4, quick_options());
  // Relay 0 suffers on channel 0 and hops away (to 4).
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.01 * i);
  ASSERT_EQ(planner.plan(0, 0.05).kind, PlannerActionKind::kHop);
  // Relay 1 then suffers on ITS channel. Its hop must avoid both the
  // peer-occupied channels (2, 3, 4) and the channel relay 0's evidence
  // indicted (0) — landing on 5, not 0, although 0 is unoccupied.
  for (int i = 0; i < 3; ++i) planner.note_adverse(1, 0.06 + 0.01 * i);
  const PlannerAction a = planner.plan(1, 0.1);
  ASSERT_EQ(a.kind, PlannerActionKind::kHop);
  EXPECT_EQ(a.channel, 5u);
}

TEST(SpectrumPlanner, MinDwellRateLimitsActions) {
  SpectrumPlanner planner(4, quick_options());
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.01 * i);
  ASSERT_EQ(planner.plan(0, 0.05).kind, PlannerActionKind::kHop);
  // Interference follows (wideband): pressure rebuilds immediately, but
  // the planner must not hop again inside min_dwell_s — no hop storms.
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.06 + 0.01 * i);
  EXPECT_GE(planner.adverse_pressure(0), quick_options().hop_threshold);
  EXPECT_EQ(planner.plan(0, 0.1).kind, PlannerActionKind::kNone);
  EXPECT_EQ(planner.plan(0, 0.29).kind, PlannerActionKind::kNone);
  // Past the dwell the action lands.
  EXPECT_NE(planner.plan(0, 0.05 + 0.26).kind, PlannerActionKind::kNone);
}

TEST(SpectrumPlanner, EscalatesToTxPowerWhenNoChannelIsCleaner) {
  // As many relays as channels: every other channel is peer-occupied, so
  // a suffering relay has nowhere to hop and must escalate TX power,
  // stepping to the cap and never past it.
  SpectrumPlannerOptions opt = quick_options();
  opt.channel_count = 4;
  opt.min_dwell_s = 0.0;
  SpectrumPlanner planner(4, opt);

  for (int i = 0; i < 3; ++i) planner.note_adverse(2, 0.01 * i);
  PlannerAction a = planner.plan(2, 0.05);
  ASSERT_EQ(a.kind, PlannerActionKind::kTxStep);
  EXPECT_DOUBLE_EQ(a.tx_gain_db, 3.0);

  for (int i = 0; i < 3; ++i) planner.note_adverse(2, 0.06 + 0.01 * i);
  a = planner.plan(2, 0.1);
  ASSERT_EQ(a.kind, PlannerActionKind::kTxStep);
  EXPECT_DOUBLE_EQ(a.tx_gain_db, 6.0);
  EXPECT_DOUBLE_EQ(planner.tx_gain_db(2), 6.0);

  // Fully escalated: no further action, and the pressure is paid down so
  // the planner does not spin at the cap.
  for (int i = 0; i < 3; ++i) planner.note_adverse(2, 0.11 + 0.01 * i);
  const double before = planner.adverse_pressure(2);
  a = planner.plan(2, 0.15);
  EXPECT_EQ(a.kind, PlannerActionKind::kNone);
  EXPECT_DOUBLE_EQ(planner.tx_gain_db(2), 6.0);
  EXPECT_LT(planner.adverse_pressure(2), before);
}

TEST(SpectrumPlanner, HopMarginBlocksSidewaysHops) {
  // One relay, two channels, no decay: after fleeing channel 0 (penalty 3)
  // the relay suffers equally on channel 1. With both channels equally
  // dirty no candidate clears the hop margin, so the planner escalates TX
  // instead of ping-ponging between two bad channels.
  SpectrumPlannerOptions opt = quick_options();
  opt.channel_count = 2;
  opt.penalty_decay_per_s = 0.0;
  opt.min_dwell_s = 0.0;
  SpectrumPlanner planner(1, opt);
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.01 * i);
  ASSERT_EQ(planner.plan(0, 0.05).kind, PlannerActionKind::kHop);
  ASSERT_EQ(planner.channel_of(0), 1u);
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.06 + 0.01 * i);
  const PlannerAction a = planner.plan(0, 0.1);
  EXPECT_EQ(a.kind, PlannerActionKind::kTxStep)
      << "equal penalties must not produce a sideways hop";
  EXPECT_EQ(planner.channel_of(0), 1u);
}

TEST(SpectrumPlanner, CleanEvidencePaysDownPressure) {
  SpectrumPlanner planner(2, quick_options());
  planner.note_adverse(0, 0.0);
  EXPECT_GT(planner.adverse_pressure(0), 0.9);
  planner.note_clean(0, 0.01);
  planner.note_clean(0, 0.02);
  EXPECT_DOUBLE_EQ(planner.adverse_pressure(0), 0.0);
  EXPECT_EQ(planner.plan(0, 0.03).kind, PlannerActionKind::kNone);
}

TEST(SpectrumPlanner, PressureAndPenaltiesDecayWithTime) {
  SpectrumPlanner planner(2, quick_options());
  for (int i = 0; i < 3; ++i) planner.note_adverse(0, 0.01 * i);
  EXPECT_GT(planner.adverse_pressure(0), 2.0);
  // Ten seconds of silence: exp(-0.5 * 10) ~ 6.7e-3 of the pressure left.
  EXPECT_EQ(planner.plan(0, 10.0).kind, PlannerActionKind::kNone);
  EXPECT_LT(planner.adverse_pressure(0), 0.05);
  EXPECT_LT(planner.channel_penalty(0), 0.05);
}

TEST(RelayLink, RetuneComposesWithTheLatencyCache) {
  // A retune is a narrowband coupling label, not a new signal path: the
  // group delay is unchanged, so the cached measurement stays valid and a
  // re-measure agrees. Installing a fault schedule (which may contain
  // clock drift) invalidates the cache automatically and the fresh-copy
  // probe still reproduces the same benign-path delay.
  RelayConfig cfg;
  RelayLink link(cfg, 42);
  const double d0 = link.measure_latency_samples();
  link.retune(5);
  EXPECT_DOUBLE_EQ(link.measure_latency_samples(), d0);
  link.set_tx_gain_db(3.0);
  EXPECT_DOUBLE_EQ(link.measure_latency_samples(), d0);
  link.set_fault_schedule(FaultSchedule{}.relay_off(1.0, 0.5));
  EXPECT_NEAR(link.measure_latency_samples(), d0, 1e-9);
}

TEST(RelayLink, RetuneDoesNotPerturbTheBenignPath) {
  // Two identical links, same seed; one retunes mid-stream. With no
  // channel-pinned jammer in the air the received audio must stay
  // bit-identical — the property that lets the mesh runner retune links
  // mid-run without disturbing benign-scenario equivalence.
  RelayConfig cfg;
  RelayLink a(cfg, 7);
  RelayLink b(cfg, 7);
  Signal probe(4096);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] = static_cast<Sample>(
        0.1 * std::sin(0.071 * static_cast<double>(i)));
  }
  const Signal ya1 = a.process(probe);
  const Signal yb1 = b.process(probe);
  ASSERT_EQ(ya1.size(), yb1.size());
  for (std::size_t i = 0; i < ya1.size(); ++i) {
    ASSERT_EQ(ya1[i], yb1[i]) << "links diverged before the retune";
  }
  b.retune(6);
  const Signal ya2 = a.process(probe);
  const Signal yb2 = b.process(probe);
  for (std::size_t i = 0; i < ya2.size(); ++i) {
    ASSERT_EQ(ya2[i], yb2[i]) << "retune perturbed the benign path at " << i;
  }
}

TEST(RelayLink, HoppingOffAPinnedJammerChannelRestoresTheLink) {
  // A jammer pinned to channel 0 wrecks the link tuned there; the same
  // link retuned to a distant channel barely couples to it. This is the
  // physical lever the planner's kHop action pulls.
  RelayConfig cfg;
  auto jammed = [&](std::size_t channel) {
    RelayLink link(cfg, 9);
    link.set_fault_schedule(
        FaultSchedule{}.jammer(0.0, 10.0, 800.0, 20.0, /*channel=*/0));
    link.retune(channel);
    Signal probe(8192);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = static_cast<Sample>(
          0.1 * std::sin(0.071 * static_cast<double>(i)));
    }
    const Signal y = link.process(probe);
    double power = 0.0;
    for (std::size_t i = 2048; i < y.size(); ++i) {
      power += static_cast<double>(y[i]) * static_cast<double>(y[i]);
    }
    return power / static_cast<double>(y.size() - 2048);
  };
  const double on_jammed = jammed(0);
  const double dodged = jammed(4);
  // On-channel the strong jammer captures the discriminator (output
  // collapses or goes to garbage — either way far from the clean probe
  // power); two channels away the coupling is negligible.
  EXPECT_GT(on_jammed / dodged + dodged / on_jammed, 5.0)
      << "jammer made no difference: pinning is not channel-selective";
}

}  // namespace
}  // namespace mute::rf
