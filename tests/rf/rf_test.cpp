#include <cmath>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"
#include "rf/fm.hpp"
#include "rf/frontend.hpp"
#include "rf/oscillator.hpp"
#include "rf/relay.hpp"
#include "rf/rf_channel.hpp"

namespace mute::rf {
namespace {

constexpr double kRfFs = 256000.0;

TEST(Nco, ProducesUnitPhasorsAtFrequency) {
  Nco nco(1000.0, kRfFs);
  Complex prev = nco.tick();
  for (int i = 0; i < 1000; ++i) {
    const Complex c = nco.tick();
    EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
    const double dphi = std::arg(c * std::conj(prev));
    EXPECT_NEAR(dphi, kTwoPi * 1000.0 / kRfFs, 1e-9);
    prev = c;
  }
}

TEST(Vco, FrequencyFollowsControlVoltage) {
  Vco vco(0.0, 10000.0, kRfFs);  // 10 kHz per unit
  Complex prev = vco.tick(0.5);
  double accum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const Complex c = vco.tick(0.5);
    accum += std::arg(c * std::conj(prev));
    prev = c;
  }
  const double freq = accum / n * kRfFs / kTwoPi;
  EXPECT_NEAR(freq, 5000.0, 10.0);
}

TEST(Pll, StaticErrorRotatesAtCfo) {
  Pll::Params p;
  p.frequency_error_hz = 300.0;
  Pll pll(p, kRfFs, 1);
  Complex prev = pll.tick();
  double accum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Complex c = pll.tick();
    accum += std::arg(c * std::conj(prev));
    prev = c;
  }
  EXPECT_NEAR(accum / n * kRfFs / kTwoPi, 300.0, 5.0);
}

TEST(Fm, RoundTripRecoversAudio) {
  FmModulator mod(60000.0, kRfFs);
  FmDemodulator demod(60000.0, kRfFs);
  const double audio_freq = 1000.0;
  const int n = 40000;
  Signal in(n), out(n);
  for (int i = 0; i < n; ++i) {
    in[i] = static_cast<Sample>(0.5 * std::sin(kTwoPi * audio_freq * i / kRfFs));
    out[i] = demod.demodulate(mod.modulate(in[i]));
  }
  // After the DC-block settles, output tracks input.
  double err = 0.0;
  for (int i = n / 2; i < n; ++i) {
    err = std::max(err, std::abs(static_cast<double>(out[i] - in[i])));
  }
  EXPECT_LT(err, 0.02);
}

TEST(Fm, ConstantEnvelope) {
  FmModulator mod(60000.0, kRfFs);
  audio::WhiteNoiseSource noise(0.3, 3);
  const auto audio = noise.generate(1000);
  const auto rf = mod.modulate(audio);
  for (const auto& c : rf) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Fm, CfoAppearsAsDcAndIsBlocked) {
  // Rotate the modulated signal by a constant frequency offset; after the
  // discriminator this is a DC shift, which the DC blocker removes --
  // the paper's Section 4.1 argument for FM.
  FmModulator mod(60000.0, kRfFs);
  FmDemodulator demod(60000.0, kRfFs);
  Nco cfo(500.0, kRfFs);
  const int n = 60000;
  Signal in(n), out(n);
  for (int i = 0; i < n; ++i) {
    in[i] = static_cast<Sample>(0.4 * std::sin(kTwoPi * 800.0 * i / kRfFs));
    out[i] = demod.demodulate(mod.modulate(in[i]) * cfo.tick());
  }
  double err = 0.0;
  for (int i = n / 2; i < n; ++i) {
    err = std::max(err, std::abs(static_cast<double>(out[i] - in[i])));
  }
  EXPECT_LT(err, 0.03);
}

TEST(Fm, ImmuneToAmplitudeDistortion) {
  // Crush the envelope to 30% with random AM: FM demod should not care.
  Rng rng(5);
  FmModulator mod(60000.0, kRfFs);
  FmDemodulator demod(60000.0, kRfFs);
  const int n = 40000;
  Signal in(n), out(n);
  double am = 1.0;
  for (int i = 0; i < n; ++i) {
    in[i] = static_cast<Sample>(0.4 * std::sin(kTwoPi * 600.0 * i / kRfFs));
    am = 0.999 * am + 0.001 * (0.65 + 0.35 * rng.uniform(0.0, 1.0));
    out[i] = demod.demodulate(mod.modulate(in[i]) * am);
  }
  double err = 0.0;
  for (int i = n / 2; i < n; ++i) {
    err = std::max(err, std::abs(static_cast<double>(out[i] - in[i])));
  }
  EXPECT_LT(err, 0.02);
}

TEST(FrontEnd, LpfRemovesOutOfBandAudio) {
  AudioFrontEnd fe(7000.0, 1.0, 4.0, kRfFs);
  // 30 kHz tone at the RF processing rate should be strongly attenuated.
  const int n = 20000;
  double out_peak = 0.0;
  for (int i = 0; i < n; ++i) {
    const Sample y = fe.process(
        static_cast<Sample>(std::sin(kTwoPi * 30000.0 * i / kRfFs)));
    if (i > n / 2) out_peak = std::max(out_peak, std::abs(static_cast<double>(y)));
  }
  EXPECT_LT(out_peak, 0.05);
}

TEST(FrontEnd, SoftClipSaturates) {
  AudioFrontEnd fe(7000.0, 1.0, 0.5, kRfFs);
  Sample max_out = 0.0f;
  for (int i = 0; i < 1000; ++i) {
    max_out = std::max(max_out, fe.process(10.0f));
  }
  EXPECT_LE(static_cast<double>(max_out), 0.5 + 1e-6);
}

TEST(PowerAmp, CompressesOnlyLargeSignals) {
  PowerAmplifier pa(6.0);  // saturation at ~2.0
  const Complex small(0.1, 0.0);
  const Complex large(10.0, 0.0);
  EXPECT_NEAR(std::abs(pa.process(small)), 0.1, 1e-3);
  EXPECT_LT(std::abs(pa.process(large)), 2.1);
  // Phase is preserved.
  const Complex rotated = std::polar(5.0, 1.0);
  EXPECT_NEAR(std::arg(pa.process(rotated)), 1.0, 1e-9);
}

TEST(RfChannel, AwgnMatchesConfiguredSnr) {
  RfChannelParams p;
  p.snr_db = 20.0;
  p.cfo_hz = 0.0;
  p.phase_noise_rad = 0.0;
  RfChannel ch(p, kRfFs, 7);
  // Unit-power input; measure output error power vs rotated input.
  const int n = 50000;
  double noise_power = 0.0;
  Nco carrier(1000.0, kRfFs);
  // Estimate by comparing magnitudes: |y|^2 averages 1 + noise power.
  double mag2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const Complex x = carrier.tick();
    const Complex y = ch.process(x);
    mag2 += std::norm(y);
  }
  noise_power = mag2 / n - 1.0;
  EXPECT_NEAR(power_to_db(1.0 / noise_power), 20.0, 1.5);
}

TEST(RfChannel, PathGainScalesOutput) {
  RfChannelParams p;
  p.snr_db = 100.0;
  p.path_gain = 0.25;
  p.cfo_hz = 0.0;
  p.phase_noise_rad = 0.0;
  RfChannel ch(p, kRfFs, 9);
  double mag = 0.0;
  for (int i = 0; i < 1000; ++i) {
    mag += std::abs(ch.process(Complex(1.0, 0.0)));
  }
  EXPECT_NEAR(mag / 1000.0, 0.25, 0.01);
}

TEST(RelayLink, AudioSurvivesFullChain) {
  RelayConfig cfg;
  RelayLink link(cfg, 11);
  const double sndr = link.measure_sndr_db(1000.0);
  EXPECT_GT(sndr, 25.0);  // clean audio through mod/channel/demod
}

TEST(RelayLink, LatencyIsSmallAndPositive) {
  RelayConfig cfg;
  RelayLink link(cfg, 13);
  const double latency = link.measure_latency_samples();
  EXPECT_GE(latency, 0.0);
  EXPECT_LT(latency, 0.01 * cfg.audio_rate);  // under 10 ms
}

TEST(RelayLink, OutputLengthMatchesInput) {
  RelayConfig cfg;
  RelayLink link(cfg, 15);
  audio::WhiteNoiseSource noise(0.2, 1);
  const auto in = noise.generate(4096);
  const auto out = link.process(in);
  EXPECT_EQ(out.size(), in.size());
}

TEST(RelayLink, WorseSnrDegradesSndr) {
  RelayConfig good_cfg;
  good_cfg.channel.snr_db = 40.0;
  RelayConfig bad_cfg;
  bad_cfg.channel.snr_db = 8.0;
  RelayLink good(good_cfg, 17), bad(bad_cfg, 17);
  EXPECT_GT(good.measure_sndr_db(1000.0), bad.measure_sndr_db(1000.0) + 3.0);
}

class FmDeviationTest : public ::testing::TestWithParam<double> {};

TEST_P(FmDeviationTest, RoundTripAcrossDeviations) {
  const double dev = GetParam();
  FmModulator mod(dev, kRfFs);
  FmDemodulator demod(dev, kRfFs);
  const int n = 30000;
  double err = 0.0;
  Signal in(n);
  for (int i = 0; i < n; ++i) {
    in[i] = static_cast<Sample>(0.3 * std::sin(kTwoPi * 700.0 * i / kRfFs));
    const Sample out = demod.demodulate(mod.modulate(in[i]));
    if (i > n / 2) {
      err = std::max(err, std::abs(static_cast<double>(out - in[i])));
    }
  }
  EXPECT_LT(err, 0.02) << "deviation " << dev;
}

INSTANTIATE_TEST_SUITE_P(Deviations, FmDeviationTest,
                         ::testing::Values(20000.0, 40000.0, 80000.0));

}  // namespace
}  // namespace mute::rf

// -- appended coverage: spectrum planning (Section 6) ---------------------
#include "rf/spectrum_plan.hpp"

namespace mute::rf {
namespace {

TEST(SpectrumPlan, CarsonRule) {
  EXPECT_DOUBLE_EQ(carson_bandwidth_hz(60000.0, 8000.0), 136000.0);
  EXPECT_THROW(carson_bandwidth_hz(0.0, 8000.0), PreconditionError);
}

TEST(SpectrumPlan, IsmBandHoldsManyRelays) {
  // Paper: "covering an area requires few relays (3-4); the total
  // bandwidth occupied remains a small fraction" of the 26 MHz band.
  const double bw = carson_bandwidth_hz(60000.0, 8000.0);
  const auto capacity = relay_capacity(kIsmBandHz, bw, 20000.0);
  EXPECT_GT(capacity, 100u);  // far more than the 3-4 a room needs
}

TEST(SpectrumPlan, AssignedChannelsDoNotOverlap) {
  const double bw = 136000.0;
  const double guard = 20000.0;
  const auto centers = assign_channels(8, kIsmBandHz, bw, guard);
  ASSERT_EQ(centers.size(), 8u);
  for (std::size_t i = 1; i < centers.size(); ++i) {
    EXPECT_GE(centers[i] - centers[i - 1], bw + guard - 1e-9);
  }
  // Every channel fits inside the band.
  EXPECT_LE(centers.back() + bw / 2.0, kIsmBandHz);
}

TEST(SpectrumPlan, RejectsOvercrowding) {
  EXPECT_THROW(assign_channels(1000, kIsmBandHz, 136000.0, 20000.0),
               PreconditionError);
}

}  // namespace
}  // namespace mute::rf
