#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"
#include "eval/metrics.hpp"
#include "sim/passive.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"
#include "sim/variants.hpp"

namespace mute::sim {
namespace {

constexpr double kFs = 16000.0;

TEST(Passive, LossGrowsWithFrequency) {
  PassiveShell shell(kFs);
  EXPECT_LT(shell.insertion_loss_db(100.0), 8.0);
  EXPECT_GT(shell.insertion_loss_db(4000.0), 18.0);
  EXPECT_GT(shell.insertion_loss_db(4000.0), shell.insertion_loss_db(500.0));
}

TEST(Passive, StreamingAttenuates) {
  PassiveShell shell(kFs);
  double peak_out = 0.0;
  for (int i = 0; i < 8000; ++i) {
    const double t = i / kFs;
    const Sample y = shell.process(
        static_cast<Sample>(std::sin(mute::kTwoPi * 3000.0 * t)));
    if (i > 4000) peak_out = std::max(peak_out, std::abs(static_cast<double>(y)));
  }
  EXPECT_LT(mute::amplitude_to_db(peak_out), -15.0);
}

TEST(Scenarios, SchemeNamesAreStable) {
  EXPECT_STREQ(scheme_name(Scheme::kMuteHollow), "MUTE_Hollow");
  EXPECT_STREQ(scheme_name(Scheme::kBoseOverall), "Bose_Overall");
}

TEST(Scenarios, BoseConfigMovesReferenceOntoHeadphone) {
  const auto scene = acoustics::Scene::paper_office();
  const auto mute_cfg = make_scheme_config(Scheme::kMuteHollow, scene, 1);
  const auto bose_cfg = make_scheme_config(Scheme::kBoseActive, scene, 1);
  const double d_mute =
      acoustics::distance(mute_cfg.scene.relay_mic, mute_cfg.scene.error_mic);
  const double d_bose =
      acoustics::distance(bose_cfg.scene.relay_mic, bose_cfg.scene.error_mic);
  EXPECT_GT(d_mute, 1.0);
  EXPECT_NEAR(d_bose, 0.015, 1e-6);
  EXPECT_FALSE(bose_cfg.wireless_reference);
  EXPECT_EQ(bose_cfg.max_noncausal_taps, 0u);
  EXPECT_TRUE(mute_cfg.wireless_reference);
}

TEST(Scenarios, PassiveFlagsFollowScheme) {
  const auto scene = acoustics::Scene::paper_office();
  EXPECT_FALSE(make_scheme_config(Scheme::kMuteHollow, scene, 1).passive_shell);
  EXPECT_TRUE(make_scheme_config(Scheme::kMutePassive, scene, 1).passive_shell);
  EXPECT_TRUE(make_scheme_config(Scheme::kBoseOverall, scene, 1).passive_shell);
}

TEST(Scenarios, AllNoiseKindsInstantiate) {
  for (auto kind : {NoiseKind::kWhite, NoiseKind::kMaleVoice,
                    NoiseKind::kFemaleVoice, NoiseKind::kConstruction,
                    NoiseKind::kMusic, NoiseKind::kMachineHum}) {
    auto src = make_noise(kind, kFs, 3);
    ASSERT_NE(src, nullptr);
    const auto x = src->generate(4000);
    EXPECT_EQ(x.size(), 4000u);
  }
}

TEST(System, MuteHollowCancelsWideband) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 42);
  cfg.duration_s = 5.0;
  cfg.use_rf_link = false;  // keep the unit test fast
  auto noise = make_noise(NoiseKind::kWhite, kFs, 7);
  const auto r = run_anc_simulation(*noise, cfg);
  const auto spec =
      eval::cancellation_spectrum(r.disturbance, r.residual, r.sample_rate, 2.5);
  EXPECT_LT(spec.average_db(100, 4000), -8.0);
  EXPECT_GT(r.noncausal_taps, 50u);
  EXPECT_GT(r.acoustic_lookahead_s, 5e-3);
}

TEST(System, ResultSignalsAreAligned) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 3);
  cfg.duration_s = 2.0;
  cfg.use_rf_link = false;
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto r = run_anc_simulation(*noise, cfg);
  EXPECT_EQ(r.disturbance.size(), r.residual.size());
  EXPECT_EQ(r.reference.size(), r.residual.size());
  EXPECT_DOUBLE_EQ(r.sample_rate, kFs);
}

TEST(System, ExtraReferenceDelayReducesNoncausalTaps) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 3);
  cfg.duration_s = 2.0;
  cfg.use_rf_link = false;
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto base = run_anc_simulation(*noise, cfg);
  cfg.extra_reference_delay_s = 5e-3;
  auto noise2 = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto delayed = run_anc_simulation(*noise2, cfg);
  EXPECT_LT(delayed.noncausal_taps, base.noncausal_taps);
}

TEST(System, CalibrationQualityIsReported) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 9);
  cfg.duration_s = 2.0;
  cfg.use_rf_link = false;
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto r = run_anc_simulation(*noise, cfg);
  EXPECT_LT(r.calibration_error_db, -15.0);
}

TEST(Variants, TabletopConfigDelaysFeedback) {
  const auto scene = acoustics::Scene::paper_office();
  const auto cfg = make_tabletop_config(scene, 1, 2.0);
  EXPECT_FALSE(cfg.use_rf_link);
  EXPECT_GT(cfg.error_feedback_delay_samples, 0u);
  EXPECT_LT(cfg.mu, 0.2);
}

TEST(Variants, SmartNoiseMaximizesLookahead) {
  const auto scene = acoustics::Scene::paper_office();
  const auto base = make_scheme_config(Scheme::kMuteHollow, scene, 1);
  const auto smart = make_smart_noise_config(scene, 1);
  const double d_base =
      acoustics::distance(base.scene.noise_source, base.scene.relay_mic);
  const double d_smart =
      acoustics::distance(smart.scene.noise_source, smart.scene.relay_mic);
  EXPECT_LT(d_smart, d_base);
}

TEST(Variants, EdgeServiceServesMultipleUsers) {
  const auto scene = acoustics::Scene::paper_office();
  std::vector<EdgeUser> users = {
      {{4.0, 2.0, 1.2}, {4.0, 1.97, 1.2}},
      {{4.5, 3.5, 1.2}, {4.5, 3.47, 1.2}},
  };
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  // Short runs: just prove both users get usable cancellation plumbing.
  auto result = run_edge_service(*noise, scene, users, 11, 0.5,
                                 /*duration_s=*/2.0);
  ASSERT_EQ(result.per_user.size(), 2u);
  for (const auto& r : result.per_user) {
    EXPECT_EQ(r.disturbance.size(), r.residual.size());
    EXPECT_GT(r.noncausal_taps, 0u);
  }
}

}  // namespace
}  // namespace mute::sim

// -- appended coverage: delayed-feedback variants stay stable -------------
namespace mute::sim {
namespace {

TEST(Variants, TabletopRunStaysStableAndCancels) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_tabletop_config(scene, 3, 2.0);
  cfg.duration_s = 4.0;
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto r = run_anc_simulation(*noise, cfg);
  const double resid = mute::dsp::rms(std::span<const Sample>(
      r.residual.data() + r.residual.size() / 2, r.residual.size() / 2));
  const double dist = mute::dsp::rms(r.disturbance);
  EXPECT_TRUE(std::isfinite(resid));
  EXPECT_LT(resid, dist);  // net cancellation despite delayed feedback
}

TEST(System, NonWhiteWorkloadsStayStable) {
  const auto scene = acoustics::Scene::paper_office();
  for (auto kind : {NoiseKind::kMusic, NoiseKind::kMaleVoice,
                    NoiseKind::kConstruction}) {
    auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 11);
    cfg.duration_s = 4.0;
    cfg.use_rf_link = false;
    auto noise = make_noise(kind, kFs, 21);
    const auto r = run_anc_simulation(*noise, cfg);
    const double resid = mute::dsp::rms(std::span<const Sample>(
        r.residual.data() + r.residual.size() / 2, r.residual.size() / 2));
    EXPECT_TRUE(std::isfinite(resid)) << noise_name(kind);
    EXPECT_LT(resid, 2.0 * mute::dsp::rms(r.disturbance)) << noise_name(kind);
  }
}

}  // namespace
}  // namespace mute::sim

// -- appended coverage: sim configuration knobs ---------------------------
namespace mute::sim {
namespace {

TEST(System, AmbientSpeakerRemovesSubsonicContent) {
  // With the ambient playback speaker modeled, the disturbance at the ear
  // has almost no energy below the speaker's ~90 Hz corner.
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 5);
  cfg.duration_s = 3.0;
  cfg.use_rf_link = false;
  auto run_with = [&](bool ambient) {
    cfg.ambient_speaker = ambient;
    auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
    const auto r = run_anc_simulation(*noise, cfg);
    const auto psd = mute::dsp::welch_psd(
        std::span<const Sample>(r.disturbance.data() + 8000, 32768), kFs,
        1024);
    return psd.band_power(20.0, 60.0) / psd.band_power(500.0, 1000.0);
  };
  EXPECT_LT(run_with(true), 0.1 * run_with(false));
}

TEST(System, MuScheduleDoesNotBreakCancellation) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 5);
  cfg.duration_s = 4.0;
  cfg.use_rf_link = false;
  cfg.mu = 0.1;
  cfg.mu_settle = 0.02;
  cfg.mu_settle_tau_s = 0.5;
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto r = run_anc_simulation(*noise, cfg);
  const double resid = mute::dsp::rms(std::span<const Sample>(
      r.residual.data() + r.residual.size() / 2, r.residual.size() / 2));
  EXPECT_LT(resid, 0.6 * mute::dsp::rms(r.disturbance));
}

TEST(System, ComponentsSumToResidualUpToMicNoise) {
  const auto scene = acoustics::Scene::paper_office();
  auto cfg = make_scheme_config(Scheme::kMuteHollow, scene, 5);
  cfg.duration_s = 2.0;
  cfg.use_rf_link = false;
  auto noise = make_noise(NoiseKind::kWhite, kFs, 5);
  const auto r = run_anc_simulation(*noise, cfg);
  ASSERT_EQ(r.ambient_at_ear.size(), r.residual.size());
  ASSERT_EQ(r.anti_at_ear.size(), r.residual.size());
  double err = 0.0;
  for (std::size_t i = 1000; i < r.residual.size(); ++i) {
    const double sum = static_cast<double>(r.ambient_at_ear[i]) +
                       static_cast<double>(r.anti_at_ear[i]);
    err += std::pow(sum - static_cast<double>(r.residual[i]), 2);
  }
  // Only the measurement microphone separates them: its (gentle) 30 Hz
  // high-pass response plus a tiny self-noise floor.
  EXPECT_LT(std::sqrt(err / static_cast<double>(r.residual.size())), 5e-3);
}

}  // namespace
}  // namespace mute::sim
