// Chaos-soak harness tests (tentpole, part 3): the episode generator is a
// deterministic pure function of the config with hard safety properties
// (episodes inside the post-calibration window, always >= 1 healthy relay,
// jammers pinned to the victim's home channel), and a short seeded soak
// run upholds every invariant the harness asserts.
#include <algorithm>
#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/soak.hpp"

namespace mute::sim {
namespace {

TEST(SoakSchedule, IsADeterministicFunctionOfTheConfig) {
  SoakConfig cfg;
  cfg.relay_count = 4;
  cfg.duration_s = 12.0;
  cfg.episode_count = 6;
  cfg.seed = 9;
  const auto a = make_soak_episodes(cfg);
  const auto b = make_soak_episodes(cfg);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), cfg.episode_count);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].relay, b[i].relay);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
    EXPECT_DOUBLE_EQ(a[i].duration_s, b[i].duration_s);
    EXPECT_EQ(a[i].jammer_channel, b[i].jammer_channel);
  }

  cfg.seed = 10;
  const auto c = make_soak_episodes(cfg);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a[i].relay != c[i].relay || a[i].kind != c[i].kind ||
                     a[i].start_s != c[i].start_s;
  }
  EXPECT_TRUE(any_difference) << "schedule ignores the seed";
}

TEST(SoakSchedule, EpisodesRespectTheWindowAndTheMesh) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SoakConfig cfg;
    cfg.relay_count = 5;
    cfg.duration_s = 14.0;
    cfg.episode_count = 8;
    cfg.seed = seed;
    const auto episodes = make_soak_episodes(cfg);
    ASSERT_EQ(episodes.size(), cfg.episode_count) << "seed " << seed;
    for (const SoakEpisode& e : episodes) {
      EXPECT_LT(e.relay, cfg.relay_count) << "seed " << seed;
      EXPECT_NE(e.kind, FaultScenario::kNone) << "seed " << seed;
      // Inside the post-calibration window, clear of the tail.
      EXPECT_GE(e.start_s, 3.5) << "seed " << seed;
      EXPECT_LE(e.start_s + e.duration_s, cfg.duration_s - 1.5)
          << "seed " << seed;
      EXPECT_GE(e.duration_s, 0.4) << "seed " << seed;
      EXPECT_LE(e.duration_s, 1.2) << "seed " << seed;
      // Jammers attack the victim's HOME channel (relay k starts on
      // channel k) — anything else is a jammer the planner need not dodge.
      if (e.kind == FaultScenario::kJammerBurst) {
        EXPECT_EQ(e.jammer_channel, static_cast<int>(e.relay))
            << "seed " << seed;
      } else {
        EXPECT_EQ(e.jammer_channel, -1) << "seed " << seed;
      }
    }
  }
}

TEST(SoakSchedule, AlwaysLeavesAHealthyRelay) {
  // The headline generator guarantee: at any instant at least one relay is
  // un-faulted, so a qualified standby exists and "bounded re-acquisition"
  // is a fair invariant. Checked on a fine time grid across many seeds.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SoakConfig cfg;
    cfg.relay_count = 2;  // tightest case: one fault saturates half the mesh
    cfg.duration_s = 10.0;
    cfg.episode_count = 6;
    cfg.seed = seed;
    const auto episodes = make_soak_episodes(cfg);
    for (double t = 0.0; t < cfg.duration_s; t += 0.01) {
      std::size_t faulted = 0;
      for (std::size_t r = 0; r < cfg.relay_count; ++r) {
        const bool hit = std::any_of(
            episodes.begin(), episodes.end(), [&](const SoakEpisode& e) {
              return e.relay == r && t >= e.start_s &&
                     t < e.start_s + e.duration_s;
            });
        if (hit) ++faulted;
      }
      ASSERT_LT(faulted, cfg.relay_count)
          << "seed " << seed << ": whole mesh faulted at t=" << t;
    }
  }
}

TEST(SoakSchedule, RejectsDegenerateConfigs) {
  SoakConfig cfg;
  cfg.relay_count = 1;  // no mesh, no standby, nothing to soak
  EXPECT_THROW(make_soak_episodes(cfg), PreconditionError);
  cfg.relay_count = 2;
  cfg.duration_s = 6.0;  // lead + tail + margin leave no fault window
  EXPECT_THROW(make_soak_episodes(cfg), PreconditionError);
}

TEST(SoakRun, ShortSeededSoakUpholdsEveryInvariant) {
  SoakConfig cfg;
  cfg.relay_count = 3;
  cfg.duration_s = 7.0;
  cfg.episode_count = 3;
  cfg.seed = 5;
  const SoakReport report = run_chaos_soak(cfg);

  EXPECT_TRUE(report.never_louder)
      << "worst window excess " << report.worst_window_excess_db << " dB at t="
      << report.worst_window_t_s;
  EXPECT_TRUE(report.gap_bounded)
      << "max gap " << report.max_reacquisition_gap_s << " s";
  EXPECT_TRUE(report.allocation_clean);
  EXPECT_TRUE(report.passed());

  EXPECT_EQ(report.seed, cfg.seed);
  EXPECT_EQ(report.relay_count, cfg.relay_count);
  EXPECT_EQ(report.episodes.size(), cfg.episode_count);
  // The chaos actually landed: the monitor saw fault episodes.
  EXPECT_GE(report.link_fault_episodes, 1u);
  if (report.allocation_tracked) {
    EXPECT_GT(report.total_ticks, 0u);
  }
}

TEST(SoakRun, ReportsSerializeToTheCiArtifact) {
  SoakConfig cfg;
  cfg.relay_count = 3;
  cfg.duration_s = 7.0;
  cfg.episode_count = 2;
  cfg.seed = 17;
  const SoakReport report = run_chaos_soak(cfg);
  const std::string json = soak_reports_json({report});

  for (const char* key :
       {"\"seed\"", "\"relays\"", "\"passed\"", "\"never_louder\"",
        "\"gap_bounded\"", "\"allocation_clean\"",
        "\"max_reacquisition_gap_s\"", "\"schedule\"", "\"hops\"",
        "\"handoffs\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"seed\": 17"), std::string::npos);
}

}  // namespace
}  // namespace mute::sim
