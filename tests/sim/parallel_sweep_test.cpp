// sim::parallel_sweep (DESIGN.md §10): ordered results, thread-count
// invariance under the determinism contract, exception propagation, and
// edge counts. The same tests run under the tsan preset to prove the
// runner itself is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel_sweep.hpp"

namespace {

using namespace mute;

TEST(ParallelSweep, ResultsComeBackInIndexOrder) {
  for (const std::size_t workers : {1UL, 2UL, 4UL, 9UL}) {
    const auto out = sim::parallel_sweep(
        100, [](std::size_t i) { return i * i; }, workers);
    ASSERT_EQ(out.size(), 100U);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i) << "workers=" << workers;
    }
  }
}

TEST(ParallelSweep, ThreadCountDoesNotChangeResults) {
  // Contract-conforming body: everything, including the RNG, derives from
  // the index. More workers than scenarios exercises the clamp.
  const auto scenario = [](std::size_t i) {
    Rng rng(static_cast<unsigned>(1000 + i));
    double acc = 0.0;
    for (int t = 0; t < 5000; ++t) acc += rng.gaussian() * 1e-3;
    return acc;
  };
  const auto serial = sim::parallel_sweep(12, scenario, 1);
  for (const std::size_t workers : {2UL, 4UL, 32UL}) {
    const auto parallel = sim::parallel_sweep(12, scenario, workers);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "workers=" << workers << " i=" << i;  // bit-identical
    }
  }
}

TEST(ParallelSweep, CountZeroIsANoOp) {
  const auto out =
      sim::parallel_sweep(0, [](std::size_t i) { return i; }, 4);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelSweep, SingleElementRunsInline) {
  const auto out =
      sim::parallel_sweep(1, [](std::size_t i) { return i + 7; }, 8);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0], 7U);
}

TEST(ParallelSweep, FirstExceptionPropagatesToCaller) {
  for (const std::size_t workers : {1UL, 4UL}) {
    EXPECT_THROW(
        sim::parallel_sweep(
            64,
            [](std::size_t i) -> int {
              if (i == 13) throw std::runtime_error("scenario 13 failed");
              return static_cast<int>(i);
            },
            workers),
        std::runtime_error)
        << "workers=" << workers;
  }
}

TEST(ParallelSweep, AbandonsRemainingWorkAfterFailure) {
  // After a body throws, un-started indices must not run: the started
  // count stays well below the total. (Exact counts depend on timing; the
  // bound is generous but would catch "keeps draining the whole range".)
  std::atomic<std::size_t> started{0};
  try {
    sim::parallel_for_index(10000, 4, [&](std::size_t i) {
      started.fetch_add(1, std::memory_order_relaxed);
      if (i == 0) throw std::runtime_error("early failure");
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(started.load(), 10000U);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1UL, 3UL, 8UL}) {
    std::vector<std::atomic<int>> hits(257);
    sim::parallel_for_index(hits.size(), workers, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ParallelSweep, DefaultWorkersHonorsEnvOverride) {
  // MUTE_SWEEP_THREADS is read per call, so the override is testable
  // without re-execing the binary.
  ASSERT_EQ(setenv("MUTE_SWEEP_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(sim::default_sweep_workers(), 3U);
  ASSERT_EQ(setenv("MUTE_SWEEP_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(sim::default_sweep_workers(), 1U);  // falls back to hardware
  ASSERT_EQ(unsetenv("MUTE_SWEEP_THREADS"), 0);
  EXPECT_GE(sim::default_sweep_workers(), 1U);
}

}  // namespace
