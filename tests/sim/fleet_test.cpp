#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "audio/source.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute::sim {
namespace {

// Compact device-sim config shared by the fleet tests: short power-up
// calibration, modest taps, no RF chain (the equivalence claim is about
// the device/fleet loop, not the FM link).
DeviceSimConfig quick_cfg(double duration_s = 2.0) {
  DeviceSimConfig cfg;
  cfg.scene = acoustics::Scene::paper_office();
  cfg.duration_s = duration_s;
  cfg.seed = 7;
  cfg.use_rf_link = false;
  cfg.device.calibration_s = 0.25;
  cfg.device.selection_period_s = 0.5;
  cfg.device.secondary_taps = 96;
  cfg.device.lanc.fxlms.causal_taps = 128;
  return cfg;
}

FleetConfig quick_fleet(std::size_t workers, std::size_t max_tenants = 4) {
  FleetConfig fc;
  fc.workers = workers;
  fc.max_tenants = max_tenants;
  fc.arena_bytes = std::size_t{8} << 20;
  fc.ramp_s = 0.0;  // hard admit: gain == 1.0 from the first sample
  return fc;
}

std::size_t blocks_for(const FleetRuntime& fleet, std::size_t samples) {
  return (samples + fleet.block_samples() - 1) / fleet.block_samples() + 2;
}

Signal fleet_residual(std::size_t workers, const FleetProfile& profile,
                      std::uint64_t device_seed) {
  FleetRuntime fleet(quick_fleet(workers));
  const std::size_t pid = fleet.add_profile(profile);
  const std::uint64_t id = fleet.admit(pid, device_seed,
                                       /*capture_residual=*/true);
  fleet.run_blocks(blocks_for(fleet, profile.length()));
  // The finite-session tenant auto-drained and was evicted; the capture
  // survives eviction.
  EXPECT_EQ(fleet.live_tenants(), 0u);
  return fleet.captured_residual(id);
}

TEST(Fleet, SingleTenantIsBitIdenticalToRunDeviceSimulation) {
  const DeviceSimConfig cfg = quick_cfg();
  audio::WhiteNoiseSource noise(0.1, 1011);
  const SystemResult ref = run_device_simulation(noise, cfg);

  const FleetProfile profile = make_fleet_profile(noise, cfg);
  const Signal got = fleet_residual(2, profile, cfg.device.seed);

  ASSERT_EQ(got.size(), ref.residual.size());
  std::size_t mismatches = 0;
  for (std::size_t t = 0; t < got.size(); ++t) {
    if (std::memcmp(&got[t], &ref.residual[t], sizeof(Sample)) != 0) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << "fleet tenant diverged from run_device_simulation";
}

TEST(Fleet, OutputIsInvariantAcrossWorkerCounts) {
  const DeviceSimConfig cfg = quick_cfg();
  audio::WhiteNoiseSource noise(0.1, 1011);
  const FleetProfile profile = make_fleet_profile(noise, cfg);

  const Signal one = fleet_residual(1, profile, 5);
  const Signal four = fleet_residual(4, profile, 5);
  ASSERT_EQ(one.size(), four.size());
  EXPECT_EQ(std::memcmp(one.data(), four.data(),
                        one.size() * sizeof(Sample)),
            0)
      << "worker count changed tenant output (DESIGN.md §10 violated)";
}

TEST(Fleet, AdmitDrainChurnReusesSlotsAndKeepsStats) {
  const DeviceSimConfig cfg = quick_cfg();
  audio::WhiteNoiseSource noise(0.1, 2022);
  FleetRuntime fleet(quick_fleet(2, 3));
  const std::size_t pid =
      fleet.add_profile(make_fleet_profile(noise, cfg,
                                           /*loop_steady_state=*/true));

  const std::uint64_t a = fleet.admit(pid, 1);
  const std::uint64_t b = fleet.admit(pid, 2);
  const std::uint64_t c = fleet.admit(pid, 3);
  EXPECT_EQ(fleet.live_tenants(), 3u);
  EXPECT_THROW(fleet.admit(pid, 4), PreconditionError);  // at capacity

  fleet.run_blocks(40);
  fleet.drain(b);
  fleet.run_blocks(4);  // fade + eviction boundary
  EXPECT_EQ(fleet.live_tenants(), 2u);
  EXPECT_FALSE(fleet.is_live(b));

  // The freed slot admits a replacement.
  const std::uint64_t d = fleet.admit(pid, 4);
  fleet.run_blocks(40);
  EXPECT_EQ(fleet.live_tenants(), 3u);

  // Stats survive eviction and stay queryable while live.
  const TenantStats sb = fleet.stats(b);
  EXPECT_EQ(sb.id, b);
  EXPECT_EQ(sb.state, TenantState::kDrained);
  EXPECT_GT(sb.samples, 0u);
  for (const std::uint64_t id : {a, c, d}) {
    const TenantStats s = fleet.stats(id);
    EXPECT_TRUE(fleet.is_live(id));
    EXPECT_GT(s.samples, 0u);
    EXPECT_GT(s.arena_high_water, 0u);
  }
  EXPECT_EQ(fleet.completed().size(), 1u);
  EXPECT_THROW(fleet.stats(9999), PreconditionError);
}

TEST(Fleet, DrainBeforeFirstBlockCancelsTheAdmit) {
  const DeviceSimConfig cfg = quick_cfg();
  audio::WhiteNoiseSource noise(0.1, 2022);
  FleetRuntime fleet(quick_fleet(1, 2));
  const std::size_t pid = fleet.add_profile(make_fleet_profile(noise, cfg));
  const std::uint64_t id = fleet.admit(pid, 1);
  fleet.drain(id);
  EXPECT_EQ(fleet.live_tenants(), 0u);
  const TenantStats s = fleet.stats(id);
  EXPECT_EQ(s.samples, 0u);
  // The slot is free again and the fleet still runs.
  fleet.admit(pid, 2);
  fleet.run_blocks(4);
  EXPECT_EQ(fleet.live_tenants(), 1u);
}

TEST(Fleet, SteadyStateIsAllocationCleanOnWorkerLanes) {
  if (!RtAllocationGuard::interposition_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out";
  }
  const DeviceSimConfig cfg = quick_cfg();
  audio::WhiteNoiseSource noise(0.1, 303);
  FleetRuntime fleet(quick_fleet(2, 4));
  const std::size_t pid =
      fleet.add_profile(make_fleet_profile(noise, cfg,
                                           /*loop_steady_state=*/true));
  for (std::uint64_t s = 0; s < 4; ++s) fleet.admit(pid, s + 1);

  // Run through power-up calibration into steady state...
  fleet.run_blocks(64);
  // ...then hold the fleet to the RtAllocationGuard contract: every
  // allocation inside a tenant audio block must land in the tenant's
  // arena, so the global heap sees ZERO traffic from worker lanes — not
  // "a small fraction of ticks", zero (this is the property that removes
  // the allocator lock from the multi-core scaling path).
  const std::uint64_t heap_before = fleet.steady_allocations();
  // TickStaysAllocationLean-style leanness on the arena side: most blocks
  // must not allocate at all, arena or not (selection rounds are the
  // budgeted amortized exception).
  std::size_t clean_blocks = 0;
  const std::size_t kBlocks = 128;
  auto arena_allocs = [&] {
    std::uint64_t total = 0;
    for (const auto id : {1, 2, 3, 4}) {
      total += fleet.stats(static_cast<std::uint64_t>(id)).arena_allocations;
    }
    return total;
  };
  std::uint64_t prev = arena_allocs();
  for (std::size_t b = 0; b < kBlocks; ++b) {
    fleet.run_blocks(1);
    const std::uint64_t now = arena_allocs();
    if (now == prev) ++clean_blocks;
    prev = now;
  }
  EXPECT_EQ(fleet.steady_allocations(), heap_before)
      << "a worker lane reached the global heap in steady state";
  EXPECT_GE(clean_blocks, (kBlocks * 9) / 10)
      << "fleet steady state allocates (even arena-side) too often";
}

TEST(Fleet, SoakSmokeChurnWithFaultsKeepsEveryTenantNoLouder) {
  // Small-fleet soak: mixed profiles (one with a scripted relay dropout),
  // admit/drain churn, and the PR 2 invariant held per tenant — a dead
  // link must never leave any tenant's ear louder than passive (worst
  // disturbance-audible window within the soak margin).
  DeviceSimConfig benign = quick_cfg(2.0);
  DeviceSimConfig faulty = quick_cfg(2.0);
  faulty.use_rf_link = true;
  faulty.relay_positions = {{2.0, 2.5, 1.5}, {2.2, 2.5, 1.5}};
  faulty.relay_faults = {
      make_fault_schedule(FaultScenario::kRelayDropout, 1.0, 0.5)};
  faulty.device.hold_timeout_s = 0.3;

  audio::WhiteNoiseSource noise(0.1, 4044);
  FleetRuntime fleet(quick_fleet(2, 8));
  const std::size_t p0 =
      fleet.add_profile(make_fleet_profile(noise, benign, true));
  const std::size_t p1 =
      fleet.add_profile(make_fleet_profile(noise, faulty, true));

  std::vector<std::uint64_t> live;
  std::uint64_t seed = 1;
  for (std::size_t i = 0; i < 6; ++i) {
    live.push_back(fleet.admit(i % 2 == 0 ? p0 : p1, seed++));
  }
  // ~2.5 simulated seconds of churn: every 32 blocks drain the oldest and
  // admit a replacement on the other profile.
  for (std::size_t round = 0; round < 5; ++round) {
    fleet.run_blocks(32);
    fleet.drain(live.front());
    live.erase(live.begin());
    live.push_back(fleet.admit(round % 2 == 0 ? p1 : p0, seed++));
  }
  fleet.run_blocks(32);

  constexpr double kLouderMarginDb = 3.0;
  std::size_t checked = 0;
  const auto check = [&](const TenantStats& s) {
    if (s.windows == 0) return;  // evicted before any audible window
    ++checked;
    EXPECT_LE(s.worst_excess_db, kLouderMarginDb)
        << "tenant " << s.id << " louder than passive at t="
        << s.worst_excess_t_s << "s";
  };
  for (const TenantStats& s : fleet.completed()) check(s);
  for (const std::uint64_t id : live) check(fleet.stats(id));
  EXPECT_GT(checked, 0u);
}

TEST(FleetDeathTest, UndersizedArenaFailsLoudlyAtAdmission) {
  // Exhaustion inside the fleet is the arena's deterministic abort, not a
  // silent fallback: device construction overflows a tiny tenant arena.
  if (!ScopedArenaAlloc::routing_enabled()) {
    GTEST_SKIP() << "allocation interposition compiled out (construction "
                    "would fall back to the global heap, not the arena)";
  }
  const DeviceSimConfig cfg = quick_cfg();
  audio::WhiteNoiseSource noise(0.1, 1011);
  const FleetProfile profile = make_fleet_profile(noise, cfg);
  EXPECT_DEATH(
      {
        FleetConfig fc;
        fc.workers = 1;  // no helper threads: fork-safe death test
        fc.max_tenants = 1;
        fc.arena_bytes = 1 << 12;
        FleetRuntime fleet(fc);
        const std::size_t pid = fleet.add_profile(profile);
        fleet.admit(pid, 1);
        fleet.run_blocks(1);
      },
      "monotonic arena exhausted");
}

}  // namespace
}  // namespace mute::sim
