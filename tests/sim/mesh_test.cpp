// Tests for the N-relay mesh runner (tentpole): with spectrum supervision
// off it must be bit-identical to run_device_simulation (the RF chains are
// streaming-stateful, so block streaming is not an approximation), the
// result must not depend on the control block size, and with supervision
// on a channel-pinned jammer is dodged by hopping — recovering cancellation
// on the SAME relay, no handoff spent.
#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "sim/mesh.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute::sim {
namespace {

DeviceSimConfig two_relay_config() {
  DeviceSimConfig cfg;
  cfg.scene = acoustics::Scene::paper_office();
  cfg.relay_positions = {{2.0, 2.5, 1.5}, {2.2, 2.5, 1.5}};
  cfg.duration_s = 5.0;
  cfg.seed = 11;
  cfg.device.calibration_s = 1.0;
  cfg.device.selection_period_s = 0.5;
  cfg.device.hold_timeout_s = 0.3;
  cfg.device.lanc.fxlms.mu = 0.3;
  cfg.device.lanc.fxlms.leakage = 2e-4;
  return cfg;
}

double window_db(const SystemResult& r, double t0, double t1) {
  const auto i0 = static_cast<std::size_t>(t0 * r.sample_rate);
  const auto i1 = static_cast<std::size_t>(t1 * r.sample_rate);
  double num = 0.0, den = 0.0;
  for (std::size_t i = i0; i < i1 && i < r.residual.size(); ++i) {
    num += static_cast<double>(r.residual[i]) *
           static_cast<double>(r.residual[i]);
    den += static_cast<double>(r.disturbance[i]) *
           static_cast<double>(r.disturbance[i]);
  }
  return power_to_db(num / std::max(den, 1e-20));
}

TEST(MeshSim, SupervisionOffIsBitIdenticalToTheDeviceSim) {
  const DeviceSimConfig cfg = two_relay_config();

  audio::WhiteNoiseSource noise_a(0.1, 1011);
  const SystemResult device = run_device_simulation(noise_a, cfg);

  MeshSimConfig mesh;
  mesh.device_sim = cfg;
  mesh.spectrum_supervision = false;
  audio::WhiteNoiseSource noise_b(0.1, 1011);
  const MeshSimResult m = run_mesh_simulation(noise_b, mesh);

  ASSERT_EQ(m.system.residual.size(), device.residual.size());
  for (std::size_t i = 0; i < device.residual.size(); ++i) {
    ASSERT_EQ(m.system.residual[i], device.residual[i])
        << "mesh residual diverged from the device sim at sample " << i;
  }
  ASSERT_EQ(m.system.disturbance.size(), device.disturbance.size());
  for (std::size_t i = 0; i < device.disturbance.size(); ++i) {
    ASSERT_EQ(m.system.disturbance[i], device.disturbance[i]);
  }
  EXPECT_EQ(m.system.handoff_count, device.handoff_count);
  EXPECT_EQ(m.system.device_hold_count, device.device_hold_count);
  EXPECT_EQ(m.hop_count, 0u);
  EXPECT_EQ(m.tx_step_count, 0u);
}

TEST(MeshSim, ControlBlockSizeDoesNotChangeTheResult) {
  // Supervision ON but the scenario benign: the planner consults at every
  // control block yet never acts, so the residual must be invariant to
  // the block size — the streaming-stateful chain property, pinned.
  MeshSimConfig mesh;
  mesh.device_sim = two_relay_config();
  mesh.spectrum_supervision = true;
  mesh.control_block_s = 0.016;
  audio::WhiteNoiseSource noise_a(0.1, 1011);
  const MeshSimResult a = run_mesh_simulation(noise_a, mesh);
  EXPECT_EQ(a.hop_count, 0u) << "benign run must not hop";

  mesh.control_block_s = 0.064;
  audio::WhiteNoiseSource noise_b(0.1, 1011);
  const MeshSimResult b = run_mesh_simulation(noise_b, mesh);

  ASSERT_EQ(a.system.residual.size(), b.system.residual.size());
  for (std::size_t i = 0; i < a.system.residual.size(); ++i) {
    ASSERT_EQ(a.system.residual[i], b.system.residual[i])
        << "control block size leaked into the audio path at sample " << i;
  }
}

TEST(MeshSim, RelaysStartOnTheirHomeChannels) {
  MeshSimConfig mesh;
  mesh.device_sim = two_relay_config();
  mesh.spectrum_supervision = true;
  audio::WhiteNoiseSource noise(0.1, 1011);
  const MeshSimResult m = run_mesh_simulation(noise, mesh);
  ASSERT_EQ(m.final_channels.size(), 2u);
  // Benign run: the frequency-division assignment (relay k on channel k)
  // survives untouched, at nominal TX power.
  EXPECT_EQ(m.final_channels[0], 0u);
  EXPECT_EQ(m.final_channels[1], 1u);
  EXPECT_DOUBLE_EQ(m.final_tx_gain_db[0], 0.0);
  EXPECT_DOUBLE_EQ(m.final_tx_gain_db[1], 0.0);
}

TEST(MeshSim, HoppingDodgesAChannelPinnedJammerWithoutAHandoff) {
  // Acceptance (ISSUE tentpole, part 2): a jammer parked on the active
  // relay's home channel captures its FM receiver; the monitor flags it,
  // the planner hops the link to a clean channel, and cancellation
  // recovers on the SAME relay to within 3 dB of the pre-fault residual —
  // no handoff spent, the warm standby stays in reserve.
  constexpr double kFaultStart = 5.0;
  constexpr double kFaultLen = 3.0;
  constexpr double kDuration = 9.0;

  MeshSimConfig mesh;
  mesh.device_sim = two_relay_config();
  mesh.device_sim.duration_s = kDuration;
  // Relay 0's home channel is 0 (the planner's frequency-division start).
  mesh.device_sim.relay_faults = {make_fault_schedule(
      FaultScenario::kJammerBurst, kFaultStart, kFaultLen, /*channel=*/0)};
  // A hop resolves the fault in ~2 control rounds (~50 ms), far inside
  // the hold timeout; keep the shadow's fast handoff out of the race so
  // the test pins the hop path, not the failover path.
  mesh.device_sim.device.hold_timeout_s = 1.0;
  mesh.device_sim.device.enable_shadow = false;
  mesh.spectrum_supervision = true;

  audio::WhiteNoiseSource noise(0.1, 1011);
  const MeshSimResult m = run_mesh_simulation(noise, mesh);
  const SystemResult& r = m.system;

  const double pre_db = window_db(r, kFaultStart - 1.5, kFaultStart - 0.1);
  EXPECT_LT(pre_db, -3.0) << "never converged; the scenario is vacuous";

  // The planner acted: relay 0 left its jammed home channel.
  EXPECT_GE(m.hop_count, 1u);
  EXPECT_NE(m.final_channels[0], 0u);

  // The fault was survived WITHOUT spending the standby.
  EXPECT_EQ(r.handoff_count, 0u)
      << "hopping should keep the association; the standby is for dead "
         "relays, not dirty channels";
  EXPECT_GE(r.device_hold_count, 1u) << "the jammer was never even noticed";

  // Cancellation recovers on the hopped channel while the jammer is still
  // transmitting, within 1 s of onset, and holds to the end of the run.
  double recover_s = -1.0;
  for (double t = kFaultStart; t + 0.25 <= kDuration; t += 0.05) {
    if (window_db(r, t, t + 0.25) <= pre_db + 3.0) {
      recover_s = t - kFaultStart;
      break;
    }
  }
  ASSERT_GE(recover_s, 0.0) << "cancellation never recovered after the hop";
  EXPECT_LE(recover_s, 1.0);
  EXPECT_LT(window_db(r, kDuration - 1.0, kDuration), pre_db + 3.0);

  // And the ear was never meaningfully louder than passive meanwhile.
  // +3 dB margin (the soak harness's louder_margin_db): a jammer capture
  // feeds the filter demod garbage for the few ms of detection lag, a
  // transient a dropout does not have, so the +1 dB dropout bound is too
  // tight for the onset window.
  for (double t = 1.6; t + 0.25 <= kDuration; t += 0.25) {
    EXPECT_LT(window_db(r, t, t + 0.25), 3.0)
        << "louder than passive in window starting at t=" << t;
  }
}

TEST(MeshSim, SupervisionRequiresItsEvidenceSources) {
  MeshSimConfig mesh;
  mesh.device_sim = two_relay_config();
  mesh.spectrum_supervision = true;
  mesh.device_sim.device.link_supervision = false;  // no monitor evidence
  audio::WhiteNoiseSource noise(0.1, 1011);
  EXPECT_THROW(run_mesh_simulation(noise, mesh), PreconditionError);

  mesh.device_sim.device.link_supervision = true;
  mesh.device_sim.use_rf_link = false;  // nothing to retune
  EXPECT_THROW(run_mesh_simulation(noise, mesh), PreconditionError);
}

}  // namespace
}  // namespace mute::sim
