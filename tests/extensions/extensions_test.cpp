// Tests for the Section 6 / Section 4.4 extension features: multi-
// reference FxLMS, the block frequency-domain adaptive filter, the
// ear-canal model, head mobility, and the privacy scrambler.
#include <cmath>

#include <gtest/gtest.h>

#include "acoustics/ear_canal.hpp"
#include "adaptive/fdaf.hpp"
#include "adaptive/lms.hpp"
#include "adaptive/fxlms_multi.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"
#include "rf/relay.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace mute {
namespace {

constexpr double kFs = 16000.0;

double eval_power_db(const sim::SystemResult& r) {
  const std::size_t skip = r.residual.size() / 2;
  const std::span<const Sample> res(r.residual.data() + skip,
                                    r.residual.size() - skip);
  const std::span<const Sample> dis(r.disturbance.data() + skip,
                                    r.disturbance.size() - skip);
  return amplitude_to_db(mute::dsp::rms(res) /
                         std::max(mute::dsp::rms(dis), 1e-12));
}

// ------------------------------------------------------------ multi-ref

TEST(MultiFxlms, CancelsTwoSimultaneousSources) {
  // Two independent sources, each with its own reference (relay) and its
  // own path to the error mic; a single-reference filter cannot cancel
  // both, the multi-reference engine can.
  Rng rng_a(1), rng_b(2);
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;
  const int t_len = 60000;
  std::vector<float> na(t_len + 16), nb(t_len + 16);
  for (auto& v : na) v = static_cast<float>(rng_a.gaussian(0.1));
  for (auto& v : nb) v = static_cast<float>(rng_b.gaussian(0.1));
  // Paths source -> error mic.
  mute::dsp::FirFilter fda({0.0, 0.0, 0.8, 0.2});
  mute::dsp::FirFilter fdb({0.0, 0.0, 0.0, -0.6, 0.3});

  adaptive::FxlmsOptions opts;
  opts.causal_taps = 32;
  opts.noncausal_taps = 8;
  opts.mu = 0.4;
  adaptive::MultiFxlmsEngine multi(hse, {opts, opts});
  mute::dsp::FirFilter plant(hse);

  double err = 0.0;
  int count = 0;
  for (int t = 0; t < t_len; ++t) {
    const Sample refs[] = {na[t + 8], nb[t + 8]};
    const Sample y = multi.step_output(refs);
    const float e = fda.process(na[t]) + fdb.process(nb[t]) +
                    plant.process(y);
    multi.adapt(e);
    if (t > t_len / 2) {
      err += static_cast<double>(e) * static_cast<double>(e);
      ++count;
    }
  }
  const double d_power = 0.01 * (0.68 + 0.45);  // rough disturbance power
  EXPECT_LT(10.0 * std::log10(err / count / d_power), -25.0);
}

TEST(MultiFxlms, SingleChannelMatchesFxlmsEngine) {
  Rng rng(3);
  std::vector<double> hse = {0.0, 1.0};
  adaptive::FxlmsOptions opts;
  opts.causal_taps = 16;
  opts.noncausal_taps = 4;
  opts.mu = 0.3;
  adaptive::FxlmsEngine single(hse, opts);
  adaptive::MultiFxlmsEngine multi(hse, {opts});
  for (int t = 0; t < 2000; ++t) {
    const Sample x = static_cast<Sample>(rng.gaussian(0.2));
    const Sample refs[] = {x};
    const Sample ys = single.step_output(x);
    const Sample ym = multi.step_output(refs);
    ASSERT_NEAR(ys, ym, 1e-6);
    const Sample e = static_cast<Sample>(rng.gaussian(0.05));
    single.adapt(e);
    multi.adapt(e);
  }
}

TEST(MultiFxlms, RejectsBadConfig) {
  EXPECT_THROW(adaptive::MultiFxlmsEngine({1.0}, {}), PreconditionError);
  adaptive::MultiFxlmsEngine ok({1.0}, {adaptive::FxlmsOptions{}});
  const Sample one[] = {0.1f};
  (void)one;
  Signal wrong(2, 0.1f);
  EXPECT_THROW(ok.push_references(wrong), PreconditionError);
}

// ----------------------------------------------------------------- FDAF

TEST(Fdaf, IdentifiesFirSystem) {
  Rng rng(5);
  std::vector<double> h(100, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = rng.gaussian(0.2);
  mute::dsp::FirFilter plant(h);
  audio::WhiteNoiseSource noise(0.3, 7);
  const auto x = noise.generate(64000);
  Signal d(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) d[i] = plant.process(x[i]);

  adaptive::BlockFdaf fdaf({.taps = 128, .mu = 0.5});
  const auto err = fdaf.identify(x, d);
  // Converged error in the last quarter is tiny.
  const std::size_t q = err.size() / 4;
  const double tail = mute::dsp::rms(
      std::span<const Sample>(err.data() + err.size() - q, q));
  const double sig = mute::dsp::rms(d);
  EXPECT_LT(amplitude_to_db(tail / sig), -30.0);
  // Recovered weights match the plant.
  const auto w = fdaf.weights();
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(w[i], h[i], 0.02);
  }
}

TEST(Fdaf, ConvergesFasterThanNlmsOnColoredInput) {
  // Reverb-like coloration: FDAF's per-bin normalization equalizes modes.
  Rng rng(9);
  mute::dsp::Biquad color = mute::dsp::Biquad::lowpass(800.0, 2.0, kFs);
  std::vector<double> h(64, 0.0);
  for (auto& v : h) v = rng.gaussian(0.2);
  mute::dsp::FirFilter plant(h);
  Signal x(64000), d(64000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = color.process(static_cast<Sample>(rng.gaussian(0.3)));
    d[i] = plant.process(x[i]);
  }
  adaptive::BlockFdaf fdaf({.taps = 64, .mu = 0.5});
  adaptive::AdaptiveFir nlms(64, {.mu = 0.5});
  const auto err_f = fdaf.identify(x, d);
  Signal err_n(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) err_n[i] = nlms.step(x[i], d[i]);
  // Compare misalignment at the end.
  const double mis_f = adaptive::misalignment_db(fdaf.weights(), h);
  const double mis_n = adaptive::misalignment_db(nlms.weights(), h);
  EXPECT_LT(mis_f, mis_n + 1.0);  // at least as good, typically much better
}

TEST(Fdaf, ResetClearsState) {
  adaptive::BlockFdaf fdaf({.taps = 32});
  Signal x(32, 0.5f), d(32, 0.25f), e(32);
  fdaf.step_block(x, d, e);
  fdaf.reset();
  for (double w : fdaf.weights()) EXPECT_EQ(w, 0.0);
}

TEST(Fdaf, RejectsWrongBlockSize) {
  adaptive::BlockFdaf fdaf({.taps = 32});
  Signal x(16), d(16), e(16);
  EXPECT_THROW(fdaf.step_block(x, d, e), PreconditionError);
}

// ------------------------------------------------------------ ear canal

TEST(EarCanal, QuarterWaveResonanceBoostsNear3k) {
  acoustics::EarCanal canal(0.025, 0.0, kFs);
  const double f_res = 340.0 / (4.0 * 0.025);  // = 3400 Hz
  EXPECT_GT(canal.response_magnitude(f_res), 3.0);       // ~ +15 dB
  EXPECT_NEAR(canal.response_magnitude(200.0), 1.0, 0.3);
}

TEST(EarCanal, ZeroMismatchPreservesCancellation) {
  // If residual at the mic is zero, the drum hears (filtered) zero.
  acoustics::EarCanal canal(0.025, 0.0, kFs);
  Signal silence(4000, 0.0f);
  const auto drum = canal.apply(silence);
  EXPECT_LT(mute::dsp::rms(drum), 1e-9);
}

TEST(EarCanal, MismatchAddsLeakagePath) {
  acoustics::EarCanal exact(0.025, 0.0, kFs);
  acoustics::EarCanal sloppy(0.025, 1.0, kFs);
  audio::WhiteNoiseSource noise(0.2, 3);
  const auto x = noise.generate(8000);
  const auto a = exact.apply(x);
  const auto b = sloppy.apply(x);
  double diff = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    diff += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  EXPECT_GT(diff / static_cast<double>(x.size()), 1e-4);
}

TEST(EarCanal, RejectsNonAnatomicalLength) {
  EXPECT_THROW(acoustics::EarCanal(0.2, 0.0, kFs), PreconditionError);
}

// ------------------------------------------------------- head mobility

TEST(Mobility, DriftDegradesCancellation) {
  const auto scene = acoustics::Scene::paper_office();
  auto run_with = [&](double drift) {
    auto cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
    cfg.duration_s = 5.0;
    cfg.use_rf_link = false;
    cfg.head_drift_m = drift;
    auto noise = sim::make_noise(sim::NoiseKind::kWhite, kFs, 7);
    const auto r = sim::run_anc_simulation(*noise, cfg);
    return eval_power_db(r);
  };
  const double fixed = run_with(0.0);
  const double moving = run_with(0.5);
  EXPECT_GT(moving, fixed + 2.0);  // moving head = worse cancellation
}

// -------------------------------------------------------- privacy

TEST(Privacy, ScrambledLinkStillServesTheLegitimateReceiver) {
  rf::RelayConfig cfg;
  cfg.scramble = true;
  rf::RelayLink link(cfg, 31);
  // A mid-band tone survives the scramble/descramble round trip.
  const double sndr = link.measure_sndr_db(1500.0);
  EXPECT_GT(sndr, 10.0);
}

TEST(Privacy, EavesdropperHearsGarbage) {
  rf::RelayConfig cfg;
  cfg.scramble = true;
  rf::RelayLink link(cfg, 33);
  audio::ToneSource tone(1000.0, 0.4, cfg.audio_rate);
  const auto audio = tone.generate(32000);
  const auto heard = link.eavesdrop(audio);
  // The eavesdropped audio has its 1 kHz tone moved to fs/2 - 1k = 7 kHz.
  const std::span<const Sample> tail(heard.data() + 8000, 16384);
  const auto psd = mute::dsp::welch_psd(tail, cfg.audio_rate, 2048);
  EXPECT_GT(psd.power_at(7000.0), 20.0 * psd.power_at(1000.0));
}

TEST(Privacy, ScrambleOffIsTransparent) {
  rf::RelayConfig cfg;
  cfg.scramble = false;
  rf::RelayLink link(cfg, 35);
  EXPECT_GT(link.measure_sndr_db(1000.0), 25.0);
}

}  // namespace
}  // namespace mute
