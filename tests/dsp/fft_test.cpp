#include "dsp/fft.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "common/rng.hpp"

namespace mute::dsp {
namespace {

TEST(Fft, ImpulseHasFlatSpectrum) {
  ComplexSignal x(64, Complex(0.0, 0.0));
  x[0] = Complex(1.0, 0.0);
  fft_inplace(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcSignalConcentratesInBinZero) {
  ComplexSignal x(32, Complex(2.0, 0.0));
  fft_inplace(x);
  EXPECT_NEAR(x[0].real(), 64.0, 1e-10);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-10);
  }
}

TEST(Fft, SineConcentratesInMatchingBin) {
  const std::size_t n = 256;
  Signal x(n);
  const std::size_t bin = 17;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<Sample>(
        std::sin(kTwoPi * static_cast<double>(bin * i) / static_cast<double>(n)));
  }
  auto spec = fft_real(x);
  // Peak magnitude n/2 at the bin, symmetric mirror at n - bin.
  EXPECT_NEAR(std::abs(spec[bin]), n / 2.0, 1e-5);
  EXPECT_NEAR(std::abs(spec[n - bin]), n / 2.0, 1e-5);
  EXPECT_NEAR(std::abs(spec[bin + 3]), 0.0, 1e-5);
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(7);
  ComplexSignal x(128);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  ComplexSignal y = x;
  fft_inplace(y);
  ifft_inplace(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(Fft, LinearityHolds) {
  Rng rng(3);
  ComplexSignal a(64), b(64), sum(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = Complex(rng.gaussian(), rng.gaussian());
    b[i] = Complex(rng.gaussian(), rng.gaussian());
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft_inplace(a);
  fft_inplace(b);
  fft_inplace(sum);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(11);
  ComplexSignal x(512);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = Complex(rng.gaussian(), 0.0);
    time_energy += std::norm(v);
  }
  fft_inplace(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy,
              1e-6 * time_energy);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  ComplexSignal x(100);
  EXPECT_THROW(fft_inplace(x), PreconditionError);
}

TEST(Fft, ZeroPadsToRequestedLength) {
  Signal x(10, 1.0f);
  auto spec = fft_real(x, 64);
  EXPECT_EQ(spec.size(), 64u);
  EXPECT_NEAR(spec[0].real(), 10.0, 1e-9);
}

TEST(Fft, RealSpectrumIsConjugateSymmetric) {
  Rng rng(5);
  Signal x(128);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  auto spec = fft_real(x);
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_NEAR(spec[k].real(), spec[128 - k].real(), 1e-6);
    EXPECT_NEAR(spec[k].imag(), -spec[128 - k].imag(), 1e-6);
  }
}

TEST(Fft, IfftRealRecoversRealSignal) {
  Rng rng(9);
  Signal x(64);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  auto spec = fft_real(x);
  auto back = ifft_real(spec);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-5);
  }
}

TEST(Fft, BinFrequencyMapsCorrectly) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 1024, 16000.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(512, 1024, 16000.0), 8000.0);
  EXPECT_NEAR(bin_frequency(64, 1024, 16000.0), 1000.0, 1e-12);
}

// Time-shift property: a circular shift multiplies the spectrum by a
// linear phase. Parameterized over several shifts.
class FftShiftTest : public ::testing::TestWithParam<int> {};

TEST_P(FftShiftTest, CircularShiftGivesLinearPhase) {
  const std::size_t n = 128;
  const int shift = GetParam();
  Rng rng(21);
  ComplexSignal x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), 0.0);
  ComplexSignal shifted(n);
  for (std::size_t i = 0; i < n; ++i) {
    shifted[(i + shift) % n] = x[i];
  }
  fft_inplace(x);
  fft_inplace(shifted);
  for (std::size_t k = 0; k < n; ++k) {
    const Complex expected =
        x[k] * std::polar(1.0, -kTwoPi * static_cast<double>(k * shift) /
                                   static_cast<double>(n));
    EXPECT_NEAR(std::abs(shifted[k] - expected), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, FftShiftTest,
                         ::testing::Values(1, 5, 17, 64, 127));

}  // namespace
}  // namespace mute::dsp
