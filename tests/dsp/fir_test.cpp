#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/fir_design.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::dsp {
namespace {

TEST(FirDesign, LowpassHasUnitDcGain) {
  const auto h = design_lowpass(1000.0, 16000.0, 63);
  double dc = 0.0;
  for (double v : h) dc += v;
  EXPECT_NEAR(dc, 1.0, 1e-12);
}

TEST(FirDesign, LowpassPassesPassbandRejectsStopband) {
  const auto h = design_lowpass(1000.0, 16000.0, 127);
  EXPECT_NEAR(std::abs(fir_response(h, 200.0, 16000.0)), 1.0, 0.01);
  EXPECT_NEAR(std::abs(fir_response(h, 1000.0, 16000.0)), 0.5, 0.05);
  EXPECT_LT(std::abs(fir_response(h, 3000.0, 16000.0)), 0.01);
}

TEST(FirDesign, HighpassMirrorsLowpass) {
  const auto h = design_highpass(2000.0, 16000.0, 127);
  EXPECT_LT(std::abs(fir_response(h, 300.0, 16000.0)), 0.01);
  EXPECT_NEAR(std::abs(fir_response(h, 6000.0, 16000.0)), 1.0, 0.01);
}

TEST(FirDesign, BandpassPassesCenterOnly) {
  const auto h = design_bandpass(1000.0, 3000.0, 16000.0, 127);
  EXPECT_NEAR(std::abs(fir_response(h, 2000.0, 16000.0)), 1.0, 0.02);
  EXPECT_LT(std::abs(fir_response(h, 200.0, 16000.0)), 0.02);
  EXPECT_LT(std::abs(fir_response(h, 6000.0, 16000.0)), 0.02);
}

TEST(FirDesign, RejectsInvalidArguments) {
  EXPECT_THROW(design_lowpass(0.0, 16000.0, 63), PreconditionError);
  EXPECT_THROW(design_lowpass(9000.0, 16000.0, 63), PreconditionError);
  EXPECT_THROW(design_lowpass(1000.0, 16000.0, 64), PreconditionError);
  EXPECT_THROW(design_bandpass(3000.0, 1000.0, 16000.0, 63),
               PreconditionError);
}

TEST(FirDesign, FromMagnitudeApproximatesTarget) {
  const std::vector<double> freq = {0.0, 1000.0, 2000.0, 4000.0, 8000.0};
  const std::vector<double> mag = {1.0, 1.0, 0.25, 0.25, 0.25};
  const auto h = design_from_magnitude(freq, mag, 16000.0, 255);
  EXPECT_NEAR(std::abs(fir_response(h, 500.0, 16000.0)), 1.0, 0.08);
  EXPECT_NEAR(std::abs(fir_response(h, 3000.0, 16000.0)), 0.25, 0.08);
}

TEST(FirDesign, FractionalDelayDelaysSine) {
  const double fs = 16000.0;
  const double delay = 5.37;
  const auto h = design_fractional_delay(delay, 31);
  // Phase at 1 kHz should equal -2*pi*f*delay/fs.
  const auto resp = fir_response(h, 1000.0, fs);
  EXPECT_NEAR(std::abs(resp), 1.0, 0.05);
  const double expected_phase = -kTwoPi * 1000.0 * delay / fs;
  EXPECT_NEAR(wrap_phase(std::arg(resp) - expected_phase), 0.0, 0.05);
}

TEST(FirDesign, FractionalDelayIntegerCaseIsExact) {
  const auto h = design_fractional_delay(4.0, 31);
  EXPECT_NEAR(h[4], 1.0, 1e-9);
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i != 4) {
      EXPECT_NEAR(h[i], 0.0, 1e-9);
    }
  }
}

TEST(FirFilter, ImpulseResponseMatchesCoefficients) {
  FirFilter f({0.5, -0.25, 0.125});
  EXPECT_FLOAT_EQ(f.process(1.0f), 0.5f);
  EXPECT_FLOAT_EQ(f.process(0.0f), -0.25f);
  EXPECT_FLOAT_EQ(f.process(0.0f), 0.125f);
  EXPECT_FLOAT_EQ(f.process(0.0f), 0.0f);
}

TEST(FirFilter, MatchesDirectConvolution) {
  Rng rng(3);
  std::vector<double> h(16);
  for (auto& v : h) v = rng.gaussian();
  Signal x(64);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  FirFilter f(h);
  const auto y = f.filter(x);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size() && k <= n; ++k) {
      acc += h[k] * static_cast<double>(x[n - k]);
    }
    EXPECT_NEAR(y[n], acc, 1e-5);
  }
}

TEST(FirFilter, ResetClearsHistory) {
  FirFilter f({1.0, 1.0});
  f.process(5.0f);
  f.reset();
  EXPECT_FLOAT_EQ(f.process(0.0f), 0.0f);
}

TEST(FirFilter, RejectsEmptyCoefficients) {
  EXPECT_THROW(FirFilter({}), PreconditionError);
}

// Linear-phase property: symmetric designs have constant group delay.
class FirLinearPhaseTest : public ::testing::TestWithParam<double> {};

TEST_P(FirLinearPhaseTest, LowpassHasConstantGroupDelay) {
  const double fs = 16000.0;
  const std::size_t taps = 101;
  const auto h = design_lowpass(GetParam(), fs, taps);
  const double expected = (taps - 1) / 2.0;
  // Group delay from phase difference between nearby passband freqs.
  for (double f : {100.0, 300.0, GetParam() * 0.5}) {
    const double df = 10.0;
    const double p1 = std::arg(fir_response(h, f, fs));
    const double p2 = std::arg(fir_response(h, f + df, fs));
    const double gd = -wrap_phase(p2 - p1) / (kTwoPi * df / fs);
    EXPECT_NEAR(gd, expected, 0.1) << "at " << f << " Hz";
  }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, FirLinearPhaseTest,
                         ::testing::Values(1000.0, 2000.0, 4000.0));

}  // namespace
}  // namespace mute::dsp
