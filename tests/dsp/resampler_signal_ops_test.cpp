#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/resampler.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"

namespace mute::dsp {
namespace {

TEST(Resampler, IdentityRatioPassesThrough) {
  Rng rng(1);
  Signal x(100);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  Resampler rs(1, 1);
  const auto y = rs.process(x);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Resampler, UpsampleProducesExpectedLength) {
  Signal x(1000, 0.0f);
  Resampler rs(16, 1);
  EXPECT_EQ(rs.process(x).size(), 16000u);
}

TEST(Resampler, DownsampleProducesExpectedLength) {
  Signal x(16000, 0.0f);
  Resampler rs(1, 16);
  EXPECT_EQ(rs.process(x).size(), 1000u);
}

TEST(Resampler, TonePreservedThroughUpDown) {
  // 16 kHz -> 256 kHz -> 16 kHz round trip of a 1 kHz tone.
  const double fs = 16000.0;
  const std::size_t n = 8000;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<Sample>(
        0.5 * std::sin(kTwoPi * 1000.0 * static_cast<double>(i) / fs));
  }
  Resampler up(16, 1), down(1, 16);
  const auto hi = up.process(x);
  const auto back = down.process(hi);
  ASSERT_EQ(back.size(), n);
  // Compare RMS (delay shifts phase; compare energy in steady state).
  const std::span<const Sample> mid_in(x.data() + 2000, 4000);
  const std::span<const Sample> mid_out(back.data() + 2000, 4000);
  EXPECT_NEAR(rms(mid_out), rms(mid_in), 0.02);
}

TEST(Resampler, AntiAliasingSuppressesOutOfBand) {
  // Downsample 256k -> 16k with a 50 kHz tone present: must vanish.
  const double hi_fs = 256000.0;
  const std::size_t n = 64000;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<Sample>(
        std::sin(kTwoPi * 50000.0 * static_cast<double>(i) / hi_fs));
  }
  Resampler down(1, 16);
  const auto y = down.process(x);
  EXPECT_LT(rms(std::span<const Sample>(y.data() + 500, y.size() - 500)), 0.02);
}

TEST(Resampler, RationalRatioHelper) {
  Signal x(4410, 0.0f);
  const auto y = resample(x, 44100.0, 16000.0);
  EXPECT_NEAR(static_cast<double>(y.size()), 1600.0, 2.0);
}

TEST(SignalOps, RmsOfKnownSignal) {
  Signal x = {1.0f, -1.0f, 1.0f, -1.0f};
  EXPECT_NEAR(rms(x), 1.0, 1e-7);
  EXPECT_NEAR(rms_db(x), 0.0, 1e-6);
}

TEST(SignalOps, RmsOfEmptyIsZero) {
  Signal x;
  EXPECT_DOUBLE_EQ(rms(x), 0.0);
}

TEST(SignalOps, PeakFindsLargestMagnitude) {
  Signal x = {0.1f, -0.9f, 0.5f};
  EXPECT_NEAR(peak(x), 0.9, 1e-7);
}

TEST(SignalOps, NormalizeRmsHitsTarget) {
  Rng rng(9);
  Signal x(1000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian(3.0));
  normalize_rms(x, 0.25);
  EXPECT_NEAR(rms(x), 0.25, 1e-4);
}

TEST(SignalOps, NormalizeSilenceIsNoOp) {
  Signal x(10, 0.0f);
  normalize_rms(x, 1.0);
  for (Sample v : x) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(SignalOps, MixAddsWithGain) {
  Signal a = {1.0f, 2.0f, 3.0f};
  Signal b = {1.0f, 1.0f};
  const auto y = mix(a, b, 0.5);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(y[1], 2.5f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(SignalOps, SubtractRequiresEqualLengths) {
  Signal a(4, 1.0f), b(3, 1.0f);
  EXPECT_THROW(subtract(a, b), PreconditionError);
}

TEST(SignalOps, DelaySignalPrependsZeros) {
  Signal x = {1.0f, 2.0f};
  const auto y = delay_signal(x, 3);
  ASSERT_EQ(y.size(), 5u);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
  EXPECT_FLOAT_EQ(y[4], 2.0f);
}

TEST(SignalOps, RemoveDcCentersSignal) {
  Signal x = {1.0f, 2.0f, 3.0f, 4.0f};
  remove_dc(x);
  EXPECT_NEAR(mean(x), 0.0, 1e-7);
}

TEST(SignalOps, FadeRampsBothEnds) {
  Signal x(100, 1.0f);
  apply_fade(x, 10);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[99], 0.0f);
  EXPECT_GT(x[5], 0.0f);
  EXPECT_LT(x[5], 1.0f);
  EXPECT_FLOAT_EQ(x[50], 1.0f);
}

class ResamplerRatioTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ResamplerRatioTest, ToneSurvivesRatio) {
  const auto [l, m] = GetParam();
  const double fs = 16000.0;
  const std::size_t n = 16000;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<Sample>(
        0.5 * std::sin(kTwoPi * 440.0 * static_cast<double>(i) / fs));
  }
  Resampler rs(l, m);
  const auto y = rs.process(x);
  const double out_fs = fs * static_cast<double>(l) / static_cast<double>(m);
  ASSERT_GT(y.size(), 2048u);
  const auto psd = welch_psd(
      std::span<const Sample>(y.data() + y.size() / 4, y.size() / 2), out_fs,
      1024);
  // Tone still at 440 Hz in the new rate.
  std::size_t best = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[best]) best = i;
  }
  EXPECT_NEAR(psd.freq_hz[best], 440.0, out_fs / 1024.0 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, ResamplerRatioTest,
    ::testing::Values(std::make_pair(2u, 1u), std::make_pair(1u, 2u),
                      std::make_pair(3u, 2u), std::make_pair(2u, 3u),
                      std::make_pair(16u, 1u), std::make_pair(5u, 4u)));

}  // namespace
}  // namespace mute::dsp
