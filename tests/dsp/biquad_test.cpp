#include "dsp/biquad.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace mute::dsp {
namespace {

constexpr double kFs = 16000.0;

TEST(Biquad, LowpassPassesDcRejectsNyquist) {
  auto f = Biquad::lowpass(1000.0, 0.707, kFs);
  EXPECT_NEAR(std::abs(f.response(10.0, kFs)), 1.0, 0.01);
  EXPECT_LT(std::abs(f.response(7900.0, kFs)), 0.02);
}

TEST(Biquad, HighpassRejectsDcPassesHigh) {
  auto f = Biquad::highpass(1000.0, 0.707, kFs);
  EXPECT_LT(std::abs(f.response(20.0, kFs)), 0.001);
  EXPECT_NEAR(std::abs(f.response(7000.0, kFs)), 1.0, 0.02);
}

TEST(Biquad, ButterworthMinus3dbAtCutoff) {
  auto f = Biquad::lowpass(2000.0, 0.7071, kFs);
  EXPECT_NEAR(amplitude_to_db(std::abs(f.response(2000.0, kFs))), -3.0, 0.1);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  auto f = Biquad::bandpass(1000.0, 5.0, kFs);
  const double at_center = std::abs(f.response(1000.0, kFs));
  EXPECT_NEAR(at_center, 1.0, 0.02);
  EXPECT_LT(std::abs(f.response(250.0, kFs)), 0.3 * at_center);
  EXPECT_LT(std::abs(f.response(4000.0, kFs)), 0.3 * at_center);
}

TEST(Biquad, NotchKillsCenterKeepsFar) {
  auto f = Biquad::notch(1000.0, 10.0, kFs);
  EXPECT_LT(std::abs(f.response(1000.0, kFs)), 0.01);
  EXPECT_NEAR(std::abs(f.response(100.0, kFs)), 1.0, 0.02);
  EXPECT_NEAR(std::abs(f.response(5000.0, kFs)), 1.0, 0.02);
}

TEST(Biquad, PeakingBoostsByGain) {
  auto f = Biquad::peaking(1000.0, 2.0, 6.0, kFs);
  EXPECT_NEAR(amplitude_to_db(std::abs(f.response(1000.0, kFs))), 6.0, 0.1);
  EXPECT_NEAR(std::abs(f.response(60.0, kFs)), 1.0, 0.03);
}

TEST(Biquad, ShelvesReachPlateauGain) {
  auto lo = Biquad::low_shelf(500.0, 0.707, -12.0, kFs);
  EXPECT_NEAR(amplitude_to_db(std::abs(lo.response(30.0, kFs))), -12.0, 0.5);
  EXPECT_NEAR(amplitude_to_db(std::abs(lo.response(7000.0, kFs))), 0.0, 0.3);
  auto hi = Biquad::high_shelf(2000.0, 0.707, -9.0, kFs);
  EXPECT_NEAR(amplitude_to_db(std::abs(hi.response(7500.0, kFs))), -9.0, 0.5);
  EXPECT_NEAR(amplitude_to_db(std::abs(hi.response(50.0, kFs))), 0.0, 0.3);
}

TEST(Biquad, StreamingMatchesResponseForSine) {
  auto f = Biquad::lowpass(1500.0, 0.707, kFs);
  const double freq = 800.0;
  const double expected_gain = std::abs(f.response(freq, kFs));
  // Run a sine through and measure steady-state amplitude.
  double peak = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double t = i / kFs;
    const Sample y = f.process(static_cast<Sample>(std::sin(kTwoPi * freq * t)));
    if (i > 2000) peak = std::max(peak, std::abs(static_cast<double>(y)));
  }
  EXPECT_NEAR(peak, expected_gain, 0.02);
}

TEST(Biquad, ResetClearsState) {
  auto f = Biquad::lowpass(1000.0, 0.707, kFs);
  f.process(1.0f);
  f.process(1.0f);
  f.reset();
  // After reset an impulse gives exactly b0.
  const auto c = f.coefficients();
  EXPECT_NEAR(f.process(1.0f), c[0], 1e-7);
}

TEST(Biquad, RejectsInvalidParameters) {
  EXPECT_THROW(Biquad::lowpass(-5.0, 0.7, kFs), PreconditionError);
  EXPECT_THROW(Biquad::lowpass(9000.0, 0.7, kFs), PreconditionError);
  EXPECT_THROW(Biquad::lowpass(1000.0, 0.0, kFs), PreconditionError);
}

TEST(BiquadCascade, ResponseIsProductOfSections) {
  BiquadCascade c;
  c.push_section(Biquad::lowpass(2000.0, 0.54, kFs));
  c.push_section(Biquad::lowpass(2000.0, 1.31, kFs));
  const auto r1 = Biquad::lowpass(2000.0, 0.54, kFs).response(1000.0, kFs);
  const auto r2 = Biquad::lowpass(2000.0, 1.31, kFs).response(1000.0, kFs);
  EXPECT_NEAR(std::abs(c.response(1000.0, kFs) - r1 * r2), 0.0, 1e-12);
}

TEST(BiquadCascade, EmptyCascadeIsIdentity) {
  BiquadCascade c;
  EXPECT_FLOAT_EQ(c.process(0.75f), 0.75f);
  EXPECT_NEAR(std::abs(c.response(1234.0, kFs)), 1.0, 1e-12);
}

TEST(BiquadCascade, FourthOrderRollsOffTwiceAsFast) {
  BiquadCascade c;
  c.push_section(Biquad::lowpass(1000.0, 0.5412, kFs));
  c.push_section(Biquad::lowpass(1000.0, 1.3066, kFs));
  const double g2k = amplitude_to_db(std::abs(c.response(2000.0, kFs)));
  const double g4k = amplitude_to_db(std::abs(c.response(4000.0, kFs)));
  // 4th-order Butterworth: -24 dB/octave asymptotically; the 2k->4k
  // octave is still in the transition knee, so allow it to be steeper.
  EXPECT_LT(g4k - g2k, -20.0);
  EXPECT_GT(g4k - g2k, -34.0);
}

// Stability: impulse response of every design decays.
class BiquadStabilityTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BiquadStabilityTest, ImpulseResponseDecays) {
  const auto [freq, q] = GetParam();
  for (auto f : {Biquad::lowpass(freq, q, kFs), Biquad::highpass(freq, q, kFs),
                 Biquad::bandpass(freq, q, kFs), Biquad::notch(freq, q, kFs)}) {
    double tail = 0.0;
    Sample y = f.process(1.0f);
    (void)y;
    for (int i = 0; i < 20000; ++i) {
      const double v = std::abs(static_cast<double>(f.process(0.0f)));
      if (i > 18000) tail = std::max(tail, v);
    }
    EXPECT_LT(tail, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, BiquadStabilityTest,
    ::testing::Values(std::make_pair(100.0, 0.5), std::make_pair(100.0, 10.0),
                      std::make_pair(1000.0, 0.707),
                      std::make_pair(7000.0, 2.0),
                      std::make_pair(7900.0, 0.707)));

}  // namespace
}  // namespace mute::dsp
