#include "dsp/convolution.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::dsp {
namespace {

TEST(Convolve, KnownSmallExample) {
  const Signal a = {1.0f, 2.0f, 3.0f};
  const std::vector<double> b = {1.0, -1.0};
  const auto y = convolve(a, b);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  EXPECT_FLOAT_EQ(y[3], -3.0f);
}

TEST(Convolve, DeltaIsIdentity) {
  Rng rng(1);
  Signal a(50);
  for (auto& v : a) v = static_cast<Sample>(rng.gaussian());
  const auto y = convolve(a, std::vector<double>{1.0});
  ASSERT_EQ(y.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(y[i], a[i]);
}

TEST(Convolve, IsCommutativeInEffect) {
  const Signal a = {1.0f, 0.5f, -0.5f, 2.0f};
  const std::vector<double> b = {0.3, -0.2, 0.1};
  const auto y1 = convolve(a, b);
  Signal b_as_signal = {0.3f, -0.2f, 0.1f};
  std::vector<double> a_as_coeff = {1.0, 0.5, -0.5, 2.0};
  const auto y2 = convolve(b_as_signal, a_as_coeff);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-6);
  }
}

TEST(FftConvolve, MatchesDirect) {
  Rng rng(2);
  Signal a(333);
  std::vector<double> b(47);
  for (auto& v : a) v = static_cast<Sample>(rng.gaussian());
  for (auto& v : b) v = rng.gaussian();
  const auto direct = convolve(a, b);
  const auto fast = fft_convolve(a, b);
  ASSERT_EQ(direct.size(), fast.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], fast[i], 1e-4);
  }
}

TEST(ConvolveSame, KeepsInputLength) {
  Signal a(100, 1.0f);
  std::vector<double> b(17, 0.1);
  const auto y = convolve_same(a, b);
  EXPECT_EQ(y.size(), a.size());
}

TEST(Convolve, RejectsEmptyInputs) {
  Signal empty;
  Signal a(4, 1.0f);
  EXPECT_THROW(convolve(empty, std::vector<double>{1.0}), PreconditionError);
  EXPECT_THROW(convolve(a, std::vector<double>{}), PreconditionError);
}

TEST(OverlapSave, MatchesStreamingFir) {
  Rng rng(5);
  std::vector<double> h(33);
  for (auto& v : h) v = rng.gaussian();
  Signal x(1000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());

  OverlapSaveConvolver ols(h, 128);
  FirFilter fir(h);
  const auto y_ols = ols.filter(x);
  const auto y_fir = fir.filter(x);
  ASSERT_EQ(y_ols.size(), y_fir.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y_ols[i], y_fir[i], 1e-4) << "at " << i;
  }
}

TEST(OverlapSave, BlockBoundariesAreSeamless) {
  Rng rng(8);
  std::vector<double> h(9);
  for (auto& v : h) v = rng.gaussian();
  OverlapSaveConvolver ols(h, 32);
  FirFilter fir(h);
  // Process block by block and compare each sample.
  Signal in(32), out(32);
  for (int block = 0; block < 10; ++block) {
    for (auto& v : in) v = static_cast<Sample>(rng.gaussian());
    ols.process_block(in, out);
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_NEAR(out[i], fir.process(in[i]), 1e-4);
    }
  }
}

TEST(OverlapSave, ResetRestoresInitialState) {
  std::vector<double> h = {1.0, 0.5};
  OverlapSaveConvolver ols(h, 16);
  Signal in(16, 1.0f), out1(16), out2(16);
  ols.process_block(in, out1);
  ols.reset();
  ols.process_block(in, out2);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out1[i], out2[i]);
}

TEST(OverlapSave, RejectsWrongBlockSize) {
  OverlapSaveConvolver ols({1.0}, 16);
  Signal in(8), out(8);
  EXPECT_THROW(ols.process_block(in, out), PreconditionError);
}

class ConvolutionSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ConvolutionSizeTest, FftAndDirectAgreeAcrossSizes) {
  const auto [na, nb] = GetParam();
  Rng rng(na * 31 + nb);
  Signal a(na);
  std::vector<double> b(nb);
  for (auto& v : a) v = static_cast<Sample>(rng.gaussian());
  for (auto& v : b) v = rng.gaussian();
  const auto direct = convolve(a, b);
  const auto fast = fft_convolve(a, b);
  ASSERT_EQ(direct.size(), na + nb - 1);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], fast[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConvolutionSizeTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(2u, 7u),
                      std::make_pair(64u, 64u), std::make_pair(100u, 3u),
                      std::make_pair(5u, 200u), std::make_pair(511u, 513u)));

}  // namespace
}  // namespace mute::dsp
