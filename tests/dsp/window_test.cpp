#include "dsp/window.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace mute::dsp {
namespace {

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowType::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndsAtZeroPeaksAtCenter) {
  const auto w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingEndsAtPointZeroEight) {
  const auto w = make_window(WindowType::kHamming, 33);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
}

TEST(Window, BlackmanIsNonNegative) {
  const auto w = make_window(WindowType::kBlackman, 101);
  for (double v : w) EXPECT_GE(v, -1e-12);
}

TEST(Window, KaiserPeaksAtOneInCenter) {
  const auto w = make_window(WindowType::kKaiser, 51, 8.0);
  EXPECT_NEAR(w[25], 1.0, 1e-12);
  EXPECT_LT(w.front(), 0.01);
}

TEST(Window, KaiserBetaZeroIsRectangular) {
  const auto w = make_window(WindowType::kKaiser, 21, 0.0);
  for (double v : w) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Window, SingleSampleWindowIsOne) {
  for (auto type : {WindowType::kRectangular, WindowType::kHann,
                    WindowType::kHamming, WindowType::kBlackman,
                    WindowType::kKaiser}) {
    const auto w = make_window(type, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
  }
}

TEST(Window, BesselI0MatchesKnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-14);
  // I0(1) = 1.2660658..., I0(5) = 27.2398...
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-10);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-7);
}

TEST(Window, SumAndPowerHelpers) {
  const auto w = make_window(WindowType::kRectangular, 8);
  EXPECT_DOUBLE_EQ(window_sum(w), 8.0);
  EXPECT_DOUBLE_EQ(window_power(w), 8.0);
}

class WindowSymmetryTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowSymmetryTest, WindowsAreSymmetric) {
  const auto w = make_window(GetParam(), 64);
  for (std::size_t i = 0; i < w.size() / 2; ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WindowSymmetryTest,
                         ::testing::Values(WindowType::kHann,
                                           WindowType::kHamming,
                                           WindowType::kBlackman,
                                           WindowType::kKaiser));

}  // namespace
}  // namespace mute::dsp
