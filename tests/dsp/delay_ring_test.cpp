#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/delay_line.hpp"
#include "dsp/ring_buffer.hpp"

namespace mute::dsp {
namespace {

TEST(DelayLine, ZeroDelayIsIdentity) {
  DelayLine d(0);
  EXPECT_FLOAT_EQ(d.process(3.5f), 3.5f);
}

TEST(DelayLine, DelaysByExactSampleCount) {
  DelayLine d(3);
  EXPECT_FLOAT_EQ(d.process(1.0f), 0.0f);
  EXPECT_FLOAT_EQ(d.process(2.0f), 0.0f);
  EXPECT_FLOAT_EQ(d.process(3.0f), 0.0f);
  EXPECT_FLOAT_EQ(d.process(4.0f), 1.0f);
  EXPECT_FLOAT_EQ(d.process(5.0f), 2.0f);
}

TEST(DelayLine, ResetFlushesContents) {
  DelayLine d(2);
  d.process(9.0f);
  d.reset();
  EXPECT_FLOAT_EQ(d.process(0.0f), 0.0f);
  EXPECT_FLOAT_EQ(d.process(0.0f), 0.0f);
}

TEST(FractionalDelay, IntegerDelayMatchesDelayLine) {
  FractionalDelay fd(20.0, 31);
  DelayLine dl(20);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Sample x = static_cast<Sample>(rng.gaussian());
    EXPECT_NEAR(fd.process(x), dl.process(x), 1e-4);
  }
}

TEST(FractionalDelay, SineShiftsByExpectedPhase) {
  const double fs = 16000.0;
  const double freq = 500.0;
  const double delay = 7.25;
  FractionalDelay fd(delay, 31);
  // Feed sine, measure steady-state output vs delayed reference.
  double max_err = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double t = i / fs;
    const Sample y = fd.process(static_cast<Sample>(std::sin(kTwoPi * freq * t)));
    if (i > 500) {
      const double expected = std::sin(kTwoPi * freq * (t - delay / fs));
      max_err = std::max(max_err, std::abs(static_cast<double>(y) - expected));
    }
  }
  EXPECT_LT(max_err, 0.01);
}

TEST(FractionalDelay, ReportsTotalDelay) {
  FractionalDelay fd(12.34, 31);
  EXPECT_DOUBLE_EQ(fd.total_delay(), 12.34);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, RejectsWhenFull) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(3));
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, PeekDoesNotConsume) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  EXPECT_EQ(rb.peek(0), 10);
  EXPECT_EQ(rb.peek(1), 20);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_THROW(rb.peek(2), PreconditionError);
}

TEST(RingBuffer, PopEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), PreconditionError);
}

TEST(RingBuffer, BlockPushReportsCount) {
  RingBuffer<int> rb(3);
  const int vals[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(rb.push(std::span<const int>(vals, 5)), 3u);
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, ClearEmptiesBuffer) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, WrapAroundManyTimes) {
  RingBuffer<int> rb(5);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(rb.push(round * 5 + i));
    for (int i = 0; i < 5; ++i) ASSERT_EQ(rb.pop(), round * 5 + i);
  }
}

class FractionalDelayAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(FractionalDelayAccuracyTest, BroadbandDelayAccuracy) {
  const double delay = GetParam();
  FractionalDelay fd(delay, 41);
  DelayLine truth(1000);  // impossible reference; use sine check per freq
  (void)truth;
  const double fs = 16000.0;
  for (double freq : {200.0, 1000.0, 3000.0}) {
    FractionalDelay fresh(delay, 41);
    double max_err = 0.0;
    for (int i = 0; i < 3000; ++i) {
      const double t = i / fs;
      const Sample y =
          fresh.process(static_cast<Sample>(std::sin(kTwoPi * freq * t)));
      if (i > 600) {
        const double expected = std::sin(kTwoPi * freq * (t - delay / fs));
        max_err = std::max(max_err, std::abs(static_cast<double>(y) - expected));
      }
    }
    // Delays shorter than a few samples leave the interpolating sinc
    // half-supported (nothing exists before t=0), a documented accuracy
    // limit of causal fractional delay; tolerate more error there.
    const double tol = delay < 5.0 ? 0.2 : 0.02;
    EXPECT_LT(max_err, tol) << "delay " << delay << " freq " << freq;
  }
}

INSTANTIATE_TEST_SUITE_P(Delays, FractionalDelayAccuracyTest,
                         ::testing::Values(0.5, 1.9, 2.4, 7.77, 25.5, 100.25));

}  // namespace
}  // namespace mute::dsp
