// Hot-path kernel layer (DESIGN.md §10): the vectorization-friendly
// kernels must agree with their naive reference implementations to
// reassociation error on every size class (empty, sub-unroll, odd tails,
// denormal inputs); the doubled-buffer ring histories must be bit-identical
// to a shift-register reference across several wraparounds; and the block
// FIR path must match the scalar path sample for sample.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/kernels.hpp"
#include "dsp/ring_history.hpp"

namespace {

using namespace mute;
namespace k = mute::dsp::kernels;

std::vector<double> random_vec(std::size_t n, unsigned seed,
                               double scale = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian() * scale;
  return v;
}

// Sizes straddling the 8-lane unroll: empty, tiny, one short of / exactly /
// one past multiples of the unroll width, and large odd.
const std::size_t kSizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 255, 1024, 1037};

TEST(Kernels, DotMatchesNaive) {
  for (const std::size_t n : kSizes) {
    const auto a = random_vec(n, 100 + static_cast<unsigned>(n));
    const auto b = random_vec(n, 200 + static_cast<unsigned>(n));
    const double got = k::dot(a.data(), b.data(), n);
    const double want = k::naive::dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-12 * (std::abs(want) + static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(Kernels, EnergyMatchesNaiveAndDotWithSelf) {
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, 300 + static_cast<unsigned>(n));
    const double got = k::energy(x.data(), n);
    const double want = k::naive::energy(x.data(), n);
    EXPECT_NEAR(got, want, 1e-12 * (want + static_cast<double>(n)))
        << "n=" << n;
    EXPECT_GE(got, 0.0);
  }
}

TEST(Kernels, AxpyLeakyNormMatchesNaive) {
  for (const std::size_t n : kSizes) {
    auto w_fast = random_vec(n, 400 + static_cast<unsigned>(n), 0.1);
    auto w_ref = w_fast;
    const auto x = random_vec(n, 500 + static_cast<unsigned>(n));
    const double keep = 0.9997;
    const double g = -3.7e-3;
    const double norm_fast = k::axpy_leaky_norm(w_fast.data(), x.data(),
                                                keep, g, n);
    const double norm_ref = k::naive::axpy_leaky_norm(w_ref.data(), x.data(),
                                                      keep, g, n);
    // The element-wise updates are identical operations in both versions —
    // only the norm reduction is reassociated.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(w_fast[i], w_ref[i]) << "n=" << n << " i=" << i;
    }
    EXPECT_NEAR(norm_fast, norm_ref,
                1e-12 * (norm_ref + static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(Kernels, ScaledAccumulateMatchesNaiveExactly) {
  for (const std::size_t n : kSizes) {
    auto acc_fast = random_vec(n, 600 + static_cast<unsigned>(n));
    auto acc_ref = acc_fast;
    const auto x = random_vec(n, 700 + static_cast<unsigned>(n));
    k::scaled_accumulate(acc_fast.data(), x.data(), 0.37, n);
    k::naive::scaled_accumulate(acc_ref.data(), x.data(), 0.37, n);
    // Element-wise with no reduction: must be bit-identical.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(acc_fast[i], acc_ref[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, CmulAccumulateMatchesNaive) {
  for (const std::size_t n : kSizes) {
    auto acc_fast = random_vec(2 * n, 800 + static_cast<unsigned>(n));
    auto acc_ref = acc_fast;
    const auto a = random_vec(2 * n, 810 + static_cast<unsigned>(n));
    const auto b = random_vec(2 * n, 820 + static_cast<unsigned>(n));
    k::cmul_accumulate(acc_fast.data(), a.data(), b.data(), n);
    k::naive::cmul_accumulate(acc_ref.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      EXPECT_NEAR(acc_fast[i], acc_ref[i], 1e-12 * (std::abs(acc_ref[i]) + 1.0))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, CmulConjScaledMatchesNaive) {
  for (const std::size_t n : kSizes) {
    std::vector<double> out_fast(2 * n, -1.0);
    std::vector<double> out_ref(2 * n, -2.0);
    const auto a = random_vec(2 * n, 830 + static_cast<unsigned>(n));
    const auto b = random_vec(2 * n, 840 + static_cast<unsigned>(n));
    auto power = random_vec(n, 850 + static_cast<unsigned>(n));
    for (auto& p : power) p = p * p;  // powers are non-negative
    const double eps = 1e-8;
    k::cmul_conj_scaled(out_fast.data(), a.data(), b.data(), power.data(), eps,
                        n);
    k::naive::cmul_conj_scaled(out_ref.data(), a.data(), b.data(),
                               power.data(), eps, n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      EXPECT_NEAR(out_fast[i], out_ref[i],
                  1e-12 * (std::abs(out_ref[i]) + 1.0))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, MagsqAccumulateAndUpdateMatchNaive) {
  for (const std::size_t n : kSizes) {
    auto acc_fast = random_vec(n, 860 + static_cast<unsigned>(n));
    auto acc_ref = acc_fast;
    const auto z = random_vec(2 * n, 870 + static_cast<unsigned>(n));
    k::magsq_accumulate(acc_fast.data(), z.data(), n);
    k::naive::magsq_accumulate(acc_ref.data(), z.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(acc_fast[i], acc_ref[i], 1e-12 * (std::abs(acc_ref[i]) + 1.0))
          << "n=" << n << " i=" << i;
    }

    const auto z_old = random_vec(2 * n, 880 + static_cast<unsigned>(n));
    k::magsq_update(acc_fast.data(), z.data(), z_old.data(), n);
    k::naive::magsq_update(acc_ref.data(), z.data(), z_old.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(acc_fast[i], acc_ref[i], 1e-12 * (std::abs(acc_ref[i]) + 1.0))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, MagsqUpdateAddThenRemoveIsIdentity) {
  // Sliding-window power maintenance relies on +|z|^2 followed later by
  // -|z|^2 of the same spectrum cancelling to reassociation error.
  const std::size_t n = 129;
  auto acc = random_vec(n, 890);
  const auto base = acc;
  const auto z = random_vec(2 * n, 891);
  const std::vector<double> zeros(2 * n, 0.0);
  k::magsq_update(acc.data(), z.data(), zeros.data(), n);      // add
  k::magsq_update(acc.data(), zeros.data(), z.data(), n);      // remove
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(acc[i], base[i], 1e-12 * (std::abs(base[i]) + 1.0));
  }
}

TEST(Kernels, WindowIntoComplexMatchesNaiveExactly) {
  for (const std::size_t n : kSizes) {
    std::vector<double> out_fast(2 * n, -1.0);
    std::vector<double> out_ref(2 * n, -2.0);
    const auto w = random_vec(n, 900 + static_cast<unsigned>(n));
    std::vector<float> x(n);
    Rng rng(910 + static_cast<unsigned>(n));
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    k::window_into_complex(out_fast.data(), w.data(), x.data(), n);
    k::naive::window_into_complex(out_ref.data(), w.data(), x.data(), n);
    // Element-wise with no reduction: must be bit-identical.
    for (std::size_t i = 0; i < 2 * n; ++i) {
      EXPECT_EQ(out_fast[i], out_ref[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, SurviveDenormalInputs) {
  // Leaky LMS decays weights toward the denormal range on quiet inputs;
  // the kernels must stay finite and agree with the reference there.
  const std::size_t n = 37;
  std::vector<double> a(n, std::numeric_limits<double>::denorm_min() * 3.0);
  std::vector<double> b(n, 4.9e-324);  // smallest positive denormal
  const double got = k::dot(a.data(), b.data(), n);
  const double want = k::naive::dot(a.data(), b.data(), n);
  EXPECT_TRUE(std::isfinite(got));
  EXPECT_DOUBLE_EQ(got, want);

  auto w = std::vector<double>(n, 1e-310);
  auto w_ref = w;
  const double norm = k::axpy_leaky_norm(w.data(), a.data(), 0.999, 1e-6, n);
  const double norm_ref =
      k::naive::axpy_leaky_norm(w_ref.data(), a.data(), 0.999, 1e-6, n);
  EXPECT_TRUE(std::isfinite(norm));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(w[i], w_ref[i]);
  EXPECT_DOUBLE_EQ(norm, norm_ref);
}

TEST(RingHistory, MatchesShiftRegisterAcrossWraps) {
  for (const std::size_t len : {1UL, 2UL, 3UL, 8UL, 17UL}) {
    dsp::RingHistory<double> ring(len);
    std::vector<double> ref(len, 0.0);  // newest-first shift register
    Rng rng(42);
    // >= 3 full wraps of the doubled buffer.
    for (std::size_t t = 0; t < 7 * len + 3; ++t) {
      const double v = rng.gaussian();
      for (std::size_t i = len - 1; i > 0; --i) ref[i] = ref[i - 1];
      ref[0] = v;
      ring.push(v);
      ASSERT_EQ(ring.size(), len);
      EXPECT_EQ(ring.newest(), ref.front()) << "len=" << len << " t=" << t;
      EXPECT_EQ(ring.oldest(), ref.back()) << "len=" << len << " t=" << t;
      const auto win = ring.window();
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(win[i], ref[i]) << "len=" << len << " t=" << t
                                  << " i=" << i;
      }
    }
  }
}

TEST(FrameHistory, MatchesShiftRegisterAcrossWraps) {
  for (const std::size_t len : {1UL, 2UL, 5UL, 16UL}) {
    dsp::FrameHistory<float> frame(len);
    std::vector<float> ref(len, 0.0f);  // oldest-first shift register
    Rng rng(7);
    for (std::size_t t = 0; t < 7 * len + 3; ++t) {
      const auto v = static_cast<float>(rng.gaussian());
      for (std::size_t i = 0; i + 1 < len; ++i) ref[i] = ref[i + 1];
      ref[len - 1] = v;
      frame.push(v);
      EXPECT_EQ(frame.newest(), ref.back()) << "len=" << len << " t=" << t;
      EXPECT_EQ(frame.oldest(), ref.front()) << "len=" << len << " t=" << t;
      const auto win = frame.window();
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(win[i], ref[i]) << "len=" << len << " t=" << t
                                  << " i=" << i;
      }
    }
  }
}

TEST(FirFilterBlock, MatchesScalarPath) {
  for (const std::size_t taps : {1UL, 7UL, 64UL, 129UL}) {
    const auto h = random_vec(taps, 900 + static_cast<unsigned>(taps), 0.2);
    dsp::FirFilter scalar_f(h);
    dsp::FirFilter block_f(h);
    Rng rng(1234);
    // Blocks shorter than, equal to, and longer than the tap count, plus
    // empty (legal no-op).
    const std::size_t blocks[] = {3, taps, 1, 0, 2 * taps + 5, 16};
    for (const std::size_t b : blocks) {
      Signal in(b), out_scalar(b), out_block(b);
      for (auto& v : in) v = static_cast<Sample>(rng.gaussian(0.3));
      for (std::size_t i = 0; i < b; ++i) out_scalar[i] = scalar_f.process(in[i]);
      block_f.process(in, out_block);
      for (std::size_t i = 0; i < b; ++i) {
        EXPECT_NEAR(out_block[i], out_scalar[i], 1e-5f)
            << "taps=" << taps << " block=" << b << " i=" << i;
      }
    }
    // Histories must agree afterwards too: continue scalar on both.
    for (int t = 0; t < 32; ++t) {
      const auto x = static_cast<Sample>(rng.gaussian(0.3));
      EXPECT_NEAR(scalar_f.process(x), block_f.process(x), 1e-5f);
    }
  }
}

TEST(FirFilterBlock, InPlaceAliasingIsSafe) {
  const auto h = random_vec(33, 77, 0.2);
  dsp::FirFilter f_alias(h);
  dsp::FirFilter f_ref(h);
  Rng rng(5);
  Signal buf(100), in_copy(100), out_ref(100);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<Sample>(rng.gaussian(0.3));
    in_copy[i] = buf[i];
  }
  f_alias.process(buf, buf);  // in == out
  f_ref.process(in_copy, out_ref);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], out_ref[i]) << "i=" << i;
  }
}

}  // namespace
