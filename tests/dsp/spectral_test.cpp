#include "dsp/spectral.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::dsp {
namespace {

constexpr double kFs = 16000.0;

Signal make_tone(double freq, double amp, std::size_t n) {
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<Sample>(
        amp * std::sin(kTwoPi * freq * static_cast<double>(i) / kFs));
  }
  return x;
}

TEST(WelchPsd, TonePeaksAtToneFrequency) {
  const auto x = make_tone(1000.0, 0.5, 32000);
  const auto psd = welch_psd(x, kFs, 1024);
  // Find the max bin.
  std::size_t best = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[best]) best = i;
  }
  EXPECT_NEAR(psd.freq_hz[best], 1000.0, kFs / 1024.0);
}

TEST(WelchPsd, WhiteNoiseIsFlat) {
  Rng rng(3);
  Signal x(64000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  const auto psd = welch_psd(x, kFs, 512);
  const double low = psd.band_power(500.0, 1500.0);
  const double high = psd.band_power(5000.0, 6000.0);
  EXPECT_NEAR(low / high, 1.0, 0.15);
}

TEST(WelchPsd, TotalPowerMatchesVariance) {
  Rng rng(5);
  Signal x(64000);
  const double sigma = 0.3;
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian(sigma));
  const auto psd = welch_psd(x, kFs, 1024);
  // Integrate PSD over frequency: sum(power) * bin_width ~= variance.
  double total = 0.0;
  for (double p : psd.power) total += p;
  total *= kFs / 1024.0;
  EXPECT_NEAR(total, sigma * sigma, 0.1 * sigma * sigma);
}

TEST(WelchPsd, BandPowerSplitsTotal) {
  Rng rng(7);
  Signal x(32000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  const auto psd = welch_psd(x, kFs);
  const double all = psd.band_power(0.0, 8001.0);
  const double lower = psd.band_power(0.0, 4000.0);
  const double upper = psd.band_power(4000.0, 8001.0);
  EXPECT_NEAR(lower + upper, all, 1e-9);
}

TEST(WelchPsd, RejectsShortSignal) {
  Signal x(100);
  EXPECT_THROW(welch_psd(x, kFs, 1024), PreconditionError);
}

TEST(CrossSpectrum, CoherenceIsOneForLtiRelation) {
  Rng rng(11);
  Signal x(64000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  FirFilter f({0.7, -0.3, 0.2});
  const auto y = f.filter(x);
  const auto cs = cross_spectrum(x, y, kFs, 512);
  const auto coh = coherence(cs);
  for (std::size_t k = 4; k < coh.size() - 4; ++k) {
    EXPECT_GT(coh[k], 0.98) << "at " << cs.freq_hz[k] << " Hz";
  }
}

TEST(CrossSpectrum, CoherenceDropsWithIndependentNoise) {
  Rng rng(13);
  Signal x(64000), y(64000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<Sample>(rng.gaussian());
    y[i] = static_cast<Sample>(0.5 * static_cast<double>(x[i]) +
                               rng.gaussian());  // SNR < 0 dB
  }
  const auto cs = cross_spectrum(x, y, kFs, 512);
  const auto coh = coherence(cs);
  double mean = 0.0;
  for (double c : coh) mean += c;
  mean /= static_cast<double>(coh.size());
  EXPECT_LT(mean, 0.5);
  EXPECT_GT(mean, 0.05);
}

TEST(TransferEstimate, RecoversFirResponse) {
  Rng rng(17);
  Signal x(64000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  const std::vector<double> h = {0.5, 0.25, -0.125};
  FirFilter f(h);
  const auto y = f.filter(x);
  const auto cs = cross_spectrum(x, y, kFs, 1024);
  const auto est = transfer_estimate(cs);
  // Compare vs analytic response at a few bins.
  for (std::size_t k : {10u, 100u, 300u, 500u}) {
    Complex expected(0.0, 0.0);
    for (std::size_t i = 0; i < h.size(); ++i) {
      expected += h[i] * std::polar(1.0, -kTwoPi * cs.freq_hz[k] *
                                                 static_cast<double>(i) / kFs);
    }
    EXPECT_NEAR(std::abs(est[k] - expected), 0.0, 0.02);
  }
}

TEST(Stft, FrameCountAndSize) {
  Signal x(1000, 0.1f);
  const auto frames = stft_magnitude(x, 256, 128);
  EXPECT_EQ(frames.size(), (1000 - 256) / 128 + 1);
  for (const auto& f : frames) EXPECT_EQ(f.size(), 129u);
}

TEST(Stft, ToneAppearsInEveryFrame) {
  const auto x = make_tone(2000.0, 0.5, 4096);
  const auto frames = stft_magnitude(x, 256, 128);
  const std::size_t expected_bin = static_cast<std::size_t>(2000.0 * 256 / kFs);
  for (const auto& f : frames) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < f.size(); ++k) {
      if (f[k] > f[best]) best = k;
    }
    EXPECT_NEAR(static_cast<double>(best), static_cast<double>(expected_bin), 1.0);
  }
}

TEST(BandEnergies, SplitsByBand) {
  const auto x = make_tone(3000.0, 1.0, 512);
  const auto frames = stft_magnitude(x, 256, 256);
  ASSERT_FALSE(frames.empty());
  const std::vector<std::pair<double, double>> bands = {
      {0.0, 1000.0}, {1000.0, 2500.0}, {2500.0, 4000.0}, {4000.0, 8000.0}};
  const auto e = band_energies(frames[0], kFs, 256, bands);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_GT(e[2], 100.0 * e[0]);
  EXPECT_GT(e[2], 100.0 * e[3]);
}

TEST(PsdStruct, BandPowerCountsNyquistInBandEndingAtNyquist) {
  // A band ending exactly at fs/2 must include the Nyquist bin (the
  // SignatureExtractor last-band convention); interior edges stay
  // half-open so adjacent bands never double-count.
  Psd psd;
  psd.freq_hz = {0.0, 2000.0, 4000.0, 6000.0, 8000.0};
  psd.power = {1.0, 2.0, 4.0, 8.0, 16.0};
  EXPECT_DOUBLE_EQ(psd.band_power(0.0, 4000.0), 3.0);      // half-open interior
  EXPECT_DOUBLE_EQ(psd.band_power(4000.0, 8000.0), 28.0);  // closes at Nyquist
  EXPECT_DOUBLE_EQ(psd.band_power(0.0, 8000.0), 31.0);     // full grid
  EXPECT_DOUBLE_EQ(psd.band_power(8000.0, 8000.0), 16.0);  // degenerate top
}

TEST(WelchPsd, BandPowerPartitionCoversFullGridIncludingNyquist) {
  Rng rng(23);
  Signal x(32000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  const auto psd = welch_psd(x, kFs);
  double all = 0.0;
  for (double p : psd.power) all += p;
  // Adjacent [0,4k) + [4k,8k] must cover every bin exactly once now that
  // the top band closes at Nyquist.
  const double lower = psd.band_power(0.0, 4000.0);
  const double upper = psd.band_power(4000.0, 8000.0);
  EXPECT_NEAR(lower + upper, all, 1e-9 * all);
}

TEST(BandEnergies, NyquistBinJoinsBandEndingAtNyquist) {
  // Frame of all-ones magnitudes over a 256-point grid: each band's energy
  // equals its bin count, so the Nyquist bin's placement is visible.
  const std::size_t fft_size = 256;
  const std::vector<double> frame(fft_size / 2 + 1, 1.0);
  const std::vector<std::pair<double, double>> bands = {{0.0, 4000.0},
                                                        {4000.0, 8000.0}};
  const auto e = band_energies(frame, kFs, fft_size, bands);
  ASSERT_EQ(e.size(), 2u);
  double covered = e[0] + e[1];
  EXPECT_DOUBLE_EQ(covered, static_cast<double>(frame.size()));
  // The top band gets the Nyquist bin: [4k,8k] spans bins 64..128 = 65 bins.
  EXPECT_DOUBLE_EQ(e[1], 65.0);
}

TEST(PsdStruct, PowerAtFindsNearestBin) {
  Psd psd;
  psd.freq_hz = {0.0, 100.0, 200.0};
  psd.power = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(psd.power_at(120.0), 2.0);
  EXPECT_DOUBLE_EQ(psd.power_at(500.0), 3.0);
}

}  // namespace
}  // namespace mute::dsp
